// Stencil: Programming Model 2 (Section V) on the four-block machine.
//
// A 2D Jacobi solver is compiled from the parallel IR: the compiler
// extracts producer-consumer epoch pairs from the affine access functions
// and inserts level-adaptive WB_CONS/INV_PROD instructions. At run time
// the hardware's ThreadMap resolves each instruction to the right cache
// level: boundary exchanges between threads of the same block stay inside
// it, only exchanges that cross blocks go through the L3. The example
// compares the global-operation counts and execution times of the Base,
// Addr, and Addr+L configurations (the paper's Figures 11 and 12).
package main

import (
	"fmt"

	hic "repro"
	"repro/internal/apps/jacobi"
	"repro/internal/core"
)

func main() {
	fmt.Println("2D Jacobi under Programming Model 2, 32 threads on 4 blocks:")
	var hccCycles int64
	for _, mode := range hic.InterModes {
		w := jacobi.New(jacobi.Bench, 32)
		h := hic.NewModeHierarchy(hic.NewInterMachine(), mode)
		res, err := w.Run(h, mode)
		if err != nil {
			panic(err)
		}
		if mode == hic.ModeHCC {
			hccCycles = res.Cycles
			fmt.Printf("  %-7s %8d cycles (baseline)\n", mode, res.Cycles)
			continue
		}
		wb, inv := h.(*core.Hierarchy).GlobalOps()
		fmt.Printf("  %-7s %8d cycles (%.2fx HCC), global WB line-ops=%d, global INV line-ops=%d\n",
			mode, res.Cycles, float64(res.Cycles)/float64(hccCycles), wb, inv)
	}
	fmt.Println("Addr+L keeps only the block-crossing fraction of Addr's global operations (paper: ~25% for Jacobi)")
}
