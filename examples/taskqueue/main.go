// Task queue: the paper's Outside-Critical-section Communication pattern
// (Section IV-A.1, Figure 4d) under Programming Model 1.
//
// Sixteen threads push tasks whose payloads are written OUTSIDE the
// critical section, then pop and process each other's tasks. The program
// is written once against the annotated interface; the annotation layer
// inserts the WB/INV instructions each Table II configuration requires.
// The example runs it under Base, B+M, B+I and B+M+I and reports how much
// of Base's overhead the MEB and IEB entry buffers recover — the paper's
// headline intra-block result.
package main

import (
	"fmt"

	hic "repro"
	"repro/internal/mem"
)

const (
	nThreads = 16
	nRounds  = 8
	lockID   = 1
)

func app(p *hic.AnnotatedProc) {
	const (
		qHead   = mem.Addr(0x1000)
		qItems  = mem.Addr(0x2000)
		payload = mem.Addr(0x8000)
		outs    = mem.Addr(0x20000)
	)
	me := p.ID()
	for round := 0; round < nRounds; round++ {
		// Produce a payload outside the critical section, then publish
		// its address inside one.
		mine := payload + mem.Addr((me*nRounds+round)*64)
		p.Store(mine, mem.Word(1000*me+round))
		p.CSEnter(lockID)
		head := p.Load(qHead)
		p.Store(qItems+mem.Addr(head*4), mem.Word(uint32(mine)))
		p.Store(qHead, head+1)
		p.CSExit(lockID)
		p.BarrierSync(0)
		// Pop somebody's task and process its payload (the OCC read).
		p.CSEnter(lockID)
		head = p.Load(qHead)
		p.Store(qHead, head-1)
		item := p.Load(qItems + mem.Addr((head-1)*4))
		p.CSExit(lockID)
		v := p.Load(mem.Addr(item))
		p.Store(outs+mem.Addr(me*4), v)
		p.BarrierSync(1)
	}
}

func main() {
	fmt.Println("OCC task queue, 16 threads, 8 rounds:")
	var base int64
	for _, cfg := range []hic.Config{hic.Base, hic.BM, hic.BI, hic.BMI} {
		h := hic.NewHierarchy(hic.NewIntraMachine(), cfg)
		guests := make([]hic.Guest, nThreads)
		for i := range guests {
			guests[i] = func(ep hic.Proc) { app(hic.WrapAnnotated(ep, cfg, hic.Pattern{OCC: true})) }
		}
		res, err := hic.Run(h, guests)
		if err != nil {
			panic(err)
		}
		if cfg.Name == "Base" {
			base = res.Cycles
		}
		inv, wb, lock, barrier, _ := res.Stalls.Figure9()
		fmt.Printf("  %-6s %8d cycles (%.2fx Base)  inv=%d wb=%d lock=%d barrier=%d\n",
			cfg.Name, res.Cycles, float64(res.Cycles)/float64(base), inv, wb, lock, barrier)
	}
	fmt.Println("the MEB (B+M) removes most WB/lock stall; MEB+IEB (B+M+I) is the paper's best configuration")
}
