// Hierarchical reduction: the rewrite Section VII-C suggests for
// reduction-bound programs (EP, IS), implemented as a Model 2 program.
//
// A flat reduction merges every thread's partial results into global bins
// under one lock, and every merge must go through the L3 because a
// reduction has no identifiable producer-consumer order. The hierarchical
// rewrite reduces into per-block partial bins first (block-local critical
// sections, block-local WB/INV), then combines the per-block partials
// with a single small global stage — turning threads×bins global
// operations into blocks×bins.
package main

import (
	"fmt"

	hic "repro"
	"repro/internal/apps/nas"
	"repro/internal/core"
)

func main() {
	fmt.Println("EP reduction, 32 threads on 4 blocks, Addr+L configuration:")
	for _, v := range []struct {
		name string
		mk   func() *hic.IRWorkload
	}{
		{"flat reduction        ", func() *hic.IRWorkload { return nas.EP(nas.Bench, 32) }},
		{"hierarchical reduction", func() *hic.IRWorkload { return nas.EPHier(nas.Bench, 32, 4) }},
	} {
		h := hic.NewModeHierarchy(hic.NewInterMachine(), hic.ModeAddrL)
		res, err := v.mk().Run(h, hic.ModeAddrL)
		if err != nil {
			panic(err)
		}
		wb, inv := h.(*core.Hierarchy).GlobalOps()
		_, _, lock, _, _ := res.Stalls.Figure9()
		fmt.Printf("  %s %8d cycles, global WB=%4d, global INV=%4d, lock stall=%d\n",
			v.name, res.Cycles, wb, inv, lock)
	}
	fmt.Println("the rewrite keeps merges inside blocks; only blocks×bins operations go global")
}
