// MPI: the message-passing half of Programming Model 1 (Section IV).
//
// Across blocks, the paper programs with MPI implemented over an on-chip
// uncacheable shared buffer: a sender writes the buffer, the receiver
// reads it, and flag synchronization in the shared-cache controller
// sequences them — no WB/INV instructions needed because the buffer
// bypasses the private caches. This example runs a ring exchange and a
// broadcast (one write, many readers) over the four-block machine, with
// each rank also doing local shared-memory work inside its block.
package main

import (
	"fmt"

	hic "repro"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/stats"
)

func main() {
	m := hic.NewInterMachine()
	h := hic.NewModeHierarchy(m, hic.ModeBase)
	ranks := m.NumCores()
	comm := msg.NewComm(mem.NewArena(1<<24), ranks, 16, 1000)

	ringResult := make([]mem.Word, ranks)
	bcastResult := make([]mem.Word, ranks)
	guests := make([]hic.Guest, ranks)
	for i := range guests {
		i := i
		guests[i] = func(p hic.Proc) {
			r := comm.Attach(p, i)
			// Ring: each rank passes an accumulating token one hop right;
			// by construction every hop crosses a core and every eighth
			// hop crosses a block.
			if i == 0 {
				r.Send(1, []mem.Word{1})
				ringResult[0] = r.Recv(ranks-1, 1)[0]
			} else {
				v := r.Recv(i-1, 1)[0]
				p.Compute(100) // local work per hop
				r.Send((i+1)%ranks, []mem.Word{v + 1})
				ringResult[i] = v
			}
			// Broadcast: rank 5 writes once; everyone reads the same
			// uncacheable buffer (no per-recipient copies, Section IV).
			out := comm.Bcast(p, i, 5, []mem.Word{111, 222, 333}, 1, 3)
			bcastResult[i] = out[0] + out[1] + out[2]
		}
	}
	res, err := hic.Run(h, guests)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ring of %d ranks completed in %d cycles; token back at rank 0 = %d (want %d)\n",
		ranks, res.Cycles, ringResult[0], ranks)
	ok := true
	for i, v := range bcastResult {
		if v != 666 {
			ok = false
			fmt.Printf("rank %d broadcast sum = %d, want 666\n", i, v)
		}
	}
	if ok {
		fmt.Println("broadcast: all 32 ranks read the single-write buffer correctly")
	}
	tr := res.Traffic
	fmt.Printf("network traffic: %d flits total (%d sync-class: uncacheable messages + controller flags)\n",
		tr.Total(), tr[stats.SyncTraffic])
}
