// Quickstart: producer-consumer communication on a hardware-incoherent
// cache hierarchy.
//
// Two threads on the paper's 16-core single-block machine communicate a
// value. On incoherent hardware this takes three steps (Section III-A,
// Figure 2): the producer stores and WRITES BACK, the threads synchronize
// through a flag served by the shared-cache controller, and the consumer
// SELF-INVALIDATES before loading. The example runs the exchange twice —
// once with the WB/INV pair and once without — to show that the hardware
// really is incoherent: without the instructions the consumer reads a
// stale value.
package main

import (
	"fmt"

	hic "repro"
	"repro/internal/mem"
)

const (
	dataAddr = mem.Addr(0x1000)
	flagID   = 0
)

func run(annotated bool) (consumerSaw mem.Word, cycles int64) {
	producer := func(p hic.Proc) {
		p.Compute(500) // produce something
		p.Store(dataAddr, 42)
		if annotated {
			p.WB(mem.WordRange(dataAddr, 1)) // export to the shared L2
		}
		p.FlagSet(flagID, 1)
	}
	var got mem.Word
	consumer := func(p hic.Proc) {
		p.Load(dataAddr) // cache a (stale) copy early
		p.FlagWait(flagID, 1)
		if annotated {
			p.INV(mem.WordRange(dataAddr, 1)) // drop the stale copy
		}
		got = p.Load(dataAddr)
	}
	guests := make([]hic.Guest, 16)
	guests[0] = producer
	guests[1] = consumer
	for i := 2; i < 16; i++ {
		guests[i] = func(hic.Proc) {}
	}

	h := hic.NewHierarchy(hic.NewIntraMachine(), hic.Base)
	res, err := hic.Run(h, guests)
	if err != nil {
		panic(err)
	}
	return got, res.Cycles
}

func main() {
	v, cycles := run(true)
	fmt.Printf("with WB+INV:    consumer read %d (want 42) in %d cycles\n", v, cycles)
	v, cycles = run(false)
	fmt.Printf("without WB+INV: consumer read %d — the caches are truly incoherent (%d cycles)\n", v, cycles)
}
