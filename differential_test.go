package hic

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/annotate"
	"repro/internal/mem"
)

// Differential testing: a generated race-free program (barrier phases with
// owner-partitioned writes, lock-protected commutative read-modify-writes,
// and arbitrary cross-thread reads folded into per-thread checksums) must
// leave identical memory under every configuration — hardware coherence,
// every Table II incoherent configuration, write-through, and Bloom
// signatures. Any divergence means some configuration lost an update or
// read a stale value that the annotation contract should have prevented.

const (
	diffThreads = 16
	diffSlice   = 64 // words per thread's owned slice
)

var diffConfigs = []Config{HCC, Base, BM, BI, BMI, annotate.WT, annotate.BloomSig}

// genProgram builds a deterministic pseudo-random program from seed.
// Every thread runs the same phase structure; the values written are
// functions of phase-global state only, so the final memory is config-
// independent if (and only if) every configuration is coherent where the
// annotation contract promises coherence.
func genProgram(seed int64, phases int) App {
	return func(p *AnnotatedProc) {
		me := p.ID()
		n := p.NumThreads()
		// Each guest derives its own deterministic stream: seed and
		// thread ID only (no shared rand state across goroutines).
		rng := rand.New(rand.NewSource(seed*1000 + int64(me)))
		owned := func(t, i int) mem.Addr { return mem.Addr(0x10000 + (t*diffSlice+i)*mem.WordBytes) }
		counters := func(k int) mem.Addr { return mem.Addr(0x80000 + k*mem.WordBytes) }
		checksum := func(t, ph int) mem.Addr {
			return mem.Addr(0xa0000 + (ph*diffThreads+t)*mem.WordBytes)
		}
		for ph := 0; ph < phases; ph++ {
			// Owner-partitioned writes: a pure function of (phase, owner,
			// index), so every run writes identical values.
			writes := 4 + rng.Intn(12)
			for w := 0; w < writes; w++ {
				i := rng.Intn(diffSlice)
				p.Store(owned(me, i), mem.Word(uint32(ph*1_000_003+me*9176+i*31)))
			}
			// Lock-protected commutative RMWs on shared counters.
			rmws := rng.Intn(4)
			for r := 0; r < rmws; r++ {
				k := rng.Intn(8)
				lock := 10 + k
				p.CSEnter(lock)
				v := p.Load(counters(k))
				p.Store(counters(k), v+mem.Word(me+1))
				p.CSExit(lock)
			}
			p.BarrierSync(0)
			// Cross-thread reads into a checksum. Counter values are
			// mid-flight (other threads keep RMWing them in later phases)
			// but at this barrier point they are identical in every
			// config, so the checksum is too.
			var sum mem.Word
			reads := 8 + rng.Intn(16)
			for r := 0; r < reads; r++ {
				t := rng.Intn(n)
				i := rng.Intn(diffSlice)
				sum = sum*31 + p.Load(owned(t, i))
			}
			sum = sum*31 + p.Load(counters(rng.Intn(8)))
			p.Store(checksum(me, ph), sum)
			p.BarrierSync(1)
		}
	}
}

// diffRun executes the generated program under cfg and returns a fingerprint
// of all owned slices, counters, and checksums.
func diffRun(t *testing.T, seed int64, phases int, cfg Config) string {
	t.Helper()
	h := NewHierarchy(NewIntraMachine(), cfg)
	pat := Pattern{OCC: false}
	guests := AnnotatedGuests(diffThreads, cfg, pat, genProgram(seed, phases))
	if _, err := Run(h, guests); err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	h.Drain()
	m := h.Memory()
	fp := ""
	for t2 := 0; t2 < diffThreads; t2++ {
		for i := 0; i < diffSlice; i++ {
			fp += fmt.Sprintf("%x,", m.ReadWord(mem.Addr(0x10000+(t2*diffSlice+i)*mem.WordBytes)))
		}
	}
	for k := 0; k < 8; k++ {
		fp += fmt.Sprintf("c%x,", m.ReadWord(mem.Addr(0x80000+k*mem.WordBytes)))
	}
	for ph := 0; ph < phases; ph++ {
		for t2 := 0; t2 < diffThreads; t2++ {
			fp += fmt.Sprintf("s%x,", m.ReadWord(mem.Addr(0xa0000+(ph*diffThreads+t2)*mem.WordBytes)))
		}
	}
	return fp
}

func TestDifferentialAllConfigs(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			ref := diffRun(t, seed, 3, HCC)
			for _, cfg := range diffConfigs[1:] {
				if got := diffRun(t, seed, 3, cfg); got != ref {
					t.Errorf("%s diverges from HCC on seed %d", cfg.Name, seed)
				}
			}
		})
	}
}

// The negative control: stripping the annotations (running the same
// program with the HCC no-op annotation on incoherent hardware) must
// diverge — otherwise the differential test is vacuous.
func TestDifferentialNegativeControl(t *testing.T) {
	ref := diffRun(t, 1, 3, HCC)
	h := NewHierarchy(NewIntraMachine(), Base)
	// HCC config (no annotations) on the incoherent hierarchy.
	guests := AnnotatedGuests(diffThreads, HCC, Pattern{}, genProgram(1, 3))
	if _, err := Run(h, guests); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	m := h.Memory()
	fp := ""
	for t2 := 0; t2 < diffThreads; t2++ {
		for i := 0; i < diffSlice; i++ {
			fp += fmt.Sprintf("%x,", m.ReadWord(mem.Addr(0x10000+(t2*diffSlice+i)*mem.WordBytes)))
		}
	}
	for k := 0; k < 8; k++ {
		fp += fmt.Sprintf("c%x,", m.ReadWord(mem.Addr(0x80000+k*mem.WordBytes)))
	}
	for ph := 0; ph < 3; ph++ {
		for t2 := 0; t2 < diffThreads; t2++ {
			fp += fmt.Sprintf("s%x,", m.ReadWord(mem.Addr(0xa0000+(ph*diffThreads+t2)*mem.WordBytes)))
		}
	}
	if fp == ref {
		t.Error("unannotated program on incoherent hardware matched HCC — differential test is vacuous")
	}
}
