package hic

import (
	"math"
	"strings"
	"testing"
)

func TestVerifyAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full verification sweep")
	}
	if err := VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestRunIntraBlockShapes(t *testing.T) {
	res, err := RunIntraBlock(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figure9.Groups) != 11 {
		t.Fatalf("Figure 9 has %d apps, want 11", len(res.Figure9.Groups))
	}
	for _, g := range res.Figure9.Groups {
		if len(g.Bars) != 5 {
			t.Fatalf("%s has %d bars, want 5", g.Name, len(g.Bars))
		}
		// HCC is the normalization baseline: its bar totals 1.0.
		if h := g.Bars[0].Height(); math.Abs(h-1) > 1e-9 {
			t.Errorf("%s HCC bar = %v, want 1.0", g.Name, h)
		}
		for _, bar := range g.Bars {
			if len(bar.Segments) != 5 {
				t.Errorf("%s/%s has %d segments", g.Name, bar.Label, len(bar.Segments))
			}
			if bar.Height() <= 0 {
				t.Errorf("%s/%s bar empty", g.Name, bar.Label)
			}
		}
	}
	for _, g := range res.Figure10.Groups {
		if len(g.Bars) != 2 {
			t.Fatalf("Figure 10 %s has %d bars, want 2 (HCC, B+M+I)", g.Name, len(g.Bars))
		}
		if h := g.Bars[0].Height(); math.Abs(h-1) > 1e-9 {
			t.Errorf("%s HCC traffic = %v, want 1.0", g.Name, h)
		}
	}
	// The headline paper shapes, at test scale in relaxed form: B+M+I
	// must beat Base on average, and Base must be slower than HCC.
	means := res.Figure9.MeanTotals()
	if means["Base"] <= 1.0 {
		t.Errorf("Base mean %v should exceed HCC's 1.0", means["Base"])
	}
	if means["B+M+I"] >= means["Base"] {
		t.Errorf("B+M+I mean %v should be below Base mean %v", means["B+M+I"], means["Base"])
	}
	// HCC produces invalidation traffic; B+M+I produces none.
	for _, g := range res.Figure10.Groups {
		if g.Bars[1].Segments[2] != 0 {
			t.Errorf("%s: B+M+I shows invalidation traffic", g.Name)
		}
	}
}

func TestRunInterBlockShapes(t *testing.T) {
	res, err := RunInterBlock(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figure12.Groups) != 4 {
		t.Fatalf("Figure 12 has %d apps, want 4", len(res.Figure12.Groups))
	}
	for _, g := range res.Figure12.Groups {
		if len(g.Bars) != 4 {
			t.Fatalf("%s has %d bars, want 4", g.Name, len(g.Bars))
		}
		if math.Abs(g.Bars[0].Height()-1) > 1e-9 {
			t.Errorf("%s HCC bar not 1.0", g.Name)
		}
	}
	byName := map[string][]float64{}
	for _, g := range res.Figure11.Groups {
		if len(g.Bars) != 2 {
			t.Fatalf("Figure 11 %s has %d bars", g.Name, len(g.Bars))
		}
		byName[g.Name] = g.Bars[1].Segments // Addr+L: [wb, inv] fractions
	}
	// Jacobi benefits sharply; CG keeps its global WBs but drops INVs;
	// EP keeps everything (pure reduction).
	if f := byName["jacobi"][0]; f > 0.6 {
		t.Errorf("jacobi global WB fraction = %v, want < 0.6", f)
	}
	if f := byName["jacobi"][1]; f > 0.6 {
		t.Errorf("jacobi global INV fraction = %v, want < 0.6", f)
	}
	if f := byName["cg"][0]; f < 0.95 {
		t.Errorf("cg global WB fraction = %v, want ~1.0", f)
	}
	if f := byName["cg"][1]; f >= 1.0 || f == 0 {
		t.Errorf("cg global INV fraction = %v, want in (0,1)", f)
	}
	if f := byName["ep"][0]; f < 0.95 {
		t.Errorf("ep global WB fraction = %v, want ~1.0", f)
	}
	// Base is the slowest configuration on average; Addr+L is not
	// meaningfully slower than Addr (at test scale the two differ by
	// noise on the reduction-bound apps, so allow a small tolerance).
	means := res.Figure12.MeanTotals()
	if means["Base"] <= means["Addr"] {
		t.Errorf("expected Base > Addr, got Base=%v Addr=%v", means["Base"], means["Addr"])
	}
	if means["Addr+L"] > means["Addr"]*1.02 {
		t.Errorf("Addr+L mean %v well above Addr mean %v", means["Addr+L"], means["Addr"])
	}
}

func TestPatternTable(t *testing.T) {
	out, err := PatternTable(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fft", "cholesky", "raytrace", "barrier", "outside-critical", "lock="} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q:\n%s", want, out)
		}
	}
}

func TestStorageReport(t *testing.T) {
	r := StorageReport()
	if kb := r.Savings().KB(); kb < 95 || kb > 110 {
		t.Errorf("storage savings = %.1f KB, want ~102", kb)
	}
}

func TestFigureRendersNonEmpty(t *testing.T) {
	res, err := RunIntraBlock(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if out := res.Figure9.Render(); !strings.Contains(out, "Figure 9") {
		t.Error("figure 9 render broken")
	}
}
