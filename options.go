package hic

// Functional options over RunOptions: the composable form of the sweep
// API. New code writes
//
//	res, err := hic.RunIntra(ctx, hic.ScaleTest,
//		hic.WithCoherenceCheck(),
//		hic.WithMetrics(),
//		hic.WithObserver(func(w, c string, rec *hic.Recorder) { ... }))
//
// instead of filling a RunOptions literal. The deprecated positional
// *Opts entry points are gone; RunOptions itself remains the
// documentation of what the options control.

import (
	"context"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/runner"
)

// Recorder is the observability recorder a WithObserver callback
// receives (re-exported from internal/obs).
type Recorder = obs.Recorder

// MetricsSnapshot is a recorder's deterministic metrics snapshot.
type MetricsSnapshot = obs.Snapshot

// CellTrace is one cell's labeled stall timeline, ready for
// obs.WriteChrome.
type CellTrace = obs.CellTrace

// Cache is a content-addressed sweep result cache (re-exported from
// internal/runner); see WithCache.
type Cache = runner.Cache

// MemCache is the in-memory Cache with hit/miss accounting.
type MemCache = runner.MemCache

// NewMemCache returns an empty in-memory result cache for WithCache.
func NewMemCache() *MemCache { return runner.NewMemCache() }

// Option configures a sweep or a Run call.
type Option func(*RunOptions)

// NewRunOptions builds RunOptions from DefaultRunOptions plus opts.
func NewRunOptions(opts ...Option) RunOptions {
	o := DefaultRunOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithParallel sets the sweep worker count (<= 0 means GOMAXPROCS).
func WithParallel(n int) Option {
	return func(o *RunOptions) { o.Parallel = n }
}

// WithTimeout bounds each individual run (0 means none).
func WithTimeout(d time.Duration) Option {
	return func(o *RunOptions) { o.Timeout = d }
}

// WithRetry reruns cells whose failure is transient up to retries times,
// sleeping backoff before the first retry and doubling thereafter.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(o *RunOptions) { o.Retries, o.RetryBackoff = retries, backoff }
}

// WithCoherenceCheck attaches the shadow-memory coherence oracle to
// every run.
func WithCoherenceCheck() Option {
	return func(o *RunOptions) { o.CheckCoherence = true }
}

// WithFaultPlan injects a deterministic fault plan (internal/faultinject
// grammar) into every incoherent-hierarchy run.
func WithFaultPlan(plan string) Option {
	return func(o *RunOptions) { o.Faults = plan }
}

// WithMetrics attaches an observability recorder to every run and embeds
// its deterministic snapshot in the cell's RunRecord.
func WithMetrics() Option {
	return func(o *RunOptions) { o.Metrics = true }
}

// WithTracing additionally retains the bounded per-core stall timeline
// and occupancy tracks for Chrome trace export.
func WithTracing() Option {
	return func(o *RunOptions) { o.Trace = true }
}

// WithObserver registers a callback invoked with each cell's recorder
// after its run completes. Setting it alone also enables recording.
func WithObserver(f func(workload, config string, rec *Recorder)) Option {
	return func(o *RunOptions) { o.Observer = f }
}

// WithOnly restricts a sweep to the named workloads (unknown names are
// ignored; an empty list means all). Figures are built from whatever
// cells ran.
func WithOnly(workloads ...string) Option {
	return func(o *RunOptions) { o.Only = workloads }
}

// WithBlockParallel runs each incoherent-hierarchy simulation with the
// block-parallel engine: cores are partitioned by block and each block's
// event heap runs on its own goroutine between deterministic sync epochs.
// Results are byte-identical to serial execution; fault-injected,
// recorder-attached, and oracle-observed runs degrade to the serial
// engine (their state is not sharded), recording the cause in the run
// record's degraded_to_serial field and the engine.degraded_to_serial
// obs counter. HCC cells are unaffected.
func WithBlockParallel() Option {
	return func(o *RunOptions) { o.BlockParallel = true }
}

// WithCache attaches a content-addressed result cache to the sweep:
// cells whose runner.CellKey hash is already stored return the cached
// outcome with zero engine steps. Determinism makes hits exact. See
// RunOptions.Cache for the keying discipline.
func WithCache(c runner.Cache) Option {
	return func(o *RunOptions) { o.Cache = c }
}

// WithSeed salts the cache key (see RunOptions.Seed); it does not
// change results for the current, deterministic workloads.
func WithSeed(seed int64) Option {
	return func(o *RunOptions) { o.Seed = seed }
}

// RunIntra executes the intra-block sweep (Figures 9 and 10) at scale s
// under the given options. On failure it returns the joined per-cell
// errors together with the partial result: applications whose HCC
// baseline succeeded still get their figure groups, and Runs records
// every cell including the failed ones.
func RunIntra(ctx context.Context, s Scale, opts ...Option) (*IntraResult, error) {
	return runIntraOpts(ctx, s, NewRunOptions(opts...))
}

// RunInter executes the inter-block sweep (Figures 11 and 12) at scale s
// under the given options; error semantics match RunIntra.
func RunInter(ctx context.Context, s Scale, opts ...Option) (*InterResult, error) {
	return runInterOpts(ctx, s, NewRunOptions(opts...))
}

// Run executes guests on h and returns the result. Options apply per
// run: WithMetrics/WithTracing/WithObserver attach a recorder to the
// engine and (when h supports it) the hierarchy, and the Observer
// callback — invoked with empty workload/config labels — is the access
// path to its snapshot and timeline. Orchestration options (parallelism,
// timeouts, retries) have no effect on a single Run.
func Run(h Hierarchy, guests []Guest, opts ...Option) (*Result, error) {
	var o RunOptions
	for _, opt := range opts {
		opt(&o)
	}
	e := engine.New(h, guests)
	rec := o.instrument(h)
	if rec != nil {
		e.SetRecorder(rec)
	}
	res, err := e.Run()
	o.finish("", "", rec, nil)
	return res, err
}
