package hic

// Functional options over RunOptions: the composable form of the sweep
// API. New code writes
//
//	res, err := hic.RunIntra(ctx, hic.ScaleTest,
//		hic.WithCoherenceCheck(),
//		hic.WithMetrics(),
//		hic.WithObserver(func(w, c string, rec *hic.Recorder) { ... }))
//
// instead of filling a RunOptions literal; the positional entry points
// (RunIntraBlockOpts, RunInterBlockOpts) remain for existing callers but
// are deprecated in favor of these.

import (
	"context"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Recorder is the observability recorder a WithObserver callback
// receives (re-exported from internal/obs).
type Recorder = obs.Recorder

// MetricsSnapshot is a recorder's deterministic metrics snapshot.
type MetricsSnapshot = obs.Snapshot

// CellTrace is one cell's labeled stall timeline, ready for
// obs.WriteChrome.
type CellTrace = obs.CellTrace

// Option configures a sweep or a Run call.
type Option func(*RunOptions)

// NewRunOptions builds RunOptions from DefaultRunOptions plus opts.
func NewRunOptions(opts ...Option) RunOptions {
	o := DefaultRunOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithParallel sets the sweep worker count (<= 0 means GOMAXPROCS).
func WithParallel(n int) Option {
	return func(o *RunOptions) { o.Parallel = n }
}

// WithTimeout bounds each individual run (0 means none).
func WithTimeout(d time.Duration) Option {
	return func(o *RunOptions) { o.Timeout = d }
}

// WithRetry reruns cells whose failure is transient up to retries times,
// sleeping backoff before the first retry and doubling thereafter.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(o *RunOptions) { o.Retries, o.RetryBackoff = retries, backoff }
}

// WithCoherenceCheck attaches the shadow-memory coherence oracle to
// every run.
func WithCoherenceCheck() Option {
	return func(o *RunOptions) { o.CheckCoherence = true }
}

// WithFaultPlan injects a deterministic fault plan (internal/faultinject
// grammar) into every incoherent-hierarchy run.
func WithFaultPlan(plan string) Option {
	return func(o *RunOptions) { o.Faults = plan }
}

// WithMetrics attaches an observability recorder to every run and embeds
// its deterministic snapshot in the cell's RunRecord.
func WithMetrics() Option {
	return func(o *RunOptions) { o.Metrics = true }
}

// WithTracing additionally retains the bounded per-core stall timeline
// and occupancy tracks for Chrome trace export.
func WithTracing() Option {
	return func(o *RunOptions) { o.Trace = true }
}

// WithObserver registers a callback invoked with each cell's recorder
// after its run completes. Setting it alone also enables recording.
func WithObserver(f func(workload, config string, rec *Recorder)) Option {
	return func(o *RunOptions) { o.Observer = f }
}

// WithOnly restricts a sweep to the named workloads (unknown names are
// ignored; an empty list means all). Figures are built from whatever
// cells ran.
func WithOnly(workloads ...string) Option {
	return func(o *RunOptions) { o.Only = workloads }
}

// WithBlockParallel runs each incoherent-hierarchy simulation with the
// block-parallel engine: cores are partitioned by block and each block's
// event heap runs on its own goroutine between deterministic sync epochs.
// Results are byte-identical to serial execution; fault-injected,
// recorder-attached, and oracle-observed runs degrade to the serial
// engine (their state is not sharded), recording the cause in the run
// record's degraded_to_serial field and the engine.degraded_to_serial
// obs counter. HCC cells are unaffected.
func WithBlockParallel() Option {
	return func(o *RunOptions) { o.BlockParallel = true }
}

// RunIntra executes the intra-block sweep (Figures 9 and 10) at scale s
// under the given options; it is the options form of RunIntraBlockOpts
// and shares its partial-result error semantics.
func RunIntra(ctx context.Context, s Scale, opts ...Option) (*IntraResult, error) {
	return RunIntraBlockOpts(ctx, s, NewRunOptions(opts...))
}

// RunInter executes the inter-block sweep (Figures 11 and 12) at scale s
// under the given options; it is the options form of RunInterBlockOpts.
func RunInter(ctx context.Context, s Scale, opts ...Option) (*InterResult, error) {
	return RunInterBlockOpts(ctx, s, NewRunOptions(opts...))
}

// Run executes guests on h and returns the result. Options apply per
// run: WithMetrics/WithTracing/WithObserver attach a recorder to the
// engine and (when h supports it) the hierarchy, and the Observer
// callback — invoked with empty workload/config labels — is the access
// path to its snapshot and timeline. Orchestration options (parallelism,
// timeouts, retries) have no effect on a single Run.
func Run(h Hierarchy, guests []Guest, opts ...Option) (*Result, error) {
	var o RunOptions
	for _, opt := range opts {
		opt(&o)
	}
	e := engine.New(h, guests)
	rec := o.instrument(h)
	if rec != nil {
		e.SetRecorder(rec)
	}
	res, err := e.Run()
	o.finish("", "", rec, nil)
	return res, err
}
