package hic

// Determinism and scale tests for the block-parallel engine: the sweep
// documents — figures, run records, metrics snapshots — must be
// byte-identical whether incoherent-hierarchy cells execute on the
// serial scheduler or on one goroutine per block, and the many-core
// block-scaling sweep (up to 128 blocks × 8 cores = 1024 simulated
// cores) must complete inside the tier-1 test budget.

import (
	"bytes"
	"context"
	"testing"
)

// TestBlockParallelInterSweepMatchesSerial is the headline determinism
// gate for the block-parallel executor: the inter-block machine has four
// blocks, so every incoherent cell actually exercises the sharded path,
// and the resulting JSON document must equal the serial one byte for
// byte. Coherence checking is deliberately off — an attached oracle
// records per-load values but the engine result must already match.
func TestBlockParallelInterSweepMatchesSerial(t *testing.T) {
	serial, err := RunInter(context.Background(), ScaleTest, WithParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunInter(context.Background(), ScaleTest, WithParallel(2), WithBlockParallel())
	if err != nil {
		t.Fatal(err)
	}
	sj := encodeDoc(t, serial.Document(ScaleTest))
	pj := encodeDoc(t, par.Document(ScaleTest))
	if !bytes.Equal(sj, pj) {
		t.Errorf("inter sweep differs between serial and block-parallel engines:\nserial:\n%s\nblock-parallel:\n%s", sj, pj)
	}
}

// TestBlockParallelIntraSweepMatchesSerial covers the single-block
// machine: ParallelShards degrades to 1 there, so the option must be an
// exact no-op.
func TestBlockParallelIntraSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the intra sweep twice")
	}
	serial, err := RunIntra(context.Background(), ScaleTest, WithParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunIntra(context.Background(), ScaleTest, WithParallel(2), WithBlockParallel())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeDoc(t, serial.Document(ScaleTest)), encodeDoc(t, par.Document(ScaleTest))) {
		t.Error("intra sweep differs between serial and block-parallel engines")
	}
}

// TestBlockParallelMetricsSnapshotsMatchSerial pins the degrade contract
// for observability: a recorder-attached run is not sharded (the
// recorder samples freely across cores), so requesting both metrics and
// block parallelism must still produce the serial document — snapshots
// included — except for the explicit degradation markers, which must
// fire on every incoherent cell and appear nowhere in the serial sweep.
func TestBlockParallelMetricsSnapshotsMatchSerial(t *testing.T) {
	serial, err := RunInter(context.Background(), ScaleTest, WithParallel(2), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunInter(context.Background(), ScaleTest, WithParallel(2), WithMetrics(), WithBlockParallel())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range serial.Runs {
		if r.DegradedToSerial != "" {
			t.Errorf("%s/%s: serial sweep marked degraded (%q)", r.Workload, r.Config, r.DegradedToSerial)
		}
	}
	// Every incoherent cell on the four-block machine must be marked, in
	// both the run record and the obs counter; HCC cells (MESI hierarchy,
	// never sharded) must not be.
	for i := range par.Runs {
		r := &par.Runs[i]
		if r.Metrics == nil {
			t.Fatalf("%s/%s: no metrics snapshot under block parallelism", r.Workload, r.Config)
		}
		degraded := r.Config != "HCC"
		if got := r.DegradedToSerial; (got == "recorder") != degraded {
			t.Errorf("%s/%s: degraded_to_serial = %q, want %v", r.Workload, r.Config, got, degraded)
		}
		if got := r.Metrics.Counters["engine.degraded_to_serial"]; (got == 1) != degraded {
			t.Errorf("%s/%s: engine.degraded_to_serial counter = %d, want firing=%v", r.Workload, r.Config, got, degraded)
		}
		// Normalize the markers away; everything else must match the
		// serial document byte for byte.
		r.DegradedToSerial = ""
		delete(r.Metrics.Counters, "engine.degraded_to_serial")
	}
	sj := encodeDoc(t, serial.Document(ScaleTest))
	pj := encodeDoc(t, par.Document(ScaleTest))
	if !bytes.Equal(sj, pj) {
		t.Error("metrics-bearing inter sweep differs between serial and block-parallel engines beyond the degrade markers")
	}
}

// TestBlockParallelDegradeReasons pins the full reason vocabulary of the
// degraded_to_serial field: fault injection, an attached recorder, and a
// coherence observer each force the serial engine on a multi-block
// machine, and the run record names which one did it.
func TestBlockParallelDegradeReasons(t *testing.T) {
	cases := []struct {
		reason string
		opts   []Option
	}{
		// The fault plan's trigger index is past any realistic op count,
		// so the cells still pass — only the attached cursor state forces
		// serial execution.
		{"fault-injection", []Option{WithFaultPlan("drop-wb@99999999; seed=1")}},
		{"recorder", []Option{WithMetrics()}},
		{"observer", []Option{WithCoherenceCheck()}},
	}
	for _, tc := range cases {
		t.Run(tc.reason, func(t *testing.T) {
			opts := append([]Option{WithParallel(2), WithOnly("ep"), WithBlockParallel()}, tc.opts...)
			res, err := RunInter(context.Background(), ScaleTest, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Runs) == 0 {
				t.Fatal("sweep produced no run records")
			}
			for _, r := range res.Runs {
				want := tc.reason
				if r.Config == "HCC" {
					want = "" // MESI hierarchy: never sharded, never degraded
				}
				if r.DegradedToSerial != want {
					t.Errorf("%s/%s: degraded_to_serial = %q, want %q", r.Workload, r.Config, r.DegradedToSerial, want)
				}
			}
		})
	}
}

// TestBlockParallelSeededFaultSweepMatchesSerial pins the other degrade
// path: a fault plan forces serial execution (fault cursors are global
// state), and the seeded sweep's document — detected violations and all
// — must be unchanged by the option.
func TestBlockParallelSeededFaultSweepMatchesSerial(t *testing.T) {
	opts := func(blockPar bool) RunOptions {
		o := RunOptions{
			Parallel:       2,
			CheckCoherence: true,
			Faults:         "drop-wb@rand; skip-inv@rand; seed=7",
		}
		o.BlockParallel = blockPar
		return o
	}
	// Injected faults make cells fail with detected coherence violations;
	// that is the experiment working, so only the documents are compared.
	serial, _ := runIntraOpts(context.Background(), ScaleTest, opts(false))
	par, _ := runIntraOpts(context.Background(), ScaleTest, opts(true))
	if !bytes.Equal(encodeDoc(t, serial.Document(ScaleTest)), encodeDoc(t, par.Document(ScaleTest))) {
		t.Error("seeded fault sweep differs between serial and block-parallel engines")
	}
}

// TestManycoreSweepMatchesSerial runs the block-scaling experiment both
// ways on machines where the sharded path is really taken (2 and 4
// blocks) and requires byte-identical documents.
func TestManycoreSweepMatchesSerial(t *testing.T) {
	blocks := []int{1, 2, 4}
	serial, err := RunManycore(context.Background(), ScaleTest, blocks, 8)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunManycore(context.Background(), ScaleTest, blocks, 8, WithBlockParallel())
	if err != nil {
		t.Fatal(err)
	}
	sj := encodeDoc(t, serial.Document(ScaleTest))
	pj := encodeDoc(t, par.Document(ScaleTest))
	if !bytes.Equal(sj, pj) {
		t.Errorf("manycore sweep differs between serial and block-parallel engines:\nserial:\n%s\nblock-parallel:\n%s", sj, pj)
	}
	if len(serial.Curve.Groups) != 2 {
		t.Fatalf("curve has %d groups, want 2", len(serial.Curve.Groups))
	}
}

// TestManycoreSmoke is the 1024-core smoke cell: one tiny Jacobi run on
// the 128-block machine under the block-parallel engine, inside the
// tier-1 budget. It pins that the full topology — 32×32 mesh, 128 L2s,
// 1024 thread contexts — actually builds and runs.
func TestManycoreSmoke(t *testing.T) {
	res, err := RunManycore(context.Background(), ScaleTest, []int{128}, 8,
		WithBlockParallel(), WithOnly("jacobi"))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := res.Raw["jacobi"][128]
	if !ok {
		t.Fatal("128-block jacobi cell produced no result")
	}
	if r.Cycles <= 0 {
		t.Fatalf("128-block jacobi simulated %d cycles", r.Cycles)
	}
}
