// Package annotate implements Programming Model 1 (Section IV): shared-
// memory programs written against ordinary synchronization (barriers,
// critical sections, flags, and Figure 6's data races) are automatically
// augmented with WB and INV instructions at those synchronization points.
// The insertion rules follow Figure 4:
//
//   - barrier:   WB ALL before, INV ALL after;
//   - critical section: INV (of exposed reads) before the acquire and WB
//     (of writes) before the release; with possible outside-critical-
//     section communication (OCC), additionally WB ALL before the acquire
//     and INV ALL after the release;
//   - flag: WB ALL before the set, INV ALL after a successful wait;
//   - data race: explicit per-variable WB/INV around the racing accesses
//     (Figure 6b).
//
// The Table II configurations choose how the ALL forms execute: Base uses
// plain WB ALL/INV ALL everywhere; B+M serves critical-section WB ALLs
// from the MEB; B+I arms the IEB instead of eagerly invalidating at
// critical-section entry; B+M+I does both; HCC inserts nothing.
//
// One deliberate deviation from the paper's prose: the paper places the
// critical-section INV immediately *before* the acquire (to shorten the
// critical section) on the assumption that the cache cannot change between
// the INV and the acquire. An eager INV ALL is placed there; the *lazy*
// (IEB-arming) INV ALL is instead placed immediately *after* the acquire,
// because arming costs ~1 cycle (so there is nothing to hoist) and the IEB
// epoch must not be terminated by the acquire itself.
package annotate

import (
	"repro/internal/engine"
	"repro/internal/mem"
)

// Config selects a Table II configuration.
type Config struct {
	// Name is the configuration's label in the figures.
	Name string
	// HCC disables all annotation (hardware keeps caches coherent).
	HCC bool
	// UseMEB serves critical-section WB ALLs from the Modified Entry
	// Buffer.
	UseMEB bool
	// UseIEB arms the Invalidated Entry Buffer at critical-section entry
	// instead of eagerly invalidating.
	UseIEB bool
	// UseBloom selects Ashby-style Bloom-signature selective
	// self-invalidation for critical sections: releases publish the write
	// signature, acquires invalidate selectively against it.
	UseBloom bool
	// WriteThrough marks the VIPS-style write-through hierarchy variant:
	// stores self-downgrade continuously, so no WB instructions are
	// inserted (INV insertion is unchanged).
	WriteThrough bool
}

// The five intra-block configurations of Table II.
var (
	HCC  = Config{Name: "HCC", HCC: true}
	Base = Config{Name: "Base"}
	BM   = Config{Name: "B+M", UseMEB: true}
	BI   = Config{Name: "B+I", UseIEB: true}
	BMI  = Config{Name: "B+M+I", UseMEB: true, UseIEB: true}
	// WT is the write-through extension configuration (not part of Table
	// II; used by the ablation benches to engage the Section VIII
	// comparison with VIPS-style self-downgrade).
	WT = Config{Name: "WT", WriteThrough: true, UseIEB: true}
	// BloomSig is the Ashby-style signature configuration (Section VIII
	// comparison: selective invalidation, but channel signatures saturate
	// in lock-intensive code).
	BloomSig = Config{Name: "Bloom", UseBloom: true}
)

// IntraConfigs lists the intra-block configurations in Figure 9's bar
// order.
var IntraConfigs = []Config{HCC, Base, BM, BI, BMI}

// Pattern carries the per-application sharing knowledge of Table I that
// the programmer (or a simple analysis) supplies.
type Pattern struct {
	// OCC marks possible communication outside critical sections
	// (Section IV-A.1's task-queue pattern). Unless the programmer states
	// otherwise, it must be assumed present.
	OCC bool
}

// P is the annotated processor view that applications program against. It
// embeds the raw machine interface, so computation and data accesses pass
// through unchanged; synchronization goes through the annotating methods
// below.
type P struct {
	engine.Proc
	cfg Config
	pat Pattern
}

// Wrap builds the annotated view of p for one thread.
func Wrap(p engine.Proc, cfg Config, pat Pattern) *P {
	return &P{Proc: p, cfg: cfg, pat: pat}
}

// Config returns the active configuration.
func (p *P) Config() Config { return p.cfg }

// wbAllCS issues the critical-section flavor of WB ALL. Write-through
// hierarchies have nothing to write back: stores already self-downgraded.
func (p *P) wbAllCS() {
	switch {
	case p.cfg.WriteThrough:
	case p.cfg.UseMEB:
		p.WBAllMEB()
	default:
		p.WBAll()
	}
}

// BarrierSync is an annotated global barrier: all writes are posted before
// arriving and all potentially stale data is invalidated after leaving.
// The entry buffers are not used here — barrier epochs are long and would
// overflow them (Table II applies MEB/IEB to critical sections only).
func (p *P) BarrierSync(id int) {
	if p.cfg.HCC {
		p.Barrier(id)
		return
	}
	if !p.cfg.WriteThrough {
		p.WBAll()
	}
	p.Barrier(id)
	p.INVAll()
}

// BarrierSyncRanges is the programmer-refined barrier annotation of
// Section IV-A.1: only the given ranges are written back and invalidated
// (for example, when each thread owns part of the shared space and reuses
// it across barriers). Empty slices fall back to the ALL forms.
func (p *P) BarrierSyncRanges(id int, wb, inv []mem.Range) {
	if p.cfg.HCC {
		p.Barrier(id)
		return
	}
	if !p.cfg.WriteThrough {
		if len(wb) == 0 {
			p.WBAll()
		}
		for _, r := range wb {
			p.WB(r)
		}
	}
	p.Barrier(id)
	if len(inv) == 0 {
		p.INVAll()
	}
	for _, r := range inv {
		p.INV(r)
	}
}

// CSEnter is an annotated lock acquire. Under OCC it first posts all
// writes made since the last full writeback (the pre-acquire WB of Figure
// 4d); it then eliminates potentially stale data: eagerly before the
// acquire, or lazily via the IEB just after it.
func (p *P) CSEnter(lock int) {
	if p.cfg.HCC {
		p.Acquire(lock)
		return
	}
	if p.cfg.UseBloom {
		// Selective invalidation against the lock channel's published
		// signature replaces both the eager INV ALL and (because the
		// signature covers everything earlier holders wrote, inside or
		// outside their critical sections) the OCC INV ALL. Unlike the
		// eager INV ALL, it cannot be hoisted before the acquire: the
		// signature travels with the lock grant (Ashby et al.), and
		// releases that happen while this thread waits extend it.
		p.Acquire(lock)
		p.INVSig(lock)
		return
	}
	if p.pat.OCC {
		p.wbAllCS()
	}
	if p.cfg.UseIEB {
		p.Acquire(lock)
		p.INVAllLazy()
		return
	}
	p.INVAll()
	p.Acquire(lock)
}

// CSExit is an annotated lock release: writes made in the critical section
// are posted before the release; under OCC, data produced by earlier lock
// holders outside their critical sections may be consumed next, so the
// cache is invalidated after the release.
func (p *P) CSExit(lock int) {
	if p.cfg.HCC {
		p.Release(lock)
		return
	}
	if p.cfg.UseBloom {
		p.WBAll()
		p.SigPublish(lock)
		p.Release(lock)
		return
	}
	p.wbAllCS()
	p.Release(lock)
	if p.pat.OCC {
		p.INVAll()
	}
}

// NotifyFlag posts all writes, then sets the flag (Figure 4c's set side).
func (p *P) NotifyFlag(id int, v int64) {
	if p.cfg.HCC {
		p.FlagSet(id, v)
		return
	}
	p.wbAllCS()
	p.FlagSet(id, v)
}

// AwaitFlag waits for the flag, then invalidates potentially stale data
// (Figure 4c's wait side).
func (p *P) AwaitFlag(id int, threshold int64) {
	p.FlagWait(id, threshold)
	if !p.cfg.HCC {
		p.INVAll()
	}
}

// RacePublish implements the enforced data-race communication of Figure
// 6b: the payload ranges already written by the caller are written back,
// then the flag word is stored and written back, making both observable to
// a racing reader.
func (p *P) RacePublish(flag mem.Addr, v mem.Word, payload ...mem.Range) {
	if p.cfg.HCC {
		p.Store(flag, v)
		return
	}
	if p.cfg.WriteThrough {
		p.Store(flag, v)
		return
	}
	for _, r := range payload {
		p.WB(r)
	}
	p.Store(flag, v)
	p.WB(mem.WordRange(flag, 1))
}

// RaceSpin spins on a racing flag word until pred holds, self-invalidating
// the flag before every read, then invalidates the payload ranges and
// returns the flag value (Figure 6b's read side). spinCost models the
// loop's instruction cost per iteration.
func (p *P) RaceSpin(flag mem.Addr, pred func(mem.Word) bool, payload ...mem.Range) mem.Word {
	for {
		if !p.cfg.HCC {
			p.INV(mem.WordRange(flag, 1))
		}
		v := p.Load(flag)
		if pred(v) {
			if !p.cfg.HCC {
				for _, r := range payload {
					p.INV(r)
				}
			}
			return v
		}
		// Polite backoff: each self-invalidating probe is a full network
		// round trip, so spinning tightly would flood the mesh.
		p.Compute(256)
	}
}

// App is an application written against the annotated interface: a
// function run by every thread.
type App func(p *P)

// Guests lowers an App to engine guests for n threads under cfg and pat.
func Guests(n int, cfg Config, pat Pattern, app App) []engine.Guest {
	gs := make([]engine.Guest, n)
	for i := range gs {
		gs[i] = func(ep engine.Proc) { app(Wrap(ep, cfg, pat)) }
	}
	return gs
}
