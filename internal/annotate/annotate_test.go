package annotate

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/mesi"
	"repro/internal/topo"
)

func runApp(t *testing.T, cfg Config, pat Pattern, n int, app App) (engine.Hierarchy, *engine.Result) {
	t.Helper()
	m := topo.NewIntraBlock()
	var h engine.Hierarchy
	if cfg.HCC {
		h = mesi.New(m, mesi.DefaultConfig(m))
	} else {
		c := core.DefaultConfig(m)
		if cfg.UseMEB {
			c.MEBEntries = 16
		}
		if cfg.UseIEB {
			c.IEBEntries = 4
		}
		h = core.New(m, c)
	}
	res, err := engine.New(h, Guests(n, cfg, pat, app)).Run()
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	h.Drain()
	return h, res
}

// A barrier-based reduction tree: every thread writes its slot, barrier,
// thread 0 sums. Correct under every configuration.
func barrierApp(slots mem.Addr, n int, out mem.Addr) App {
	return func(p *P) {
		p.Store(slots+mem.Addr(p.ID()*4), mem.Word(p.ID()+1))
		p.BarrierSync(0)
		if p.ID() == 0 {
			var sum mem.Word
			for i := 0; i < n; i++ {
				sum += p.Load(slots + mem.Addr(i*4))
			}
			p.Store(out, sum)
		}
		p.BarrierSync(1)
	}
}

func TestBarrierAppCorrectUnderAllConfigs(t *testing.T) {
	const n = 16
	want := mem.Word(n * (n + 1) / 2)
	for _, cfg := range IntraConfigs {
		h, _ := runApp(t, cfg, Pattern{}, n, barrierApp(0x1000, n, 0x2000))
		if got := h.Memory().ReadWord(0x2000); got != want {
			t.Errorf("%s: sum = %d, want %d", cfg.Name, got, want)
		}
	}
}

// A critical-section counter with OCC disabled.
func csApp(counter mem.Addr, iters int) App {
	return func(p *P) {
		for k := 0; k < iters; k++ {
			p.CSEnter(7)
			v := p.Load(counter)
			p.Store(counter, v+1)
			p.CSExit(7)
		}
		p.BarrierSync(0)
	}
}

func TestCriticalSectionCounterUnderAllConfigs(t *testing.T) {
	const n, iters = 16, 4
	for _, cfg := range IntraConfigs {
		h, _ := runApp(t, cfg, Pattern{}, n, csApp(0x3000, iters))
		if got := h.Memory().ReadWord(0x3000); got != mem.Word(n*iters) {
			t.Errorf("%s: counter = %d, want %d", cfg.Name, got, n*iters)
		}
	}
}

// A task-queue app with OCC: each producer fills a task payload outside
// the critical section, publishes the index inside it; consumers pop the
// index inside a critical section and read the payload outside it.
func taskQueueApp(n int) App {
	const (
		qHead  = mem.Addr(0x4000)
		qItems = mem.Addr(0x4100)
		data   = mem.Addr(0x8000)
		outs   = mem.Addr(0xc000)
	)
	return func(p *P) {
		// Phase 1: each thread enqueues one task whose payload is written
		// OUTSIDE the critical section.
		payload := data + mem.Addr(p.ID()*64)
		p.Store(payload, mem.Word(1000+p.ID()))
		p.CSEnter(3)
		head := p.Load(qHead)
		p.Store(qItems+mem.Addr(head*4), mem.Word(uint32(payload)))
		p.Store(qHead, head+1)
		p.CSExit(3)
		p.BarrierSync(0)
		// Phase 2: each thread pops one task and processes its payload.
		p.CSEnter(3)
		head = p.Load(qHead)
		p.Store(qHead, head-1)
		item := p.Load(qItems + mem.Addr((head-1)*4))
		p.CSExit(3)
		v := p.Load(mem.Addr(item)) // OCC read
		p.Store(outs+mem.Addr(p.ID()*4), v)
		p.BarrierSync(1)
	}
}

func TestOCCTaskQueueUnderAllConfigs(t *testing.T) {
	const n = 16
	for _, cfg := range IntraConfigs {
		h, _ := runApp(t, cfg, Pattern{OCC: true}, n, taskQueueApp(n))
		// Every output must be some valid payload value (1000..1015): the
		// OCC annotations make the payloads visible to whichever thread
		// popped them.
		seen := map[mem.Word]bool{}
		for i := 0; i < n; i++ {
			v := h.Memory().ReadWord(0xc000 + mem.Addr(i*4))
			if v < 1000 || v >= 1000+n {
				t.Errorf("%s: thread %d processed stale payload %d", cfg.Name, i, v)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Errorf("%s: %d distinct payloads processed, want %d", cfg.Name, len(seen), n)
		}
	}
}

// Flag-based pipeline: thread i produces for thread i+1.
func flagPipelineApp(n int, data mem.Addr) App {
	return func(p *P) {
		id := p.ID()
		if id == 0 {
			p.Store(data, 1)
			p.NotifyFlag(0, 1)
		} else {
			p.AwaitFlag(id-1, 1)
			v := p.Load(data + mem.Addr((id-1)*4))
			p.Store(data+mem.Addr(id*4), v+1)
			p.NotifyFlag(id, 1)
		}
		p.BarrierSync(0)
	}
}

func TestFlagPipelineUnderAllConfigs(t *testing.T) {
	const n = 16
	for _, cfg := range IntraConfigs {
		h, _ := runApp(t, cfg, Pattern{}, n, flagPipelineApp(n, 0x5000))
		if got := h.Memory().ReadWord(0x5000 + mem.Addr((n-1)*4)); got != mem.Word(n) {
			t.Errorf("%s: pipeline end = %d, want %d", cfg.Name, got, n)
		}
	}
}

// Data-race communication per Figure 6.
func raceApp(flag, data mem.Addr) App {
	return func(p *P) {
		if p.ID() == 0 {
			p.Store(data, 777)
			p.RacePublish(flag, 1, mem.WordRange(data, 1))
		} else if p.ID() == 1 {
			p.RaceSpin(flag, func(v mem.Word) bool { return v == 1 }, mem.WordRange(data, 1))
			v := p.Load(data)
			p.Store(data+4, v)
		}
		p.BarrierSync(0)
	}
}

func TestRaceCommunicationUnderAllConfigs(t *testing.T) {
	for _, cfg := range IntraConfigs {
		h, _ := runApp(t, cfg, Pattern{}, 16, raceApp(0x6000, 0x6100))
		if got := h.Memory().ReadWord(0x6104); got != 777 {
			t.Errorf("%s: raced payload = %d, want 777", cfg.Name, got)
		}
	}
}

func TestHCCInsertsNoWBINV(t *testing.T) {
	h, res := runApp(t, HCC, Pattern{OCC: true}, 16, taskQueueApp(16))
	hm := h.(*mesi.Hierarchy)
	if hm.Counters().Get("ignored.wbinv") != 0 {
		t.Error("HCC configuration issued WB/INV instructions")
	}
	_ = res
}

func TestMEBConfigUsesMEB(t *testing.T) {
	h, _ := runApp(t, BMI, Pattern{OCC: true}, 16, taskQueueApp(16))
	hc := h.(*core.Hierarchy)
	if hc.Counters().Get("meb.served") == 0 {
		t.Error("B+M+I run never served a WB ALL from the MEB")
	}
	if hc.Counters().Get("ieb.armed") == 0 {
		t.Error("B+M+I run never armed the IEB")
	}
}

func TestBaseConfigTouchesNoBuffers(t *testing.T) {
	h, _ := runApp(t, Base, Pattern{OCC: true}, 16, taskQueueApp(16))
	hc := h.(*core.Hierarchy)
	if hc.Counters().Get("meb.served") != 0 || hc.Counters().Get("ieb.armed") != 0 {
		t.Error("Base run used entry buffers")
	}
}

func TestBaseSlowerThanBMIOnCriticalSections(t *testing.T) {
	// The headline intra-block effect: entry buffers recover most of the
	// Base overhead in lock-intensive code.
	_, base := runApp(t, Base, Pattern{OCC: true}, 16, taskQueueApp(16))
	_, bmi := runApp(t, BMI, Pattern{OCC: true}, 16, taskQueueApp(16))
	if bmi.Cycles >= base.Cycles {
		t.Errorf("B+M+I (%d cycles) not faster than Base (%d cycles)", bmi.Cycles, base.Cycles)
	}
}

func TestBarrierSyncRanges(t *testing.T) {
	const n = 16
	app := func(p *P) {
		slot := mem.Addr(0x1000 + p.ID()*4)
		p.Store(slot, mem.Word(p.ID()))
		wb := []mem.Range{mem.WordRange(slot, 1)}
		inv := []mem.Range{mem.WordRange(0x1000, n)}
		p.BarrierSyncRanges(0, wb, inv)
		if p.ID() == 0 {
			var sum mem.Word
			for i := 0; i < n; i++ {
				sum += p.Load(0x1000 + mem.Addr(i*4))
			}
			p.Store(0x2000, sum)
		}
		p.BarrierSync(1)
	}
	for _, cfg := range []Config{HCC, Base, BMI} {
		h, _ := runApp(t, cfg, Pattern{}, n, app)
		if got := h.Memory().ReadWord(0x2000); got != mem.Word(n*(n-1)/2) {
			t.Errorf("%s: sum = %d", cfg.Name, got)
		}
	}
}
