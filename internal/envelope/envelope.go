// Package envelope is the single definition of the hic/v2 JSON envelope:
// every machine-readable artifact the tools emit — sweep results, litmus
// documents, metrics snapshots, the storage report, fuzz campaign
// reports — carries {"schema": "hic/v2", "kind": "..."} so consumers
// dispatch on one field pair instead of per-tool schema strings.
//
// Before this package the schema constants lived in internal/runner and
// each command kept its own legacy-schema spelling; the server
// (internal/serve), the shape checker, and all the cmds now share these
// definitions. The pre-envelope v1 layouts (one schema string per tool)
// remain readable and writable for old consumers: each Kind knows its
// legacy schema string, and Negotiate maps the -schema flag spellings to
// an envelope generation.
package envelope

import (
	"encoding/json"
	"fmt"
)

// SchemaV2 is the unified versioned envelope identifier.
const SchemaV2 = "hic/v2"

// Kind discriminates the document kinds of the hic/v2 envelope.
type Kind string

const (
	// KindResults is a sweep results document (runner.Document).
	KindResults Kind = "results"
	// KindLitmus is a litmus-test document (litmus.Document).
	KindLitmus Kind = "litmus"
	// KindMetrics is a standalone observability snapshot (internal/obs).
	KindMetrics Kind = "metrics"
	// KindStorage is the Section VII-A storage report (overhead.Document).
	KindStorage Kind = "storage"
	// KindFuzz is the annotation-mutation fuzz campaign report
	// (internal/fuzzgen).
	KindFuzz Kind = "fuzz"
)

// Kinds lists every valid kind, in a fixed order.
func Kinds() []Kind {
	return []Kind{KindResults, KindLitmus, KindMetrics, KindStorage, KindFuzz}
}

// Valid reports whether k is a known envelope kind.
func (k Kind) Valid() bool {
	switch k {
	case KindResults, KindLitmus, KindMetrics, KindStorage, KindFuzz:
		return true
	}
	return false
}

// String returns the kind's JSON spelling.
func (k Kind) String() string { return string(k) }

// Legacy pre-envelope schema strings, one per tool.
const (
	// ResultsV1 is the legacy sweep-results layout.
	ResultsV1 = "hic-results/v1"
	// LitmusV1 is the legacy litmus-document layout.
	LitmusV1 = "hic-litmus/v1"
	// MetricsV1 identifies the metrics snapshot format (unchanged under
	// v2: snapshots embed it even inside v2 result documents).
	MetricsV1 = "hic-metrics/v1"
)

// V1Schema returns the kind's legacy pre-envelope schema string, or ""
// for kinds that postdate the v1 layouts (storage, fuzz) and therefore
// have no legacy writer.
func (k Kind) V1Schema() string {
	switch k {
	case KindResults:
		return ResultsV1
	case KindLitmus:
		return LitmusV1
	case KindMetrics:
		return MetricsV1
	}
	return ""
}

// Generation is an envelope generation a consumer can ask for.
type Generation int

const (
	// V2 is the unified hic/v2 envelope (the default).
	V2 Generation = iota
	// V1 is the legacy per-tool layout.
	V1
)

// Negotiate maps a version spelling (the -schema flag, a server request
// field) to an envelope generation: "v2" or "" select V2, "v1" selects
// V1, anything else is an error.
func Negotiate(version string) (Generation, error) {
	switch version {
	case "", "v2", SchemaV2:
		return V2, nil
	case "v1":
		return V1, nil
	}
	return V2, fmt.Errorf("unknown schema %q (want v1 or v2)", version)
}

// Head is the common prefix of every enveloped document, for sniffing a
// document's generation and kind without decoding the body.
type Head struct {
	Schema string `json:"schema"`
	Kind   Kind   `json:"kind,omitempty"`
}

// Validate checks that the head names a document this codebase can
// dispatch: the v2 envelope with a valid kind, or a known v1 schema.
func (h Head) Validate() error {
	if h.Schema == SchemaV2 {
		if !h.Kind.Valid() {
			return fmt.Errorf("unknown %s kind %q", SchemaV2, h.Kind)
		}
		return nil
	}
	for _, k := range Kinds() {
		if s := k.V1Schema(); s != "" && s == h.Schema {
			return nil
		}
	}
	return fmt.Errorf("unknown schema %q (want %q)", h.Schema, SchemaV2)
}

// Detect sniffs the envelope head from raw document bytes.
func Detect(data []byte) (Head, error) {
	var h Head
	if err := json.Unmarshal(data, &h); err != nil {
		return h, fmt.Errorf("not an enveloped document: %w", err)
	}
	if err := h.Validate(); err != nil {
		return h, err
	}
	return h, nil
}
