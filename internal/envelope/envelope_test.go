package envelope

import "testing"

func TestKindValid(t *testing.T) {
	for _, k := range Kinds() {
		if !k.Valid() {
			t.Errorf("Kinds() entry %q not Valid", k)
		}
	}
	for _, k := range []Kind{"", "sweeps", "Results"} {
		if k.Valid() {
			t.Errorf("Kind(%q).Valid() = true, want false", k)
		}
	}
}

func TestV1Schema(t *testing.T) {
	cases := map[Kind]string{
		KindResults: "hic-results/v1",
		KindLitmus:  "hic-litmus/v1",
		KindMetrics: "hic-metrics/v1",
		KindStorage: "",
		KindFuzz:    "",
	}
	for k, want := range cases {
		if got := k.V1Schema(); got != want {
			t.Errorf("%s.V1Schema() = %q, want %q", k, got, want)
		}
	}
}

func TestNegotiate(t *testing.T) {
	for _, spelling := range []string{"", "v2", SchemaV2} {
		g, err := Negotiate(spelling)
		if err != nil || g != V2 {
			t.Errorf("Negotiate(%q) = %v, %v; want V2, nil", spelling, g, err)
		}
	}
	if g, err := Negotiate("v1"); err != nil || g != V1 {
		t.Errorf("Negotiate(v1) = %v, %v; want V1, nil", g, err)
	}
	if _, err := Negotiate("v3"); err == nil {
		t.Error("Negotiate(v3) succeeded, want error")
	}
}

func TestDetect(t *testing.T) {
	cases := []struct {
		data string
		kind Kind
		ok   bool
	}{
		{`{"schema":"hic/v2","kind":"results","suite":"intra"}`, KindResults, true},
		{`{"schema":"hic/v2","kind":"litmus"}`, KindLitmus, true},
		{`{"schema":"hic-results/v1","suite":"intra"}`, "", true},
		{`{"schema":"hic-litmus/v1"}`, "", true},
		{`{"schema":"hic/v2","kind":"nope"}`, "", false},
		{`{"schema":"hic/v3","kind":"results"}`, "", false},
		{`not json`, "", false},
	}
	for _, c := range cases {
		h, err := Detect([]byte(c.data))
		if (err == nil) != c.ok {
			t.Errorf("Detect(%s) err = %v, want ok=%v", c.data, err, c.ok)
			continue
		}
		if err == nil && h.Kind != c.kind {
			t.Errorf("Detect(%s) kind = %q, want %q", c.data, h.Kind, c.kind)
		}
	}
}
