// Package shapecheck asserts the paper's qualitative config-vs-config
// orderings ("expected shapes", DESIGN.md §4) against a machine-readable
// result document. It is the contract CI enforces on every change: the
// reproduction's claim is the *shape* of Figures 9-12 — which
// configuration beats which — not absolute cycle counts, so these are the
// regressions worth failing a build over.
//
// Expected shapes checked (paper, Section VII):
//
//	E3 (Figure 9):  Base is slower than HCC; B+M+I beats Base and lands
//	                near HCC (paper: Base ≈ +20%, B+M+I ≈ +2%).
//	E4 (Figure 10): B+M+I generates zero invalidation traffic and no more
//	                total traffic than HCC plus tolerance (paper: −4%).
//	E5 (Figure 11): EP and IS keep all their global operations (pure
//	                reductions), CG keeps its WBs but drops INVs, Jacobi
//	                drops both sharply (paper: to ~25%).
//	E6 (Figure 12): Addr+L ≤ Addr ≤ Base on average; Addr+L stays near
//	                HCC (paper: ≈ +5%).
//
// Each rule only fires when its figure is present, so intra-only and
// inter-only documents check cleanly.
package shapecheck

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/envelope"
	"repro/internal/runner"
)

// Tolerances. The orderings are qualitative; the slack absorbs scale
// noise (the test-scale inputs are far smaller than the paper's) without
// letting a real inversion through.
const (
	// eqTol bounds values that must be exactly-normalized (HCC bars,
	// unchanged-fraction bars) — these are computed ratios, so only
	// float rounding applies.
	eqTol = 1e-9
	// bmiNearHCCSlack is how far above HCC B+M+I may land. The paper
	// reports ≈ +2% at full scale; at test scale the scaled-down inputs
	// expose more of the WB/INV latency (observed ≈ +23%), so the gate
	// sits at +35% — far below Base's ≈ +105%, so a B+M+I regression
	// toward Base still trips it.
	bmiNearHCCSlack = 0.35
	// addrLNearHCCSlack is how far above HCC Addr+L may land (the paper
	// reports ≈ +5%; observed ≈ +1% at test scale).
	addrLNearHCCSlack = 0.15
	// orderSlack lets a "≤" ordering pass when the two sides are within
	// 2% of each other (reduction-bound apps differ by noise).
	orderSlack = 0.02
	// trafficSlack is how much more total traffic than HCC the B+M+I
	// configuration may generate (the paper reports less).
	trafficSlack = 0.05
	// sharpDrop is the largest "dropped sharply" fraction allowed for
	// Jacobi's surviving global operations (paper: ~25% survive).
	sharpDrop = 0.6
)

// Violation is one broken expected shape.
type Violation struct {
	// Figure is the artifact the rule belongs to ("figure9", ...).
	Figure string
	// Rule names the expectation.
	Rule string
	// Detail states the observed values.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Figure, v.Rule, v.Detail)
}

// Check evaluates every applicable expected shape against doc and returns
// the violations (empty means the document passes).
func Check(doc *runner.Document) []Violation {
	var vs []Violation
	// Both envelope generations are accepted: the legacy hic-results/v1
	// layout and the unified hic/v2 envelope with kind "results" (any
	// other kind is not a results document and cannot be shape-checked).
	switch doc.Schema {
	case envelope.ResultsV1:
	case envelope.SchemaV2:
		if doc.Kind != envelope.KindResults {
			return []Violation{{Figure: "document", Rule: "document kind",
				Detail: fmt.Sprintf("got %q, want %q", doc.Kind, envelope.KindResults)}}
		}
	default:
		return []Violation{{Figure: "document", Rule: "schema version",
			Detail: fmt.Sprintf("got %q, want %q or %q", doc.Schema, envelope.SchemaV2, envelope.ResultsV1)}}
	}
	vs = append(vs, checkRuns(doc)...)
	if f := doc.FigureByID("figure9"); f != nil {
		vs = append(vs, checkFigure9(f)...)
	}
	if f := doc.FigureByID("figure10"); f != nil {
		vs = append(vs, checkFigure10(f)...)
	}
	if f := doc.FigureByID("figure11"); f != nil {
		vs = append(vs, checkFigure11(f)...)
	}
	if f := doc.FigureByID("figure12"); f != nil {
		vs = append(vs, checkFigure12(f)...)
	}
	return vs
}

// Render formats violations one per line for CI logs.
func Render(vs []Violation) string {
	if len(vs) == 0 {
		return "shapecheck: all expected orderings hold\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "shapecheck: %d violation(s):\n", len(vs))
	for _, v := range vs {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

// checkRuns fails on any errored cell: a sweep with failed runs has
// figures assembled from partial data.
func checkRuns(doc *runner.Document) []Violation {
	var vs []Violation
	for _, r := range doc.Runs {
		if r.Error != "" {
			vs = append(vs, Violation{Figure: "runs", Rule: "all runs succeed",
				Detail: fmt.Sprintf("%s/%s: %s", r.Workload, r.Config, r.Error)})
		}
	}
	return vs
}

// meanTotals averages bar totals per label across groups.
func meanTotals(f *runner.Figure) map[string]float64 {
	sum := make(map[string]float64)
	n := make(map[string]int)
	for _, g := range f.Groups {
		for _, b := range g.Bars {
			sum[b.Label] += b.Total
			n[b.Label]++
		}
	}
	for l := range sum {
		sum[l] /= float64(n[l])
	}
	return sum
}

// barOf returns group g's bar with the given label, or nil.
func barOf(g *runner.Group, label string) *runner.Bar {
	for i := range g.Bars {
		if g.Bars[i].Label == label {
			return &g.Bars[i]
		}
	}
	return nil
}

// requireBaseline checks every group's baseline bar totals exactly 1.0
// (the normalization contract keyed assembly must uphold in any config
// order).
func requireBaseline(f *runner.Figure, label string) []Violation {
	var vs []Violation
	for i := range f.Groups {
		g := &f.Groups[i]
		b := barOf(g, label)
		if b == nil {
			vs = append(vs, Violation{Figure: f.ID, Rule: label + " baseline present",
				Detail: fmt.Sprintf("%s has no %s bar", g.Name, label)})
			continue
		}
		if math.Abs(b.Total-1) > eqTol {
			vs = append(vs, Violation{Figure: f.ID, Rule: label + " normalized to 1.0",
				Detail: fmt.Sprintf("%s %s total = %.6f", g.Name, label, b.Total)})
		}
	}
	return vs
}

func checkFigure9(f *runner.Figure) []Violation {
	vs := requireBaseline(f, "HCC")
	m := meanTotals(f)
	base, bmi := m["Base"], m["B+M+I"]
	if base <= 1 {
		vs = append(vs, Violation{Figure: f.ID, Rule: "Base slower than HCC",
			Detail: fmt.Sprintf("mean Base = %.4f, want > 1.0", base)})
	}
	if bmi > base*(1+orderSlack) {
		vs = append(vs, Violation{Figure: f.ID, Rule: "B+M+I ≤ Base",
			Detail: fmt.Sprintf("mean B+M+I = %.4f above mean Base = %.4f", bmi, base)})
	}
	if bmi > 1+bmiNearHCCSlack {
		vs = append(vs, Violation{Figure: f.ID, Rule: "B+M+I near HCC",
			Detail: fmt.Sprintf("mean B+M+I = %.4f, want ≤ %.2f", bmi, 1+bmiNearHCCSlack)})
	}
	return vs
}

func checkFigure10(f *runner.Figure) []Violation {
	vs := requireBaseline(f, "HCC")
	invIdx := -1
	for i, c := range f.Categories {
		if c == "invalidation" {
			invIdx = i
		}
	}
	for i := range f.Groups {
		g := &f.Groups[i]
		b := barOf(g, "B+M+I")
		if b == nil {
			vs = append(vs, Violation{Figure: f.ID, Rule: "B+M+I bar present",
				Detail: fmt.Sprintf("%s has no B+M+I bar", g.Name)})
			continue
		}
		if invIdx >= 0 && invIdx < len(b.Segments) && b.Segments[invIdx] != 0 {
			vs = append(vs, Violation{Figure: f.ID, Rule: "B+M+I has no invalidation traffic",
				Detail: fmt.Sprintf("%s B+M+I invalidation = %.6f", g.Name, b.Segments[invIdx])})
		}
	}
	if m := meanTotals(f); m["B+M+I"] > 1+trafficSlack {
		vs = append(vs, Violation{Figure: f.ID, Rule: "B+M+I traffic ≤ HCC",
			Detail: fmt.Sprintf("mean B+M+I traffic = %.4f, want ≤ %.2f", m["B+M+I"], 1+trafficSlack)})
	}
	return vs
}

func checkFigure11(f *runner.Figure) []Violation {
	var vs []Violation
	// Segments are [global WB fraction, global INV fraction] vs Addr.
	frac := func(name string) []float64 {
		for i := range f.Groups {
			if f.Groups[i].Name == name {
				if b := barOf(&f.Groups[i], "Addr+L"); b != nil {
					return b.Segments
				}
			}
		}
		return nil
	}
	// EP is a pure reduction: the compiler can prove nothing, so Addr+L
	// must leave every global operation in place. IS is reduction-bound
	// too, but its permutation phase lets a small share of INVs localize
	// at test scale (observed ≈ 11%); what it must not do is drop
	// sharply like Jacobi.
	if s := frac("ep"); s == nil {
		vs = append(vs, Violation{Figure: f.ID, Rule: "Addr+L bar present", Detail: "ep missing"})
	} else {
		for i, kind := range []string{"WB", "INV"} {
			if i < len(s) && math.Abs(s[i]-1) > eqTol {
				vs = append(vs, Violation{Figure: f.ID, Rule: "ep unchanged under Addr+L",
					Detail: fmt.Sprintf("ep global %s fraction = %.4f, want 1.0", kind, s[i])})
			}
		}
	}
	if s := frac("is"); s == nil {
		vs = append(vs, Violation{Figure: f.ID, Rule: "Addr+L bar present", Detail: "is missing"})
	} else {
		for i, kind := range []string{"WB", "INV"} {
			if i < len(s) && (s[i] <= sharpDrop || s[i] > 1+eqTol) {
				vs = append(vs, Violation{Figure: f.ID, Rule: "is essentially unchanged under Addr+L",
					Detail: fmt.Sprintf("is global %s fraction = %.4f, want in (%.2f, 1.0]", kind, s[i], sharpDrop)})
			}
		}
	}
	if s := frac("jacobi"); s != nil {
		for i, kind := range []string{"WB", "INV"} {
			if i < len(s) && s[i] > sharpDrop {
				vs = append(vs, Violation{Figure: f.ID, Rule: "jacobi global ops drop sharply",
					Detail: fmt.Sprintf("global %s fraction = %.4f, want ≤ %.2f", kind, s[i], sharpDrop)})
			}
		}
	} else {
		vs = append(vs, Violation{Figure: f.ID, Rule: "Addr+L bar present", Detail: "jacobi missing"})
	}
	if s := frac("cg"); s != nil && len(s) >= 2 {
		if math.Abs(s[0]-1) > orderSlack {
			vs = append(vs, Violation{Figure: f.ID, Rule: "cg keeps global WBs",
				Detail: fmt.Sprintf("global WB fraction = %.4f, want ~1.0", s[0])})
		}
		if s[1] >= 1 || s[1] == 0 {
			vs = append(vs, Violation{Figure: f.ID, Rule: "cg drops some global INVs",
				Detail: fmt.Sprintf("global INV fraction = %.4f, want in (0,1)", s[1])})
		}
	} else {
		vs = append(vs, Violation{Figure: f.ID, Rule: "Addr+L bar present", Detail: "cg missing"})
	}
	return vs
}

func checkFigure12(f *runner.Figure) []Violation {
	vs := requireBaseline(f, "HCC")
	m := meanTotals(f)
	base, addr, addrL := m["Base"], m["Addr"], m["Addr+L"]
	if addr >= base {
		vs = append(vs, Violation{Figure: f.ID, Rule: "Addr faster than Base",
			Detail: fmt.Sprintf("mean Addr = %.4f, mean Base = %.4f", addr, base)})
	}
	if addrL > addr*(1+orderSlack) {
		vs = append(vs, Violation{Figure: f.ID, Rule: "Addr+L ≤ Addr",
			Detail: fmt.Sprintf("mean Addr+L = %.4f above mean Addr = %.4f", addrL, addr)})
	}
	if addrL > 1+addrLNearHCCSlack {
		vs = append(vs, Violation{Figure: f.ID, Rule: "Addr+L near HCC",
			Detail: fmt.Sprintf("mean Addr+L = %.4f, want ≤ %.2f", addrL, 1+addrLNearHCCSlack)})
	}
	return vs
}
