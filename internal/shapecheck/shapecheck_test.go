package shapecheck

import (
	"strings"
	"testing"

	"repro/internal/envelope"
	"repro/internal/runner"
)

// goodDoc builds a document exhibiting the paper's shapes exactly.
func goodDoc() *runner.Document {
	bar := func(label string, total float64, segs ...float64) runner.Bar {
		if segs == nil {
			segs = []float64{total}
		}
		return runner.Bar{Label: label, Segments: segs, Total: total}
	}
	f9 := runner.Figure{ID: "figure9", Categories: []string{"inv", "wb", "lock", "barrier", "rest"}}
	f10 := runner.Figure{ID: "figure10", Categories: []string{"linefill", "writeback", "invalidation", "memory"}}
	for _, app := range []string{"fft", "cholesky"} {
		f9.Groups = append(f9.Groups, runner.Group{Name: app, Bars: []runner.Bar{
			bar("HCC", 1.0), bar("Base", 1.20), bar("B+M", 1.05),
			bar("B+I", 1.18), bar("B+M+I", 1.02),
		}})
		f10.Groups = append(f10.Groups, runner.Group{Name: app, Bars: []runner.Bar{
			bar("HCC", 1.0, 0.5, 0.2, 0.1, 0.2),
			bar("B+M+I", 0.96, 0.5, 0.21, 0, 0.25),
		}})
	}
	f11 := runner.Figure{ID: "figure11", Categories: []string{"global-wb", "global-inv"}}
	for app, segs := range map[string][]float64{
		"ep": {1, 1}, "is": {1, 1}, "cg": {1, 0.78}, "jacobi": {0.25, 0.25},
	} {
		f11.Groups = append(f11.Groups, runner.Group{Name: app, Bars: []runner.Bar{
			{Label: "Addr", Segments: []float64{1, 1}, Total: 2},
			{Label: "Addr+L", Segments: segs, Total: segs[0] + segs[1]},
		}})
	}
	f12 := runner.Figure{ID: "figure12", Categories: []string{"cycles"}}
	for _, app := range []string{"ep", "is", "cg", "jacobi"} {
		f12.Groups = append(f12.Groups, runner.Group{Name: app, Bars: []runner.Bar{
			bar("HCC", 1.0), bar("Base", 1.52), bar("Addr", 1.10), bar("Addr+L", 1.05),
		}})
	}
	return &runner.Document{
		Schema:  envelope.ResultsV1,
		Scale:   "test",
		Suite:   "all",
		Figures: []runner.Figure{f9, f10, f11, f12},
		Runs:    []runner.RunRecord{{Workload: "fft", Config: "HCC", Cycles: 1000}},
	}
}

func TestGoodDocumentPasses(t *testing.T) {
	if vs := Check(goodDoc()); len(vs) != 0 {
		t.Fatalf("expected no violations, got:\n%s", Render(vs))
	}
}

func TestSchemaVersionRejected(t *testing.T) {
	d := goodDoc()
	d.Schema = "hic-results/v0"
	vs := Check(d)
	if len(vs) != 1 || vs[0].Rule != "schema version" {
		t.Fatalf("want single schema violation, got %v", vs)
	}
}

func TestFailedRunIsViolation(t *testing.T) {
	d := goodDoc()
	d.Runs = append(d.Runs, runner.RunRecord{
		Workload: "barnes", Config: "Base", Error: "barnes/Base: run exceeded timeout 1s",
	})
	vs := Check(d)
	if !hasRule(vs, "all runs succeed") {
		t.Fatalf("timeout run not flagged: %v", vs)
	}
}

func TestBrokenOrderingsAreCaught(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(d *runner.Document)
		rule   string
	}{
		{"BMI slower than Base", func(d *runner.Document) {
			setTotal(d, "figure9", "fft", "B+M+I", 1.4)
			setTotal(d, "figure9", "cholesky", "B+M+I", 1.4)
		}, "B+M+I ≤ Base"},
		{"Base faster than HCC", func(d *runner.Document) {
			setTotal(d, "figure9", "fft", "Base", 0.9)
			setTotal(d, "figure9", "cholesky", "Base", 0.9)
		}, "Base slower than HCC"},
		{"HCC not normalized", func(d *runner.Document) {
			setTotal(d, "figure9", "fft", "HCC", 1.3)
		}, "HCC normalized to 1.0"},
		{"BMI emits invalidations", func(d *runner.Document) {
			f := d.FigureByID("figure10")
			f.Groups[0].Bars[1].Segments[2] = 0.05
		}, "B+M+I has no invalidation traffic"},
		{"EP changed under Addr+L", func(d *runner.Document) {
			f := d.FigureByID("figure11")
			for i := range f.Groups {
				if f.Groups[i].Name == "ep" {
					f.Groups[i].Bars[1].Segments[0] = 0.5
				}
			}
		}, "ep unchanged under Addr+L"},
		{"IS drops sharply under Addr+L", func(d *runner.Document) {
			f := d.FigureByID("figure11")
			for i := range f.Groups {
				if f.Groups[i].Name == "is" {
					f.Groups[i].Bars[1].Segments = []float64{0.3, 0.3}
				}
			}
		}, "is essentially unchanged under Addr+L"},
		{"jacobi keeps global ops", func(d *runner.Document) {
			f := d.FigureByID("figure11")
			for i := range f.Groups {
				if f.Groups[i].Name == "jacobi" {
					f.Groups[i].Bars[1].Segments = []float64{0.9, 0.9}
				}
			}
		}, "jacobi global ops drop sharply"},
		{"AddrL slower than Addr", func(d *runner.Document) {
			for _, app := range []string{"ep", "is", "cg", "jacobi"} {
				setTotal(d, "figure12", app, "Addr+L", 1.3)
			}
		}, "Addr+L ≤ Addr"},
		{"Addr slower than Base", func(d *runner.Document) {
			for _, app := range []string{"ep", "is", "cg", "jacobi"} {
				setTotal(d, "figure12", app, "Addr", 1.6)
			}
		}, "Addr faster than Base"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := goodDoc()
			c.break_(d)
			vs := Check(d)
			if !hasRule(vs, c.rule) {
				t.Errorf("violation %q not raised; got:\n%s", c.rule, Render(vs))
			}
		})
	}
}

func TestPartialDocumentsCheckOnlyPresentFigures(t *testing.T) {
	d := goodDoc()
	d.Figures = d.Figures[:2] // intra only
	d.Suite = "intra"
	if vs := Check(d); len(vs) != 0 {
		t.Fatalf("intra-only document should pass: %v", vs)
	}
	d = goodDoc()
	d.Figures = d.Figures[2:] // inter only
	d.Suite = "inter"
	if vs := Check(d); len(vs) != 0 {
		t.Fatalf("inter-only document should pass: %v", vs)
	}
}

func TestRenderListsEveryViolation(t *testing.T) {
	d := goodDoc()
	setTotal(d, "figure9", "fft", "HCC", 2)
	setTotal(d, "figure12", "ep", "HCC", 2)
	out := Render(Check(d))
	if !strings.Contains(out, "figure9") || !strings.Contains(out, "figure12") {
		t.Errorf("render missing figures:\n%s", out)
	}
	if Render(nil) == "" || strings.Contains(Render(nil), "violation") {
		t.Errorf("empty render wrong: %q", Render(nil))
	}
}

func hasRule(vs []Violation, rule string) bool {
	for _, v := range vs {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func setTotal(d *runner.Document, fig, group, label string, total float64) {
	f := d.FigureByID(fig)
	for i := range f.Groups {
		if f.Groups[i].Name != group {
			continue
		}
		for j := range f.Groups[i].Bars {
			if f.Groups[i].Bars[j].Label == label {
				f.Groups[i].Bars[j].Total = total
				f.Groups[i].Bars[j].Segments = []float64{total}
			}
		}
	}
}
