package faultinject

import (
	"reflect"
	"testing"

	"repro/internal/mem"
)

func TestParseCanonical(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", ""},
		{" ; ; ", ""},
		{"drop-wb@3", "drop-wb@3"},
		{"drop-wb@3; drop-wb@3", "drop-wb@3"},
		{"skip-inv@7;drop-wb@9;drop-wb@2", "drop-wb@2; drop-wb@9; skip-inv@7"},
		{"meb-cap=2", "meb-cap=2"},
		{"ieb-lie@0; delay-wb@5", "delay-wb@5; ieb-lie@0"},
		{"seed=11", "seed=11"},
		{"  drop-wb@1 ;  meb-cap=4 ; seed=9 ", "drop-wb@1; meb-cap=4; seed=9"},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := p.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Round trip.
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", p.String(), err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Errorf("round trip of %q: %+v != %+v", c.in, p, p2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"bogus",
		"drop-wb@",
		"drop-wb@x",
		"drop-wb@-1",
		"skip-inv@ 3 ", // inner whitespace in the index is rejected
		"meb-cap=0",
		"meb-cap=-2",
		"meb-cap=x",
		"seed=x",
		"drop-wb=3",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestRandResolution(t *testing.T) {
	a := MustParse("drop-wb@rand; skip-inv@rand; seed=42")
	b := MustParse("drop-wb@rand; skip-inv@rand; seed=42")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed resolved differently: %v vs %v", a, b)
	}
	c := MustParse("drop-wb@rand; skip-inv@rand; seed=43")
	if reflect.DeepEqual(a.DropWB, c.DropWB) && reflect.DeepEqual(a.SkipINV, c.SkipINV) {
		t.Fatalf("different seeds resolved identically: %v", a)
	}
	// Seed placement does not matter.
	d := MustParse("seed=42; drop-wb@rand; skip-inv@rand")
	if !reflect.DeepEqual(a, d) {
		t.Fatalf("seed-first parse differs: %v vs %v", a, d)
	}
	for _, i := range a.DropWB {
		if i >= randIndexSpace {
			t.Errorf("rand index %d out of [0,%d)", i, randIndexSpace)
		}
	}
	// Resolved plans are stable through String (rand disappears).
	if got := a.String(); got != MustParse(got).String() {
		t.Errorf("resolved plan not canonical: %q", got)
	}
}

func TestEmpty(t *testing.T) {
	if !MustParse("").Empty() {
		t.Error("empty string should parse to the empty plan")
	}
	if !MustParse("seed=3").Empty() {
		t.Error("a bare seed injects nothing and should be Empty")
	}
	if MustParse("drop-wb@0").Empty() {
		t.Error("drop-wb plan should not be Empty")
	}
	if MustParse("meb-cap=1").Empty() {
		t.Error("meb-cap plan should not be Empty")
	}
}

func TestStateCursors(t *testing.T) {
	st := NewState(MustParse("drop-wb@1; delay-wb@2; skip-inv@0; ieb-lie@1"))
	wantWB := []WBAction{WBKeep, WBDrop, WBDelay, WBKeep}
	for i, want := range wantWB {
		if got := st.NextWB(); got != want {
			t.Errorf("NextWB #%d = %v, want %v", i, got, want)
		}
	}
	// The oracle replays the same decisions from its own cursor.
	for i, want := range wantWB {
		if got := st.OracleNextWB(); got != want {
			t.Errorf("OracleNextWB #%d = %v, want %v", i, got, want)
		}
	}
	if got := []bool{st.NextINV(), st.NextINV()}; !got[0] || got[1] {
		t.Errorf("NextINV sequence = %v, want [true false]", got)
	}
	if got := []bool{st.NextIEBLie(), st.NextIEBLie(), st.NextIEBLie()}; got[0] || !got[1] || got[2] {
		t.Errorf("NextIEBLie sequence = %v, want [false true false]", got)
	}
	if st.Drops != 1 || st.Delays != 1 || st.Skips != 1 || st.Lies != 1 {
		t.Errorf("counters = %s, want one of each", st.Summary())
	}
	if st.Injected() != 4 {
		t.Errorf("Injected() = %d, want 4", st.Injected())
	}
}

func TestDropWinsOverDelay(t *testing.T) {
	st := NewState(MustParse("drop-wb@0; delay-wb@0"))
	if got := st.NextWB(); got != WBDrop {
		t.Errorf("conflicting drop/delay at same index: got %v, want drop", got)
	}
}

func TestMEBCapAndLostLines(t *testing.T) {
	st := NewState(MustParse("meb-cap=2"))
	if st.MEBOverCap(1, false) {
		t.Error("under cap should not discard")
	}
	if st.MEBOverCap(2, true) {
		t.Error("already-present frame should never discard")
	}
	if !st.MEBOverCap(2, false) {
		t.Error("at cap with a new frame should discard")
	}
	st.NoteMEBLost(mem.Addr(0x100))
	st.NoteMEBLost(mem.Addr(0x140))
	st.FlushMEBLost()
	miss := st.TakeMEBMiss()
	if len(miss) != 2 || !miss[0x100] || !miss[0x140] {
		t.Errorf("TakeMEBMiss = %v, want the two noted lines", miss)
	}
	if st.TakeMEBMiss() != nil {
		t.Error("TakeMEBMiss should consume the set")
	}
	// ClearMEBLost forgets without handing to the oracle.
	st.NoteMEBLost(mem.Addr(0x200))
	st.ClearMEBLost()
	st.FlushMEBLost()
	if st.TakeMEBMiss() != nil {
		t.Error("cleared lines must not reach the oracle")
	}
	if st.MEBDiscards != 3 {
		t.Errorf("MEBDiscards = %d, want 3", st.MEBDiscards)
	}
}

func TestNoFaultStateIsInert(t *testing.T) {
	st := NewState(Plan{})
	for i := 0; i < 100; i++ {
		if st.NextWB() != WBKeep || st.NextINV() || st.NextIEBLie() {
			t.Fatal("empty plan must never inject")
		}
	}
	if st.MEBOverCap(1000, false) {
		t.Error("empty plan must not cap the MEB")
	}
	if st.Injected() != 0 {
		t.Errorf("Injected() = %d, want 0", st.Injected())
	}
}
