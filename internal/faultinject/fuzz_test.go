package faultinject

import (
	"reflect"
	"testing"
)

// FuzzFaultPlan checks the parser's two contracts on arbitrary input: it
// never panics, and every accepted plan is canonical — String round-trips
// through Parse to an identical plan and an identical string.
func FuzzFaultPlan(f *testing.F) {
	f.Add("")
	f.Add("drop-wb@0")
	f.Add("drop-wb@3; skip-inv@1; meb-cap=2; seed=7")
	f.Add("delay-wb@rand; ieb-lie@rand; seed=99")
	f.Add("seed=18446744073709551615")
	f.Add(" drop-wb@1 ;; meb-cap=16 ")
	f.Add("drop-wb@rand")
	f.Add("meb-cap=-1")
	f.Add("drop-wb@99999999999999999999")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		out := p.String()
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("String %q of accepted plan does not reparse: %v", out, err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip changed the plan: %+v -> %q -> %+v", p, out, p2)
		}
		if out2 := p2.String(); out2 != out {
			t.Fatalf("String not canonical: %q -> %q", out, out2)
		}
	})
}
