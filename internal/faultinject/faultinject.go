// Package faultinject provides deterministic, seed-addressed fault plans
// for the hardware-incoherent hierarchy. A plan names dynamic instruction
// indices at which the hierarchy misbehaves in a controlled way:
//
//	drop-wb@N    the Nth WB-family instruction does nothing (dirty words
//	             stay private until a later WB/INV/Drain covers them)
//	delay-wb@N   the Nth WB-family instruction parks its dirty words in
//	             the controller; they reach memory only when the
//	             hierarchy drains at the end of the run
//	skip-inv@N   the Nth INV-family instruction does nothing (stale lines
//	             survive; a lazy INV ALL does not arm the IEB)
//	meb-cap=K    the MEB silently discards clean→dirty records beyond K
//	             entries without raising its overflow bit, so a
//	             MEB-served WB ALL misses the discarded lines
//	ieb-lie@N    the Nth lookup that would lazily self-invalidate under
//	             an armed IEB pretends the line was already refreshed
//	seed=S       base seed for @rand indices
//
// Indices count dynamic instructions per hierarchy instance in execution
// order, which is deterministic under the engine; the same plan over the
// same workload therefore injects the same fault every run. An index may
// be spelled @rand, which resolves (at parse time, via SplitMix64 over
// the plan seed) to a pseudo-random index in [0, 256) — enough to land
// inside the steady state of every test-scale workload while keeping
// plans short.
//
// A Plan is pure data; a State threads one plan through a single run. The
// hierarchy consults the State at every public WB/INV entry point, and
// the coherence oracle replays the same decisions from its own cursor, so
// both sides agree on which instruction was sabotaged.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mem"
)

// WBAction is the fate of one WB-family instruction.
type WBAction int

const (
	// WBKeep executes the writeback normally.
	WBKeep WBAction = iota
	// WBDrop discards the writeback entirely.
	WBDrop
	// WBDelay parks the dirty words until the hierarchy drains.
	WBDelay
)

func (a WBAction) String() string {
	switch a {
	case WBDrop:
		return "drop"
	case WBDelay:
		return "delay"
	}
	return "keep"
}

// randIndexSpace bounds @rand index resolution; see the package comment.
const randIndexSpace = 256

// Plan is a parsed fault plan. The zero value injects nothing.
type Plan struct {
	// Seed is the @rand resolution seed (directive "seed=S").
	Seed uint64
	// DropWB and DelayWB hold WB-family instruction indices; an index in
	// both drops (drop wins).
	DropWB  []uint64
	DelayWB []uint64
	// SkipINV holds INV-family instruction indices.
	SkipINV []uint64
	// IEBLie holds armed-IEB lazy-invalidation decision indices.
	IEBLie []uint64
	// MEBCap, when positive, silently caps the MEB at that many entries.
	MEBCap int
}

// Empty reports whether the plan injects no faults at all.
func (p Plan) Empty() bool {
	return len(p.DropWB) == 0 && len(p.DelayWB) == 0 && len(p.SkipINV) == 0 &&
		len(p.IEBLie) == 0 && p.MEBCap == 0
}

// SplitMix64 is the standard 64-bit mixer; it gives @rand resolution
// (and the fuzz generator in internal/fuzzgen) a stable,
// dependency-free pseudo-random stream.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Parse parses a fault plan. Directives are separated by semicolons;
// whitespace around directives is ignored; an empty string (or only
// separators) is the empty plan. @rand indices resolve immediately, so
// the returned plan always carries concrete indices and round-trips
// through String.
func Parse(s string) (Plan, error) {
	var p Plan
	parts := strings.Split(s, ";")
	// Seed first: @rand in any directive resolves against it regardless
	// of where the seed= directive appears.
	for _, d := range parts {
		d = strings.TrimSpace(d)
		if v, ok := strings.CutPrefix(d, "seed="); ok {
			n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faultinject: bad seed %q", v)
			}
			p.Seed = n
		}
	}
	rng := p.Seed
	nextRand := func() uint64 {
		rng = SplitMix64(rng)
		return rng % randIndexSpace
	}
	index := func(v string) (uint64, error) {
		if v == "rand" {
			return nextRand(), nil
		}
		return strconv.ParseUint(v, 10, 64)
	}
	for _, d := range parts {
		d = strings.TrimSpace(d)
		if d == "" {
			continue
		}
		switch {
		case strings.HasPrefix(d, "seed="):
			// Handled in the first pass.
		case strings.HasPrefix(d, "drop-wb@"):
			i, err := index(d[len("drop-wb@"):])
			if err != nil {
				return Plan{}, fmt.Errorf("faultinject: bad directive %q", d)
			}
			p.DropWB = append(p.DropWB, i)
		case strings.HasPrefix(d, "delay-wb@"):
			i, err := index(d[len("delay-wb@"):])
			if err != nil {
				return Plan{}, fmt.Errorf("faultinject: bad directive %q", d)
			}
			p.DelayWB = append(p.DelayWB, i)
		case strings.HasPrefix(d, "skip-inv@"):
			i, err := index(d[len("skip-inv@"):])
			if err != nil {
				return Plan{}, fmt.Errorf("faultinject: bad directive %q", d)
			}
			p.SkipINV = append(p.SkipINV, i)
		case strings.HasPrefix(d, "ieb-lie@"):
			i, err := index(d[len("ieb-lie@"):])
			if err != nil {
				return Plan{}, fmt.Errorf("faultinject: bad directive %q", d)
			}
			p.IEBLie = append(p.IEBLie, i)
		case strings.HasPrefix(d, "meb-cap="):
			n, err := strconv.Atoi(strings.TrimSpace(d[len("meb-cap="):]))
			if err != nil || n <= 0 {
				return Plan{}, fmt.Errorf("faultinject: bad directive %q (want positive capacity)", d)
			}
			p.MEBCap = n
		default:
			return Plan{}, fmt.Errorf("faultinject: unknown directive %q", d)
		}
	}
	p.normalize()
	return p, nil
}

// MustParse is Parse for known-good literals (tests, experiment tables).
func MustParse(s string) Plan {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// normalize sorts and dedupes every index list so String is canonical.
func (p *Plan) normalize() {
	dedupe := func(xs []uint64) []uint64 {
		if len(xs) == 0 {
			return nil
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		out := xs[:1]
		for _, x := range xs[1:] {
			if x != out[len(out)-1] {
				out = append(out, x)
			}
		}
		return out
	}
	p.DropWB = dedupe(p.DropWB)
	p.DelayWB = dedupe(p.DelayWB)
	p.SkipINV = dedupe(p.SkipINV)
	p.IEBLie = dedupe(p.IEBLie)
}

// String renders the plan in canonical directive form: indices sorted and
// deduped, directive classes in a fixed order, seed last. Parse(p.String())
// reproduces p exactly.
func (p Plan) String() string {
	var parts []string
	add := func(prefix string, xs []uint64) {
		for _, x := range xs {
			parts = append(parts, fmt.Sprintf("%s@%d", prefix, x))
		}
	}
	q := p
	q.normalize()
	add("drop-wb", q.DropWB)
	add("delay-wb", q.DelayWB)
	add("skip-inv", q.SkipINV)
	add("ieb-lie", q.IEBLie)
	if q.MEBCap > 0 {
		parts = append(parts, fmt.Sprintf("meb-cap=%d", q.MEBCap))
	}
	if q.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", q.Seed))
	}
	return strings.Join(parts, "; ")
}

// State threads one plan through a single run. The hierarchy advances the
// instruction cursors; the oracle replays the WB decisions from its own
// cursor over the identical deterministic instruction sequence. State is
// not safe for concurrent use — each run owns its own instance, like its
// hierarchy.
type State struct {
	plan  Plan
	drop  map[uint64]bool
	delay map[uint64]bool
	skip  map[uint64]bool
	lie   map[uint64]bool

	wbN, invN, iebN uint64 // hierarchy-side instruction cursors
	oracleWBN       uint64 // oracle-side WB cursor

	// mebLost holds lines whose clean→dirty record the faulty MEB
	// silently discarded since the last WB ALL; lastMEBMiss hands the set
	// of a MEB-served WB ALL's missed lines to the oracle.
	mebLost     map[mem.Addr]bool
	lastMEBMiss map[mem.Addr]bool

	// Injection counters, for reports and tests.
	Drops, Delays, Skips, Lies, MEBDiscards int64
}

// NewState builds the per-run fault state for plan p.
func NewState(p Plan) *State {
	set := func(xs []uint64) map[uint64]bool {
		m := make(map[uint64]bool, len(xs))
		for _, x := range xs {
			m[x] = true
		}
		return m
	}
	return &State{
		plan:  p,
		drop:  set(p.DropWB),
		delay: set(p.DelayWB),
		skip:  set(p.SkipINV),
		lie:   set(p.IEBLie),
	}
}

// Plan returns the plan the state was built from.
func (s *State) Plan() Plan { return s.plan }

// wbActionAt is the pure index→action function both sides replay.
func (s *State) wbActionAt(i uint64) WBAction {
	switch {
	case s.drop[i]:
		return WBDrop
	case s.delay[i]:
		return WBDelay
	}
	return WBKeep
}

// NextWB advances the hierarchy's WB-family cursor and returns the fate
// of the instruction at it.
func (s *State) NextWB() WBAction {
	a := s.wbActionAt(s.wbN)
	s.wbN++
	switch a {
	case WBDrop:
		s.Drops++
	case WBDelay:
		s.Delays++
	}
	return a
}

// OracleNextWB advances the oracle's WB-family cursor; it must observe
// the same instruction sequence as the hierarchy.
func (s *State) OracleNextWB() WBAction {
	a := s.wbActionAt(s.oracleWBN)
	s.oracleWBN++
	return a
}

// NextINV advances the INV-family cursor and reports whether the
// instruction at it is skipped.
func (s *State) NextINV() bool {
	skip := s.skip[s.invN]
	s.invN++
	if skip {
		s.Skips++
	}
	return skip
}

// NextIEBLie advances the lazy-invalidation decision cursor and reports
// whether the armed-IEB lookup at it falsely claims the line was already
// refreshed.
func (s *State) NextIEBLie() bool {
	lie := s.lie[s.iebN]
	s.iebN++
	if lie {
		s.Lies++
	}
	return lie
}

// MEBOverCap reports whether a clean→dirty record must be silently
// discarded: the faulty capacity is active, the frame is not already
// recorded, and the buffer already holds cap entries.
func (s *State) MEBOverCap(entries int, present bool) bool {
	return s.plan.MEBCap > 0 && !present && entries >= s.plan.MEBCap
}

// NoteMEBLost records a line whose MEB record was silently discarded.
func (s *State) NoteMEBLost(line mem.Addr) {
	if s.mebLost == nil {
		s.mebLost = make(map[mem.Addr]bool)
	}
	s.mebLost[line] = true
	s.MEBDiscards++
}

// FlushMEBLost moves the discarded-line set into the slot the oracle
// reads at the corresponding MEB-served WB ALL event.
func (s *State) FlushMEBLost() {
	s.lastMEBMiss = s.mebLost
	s.mebLost = nil
}

// ClearMEBLost forgets the discarded lines without handing them to the
// oracle — a full-traversal WB ALL covered them anyway.
func (s *State) ClearMEBLost() {
	s.mebLost = nil
}

// TakeMEBMiss consumes the lines the last MEB-served WB ALL missed (nil
// when none).
func (s *State) TakeMEBMiss() map[mem.Addr]bool {
	m := s.lastMEBMiss
	s.lastMEBMiss = nil
	return m
}

// Injected reports the total number of faults the run actually injected.
func (s *State) Injected() int64 {
	return s.Drops + s.Delays + s.Skips + s.Lies + s.MEBDiscards
}

// Summary renders the injection counters ("drops=1 skips=0 ...").
func (s *State) Summary() string {
	return fmt.Sprintf("drops=%d delays=%d skips=%d lies=%d meb-discards=%d",
		s.Drops, s.Delays, s.Skips, s.Lies, s.MEBDiscards)
}
