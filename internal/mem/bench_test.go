package mem

import "testing"

// BenchmarkMemLoadStore measures the word and line access paths of the
// backing store — the operations every simulated guest load/store funnels
// into. The word path must stay allocation-free (TestWordPathZeroAlloc
// enforces this); the numbers here gate the paged-store optimization in
// BENCH_hotpath.json.
func BenchmarkMemLoadStore(b *testing.B) {
	// A working set of 4096 lines (256 KB) spread over the low address
	// space, roughly what one intra-block application touches.
	const lines = 4096
	b.Run("word", func(b *testing.B) {
		m := NewMemory()
		b.ReportAllocs()
		b.ResetTimer()
		var sink Word
		for i := 0; i < b.N; i++ {
			a := Addr((i % (lines * WordsPerLine)) * WordBytes)
			m.WriteWord(a, Word(i))
			sink += m.ReadWord(a)
		}
		_ = sink
	})
	b.Run("line", func(b *testing.B) {
		m := NewMemory()
		var buf [WordsPerLine]Word
		for i := range buf {
			buf[i] = Word(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := Addr((i % lines) * LineBytes)
			m.WriteLine(a, &buf, FullMask)
			m.ReadLine(a, &buf)
		}
	})
	b.Run("line-masked", func(b *testing.B) {
		m := NewMemory()
		var buf [WordsPerLine]Word
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := Addr((i % lines) * LineBytes)
			m.WriteLine(a, &buf, LineMask(0x00f3))
		}
	})
}
