package mem

import "testing"

// FuzzRangeLines checks the line-expansion invariants for arbitrary
// ranges: iteration count matches NumLines, masks are nonempty, lines are
// line-aligned and ascending, and the selected words cover the range.
func FuzzRangeLines(f *testing.F) {
	f.Add(uint32(0), uint32(1))
	f.Add(uint32(63), uint32(2))
	f.Add(uint32(100), uint32(200))
	f.Add(uint32(4096), uint32(64))
	f.Fuzz(func(t *testing.T, base, n uint32) {
		base %= 1 << 24
		n %= 1 << 12
		r := RangeOf(Addr(base), n)
		count := 0
		var prev Addr
		words := 0
		r.Lines(func(line Addr, m LineMask) {
			if line%LineBytes != 0 {
				t.Fatalf("unaligned line %#x", uint32(line))
			}
			if count > 0 && line <= prev {
				t.Fatalf("lines not ascending: %#x after %#x", uint32(line), uint32(prev))
			}
			if m == 0 {
				t.Fatalf("empty mask for line %#x", uint32(line))
			}
			prev = line
			count++
			words += m.Count()
		})
		if count != r.NumLines() {
			t.Fatalf("iterated %d lines, NumLines=%d", count, r.NumLines())
		}
		if !r.Empty() && uint32(words*WordBytes) < r.Bytes {
			t.Fatalf("selected words cover %d bytes < range %d", words*WordBytes, r.Bytes)
		}
	})
}

// FuzzMaskedWrite checks that masked line writes never touch unselected
// words.
func FuzzMaskedWrite(f *testing.F) {
	f.Add(uint32(0), uint16(0x0001))
	f.Add(uint32(128), uint16(0xffff))
	f.Fuzz(func(t *testing.T, lineBase uint32, mask uint16) {
		lineBase = (lineBase % (1 << 20)) &^ (LineBytes - 1)
		m := NewMemory()
		var bg [WordsPerLine]Word
		for i := range bg {
			bg[i] = Word(1000 + i)
		}
		m.WriteLine(Addr(lineBase), &bg, FullMask)
		var nw [WordsPerLine]Word
		for i := range nw {
			nw[i] = Word(2000 + i)
		}
		m.WriteLine(Addr(lineBase), &nw, LineMask(mask))
		var got [WordsPerLine]Word
		m.ReadLine(Addr(lineBase), &got)
		for i := range got {
			want := bg[i]
			if LineMask(mask).Has(i) {
				want = nw[i]
			}
			if got[i] != want {
				t.Fatalf("word %d = %d, want %d (mask %016b)", i, got[i], want, mask)
			}
		}
	})
}
