package mem

import (
	"encoding/binary"
	"testing"
)

// FuzzRangeLines checks the line-expansion invariants for arbitrary
// ranges: iteration count matches NumLines, masks are nonempty, lines are
// line-aligned and ascending, and the selected words cover the range.
func FuzzRangeLines(f *testing.F) {
	f.Add(uint32(0), uint32(1))
	f.Add(uint32(63), uint32(2))
	f.Add(uint32(100), uint32(200))
	f.Add(uint32(4096), uint32(64))
	f.Fuzz(func(t *testing.T, base, n uint32) {
		base %= 1 << 24
		n %= 1 << 12
		r := RangeOf(Addr(base), n)
		count := 0
		var prev Addr
		words := 0
		r.Lines(func(line Addr, m LineMask) {
			if line%LineBytes != 0 {
				t.Fatalf("unaligned line %#x", uint32(line))
			}
			if count > 0 && line <= prev {
				t.Fatalf("lines not ascending: %#x after %#x", uint32(line), uint32(prev))
			}
			if m == 0 {
				t.Fatalf("empty mask for line %#x", uint32(line))
			}
			prev = line
			count++
			words += m.Count()
		})
		if count != r.NumLines() {
			t.Fatalf("iterated %d lines, NumLines=%d", count, r.NumLines())
		}
		if !r.Empty() && uint32(words*WordBytes) < r.Bytes {
			t.Fatalf("selected words cover %d bytes < range %d", words*WordBytes, r.Bytes)
		}
	})
}

// FuzzPagedVsOracle differentially fuzzes the paged store against the
// retained map-backed storeOracle: a script of ReadWord / WriteWord /
// ReadLine / WriteLine operations with arbitrary addresses, values, and
// masks is applied to both, and every read result and the footprint must
// agree at each step.
func FuzzPagedVsOracle(f *testing.F) {
	// Seed scripts: op byte + 4 address bytes + 4 value bytes + 2 mask
	// bytes per operation.
	script := func(ops ...[]byte) []byte {
		var out []byte
		for _, op := range ops {
			out = append(out, op...)
		}
		return out
	}
	step := func(op byte, addr uint32, val uint32, mask uint16) []byte {
		b := []byte{op}
		b = binary.LittleEndian.AppendUint32(b, addr)
		b = binary.LittleEndian.AppendUint32(b, val)
		b = binary.LittleEndian.AppendUint16(b, mask)
		return b
	}
	f.Add(script(step(1, 0x40, 7, 0), step(0, 0x40, 0, 0)))
	f.Add(script(step(3, 0x1000, 9, 0xffff), step(2, 0x1000, 0, 0)))
	f.Add(script(step(3, 0xfffff000, 1, 0x00f3), step(2, 0xfffff000, 0, 0)))
	f.Add(script(step(1, 0, 1, 0), step(3, 0, 2, 0x8001), step(0, 0x3c, 0, 0)))
	f.Fuzz(func(t *testing.T, raw []byte) {
		paged := NewMemory()
		oracle := NewOracleMemory()
		const stride = 11
		for len(raw) >= stride {
			op := raw[0]
			addr := Addr(binary.LittleEndian.Uint32(raw[1:5]))
			val := Word(binary.LittleEndian.Uint32(raw[5:9]))
			mask := LineMask(binary.LittleEndian.Uint16(raw[9:11]))
			raw = raw[stride:]
			switch op % 4 {
			case 0:
				g, w := paged.ReadWord(addr), oracle.ReadWord(addr)
				if g != w {
					t.Fatalf("ReadWord(%#x) = %d, oracle %d", uint32(addr), g, w)
				}
			case 1:
				paged.WriteWord(addr, val)
				oracle.WriteWord(addr, val)
			case 2:
				var g, w [WordsPerLine]Word
				paged.ReadLine(addr, &g)
				oracle.ReadLine(addr, &w)
				if g != w {
					t.Fatalf("ReadLine(%#x) = %v, oracle %v", uint32(addr), g, w)
				}
			case 3:
				var src [WordsPerLine]Word
				for i := range src {
					src[i] = val + Word(i)
				}
				paged.WriteLine(addr, &src, mask)
				oracle.WriteLine(addr, &src, mask)
			}
			if g, w := paged.Footprint(), oracle.Footprint(); g != w {
				t.Fatalf("Footprint = %d, oracle %d", g, w)
			}
		}
	})
}

// TestWordPathZeroAlloc is the benchmark guard for the word access path:
// once a page exists, ReadWord and WriteWord must not allocate.
func TestWordPathZeroAlloc(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0x1234, 1) // fault the page in
	allocs := testing.AllocsPerRun(1000, func() {
		m.WriteWord(0x1238, 2)
		if m.ReadWord(0x1234) == 0 {
			t.Fatal("lost write")
		}
	})
	if allocs != 0 {
		t.Fatalf("word read/write path allocates %.1f times per op, want 0", allocs)
	}
}

// FuzzMaskedWrite checks that masked line writes never touch unselected
// words.
func FuzzMaskedWrite(f *testing.F) {
	f.Add(uint32(0), uint16(0x0001))
	f.Add(uint32(128), uint16(0xffff))
	f.Fuzz(func(t *testing.T, lineBase uint32, mask uint16) {
		lineBase = (lineBase % (1 << 20)) &^ (LineBytes - 1)
		m := NewMemory()
		var bg [WordsPerLine]Word
		for i := range bg {
			bg[i] = Word(1000 + i)
		}
		m.WriteLine(Addr(lineBase), &bg, FullMask)
		var nw [WordsPerLine]Word
		for i := range nw {
			nw[i] = Word(2000 + i)
		}
		m.WriteLine(Addr(lineBase), &nw, LineMask(mask))
		var got [WordsPerLine]Word
		m.ReadLine(Addr(lineBase), &got)
		for i := range got {
			want := bg[i]
			if LineMask(mask).Has(i) {
				want = nw[i]
			}
			if got[i] != want {
				t.Fatalf("word %d = %d, want %d (mask %016b)", i, got[i], want, mask)
			}
		}
	})
}
