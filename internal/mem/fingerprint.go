package mem

import "sort"

// State fingerprinting for the litmus explorer's dedup table. Every
// stateful component of the simulated machine folds itself into an
// FNV-64a accumulator through these helpers; the explorer treats two
// machine states with equal fingerprints as having identical futures.
// The mixing function is fixed (not seeded) so fingerprint-derived
// counts are stable across runs and platforms.

// Fingerprint accumulation constants: FNV-64a offset basis and prime.
const (
	FNVOffset uint64 = 14695981039346656037
	FNVPrime  uint64 = 1099511628211
)

// Mix64 folds the 8 bytes of v into the FNV-64a accumulator h.
func Mix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= FNVPrime
		v >>= 8
	}
	return h
}

// Fingerprint hashes the full contents of the backing store: every word
// ever written, in ascending address order, as (address, value) pairs.
// Pages are dense bitmapped arrays, so iteration order is deterministic;
// the map-backed oracle store sorts its keys first.
func (m *Memory) Fingerprint() uint64 {
	h := FNVOffset
	if m.oracle != nil {
		addrs := make([]Addr, 0, len(m.oracle.words))
		for a := range m.oracle.words {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			h = Mix64(h, uint64(a))
			h = Mix64(h, uint64(m.oracle.words[a]))
		}
		return h
	}
	for pn, p := range m.pages {
		if p == nil {
			continue
		}
		base := Addr(uint32(pn) << pageShift)
		for wi := 0; wi < pageWords; wi++ {
			if p.written[wi>>6]&(1<<(wi&63)) == 0 {
				continue
			}
			h = Mix64(h, uint64(base)+uint64(wi*WordBytes))
			h = Mix64(h, uint64(p.words[wi]))
		}
	}
	return h
}
