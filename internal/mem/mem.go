// Package mem defines the simulated physical address space shared by every
// cache hierarchy in this repository: 32-bit byte addresses, 4-byte words,
// and 64-byte cache lines (16 words per line, matching the per-line 16 dirty
// bits of the paper's Table III), plus the word-granular backing memory that
// sits below the last-level cache.
package mem

import "fmt"

// Addr is a byte address in the simulated flat physical address space.
type Addr uint32

// Word is the value of one aligned 4-byte memory word, the finest sharing
// granularity of the architecture (per-word dirty bits).
type Word uint32

// Geometry of the memory system. These are fixed by the paper's Table III
// (64 B lines) and its choice of word as the finest dirty-bit granularity.
const (
	WordBytes    = 4
	LineBytes    = 64
	WordsPerLine = LineBytes / WordBytes
)

// LineAddr returns the address of the first byte of the line containing a.
func LineAddr(a Addr) Addr { return a &^ (LineBytes - 1) }

// WordAddr returns the address of the first byte of the word containing a.
func WordAddr(a Addr) Addr { return a &^ (WordBytes - 1) }

// WordIndex returns the index (0..15) of a's word within its line.
func WordIndex(a Addr) int { return int(a%LineBytes) / WordBytes }

// WordOfLine returns the address of word i of the line containing a.
func WordOfLine(line Addr, i int) Addr { return LineAddr(line) + Addr(i*WordBytes) }

// LineMask is the per-word dirty/valid bitmask type for one line: bit i
// covers word i.
type LineMask uint16

// FullMask covers every word of a line.
const FullMask LineMask = 1<<WordsPerLine - 1

// Bit returns the mask selecting word i of a line.
func Bit(i int) LineMask { return 1 << uint(i) }

// Count returns the number of words selected by m.
func (m LineMask) Count() int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Has reports whether word i is selected by m.
func (m LineMask) Has(i int) bool { return m&Bit(i) != 0 }

// Range is a byte range [Base, Base+Bytes) in the address space. Ranges are
// how programs name operands of WB and INV instructions; the hardware
// expands them to line boundaries.
type Range struct {
	Base  Addr
	Bytes uint32
}

// RangeOf builds a Range covering n bytes at base.
func RangeOf(base Addr, n uint32) Range { return Range{Base: base, Bytes: n} }

// WordRange builds a Range covering n words at base.
func WordRange(base Addr, n int) Range { return Range{Base: base, Bytes: uint32(n * WordBytes)} }

// Empty reports whether the range covers no bytes.
func (r Range) Empty() bool { return r.Bytes == 0 }

// End returns the first address past the range.
func (r Range) End() Addr { return r.Base + Addr(r.Bytes) }

// Contains reports whether a lies inside the range.
func (r Range) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// Overlaps reports whether the two ranges share at least one byte.
func (r Range) Overlaps(o Range) bool {
	if r.Empty() || o.Empty() {
		return false
	}
	return r.Base < o.End() && o.Base < r.End()
}

// Lines calls fn once for every line that overlaps the range, in ascending
// address order, with the mask of words of that line that lie inside the
// range. WB and INV internally operate at line granularity (Section III-B);
// the mask lets callers honor word-granularity dirty bits.
func (r Range) Lines(fn func(line Addr, words LineMask)) {
	if r.Empty() {
		return
	}
	first := LineAddr(r.Base)
	last := LineAddr(r.End() - 1)
	for line := first; ; line += LineBytes {
		var m LineMask
		for i := 0; i < WordsPerLine; i++ {
			w := WordOfLine(line, i)
			if w+WordBytes > r.Base && w < r.End() {
				m |= Bit(i)
			}
		}
		fn(line, m)
		if line == last {
			break
		}
	}
}

// NumLines returns how many lines the range overlaps.
func (r Range) NumLines() int {
	if r.Empty() {
		return 0
	}
	return int((LineAddr(r.End()-1)-LineAddr(r.Base))/LineBytes) + 1
}

func (r Range) String() string {
	return fmt.Sprintf("[%#x,%#x)", uint32(r.Base), uint32(r.End()))
}

// Memory is the word-granular backing store below the last-level cache. It
// holds real values so that the simulators are functional, not just timed:
// a consumer that misses a required self-invalidation observably reads a
// stale value.
//
// Memory is sparse; untouched words read as zero.
type Memory struct {
	words map[Addr]Word
}

// NewMemory returns an empty backing store.
func NewMemory() *Memory { return &Memory{words: make(map[Addr]Word)} }

// ReadWord returns the value of the aligned word containing a.
func (m *Memory) ReadWord(a Addr) Word { return m.words[WordAddr(a)] }

// WriteWord stores v into the aligned word containing a.
func (m *Memory) WriteWord(a Addr, v Word) { m.words[WordAddr(a)] = v }

// ReadLine copies the 16 words of the line containing a into dst.
func (m *Memory) ReadLine(a Addr, dst *[WordsPerLine]Word) {
	line := LineAddr(a)
	for i := range dst {
		dst[i] = m.words[WordOfLine(line, i)]
	}
}

// WriteLine stores the words of src selected by mask into the line
// containing a. Word-masked writes are what keep two cores that dirtied
// different words of the same line from clobbering each other (Section
// III-B).
func (m *Memory) WriteLine(a Addr, src *[WordsPerLine]Word, mask LineMask) {
	line := LineAddr(a)
	for i := 0; i < WordsPerLine; i++ {
		if mask.Has(i) {
			m.words[WordOfLine(line, i)] = src[i]
		}
	}
}

// Footprint returns the number of distinct words ever written.
func (m *Memory) Footprint() int { return len(m.words) }

// Arena hands out aligned, non-overlapping regions of the address space to
// workloads. Allocation starts above address 0 so that the zero Addr can be
// treated as "no address".
type Arena struct {
	next Addr
}

// NewArena returns an allocator starting at the first line above base
// (minimum one line).
func NewArena(base Addr) *Arena {
	if base == 0 {
		base = LineBytes
	}
	return &Arena{next: LineAddr(base + LineBytes - 1)}
}

// Alloc reserves n bytes aligned to a line boundary and returns the range.
func (ar *Arena) Alloc(n uint32) Range {
	if n == 0 {
		n = WordBytes
	}
	r := Range{Base: ar.next, Bytes: n}
	ar.next = LineAddr(r.End()+LineBytes-1) + 0
	if ar.next < r.End() {
		panic("mem: arena exhausted 32-bit address space")
	}
	return r
}

// AllocWords reserves n words aligned to a line boundary.
func (ar *Arena) AllocWords(n int) Range { return ar.Alloc(uint32(n * WordBytes)) }

// Brk returns the first unallocated address.
func (ar *Arena) Brk() Addr { return ar.next }
