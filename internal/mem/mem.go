// Package mem defines the simulated physical address space shared by every
// cache hierarchy in this repository: 32-bit byte addresses, 4-byte words,
// and 64-byte cache lines (16 words per line, matching the per-line 16 dirty
// bits of the paper's Table III), plus the word-granular backing memory that
// sits below the last-level cache.
package mem

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Addr is a byte address in the simulated flat physical address space.
type Addr uint32

// Word is the value of one aligned 4-byte memory word, the finest sharing
// granularity of the architecture (per-word dirty bits).
type Word uint32

// Geometry of the memory system. These are fixed by the paper's Table III
// (64 B lines) and its choice of word as the finest dirty-bit granularity.
const (
	WordBytes    = 4
	LineBytes    = 64
	WordsPerLine = LineBytes / WordBytes
)

// LineAddr returns the address of the first byte of the line containing a.
func LineAddr(a Addr) Addr { return a &^ (LineBytes - 1) }

// WordAddr returns the address of the first byte of the word containing a.
func WordAddr(a Addr) Addr { return a &^ (WordBytes - 1) }

// WordIndex returns the index (0..15) of a's word within its line.
func WordIndex(a Addr) int { return int(a%LineBytes) / WordBytes }

// WordOfLine returns the address of word i of the line containing a.
func WordOfLine(line Addr, i int) Addr { return LineAddr(line) + Addr(i*WordBytes) }

// LineMask is the per-word dirty/valid bitmask type for one line: bit i
// covers word i.
type LineMask uint16

// FullMask covers every word of a line.
const FullMask LineMask = 1<<WordsPerLine - 1

// Bit returns the mask selecting word i of a line.
func Bit(i int) LineMask { return 1 << uint(i) }

// Count returns the number of words selected by m.
func (m LineMask) Count() int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Has reports whether word i is selected by m.
func (m LineMask) Has(i int) bool { return m&Bit(i) != 0 }

// Range is a byte range [Base, Base+Bytes) in the address space. Ranges are
// how programs name operands of WB and INV instructions; the hardware
// expands them to line boundaries.
type Range struct {
	Base  Addr
	Bytes uint32
}

// RangeOf builds a Range covering n bytes at base.
func RangeOf(base Addr, n uint32) Range { return Range{Base: base, Bytes: n} }

// WordRange builds a Range covering n words at base.
func WordRange(base Addr, n int) Range { return Range{Base: base, Bytes: uint32(n * WordBytes)} }

// Empty reports whether the range covers no bytes.
func (r Range) Empty() bool { return r.Bytes == 0 }

// End returns the first address past the range.
func (r Range) End() Addr { return r.Base + Addr(r.Bytes) }

// Contains reports whether a lies inside the range.
func (r Range) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// Overlaps reports whether the two ranges share at least one byte.
func (r Range) Overlaps(o Range) bool {
	if r.Empty() || o.Empty() {
		return false
	}
	return r.Base < o.End() && o.Base < r.End()
}

// Lines calls fn once for every line that overlaps the range, in ascending
// address order, with the mask of words of that line that lie inside the
// range. WB and INV internally operate at line granularity (Section III-B);
// the mask lets callers honor word-granularity dirty bits.
func (r Range) Lines(fn func(line Addr, words LineMask)) {
	if r.Empty() {
		return
	}
	first := LineAddr(r.Base)
	last := LineAddr(r.End() - 1)
	for line := first; ; line += LineBytes {
		var m LineMask
		for i := 0; i < WordsPerLine; i++ {
			w := WordOfLine(line, i)
			if w+WordBytes > r.Base && w < r.End() {
				m |= Bit(i)
			}
		}
		fn(line, m)
		if line == last {
			break
		}
	}
}

// NumLines returns how many lines the range overlaps.
func (r Range) NumLines() int {
	if r.Empty() {
		return 0
	}
	return int((LineAddr(r.End()-1)-LineAddr(r.Base))/LineBytes) + 1
}

func (r Range) String() string {
	return fmt.Sprintf("[%#x,%#x)", uint32(r.Base), uint32(r.End()))
}

// Geometry of the paged backing store: fixed-size pages indexed by
// addr >> pageShift. 64 KiB pages keep the page table small for the low
// address ranges workloads actually touch while making line operations
// single-page slice copies (a line never straddles a page because
// pageShift > 6).
const (
	pageShift = 16
	pageBytes = 1 << pageShift
	pageWords = pageBytes / WordBytes
)

// page is one backing-store page: its word values plus a population bitmap
// (bit w set once word w has been written) that keeps Footprint exact.
type page struct {
	words   [pageWords]Word
	written [pageWords / 64]uint64
}

// Memory is the word-granular backing store below the last-level cache. It
// holds real values so that the simulators are functional, not just timed:
// a consumer that misses a required self-invalidation observably reads a
// stale value.
//
// Memory is sparse; untouched words read as zero. The default
// implementation is a paged store — a page table of fixed-size pages grown
// on demand — so the word and line paths are index arithmetic plus slice
// copies with zero allocation in steady state. The original map-backed
// store is retained as storeOracle for differential testing.
type Memory struct {
	pages  []*page
	pop    int
	oracle *storeOracle // non-nil: answer through the map oracle instead
}

// oracleDefault makes NewMemory return oracle-backed stores. It exists so
// regression tests can run a whole sweep against the reference
// implementation; see UseOracleStore.
var oracleDefault atomic.Bool

// UseOracleStore globally switches NewMemory between the paged store
// (false, the default) and the retained map-backed storeOracle (true).
// It is a test hook: the byte-identical-results regression runs one sweep
// under each backend and compares the canonical documents.
func UseOracleStore(v bool) { oracleDefault.Store(v) }

// NewMemory returns an empty backing store.
func NewMemory() *Memory {
	if oracleDefault.Load() {
		return NewOracleMemory()
	}
	return &Memory{}
}

// NewOracleMemory returns a backing store answered by the map-based
// storeOracle regardless of the UseOracleStore setting.
func NewOracleMemory() *Memory { return &Memory{oracle: newStoreOracle()} }

// page returns the page holding page number pn, growing the page table and
// allocating the page on first touch.
func (m *Memory) page(pn uint32) *page {
	if int(pn) >= len(m.pages) {
		grown := make([]*page, pn+1)
		copy(grown, m.pages)
		m.pages = grown
	}
	p := m.pages[pn]
	if p == nil {
		p = new(page)
		m.pages[pn] = p
	}
	return p
}

// ReadWord returns the value of the aligned word containing a.
func (m *Memory) ReadWord(a Addr) Word {
	if m.oracle != nil {
		return m.oracle.readWord(a)
	}
	pn := uint32(a) >> pageShift
	if int(pn) >= len(m.pages) || m.pages[pn] == nil {
		return 0
	}
	return m.pages[pn].words[(uint32(a)&(pageBytes-1))>>2]
}

// WriteWord stores v into the aligned word containing a.
func (m *Memory) WriteWord(a Addr, v Word) {
	if m.oracle != nil {
		m.oracle.writeWord(a, v)
		return
	}
	p := m.page(uint32(a) >> pageShift)
	wi := (uint32(a) & (pageBytes - 1)) >> 2
	p.words[wi] = v
	if bm := &p.written[wi>>6]; *bm&(1<<(wi&63)) == 0 {
		*bm |= 1 << (wi & 63)
		m.pop++
	}
}

// ReadLine copies the 16 words of the line containing a into dst.
func (m *Memory) ReadLine(a Addr, dst *[WordsPerLine]Word) {
	if m.oracle != nil {
		m.oracle.readLine(a, dst)
		return
	}
	line := LineAddr(a)
	pn := uint32(line) >> pageShift
	if int(pn) >= len(m.pages) || m.pages[pn] == nil {
		*dst = [WordsPerLine]Word{}
		return
	}
	wi := (uint32(line) & (pageBytes - 1)) >> 2
	copy(dst[:], m.pages[pn].words[wi:wi+WordsPerLine])
}

// WriteLine stores the words of src selected by mask into the line
// containing a. Word-masked writes are what keep two cores that dirtied
// different words of the same line from clobbering each other (Section
// III-B).
func (m *Memory) WriteLine(a Addr, src *[WordsPerLine]Word, mask LineMask) {
	if m.oracle != nil {
		m.oracle.writeLine(a, src, mask)
		return
	}
	if mask == 0 {
		return
	}
	line := LineAddr(a)
	p := m.page(uint32(line) >> pageShift)
	wi := (uint32(line) & (pageBytes - 1)) >> 2
	// A line's 16 population bits land in a single bitmap word: wi is a
	// multiple of 16, so shift is 0, 16, 32, or 48.
	bm := &p.written[wi>>6]
	shift := wi & 63
	if mask == FullMask {
		copy(p.words[wi:wi+WordsPerLine], src[:])
	} else {
		for i := 0; i < WordsPerLine; i++ {
			if mask.Has(i) {
				p.words[wi+uint32(i)] = src[i]
			}
		}
	}
	newly := (uint64(mask) << shift) &^ *bm
	m.pop += bits.OnesCount64(newly)
	*bm |= uint64(mask) << shift
}

// Stats reports the store's observability metrics, read at snapshot
// time (no per-access cost): the footprint in distinct words ever
// written and the resident page count. The map-backed oracle store has
// no pages and reports 0.
func (m *Memory) Stats() (footprintWords, pages int) {
	footprintWords = m.Footprint()
	if m.oracle != nil {
		return footprintWords, 0
	}
	for _, p := range m.pages {
		if p != nil {
			pages++
		}
	}
	return footprintWords, pages
}

// Footprint returns the number of distinct words ever written.
func (m *Memory) Footprint() int {
	if m.oracle != nil {
		return m.oracle.footprint()
	}
	return m.pop
}

// storeOracle is the original map-backed implementation of the backing
// store, kept verbatim as the reference for differential fuzzing of the
// paged store (see fuzz_test.go) and for whole-sweep byte-identical
// regression runs (UseOracleStore).
type storeOracle struct {
	words map[Addr]Word
}

func newStoreOracle() *storeOracle { return &storeOracle{words: make(map[Addr]Word)} }

func (o *storeOracle) readWord(a Addr) Word     { return o.words[WordAddr(a)] }
func (o *storeOracle) writeWord(a Addr, v Word) { o.words[WordAddr(a)] = v }

func (o *storeOracle) readLine(a Addr, dst *[WordsPerLine]Word) {
	line := LineAddr(a)
	for i := range dst {
		dst[i] = o.words[WordOfLine(line, i)]
	}
}

func (o *storeOracle) writeLine(a Addr, src *[WordsPerLine]Word, mask LineMask) {
	line := LineAddr(a)
	for i := 0; i < WordsPerLine; i++ {
		if mask.Has(i) {
			o.words[WordOfLine(line, i)] = src[i]
		}
	}
}

func (o *storeOracle) footprint() int { return len(o.words) }

// Arena hands out aligned, non-overlapping regions of the address space to
// workloads. Allocation starts above address 0 so that the zero Addr can be
// treated as "no address".
type Arena struct {
	next Addr
}

// NewArena returns an allocator starting at the first line above base
// (minimum one line).
func NewArena(base Addr) *Arena {
	if base == 0 {
		base = LineBytes
	}
	return &Arena{next: LineAddr(base + LineBytes - 1)}
}

// Alloc reserves n bytes aligned to a line boundary and returns the range.
// It panics once the line-rounded end of the allocation would pass the top
// of the 32-bit address space; the topmost line is unallocatable because a
// Range ending there could not represent its own End.
func (ar *Arena) Alloc(n uint32) Range {
	if n == 0 {
		n = WordBytes
	}
	r := Range{Base: ar.next, Bytes: n}
	next := (uint64(ar.next) + uint64(n) + LineBytes - 1) &^ uint64(LineBytes-1)
	if next >= 1<<32 {
		panic("mem: arena exhausted 32-bit address space")
	}
	ar.next = Addr(next)
	return r
}

// AllocWords reserves n words aligned to a line boundary.
func (ar *Arena) AllocWords(n int) Range { return ar.Alloc(uint32(n * WordBytes)) }

// Brk returns the first unallocated address.
func (ar *Arena) Brk() Addr { return ar.next }
