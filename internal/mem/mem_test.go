package mem

import (
	"testing"
	"testing/quick"
)

func TestLineAddr(t *testing.T) {
	cases := []struct {
		in, want Addr
	}{
		{0, 0}, {1, 0}, {63, 0}, {64, 64}, {65, 64}, {127, 64}, {128, 128},
	}
	for _, c := range cases {
		if got := LineAddr(c.in); got != c.want {
			t.Errorf("LineAddr(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestWordIndex(t *testing.T) {
	if got := WordIndex(0); got != 0 {
		t.Errorf("WordIndex(0) = %d", got)
	}
	if got := WordIndex(4); got != 1 {
		t.Errorf("WordIndex(4) = %d", got)
	}
	if got := WordIndex(63); got != 15 {
		t.Errorf("WordIndex(63) = %d", got)
	}
	if got := WordIndex(64); got != 0 {
		t.Errorf("WordIndex(64) = %d", got)
	}
}

func TestWordOfLineRoundTrip(t *testing.T) {
	f := func(a Addr) bool {
		i := WordIndex(a)
		return WordOfLine(LineAddr(a), i) == WordAddr(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineMaskCount(t *testing.T) {
	if FullMask.Count() != WordsPerLine {
		t.Errorf("FullMask.Count() = %d, want %d", FullMask.Count(), WordsPerLine)
	}
	if LineMask(0).Count() != 0 {
		t.Error("zero mask should count 0")
	}
	if Bit(3).Count() != 1 || !Bit(3).Has(3) || Bit(3).Has(2) {
		t.Error("Bit(3) misbehaves")
	}
}

func TestRangeLinesSingleWord(t *testing.T) {
	r := WordRange(68, 1) // word 1 of line 64
	var lines []Addr
	var masks []LineMask
	r.Lines(func(l Addr, m LineMask) { lines = append(lines, l); masks = append(masks, m) })
	if len(lines) != 1 || lines[0] != 64 {
		t.Fatalf("lines = %v", lines)
	}
	if masks[0] != Bit(1) {
		t.Fatalf("mask = %016b", masks[0])
	}
}

func TestRangeLinesSpanning(t *testing.T) {
	// 60..76 covers last word of line 0 and first three words of line 64.
	r := RangeOf(60, 16)
	type hit struct {
		line Addr
		mask LineMask
	}
	var hits []hit
	r.Lines(func(l Addr, m LineMask) { hits = append(hits, hit{l, m}) })
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].line != 0 || hits[0].mask != Bit(15) {
		t.Errorf("first hit = %+v", hits[0])
	}
	if hits[1].line != 64 || hits[1].mask != Bit(0)|Bit(1)|Bit(2) {
		t.Errorf("second hit = %+v", hits[1])
	}
}

func TestRangeLinesUnalignedPartialWord(t *testing.T) {
	// A 1-byte range inside word 2 must still select word 2.
	r := RangeOf(9, 1)
	var got LineMask
	r.Lines(func(l Addr, m LineMask) { got = m })
	if got != Bit(2) {
		t.Errorf("mask = %016b, want word 2", got)
	}
}

func TestRangeNumLines(t *testing.T) {
	cases := []struct {
		r    Range
		want int
	}{
		{Range{}, 0},
		{RangeOf(0, 1), 1},
		{RangeOf(0, 64), 1},
		{RangeOf(0, 65), 2},
		{RangeOf(63, 2), 2},
		{RangeOf(100, 200), 4},
	}
	for _, c := range cases {
		if got := c.r.NumLines(); got != c.want {
			t.Errorf("NumLines(%v) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestRangeNumLinesMatchesIteration(t *testing.T) {
	f := func(base Addr, n uint16) bool {
		r := RangeOf(base%1<<20, uint32(n))
		count := 0
		r.Lines(func(Addr, LineMask) { count++ })
		return count == r.NumLines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRangeLineMasksUnionCoversWholeRange(t *testing.T) {
	f := func(base Addr, n uint8) bool {
		r := RangeOf(base%4096, uint32(n)+1)
		words := 0
		r.Lines(func(_ Addr, m LineMask) { words += m.Count() })
		// Every byte of the range lies in some selected word, so the number
		// of selected words times WordBytes must cover the range.
		return uint32(words*WordBytes) >= r.Bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRangeOverlaps(t *testing.T) {
	a := RangeOf(100, 50)
	cases := []struct {
		b    Range
		want bool
	}{
		{RangeOf(0, 100), false},
		{RangeOf(0, 101), true},
		{RangeOf(149, 1), true},
		{RangeOf(150, 10), false},
		{RangeOf(120, 0), false},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v (symmetry)", c.b, a, got, c.want)
		}
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if m.ReadWord(1234) != 0 {
		t.Error("untouched word should read zero")
	}
	m.WriteWord(100, 42)
	if got := m.ReadWord(100); got != 42 {
		t.Errorf("ReadWord = %d", got)
	}
	// Unaligned access hits the containing word.
	if got := m.ReadWord(102); got != 42 {
		t.Errorf("unaligned ReadWord = %d", got)
	}
}

func TestMemoryLineOps(t *testing.T) {
	m := NewMemory()
	var src [WordsPerLine]Word
	for i := range src {
		src[i] = Word(i + 1)
	}
	m.WriteLine(128, &src, Bit(0)|Bit(5))
	var dst [WordsPerLine]Word
	m.ReadLine(128, &dst)
	for i := range dst {
		want := Word(0)
		if i == 0 || i == 5 {
			want = Word(i + 1)
		}
		if dst[i] != want {
			t.Errorf("word %d = %d, want %d", i, dst[i], want)
		}
	}
	if m.Footprint() != 2 {
		t.Errorf("Footprint = %d, want 2", m.Footprint())
	}
}

func TestMemoryMaskedWritePreservesOtherWords(t *testing.T) {
	m := NewMemory()
	var a, b [WordsPerLine]Word
	for i := range a {
		a[i] = 100 + Word(i)
		b[i] = 200 + Word(i)
	}
	m.WriteLine(0, &a, FullMask)
	// Writer B only owns words 3 and 4 — a masked write must not clobber
	// writer A's words (the paper's false-sharing-safe writeback).
	m.WriteLine(0, &b, Bit(3)|Bit(4))
	var got [WordsPerLine]Word
	m.ReadLine(0, &got)
	for i := range got {
		want := 100 + Word(i)
		if i == 3 || i == 4 {
			want = 200 + Word(i)
		}
		if got[i] != want {
			t.Errorf("word %d = %d, want %d", i, got[i], want)
		}
	}
}

func TestArenaAlignmentAndDisjointness(t *testing.T) {
	ar := NewArena(0)
	var prev Range
	for i := 0; i < 100; i++ {
		r := ar.Alloc(uint32(i*7 + 1))
		if r.Base%LineBytes != 0 {
			t.Fatalf("allocation %d not line aligned: %v", i, r)
		}
		if i > 0 && r.Overlaps(prev) {
			t.Fatalf("allocation %d overlaps previous: %v vs %v", i, r, prev)
		}
		prev = r
	}
}

func TestArenaZeroByteAlloc(t *testing.T) {
	ar := NewArena(0)
	r := ar.Alloc(0)
	if r.Empty() {
		t.Error("zero-size alloc should still reserve a word")
	}
}

func TestArenaNearTopOfAddressSpace(t *testing.T) {
	// Allocations stay line-aligned right up to the top of the 32-bit
	// space; the topmost line is unallocatable (a Range ending at 2^32
	// could not represent its End), so crossing into it panics instead of
	// silently wrapping.
	ar := NewArena(0xFFFF_FE00)
	r := ar.Alloc(0x100)
	if r.Base != 0xFFFF_FE00 || r.Base%LineBytes != 0 {
		t.Fatalf("first alloc base %#x, want line-aligned 0xFFFFFE00", uint32(r.Base))
	}
	r2 := ar.Alloc(0x40)
	if r2.Base != 0xFFFF_FF00 || r2.End() != 0xFFFF_FF40 {
		t.Fatalf("second alloc = %v, want [0xFFFFFF00,0xFFFFFF40)", r2)
	}
	if r.Overlaps(r2) {
		t.Fatalf("allocations overlap: %v and %v", r, r2)
	}
	// 0x80 more bytes fit (up to 0xFFFFFFC0, the base of the last line).
	r3 := ar.Alloc(0x80)
	if r3.End() != 0xFFFF_FFC0 || ar.Brk() != 0xFFFF_FFC0 {
		t.Fatalf("third alloc = %v brk %#x, want end and brk 0xFFFFFFC0", r3, uint32(ar.Brk()))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc into the topmost line did not panic")
		}
	}()
	ar.Alloc(1)
}

func TestArenaOverflowPanics(t *testing.T) {
	for _, n := range []uint32{0x41, 0x1000, 0xFFFF_FFFF} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Alloc(%#x) near top did not panic", n)
				}
			}()
			ar := NewArena(0xFFFF_FFC0 - LineBytes)
			ar.Alloc(n) // rounded end passes 2^32
		}()
	}
}

func TestMemoryFootprintExact(t *testing.T) {
	m := NewMemory()
	if m.Footprint() != 0 {
		t.Fatalf("fresh footprint %d", m.Footprint())
	}
	m.WriteWord(0x100, 1)
	m.WriteWord(0x100, 2) // rewrite: still one distinct word
	m.WriteWord(0x104, 3)
	var src [WordsPerLine]Word
	m.WriteLine(0x100, &src, FullMask) // overlaps both words
	if got := m.Footprint(); got != WordsPerLine {
		t.Fatalf("footprint %d, want %d", got, WordsPerLine)
	}
	m.WriteLine(0x40000, &src, 0x0101) // distant page, 2 words
	if got := m.Footprint(); got != WordsPerLine+2 {
		t.Fatalf("footprint %d, want %d", got, WordsPerLine+2)
	}
}

func TestUseOracleStore(t *testing.T) {
	UseOracleStore(true)
	defer UseOracleStore(false)
	m := NewMemory()
	if m.oracle == nil {
		t.Fatal("UseOracleStore(true): NewMemory returned a paged store")
	}
	m.WriteWord(0x40, 9)
	if m.ReadWord(0x40) != 9 || m.Footprint() != 1 {
		t.Fatal("oracle-backed store misbehaves")
	}
}
