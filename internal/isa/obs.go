package isa

import "repro/internal/mem"

// This file classifies operations for observers of a running machine —
// schedule explorers, the coherence oracle, and trace analyzers — that
// need to reason about what an op touches without re-deriving the
// hierarchy's behavior.

// IsWBFamily reports whether the op pushes dirty data toward shared
// levels: the range, ALL, and level-adaptive writeback forms.
func (k OpKind) IsWBFamily() bool {
	switch k {
	case OpWB, OpWBAll, OpWBCons, OpWBConsAll:
		return true
	}
	return false
}

// IsINVFamily reports whether the op discards potentially stale private
// copies: the range, ALL, signature-filtered, and level-adaptive
// self-invalidation forms.
func (k OpKind) IsINVFamily() bool {
	switch k {
	case OpINV, OpINVAll, OpInvProd, OpInvProdAll, OpINVSig:
		return true
	}
	return false
}

// PureLocal reports whether the op touches no shared machine state at
// all: it commutes with every op of every other thread. Only compute
// qualifies — even a cache-hitting load can change LRU state that a
// later eviction observes.
func (o Op) PureLocal() bool { return o.Kind == OpCompute }

// Footprint returns the byte range of memory the op reads, writes, or
// flushes, and whether that range is statically known. Whole-cache
// flushes, DMA, signature ops, and synchronization return ok=false:
// their effect depends on dynamic cache or controller state, so
// observers must treat them as touching everything.
func (o Op) Footprint() (r mem.Range, ok bool) {
	switch o.Kind {
	case OpLoad, OpStore, OpLoadU, OpStoreU:
		return mem.WordRange(o.Addr, 1), true
	case OpWB, OpINV, OpWBCons, OpInvProd:
		return o.Range, true
	}
	return mem.Range{}, false
}

// Independent reports whether two ops from different threads commute:
// executing them in either adjacent order yields the same machine state.
// Compute is independent of everything; ops with static footprints
// commute when their footprints share no cache line (line granularity,
// because WB/INV and fills move whole lines). Everything else —
// synchronization, whole-cache flushes, DMA, signatures — is treated as
// conflicting with every non-local op.
//
// The line-disjointness rule is only sound while no line moves for
// capacity reasons: an eviction caused by one thread's fill can change
// which data a disjoint-range flush on another thread writes back.
// Callers that prune schedules with this predicate (internal/litmus)
// must therefore verify the run performed no dirty evictions.
func Independent(a, b Op) bool {
	if a.PureLocal() || b.PureLocal() {
		return true
	}
	ra, oka := a.Footprint()
	rb, okb := b.Footprint()
	if !oka || !okb {
		return false
	}
	return !lineSpan(ra).Overlaps(lineSpan(rb))
}

// lineSpan widens a range to full line granularity.
func lineSpan(r mem.Range) mem.Range {
	if r.Empty() {
		return r
	}
	base := mem.LineAddr(r.Base)
	end := mem.LineAddr(r.End()-1) + mem.LineBytes
	return mem.Range{Base: base, Bytes: uint32(end - base)}
}
