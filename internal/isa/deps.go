package isa

import "repro/internal/mem"

// Deps is the dependence relation used by the source-DPOR litmus
// explorer. It refines Independent in both directions:
//
//   - It is *sound under evictions*. Independent's line-disjointness rule
//     breaks when a fill in one thread evicts a line another thread's op
//     touches: the two ops then interact through the victim even though
//     their declared footprints are disjoint. Rather than banning
//     eviction-bearing schedules (the adjacent-swap explorer's escape
//     hatch), Deps treats any two lines that map to the same set of any
//     cache in the hierarchy as conflicting — an op can only displace
//     lines from the sets it touches, so set-disjoint ops cannot
//     interact through capacity evictions at any level, private or
//     shared. MinSets is the smallest set count among the machine's
//     caches; two lines conflict in *some* cache exactly when their line
//     numbers are congruent mod that minimum (set counts are powers of
//     two, so congruence mod a larger set count implies congruence mod a
//     smaller one).
//
//   - It is *finer on synchronization*. Independent treats every sync op
//     as conflicting with every non-local op. But sync ops touch only
//     the hwsync controller (plus the issuing core's own epoch state),
//     never caches or memory, so a sync op commutes with every memory op
//     of another thread; and two sync ops commute unless they target the
//     same primitive — the same lock, the same flag, or the same
//     barrier. This is what makes multi-pair tests tractable: disjoint
//     producer/consumer pairs on different flags no longer serialize
//     against each other.
type Deps struct {
	// MinSets is the minimum number of sets over all caches of the
	// machine the schedules run on. Zero disables the set-conflict
	// refinement and falls back to plain line-disjointness, which is
	// only sound for runs that perform no evictions.
	MinSets int
}

// Independent reports whether two ops from different threads commute
// under d: executing them in either adjacent order yields the same
// machine, controller, and oracle state.
func (d Deps) Independent(a, b Op) bool {
	if a.PureLocal() || b.PureLocal() {
		return true
	}
	sa, sb := a.Kind.IsSync(), b.Kind.IsSync()
	if sa != sb {
		// Sync ops touch the controller and the issuing core's own
		// epoch state; memory ops touch caches and memory. Disjoint.
		return true
	}
	if sa {
		return syncGroup(a.Kind) != syncGroup(b.Kind) || a.ID != b.ID
	}
	ra, oka := a.Footprint()
	rb, okb := b.Footprint()
	if !oka || !okb {
		return false
	}
	la, lb := lineSpan(ra), lineSpan(rb)
	if la.Overlaps(lb) {
		return false
	}
	if d.MinSets <= 0 {
		return true
	}
	return !setConflict(la, lb, d.MinSets)
}

// syncGroup partitions sync kinds by the controller structure they
// touch: locks, flags, or barriers. Ops in different groups never share
// state even when their IDs collide (the controller keeps separate maps).
func syncGroup(k OpKind) int {
	switch k {
	case OpAcquire, OpRelease:
		return 0
	case OpFlagSet, OpFlagWait:
		return 1
	default: // OpBarrier
		return 2
	}
}

// setConflict reports whether any line of a maps to the same cache set
// as any line of b in a cache with sets sets. Spans are at most a few
// lines in litmus programs, so the nested scan is fine.
func setConflict(a, b mem.Range, sets int) bool {
	for la := a.Base; la < a.End(); la += mem.LineBytes {
		for lb := b.Base; lb < b.End(); lb += mem.LineBytes {
			if (uint32(la)/mem.LineBytes)%uint32(sets) == (uint32(lb)/mem.LineBytes)%uint32(sets) {
				return true
			}
		}
	}
	return false
}
