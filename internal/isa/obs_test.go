package isa

import (
	"testing"

	"repro/internal/mem"
)

func TestOpFamilies(t *testing.T) {
	wantWB := map[OpKind]bool{OpWB: true, OpWBAll: true, OpWBCons: true, OpWBConsAll: true}
	wantINV := map[OpKind]bool{OpINV: true, OpINVAll: true, OpInvProd: true, OpInvProdAll: true, OpINVSig: true}
	for k := OpKind(0); k < NumOpKinds; k++ {
		if got := k.IsWBFamily(); got != wantWB[k] {
			t.Errorf("%v.IsWBFamily() = %v, want %v", k, got, wantWB[k])
		}
		if got := k.IsINVFamily(); got != wantINV[k] {
			t.Errorf("%v.IsINVFamily() = %v, want %v", k, got, wantINV[k])
		}
		if wantWB[k] && wantINV[k] {
			t.Errorf("%v claims both WB and INV families", k)
		}
	}
}

func TestFootprint(t *testing.T) {
	rng := mem.Range{Base: 0x100, Bytes: 32}
	tests := []struct {
		op   Op
		want mem.Range
		ok   bool
	}{
		{Op{Kind: OpLoad, Addr: 0x204}, mem.WordRange(0x204, 1), true},
		{Op{Kind: OpStore, Addr: 0x208, Value: 3}, mem.WordRange(0x208, 1), true},
		{Op{Kind: OpLoadU, Addr: 0x20c}, mem.WordRange(0x20c, 1), true},
		{Op{Kind: OpStoreU, Addr: 0x210}, mem.WordRange(0x210, 1), true},
		{Op{Kind: OpWB, Range: rng}, rng, true},
		{Op{Kind: OpINV, Range: rng}, rng, true},
		{Op{Kind: OpWBCons, Range: rng, Peer: 2}, rng, true},
		{Op{Kind: OpInvProd, Range: rng, Peer: 2}, rng, true},
		{Op{Kind: OpWBAll}, mem.Range{}, false},
		{Op{Kind: OpINVAll, Lazy: true}, mem.Range{}, false},
		{Op{Kind: OpCompute, Cycles: 5}, mem.Range{}, false},
		{Op{Kind: OpAcquire, ID: 1}, mem.Range{}, false},
		{Op{Kind: OpDMACopy, Addr: 0x400, Range: rng, Peer: 1}, mem.Range{}, false},
		{Op{Kind: OpSigPublish, ID: 3}, mem.Range{}, false},
	}
	for _, tc := range tests {
		got, ok := tc.op.Footprint()
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("(%v).Footprint() = %v,%v, want %v,%v", tc.op, got, ok, tc.want, tc.ok)
		}
	}
}

func TestIndependent(t *testing.T) {
	// Two words on the same line, and a word on a distant line.
	sameLineA := Op{Kind: OpStore, Addr: 0x100, Value: 1}
	sameLineB := Op{Kind: OpLoad, Addr: 0x104}
	farLoad := Op{Kind: OpLoad, Addr: 0x1000}
	wbLine := Op{Kind: OpWB, Range: mem.WordRange(0x100, 1)}
	compute := Op{Kind: OpCompute, Cycles: 3}
	acq := Op{Kind: OpAcquire, ID: 0}
	wbAll := Op{Kind: OpWBAll, UseMEB: true}

	tests := []struct {
		name string
		a, b Op
		want bool
	}{
		{"compute vs anything", compute, acq, true},
		{"anything vs compute", wbAll, compute, true},
		{"same line conflicts", sameLineA, sameLineB, false},
		{"wb overlapping line conflicts", wbLine, sameLineB, false},
		{"disjoint lines commute", sameLineA, farLoad, true},
		{"wb vs far load commute", wbLine, farLoad, true},
		{"sync conflicts", acq, farLoad, false},
		{"whole-cache conflicts", wbAll, farLoad, false},
	}
	for _, tc := range tests {
		if got := Independent(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: Independent(%v, %v) = %v, want %v", tc.name, tc.a, tc.b, got, tc.want)
		}
		if got := Independent(tc.b, tc.a); got != tc.want {
			t.Errorf("%s (swapped): Independent(%v, %v) = %v, want %v", tc.name, tc.b, tc.a, got, tc.want)
		}
	}
}

func TestLineSpanWidening(t *testing.T) {
	// A 4-byte range at the end of one line must conflict with a range at
	// the start of the same line even though the byte ranges are disjoint.
	tail := Op{Kind: OpStore, Addr: 0x13c}
	head := Op{Kind: OpLoad, Addr: 0x100}
	if Independent(tail, head) {
		t.Error("ops on the same 64-byte line reported independent")
	}
	// But the first word of the next line is independent.
	next := Op{Kind: OpLoad, Addr: 0x140}
	if !Independent(tail, next) {
		t.Error("ops on adjacent lines reported dependent")
	}
}
