package isa

import (
	"strings"
	"testing"

	"repro/internal/mem"
)

func TestOpKindNames(t *testing.T) {
	cases := map[OpKind]string{
		OpLoad:       "load",
		OpStore:      "store",
		OpWB:         "wb",
		OpINVAll:     "invall",
		OpWBCons:     "wbcons",
		OpInvProdAll: "invprodall",
		OpFlagWait:   "flagwait",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if OpKind(99).String() == "" {
		t.Error("out-of-range kind should still stringify")
	}
	// Every defined kind has a distinct, nonempty name.
	seen := map[string]bool{}
	for k := OpKind(0); k < NumOpKinds; k++ {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d name %q empty or duplicated", k, s)
		}
		seen[s] = true
	}
}

func TestIsSync(t *testing.T) {
	syncs := []OpKind{OpAcquire, OpRelease, OpBarrier, OpFlagSet, OpFlagWait}
	for _, k := range syncs {
		if !k.IsSync() {
			t.Errorf("%v should be sync", k)
		}
	}
	nonSyncs := []OpKind{OpLoad, OpStore, OpWB, OpINV, OpWBAll, OpINVAll, OpWBCons, OpCompute}
	for _, k := range nonSyncs {
		if k.IsSync() {
			t.Errorf("%v should not be sync (epoch boundaries are synchronization only)", k)
		}
	}
}

func TestLevelString(t *testing.T) {
	if LevelAuto.String() != "auto" || LevelGlobal.String() != "global" {
		t.Error("level names wrong")
	}
}

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Op{Kind: OpLoad, Addr: 0x10}, "load 0x10"},
		{Op{Kind: OpStore, Addr: 0x10, Value: 5}, "store 0x10 <- 5"},
		{Op{Kind: OpCompute, Cycles: 7}, "compute 7"},
		{Op{Kind: OpWBAll, UseMEB: true}, "wball(meb)"},
		{Op{Kind: OpINVAll, Lazy: true}, "invall(lazy)"},
		{Op{Kind: OpBarrier, ID: 3}, "barrier 3"},
		{Op{Kind: OpFlagSet, ID: 2, Value: 9}, "flagset 2 <- 9"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	wb := Op{Kind: OpWB, Range: mem.WordRange(0x40, 4), Level: LevelGlobal}
	if s := wb.String(); !strings.Contains(s, "global") {
		t.Errorf("global WB string %q should mention level", s)
	}
	wc := Op{Kind: OpWBCons, Range: mem.WordRange(0x40, 1), Peer: 7}
	if s := wc.String(); !strings.Contains(s, "peer=7") {
		t.Errorf("WB_CONS string %q should mention the consumer", s)
	}
}
