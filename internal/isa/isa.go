// Package isa defines the instruction-set vocabulary of the machine as seen
// by guest programs: ordinary loads and stores, the paper's writeback (WB)
// and self-invalidation (INV) instruction flavors (address/range, ALL,
// level-directed, and level-adaptive WB_CONS/INV_PROD), and the
// synchronization operations served by the shared-cache controller.
//
// The types here are shared by the execution engine, the trace
// recorder/replayer, and the annotation layers.
package isa

import (
	"fmt"

	"repro/internal/mem"
)

// OpKind enumerates the dynamic operations a guest thread can issue.
type OpKind int

const (
	// OpLoad reads one word; OpStore writes one word. Both are cacheable.
	OpLoad OpKind = iota
	OpStore
	// OpLoadU and OpStoreU are uncacheable word accesses, used for
	// synchronization-adjacent data such as the MPI shared buffers of
	// Programming Model 1.
	OpLoadU
	OpStoreU
	// OpCompute models local computation for a given cycle count.
	OpCompute
	// OpWB writes back the dirty words of the lines overlapping a range
	// (Section III-B). OpINV eliminates those lines, writing dirty data
	// back first.
	OpWB
	OpINV
	// OpWBAll and OpINVAll operate on the whole cache. WB ALL may be
	// MEB-assisted and INV ALL may be lazy (IEB-armed); see the core
	// package.
	OpWBAll
	OpINVAll
	// OpWBCons and OpInvProd are the level-adaptive instructions of
	// Section V: WB_CONS(addr, consID) and INV_PROD(addr, prodID).
	OpWBCons
	OpInvProd
	// OpWBConsAll and OpInvProdAll are their whole-cache forms.
	OpWBConsAll
	OpInvProdAll
	// OpDMACopy initiates a DMA transfer of Range to the equal-length
	// range at Addr, depositing lines into block Peer's L2 (Runnemede's
	// inter-block DMA; see core/dma.go).
	OpDMACopy
	// OpSigPublish transfers the core's Bloom write signature to a sync
	// channel; OpINVSig selectively self-invalidates against a channel's
	// signature (the Ashby-style alternative implemented in core/bloom.go).
	OpSigPublish
	OpINVSig
	// OpAcquire/OpRelease are queued lock operations; OpBarrier is a
	// global barrier; OpFlagSet/OpFlagWait are condition-flag operations.
	// All are served by the shared-cache synchronization controller
	// (Section III-D).
	OpAcquire
	OpRelease
	OpBarrier
	OpFlagSet
	OpFlagWait

	NumOpKinds
)

var opNames = [...]string{
	"load", "store", "loadu", "storeu", "compute",
	"wb", "inv", "wball", "invall",
	"wbcons", "invprod", "wbconsall", "invprodall",
	"dmacopy",
	"sigpublish", "invsig",
	"acquire", "release", "barrier", "flagset", "flagwait",
}

func (k OpKind) String() string {
	if k < 0 || int(k) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(k))
	}
	return opNames[k]
}

// IsSync reports whether the op is a synchronization operation, i.e. an
// epoch boundary in the sense of Section III-A.
func (k OpKind) IsSync() bool {
	switch k {
	case OpAcquire, OpRelease, OpBarrier, OpFlagSet, OpFlagWait:
		return true
	}
	return false
}

// Level selects how deep a WB pushes data or how deep an INV invalidates.
type Level int

const (
	// LevelAuto is the default: WB to the first shared cache (the block's
	// L2), INV from the private L1. The level-adaptive instructions
	// resolve to LevelAuto or LevelGlobal at run time via the ThreadMap.
	LevelAuto Level = iota
	// LevelGlobal pushes writebacks through to the last-level cache (L3)
	// and invalidates from both L1 and the block's L2 — the
	// WB_L3/INV_L2 instruction forms of Section V.
	LevelGlobal
)

func (l Level) String() string {
	if l == LevelGlobal {
		return "global"
	}
	return "auto"
}

// Op is one dynamic instruction. Only the fields relevant to Kind are
// meaningful.
type Op struct {
	Kind  OpKind
	Addr  mem.Addr  // load/store target
	Range mem.Range // WB/INV operand range
	Value mem.Word  // store value / flag value or threshold
	Level Level     // WB/INV target depth
	Peer  int       // ConsID/ProdID for level-adaptive ops
	ID    int       // lock/barrier/flag identifier
	// UseMEB asks the controller to satisfy a WB ALL from the Modified
	// Entry Buffer when the buffer has not overflowed.
	UseMEB bool
	// Lazy asks the controller to arm the Invalidated Entry Buffer
	// instead of performing an eager INV ALL.
	Lazy bool
	// Cycles is the compute duration for OpCompute.
	Cycles int64
}

func (o Op) String() string {
	switch o.Kind {
	case OpLoad, OpLoadU:
		return fmt.Sprintf("%s %#x", o.Kind, uint32(o.Addr))
	case OpStore, OpStoreU:
		return fmt.Sprintf("%s %#x <- %d", o.Kind, uint32(o.Addr), o.Value)
	case OpCompute:
		return fmt.Sprintf("compute %d", o.Cycles)
	case OpWB, OpINV:
		return fmt.Sprintf("%s %v %s", o.Kind, o.Range, o.Level)
	case OpWBAll:
		if o.UseMEB {
			return "wball(meb)"
		}
		return fmt.Sprintf("wball %s", o.Level)
	case OpINVAll:
		if o.Lazy {
			return "invall(lazy)"
		}
		return fmt.Sprintf("invall %s", o.Level)
	case OpWBCons, OpInvProd:
		return fmt.Sprintf("%s %v peer=%d", o.Kind, o.Range, o.Peer)
	case OpWBConsAll, OpInvProdAll:
		return fmt.Sprintf("%s peer=%d", o.Kind, o.Peer)
	case OpAcquire, OpRelease, OpBarrier, OpSigPublish, OpINVSig:
		return fmt.Sprintf("%s %d", o.Kind, o.ID)
	case OpFlagSet:
		return fmt.Sprintf("flagset %d <- %d", o.ID, o.Value)
	case OpFlagWait:
		return fmt.Sprintf("flagwait %d >= %d", o.ID, o.Value)
	case OpDMACopy:
		return fmt.Sprintf("dmacopy %v -> %#x block=%d", o.Range, uint32(o.Addr), o.Peer)
	}
	return fmt.Sprintf("op(%d)", int(o.Kind))
}
