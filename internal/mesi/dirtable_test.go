package mesi

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

func TestDirTableBasic(t *testing.T) {
	dt := newDirTable()
	if dt.lookup(0x40) != nil {
		t.Fatal("empty table should miss")
	}
	e := dt.getOrCreate(0x40)
	if e.state != dirUncached || e.presence != 0 {
		t.Fatal("new entry not zeroed")
	}
	e.set(3)
	if got := dt.getOrCreate(0x40); got != e {
		t.Fatal("getOrCreate not idempotent")
	}
	if got := dt.lookup(0x40); got != e || !got.has(3) {
		t.Fatal("lookup lost the entry")
	}
	if dt.len() != 1 {
		t.Fatalf("len = %d, want 1", dt.len())
	}
	dt.del(0x40)
	if dt.lookup(0x40) != nil || dt.len() != 0 {
		t.Fatal("del did not remove the entry")
	}
	dt.del(0x40) // deleting an absent line is a no-op
}

// Pointer stability: entries created early must not move as the table grows
// through many rehashes — callers hold *dirEntry across inserts.
func TestDirTablePointerStability(t *testing.T) {
	dt := newDirTable()
	const n = 20000
	ptrs := make([]*dirEntry, n)
	for i := 0; i < n; i++ {
		line := mem.Addr(i) * 64
		ptrs[i] = dt.getOrCreate(line)
		ptrs[i].presence = uint64(i) | 1
	}
	for i := 0; i < n; i++ {
		line := mem.Addr(i) * 64
		if got := dt.lookup(line); got != ptrs[i] {
			t.Fatalf("entry %d moved: %p != %p", i, got, ptrs[i])
		}
		if ptrs[i].presence != uint64(i)|1 {
			t.Fatalf("entry %d corrupted", i)
		}
	}
}

// freeIfZero must keep entries whose sticky migratory flags are set: they
// carry protocol history that a re-created zero entry would lose.
func TestDirTableFreeIfZero(t *testing.T) {
	dt := newDirTable()
	e := dt.getOrCreate(0x80)
	e.set(5)
	dt.freeIfZero(0x80)
	if dt.lookup(0x80) == nil {
		t.Fatal("entry with presence must survive freeIfZero")
	}
	e.clear(5)
	e.noMigrate = true
	dt.freeIfZero(0x80)
	if dt.lookup(0x80) == nil {
		t.Fatal("entry with noMigrate must survive freeIfZero")
	}
	e.noMigrate = false
	e.owner = 7 // owner alone carries no information outside dirOwned
	dt.freeIfZero(0x80)
	if dt.lookup(0x80) != nil {
		t.Fatal("zero entry must be freed")
	}
	dt.freeIfZero(0x100) // absent line is a no-op
}

// Differential check against a map under a random churn of creates and
// deletes, exercising tombstone reuse, free-list recycling, and rehash.
func TestDirTableVsMap(t *testing.T) {
	dt := newDirTable()
	ref := make(map[mem.Addr]uint64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		line := mem.Addr(rng.Intn(4096)) * 64
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Uint64()
			dt.getOrCreate(line).presence = v
			ref[line] = v
		case 2:
			dt.del(line)
			delete(ref, line)
		}
	}
	if dt.len() != len(ref) {
		t.Fatalf("len = %d, map has %d", dt.len(), len(ref))
	}
	for line, v := range ref {
		e := dt.lookup(line)
		if e == nil || e.presence != v {
			t.Fatalf("line %#x: got %v, want presence %d", uint32(line), e, v)
		}
	}
}

func TestForEachSharerMask(t *testing.T) {
	var got []int
	forEachSharerMask(1<<0|1<<7|1<<63, func(i int) { got = append(got, i) })
	if len(got) != 3 || got[0] != 0 || got[1] != 7 || got[2] != 63 {
		t.Fatalf("got %v, want [0 7 63]", got)
	}
	forEachSharerMask(0, func(i int) { t.Fatal("empty mask must not call back") })
}
