package mesi

// Observability integration for the coherent baseline. MESI has no
// entry buffers to track, so the whole integration is snapshot-time: a
// collector over the cache counters, the protocol counter bag, and the
// backing store, plus the mesh's histogram hooks. Attaching a recorder
// adds no per-access cost to the protocol paths.

import (
	"repro/internal/cache"
	"repro/internal/obs"
)

// SetObs attaches the observability recorder (nil detaches).
func (h *Hierarchy) SetObs(r *obs.Recorder) {
	h.m.Mesh.SetObs(r)
	if r == nil {
		return
	}
	r.OnCollect(h.collect)
}

// collect reads the hierarchy's existing counters into a snapshot.
func (h *Hierarchy) collect(c *obs.Collect) {
	var l1 cache.Stats
	for _, cc := range h.l1 {
		addCacheStats(&l1, cc)
	}
	emitCacheStats(c, "cache.l1", l1)
	var l2 cache.Stats
	for _, cc := range h.l2 {
		addCacheStats(&l2, cc)
	}
	emitCacheStats(c, "cache.l2", l2)
	if h.l3 != nil {
		emitCacheStats(c, "cache.l3", h.l3.Stats())
	}
	for _, name := range h.ctr.Names() {
		c.Count("proto."+name, h.ctr.Get(name))
	}
	words, pages := h.backing.Stats()
	c.Count("mem.footprint.words", int64(words))
	c.Gauge("mem.pages", int64(pages))
}

func addCacheStats(dst *cache.Stats, c *cache.Cache) {
	s := c.Stats()
	dst.Hits += s.Hits
	dst.Misses += s.Misses
	dst.Evictions += s.Evictions
	dst.WritebacksOnEvict += s.WritebacksOnEvict
}

func emitCacheStats(c *obs.Collect, prefix string, s cache.Stats) {
	c.Count(prefix+".hits", s.Hits)
	c.Count(prefix+".misses", s.Misses)
	c.Count(prefix+".evictions", s.Evictions)
	c.Count(prefix+".writebacks_on_evict", s.WritebacksOnEvict)
}
