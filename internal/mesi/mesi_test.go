package mesi

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/topo"
)

func intraHCC() *Hierarchy {
	m := topo.NewIntraBlock()
	return New(m, DefaultConfig(m))
}

func interHCC() *Hierarchy {
	m := topo.NewInterBlock()
	return New(m, DefaultConfig(m))
}

func TestCoherentProducerConsumer(t *testing.T) {
	h := intraHCC()
	a := mem.Addr(0x1000)
	h.Load(1, a) // consumer caches it first
	h.Store(0, a, 42)
	// No WB/INV needed: coherence makes the update visible.
	if v, _ := h.Load(1, a); v != 42 {
		t.Errorf("coherent read = %d, want 42", v)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	h := intraHCC()
	a := mem.Addr(0x2000)
	for c := 0; c < 4; c++ {
		h.Load(c, a)
	}
	before := h.ctr.Get("invalidations")
	h.Store(0, a, 1)
	if got := h.ctr.Get("invalidations") - before; got != 3 {
		t.Errorf("invalidations = %d, want 3", got)
	}
	tr := h.Traffic()
	if tr[stats.Invalidation] == 0 {
		t.Error("no invalidation traffic recorded")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestExclusiveGrantAndSilentUpgrade(t *testing.T) {
	h := intraHCC()
	a := mem.Addr(0x3000)
	h.Load(0, a) // sole reader: E
	l := h.l1[0].Peek(a)
	if l.State.String() != "E" {
		t.Fatalf("sole reader state = %v, want E", l.State)
	}
	before := h.ctr.Get("upgrades")
	lat := h.Store(0, a, 1)
	if lat != 0 {
		t.Errorf("E->M store latency = %d, want 0 (silent)", lat)
	}
	if h.ctr.Get("upgrades") != before {
		t.Error("E->M should not issue an upgrade request")
	}
}

func TestSharedUpgradeLatency(t *testing.T) {
	h := intraHCC()
	a := mem.Addr(0x4000)
	h.Load(0, a)
	h.Load(5, a) // two sharers: both S
	lat := h.Store(0, a, 1)
	if lat <= 0 {
		t.Error("S->M upgrade should have exposed latency")
	}
	if l := h.l1[5].Peek(a); l != nil && l.State.String() != "I" {
		t.Errorf("sharer state after upgrade = %v", l.State)
	}
}

func TestDirtyForwardingMigratesOwnership(t *testing.T) {
	h := intraHCC()
	a := mem.Addr(0x5000)
	h.Store(0, a, 77) // core 0 holds M
	before := h.ctr.Get("forwards")
	v, _ := h.Load(1, a)
	if v != 77 {
		t.Errorf("forwarded value = %d", v)
	}
	if h.ctr.Get("forwards") != before+1 {
		t.Error("dirty read should forward from owner")
	}
	// Migratory-sharing: reading dirty data migrates exclusivity, so the
	// reader's follow-up store is silent and the old owner's copy is gone.
	if h.ctr.Get("migrations") == 0 {
		t.Error("dirty read should be detected as migratory")
	}
	if lat := h.Store(1, a, 78); lat != 0 {
		t.Errorf("migrated store latency = %d, want 0 (silent E->M)", lat)
	}
	if l := h.l1[0].Peek(a); l != nil && l.State != cache.Invalid {
		t.Error("old owner should have been invalidated")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCleanSharingStaysShared(t *testing.T) {
	// Once a line is clean, further readers share it: the migratory
	// heuristic must not ping-pong read-only data.
	h := intraHCC()
	a := mem.Addr(0x5100)
	h.Store(0, a, 5)
	h.Load(1, a) // migrates E to core 1 (dirty recall)
	h.Load(2, a) // clean copy at core 1: plain downgrade to shared
	h.Load(3, a)
	if l := h.l1[2].Peek(a); l == nil || l.State == cache.Invalid {
		t.Error("reader 2 lost its copy")
	}
	if _, lat := h.Load(1, a); lat != 0 {
		t.Error("reader 1 should still hit after other readers joined")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestWriteAfterWriteMigratesOwnership(t *testing.T) {
	h := intraHCC()
	a := mem.Addr(0x6000)
	h.Store(0, a, 1)
	h.Store(1, a, 2)
	h.Store(2, a, 3)
	if v, _ := h.Load(3, a); v != 3 {
		t.Errorf("final value = %d, want 3", v)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFalseSharingPingPong(t *testing.T) {
	// Two cores alternately writing different words of one line: HCC
	// ping-pongs the whole line (the paper's Figure 10 discussion).
	h := intraHCC()
	line := mem.Addr(0x7000)
	for i := 0; i < 10; i++ {
		h.Store(0, line, mem.Word(i))
		h.Store(1, line+4, mem.Word(i))
	}
	if h.ctr.Get("invalidations")+h.ctr.Get("forwards") < 10 {
		t.Error("false sharing should cause repeated coherence actions")
	}
	if v, _ := h.Load(2, line); v != 9 {
		t.Errorf("word0 = %d", v)
	}
	if v, _ := h.Load(2, line+4); v != 9 {
		t.Errorf("word1 = %d", v)
	}
}

func TestCrossBlockCoherence(t *testing.T) {
	h := interHCC()
	a := mem.Addr(0x8000)
	h.Load(8, a) // block 1 reads
	h.Store(0, a, 5)
	if v, _ := h.Load(8, a); v != 5 {
		t.Errorf("cross-block read = %d, want 5", v)
	}
	h.Store(9, a, 6) // block 1 writes
	if v, _ := h.Load(0, a); v != 6 {
		t.Errorf("read-back = %d, want 6", v)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCrossBlockLatencyExceedsIntraBlock(t *testing.T) {
	h := interHCC()
	a := mem.Addr(0x9000)
	h.Store(0, a, 1)
	_, intra := h.Load(1, a) // same block forward
	h.Store(0, a, 2)
	_, inter := h.Load(8, a) // cross block recall
	if inter <= intra {
		t.Errorf("cross-block load (%d) should cost more than intra-block (%d)", inter, intra)
	}
}

func TestBlockRecallCounts(t *testing.T) {
	h := interHCC()
	a := mem.Addr(0xa000)
	h.Store(0, a, 1)
	h.Load(8, a)
	if h.ctr.Get("block.recalls") == 0 {
		t.Error("cross-block read of dirty line should recall")
	}
}

func TestDrainProducesFinalValues(t *testing.T) {
	h := interHCC()
	h.Store(0, 0xb000, 10)
	h.Store(9, 0xb040, 20)
	h.Drain()
	if h.Memory().ReadWord(0xb000) != 10 || h.Memory().ReadWord(0xb040) != 20 {
		t.Error("drain lost modified data")
	}
}

func TestUncached(t *testing.T) {
	h := intraHCC()
	h.StoreUncached(0, 0xc000, 3)
	if v, _ := h.LoadUncached(5, 0xc000); v != 3 {
		t.Errorf("uncached = %d", v)
	}
}

// Randomized coherence check: random loads/stores from random cores over a
// small address pool must always match a sequentially-updated reference
// (each op is atomic in this simulator, so the reference is exact), and
// the protocol invariants must hold throughout.
func TestRandomizedCoherenceIntra(t *testing.T) {
	testRandomizedCoherence(t, intraHCC(), 16)
}

func TestRandomizedCoherenceInter(t *testing.T) {
	testRandomizedCoherence(t, interHCC(), 32)
}

func testRandomizedCoherence(t *testing.T, h *Hierarchy, cores int) {
	t.Helper()
	rng := rand.New(rand.NewSource(12345))
	ref := make(map[mem.Addr]mem.Word)
	pool := make([]mem.Addr, 64)
	for i := range pool {
		pool[i] = mem.Addr(0x10000 + i*4) // 16 lines, 4 words each
	}
	for i := 0; i < 4000; i++ {
		c := rng.Intn(cores)
		a := pool[rng.Intn(len(pool))]
		if rng.Intn(2) == 0 {
			v := mem.Word(rng.Uint32())
			h.Store(c, a, v)
			ref[a] = v
		} else {
			v, _ := h.Load(c, a)
			if v != ref[a] {
				t.Fatalf("op %d: core %d read %#x = %d, want %d", i, c, uint32(a), v, ref[a])
			}
		}
		if i%500 == 0 {
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	h.Drain()
	for a, want := range ref {
		if got := h.Memory().ReadWord(a); got != want {
			t.Fatalf("after drain: %#x = %d, want %d", uint32(a), got, want)
		}
	}
}

// Capacity stress: walk far more lines than the L1 holds so evictions and
// (with a tiny config) L2 evictions exercise inclusive recall paths.
func TestEvictionStress(t *testing.T) {
	m := topo.NewIntraBlock()
	cfg := DefaultConfig(m)
	cfg.L1.Bytes = 4 << 10 // 64 lines
	h := New(m, cfg)
	rng := rand.New(rand.NewSource(99))
	ref := make(map[mem.Addr]mem.Word)
	for i := 0; i < 3000; i++ {
		c := rng.Intn(4)
		a := mem.Addr(0x20000 + rng.Intn(512)*64)
		if rng.Intn(2) == 0 {
			v := mem.Word(i)
			h.Store(c, a, v)
			ref[a] = v
		} else if want, ok := ref[a]; ok {
			if v, _ := h.Load(c, a); v != want {
				t.Fatalf("op %d: read %d, want %d", i, v, want)
			}
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestL2EvictionRecallsL1Inclusive(t *testing.T) {
	m := topo.NewIntraBlock()
	cfg := DefaultConfig(m)
	cfg.L2.Bytes = 8 << 10 // 128 lines total: force L2 evictions
	cfg.L2.Ways = 2
	h := New(m, cfg)
	// Core 0 dirties many lines; L2 evictions must not lose data.
	for i := 0; i < 400; i++ {
		h.Store(0, mem.Addr(0x30000+i*64), mem.Word(i))
	}
	for i := 0; i < 400; i++ {
		if v, _ := h.Load(1, mem.Addr(0x30000+i*64)); v != mem.Word(i) {
			t.Fatalf("line %d = %d after L2 evictions", i, v)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A stencil-like pattern (owner writes, neighbor only reads, repeatedly)
// must settle into stable producer-consumer sharing: the adaptive
// predictor stops migrating after one misprediction, so migrations do not
// grow with iterations.
func TestAdaptiveMigratoryStopsOnStencil(t *testing.T) {
	h := intraHCC()
	a := mem.Addr(0x20000)
	warmup := func() int64 {
		for it := 0; it < 3; it++ {
			h.Store(0, a, mem.Word(it)) // producer updates
			h.Load(1, a)                // consumer only reads
		}
		return h.ctr.Get("migrations")
	}
	first := warmup()
	for it := 0; it < 20; it++ {
		h.Store(0, a, mem.Word(100+it))
		h.Load(1, a)
	}
	if grew := h.ctr.Get("migrations") - first; grew > 0 {
		t.Errorf("migrations kept growing on a read-only consumer (%d more)", grew)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// A migratory read-modify-write chain keeps migrating (each grantee
// writes, so the prediction keeps being confirmed).
func TestMigratoryChainKeepsMigrating(t *testing.T) {
	h := intraHCC()
	a := mem.Addr(0x21000)
	h.Store(0, a, 1)
	for c := 1; c < 8; c++ {
		v, _ := h.Load(c, a)
		if lat := h.Store(c, a, v+1); lat != 0 {
			t.Fatalf("core %d store latency = %d, want 0 (migrated exclusivity)", c, lat)
		}
	}
	if v, _ := h.Load(8, a); v != 8 {
		t.Errorf("chain result = %d, want 8", v)
	}
	if h.ctr.Get("migrations") < 7 {
		t.Errorf("migrations = %d, want >= 7", h.ctr.Get("migrations"))
	}
}

// Cross-block migratory chains behave the same at the block level.
func TestCrossBlockMigratoryChain(t *testing.T) {
	h := interHCC()
	a := mem.Addr(0x22000)
	h.Store(0, a, 1)
	for b := 1; b < 4; b++ {
		core0 := b * 8
		v, _ := h.Load(core0, a)
		h.Store(core0, a, v*2)
	}
	if v, _ := h.Load(0, a); v != 8 {
		t.Errorf("cross-block chain = %d, want 8", v)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
