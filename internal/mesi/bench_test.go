package mesi

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/topo"
)

// BenchmarkMesiDirectory measures the directory hot path of the MESI
// baseline: loads and stores whose lines continually enter and leave the
// L2/L3 directories (fills, upgrades, invalidations, evictions). Before
// the flat-table rewrite every touched line allocated a map entry plus a
// heap dirEntry; the benchmark's allocs/op tracks that cost.
func BenchmarkMesiDirectory(b *testing.B) {
	bench := func(b *testing.B, m *topo.Machine) {
		h := New(m, DefaultConfig(m))
		cores := m.NumCores()
		// Working set: 8192 lines shared round-robin by all cores, with
		// every fourth access a store so ownership migrates between cores
		// and blocks and directory entries cycle through their states.
		const lines = 8192
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core := i % cores
			a := mem.Addr((i*7)%lines) * mem.LineBytes
			if i%4 == 0 {
				h.Store(core, a, mem.Word(i))
			} else {
				h.Load(core, a)
			}
		}
	}
	b.Run("intra", func(b *testing.B) { bench(b, topo.NewIntraBlock()) })
	b.Run("inter", func(b *testing.B) { bench(b, topo.NewInterBlock()) })
}
