package mesi

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// The coherence-management instructions are architecturally legal on the
// hardware-coherent machine but have nothing to do: the directory protocol
// already keeps every cache coherent. They complete in zero exposed cycles
// and are counted, so experiments can verify that HCC configurations are
// not accidentally annotated.

// WB is a no-op under hardware coherence.
func (h *Hierarchy) WB(int, mem.Range, isa.Level) int64 {
	h.ctr.Inc("ignored.wbinv", 1)
	return 0
}

// INV is a no-op under hardware coherence.
func (h *Hierarchy) INV(int, mem.Range, isa.Level) int64 {
	h.ctr.Inc("ignored.wbinv", 1)
	return 0
}

// WBAll is a no-op under hardware coherence.
func (h *Hierarchy) WBAll(int, bool, isa.Level) int64 {
	h.ctr.Inc("ignored.wbinv", 1)
	return 0
}

// INVAll is a no-op under hardware coherence.
func (h *Hierarchy) INVAll(int, bool, isa.Level) int64 {
	h.ctr.Inc("ignored.wbinv", 1)
	return 0
}

// WBCons is a no-op under hardware coherence.
func (h *Hierarchy) WBCons(int, mem.Range, int) int64 {
	h.ctr.Inc("ignored.wbinv", 1)
	return 0
}

// InvProd is a no-op under hardware coherence.
func (h *Hierarchy) InvProd(int, mem.Range, int) int64 {
	h.ctr.Inc("ignored.wbinv", 1)
	return 0
}

// WBConsAll is a no-op under hardware coherence.
func (h *Hierarchy) WBConsAll(int, int) int64 {
	h.ctr.Inc("ignored.wbinv", 1)
	return 0
}

// InvProdAll is a no-op under hardware coherence.
func (h *Hierarchy) InvProdAll(int, int) int64 {
	h.ctr.Inc("ignored.wbinv", 1)
	return 0
}

// SigPublish is a no-op under hardware coherence.
func (h *Hierarchy) SigPublish(int, int) int64 {
	h.ctr.Inc("ignored.wbinv", 1)
	return 0
}

// INVSig is a no-op under hardware coherence.
func (h *Hierarchy) INVSig(int, int) int64 {
	h.ctr.Inc("ignored.wbinv", 1)
	return 0
}

// DMACopy on the coherent machine is modeled as the initiating core
// copying coherently word by word (a coherent machine needs no DMA engine
// for correctness; this keeps DMA-using programs runnable under HCC).
func (h *Hierarchy) DMACopy(core int, dst mem.Addr, src mem.Range, _ int) int64 {
	var lat int64
	off := int64(dst) - int64(src.Base)
	for a := mem.WordAddr(src.Base); a < src.End(); a += mem.WordBytes {
		v, l1 := h.Load(core, a)
		l2 := h.Store(core, mem.Addr(int64(a)+off), v)
		lat += l1 + l2
	}
	return lat
}
