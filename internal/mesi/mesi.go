// Package mesi implements the paper's hardware-coherent baseline (HCC): a
// full-mapped directory-based MESI protocol. On the single-block machine
// the directory lives with the shared L2 and tracks per-core presence; on
// the multi-block machine the protocol is hierarchical (Section VI): the L3
// directory tracks per-block presence and each block's L2 directory tracks
// per-core presence, exactly the organization costed in Section VII-A.
//
// The hierarchy is inclusive (a line cached in an L1 is present in its
// block's L2, and a line in any L2 is present in the L3), which is what a
// directory embedded in the shared caches requires. Transactions are
// resolved atomically: each load or store computes its full latency (bank
// round trips, owner forwarding, invalidation legs) and traffic (line
// fills, full-line writebacks, invalidation requests and acks) in one call.
// Clean L1 evictions are silent, so directory presence bits can go stale;
// stale entries cost spurious (immediately acknowledged) invalidations,
// as in a real full-map directory without replacement hints.
package mesi

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/topo"
)

// dirState is the directory's view of a line.
type dirState uint8

const (
	dirUncached dirState = iota
	dirShared
	dirOwned // one cache above holds it E or M
)

// dirEntry is one full-map directory entry: presence bits over the caches
// one level up plus the owner for dirOwned lines.
type dirEntry struct {
	state    dirState
	presence uint64
	owner    int
	// migrated marks that the current owner received the line through a
	// migratory grant; noMigrate disables the heuristic for this line
	// after a misprediction (the grantee never wrote), so read-shared
	// data does not ping-pong. This is the standard adaptive migratory
	// protocol (Cox/Fowler, Stenström et al.).
	migrated  bool
	noMigrate bool
}

func (e *dirEntry) clear(i int)    { e.presence &^= 1 << uint(i) }
func (e *dirEntry) set(i int)      { e.presence |= 1 << uint(i) }
func (e *dirEntry) has(i int) bool { return e.presence&(1<<uint(i)) != 0 }

// Config sizes the coherent hierarchy; identical cache geometry to the
// incoherent one so comparisons are apples-to-apples.
type Config struct {
	L1, L2, L3 cache.Config
}

// DefaultConfig returns Table III cache sizes for machine m.
func DefaultConfig(m *topo.Machine) Config {
	cfg := Config{
		L1: cache.Config{Bytes: 32 << 10, Ways: 4},
		L2: cache.Config{Bytes: (128 << 10) * m.CoresPerBlock, Ways: 8},
	}
	if m.L3Banks > 0 {
		cfg.L3 = cache.Config{Bytes: (4 << 20) * m.L3Banks, Ways: 8}
	}
	return cfg
}

// Hierarchy is one hardware-coherent MESI hierarchy.
type Hierarchy struct {
	m       *topo.Machine
	backing *mem.Memory
	l1      []*cache.Cache
	l2      []*cache.Cache
	l3      *cache.Cache

	l2dir  []*dirTable // per block: line -> per-core presence (core index within block)
	l3dirs []*dirTable // per L3 bank: line -> per-block presence

	ctr *stats.Counters
}

// New builds a coherent hierarchy on machine m.
func New(m *topo.Machine, cfg Config) *Hierarchy {
	h := &Hierarchy{
		m:       m,
		backing: mem.NewMemory(),
		l1:      make([]*cache.Cache, m.NumCores()),
		l2:      make([]*cache.Cache, m.Blocks),
		l2dir:   make([]*dirTable, m.Blocks),
		ctr:     stats.NewCounters(),
	}
	for c := range h.l1 {
		h.l1[c] = cache.New(cfg.L1)
	}
	for b := range h.l2 {
		h.l2[b] = cache.New(cfg.L2)
		h.l2dir[b] = newDirTable()
	}
	if m.L3Banks > 0 {
		if cfg.L3.Bytes == 0 {
			panic("mesi: machine has L3 banks but config has no L3 cache")
		}
		if m.Blocks > 64 {
			// The L3 directory's presence field is a uint64 over blocks;
			// a larger machine would silently shift bits into oblivion.
			panic(fmt.Sprintf("mesi: %d blocks exceed the 64-bit directory presence field", m.Blocks))
		}
		h.l3 = cache.New(cfg.L3)
		// One directory table per L3 bank, mirroring the physical banking:
		// lines hash to banks, so each table stays small and bank lookups
		// never touch another bank's map.
		h.l3dirs = make([]*dirTable, m.L3Banks)
		for i := range h.l3dirs {
			h.l3dirs[i] = newDirTable()
		}
	}
	if m.CoresPerBlock > 64 {
		panic(fmt.Sprintf("mesi: %d cores per block exceed the 64-bit directory presence field", m.CoresPerBlock))
	}
	return h
}

// Machine returns the topology.
func (h *Hierarchy) Machine() *topo.Machine { return h.m }

// Memory returns the backing store (authoritative after Drain).
func (h *Hierarchy) Memory() *mem.Memory { return h.backing }

// Counters returns protocol event counters.
func (h *Hierarchy) Counters() *stats.Counters { return h.ctr }

// Traffic returns accumulated flit counts.
func (h *Hierarchy) Traffic() stats.Traffic { return h.m.Mesh.Traffic() }

// SyncCost is the synchronization cost hook (identical to the incoherent
// machine's: the sync hardware is the same in both designs).
func (h *Hierarchy) SyncCost(core, id int) int64 {
	h.m.Mesh.Account(stats.SyncTraffic, 2)
	return h.m.SyncCost(core, id)
}

func (h *Hierarchy) coreInBlock(core int) int { return core % h.m.CoresPerBlock }

func (h *Hierarchy) dirL2(b int, line mem.Addr) *dirEntry {
	return h.l2dir[b].getOrCreate(line)
}

func (h *Hierarchy) dirL3(line mem.Addr) *dirEntry {
	return h.dirTableL3(line).getOrCreate(line)
}

// dirTableL3 returns the directory table of the L3 bank that owns line.
func (h *Hierarchy) dirTableL3(line mem.Addr) *dirTable {
	return h.l3dirs[h.m.L3BankOf(line)]
}

// ---- Core-facing operations -------------------------------------------

// Load performs a coherent read, returning the value and exposed latency.
func (h *Hierarchy) Load(core int, a mem.Addr) (mem.Word, int64) {
	line := mem.LineAddr(a)
	l1 := h.l1[core]
	if l := l1.Lookup(a); l != nil && l.State != cache.Invalid {
		return l.Words[mem.WordIndex(a)], 0
	}
	lat := h.fetchIntoL1(core, line, false)
	l := l1.Peek(a)
	return l.Words[mem.WordIndex(a)], lat
}

// Store performs a coherent write, returning exposed latency.
func (h *Hierarchy) Store(core int, a mem.Addr, v mem.Word) int64 {
	line := mem.LineAddr(a)
	l1 := h.l1[core]
	var lat int64
	l := l1.Lookup(a)
	switch {
	case l != nil && l.State == cache.Modified:
		// Hit in M: write locally.
	case l != nil && l.State == cache.Exclusive:
		// Silent E->M upgrade; the directory already records ownership.
		l.State = cache.Modified
	case l != nil && l.State == cache.Shared:
		lat = h.upgradeToM(core, line)
		l = l1.Peek(a)
	default:
		lat = h.fetchIntoL1(core, line, true)
		l = l1.Peek(a)
	}
	l.Words[mem.WordIndex(a)] = v
	l.State = cache.Modified
	l.Dirty = mem.FullMask // HCC writebacks are full lines
	h.dirL2(h.m.BlockOf(core), line).owner = h.coreInBlock(core)
	return lat
}

// fetchIntoL1 brings a line into core's L1 with read (S/E) or write (M)
// rights, performing all directory work, and returns the latency.
func (h *Hierarchy) fetchIntoL1(core int, line mem.Addr, excl bool) int64 {
	b := h.m.BlockOf(core)
	p := h.m.Params
	mesh := h.m.Mesh
	bank := h.m.L2BankNode(b, line)

	lat := p.L2RT + mesh.RTLatency(h.m.CoreNode(core), bank)
	mesh.Account(stats.Linefill, noc.CtrlFlits()+noc.DataFlits(mem.LineBytes))

	// Ensure the block's L2 has the line with sufficient block-level
	// rights (inclusive hierarchy).
	lat += h.ensureL2(b, line, excl)
	l2l := h.l2[b].Peek(line)
	e := h.dirL2(b, line)
	ci := h.coreInBlock(core)

	if e.state == dirOwned && e.owner != ci {
		// Another core in the block holds it E or M: forward and downgrade
		// (GetS), invalidate (GetX), or — when the copy is dirty and the
		// request is a read — migrate ownership (the classic migratory-
		// sharing optimization: a read of freshly written data predicts a
		// read-modify-write chain, so granting exclusivity saves the
		// follow-up upgrade).
		ownerCore := b*h.m.CoresPerBlock + e.owner
		lat += mesh.RTLatency(bank, h.m.CoreNode(ownerCore)) + p.L1RT
		h.ctr.Inc("forwards", 1)
		migratory := false
		if ol := h.l1[ownerCore].Peek(line); ol != nil && ol.State != cache.Invalid {
			if ol.State == cache.Modified {
				l2l.Words = ol.Words
				l2l.Dirty = mem.FullMask
				mesh.Account(stats.Writeback, noc.DataFlits(mem.LineBytes))
				migratory = !excl && !e.noMigrate
			} else if e.migrated {
				// The migratory grantee never wrote: misprediction.
				// Disable the heuristic for this line.
				e.noMigrate = true
			}
			if excl || migratory {
				h.l1[ownerCore].Invalidate(line)
				mesh.Account(stats.Invalidation, 2*noc.CtrlFlits())
				h.ctr.Inc("invalidations", 1)
				if migratory {
					h.ctr.Inc("migrations", 1)
				}
			} else {
				ol.State = cache.Shared
			}
		}
		if excl || migratory {
			e.clear(e.owner)
			e.state = dirUncached
		} else {
			e.state = dirShared
		}
		e.migrated = migratory
	}

	if excl && e.state == dirShared {
		lat += h.invalidateBlockSharers(b, line, ci)
	}

	// Deliver data and set states. An Exclusive grant is only safe when
	// this block is the sole holder machine-wide: a later silent E->M
	// upgrade must not leave stale copies in other blocks.
	var st cache.State
	if excl {
		st = cache.Modified
		e.state = dirOwned
		e.owner = ci
		e.presence = 0
	} else if e.presence == 0 && e.state != dirOwned && h.blockSoleHolder(b, line) {
		st = cache.Exclusive
		e.state = dirOwned
		e.owner = ci
	} else {
		st = cache.Shared
		e.state = dirShared
	}
	e.set(ci)

	words := l2l.Words
	var victim cache.Line
	if _, evicted := h.l1[core].Insert(line, &words, st, &victim); evicted {
		h.l1VictimWriteback(core, &victim)
	}
	return lat
}

// upgradeToM converts core's S copy to M, invalidating other sharers.
func (h *Hierarchy) upgradeToM(core int, line mem.Addr) int64 {
	b := h.m.BlockOf(core)
	p := h.m.Params
	mesh := h.m.Mesh
	bank := h.m.L2BankNode(b, line)
	ci := h.coreInBlock(core)
	lat := p.L2RT + mesh.RTLatency(h.m.CoreNode(core), bank)
	mesh.Account(stats.Invalidation, noc.CtrlFlits()) // upgrade request
	h.ctr.Inc("upgrades", 1)

	// Block-level rights: other blocks' copies must go too.
	lat += h.ensureL2(b, line, true)

	lat += h.invalidateBlockSharers(b, line, ci)
	e := h.dirL2(b, line)
	e.state = dirOwned
	e.owner = ci
	e.presence = 0
	e.set(ci)
	if l := h.l1[core].Peek(line); l != nil {
		l.State = cache.Modified
	}
	return lat
}

// invalidateBlockSharers sends invalidations to every L1 in block b that
// the directory lists for line, except core index keep. Returns the
// latency of the farthest leg.
func (h *Hierarchy) invalidateBlockSharers(b int, line mem.Addr, keep int) int64 {
	e := h.dirL2(b, line)
	mesh := h.m.Mesh
	bank := h.m.L2BankNode(b, line)
	var worst int64
	forEachSharerMask(e.presence, func(s int) {
		if s == keep {
			return
		}
		core := b*h.m.CoresPerBlock + s
		leg := mesh.RTLatency(bank, h.m.CoreNode(core))
		if leg > worst {
			worst = leg
		}
		mesh.Account(stats.Invalidation, 2*noc.CtrlFlits()) // inv + ack
		h.ctr.Inc("invalidations", 1)
		if l := h.l1[core].Peek(line); l != nil {
			if l.State == cache.Modified {
				// Possible under stale presence after silent transitions:
				// save the data.
				if l2l := h.l2[b].Peek(line); l2l != nil {
					l2l.Words = l.Words
					l2l.Dirty = mem.FullMask
				}
				mesh.Account(stats.Writeback, noc.DataFlits(mem.LineBytes))
			}
			h.l1[core].Invalidate(line)
		}
		e.clear(s)
	})
	keepHad := e.has(keep)
	e.presence = 0
	if keepHad {
		e.set(keep)
	}
	return worst
}

// l1VictimWriteback handles an evicted L1 line: M lines write data back to
// the block's L2; clean lines are dropped silently (presence goes stale).
func (h *Hierarchy) l1VictimWriteback(core int, victim *cache.Line) {
	b := h.m.BlockOf(core)
	e := h.dirL2(b, victim.Tag)
	if victim.State == cache.Modified {
		if l2l := h.l2[b].Peek(victim.Tag); l2l != nil {
			l2l.Words = victim.Words
			l2l.Dirty = mem.FullMask
		}
		h.m.Mesh.Account(stats.Writeback, noc.DataFlits(mem.LineBytes))
		h.ctr.Inc("l1.evict.dirty", 1)
		e.clear(h.coreInBlock(core))
		if e.state == dirOwned && e.owner == h.coreInBlock(core) {
			e.state = dirUncached
			if e.presence != 0 {
				e.state = dirShared
			}
		}
	}
	// Clean evictions are silent: presence bits go stale.
	// If the writeback dropped the last presence bit, compact the entry.
	h.l2dir[b].freeIfZero(victim.Tag)
}

// blockSoleHolder reports whether block b is the only block holding line
// (always true on the single-block machine).
func (h *Hierarchy) blockSoleHolder(b int, line mem.Addr) bool {
	if h.l3 == nil {
		return true
	}
	e3 := h.dirL3(line)
	return e3.state == dirOwned && e3.owner == b
}

// ---- Block level (L3 directory) ----------------------------------------

// ensureL2 guarantees block b's L2 holds line with read or exclusive
// block-level rights, fetching from L3/memory and doing inter-block
// coherence work as needed. Returns added latency.
func (h *Hierarchy) ensureL2(b int, line mem.Addr, excl bool) int64 {
	p := h.m.Params
	mesh := h.m.Mesh
	bank := h.m.L2BankNode(b, line)
	l2l := h.l2[b].Peek(line)

	if h.l3 == nil {
		// Single-block machine: the L2 is the last level.
		if l2l != nil {
			return 0
		}
		lat := p.MemRT + mesh.RTLatency(bank, h.m.MemNode(line))
		mesh.Account(stats.MemoryTraffic, noc.CtrlFlits()+noc.DataFlits(mem.LineBytes))
		var words [mem.WordsPerLine]mem.Word
		h.backing.ReadLine(line, &words)
		h.insertL2(b, line, &words)
		return lat
	}

	e3 := h.dirL3(line)
	bHas := l2l != nil && e3.has(b)
	rightsOK := bHas && (!excl || (e3.state == dirOwned && e3.owner == b))
	if rightsOK {
		return 0
	}

	l3n := h.m.L3Node(line)
	lat := p.L3RT + mesh.RTLatency(bank, l3n)
	mesh.Account(stats.Linefill, noc.CtrlFlits()+noc.DataFlits(mem.LineBytes))

	// Bring the line into the L3 if absent.
	l3l := h.l3.Peek(line)
	if l3l == nil {
		lat += p.MemRT + mesh.RTLatency(l3n, h.m.MemNode(line))
		mesh.Account(stats.MemoryTraffic, noc.CtrlFlits()+noc.DataFlits(mem.LineBytes))
		var words [mem.WordsPerLine]mem.Word
		h.backing.ReadLine(line, &words)
		var victim cache.Line
		if _, evicted := h.l3.Insert(line, &words, cache.StateNone, &victim); evicted {
			h.recallL3Victim(&victim)
		}
		l3l = h.l3.Peek(line)
	}

	// Owned in another block: recall its data. A read recall of dirty
	// data migrates block-level ownership (migratory-sharing), saving the
	// later cross-block upgrade of a read-modify-write chain.
	if e3.state == dirOwned && e3.owner != b {
		dirty := h.blockHoldsDirty(e3.owner, line)
		if e3.migrated && !dirty {
			e3.noMigrate = true // misprediction: grantee block never wrote
		}
		migratory := !excl && dirty && !e3.noMigrate
		lat += h.recallBlock(e3.owner, line, excl || migratory)
		if excl || migratory {
			e3.clear(e3.owner)
			e3.state = dirUncached
			if migratory {
				h.ctr.Inc("migrations", 1)
			}
		} else {
			e3.state = dirShared
		}
		e3.migrated = migratory
	}
	if excl && e3.state == dirShared {
		lat += h.invalidateSharerBlocks(line, b)
	}

	// Deliver to block b.
	if l2l == nil {
		words := l3l.Words
		h.insertL2(b, line, &words)
		l2l = h.l2[b].Peek(line)
	} else {
		l2l.Words = l3l.Words
		l2l.Dirty = 0
	}
	if excl {
		e3.state = dirOwned
		e3.owner = b
		e3.presence = 0
	} else if e3.presence == 0 && e3.state != dirOwned {
		e3.state = dirOwned
		e3.owner = b
	} else {
		e3.state = dirShared
	}
	e3.set(b)
	return lat
}

// insertL2 installs a line in block b's L2, handling the inclusive victim.
func (h *Hierarchy) insertL2(b int, line mem.Addr, words *[mem.WordsPerLine]mem.Word) {
	var victim cache.Line
	if _, evicted := h.l2[b].Insert(line, words, cache.StateNone, &victim); evicted {
		h.evictL2Line(b, &victim)
	}
}

// evictL2Line handles an L2 eviction: invalidate the block's L1 copies
// (inclusivity), then write dirty data down.
func (h *Hierarchy) evictL2Line(b int, victim *cache.Line) {
	e := h.dirL2(b, victim.Tag)
	words := victim.Words
	dirty := victim.IsDirty()
	forEachSharerMask(e.presence, func(s int) {
		core := b*h.m.CoresPerBlock + s
		if l := h.l1[core].Peek(victim.Tag); l != nil {
			if l.State == cache.Modified {
				words = l.Words
				dirty = true
				h.m.Mesh.Account(stats.Writeback, noc.DataFlits(mem.LineBytes))
			}
			h.l1[core].Invalidate(victim.Tag)
			h.m.Mesh.Account(stats.Invalidation, 2*noc.CtrlFlits())
			h.ctr.Inc("invalidations", 1)
		}
	})
	h.l2dir[b].del(victim.Tag)
	if dirty {
		h.writeBelowL2(victim.Tag, &words)
	}
	if h.l3 != nil {
		// Block no longer holds the line.
		e3 := h.dirL3(victim.Tag)
		e3.clear(b)
		if e3.state == dirOwned && e3.owner == b {
			e3.state = dirShared
			if e3.presence == 0 {
				e3.state = dirUncached
			}
		}
		h.dirTableL3(victim.Tag).freeIfZero(victim.Tag)
	}
	h.ctr.Inc("l2.evictions", 1)
}

// writeBelowL2 pushes a full line's data to L3 (marking dirty) or memory.
func (h *Hierarchy) writeBelowL2(line mem.Addr, words *[mem.WordsPerLine]mem.Word) {
	if h.l3 != nil {
		if l3l := h.l3.Peek(line); l3l != nil {
			l3l.Words = *words
			l3l.Dirty = mem.FullMask
			h.m.Mesh.Account(stats.Writeback, noc.DataFlits(mem.LineBytes))
			return
		}
	}
	h.backing.WriteLine(line, words, mem.FullMask)
	h.m.Mesh.Account(stats.MemoryTraffic, noc.DataFlits(mem.LineBytes))
}

// blockHoldsDirty reports whether block b holds modified data for line
// (in its L2 copy or in one of its L1s).
func (h *Hierarchy) blockHoldsDirty(b int, line mem.Addr) bool {
	if l2l := h.l2[b].Peek(line); l2l != nil && l2l.IsDirty() {
		return true
	}
	e := h.dirL2(b, line)
	if e.state != dirOwned {
		return false
	}
	ownerCore := b*h.m.CoresPerBlock + e.owner
	ol := h.l1[ownerCore].Peek(line)
	return ol != nil && ol.State == cache.Modified
}

// recallBlock pulls the up-to-date copy of line out of block b (which owns
// it at the L3 directory), downgrading (shared) or invalidating (excl) the
// block's copies, and refreshes the L3 data. Returns the leg latency.
func (h *Hierarchy) recallBlock(b int, line mem.Addr, excl bool) int64 {
	p := h.m.Params
	mesh := h.m.Mesh
	l3n := h.m.L3Node(line)
	bank := h.m.L2BankNode(b, line)
	lat := mesh.RTLatency(l3n, bank) + p.L2RT
	h.ctr.Inc("block.recalls", 1)

	l2l := h.l2[b].Peek(line)
	e := h.dirL2(b, line)
	// First pull any dirty L1 copy into the block's L2.
	if e.state == dirOwned {
		ownerCore := b*h.m.CoresPerBlock + e.owner
		if ol := h.l1[ownerCore].Peek(line); ol != nil && ol.State == cache.Modified && l2l != nil {
			l2l.Words = ol.Words
			l2l.Dirty = mem.FullMask
			mesh.Account(stats.Writeback, noc.DataFlits(mem.LineBytes))
			lat += mesh.RTLatency(bank, h.m.CoreNode(ownerCore)) + p.L1RT
		}
	}
	if excl {
		// Invalidate every L1 copy in the block, then the L2 copy.
		forEachSharerMask(e.presence, func(s int) {
			core := b*h.m.CoresPerBlock + s
			if h.l1[core].Invalidate(line) {
				mesh.Account(stats.Invalidation, 2*noc.CtrlFlits())
				h.ctr.Inc("invalidations", 1)
			}
		})
		h.l2dir[b].del(line)
	} else {
		forEachSharerMask(e.presence, func(s int) {
			core := b*h.m.CoresPerBlock + s
			if l := h.l1[core].Peek(line); l != nil && l.State != cache.Shared {
				l.State = cache.Shared
			}
		})
		e.state = dirShared
	}
	// Refresh L3 with the block's data.
	if l2l != nil {
		if l3l := h.l3.Peek(line); l3l != nil && l2l.IsDirty() {
			l3l.Words = l2l.Words
			l3l.Dirty = mem.FullMask
			mesh.Account(stats.Writeback, noc.DataFlits(mem.LineBytes))
		}
		if excl {
			h.l2[b].Invalidate(line)
		} else {
			l2l.Dirty = 0
		}
	}
	return lat
}

// invalidateSharerBlocks invalidates line from every block except keep.
func (h *Hierarchy) invalidateSharerBlocks(line mem.Addr, keep int) int64 {
	e3 := h.dirL3(line)
	mesh := h.m.Mesh
	l3n := h.m.L3Node(line)
	var worst int64
	forEachSharerMask(e3.presence, func(b int) {
		if b == keep {
			return
		}
		leg := mesh.RTLatency(l3n, h.m.L2BankNode(b, line))
		if leg > worst {
			worst = leg
		}
		mesh.Account(stats.Invalidation, 2*noc.CtrlFlits())
		h.ctr.Inc("invalidations", 1)
		// Invalidate the block's L1 copies and its L2 copy.
		eb := h.dirL2(b, line)
		forEachSharerMask(eb.presence, func(s int) {
			core := b*h.m.CoresPerBlock + s
			h.l1[core].Invalidate(line)
		})
		h.l2dir[b].del(line)
		h.l2[b].Invalidate(line)
		e3.clear(b)
	})
	keepHad := e3.has(keep)
	e3.presence = 0
	if keepHad {
		e3.set(keep)
	}
	return worst
}

// recallL3Victim evicts a line from the L3, recalling it from every block
// (inclusive hierarchy) and writing dirty data to memory.
func (h *Hierarchy) recallL3Victim(victim *cache.Line) {
	e3 := h.dirL3(victim.Tag)
	words := victim.Words
	dirty := victim.IsDirty()
	forEachSharerMask(e3.presence, func(b int) {
		eb := h.dirL2(b, victim.Tag)
		forEachSharerMask(eb.presence, func(s int) {
			core := b*h.m.CoresPerBlock + s
			if l := h.l1[core].Peek(victim.Tag); l != nil {
				if l.State == cache.Modified {
					words = l.Words
					dirty = true
				}
				h.l1[core].Invalidate(victim.Tag)
				h.m.Mesh.Account(stats.Invalidation, 2*noc.CtrlFlits())
				h.ctr.Inc("invalidations", 1)
			}
		})
		if l2l := h.l2[b].Peek(victim.Tag); l2l != nil {
			if l2l.IsDirty() {
				words = l2l.Words
				dirty = true
			}
			h.l2[b].Invalidate(victim.Tag)
		}
		h.l2dir[b].del(victim.Tag)
	})
	h.dirTableL3(victim.Tag).del(victim.Tag)
	if dirty {
		h.backing.WriteLine(victim.Tag, &words, mem.FullMask)
		h.m.Mesh.Account(stats.MemoryTraffic, noc.DataFlits(mem.LineBytes))
	}
	h.ctr.Inc("l3.evictions", 1)
}

// ---- Uncacheable, epochs, drain ----------------------------------------

// LoadUncached mirrors the incoherent hierarchy's uncacheable access.
func (h *Hierarchy) LoadUncached(core int, a mem.Addr) (mem.Word, int64) {
	h.m.Mesh.Account(stats.SyncTraffic, noc.CtrlFlits()+noc.DataFlits(mem.WordBytes))
	return h.backing.ReadWord(a), h.uncachedRT(core, a)
}

// StoreUncached mirrors the incoherent hierarchy's uncacheable access.
func (h *Hierarchy) StoreUncached(core int, a mem.Addr, v mem.Word) int64 {
	h.m.Mesh.Account(stats.SyncTraffic, noc.DataFlits(mem.WordBytes))
	h.backing.WriteWord(a, v)
	return h.uncachedRT(core, a)
}

func (h *Hierarchy) uncachedRT(core int, a mem.Addr) int64 {
	p := h.m.Params
	line := mem.LineAddr(a)
	if h.l3 != nil {
		return p.L3RT + h.m.Mesh.RTLatency(h.m.CoreNode(core), h.m.L3Node(line))
	}
	b := h.m.BlockOf(core)
	return p.L2RT + h.m.Mesh.RTLatency(h.m.CoreNode(core), h.m.L2BankNode(b, line))
}

// EpochBoundary is a no-op: hardware coherence needs no epoch management.
func (h *Hierarchy) EpochBoundary(int) {}

// Drain flushes all modified data to backing memory for verification.
func (h *Hierarchy) Drain() {
	for c, l1 := range h.l1 {
		b := h.m.BlockOf(c)
		l1.ForEachValid(func(_ cache.FrameID, l *cache.Line) {
			if l.State == cache.Modified {
				if l2l := h.l2[b].Peek(l.Tag); l2l != nil {
					l2l.Words = l.Words
					l2l.Dirty = mem.FullMask
				} else {
					h.backing.WriteLine(l.Tag, &l.Words, mem.FullMask)
				}
				l.State = cache.Shared
			}
		})
	}
	for _, l2 := range h.l2 {
		l2.ForEachValid(func(_ cache.FrameID, l *cache.Line) {
			if l.IsDirty() {
				if h.l3 != nil {
					if l3l := h.l3.Peek(l.Tag); l3l != nil {
						l3l.Words = l.Words
						l3l.Dirty = mem.FullMask
						l.Dirty = 0
						return
					}
				}
				h.backing.WriteLine(l.Tag, &l.Words, mem.FullMask)
				l.Dirty = 0
			}
		})
	}
	if h.l3 != nil {
		h.l3.ForEachValid(func(_ cache.FrameID, l *cache.Line) {
			if l.IsDirty() {
				h.backing.WriteLine(l.Tag, &l.Words, l.Dirty)
				l.Dirty = 0
			}
		})
	}
}

// CheckInvariants verifies the single-writer/multiple-reader and
// inclusivity invariants, returning an error describing the first
// violation. Tests call it after operation sequences.
func (h *Hierarchy) CheckInvariants() error {
	for b := 0; b < h.m.Blocks; b++ {
		seen := make(map[mem.Addr][]int)
		for ci := 0; ci < h.m.CoresPerBlock; ci++ {
			core := b*h.m.CoresPerBlock + ci
			var err error
			h.l1[core].ForEachValid(func(_ cache.FrameID, l *cache.Line) {
				if err != nil {
					return
				}
				if h.l2[b].Peek(l.Tag) == nil {
					err = fmt.Errorf("inclusivity: core %d holds %#x absent from block %d L2", core, uint32(l.Tag), b)
					return
				}
				if l.State == cache.Modified || l.State == cache.Exclusive {
					seen[l.Tag] = append(seen[l.Tag], core)
				}
				if l.State == cache.Shared {
					for _, other := range seen[l.Tag] {
						_ = other
					}
				}
			})
			if err != nil {
				return err
			}
		}
		for line, owners := range seen {
			if len(owners) > 1 {
				return fmt.Errorf("SWMR: line %#x owned M/E by cores %v", uint32(line), owners)
			}
			// No S copy may coexist with an M/E copy in the same block.
			for ci := 0; ci < h.m.CoresPerBlock; ci++ {
				core := b*h.m.CoresPerBlock + ci
				if core == owners[0] {
					continue
				}
				if l := h.l1[core].Peek(line); l != nil && l.State != cache.Invalid {
					return fmt.Errorf("SWMR: line %#x owned by core %d but also valid (%v) in core %d",
						uint32(line), owners[0], l.State, core)
				}
			}
		}
		if h.l3 != nil {
			var err error
			h.l2[b].ForEachValid(func(_ cache.FrameID, l *cache.Line) {
				if err == nil && h.l3.Peek(l.Tag) == nil {
					err = fmt.Errorf("inclusivity: block %d holds %#x absent from L3", b, uint32(l.Tag))
				}
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}
