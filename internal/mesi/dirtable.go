package mesi

import (
	"math/bits"

	"repro/internal/mem"
)

// dirTable is a flat, open-addressed hash table from line index
// (line address >> 6) to dirEntry, replacing the map[mem.Addr]*dirEntry
// directories. Two properties matter for correctness, not just speed:
//
//   - Pointer stability. Callers hold *dirEntry across operations that may
//     insert other entries (e.g. ensureL2 holds the L3 entry for the line
//     being fetched while recallL3Victim creates the entry for the evicted
//     line). Entries therefore live in a chunked arena — growth appends a
//     new chunk, never moves existing entries — and only the slot index
//     rehashes.
//
//   - No iteration. The old maps were never ranged over, so replacing them
//     cannot perturb any ordering the simulator observes.
//
// Deleted entries go on a free list and are reused (zeroed) by the next
// insert, so steady-state directory footprint tracks the number of lines
// actually resident above the directory rather than every line ever seen.
type dirTable struct {
	slots  []dirSlot // power-of-two open-addressed index
	mask   uint32
	live   int // live entries
	filled int // live + tombstones; drives rehash
	chunks [][]dirEntry
	free   []int32
}

type dirSlot struct {
	key uint32 // line index; slotEmpty / slotDead are sentinels
	ref int32  // arena reference: chunk<<chunkShift | offset
}

const (
	slotEmpty = ^uint32(0)
	slotDead  = ^uint32(0) - 1

	chunkShift = 9 // 512 entries per chunk
	chunkSize  = 1 << chunkShift

	initialSlots = 256
)

// lineKey maps a line address to its table key. Line addresses are
// 64-byte-aligned 32-bit values, so the index needs only 26 bits and can
// never collide with the sentinels.
func lineKey(line mem.Addr) uint32 { return uint32(line >> 6) }

func hashKey(key uint32) uint32 {
	// Fibonacci hashing spreads the low-entropy high bits of sequential
	// line indices across the table.
	return key * 0x9E3779B9
}

func newDirTable() *dirTable {
	t := &dirTable{
		slots: make([]dirSlot, initialSlots),
		mask:  initialSlots - 1,
	}
	for i := range t.slots {
		t.slots[i].key = slotEmpty
	}
	return t
}

// len returns the number of live entries.
func (t *dirTable) len() int { return t.live }

// entry resolves an arena reference to its stable address.
func (t *dirTable) entry(ref int32) *dirEntry {
	return &t.chunks[ref>>chunkShift][ref&(chunkSize-1)]
}

// lookup returns the entry for line, or nil if absent.
func (t *dirTable) lookup(line mem.Addr) *dirEntry {
	key := lineKey(line)
	for i := hashKey(key) & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		switch s.key {
		case key:
			return t.entry(s.ref)
		case slotEmpty:
			return nil
		}
	}
}

// getOrCreate returns the entry for line, creating a zeroed one if absent.
// Existing entries never move; only the slot index may rehash.
func (t *dirTable) getOrCreate(line mem.Addr) *dirEntry {
	key := lineKey(line)
	firstDead := int32(-1)
	for i := hashKey(key) & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		switch s.key {
		case key:
			return t.entry(s.ref)
		case slotDead:
			if firstDead < 0 {
				firstDead = int32(i)
			}
		case slotEmpty:
			ref := t.alloc()
			if firstDead >= 0 {
				// Reuse the tombstone on the probe path; filled is
				// unchanged (a tombstone became live).
				t.slots[firstDead] = dirSlot{key: key, ref: ref}
			} else {
				*s = dirSlot{key: key, ref: ref}
				t.filled++
			}
			t.live++
			if t.filled*4 >= len(t.slots)*3 {
				t.rehash()
			}
			return t.entry(ref)
		}
	}
}

// del removes the entry for line, returning its storage to the free list.
// No-op if absent.
func (t *dirTable) del(line mem.Addr) {
	key := lineKey(line)
	for i := hashKey(key) & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		switch s.key {
		case key:
			t.free = append(t.free, s.ref)
			s.key = slotDead
			t.live--
			return
		case slotEmpty:
			return
		}
	}
}

// freeIfZero deletes line's entry when it carries no information: no
// presence, uncached, and neither migratory-sharing flag set (those are
// sticky across re-creation, so an entry holding one must survive).
// owner is only ever read under state == dirOwned, so losing it is safe.
// This is the free-on-last-sharer compaction: directories shrink when the
// caches above them drop their last copy.
func (t *dirTable) freeIfZero(line mem.Addr) {
	e := t.lookup(line)
	if e != nil && e.state == dirUncached && e.presence == 0 && !e.migrated && !e.noMigrate {
		t.del(line)
	}
}

// alloc grabs a zeroed arena slot, preferring the free list.
func (t *dirTable) alloc() int32 {
	if n := len(t.free); n > 0 {
		ref := t.free[n-1]
		t.free = t.free[:n-1]
		*t.entry(ref) = dirEntry{}
		return ref
	}
	n := len(t.chunks)
	if n == 0 || len(t.chunks[n-1]) == chunkSize {
		t.chunks = append(t.chunks, make([]dirEntry, 0, chunkSize))
		n++
	}
	c := &t.chunks[n-1]
	*c = append(*c, dirEntry{})
	return int32((n-1)<<chunkShift | (len(*c) - 1))
}

// rehash rebuilds the slot index (dropping tombstones), doubling it when
// mostly full of live entries. Arena entries do not move.
func (t *dirTable) rehash() {
	size := len(t.slots)
	if t.live*2 >= size {
		size *= 2
	}
	old := t.slots
	t.slots = make([]dirSlot, size)
	t.mask = uint32(size - 1)
	for i := range t.slots {
		t.slots[i].key = slotEmpty
	}
	for _, s := range old {
		if s.key == slotEmpty || s.key == slotDead {
			continue
		}
		for i := hashKey(s.key) & t.mask; ; i = (i + 1) & t.mask {
			if t.slots[i].key == slotEmpty {
				t.slots[i] = s
				break
			}
		}
	}
	t.filled = t.live
}

// forEachSharerMask iterates set bits of a presence snapshot in ascending
// order — the same order (and same snapshot-at-entry semantics) as the old
// sharers() slice, without the allocation. The callback may mutate the
// entry's live presence word freely.
func forEachSharerMask(snapshot uint64, f func(i int)) {
	for p := snapshot; p != 0; {
		i := bits.TrailingZeros64(p)
		p &^= 1 << uint(i)
		f(i)
	}
}
