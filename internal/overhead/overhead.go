// Package overhead implements the control/storage comparison of Section
// VII-A: the storage the hardware-coherent hierarchy spends on directories
// and coherence-state bits versus the storage the hardware-incoherent
// hierarchy spends on the MEB/IEB buffers and per-word dirty bits. For the
// paper's 4-block × 8-core machine the model reproduces the reported
// "about 102 KB" saving.
package overhead

import (
	"fmt"
	"strings"

	"repro/internal/mem"
)

// Params describes one machine for the storage model.
type Params struct {
	Blocks        int
	CoresPerBlock int
	L1Bytes       int // per core
	L2Bytes       int // per block
	L3Bytes       int // total
	MEBEntries    int
	IEBEntries    int
	// AddrBits is the physical address width used to size IEB entries
	// (Table III: 40-bit line addresses).
	AddrBits int
	// MESIStateBits encodes stable + transient states per L1/L2 line
	// (Section VII-A assumes 4).
	MESIStateBits int
}

// PaperMachine returns the Section VII-A machine: 4 blocks × 8 cores,
// Table III cache sizes.
func PaperMachine() Params {
	return Params{
		Blocks:        4,
		CoresPerBlock: 8,
		L1Bytes:       32 << 10,
		L2Bytes:       (128 << 10) * 8,
		L3Bytes:       16 << 20,
		MEBEntries:    16,
		IEBEntries:    4,
		AddrBits:      40,
		MESIStateBits: 4,
	}
}

// Bits is a storage quantity in bits.
type Bits int64

// KB returns the quantity in kilobytes.
func (b Bits) KB() float64 { return float64(b) / 8 / 1024 }

// Item is one storage structure in the comparison.
type Item struct {
	Name string
	Bits Bits
}

// Report is the full comparison.
type Report struct {
	Coherent, Incoherent []Item
}

// CoherentTotal sums the coherent hierarchy's structures.
func (r *Report) CoherentTotal() Bits { return total(r.Coherent) }

// IncoherentTotal sums the incoherent hierarchy's structures.
func (r *Report) IncoherentTotal() Bits { return total(r.Incoherent) }

// Savings returns coherent minus incoherent storage.
func (r *Report) Savings() Bits { return r.CoherentTotal() - r.IncoherentTotal() }

func total(items []Item) Bits {
	var t Bits
	for _, it := range items {
		t += it.Bits
	}
	return t
}

// Compute builds the storage comparison for machine p.
func Compute(p Params) *Report {
	cores := p.Blocks * p.CoresPerBlock
	l1Lines := int64(p.L1Bytes / mem.LineBytes)
	l2Lines := int64(p.L2Bytes / mem.LineBytes)
	l3Lines := int64(p.L3Bytes / mem.LineBytes)
	mebEntryBits := int64(ceilLog2(l1Lines)) + 1 // line frame ID + valid
	iebEntryBits := int64(p.AddrBits) + 1        // line address + valid

	r := &Report{}
	// Coherent: hierarchical full-map directory (per-block presence at
	// L3, per-core presence at L2, each with a dirty bit) plus MESI state
	// bits in every L1 and L2 line.
	r.Coherent = []Item{
		{"L3 directory (presence per block + dirty)", Bits(l3Lines * int64(p.Blocks+1))},
		{"L2 directories (presence per core + dirty)", Bits(int64(p.Blocks) * l2Lines * int64(p.CoresPerBlock+1))},
		{"L1 MESI state bits", Bits(int64(cores) * l1Lines * int64(p.MESIStateBits))},
		{"L2 MESI state bits", Bits(int64(p.Blocks) * l2Lines * int64(p.MESIStateBits))},
	}
	// Incoherent: per-core MEB and IEB plus a valid bit and per-word
	// dirty bits in every L1 and L2 line. The per-L2 ThreadMap table is
	// negligible (one block ID per thread) but counted for completeness.
	threadMapBits := int64(p.Blocks) * int64(cores) * int64(ceilLog2(int64(p.Blocks)))
	r.Incoherent = []Item{
		{"MEB (per core)", Bits(int64(cores) * int64(p.MEBEntries) * mebEntryBits)},
		{"IEB (per core)", Bits(int64(cores) * int64(p.IEBEntries) * iebEntryBits)},
		{"L1 valid + per-word dirty bits", Bits(int64(cores) * l1Lines * int64(1+mem.WordsPerLine))},
		{"L2 valid + per-word dirty bits", Bits(int64(p.Blocks) * l2Lines * int64(1+mem.WordsPerLine))},
		{"ThreadMap tables", Bits(threadMapBits)},
	}
	return r
}

func ceilLog2(n int64) int {
	b := 0
	for v := int64(1); v < n; v <<= 1 {
		b++
	}
	return b
}

// Render prints the comparison as a table.
func (r *Report) Render() string {
	var b strings.Builder
	b.WriteString("Section VII-A storage comparison\n\n")
	section := func(title string, items []Item, tot Bits) {
		fmt.Fprintf(&b, "%s\n", title)
		for _, it := range items {
			fmt.Fprintf(&b, "  %-44s %10.2f KB\n", it.Name, it.Bits.KB())
		}
		fmt.Fprintf(&b, "  %-44s %10.2f KB\n\n", "total", tot.KB())
	}
	section("Hardware-coherent hierarchy:", r.Coherent, r.CoherentTotal())
	section("Hardware-incoherent hierarchy:", r.Incoherent, r.IncoherentTotal())
	fmt.Fprintf(&b, "Incoherent saves %.2f KB (paper: about 102 KB)\n", r.Savings().KB())
	return b.String()
}
