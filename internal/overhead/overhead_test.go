package overhead

import (
	"strings"
	"testing"
)

func TestPaperMachineSavingsNearPaperValue(t *testing.T) {
	r := Compute(PaperMachine())
	kb := r.Savings().KB()
	// Section VII-A reports "about 102 KB"; the model reproduces it to
	// within a few KB (the paper does not publish its exact breakdown).
	if kb < 95 || kb > 110 {
		t.Errorf("savings = %.2f KB, want ~102 KB\n%s", kb, r.Render())
	}
}

func TestCoherentDominatedByDirectories(t *testing.T) {
	r := Compute(PaperMachine())
	dir := r.Coherent[0].Bits + r.Coherent[1].Bits
	if dir*2 < r.CoherentTotal() {
		t.Error("directories should dominate coherent storage")
	}
}

func TestIncoherentBuffersTiny(t *testing.T) {
	r := Compute(PaperMachine())
	meb, ieb := r.Incoherent[0].Bits, r.Incoherent[1].Bits
	if meb.KB() > 1 || ieb.KB() > 1 {
		t.Errorf("entry buffers should be under 1 KB each (MEB %.2f, IEB %.2f)", meb.KB(), ieb.KB())
	}
}

func TestMEBEntrySizeMatchesTableIII(t *testing.T) {
	// 32-KB cache, 64-B lines: 512 frames, so 9-bit IDs + valid = 10 bits
	// per entry, 16 entries per core, 32 cores.
	r := Compute(PaperMachine())
	if got := int64(r.Incoherent[0].Bits); got != 32*16*10 {
		t.Errorf("MEB bits = %d, want %d", got, 32*16*10)
	}
	if got := int64(r.Incoherent[1].Bits); got != 32*4*41 {
		t.Errorf("IEB bits = %d, want %d", got, 32*4*41)
	}
}

func TestRenderMentionsTotals(t *testing.T) {
	out := Compute(PaperMachine()).Render()
	for _, want := range []string{"Hardware-coherent", "Hardware-incoherent", "saves", "MEB", "IEB"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestScalesWithMachine(t *testing.T) {
	small := PaperMachine()
	small.Blocks = 1
	small.L3Bytes = 0
	rs := Compute(small)
	rb := Compute(PaperMachine())
	if rs.CoherentTotal() >= rb.CoherentTotal() {
		t.Error("smaller machine should need less coherent storage")
	}
}
