// The machine-readable document of the storage comparison, shared by
// the overhead CLI and the sweep server.

package overhead

import (
	"encoding/json"
	"io"

	"repro/internal/envelope"
)

// DocItem is one storage structure in the JSON document.
type DocItem struct {
	Name string `json:"name"`
	Bits int64  `json:"bits"`
}

// Document is the machine-readable storage comparison (schema hic/v2,
// kind "storage"). It has no v1 layout: the storage kind postdates the
// v2 envelope.
type Document struct {
	Schema         string        `json:"schema"`
	Kind           envelope.Kind `json:"kind"`
	Coherent       []DocItem     `json:"coherent"`
	Incoherent     []DocItem     `json:"incoherent"`
	CoherentBits   int64         `json:"coherent_bits"`
	IncoherentBits int64         `json:"incoherent_bits"`
	SavingsBits    int64         `json:"savings_bits"`
	SavingsKB      float64       `json:"savings_kb"`
}

// Document converts the report to its wire form.
func (r *Report) Document() *Document {
	return &Document{
		Schema:         envelope.SchemaV2,
		Kind:           envelope.KindStorage,
		Coherent:       docItems(r.Coherent),
		Incoherent:     docItems(r.Incoherent),
		CoherentBits:   int64(r.CoherentTotal()),
		IncoherentBits: int64(r.IncoherentTotal()),
		SavingsBits:    int64(r.Savings()),
		SavingsKB:      r.Savings().KB(),
	}
}

func docItems(in []Item) []DocItem {
	out := make([]DocItem, 0, len(in))
	for _, i := range in {
		out = append(out, DocItem{Name: i.Name, Bits: int64(i.Bits)})
	}
	return out
}

// Encode writes the document as indented JSON with a trailing newline,
// the canonical wire form shared by the CLI and the server.
func (d *Document) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
