package engine

import (
	"math/rand"
	"sort"
	"testing"
)

// The heap must drain in exactly the order the old linear scan picked:
// ascending time, ties by ascending thread ID.
func TestRunqOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		var q runq
		ref := make([]*thread, 0, n)
		for i := 0; i < n; i++ {
			th := &thread{id: i, time: int64(rng.Intn(8))} // dense times force ties
			q.push(th)
			ref = append(ref, th)
		}
		sort.SliceStable(ref, func(a, b int) bool { return runqLess(ref[a], ref[b]) })
		for i, want := range ref {
			got := q.pop()
			if got != want {
				t.Fatalf("trial %d: pop %d = thread %d (t=%d), want thread %d (t=%d)",
					trial, i, got.id, got.time, want.id, want.time)
			}
		}
		if q.pop() != nil {
			t.Fatal("drained queue must pop nil")
		}
	}
}

// Interleaved push/pop: re-pushing a popped thread with a later time (the
// recvNext pattern) must keep the order correct.
func TestRunqReinsert(t *testing.T) {
	var q runq
	a := &thread{id: 0, time: 0}
	b := &thread{id: 1, time: 5}
	q.push(a)
	q.push(b)
	if q.pop() != a {
		t.Fatal("want a first")
	}
	a.time = 10
	q.push(a)
	if q.pop() != b || q.pop() != a || q.len() != 0 {
		t.Fatal("reinsert order wrong")
	}
}
