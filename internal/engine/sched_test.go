package engine

// Tests of the pluggable scheduler hook: an external policy that mimics
// the default order must reproduce the default run bit-for-bit, a fixed
// round-robin policy must be deterministic across repeats, candidate
// lists must arrive sorted by thread ID, and a negative pick must abort
// the run with a ScheduleAbortError (unwinding every guest goroutine).

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// minTimeSched reimplements the default policy (minimum local clock,
// thread-ID tie-break) through the external hook.
type minTimeSched struct{}

func (minTimeSched) Pick(cands []Candidate) int {
	best := 0
	for i, c := range cands[1:] {
		if c.Time < cands[best].Time {
			best = i + 1
		}
	}
	return best
}

// pickFunc adapts a function to the Scheduler interface.
type pickFunc func(cands []Candidate) int

func (f pickFunc) Pick(cands []Candidate) int { return f(cands) }

// schedGuests is a small two-thread producer/consumer program with both
// data ops and synchronization, enough to exercise blocking under an
// external scheduler.
func schedGuests() []Guest {
	const x, y = 0x100, 0x200
	producer := func(p Proc) {
		p.Store(x, 7)
		p.WB(mem.WordRange(x, 1))
		p.FlagSet(1, 1)
		p.Store(y, 9)
		p.Compute(10)
	}
	consumer := func(p Proc) {
		p.FlagWait(1, 1)
		p.INV(mem.WordRange(x, 1))
		p.Load(x)
		p.Load(y)
	}
	return []Guest{producer, consumer}
}

func TestSchedulerMimicsDefault(t *testing.T) {
	def, err := New(newNullHierarchy(), schedGuests()).Run()
	if err != nil {
		t.Fatal(err)
	}
	e := New(newNullHierarchy(), schedGuests())
	e.SetScheduler(minTimeSched{})
	ext, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, ext) {
		t.Errorf("external min-time scheduler diverges from default:\ndefault:  %+v\nexternal: %+v", def, ext)
	}
}

func TestSchedulerCandidatesSortedAndDeterministic(t *testing.T) {
	run := func() (*Result, [][]int) {
		var trace [][]int
		e := New(newNullHierarchy(), schedGuests())
		e.SetScheduler(pickFunc(func(cands []Candidate) int {
			ids := make([]int, len(cands))
			for i, c := range cands {
				ids[i] = c.Thread
				if i > 0 && cands[i-1].Thread >= c.Thread {
					t.Fatalf("candidates not sorted by thread ID: %v", cands)
				}
				if c.Op.Kind < 0 || c.Op.Kind >= isa.NumOpKinds {
					t.Fatalf("candidate carries invalid op %v", c.Op)
				}
			}
			trace = append(trace, ids)
			return len(cands) - 1 // always prefer the highest thread ID
		}))
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, trace
	}
	r1, t1 := run()
	r2, t2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("same schedule, different results: %+v vs %+v", r1, r2)
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Errorf("same policy, different candidate traces: %v vs %v", t1, t2)
	}
}

func TestSchedulerAbort(t *testing.T) {
	const budget = 3
	steps := 0
	e := New(newNullHierarchy(), schedGuests())
	e.SetScheduler(pickFunc(func(cands []Candidate) int {
		if steps >= budget {
			return -1
		}
		steps++
		return 0
	}))
	_, err := e.Run()
	var abort *ScheduleAbortError
	if !errors.As(err, &abort) {
		t.Fatalf("aborted run returned %v, want *ScheduleAbortError", err)
	}
	if abort.Step != budget {
		t.Errorf("abort at decision %d, want %d", abort.Step, budget)
	}
	if abort.ErrorKind() != "sched-abort" {
		t.Errorf("ErrorKind = %q, want sched-abort", abort.ErrorKind())
	}
}

func TestSchedulerOutOfRangePickFails(t *testing.T) {
	e := New(newNullHierarchy(), schedGuests())
	e.SetScheduler(pickFunc(func(cands []Candidate) int { return len(cands) }))
	if _, err := e.Run(); err == nil {
		t.Fatal("out-of-range pick accepted")
	}
}
