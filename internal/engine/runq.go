package engine

// runq is a binary min-heap of ready threads ordered by (time, thread ID),
// replacing the per-step linear scan over all threads. The ordering is
// exactly the old pickRunnable tie-break: smallest local clock first, and
// among equal clocks the lowest thread ID (the linear scan kept the first
// strict minimum, i.e. the lowest-index thread).
//
// No decrease-key is needed: a thread is pushed only from recvNext, at
// which point its clock is final for the upcoming step (step, wake, and
// the sync paths all settle t.time before replying), and a ready thread's
// clock never changes until it is popped. Blocked threads are simply not
// in the queue — they were popped before blocking and are re-pushed when
// their wake-up reply reaches recvNext.
type runq struct {
	ts []*thread
}

func runqLess(a, b *thread) bool {
	return a.time < b.time || (a.time == b.time && a.id < b.id)
}

func (q *runq) len() int { return len(q.ts) }

// peek returns the minimum-key thread without removing it (nil when
// empty). The pipelined loop compares its in-hand thread against this
// minimum to skip the push/pop pair whenever the same thread stays
// minimal across consecutive steps.
func (q *runq) peek() *thread {
	if len(q.ts) == 0 {
		return nil
	}
	return q.ts[0]
}

func (q *runq) push(t *thread) {
	q.ts = append(q.ts, t)
	i := len(q.ts) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !runqLess(q.ts[i], q.ts[parent]) {
			break
		}
		q.ts[i], q.ts[parent] = q.ts[parent], q.ts[i]
		i = parent
	}
}

func (q *runq) pop() *thread {
	n := len(q.ts)
	if n == 0 {
		return nil
	}
	top := q.ts[0]
	last := q.ts[n-1]
	q.ts[n-1] = nil // let the thread be collected once done
	q.ts = q.ts[:n-1]
	if n > 1 {
		q.ts[0] = last
		q.siftDown(0)
	}
	return top
}

// swapMin exchanges t with the current minimum in a single sift: t takes
// the root's place and settles down, and the old root is returned. Only
// valid when the queue is non-empty and the root orders before t — the
// fused form of push(t) followed by pop() that the pipelined loop uses
// when its in-hand thread loses the minimum.
func (q *runq) swapMin(t *thread) *thread {
	top := q.ts[0]
	q.ts[0] = t
	q.siftDown(0)
	return top
}

func (q *runq) siftDown(i int) {
	n := len(q.ts)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && runqLess(q.ts[r], q.ts[l]) {
			min = r
		}
		if !runqLess(q.ts[min], q.ts[i]) {
			return
		}
		q.ts[i], q.ts[min] = q.ts[min], q.ts[i]
		i = min
	}
}
