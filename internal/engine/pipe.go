package engine

import "repro/internal/isa"

// pipeCap is the op ring depth: how far a guest may run ahead of the
// scheduler depositing fire-and-forget ops between loads. A power of two
// (the ring indexes with a modulo the compiler reduces to a mask). Deep
// enough that one guest activation deposits a long burst per coroutine
// switch, shallow enough to stay cache-resident.
const pipeCap = 256

// opPipe is the per-thread operation ring between a guest coroutine
// (producer) and the scheduler (consumer). Control moves between the two
// by direct coroutine switch (iter.Pull, see guestSeq) — they never run
// concurrently — so the ring is plain memory: push and pop are an index
// compare and a slot move, no atomics, no parking. A full ring makes the
// guest yield back to the scheduler (see proc.do); the guest is only ever
// resumed once its ring has drained, so the retried push always lands.
type opPipe struct {
	head uint64
	tail uint64
	buf  [pipeCap]isa.Op
}

// tryPush appends op, reporting false when the ring is full (the guest
// must yield so the scheduler can drain it).
func (p *opPipe) tryPush(op isa.Op) bool {
	if p.tail-p.head == pipeCap {
		return false
	}
	p.buf[p.tail%pipeCap] = op
	p.tail++
	return true
}

// tryPop removes the next op, reporting false when the ring is empty.
// The returned pointer aliases the ring slot: it stays valid until the
// producer has been resumed and deposited pipeCap further ops, which
// under the alternating control transfer means it is stable for the
// whole of the current scheduler step.
func (p *opPipe) tryPop() (*isa.Op, bool) {
	if p.tail == p.head {
		return nil, false
	}
	op := &p.buf[p.head%pipeCap]
	p.head++
	return op, true
}
