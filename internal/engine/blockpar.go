package engine

// Block-parallel execution (DESIGN.md §11). The deterministic pipelined
// scheduler is decomposed into per-block shards that run concurrently on
// their own goroutines, plus a coordinator that serializes everything
// crossing a shard boundary. The scheme is conservative parallel
// discrete-event simulation specialized to the incoherent hierarchy's
// locality structure:
//
//   - Every thread belongs to exactly one shard (its core's block). A
//     shard owns the state only its cores can touch: their L1s, MEBs and
//     IEBs, the block's L2, and the block's counter/traffic slices.
//   - The hierarchy classifies each op as shard-LOCAL (provably touches
//     only shard-owned state) or GLOBAL (sync ops, anything reaching the
//     L3, backing memory, the sync controller, or another block).
//     Classification is conservative: when in doubt, GLOBAL.
//   - Each shard executes its own threads in (local clock, thread ID)
//     order — exactly the serial heap order restricted to the shard. A
//     shard with NO blocked threads free-runs: it executes local ops
//     without looking at any sibling, because local ops of different
//     shards commute and nothing can be delivered into a shard whose
//     threads are all runnable (sync grants target blocked threads
//     only; cross-block DMA is checked separately, below). A shard WITH
//     a blocked thread is horizon-bounded: it may only execute a local
//     op whose key is strictly below every other shard's published
//     clock. Published clocks are lower bounds on the keys of any op a
//     shard could still produce, so the bound guarantees the shard
//     never runs past a global op that could wake its blocked thread —
//     the grant would have to interleave below the shard's frontier.
//     (Whether a shard has blocked threads only changes at the
//     coordinator, so the mode is fixed for a whole phase.)
//   - GLOBAL ops execute on the coordinator, one at a time, in global
//     (time, ID) key order, with every shard quiescent — the coordinator
//     is simply the serial engine applied to the frontier's minimum. Sync
//     grants produced there re-enter the woken threads' shard queues
//     before any shard resumes.
//
// Why results are byte-identical to the serial engine: within a shard the
// execution order equals the serial order restricted to the shard's
// threads; ops of different shards that commute (local/local on disjoint
// state, local/global on disjoint state) may reorder freely; every
// non-commuting pair is either two GLOBAL ops (totally ordered by the
// coordinator's frontier-minimum rule) or a wake interleaving below a
// shard's frontier (excluded by the horizon rule: when a thread blocks
// at key s, every shard's pending key is >= s, so the grant-producing
// global has key >= s and the blocked thread's shard stays bounded
// below it until the wake). Latencies, stalls, counters and traffic are
// functions of the state each op observes, which is therefore
// identical; per-block counter and traffic shards are merged in fixed
// block order at the end.
//
// The one op that deposits state into a FOREIGN shard is cross-block
// DMACopy. A free-running target may already have simulated past the
// transfer's key, which would reorder the deposit against the target's
// local ops; the coordinator detects that precisely (the target shard's
// max executed key exceeds the DMA's key) and fails the run loudly
// rather than return silently divergent results. DMA workloads that
// sync the target block before the transfer — the paper's programming
// model — never trip the check, because the target's threads are
// blocked and its shard horizon-bounded below the transfer.
//
// The executor engages only for the default pipelined protocol with no
// observer and no recorder attached (their event streams are defined by
// global call order, so those runs stay serial), and only when the
// hierarchy reports more than one shard.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/isa"
	"repro/internal/stats"
)

// ShardedHierarchy is implemented by hierarchies that can partition their
// state by block and vouch for which ops stay inside one shard. The
// engine detects it and switches to the block-parallel executor when
// ParallelShards returns more than one.
type ShardedHierarchy interface {
	Hierarchy
	// ParallelShards returns the number of independent shards (blocks),
	// or 1 to disable block parallelism.
	ParallelShards() int
	// ShardOf maps a core/thread id to its shard index.
	ShardOf(core int) int
	// OpLocal reports whether executing op on core provably touches only
	// shard-owned state. It must not mutate any state, and must be
	// conservative: false whenever the answer depends on state outside
	// the shard.
	OpLocal(core int, op *isa.Op) bool
}

// maxParThreads bounds thread ids so they pack into the low 16 bits of a
// clock key. Larger machines fall back to the serial scheduler.
const maxParThreads = 1 << 16

// maxKey is the published clock of a shard with nothing pending.
const maxKey = ^uint64(0)

// parPhaseBudget caps the ops one shard executes per phase, bounding the
// coordinator's control latency (ctx polls, watchdog) without affecting
// results: a budget quiesce just splits a phase in two.
const parPhaseBudget = 1 << 15

// key orders (time, thread id) lexicographically in one uint64 compare.
// Simulated clocks stay far below 2^47 cycles, so the shift is safe.
func key(t *thread) uint64 { return uint64(t.time)<<16 | uint64(t.id) }

// parShard is one block's scheduler state.
type parShard struct {
	idx int
	rq  runq

	// clock is the shard's published lower bound on the key of any op it
	// may still execute this phase; maxKey when it has nothing pending.
	// quiet is set (after the final clock store) when the shard's phase
	// goroutine has gone quiescent. Both are read by sibling shards'
	// horizon checks.
	clock atomic.Uint64
	quiet atomic.Bool

	// held is the thread in hand across a quiesce; heldOp its already
	// popped op (nil after a budget quiesce: re-fetched on resume; the
	// pointer aliases the guest's ring slot and is stable because the
	// guest is not resumed until the op executes). heldGlobal marks that
	// heldOp awaits the coordinator.
	held       *thread
	heldOp     *isa.Op
	heldGlobal bool

	// blocked counts the shard's threads parked in the sync controller;
	// maintained by the coordinator (block/wake). freeRun is set at
	// phase release when blocked == 0: the shard may then ignore the
	// horizon entirely. maxExec is the largest key the shard has
	// executed, read by the coordinator (while the shard is quiescent)
	// for the cross-block DMA ordering check.
	blocked int
	freeRun bool
	maxExec uint64

	// Per-shard accumulators, merged by the coordinator: op counts by
	// kind, ops executed in the current phase, retirements/progress for
	// the watchdog, and the first guest error.
	ops        [isa.NumOpKinds]int64
	phaseSteps int64
	progressed bool
	err        error

	resume chan struct{}
}

// parGroup is the shared state of one block-parallel run.
type parGroup struct {
	e       *Engine
	sh      ShardedHierarchy
	shards  []*parShard
	shardOf []int // thread id -> shard index

	phase sync.WaitGroup // running shards in the current phase
	join  sync.WaitGroup // shard goroutine lifetimes
}

// pendingKey is the key of the shard's next op (held thread first, then
// the queue minimum), or maxKey when it has none.
func (p *parShard) pendingKey() uint64 {
	if p.held != nil {
		return key(p.held)
	}
	if m := p.rq.peek(); m != nil {
		return key(m)
	}
	return maxKey
}

// runBlockParallel is the coordinator loop. Each round it executes
// GLOBAL ops serially while they are the global frontier minimum, then
// releases every shard whose next op is local for one concurrent phase,
// and waits for quiescence. See the file comment for the protocol.
func (e *Engine) runBlockParallel(ctx context.Context, sh ShardedHierarchy) (*Result, error) {
	n := sh.ParallelShards()
	g := &parGroup{e: e, sh: sh, shards: make([]*parShard, n), shardOf: make([]int, len(e.ts))}
	for i := range g.shards {
		g.shards[i] = &parShard{idx: i, resume: make(chan struct{}, 1)}
		g.shards[i].clock.Store(maxKey)
	}
	for _, t := range e.ts {
		s := sh.ShardOf(t.id)
		if s < 0 || s >= n {
			return nil, fmt.Errorf("engine: ShardOf(%d) = %d out of range [0,%d)", t.id, s, n)
		}
		g.shardOf[t.id] = s
		g.shards[s].rq.push(t)
	}
	e.par = g
	defer func() { e.par = nil }()

	for _, p := range g.shards {
		g.join.Add(1)
		go func(p *parShard) {
			defer g.join.Done()
			for range p.resume {
				p.runPhase(e, g)
				g.phase.Done()
			}
		}(p)
	}
	stopShards := func() {
		for _, p := range g.shards {
			close(p.resume)
		}
		g.join.Wait()
	}
	defer stopShards()

	res := &Result{PerThread: make([]stats.Stalls, len(e.ts))}
	limit := e.NoProgressLimit
	if limit <= 0 {
		limit = DefaultNoProgressLimit
	}
	stop := ctx.Done()
	var idle int64
	for {
		if stop != nil {
			select {
			case <-stop:
				e.shutdown()
				return nil, fmt.Errorf("engine: run canceled: %w", ctx.Err())
			default:
			}
		}

		// Serial frontier: execute the minimum pending op while it is
		// GLOBAL. The coordinator may pop and classify freely — every
		// shard is quiescent here.
		localFrontier := false
		for {
			var p *parShard
			min := maxKey
			for _, s := range g.shards {
				if k := s.pendingKey(); k < min {
					min, p = k, s
				}
			}
			if p == nil {
				if e.allDone() {
					return e.finishPar(g, res)
				}
				err := e.deadlockError()
				e.shutdown()
				return nil, err
			}
			if p.held == nil {
				p.held = p.rq.pop()
			}
			if p.heldOp == nil {
				op, ok := e.nextOp(p.held)
				if !ok {
					p.held.state = done
					p.held = nil
					e.progressed = true
					idle = 0
					continue
				}
				p.heldOp = op
				p.heldGlobal = op.Kind.IsSync() || !sh.OpLocal(p.held.id, op)
			}
			if !p.heldGlobal {
				localFrontier = true
				break
			}
			t, op := p.held, p.heldOp
			p.held, p.heldOp = nil, nil
			if op.Kind == isa.OpDMACopy && op.Peer >= 0 && op.Peer < len(g.shards) &&
				op.Peer != g.shardOf[t.id] && g.shards[op.Peer].maxExec > key(t) {
				err := fmt.Errorf("engine: block-parallel run reordered a cross-block DMA: "+
					"target block %d already simulated past cycle %d; sync the target "+
					"before the transfer or run serially", op.Peer, t.time)
				e.shutdown()
				return nil, err
			}
			runnable, err := e.stepPipelined(t, op, res)
			if err != nil {
				e.shutdown()
				return nil, err
			}
			if runnable {
				p.rq.push(t)
			}
			if e.progressed {
				e.progressed = false
				idle = 0
			} else if idle++; idle >= limit {
				lerr := &LivelockError{Steps: idle, Blocked: e.blockedIDs()}
				e.shutdown()
				return nil, lerr
			}
		}
		if !localFrontier {
			continue
		}

		// Concurrent phase: release every shard whose next op is not a
		// parked GLOBAL. Mark them running and publish their clocks
		// before any goroutine starts, so no shard can race past a
		// sibling's pending key.
		running := g.shards[:0:0]
		for _, p := range g.shards {
			if p.heldGlobal && p.held != nil {
				p.clock.Store(key(p.held))
				continue
			}
			if p.held == nil && p.rq.len() == 0 {
				p.clock.Store(maxKey)
				continue
			}
			p.freeRun = p.blocked == 0
			p.quiet.Store(false)
			p.clock.Store(p.pendingKey())
			running = append(running, p)
		}
		g.phase.Add(len(running))
		for _, p := range running {
			p.resume <- struct{}{}
		}
		g.phase.Wait()

		var steps int64
		prog := false
		for _, p := range running {
			if p.err != nil {
				e.shutdown()
				return nil, p.err
			}
			steps += p.phaseSteps
			p.phaseSteps = 0
			if p.progressed {
				p.progressed = false
				prog = true
			}
		}
		if prog {
			idle = 0
		} else if idle += steps; idle >= limit {
			lerr := &LivelockError{Steps: idle, Blocked: e.blockedIDs()}
			e.shutdown()
			return nil, lerr
		}
	}
}

// finishPar merges per-shard op counts and folds per-thread outcomes.
func (e *Engine) finishPar(g *parGroup, res *Result) (*Result, error) {
	for _, p := range g.shards {
		for k, n := range p.ops {
			res.Ops[k] += n
		}
	}
	return e.finish(res)
}

// runPhase executes shard-local ops until the shard parks at a GLOBAL
// op, is horizon-blocked by a quiescent sibling, drains, or exhausts its
// phase budget. Free-running shards (no blocked threads this phase) skip
// the horizon entirely and only stop at a global, the drain, or the
// budget. It runs on the shard's goroutine; everything it touches is
// shard-owned or read through the clock/quiet atomics.
func (p *parShard) runPhase(e *Engine, g *parGroup) {
	t, op := p.held, p.heldOp
	p.held, p.heldOp = nil, nil
	// horizon caches the last observed minimum of the sibling clocks;
	// within a phase sibling clocks only grow, so any key below it needs
	// no rescan.
	var horizon uint64
	quiesce := func(global bool) {
		p.held, p.heldOp, p.heldGlobal = t, op, global
		if t != nil {
			p.clock.Store(key(t))
		} else {
			p.clock.Store(maxKey)
		}
		p.quiet.Store(true)
	}
	for {
		if t == nil {
			if t = p.rq.pop(); t == nil {
				quiesce(false)
				return
			}
		}
		if op == nil {
			var ok bool
			if op, ok = e.nextOp(t); !ok {
				t.state = done
				p.progressed = true
				t = nil
				continue
			}
		}
		k := key(t)
		p.clock.Store(k)
		if op.Kind.IsSync() || !g.sh.OpLocal(t.id, op) {
			quiesce(true)
			return
		}
		if !p.freeRun && k >= horizon {
			var ok bool
			if horizon, ok = p.waitHorizon(g, k); !ok {
				quiesce(false)
				return
			}
		}
		p.ops[op.Kind]++
		val, err := e.execOp(t, op)
		if err != nil {
			p.err = err
			quiesce(false)
			return
		}
		if k > p.maxExec {
			p.maxExec = k
		}
		if op.Kind == isa.OpLoad || op.Kind == isa.OpLoadU {
			t.loadVal = val
		}
		op = nil
		if p.phaseSteps++; p.phaseSteps >= parPhaseBudget {
			quiesce(false)
			return
		}
		if m := p.rq.peek(); m != nil && runqLess(m, t) {
			t = p.rq.swapMin(t)
		}
	}
}

// horizonSpinLimit bounds how many times a horizon-blocked shard yields
// before giving the phase back to the coordinator. Unbounded spinning is
// pathological when GOMAXPROCS is below the shard count; quiescing
// instead costs one extra coordinator round and nothing semantically.
const horizonSpinLimit = 64

// waitHorizon blocks until every sibling shard's published clock exceeds
// k, returning the observed minimum (ok=true). If the blocking sibling
// has itself gone quiescent, or the spin budget runs out, the shard must
// quiesce too (ok=false): the coordinator advances the frontier then.
func (p *parShard) waitHorizon(g *parGroup, k uint64) (uint64, bool) {
	for spins := 0; ; spins++ {
		min := maxKey
		var owner *parShard
		for _, s := range g.shards {
			if s == p {
				continue
			}
			if c := s.clock.Load(); c < min {
				min, owner = c, s
			}
		}
		if k < min {
			return min, true
		}
		if owner.quiet.Load() || spins >= horizonSpinLimit {
			return 0, false
		}
		runtime.Gosched()
	}
}
