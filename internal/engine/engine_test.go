package engine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mesi"
	"repro/internal/stats"
	"repro/internal/topo"
)

func incoherent16() *core.Hierarchy {
	m := topo.NewIntraBlock()
	cfg := core.DefaultConfig(m)
	cfg.MEBEntries = 16
	cfg.IEBEntries = 4
	return core.New(m, cfg)
}

func coherent16() *mesi.Hierarchy {
	m := topo.NewIntraBlock()
	return mesi.New(m, mesi.DefaultConfig(m))
}

// Interface conformance.
var (
	_ Hierarchy = (*core.Hierarchy)(nil)
	_ Hierarchy = (*mesi.Hierarchy)(nil)
)

func TestSingleThreadComputeAndMemory(t *testing.T) {
	h := incoherent16()
	var loaded mem.Word
	guests := []Guest{func(p Proc) {
		p.Compute(100)
		p.Store(0x1000, 7)
		loaded = p.Load(0x1000)
	}}
	res, err := New(h, guests).Run()
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 7 {
		t.Errorf("loaded = %d", loaded)
	}
	if res.Cycles < 100 {
		t.Errorf("cycles = %d", res.Cycles)
	}
	if res.Stalls[stats.Busy] < 100 {
		t.Errorf("busy = %d", res.Stalls[stats.Busy])
	}
}

func TestFlagProducerConsumer(t *testing.T) {
	h := incoherent16()
	data := mem.Addr(0x2000)
	var got mem.Word
	guests := make([]Guest, 2)
	guests[0] = func(p Proc) {
		p.Compute(500)
		p.Store(data, 99)
		p.WB(mem.WordRange(data, 1))
		p.FlagSet(0, 1)
	}
	guests[1] = func(p Proc) {
		p.FlagWait(0, 1)
		p.INV(mem.WordRange(data, 1))
		got = p.Load(data)
	}
	res, err := New(h, guests).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Errorf("consumer read %d, want 99", got)
	}
	// The consumer waited ~500 cycles on the flag.
	if res.PerThread[1][stats.FlagStall] < 400 {
		t.Errorf("flag stall = %d, want ~500", res.PerThread[1][stats.FlagStall])
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	h := incoherent16()
	n := 4
	guests := make([]Guest, n)
	for i := range guests {
		work := int64((i + 1) * 1000)
		guests[i] = func(p Proc) {
			p.Compute(work)
			p.Barrier(0)
			p.Compute(10)
		}
	}
	res, err := New(h, guests).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Thread 0 (1000 cycles of work) waits ~3000 at the barrier.
	if res.PerThread[0][stats.BarrierStall] < 2500 {
		t.Errorf("thread 0 barrier stall = %d", res.PerThread[0][stats.BarrierStall])
	}
	// The slowest thread barely waits.
	if res.PerThread[3][stats.BarrierStall] > 200 {
		t.Errorf("thread 3 barrier stall = %d", res.PerThread[3][stats.BarrierStall])
	}
}

func TestLockMutualExclusionAndStall(t *testing.T) {
	h := incoherent16()
	counter := mem.Addr(0x3000)
	n := 8
	guests := make([]Guest, n)
	for i := range guests {
		guests[i] = func(p Proc) {
			for k := 0; k < 5; k++ {
				p.Acquire(1)
				v := p.Load(counter)
				p.Compute(50)
				p.Store(counter, v+1)
				p.WB(mem.WordRange(counter, 1))
				p.Release(1)
				p.INV(mem.WordRange(counter, 1))
			}
		}
	}
	res, err := New(h, guests).Run()
	if err != nil {
		t.Fatal(err)
	}
	h.Drain()
	if got := h.Memory().ReadWord(counter); got != mem.Word(n*5) {
		t.Errorf("counter = %d, want %d", got, n*5)
	}
	if res.Stalls[stats.LockStall] == 0 {
		t.Error("contended lock produced no lock stall")
	}
}

// The crux of the paper: a critical-section counter is only correct on the
// incoherent machine when WB/INV accompany the lock; on the coherent
// machine it is correct without them.
func TestIncoherentCounterWithoutWBINVIsWrong(t *testing.T) {
	h := incoherent16()
	counter := mem.Addr(0x4000)
	n := 8
	guests := make([]Guest, n)
	for i := range guests {
		guests[i] = func(p Proc) {
			for k := 0; k < 5; k++ {
				p.Acquire(1)
				v := p.Load(counter)
				p.Store(counter, v+1)
				p.Release(1)
			}
		}
	}
	if _, err := New(h, guests).Run(); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	if got := h.Memory().ReadWord(counter); got == mem.Word(n*5) {
		t.Error("unannotated critical section was coherent on incoherent hardware")
	}
}

func TestCoherentCounterNeedsNoAnnotations(t *testing.T) {
	h := coherent16()
	counter := mem.Addr(0x4000)
	n := 8
	guests := make([]Guest, n)
	for i := range guests {
		guests[i] = func(p Proc) {
			for k := 0; k < 5; k++ {
				p.Acquire(1)
				v := p.Load(counter)
				p.Store(counter, v+1)
				p.Release(1)
			}
		}
	}
	if _, err := New(h, guests).Run(); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	if got := h.Memory().ReadWord(counter); got != mem.Word(n*5) {
		t.Errorf("coherent counter = %d, want %d", got, n*5)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, stats.Stalls, stats.Traffic) {
		h := incoherent16()
		counter := mem.Addr(0x5000)
		guests := make([]Guest, 16)
		for i := range guests {
			id := i
			guests[i] = func(p Proc) {
				p.Compute(int64(id * 13))
				for k := 0; k < 10; k++ {
					p.Acquire(2)
					v := p.Load(counter)
					p.Store(counter, v+1)
					p.WBAllMEB()
					p.Release(2)
					p.Barrier(0)
				}
			}
		}
		res, err := New(h, guests).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles, res.Stalls, res.Traffic
	}
	c1, s1, t1 := run()
	c2, s2, t2 := run()
	if c1 != c2 || s1 != s2 || t1 != t2 {
		t.Errorf("nondeterministic: run1=(%d,%v,%v) run2=(%d,%v,%v)", c1, s1, t1, c2, s2, t2)
	}
}

func TestDeadlockDetection(t *testing.T) {
	h := incoherent16()
	guests := []Guest{
		func(p Proc) { p.Acquire(0); p.Acquire(1); p.Release(1); p.Release(0) },
		func(p Proc) { p.Acquire(1); p.Compute(1000); p.Acquire(0) },
	}
	_, err := New(h, guests).Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock", err)
	}
}

func TestGuestPanicSurfacesAsError(t *testing.T) {
	h := incoherent16()
	guests := []Guest{func(p Proc) {
		p.Compute(1)
		panic("boom")
	}}
	_, err := New(h, guests).Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want guest panic", err)
	}
}

func TestStallAttributionCategories(t *testing.T) {
	h := incoherent16()
	guests := []Guest{func(p Proc) {
		p.Store(0x6000, 1) // mem stall (cold miss)
		p.WBAll()          // wb stall
		p.INVAll()         // inv stall
	}}
	res, err := New(h, guests).Run()
	if err != nil {
		t.Fatal(err)
	}
	s := res.PerThread[0]
	if s[stats.MemStall] == 0 {
		t.Error("no mem stall recorded")
	}
	if s[stats.WBStall] == 0 {
		t.Error("no WB stall recorded")
	}
	if s[stats.INVStall] == 0 {
		t.Error("no INV stall recorded")
	}
	inv, wb, lock, barrier, rest := s.Figure9()
	if inv+wb+lock+barrier+rest != s.Total() {
		t.Error("figure9 breakdown does not conserve cycles")
	}
}

func TestUncachedOpsThroughEngine(t *testing.T) {
	h := incoherent16()
	var got mem.Word
	guests := []Guest{
		func(p Proc) { p.StoreU(0x7000, 5); p.FlagSet(0, 1) },
		func(p Proc) { p.FlagWait(0, 1); got = p.LoadU(0x7000) },
	}
	if _, err := New(h, guests).Run(); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("uncached read = %d", got)
	}
}

func TestOpCountsRecorded(t *testing.T) {
	h := incoherent16()
	guests := []Guest{func(p Proc) {
		p.Load(0x8000)
		p.Load(0x8000)
		p.Store(0x8000, 1)
		p.Barrier(0)
	}}
	res, err := New(h, guests).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops[0] == 0 { // OpLoad
		t.Error("load ops not counted")
	}
}

// A reader that spins on a cacheable flag with INV (Figure 6b's data-race
// pattern) must still terminate: each INV+load refetches from the shared
// cache.
func TestDataRaceSpinWithINV(t *testing.T) {
	h := incoherent16()
	flag := mem.Addr(0x9000)
	data := mem.Addr(0x9100)
	var got mem.Word
	guests := []Guest{
		func(p Proc) {
			p.Store(data, 1234)
			p.WB(mem.WordRange(data, 1))
			p.Store(flag, 1)
			p.WB(mem.WordRange(flag, 1))
		},
		func(p Proc) {
			for {
				p.INV(mem.WordRange(flag, 1))
				if p.Load(flag) == 1 {
					break
				}
				p.Compute(100)
			}
			p.INV(mem.WordRange(data, 1))
			got = p.Load(data)
		},
	}
	if _, err := New(h, guests).Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1234 {
		t.Errorf("raced data = %d", got)
	}
}

// Cycle conservation: each thread's stall categories sum exactly to its
// finish time (no cycles invented or lost by the attribution).
func TestStallConservation(t *testing.T) {
	h := incoherent16()
	guests := make([]Guest, 16)
	for i := range guests {
		id := i
		guests[i] = func(p Proc) {
			p.Compute(int64(100 + id*7))
			for k := 0; k < 3; k++ {
				p.Acquire(1)
				v := p.Load(0xa000)
				p.Store(0xa000, v+1)
				p.WBAll()
				p.Release(1)
				p.Barrier(0)
				p.INVAll()
			}
		}
	}
	res, err := New(h, guests).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.PerThread {
		if s.Total() > res.Cycles {
			t.Errorf("thread %d stall total %d exceeds run cycles %d", i, s.Total(), res.Cycles)
		}
	}
	// The longest thread's stalls account for the full run.
	var maxTotal int64
	for _, s := range res.PerThread {
		if s.Total() > maxTotal {
			maxTotal = s.Total()
		}
	}
	if maxTotal != res.Cycles {
		t.Errorf("max per-thread total %d != run cycles %d", maxTotal, res.Cycles)
	}
}

// Distinct barrier IDs are independent synchronization episodes.
func TestMultipleBarrierIDs(t *testing.T) {
	h := incoherent16()
	order := make([]int, 0, 8)
	guests := make([]Guest, 4)
	for i := range guests {
		id := i
		guests[i] = func(p Proc) {
			p.Compute(int64(id * 100))
			p.Barrier(5)
			if id == 0 {
				order = append(order, 5)
			}
			p.Compute(10)
			p.Barrier(9)
			if id == 0 {
				order = append(order, 9)
			}
		}
	}
	if _, err := New(h, guests).Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 5 || order[1] != 9 {
		t.Errorf("barrier episodes = %v", order)
	}
}

// The two hierarchies produce identical *functional* results for the same
// annotated program (timing differs, values must not).
func TestFunctionalEquivalenceAcrossHierarchies(t *testing.T) {
	prog := func(p Proc) {
		me := p.ID()
		p.Store(mem.Addr(0x1000+me*4), mem.Word(me*me))
		p.WBAll()
		p.Barrier(0)
		p.INVAll()
		var sum mem.Word
		for i := 0; i < p.NumThreads(); i++ {
			sum += p.Load(mem.Addr(0x1000 + i*4))
		}
		p.Store(mem.Addr(0x2000+me*4), sum)
	}
	results := map[string]mem.Word{}
	for name, h := range map[string]Hierarchy{"incoherent": incoherent16(), "coherent": coherent16()} {
		guests := make([]Guest, 16)
		for i := range guests {
			guests[i] = prog
		}
		if _, err := New(h, guests).Run(); err != nil {
			t.Fatal(err)
		}
		h.Drain()
		results[name] = h.Memory().ReadWord(0x2000)
	}
	if results["incoherent"] != results["coherent"] {
		t.Errorf("results diverge: %v", results)
	}
	want := mem.Word(0)
	for i := 0; i < 16; i++ {
		want += mem.Word(i * i)
	}
	if results["coherent"] != want {
		t.Errorf("sum = %d, want %d", results["coherent"], want)
	}
}

// ID and NumThreads are exposed correctly to every guest.
func TestProcIdentity(t *testing.T) {
	h := incoherent16()
	seen := make([]int, 5)
	guests := make([]Guest, 5)
	for i := range guests {
		i := i
		guests[i] = func(p Proc) {
			if p.NumThreads() != 5 {
				panic("wrong NumThreads")
			}
			seen[i] = p.ID()
		}
	}
	if _, err := New(h, guests).Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range seen {
		if id != i {
			t.Errorf("guest %d saw ID %d", i, id)
		}
	}
}
