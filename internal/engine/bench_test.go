package engine

import (
	"strconv"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
)

// nullHierarchy answers every memory operation in zero cycles, so the
// engine benchmark isolates scheduler overhead (runnable selection plus
// the guest channel round trip) from hierarchy modeling cost.
type nullHierarchy struct {
	m   *mem.Memory
	ctr *stats.Counters
}

func newNullHierarchy() *nullHierarchy {
	return &nullHierarchy{m: mem.NewMemory(), ctr: stats.NewCounters()}
}

func (n *nullHierarchy) Load(core int, a mem.Addr) (mem.Word, int64)  { return n.m.ReadWord(a), 1 }
func (n *nullHierarchy) Store(core int, a mem.Addr, v mem.Word) int64 { n.m.WriteWord(a, v); return 1 }
func (n *nullHierarchy) LoadUncached(core int, a mem.Addr) (mem.Word, int64) {
	return n.m.ReadWord(a), 1
}
func (n *nullHierarchy) StoreUncached(core int, a mem.Addr, v mem.Word) int64 {
	n.m.WriteWord(a, v)
	return 1
}
func (n *nullHierarchy) WB(core int, r mem.Range, lvl isa.Level) int64    { return 1 }
func (n *nullHierarchy) INV(core int, r mem.Range, lvl isa.Level) int64   { return 1 }
func (n *nullHierarchy) WBAll(core int, useMEB bool, lvl isa.Level) int64 { return 1 }
func (n *nullHierarchy) INVAll(core int, lazy bool, lvl isa.Level) int64  { return 1 }
func (n *nullHierarchy) WBCons(core int, r mem.Range, cons int) int64     { return 1 }
func (n *nullHierarchy) InvProd(core int, r mem.Range, prod int) int64    { return 1 }
func (n *nullHierarchy) WBConsAll(core, cons int) int64                   { return 1 }
func (n *nullHierarchy) InvProdAll(core, prod int) int64                  { return 1 }
func (n *nullHierarchy) SigPublish(core, ch int) int64                    { return 1 }
func (n *nullHierarchy) INVSig(core, ch int) int64                        { return 1 }
func (n *nullHierarchy) DMACopy(core int, dst mem.Addr, src mem.Range, toBlock int) int64 {
	return 1
}
func (n *nullHierarchy) EpochBoundary(core int)      {}
func (n *nullHierarchy) SyncCost(core, id int) int64 { return 1 }
func (n *nullHierarchy) Drain()                      {}
func (n *nullHierarchy) Memory() *mem.Memory         { return n.m }
func (n *nullHierarchy) Traffic() stats.Traffic      { return stats.Traffic{} }
func (n *nullHierarchy) Counters() *stats.Counters   { return n.ctr }

// shardedNullHierarchy is nullHierarchy with a shard decomposition: cores
// are grouped into shards of coresPerShard, every non-sync op is
// shard-local, and each core has its own backing memory (the benchmark
// guests never share data, so results match the serial null hierarchy).
// It isolates the block-parallel executor's overhead and scaling the same
// way nullHierarchy isolates the serial scheduler's.
type shardedNullHierarchy struct {
	nullHierarchy
	ms            []*mem.Memory // per core
	coresPerShard int
	shards        int
}

func newShardedNullHierarchy(cores, coresPerShard int) *shardedNullHierarchy {
	h := &shardedNullHierarchy{
		nullHierarchy: *newNullHierarchy(),
		ms:            make([]*mem.Memory, cores),
		coresPerShard: coresPerShard,
		shards:        (cores + coresPerShard - 1) / coresPerShard,
	}
	for i := range h.ms {
		h.ms[i] = mem.NewMemory()
	}
	return h
}

func (n *shardedNullHierarchy) Load(core int, a mem.Addr) (mem.Word, int64) {
	return n.ms[core].ReadWord(a), 1
}
func (n *shardedNullHierarchy) Store(core int, a mem.Addr, v mem.Word) int64 {
	n.ms[core].WriteWord(a, v)
	return 1
}
func (n *shardedNullHierarchy) ParallelShards() int { return n.shards }
func (n *shardedNullHierarchy) ShardOf(core int) int {
	return core / n.coresPerShard
}
func (n *shardedNullHierarchy) OpLocal(core int, op *isa.Op) bool { return true }

// benchGuests builds the standard engine benchmark workload: threads
// guests each issuing opsPerGuest zero-latency stores/loads with
// staggered compute phases.
const benchOpsPerGuest = 2000

func benchGuests(threads int) []Guest {
	guests := make([]Guest, threads)
	for i := range guests {
		i := i
		guests[i] = func(p Proc) {
			base := mem.Addr(0x10000 + i*0x4000)
			for k := 0; k < benchOpsPerGuest; k++ {
				p.Store(base+mem.Addr(k%64*4), mem.Word(k))
				p.Load(base + mem.Addr((k+1)%64*4))
				// Stagger local clocks so selection order churns.
				p.Compute(int64(1 + (i+k)%7))
			}
		}
	}
	return guests
}

// BenchmarkEngineStep measures scheduler throughput in steps per second:
// T threads each issue opsPerGuest zero-latency operations with staggered
// compute phases, so the runnable set stays full and every step exercises
// the next-thread selection (linear scan before the heap rewrite, pop/push
// after). The op/s metric is the end-to-end simulated operation rate.
func BenchmarkEngineStep(b *testing.B) {
	for _, threads := range []int{4, 16, 64, 256} {
		threads := threads
		b.Run(benchName("threads", threads), func(b *testing.B) {
			guests := benchGuests(threads)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := New(newNullHierarchy(), guests).Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(3*benchOpsPerGuest*threads*b.N)/b.Elapsed().Seconds(), "op/s")
		})
	}
}

// BenchmarkEngineStepParallel runs the same workload through the
// block-parallel executor (8 cores per shard, matching the manycore
// topology). Comparing threads-N here against BenchmarkEngineStep's
// threads-N gives the within-simulation parallel speedup with hierarchy
// modeling cost excluded.
func BenchmarkEngineStepParallel(b *testing.B) {
	for _, threads := range []int{64, 256} {
		threads := threads
		b.Run(benchName("threads", threads), func(b *testing.B) {
			guests := benchGuests(threads)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := New(newShardedNullHierarchy(threads, 8), guests).Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(3*benchOpsPerGuest*threads*b.N)/b.Elapsed().Seconds(), "op/s")
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "-" + strconv.Itoa(n)
}

// TestEngineStepAllocs is the allocation-churn regression gate for the
// satellite fix: per-thread state (contexts, op rings, the guest-facing
// proc) lives in one arena and the run queue is preallocated, so a
// 64-thread run costs the engine slabs plus a fixed per-coroutine
// overhead (iter.Pull's handles are the irreducible per-thread part)
// instead of growing per thread struct and per ring. The hierarchy is
// built outside the measured region so the gate holds the engine, not
// the null memory's page faults, to the bound.
func TestEngineStepAllocs(t *testing.T) {
	const threads = 64
	guests := benchGuests(threads)
	h := newNullHierarchy()
	avg := testing.AllocsPerRun(3, func() {
		if _, err := New(h, guests).Run(); err != nil {
			t.Fatal(err)
		}
	})
	if limit := float64(13*threads + 64); avg > limit {
		t.Fatalf("engine run allocated %.0f times for %d threads; limit %.0f", avg, threads, limit)
	}
}
