package engine

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
)

// nullHierarchy answers every memory operation in zero cycles, so the
// engine benchmark isolates scheduler overhead (runnable selection plus
// the guest channel round trip) from hierarchy modeling cost.
type nullHierarchy struct {
	m   *mem.Memory
	ctr *stats.Counters
}

func newNullHierarchy() *nullHierarchy {
	return &nullHierarchy{m: mem.NewMemory(), ctr: stats.NewCounters()}
}

func (n *nullHierarchy) Load(core int, a mem.Addr) (mem.Word, int64)  { return n.m.ReadWord(a), 1 }
func (n *nullHierarchy) Store(core int, a mem.Addr, v mem.Word) int64 { n.m.WriteWord(a, v); return 1 }
func (n *nullHierarchy) LoadUncached(core int, a mem.Addr) (mem.Word, int64) {
	return n.m.ReadWord(a), 1
}
func (n *nullHierarchy) StoreUncached(core int, a mem.Addr, v mem.Word) int64 {
	n.m.WriteWord(a, v)
	return 1
}
func (n *nullHierarchy) WB(core int, r mem.Range, lvl isa.Level) int64    { return 1 }
func (n *nullHierarchy) INV(core int, r mem.Range, lvl isa.Level) int64   { return 1 }
func (n *nullHierarchy) WBAll(core int, useMEB bool, lvl isa.Level) int64 { return 1 }
func (n *nullHierarchy) INVAll(core int, lazy bool, lvl isa.Level) int64  { return 1 }
func (n *nullHierarchy) WBCons(core int, r mem.Range, cons int) int64     { return 1 }
func (n *nullHierarchy) InvProd(core int, r mem.Range, prod int) int64    { return 1 }
func (n *nullHierarchy) WBConsAll(core, cons int) int64                   { return 1 }
func (n *nullHierarchy) InvProdAll(core, prod int) int64                  { return 1 }
func (n *nullHierarchy) SigPublish(core, ch int) int64                    { return 1 }
func (n *nullHierarchy) INVSig(core, ch int) int64                        { return 1 }
func (n *nullHierarchy) DMACopy(core int, dst mem.Addr, src mem.Range, toBlock int) int64 {
	return 1
}
func (n *nullHierarchy) EpochBoundary(core int)      {}
func (n *nullHierarchy) SyncCost(core, id int) int64 { return 1 }
func (n *nullHierarchy) Drain()                      {}
func (n *nullHierarchy) Memory() *mem.Memory         { return n.m }
func (n *nullHierarchy) Traffic() stats.Traffic      { return stats.Traffic{} }
func (n *nullHierarchy) Counters() *stats.Counters   { return n.ctr }

// BenchmarkEngineStep measures scheduler throughput in steps per second:
// T threads each issue opsPerGuest zero-latency operations with staggered
// compute phases, so the runnable set stays full and every step exercises
// the next-thread selection (linear scan before the heap rewrite, pop/push
// after). The op/s metric is the end-to-end simulated operation rate.
func BenchmarkEngineStep(b *testing.B) {
	for _, threads := range []int{4, 16, 64} {
		threads := threads
		b.Run(benchName("threads", threads), func(b *testing.B) {
			const opsPerGuest = 2000
			guests := make([]Guest, threads)
			for i := range guests {
				i := i
				guests[i] = func(p Proc) {
					base := mem.Addr(0x10000 + i*0x4000)
					for k := 0; k < opsPerGuest; k++ {
						p.Store(base+mem.Addr(k%64*4), mem.Word(k))
						p.Load(base + mem.Addr((k+1)%64*4))
						// Stagger local clocks so selection order churns.
						p.Compute(int64(1 + (i+k)%7))
					}
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := New(newNullHierarchy(), guests).Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(3*opsPerGuest*threads*b.N)/b.Elapsed().Seconds(), "op/s")
		})
	}
}

func benchName(prefix string, n int) string {
	s := prefix + "-"
	if n >= 10 {
		s += string(rune('0' + n/10))
	}
	return s + string(rune('0'+n%10))
}
