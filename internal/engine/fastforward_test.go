package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/stats"
)

// countingHierarchy wraps nullHierarchy and counts hierarchy calls, so
// tests can pin exactly how many operations the engine executed before an
// abort — the fast-forward rewrite must not change where the watchdog or
// the deadlock check cuts a run off.
type countingHierarchy struct {
	*nullHierarchy
	loads, stores, invs int64
}

func newCountingHierarchy() *countingHierarchy {
	return &countingHierarchy{nullHierarchy: newNullHierarchy()}
}

func (c *countingHierarchy) Load(core int, a mem.Addr) (mem.Word, int64) {
	c.loads++
	return c.nullHierarchy.Load(core, a)
}

func (c *countingHierarchy) Store(core int, a mem.Addr, v mem.Word) int64 {
	c.stores++
	return c.nullHierarchy.Store(core, a, v)
}

func (c *countingHierarchy) INV(core int, r mem.Range, lvl isa.Level) int64 {
	c.invs++
	return c.nullHierarchy.INV(core, r, lvl)
}

// TestWatchdogTripPinned pins the livelock watchdog's trip point. A spin
// loop that burns scheduler events without ever being granted is the
// livelock shape; the watchdog must trip after exactly NoProgressLimit
// no-progress events, having executed exactly that many operations —
// before and after fast-forward. If skipped cycles stopped counting
// toward the grant budget, the op counts here would grow (the timeout
// would silently lengthen); if they double-counted, they would shrink.
func TestWatchdogTripPinned(t *testing.T) {
	const limit = 5000
	h := newCountingHierarchy()
	flag := mem.Addr(0x2000)
	guests := []Guest{func(p Proc) {
		for p.Load(flag) == 0 {
			p.INV(mem.WordRange(flag, 1))
		}
	}}
	e := New(h, guests)
	e.NoProgressLimit = limit
	_, err := e.Run()
	var ll *LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("err = %v, want LivelockError", err)
	}
	if ll.Steps != limit {
		t.Errorf("Steps = %d, want exactly %d", ll.Steps, limit)
	}
	// The spin loop alternates Load and INV, one op per scheduler event:
	// the trip point pins the executed-op total to the no-progress limit.
	if got := h.loads + h.invs; got != limit {
		t.Errorf("executed %d ops (%d loads + %d invs) before trip, want %d",
			got, h.loads, h.invs, limit)
	}
	if len(ll.Blocked) != 0 {
		t.Errorf("Blocked = %v, want none (spinning, not parked)", ll.Blocked)
	}
}

// TestWatchdogCountsAcrossQuiescence pins watchdog accounting around
// grant-driven wakes: a two-thread lock ping-pong with long quiescent
// stretches (every event is a grant or follows one) must never trip even
// with a tiny window, while the same shape with the grants removed must.
func TestWatchdogCountsAcrossQuiescence(t *testing.T) {
	h := newNullHierarchy()
	guests := []Guest{
		func(p Proc) {
			for i := 0; i < 300; i++ {
				p.Acquire(0)
				p.Compute(50)
				p.Release(0)
			}
		},
		func(p Proc) {
			for i := 0; i < 300; i++ {
				p.Acquire(0)
				p.Compute(70)
				p.Release(0)
			}
		},
	}
	e := New(h, guests)
	e.NoProgressLimit = 25
	if _, err := e.Run(); err != nil {
		t.Fatalf("lock ping-pong tripped the watchdog: %v", err)
	}
}

// TestAllBlockedNoPendingEvent pins the quiescence edge case where every
// core is blocked and no wake event is pending: the engine must diagnose
// a deadlock immediately (not hang, not livelock-trip). The holder
// finishes without releasing, so the waiters' grants never exist.
func TestAllBlockedNoPendingEvent(t *testing.T) {
	h := newCountingHierarchy()
	guests := []Guest{
		func(p Proc) { p.Acquire(0); p.Store(0x100, 1) }, // exits holding the lock
		func(p Proc) { p.Compute(10); p.Acquire(0) },
		func(p Proc) { p.Compute(20); p.Acquire(0) },
	}
	errc := make(chan error, 1)
	go func() {
		_, err := New(h, guests).Run()
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "deadlock") {
			t.Fatalf("err = %v, want deadlock", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine hung with all cores blocked and no pending event")
	}
	if h.stores != 1 {
		t.Errorf("stores = %d, want 1 (holder ran to completion)", h.stores)
	}
}

// TestZeroCoreEngine pins the degenerate machine: an engine over no
// guests completes immediately with an empty result, and a canceled
// context still reports cancellation rather than success.
func TestZeroCoreEngine(t *testing.T) {
	h := newNullHierarchy()
	res, err := New(h, nil).Run()
	if err != nil {
		t.Fatalf("zero-core run failed: %v", err)
	}
	if res.Cycles != 0 || len(res.PerThread) != 0 {
		t.Errorf("zero-core result = %+v, want empty", res)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(h, nil).RunCtx(ctx); err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("canceled zero-core run: err = %v, want context.Canceled", err)
	}
}

// TestStallSpansReconcileAcrossFastForward pins the observability
// invariant of DESIGN.md §10: a woken thread's wait span covers exactly
// the fast-forwarded interval, so the recorder's per-kind span totals
// equal the engine's Result.Stalls even though blocked threads are never
// stepped. The workload mixes lock contention, a barrier, and staggered
// compute so every stall category with a wait (lock, barrier) crosses
// skipped stretches.
func TestStallSpansReconcileAcrossFastForward(t *testing.T) {
	h := newNullHierarchy()
	guests := make([]Guest, 6)
	for i := range guests {
		i := i
		guests[i] = func(p Proc) {
			for k := 0; k < 50; k++ {
				p.Compute(int64(10 + i*37))
				p.Acquire(1)
				p.Store(0x40, mem.Word(i))
				p.Release(1)
			}
			p.Barrier(2)
			p.Load(0x40)
		}
	}
	e := New(h, guests)
	rec := obs.New(obs.Config{})
	e.SetRecorder(rec)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls[stats.LockStall] == 0 || res.Stalls[stats.BarrierStall] == 0 {
		t.Fatalf("workload produced no sync waits: %v", res.Stalls)
	}
	tot := rec.TraceData().StallTotals()
	for k := stats.StallKind(0); k < stats.NumStallKinds; k++ {
		if tot[k] != res.Stalls[k] {
			t.Errorf("%v: trace total %d != engine stalls %d", k, tot[k], res.Stalls[k])
		}
	}
}

// TestWakeOnPollBoundary pins determinism when a wake event lands on the
// same scheduler event as a cooperative-preemption poll (every 256
// events): the result must be identical with and without a live context,
// and identical across runs. The staggered computes put lock grants at
// varying positions relative to the poll mask.
func TestWakeOnPollBoundary(t *testing.T) {
	run := func(viaCtx bool) *Result {
		h := newNullHierarchy()
		guests := make([]Guest, 4)
		for i := range guests {
			i := i
			guests[i] = func(p Proc) {
				for k := 0; k < 200; k++ {
					p.Acquire(3)
					p.Compute(int64(1 + (i+k)%5))
					p.Release(3)
					p.Store(mem.Addr(0x1000+i*64), mem.Word(k))
				}
			}
		}
		e := New(h, guests)
		var res *Result
		var err error
		if viaCtx {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			res, err = e.RunCtx(ctx)
		} else {
			res, err = e.Run()
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(false), run(true), run(false)
	if a.Cycles != b.Cycles || a.Stalls != b.Stalls {
		t.Errorf("ctx run diverged: %v vs %v", a.Cycles, b.Cycles)
	}
	if a.Cycles != c.Cycles || a.Stalls != c.Stalls {
		t.Errorf("repeat run diverged: %v vs %v", a.Cycles, c.Cycles)
	}
	if a.Stalls[stats.LockStall] == 0 {
		t.Error("expected lock contention in the pinning workload")
	}
}
