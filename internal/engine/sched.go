package engine

import (
	"fmt"

	"repro/internal/isa"
)

// Candidate describes one runnable thread at a scheduling decision point:
// its ID, its local clock, and the operation it will execute if chosen.
// Schedule explorers use the pending op to reason about independence of
// adjacent steps (partial-order reduction) without re-deriving guest state.
type Candidate struct {
	Thread int
	Time   int64
	Op     isa.Op
}

// Scheduler replaces the engine's default (time, thread-ID) scheduling
// policy with an externally chosen thread order. At every step the engine
// presents the runnable threads — in ascending thread-ID order — and the
// scheduler returns the index of the thread to execute next. Returning a
// negative index aborts the run with a *ScheduleAbortError (this is how
// bounded explorers cut off schedules past their step budget).
//
// Install with SetScheduler before Run/RunCtx. The run remains fully
// deterministic: identical Pick answers reproduce identical executions,
// which is what lets litmus explorers replay a schedule prefix exactly.
type Scheduler interface {
	Pick(cands []Candidate) int
}

// SetScheduler installs s as the run's scheduling policy (nil restores the
// default minimum-local-clock order). Call before Run; installing a
// scheduler mid-run is not supported.
func (e *Engine) SetScheduler(s Scheduler) { e.sched = s }

// MinTimeScheduler replays the engine's default scheduling policy —
// minimum local clock, thread-ID tie-break — through the external
// scheduler interface. Installing it forces the synchronous rendezvous
// protocol (the serial reference engine) while executing the exact op
// order of the default fast-forward run, which is what makes it the
// baseline of differential tests: results must be byte-identical to the
// schedulerless run.
type MinTimeScheduler struct{}

// Pick returns the first candidate with the minimal local clock; the
// candidate list arrives in ascending thread-ID order, so ties resolve
// to the lowest thread ID, matching the run queue.
func (MinTimeScheduler) Pick(cands []Candidate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].Time < cands[best].Time {
			best = i
		}
	}
	return best
}

// ScheduleAbortError reports a run cut off by its Scheduler returning a
// negative pick — typically a schedule explorer's step budget.
type ScheduleAbortError struct {
	// Pick is the negative value the scheduler returned.
	Pick int
	// Step is the scheduling decision index at which the run stopped.
	Step int64
}

func (e *ScheduleAbortError) Error() string {
	return fmt.Sprintf("engine: run aborted by scheduler (pick %d at decision %d)", e.Pick, e.Step)
}

// ErrorKind labels the failure for the runner's error taxonomy.
func (e *ScheduleAbortError) ErrorKind() string { return "sched-abort" }

// next returns the thread to step, consulting the external scheduler when
// one is installed. With no scheduler it is the run-queue pop (minimum
// local clock, thread ID tie-break). A nil thread with a nil error means
// no thread is runnable (completion or deadlock, decided by the caller).
func (e *Engine) next() (*thread, error) {
	if e.sched == nil {
		return e.rq.pop(), nil
	}
	e.cands = e.cands[:0]
	for _, t := range e.ts {
		if t.state == ready {
			e.cands = append(e.cands, Candidate{Thread: t.id, Time: t.time, Op: t.next})
		}
	}
	if len(e.cands) == 0 {
		return nil, nil
	}
	e.decision++
	i := e.sched.Pick(e.cands)
	if i < 0 {
		return nil, &ScheduleAbortError{Pick: i, Step: e.decision - 1}
	}
	if i >= len(e.cands) {
		return nil, fmt.Errorf("engine: scheduler picked %d of %d candidates", i, len(e.cands))
	}
	return e.ts[e.cands[i].Thread], nil
}
