package engine

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// fingerprinter is implemented by components that can hash their
// complete behavioral state (core.Hierarchy, oracle.Oracle). The MESI
// hierarchy does not implement it, so StateFingerprint degrades
// gracefully there.
type fingerprinter interface {
	Fingerprint() uint64
}

// StateFingerprint hashes the complete state of the running machine at a
// synchronous-mode scheduling decision: the hierarchy, the sync
// controller, and every thread's continuation state. It returns ok=false
// when the hierarchy cannot fingerprint itself.
//
// Guest continuation state is a closure and cannot be hashed directly,
// but it does not need to be: a guest is a deterministic function of the
// sequence of values the engine has delivered to it (loads are the only
// ops that return data, and litmus guests branch only on loaded values),
// so the per-thread rolling history hash maintained by reply() — plus
// the pending op, block state, and local clock — pins the continuation
// exactly. The scheduling-decision count is folded in too, so states at
// different depths never alias and a fingerprint can never match one of
// its own ancestors.
func (e *Engine) StateFingerprint() (uint64, bool) {
	hf, ok := e.h.(fingerprinter)
	if !ok {
		return 0, false
	}
	h := hf.Fingerprint()
	// Verdicts come from the observer's shadow state (the coherence
	// oracle), so two machine states are only interchangeable if their
	// observers match too. An observer that cannot fingerprint itself
	// makes the whole state unhashable.
	if e.obs != nil {
		of, obsOK := e.obs.(fingerprinter)
		if !obsOK {
			return 0, false
		}
		h = mem.Mix64(h, of.Fingerprint())
	}
	h = mem.Mix64(h, e.ctrl.Fingerprint())
	h = mem.Mix64(h, uint64(e.decision))
	for _, t := range e.ts {
		h = mem.Mix64(h, uint64(t.state))
		h = mem.Mix64(h, uint64(t.time))
		h = mem.Mix64(h, t.histHash)
		switch t.state {
		case ready:
			h = hashOp(h, t.next)
		case blocked:
			h = hashOp(h, t.cur)
		}
	}
	return h, true
}

func hashOp(h uint64, op isa.Op) uint64 {
	h = mem.Mix64(h, uint64(op.Kind))
	h = mem.Mix64(h, uint64(op.Addr))
	h = mem.Mix64(h, uint64(op.Range.Base))
	h = mem.Mix64(h, uint64(op.Range.Bytes))
	h = mem.Mix64(h, uint64(op.Value))
	h = mem.Mix64(h, uint64(op.Level))
	h = mem.Mix64(h, uint64(op.Peer))
	h = mem.Mix64(h, uint64(op.ID))
	var flags uint64
	if op.UseMEB {
		flags |= 1
	}
	if op.Lazy {
		flags |= 2
	}
	h = mem.Mix64(h, flags)
	return mem.Mix64(h, uint64(op.Cycles))
}
