package engine

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/mem"
)

// goroutines samples the goroutine count after letting unwinding guests
// settle.
func goroutines() int {
	for i := 0; i < 50; i++ {
		runtime.Gosched()
	}
	time.Sleep(time.Millisecond)
	return runtime.NumGoroutine()
}

// leakCheck asserts the goroutine count returned (roughly) to base.
func leakCheck(t *testing.T, base int) {
	t.Helper()
	var n int
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if n = goroutines(); n <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutine count %d did not return to %d: engine leaked guests", n, base)
}

func TestRunCtxCancelStopsGuests(t *testing.T) {
	base := goroutines()
	h := incoherent16()
	// Guests that would run for a very long time.
	guests := make([]Guest, 4)
	for i := range guests {
		guests[i] = func(p Proc) {
			a := mem.Addr(0x1000 + p.ID()*64)
			for j := 0; j < 1<<30; j++ {
				p.Store(a, mem.Word(j))
				p.Load(a)
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := New(h, guests)
	errc := make(chan error, 1)
	go func() {
		_, err := e.RunCtx(ctx)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
		if err == nil || !strings.Contains(err.Error(), "canceled") {
			t.Errorf("err = %v, want a canceled message", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunCtx did not return after cancel")
	}
	leakCheck(t, base)
}

func TestRunCtxAlreadyCanceled(t *testing.T) {
	base := goroutines()
	h := incoherent16()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(h, []Guest{func(p Proc) { p.Compute(1) }}).RunCtx(ctx)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	leakCheck(t, base)
}

func TestLivelockWatchdog(t *testing.T) {
	base := goroutines()
	h := incoherent16()
	flag := mem.Addr(0x2000)
	guests := []Guest{
		// Spins forever on a flag word nobody ever sets: no sync grants,
		// unbounded steps — the livelock shape. (The spin advances
		// simulated time via loads, so a time-based watchdog would never
		// fire.)
		func(p Proc) {
			for p.Load(flag) == 0 {
				p.INV(mem.WordRange(flag, 1))
			}
		},
	}
	e := New(h, guests)
	e.NoProgressLimit = 10_000
	_, err := e.Run()
	var ll *LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("err = %v, want LivelockError", err)
	}
	if ll.ErrorKind() != "livelock" {
		t.Errorf("ErrorKind = %q, want livelock", ll.ErrorKind())
	}
	if ll.Steps < 10_000 {
		t.Errorf("Steps = %d, want >= limit", ll.Steps)
	}
	leakCheck(t, base)
}

func TestWatchdogSparesSyncingRuns(t *testing.T) {
	h := incoherent16()
	// Heavy flag-wait ping-pong: every round trip delivers grants, so
	// even a tiny window must not trip.
	guests := []Guest{
		func(p Proc) {
			for i := 1; i <= 200; i++ {
				p.FlagSet(0, int64(i))
				p.FlagWait(1, int64(i))
			}
		},
		func(p Proc) {
			for i := 1; i <= 200; i++ {
				p.FlagWait(0, int64(i))
				p.FlagSet(1, int64(i))
			}
		},
	}
	e := New(h, guests)
	e.NoProgressLimit = 50
	if _, err := e.Run(); err != nil {
		t.Fatalf("syncing run tripped the watchdog: %v", err)
	}
}

func TestDeadlockDoesNotLeakGuests(t *testing.T) {
	base := goroutines()
	h := incoherent16()
	guests := []Guest{
		func(p Proc) { p.Acquire(0); p.Acquire(1); p.Release(1); p.Release(0) },
		func(p Proc) { p.Acquire(1); p.Compute(1000); p.Acquire(0) },
	}
	_, err := New(h, guests).Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
	leakCheck(t, base)
}

// observerLog records the event stream for assertions.
type observerLog struct {
	events []Event
}

func (o *observerLog) OnEvent(ev Event) { o.events = append(o.events, ev) }

func TestObserverEventStream(t *testing.T) {
	h := incoherent16()
	a := mem.Addr(0x3000)
	guests := []Guest{
		func(p Proc) { p.Store(a, 7); p.FlagSet(0, 1); p.Barrier(9) },
		func(p Proc) { p.FlagWait(0, 1); _ = p.Load(a); p.Barrier(9) },
	}
	e := New(h, guests)
	log := &observerLog{}
	e.SetObserver(log)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	type key struct {
		kind   EventKind
		thread int
		op     isa.OpKind
	}
	seen := make(map[key]int)
	for _, ev := range log.events {
		seen[key{ev.Kind, ev.Thread, ev.Op.Kind}]++
	}
	want := []key{
		{EvOp, 0, isa.OpStore},
		{EvOp, 1, isa.OpLoad}, // the load reaches the hierarchy (value may be stale: no INV)
		{EvSyncIssue, 0, isa.OpFlagSet},
		{EvSyncIssue, 1, isa.OpFlagWait},
		{EvSyncDone, 1, isa.OpFlagWait},
		{EvSyncIssue, 0, isa.OpBarrier},
		{EvSyncIssue, 1, isa.OpBarrier},
		{EvSyncDone, 0, isa.OpBarrier},
		{EvSyncDone, 1, isa.OpBarrier},
	}
	for _, k := range want {
		if seen[k] == 0 {
			t.Errorf("missing event kind=%d thread=%d op=%v", k.kind, k.thread, k.op)
		}
	}
	// Issue precedes done for the barrier of thread 0 (the last arrival
	// wakes itself through the same path as everyone else).
	var issueAt, doneAt = -1, -1
	for i, ev := range log.events {
		if ev.Thread == 0 && ev.Op.Kind == isa.OpBarrier {
			if ev.Kind == EvSyncIssue {
				issueAt = i
			}
			if ev.Kind == EvSyncDone {
				doneAt = i
			}
		}
	}
	if issueAt == -1 || doneAt == -1 || issueAt >= doneAt {
		t.Errorf("barrier issue (%d) must precede done (%d)", issueAt, doneAt)
	}
	// FlagSet is posted: no done event.
	if n := seen[key{EvSyncDone, 0, isa.OpFlagSet}]; n != 0 {
		t.Errorf("posted FlagSet got %d done events, want 0", n)
	}
	// Load events carry the loaded value.
	for _, ev := range log.events {
		if ev.Kind == EvOp && ev.Op.Kind == isa.OpLoad && ev.Op.Addr == a {
			if ev.Value != 7 && ev.Value != 0 {
				t.Errorf("load event value = %d, want 7 (or stale 0)", ev.Value)
			}
		}
	}
}

func TestRunCtxMatchesRun(t *testing.T) {
	run := func(viaCtx bool) *Result {
		h := incoherent16()
		guests := []Guest{
			func(p Proc) { p.Store(0x100, 1); p.WBAll(); p.Barrier(0); p.Compute(10) },
			func(p Proc) { p.Barrier(0); p.INVAll(); _ = p.Load(0x100) },
		}
		e := New(h, guests)
		var res *Result
		var err error
		if viaCtx {
			res, err = e.RunCtx(context.Background())
		} else {
			res, err = e.Run()
		}
		if err != nil {
			panic(err)
		}
		return res
	}
	a, b := run(false), run(true)
	if a.Cycles != b.Cycles || a.Stalls != b.Stalls {
		t.Errorf("RunCtx result differs from Run: %+v vs %+v", a, b)
	}
}
