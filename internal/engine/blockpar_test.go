package engine

import (
	"context"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
)

// testShardedHierarchy exercises the block-parallel executor with both
// op classes: cacheable accesses hit a per-core private memory and are
// shard-LOCAL with a state-dependent latency; uncacheable accesses hit
// one shared memory and are GLOBAL. The shared-cell latency depends on
// the value stored there, so any deviation from the serial global order
// shows up in cycle counts and loaded values, not just in races.
type testShardedHierarchy struct {
	nullHierarchy
	ms            []*mem.Memory
	shared        *mem.Memory
	coresPerShard int
	shards        int
	globalCalls   atomic.Int64
}

func newTestShardedHierarchy(cores, coresPerShard, shards int) *testShardedHierarchy {
	h := &testShardedHierarchy{
		nullHierarchy: *newNullHierarchy(),
		ms:            make([]*mem.Memory, cores),
		shared:        mem.NewMemory(),
		coresPerShard: coresPerShard,
		shards:        shards,
	}
	for i := range h.ms {
		h.ms[i] = mem.NewMemory()
	}
	return h
}

func (h *testShardedHierarchy) Load(core int, a mem.Addr) (mem.Word, int64) {
	v := h.ms[core].ReadWord(a)
	return v, 1 + int64(v%3)
}

func (h *testShardedHierarchy) Store(core int, a mem.Addr, v mem.Word) int64 {
	h.ms[core].WriteWord(a, v)
	return 1
}

func (h *testShardedHierarchy) LoadUncached(core int, a mem.Addr) (mem.Word, int64) {
	h.globalCalls.Add(1)
	v := h.shared.ReadWord(a)
	return v, 2 + int64(v%5)
}

func (h *testShardedHierarchy) StoreUncached(core int, a mem.Addr, v mem.Word) int64 {
	h.globalCalls.Add(1)
	old := h.shared.ReadWord(a)
	h.shared.WriteWord(a, v)
	return 2 + int64(old%5)
}

func (h *testShardedHierarchy) Memory() *mem.Memory { return h.shared }
func (h *testShardedHierarchy) ParallelShards() int { return h.shards }
func (h *testShardedHierarchy) ShardOf(core int) int {
	// Fold core groups round-robin into the shard count: ownership is
	// per-core here, so any grouping is sound.
	return (core / h.coresPerShard) % h.shards
}
func (h *testShardedHierarchy) OpLocal(core int, op *isa.Op) bool {
	switch op.Kind {
	case isa.OpLoad, isa.OpStore, isa.OpCompute:
		return true
	}
	return false
}

// mixedGuests combines every interaction the executor must serialize:
// private churn (local), a lock-guarded shared counter (sync + global),
// barrier phases, and a flag handoff chain. Each guest records what it
// observed into private memory, which loadU'd back makes the run's
// observable history part of the shared state.
func mixedGuests(threads, rounds int) []Guest {
	guests := make([]Guest, threads)
	for i := range guests {
		i := i
		guests[i] = func(p Proc) {
			base := mem.Addr(0x1000 + i*0x400)
			const counter = mem.Addr(0x10)
			for r := 0; r < rounds; r++ {
				for k := 0; k < 20; k++ {
					p.Store(base+mem.Addr(k%8*4), mem.Word(i*1000+k+r))
					p.Compute(int64(1 + (i+k)%5))
					_ = p.Load(base + mem.Addr((k+3)%8*4))
				}
				p.Acquire(1)
				v := p.LoadU(counter)
				p.StoreU(counter, v+1)
				p.Release(1)
				p.Store(base+0x100+mem.Addr(r*4), v)
				p.Barrier(7)
				if i == 0 {
					p.FlagSet(3, int64(r+1))
				} else if i == 1 {
					p.FlagWait(3, int64(r+1))
				}
			}
		}
	}
	return guests
}

// runMixed executes the mixed workload once with the given shard count
// (1 forces the serial pipelined scheduler) and returns the result plus
// a digest of every observation the guests recorded.
func runMixed(t *testing.T, threads, coresPerShard, shards, rounds int) (*Result, string) {
	t.Helper()
	h := newTestShardedHierarchy(threads, coresPerShard, shards)
	e := New(h, mixedGuests(threads, rounds))
	res, err := e.Run()
	if err != nil {
		t.Fatalf("run (shards=%d): %v", shards, err)
	}
	digest := fmt.Sprintf("counter=%d;", h.shared.ReadWord(0x10))
	for c := range h.ms {
		for r := 0; r < rounds; r++ {
			digest += fmt.Sprintf("%d,", h.ms[c].ReadWord(mem.Addr(0x1000+c*0x400+0x100+r*4)))
		}
	}
	return res, digest
}

// TestBlockParallelMatchesSerial is the executor's core determinism
// gate: N shards must reproduce the serial scheduler's result bit for
// bit — cycles, per-thread stalls, op counts, and every value the
// guests observed through the shared counter.
func TestBlockParallelMatchesSerial(t *testing.T) {
	const threads, coresPerShard, rounds = 16, 4, 6
	serial, sdig := runMixed(t, threads, coresPerShard, 1, rounds)
	for _, shards := range []int{2, 4} {
		par, pdig := runMixed(t, threads, coresPerShard, shards, rounds)
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("shards=%d: result diverged from serial:\nserial: %+v\npar:    %+v", shards, serial, par)
		}
		if sdig != pdig {
			t.Errorf("shards=%d: observed history diverged:\nserial: %s\npar:    %s", shards, sdig, pdig)
		}
	}
	if want := mem.Word(threads * rounds); want != 0 {
		// Sanity: the lock-guarded counter saw every increment.
		h := newTestShardedHierarchy(threads, coresPerShard, 4)
		if _, err := New(h, mixedGuests(threads, rounds)).Run(); err != nil {
			t.Fatal(err)
		}
		if got := h.shared.ReadWord(0x10); got != want {
			t.Errorf("shared counter = %d, want %d", got, want)
		}
	}
}

// TestBlockParallelPhaseBudget drives one shard through far more local
// ops than parPhaseBudget so the budget-quiesce/resume path is covered,
// and checks the op totals survived the shard merges.
func TestBlockParallelPhaseBudget(t *testing.T) {
	const threads, ops = 4, parPhaseBudget/2 + 1000
	guests := make([]Guest, threads)
	for i := range guests {
		i := i
		guests[i] = func(p Proc) {
			base := mem.Addr(0x1000 + i*0x400)
			for k := 0; k < ops; k++ {
				p.Store(base, mem.Word(k))
			}
		}
	}
	h := newShardedNullHierarchy(threads, 1)
	res, err := New(h, guests).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Ops[isa.OpStore]; got != threads*ops {
		t.Fatalf("store count %d, want %d", got, threads*ops)
	}
}

// TestBlockParallelObserverFallsBackToSerial checks that attaching an
// observer disables the parallel executor (event order is defined by
// global execution order) while still producing the same result.
func TestBlockParallelObserverFallsBackToSerial(t *testing.T) {
	const threads, coresPerShard, rounds = 8, 2, 3
	serial, _ := runMixed(t, threads, coresPerShard, 1, rounds)

	h := newTestShardedHierarchy(threads, coresPerShard, 4)
	e := New(h, mixedGuests(threads, rounds))
	events := 0
	e.SetObserver(observerFunc(func(Event) { events++ }))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("observer saw no events")
	}
	if !reflect.DeepEqual(serial, res) {
		t.Errorf("observed run diverged from serial:\nserial: %+v\nobs:    %+v", serial, res)
	}
}

type observerFunc func(Event)

func (f observerFunc) OnEvent(ev Event) { f(ev) }

// TestBlockParallelCancel covers the coordinator's ctx-poll exit.
func TestBlockParallelCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := newShardedNullHierarchy(8, 2)
	_, err := New(h, benchGuests(8)).RunCtx(ctx)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
}

// TestBlockParallelLivelock covers the coordinator watchdog: a spin loop
// polling an uncached flag that is never set burns global ops without a
// grant, which must trip the no-progress limit, not hang.
func TestBlockParallelLivelock(t *testing.T) {
	const threads = 4
	guests := make([]Guest, threads)
	for i := range guests {
		i := i
		guests[i] = func(p Proc) {
			if i == 0 {
				for p.LoadU(0x20) == 0 {
					p.Compute(5)
				}
				return
			}
			p.Compute(10)
		}
	}
	h := newTestShardedHierarchy(threads, 2, 2)
	e := New(h, guests)
	e.NoProgressLimit = 2000
	_, err := e.Run()
	lerr, ok := err.(*LivelockError)
	if !ok {
		t.Fatalf("expected LivelockError, got %v", err)
	}
	if lerr.Steps < 2000 {
		t.Fatalf("livelock fired early: %d steps", lerr.Steps)
	}
}

// TestBlockParallelDeadlock covers the all-quiescent/no-pending exit: an
// acquire on a lock that is never released leaves a blocked thread and
// no runnable work.
func TestBlockParallelDeadlock(t *testing.T) {
	const threads = 4
	guests := make([]Guest, threads)
	for i := range guests {
		i := i
		guests[i] = func(p Proc) {
			if i < 2 {
				p.Acquire(9) // second acquirer blocks forever
				return       // winner never releases
			}
			p.Compute(3)
		}
	}
	h := newTestShardedHierarchy(threads, 2, 2)
	_, err := New(h, guests).Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

// TestBlockParallelGuestPanic covers shard-side error propagation.
func TestBlockParallelGuestPanic(t *testing.T) {
	guests := []Guest{
		func(p Proc) {
			p.Store(0x1000, 1)
			panic("guest bug")
		},
		func(p Proc) { p.Compute(5) },
		func(p Proc) { p.Compute(5) },
		func(p Proc) { p.Compute(5) },
	}
	h := newShardedNullHierarchy(4, 2)
	_, err := New(h, guests).Run()
	if err == nil {
		t.Fatal("expected guest panic to surface as an error")
	}
}

// TestBlockParallelDMASynced covers the cross-block DMA ordering check's
// happy path: the target block's threads are parked on a flag before the
// transfer, so the target shard is horizon-bounded below the DMA and the
// run must match serial byte for byte.
func TestBlockParallelDMASynced(t *testing.T) {
	run := func(shards int) *Result {
		guests := []Guest{
			func(p Proc) { // shard 0: transfer, then release the consumers
				p.Compute(5)
				p.DMACopy(0x9000, mem.RangeOf(0x8000, 4*mem.LineBytes), 1)
				p.FlagSet(11, 1)
			},
			func(p Proc) { p.FlagWait(11, 1); p.Compute(20) }, // shard 1
			func(p Proc) { p.FlagWait(11, 1); p.Compute(30) }, // shard 1
		}
		h := newTestShardedHierarchy(3, 1, shards)
		// Cores 1 and 2 fold onto shard 1 when sharded (coresPerShard=1,
		// ShardOf folds round-robin over 2 shards maps core 2 -> 0; use 3
		// shards so core i -> shard i, matching DMACopy's block numbering).
		res, err := New(h, guests).Run()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res
	}
	serial := run(1)
	par := run(3)
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("synced DMA run diverged:\nserial: %+v\npar:    %+v", serial, par)
	}
}

// TestBlockParallelDMAOverlapFails covers the check's failure path: the
// target block free-runs local compute far past the transfer's key, so
// the deposit cannot be interleaved deterministically and the run must
// fail loudly instead of returning divergent results.
func TestBlockParallelDMAOverlapFails(t *testing.T) {
	guests := []Guest{
		func(p Proc) { // shard 0: early cross-block transfer
			p.Compute(5)
			p.DMACopy(0x9000, mem.RangeOf(0x8000, 4*mem.LineBytes), 1)
		},
		func(p Proc) { // shard 1: unsynchronized local churn
			for k := 0; k < 5000; k++ {
				p.Store(0x2000+mem.Addr(k%16*4), mem.Word(k))
			}
		},
	}
	h := newTestShardedHierarchy(2, 1, 2)
	_, err := New(h, guests).Run()
	if err == nil {
		t.Fatal("expected a determinism error for DMA overlapping a free-running target")
	}
}

// TestBlockParallelStallsMatch pins the per-thread stall attribution:
// under block parallelism the wait spans charged at wake time must be
// identical to serial, category by category.
func TestBlockParallelStallsMatch(t *testing.T) {
	const threads, coresPerShard, rounds = 12, 3, 4
	serial, _ := runMixed(t, threads, coresPerShard, 1, rounds)
	par, _ := runMixed(t, threads, coresPerShard, 4, rounds)
	for i := range serial.PerThread {
		for k := stats.StallKind(0); k < stats.NumStallKinds; k++ {
			if serial.PerThread[i][k] != par.PerThread[i][k] {
				t.Errorf("thread %d stall %v: serial %d, parallel %d",
					i, k, serial.PerThread[i][k], par.PerThread[i][k])
			}
		}
	}
}
