// Package engine is the execution-driven multiprocessor simulator. Guest
// threads are ordinary Go functions programmed against the Proc interface
// (the machine's ISA: loads, stores, WB/INV flavors, synchronization).
// Each guest runs as a coroutine (iter.Pull) whose operations are executed
// strictly one at a time by the scheduler, so simulation is fully
// deterministic: at every step the runnable thread with the smallest
// local clock executes its next operation (ties broken by thread ID), its
// latency is computed by the memory hierarchy, and the cycles are
// attributed to the paper's stall categories (INV, WB, lock, barrier,
// rest).
//
// Synchronization is served by the hwsync controller: threads that cannot
// be granted immediately are blocked, and grant times produced on release,
// barrier completion, or flag set wake them — no spinning over the network,
// matching Section III-D.
//
// The engine is event-driven (see DESIGN.md §10): guests deposit
// operations that return no value into a per-thread ring without waiting
// for execution and suspend only at loads, so the scheduler's hot loop is
// a heap pop, a ring pop, the hierarchy call, and a heap re-push. Control
// moves between a guest and the scheduler by direct coroutine switch —
// never through the Go scheduler, so there is no goroutine parking or
// wakeup anywhere on the hot path, and guest and scheduler never run
// concurrently. Blocked threads leave the run queue entirely; their wake
// is a grant event whose timestamp re-enters the heap, so when every core
// is quiescent the pop itself jumps global time directly to the earliest
// pending grant. Execution order is unchanged from the synchronous
// engine: the heap pops a unique (time, thread-ID) minimum, and a
// thread's clock is final before it is re-pushed, so the operation
// sequence — and therefore every result, event stream, and span — is
// byte-identical. When an external Scheduler is installed (litmus
// exploration), the engine falls back to the synchronous one-op
// rendezvous, which keeps candidate sets (pending ops included)
// observable at every decision point.
package engine

import (
	"context"
	"fmt"
	"iter"
	"sort"

	"repro/internal/hwsync"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Hierarchy is the memory-system interface the engine drives. Both the
// hardware-incoherent hierarchy (core package) and the MESI baseline (mesi
// package) implement it.
type Hierarchy interface {
	Load(core int, a mem.Addr) (mem.Word, int64)
	Store(core int, a mem.Addr, v mem.Word) int64
	LoadUncached(core int, a mem.Addr) (mem.Word, int64)
	StoreUncached(core int, a mem.Addr, v mem.Word) int64
	WB(core int, r mem.Range, lvl isa.Level) int64
	INV(core int, r mem.Range, lvl isa.Level) int64
	WBAll(core int, useMEB bool, lvl isa.Level) int64
	INVAll(core int, lazy bool, lvl isa.Level) int64
	WBCons(core int, r mem.Range, cons int) int64
	InvProd(core int, r mem.Range, prod int) int64
	WBConsAll(core, cons int) int64
	InvProdAll(core, prod int) int64
	SigPublish(core, ch int) int64
	INVSig(core, ch int) int64
	DMACopy(core int, dst mem.Addr, src mem.Range, toBlock int) int64
	EpochBoundary(core int)
	SyncCost(core, id int) int64
	Drain()
	Memory() *mem.Memory
	Traffic() stats.Traffic
	Counters() *stats.Counters
}

// Guest is one guest thread's program. The Proc passed in is only valid
// during the call and must not be used from other goroutines.
type Guest func(p Proc)

// Proc is the processor interface a guest thread programs against.
type Proc interface {
	// ID is the thread's ID (threads map 1:1 to cores).
	ID() int
	// NumThreads is the number of threads in the run.
	NumThreads() int

	// Load and Store are cacheable word accesses.
	Load(a mem.Addr) mem.Word
	Store(a mem.Addr, v mem.Word)
	// LoadU and StoreU are uncacheable word accesses.
	LoadU(a mem.Addr) mem.Word
	StoreU(a mem.Addr, v mem.Word)
	// Compute models local work of the given duration.
	Compute(cycles int64)

	// WB/INV operate on address ranges at the default level; the Global
	// forms are the WB_L3/INV_L2 instructions.
	WB(r mem.Range)
	INV(r mem.Range)
	WBGlobal(r mem.Range)
	INVGlobal(r mem.Range)

	// Whole-cache forms. WBAllMEB uses the Modified Entry Buffer when
	// valid; INVAllLazy arms the Invalidated Entry Buffer instead of
	// eagerly invalidating.
	WBAll()
	WBAllMEB()
	WBAllGlobal()
	INVAll()
	INVAllLazy()
	INVAllGlobal()

	// Level-adaptive instructions of Section V.
	WBCons(r mem.Range, cons int)
	InvProd(r mem.Range, prod int)
	WBConsAll(cons int)
	InvProdAll(prod int)

	// Bloom-signature operations (Ashby-style selective invalidation).
	SigPublish(ch int)
	INVSig(ch int)

	// DMACopy initiates a DMA transfer of src to the equal-length range
	// at dst, depositing the lines in block toBlock's L2 (Runnemede's
	// inter-block communication mechanism).
	DMACopy(dst mem.Addr, src mem.Range, toBlock int)

	// Synchronization, served by the shared-cache controller.
	Acquire(lock int)
	Release(lock int)
	Barrier(id int)
	FlagSet(id int, v int64)
	FlagWait(id int, threshold int64)
}

// EventKind classifies an observer event.
type EventKind int

const (
	// EvOp is a completed non-sync operation (its latency already
	// charged; Value carries the load result for load kinds). Compute
	// ops are not reported.
	EvOp EventKind = iota
	// EvSyncIssue is a synchronization op arriving at the controller,
	// before any grant. For barriers this is the arrival.
	EvSyncIssue
	// EvSyncDone is a blocking synchronization op completing: an
	// immediate or woken acquire/flag-wait grant, or a barrier release.
	// Posted ops (release, flag set) act entirely at issue and get no
	// done event.
	EvSyncDone
)

// Event is one step of the deterministic execution, as seen by an
// Observer. Events are emitted from the scheduler goroutine in execution
// order.
type Event struct {
	Kind   EventKind
	Thread int
	Op     isa.Op
	// Value is the result of a load (EvOp with a load kind).
	Value mem.Word
	// Time is the thread's local clock after the op (EvOp) or at
	// issue/grant (sync events).
	Time int64
}

// Observer receives the execution event stream. Calls are made serially
// from the scheduler goroutine; the observer must not retain the Event.
// The coherence oracle (internal/oracle) is the primary implementation.
type Observer interface {
	OnEvent(Event)
}

// DefaultNoProgressLimit is the livelock watchdog's default window: the
// number of consecutive scheduler events without a synchronization grant
// or thread completion after which the run is declared livelocked. Spin
// loops advance simulated time (they compute between probes), so time
// cannot distinguish a livelock from a long quiet phase — grants can.
// The default is generous enough that bench-scale sync-free compute
// phases never trip it.
//
// The window counts scheduler events, not simulated cycles, so
// fast-forwarding over quiescent stretches does not stretch the timeout:
// a grant that jumps time by a million cycles is still one progressed
// event, and a spin loop still burns one budget unit per operation no
// matter how much simulated time each probe charges.
const DefaultNoProgressLimit = 1 << 26

// LivelockError reports a run aborted by the no-progress watchdog.
type LivelockError struct {
	// Steps is the size of the no-progress window that fired.
	Steps int64
	// Blocked lists the threads parked in the controller at abort time.
	Blocked []int
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf("engine: livelock: %d scheduler steps without a sync grant or thread completion (threads %v blocked)",
		e.Steps, e.Blocked)
}

// ErrorKind labels the failure for the runner's error taxonomy.
func (e *LivelockError) ErrorKind() string { return "livelock" }

// Result is the outcome of a run.
type Result struct {
	// Cycles is the parallel execution time: the max over threads of
	// their finish time.
	Cycles int64
	// PerThread holds each thread's stall breakdown.
	PerThread []stats.Stalls
	// Stalls is the sum over threads.
	Stalls stats.Stalls
	// Traffic is the hierarchy's flit counts at the end of the run.
	Traffic stats.Traffic
	// Ops counts executed operations by kind.
	Ops [isa.NumOpKinds]int64
}

// Engine drives one run.
type Engine struct {
	h      Hierarchy
	ctrl   *hwsync.Controller
	tstore []thread // contiguous thread arena; ts points into it
	ts     []*thread
	rq     runq
	obs    Observer
	rec    *obs.Recorder

	// par is non-nil while the block-parallel executor is active; wake
	// then routes grants to the woken thread's shard queue (see
	// blockpar.go).
	par *parGroup

	// pipelined selects the event-driven protocol (guests deposit ops
	// asynchronously); it is the default. Installing a Scheduler switches
	// to the synchronous rendezvous, whose per-decision candidate sets
	// include every runnable thread's pending op.
	pipelined bool

	// sched, when non-nil, replaces the default scheduling policy (see
	// sched.go); cands is its reused candidate buffer and decision counts
	// the scheduling decisions taken.
	sched    Scheduler
	cands    []Candidate
	decision int64

	// NoProgressLimit overrides the livelock watchdog window when
	// positive (see DefaultNoProgressLimit). Set it before Run.
	NoProgressLimit int64

	// progressed is set whenever a sync grant is delivered or a thread
	// completes; the watchdog clears it each step.
	progressed bool
	stopped    bool
}

type thread struct {
	id      int
	guest   Guest
	time    int64
	stalls  stats.Stalls
	pipe    opPipe
	loadVal mem.Word // pending load result, read by the guest on resume
	// histHash is a rolling hash of every value delivered to the guest
	// in synchronous mode, maintained by reply. Together with the
	// pending op it pins the guest's continuation state for
	// StateFingerprint (see fingerprint.go).
	histHash uint64
	next     isa.Op // pending op, valid when state == ready (synchronous mode)
	cur      isa.Op // blocking sync op, valid while state == blocked
	state    tstate
	blockAt  int64           // time the blocking request was issued
	blockAs  stats.StallKind // category charged for the wait
	err      error
	// pipelined mirrors Engine.pipelined for the guest-side do(); set
	// before the guest coroutine starts.
	pipelined bool
	// Coroutine controls (iter.Pull over guestSeq). resume runs the guest
	// until its next yield, reporting false once it has returned; halt
	// unwinds a suspended guest (its pending yield returns false and do
	// raises the stop sentinel). yield is the guest-side handle, set when
	// the coroutine first runs. finished latches resume's false.
	resume   func() (struct{}, bool)
	halt     func()
	yield    func(struct{}) bool
	finished bool
	// pr is the guest-facing Proc, embedded here so it lives in the
	// thread arena instead of a per-thread heap allocation.
	pr proc
}

type tstate int

const (
	ready tstate = iota
	blocked
	done
)

// New builds an engine over hierarchy h for the given guests (one per
// core, in core order). Thread contexts live in one contiguous arena
// (structure-of-arrays layout indexed by dense thread id): a single
// allocation instead of one per thread, with the op rings embedded, so
// a 1024-core engine costs one slab plus the coroutine handles. The run
// queue backing store is preallocated to its maximum occupancy.
func New(h Hierarchy, guests []Guest) *Engine {
	e := &Engine{h: h, ctrl: hwsync.New(h.SyncCost)}
	e.tstore = make([]thread, len(guests))
	e.ts = make([]*thread, len(guests))
	for i, g := range guests {
		e.tstore[i] = thread{id: i, guest: g}
		e.ts[i] = &e.tstore[i]
	}
	e.rq.ts = make([]*thread, 0, len(guests))
	return e
}

// SetObserver installs the execution event observer (nil to disable).
// Call before Run; the observer adds one call per op to the hot loop, so
// it is off by default.
func (e *Engine) SetObserver(o Observer) { e.obs = o }

// SetRecorder installs the observability recorder (nil to disable, the
// default). When set, the engine advances the recorder's simulated clock
// each step and emits one span per stall attribution — the same
// (kind, cycles) pairs that land in Result.Stalls, so the recorder's
// per-kind totals reconcile exactly with the run result, including across
// fast-forwarded quiescent stretches (a woken thread's wait span covers
// exactly the skipped interval). Call before Run.
func (e *Engine) SetRecorder(r *obs.Recorder) { e.rec = r }

// Run executes all guests to completion and returns the run result. It is
// deterministic: identical guests over an identical hierarchy produce an
// identical result.
func (e *Engine) Run() (*Result, error) {
	return e.RunCtx(context.Background())
}

// ctxPollMask sets how often the step loop polls ctx: every 256 steps
// keeps cancellation latency in the microseconds without measurably
// slowing the hot loop.
const ctxPollMask = 255

// RunCtx is Run with cooperative preemption: the step loop polls ctx and
// aborts the run when it is canceled, unwinding every guest coroutine
// before returning (no guest outlives RunCtx, whatever the exit path). A
// no-progress watchdog likewise aborts runs that stop granting
// synchronization while still burning steps — the livelock shape (e.g. a
// spin loop whose flag store was lost) that the deadlock check cannot
// see. Simulation results are identical to Run's; cancellation and the
// watchdog only decide whether the run completes.
func (e *Engine) RunCtx(ctx context.Context) (*Result, error) {
	e.pipelined = e.sched == nil
	for _, t := range e.ts {
		t.pipelined = e.pipelined
		t.resume, t.halt = iter.Pull(guestSeq(t, len(e.ts)))
	}
	if e.pipelined {
		if sh, ok := e.h.(ShardedHierarchy); ok && e.obs == nil && e.rec == nil &&
			sh.ParallelShards() > 1 && len(e.ts) <= maxParThreads {
			return e.runBlockParallel(ctx, sh)
		}
		return e.runPipelined(ctx)
	}
	return e.runSynchronous(ctx)
}

// runPipelined is the event-driven scheduler loop. Every non-done,
// non-blocked thread is either in the run queue keyed by (local clock,
// ID) or held in hand as the current minimum; each iteration receives the
// minimum thread's next deposited op (already in its pipe unless the
// guest is still computing), executes it, and keeps the thread in hand
// while its advanced clock is still the global minimum — the common case
// under the default policy's 23% same-thread run length, and the case
// where the heap is skipped entirely. A pop that finds the guest's pipe
// closed retires the thread. Blocked threads re-enter the queue from
// wake(), timestamped at their grant — which is what makes a fully
// quiescent machine jump straight to the earliest pending event.
func (e *Engine) runPipelined(ctx context.Context) (*Result, error) {
	for _, t := range e.ts {
		e.rq.push(t)
	}
	res := &Result{PerThread: make([]stats.Stalls, len(e.ts))}
	limit := e.NoProgressLimit
	if limit <= 0 {
		limit = DefaultNoProgressLimit
	}
	stop := ctx.Done()
	var steps, idle int64
	t := e.rq.pop()
	for {
		if stop != nil && steps&ctxPollMask == 0 {
			select {
			case <-stop:
				e.shutdown()
				return nil, fmt.Errorf("engine: run canceled: %w", ctx.Err())
			default:
			}
		}
		steps++
		if t == nil {
			if e.allDone() {
				break
			}
			err := e.deadlockError()
			e.shutdown()
			return nil, err
		}
		op, ok := e.nextOp(t)
		runnable := false
		if !ok {
			t.state = done
			e.progressed = true
		} else {
			var err error
			if runnable, err = e.stepPipelined(t, op, res); err != nil {
				e.shutdown()
				return nil, err
			}
		}
		if e.progressed {
			e.progressed = false
			idle = 0
		} else if idle++; idle >= limit {
			err := &LivelockError{Steps: idle, Blocked: e.blockedIDs()}
			e.shutdown()
			return nil, err
		}
		if runnable {
			if m := e.rq.peek(); m != nil && runqLess(m, t) {
				t = e.rq.swapMin(t)
			}
		} else {
			t = e.rq.pop()
		}
	}
	return e.finish(res)
}

// runSynchronous is the rendezvous scheduler loop used under an external
// Scheduler: each step receives the chosen thread's op through a full
// guest round trip, so every runnable thread's pending op is known at
// every decision point.
func (e *Engine) runSynchronous(ctx context.Context) (*Result, error) {
	// Receive each thread's first op.
	for _, t := range e.ts {
		e.recvNext(t)
	}
	res := &Result{PerThread: make([]stats.Stalls, len(e.ts))}
	limit := e.NoProgressLimit
	if limit <= 0 {
		limit = DefaultNoProgressLimit
	}
	stop := ctx.Done()
	var steps, idle int64
	for {
		if stop != nil && steps&ctxPollMask == 0 {
			select {
			case <-stop:
				e.shutdown()
				return nil, fmt.Errorf("engine: run canceled: %w", ctx.Err())
			default:
			}
		}
		steps++
		t, serr := e.next()
		if serr != nil {
			e.shutdown()
			return nil, serr
		}
		if t == nil {
			if e.allDone() {
				break
			}
			err := e.deadlockError()
			e.shutdown()
			return nil, err
		}
		if err := e.step(t, res); err != nil {
			e.shutdown()
			return nil, err
		}
		if e.progressed {
			e.progressed = false
			idle = 0
		} else if idle++; idle >= limit {
			err := &LivelockError{Steps: idle, Blocked: e.blockedIDs()}
			e.shutdown()
			return nil, err
		}
	}
	return e.finish(res)
}

// finish folds per-thread outcomes into the result after a clean run.
func (e *Engine) finish(res *Result) (*Result, error) {
	for i, t := range e.ts {
		if t.err != nil {
			return nil, fmt.Errorf("engine: thread %d: %w", i, t.err)
		}
		res.PerThread[i] = t.stalls
		res.Stalls.Merge(&t.stalls)
		if t.time > res.Cycles {
			res.Cycles = t.time
		}
	}
	res.Traffic = e.h.Traffic()
	return res, nil
}

// nextOp returns thread t's next operation, resuming the guest coroutine
// when its ring is empty; ok is false once the guest has returned and its
// ring has drained. Resuming with an empty ring is what makes do's load
// protocol sound: every op the guest deposited before suspending —
// including the load whose value it is waiting for — has already
// executed.
func (e *Engine) nextOp(t *thread) (*isa.Op, bool) {
	for {
		if op, ok := t.pipe.tryPop(); ok {
			return op, true
		}
		if t.finished {
			return nil, false
		}
		if _, more := t.resume(); !more {
			t.finished = true
		}
	}
}

// shutdown unwinds every live guest coroutine: halt makes the guest's
// pending (or next) yield return false, which do converts into the stop
// sentinel, and the unwind runs to completion inside the halt call — no
// guest survives shutdown.
func (e *Engine) shutdown() {
	if e.stopped {
		return
	}
	e.stopped = true
	for _, t := range e.ts {
		if t.state == done {
			continue
		}
		t.halt()
		t.state = done
	}
}

// blockedIDs lists the threads parked in the controller, for error
// reports.
func (e *Engine) blockedIDs() []int {
	var ids []int
	for _, t := range e.ts {
		if t.state == blocked {
			ids = append(ids, t.id)
		}
	}
	sort.Ints(ids)
	return ids
}

func (e *Engine) allDone() bool {
	for _, t := range e.ts {
		if t.state != done {
			return false
		}
	}
	return true
}

func (e *Engine) deadlockError() error {
	var waiting []int
	for _, t := range e.ts {
		if t.state == blocked {
			waiting = append(waiting, t.id)
		}
	}
	sort.Ints(waiting)
	return fmt.Errorf("engine: deadlock: threads %v blocked in the synchronization controller (%v parked)",
		waiting, e.ctrl.Blocked())
}

// stepPipelined executes op for thread t, reporting whether t is still
// runnable (not blocked in the controller). Only load results are sent
// back to the guest; every other op was deposited fire-and-forget. A
// thread woken by its own op (the last barrier arrival) re-enters the
// run queue through wake and reports not-runnable here, so it is never
// both queued and in hand.
func (e *Engine) stepPipelined(t *thread, op *isa.Op, res *Result) (bool, error) {
	res.Ops[op.Kind]++
	if e.rec != nil {
		e.rec.SetNow(t.time)
	}
	if op.Kind.IsSync() {
		e.h.EpochBoundary(t.id)
		return e.stepSync(t, op)
	}
	val, err := e.execOp(t, op)
	if err != nil {
		return false, err
	}
	if op.Kind == isa.OpLoad || op.Kind == isa.OpLoadU {
		t.loadVal = val
	}
	return true, nil
}

// step executes thread t's pending op under the synchronous protocol.
func (e *Engine) step(t *thread, res *Result) error {
	op := &t.next
	res.Ops[op.Kind]++
	if e.rec != nil {
		e.rec.SetNow(t.time)
	}
	if op.Kind.IsSync() {
		e.h.EpochBoundary(t.id)
		runnable, err := e.stepSync(t, op)
		if err != nil {
			return err
		}
		if runnable {
			e.reply(t, 0)
		}
		return nil
	}
	val, err := e.execOp(t, op)
	if err != nil {
		return err
	}
	e.reply(t, val)
	return nil
}

// execOp performs a non-sync op against the hierarchy and charges its
// cycles: one issue slot of busy time plus the exposed latency under the
// op's stall category. It returns the loaded value for load kinds.
func (e *Engine) execOp(t *thread, op *isa.Op) (mem.Word, error) {
	var val mem.Word
	var lat int64
	var kind stats.StallKind
	switch op.Kind {
	case isa.OpLoad:
		val, lat = e.h.Load(t.id, op.Addr)
		kind = stats.MemStall
	case isa.OpStore:
		lat = e.h.Store(t.id, op.Addr, op.Value)
		kind = stats.MemStall
	case isa.OpLoadU:
		val, lat = e.h.LoadUncached(t.id, op.Addr)
		kind = stats.MemStall
	case isa.OpStoreU:
		lat = e.h.StoreUncached(t.id, op.Addr, op.Value)
		kind = stats.MemStall
	case isa.OpCompute:
		t.time += op.Cycles
		t.stalls.Add(stats.Busy, op.Cycles)
		if e.rec != nil {
			e.rec.Span(t.id, stats.Busy, t.time-op.Cycles, op.Cycles)
		}
		return 0, nil
	case isa.OpWB:
		lat = e.h.WB(t.id, op.Range, op.Level)
		kind = stats.WBStall
	case isa.OpINV:
		lat = e.h.INV(t.id, op.Range, op.Level)
		kind = stats.INVStall
	case isa.OpWBAll:
		lat = e.h.WBAll(t.id, op.UseMEB, op.Level)
		kind = stats.WBStall
	case isa.OpINVAll:
		lat = e.h.INVAll(t.id, op.Lazy, op.Level)
		kind = stats.INVStall
	case isa.OpWBCons:
		lat = e.h.WBCons(t.id, op.Range, op.Peer)
		kind = stats.WBStall
	case isa.OpInvProd:
		lat = e.h.InvProd(t.id, op.Range, op.Peer)
		kind = stats.INVStall
	case isa.OpWBConsAll:
		lat = e.h.WBConsAll(t.id, op.Peer)
		kind = stats.WBStall
	case isa.OpInvProdAll:
		lat = e.h.InvProdAll(t.id, op.Peer)
		kind = stats.INVStall
	case isa.OpDMACopy:
		lat = e.h.DMACopy(t.id, op.Addr, op.Range, op.Peer)
		kind = stats.MemStall
	case isa.OpSigPublish:
		lat = e.h.SigPublish(t.id, op.ID)
		kind = stats.WBStall
	case isa.OpINVSig:
		lat = e.h.INVSig(t.id, op.ID)
		kind = stats.INVStall
	default:
		return 0, fmt.Errorf("engine: thread %d issued unknown op %v", t.id, op)
	}
	cpi := int64(1)
	t.time += cpi + lat
	t.stalls.Add(stats.Busy, cpi)
	t.stalls.Add(kind, lat)
	if e.rec != nil {
		start := t.time - cpi - lat
		e.rec.Span(t.id, stats.Busy, start, cpi)
		e.rec.Span(t.id, kind, start+cpi, lat)
	}
	if e.obs != nil {
		e.obs.OnEvent(Event{Kind: EvOp, Thread: t.id, Op: *op, Value: val, Time: t.time})
	}
	return val, nil
}

// stepSync executes a synchronization op, blocking the thread when the
// controller cannot grant immediately. Shared by both protocols; the
// returned flag reports whether t may continue directly (true) or was
// either parked in the controller or re-entered through wake (false —
// barriers always resume via wake, even for the last arrival). How a
// woken thread resumes is wake's mode branch.
func (e *Engine) stepSync(t *thread, op *isa.Op) (bool, error) {
	if e.obs != nil {
		e.obs.OnEvent(Event{Kind: EvSyncIssue, Thread: t.id, Op: *op, Time: t.time})
	}
	switch op.Kind {
	case isa.OpAcquire:
		at, ok := e.ctrl.Acquire(t.id, op.ID, t.time)
		if !ok {
			e.block(t, op, stats.LockStall)
			return false, nil
		}
		t.stalls.Add(stats.LockStall, at-t.time)
		if e.rec != nil {
			e.rec.Span(t.id, stats.LockStall, t.time, at-t.time)
		}
		t.time = at
		e.granted(t, op, at)
		return true, nil
	case isa.OpRelease:
		// Posted: the releaser does not wait for the controller.
		grant, ok := e.ctrl.Release(t.id, op.ID, t.time)
		if ok {
			e.wake(grant)
		}
		return true, nil
	case isa.OpBarrier:
		grants := e.ctrl.BarrierArrive(t.id, op.ID, t.time, len(e.ts))
		e.block(t, op, stats.BarrierStall)
		// Last arrival: wake everyone, including this thread.
		for _, g := range grants {
			e.wake(g)
		}
		return false, nil
	case isa.OpFlagSet:
		grants := e.ctrl.FlagSet(t.id, op.ID, int64(op.Value), t.time)
		for _, g := range grants {
			e.wake(g)
		}
		return true, nil
	case isa.OpFlagWait:
		at, ok := e.ctrl.FlagWait(t.id, op.ID, int64(op.Value), t.time)
		if !ok {
			e.block(t, op, stats.FlagStall)
			return false, nil
		}
		t.stalls.Add(stats.FlagStall, at-t.time)
		if e.rec != nil {
			e.rec.Span(t.id, stats.FlagStall, t.time, at-t.time)
		}
		t.time = at
		e.granted(t, op, at)
		return true, nil
	default:
		return false, fmt.Errorf("engine: thread %d issued unknown sync op %v", t.id, op)
	}
}

// block parks t in the controller on op, recording what the eventual
// wait will be charged as.
func (e *Engine) block(t *thread, op *isa.Op, as stats.StallKind) {
	t.state = blocked
	t.cur = *op
	t.blockAt = t.time
	t.blockAs = as
	if e.par != nil {
		// Blocking happens only on the coordinator; the shard loses its
		// free-run eligibility until the thread is granted.
		e.par.shards[e.par.shardOf[t.id]].blocked++
	}
}

// granted records a completed blocking sync op: watchdog progress plus
// the observer's done event.
func (e *Engine) granted(t *thread, op *isa.Op, at int64) {
	e.progressed = true
	if e.obs != nil {
		e.obs.OnEvent(Event{Kind: EvSyncDone, Thread: t.id, Op: *op, Time: at})
	}
}

// wake unblocks a thread granted by the controller. All accounting —
// the wait span, the clock jump to the grant time, the done event —
// happens here, at grant creation, so the event stream and spans are
// identical whichever protocol resumes the thread.
func (e *Engine) wake(g hwsync.Grant) {
	t := e.ts[g.Thread]
	if t.state != blocked {
		panic(fmt.Sprintf("engine: grant for thread %d which is not blocked", g.Thread))
	}
	wait := g.At - t.blockAt
	if wait < 0 {
		wait = 0
	}
	t.stalls.Add(t.blockAs, wait)
	if e.rec != nil {
		e.rec.Span(t.id, t.blockAs, t.blockAt, wait)
	}
	t.time = g.At
	t.state = ready
	e.granted(t, &t.cur, g.At)
	switch {
	case e.par != nil:
		s := e.par.shards[e.par.shardOf[t.id]]
		s.blocked--
		s.rq.push(t)
	case e.pipelined:
		e.rq.push(t)
	default:
		e.reply(t, 0)
	}
}

// reply records the op's result for the guest and receives its next op
// (synchronous protocol only).
func (e *Engine) reply(t *thread, val mem.Word) {
	t.loadVal = val
	// The |1 bit makes every delivery change the hash (FNV-64a fixes 0
	// at 0), so the hash also counts how many ops have completed.
	t.histHash = mem.Mix64(t.histHash, uint64(val)<<1|1)
	e.recvNext(t)
}

// recvNext receives thread t's next op under the synchronous protocol,
// marking it done when the guest returns. Ready threads are found by
// scanning e.ts (see next), so the run queue stays unused in this mode.
func (e *Engine) recvNext(t *thread) {
	op, ok := e.nextOp(t)
	if !ok {
		t.state = done
		e.progressed = true
		return
	}
	t.next = *op
	t.state = ready
}

// stopSentinel is the panic value do() raises when the engine halts a
// thread during shutdown; guestSeq swallows it so preemption is not
// reported as a guest failure.
type stopSentinel struct{}

// guestSeq adapts one guest to a coroutine body for iter.Pull, with panic
// capture. The guest runs only while the scheduler is inside resume; a
// yield returning false (the scheduler called halt) unwinds it via the
// stop sentinel.
func guestSeq(t *thread, n int) iter.Seq[struct{}] {
	return func(yield func(struct{}) bool) {
		t.yield = yield
		defer func() {
			if r := recover(); r != nil {
				if _, stopped := r.(stopSentinel); stopped {
					return
				}
				t.err = fmt.Errorf("guest panic: %v", r)
			}
		}()
		t.pr = proc{t: t, n: n}
		t.guest(&t.pr)
	}
}

// proc implements Proc over the thread's op ring. In pipelined mode ops
// that return no value are deposited without suspending the guest —
// program order is preserved by the ring, and the scheduler executes at
// most one of this thread's ops at a time — while loads yield control
// until their value arrives. In synchronous mode every op is a full
// yield/resume rendezvous.
type proc struct {
	t *thread
	n int
}

func (p *proc) do(op isa.Op) mem.Word {
	t := p.t
	for !t.pipe.tryPush(op) {
		// Ring full: hand control back until the scheduler drains it.
		if !t.yield(struct{}{}) {
			panic(stopSentinel{})
		}
	}
	if t.pipelined {
		switch op.Kind {
		case isa.OpLoad, isa.OpLoadU:
			// A load suspends the guest. The scheduler resumes it only
			// once its ring is empty (see nextOp), by which point the
			// load has executed and left its value in loadVal.
		default:
			return 0
		}
	}
	if !t.yield(struct{}{}) {
		panic(stopSentinel{})
	}
	return t.loadVal
}

func (p *proc) ID() int         { return p.t.id }
func (p *proc) NumThreads() int { return p.n }

func (p *proc) Load(a mem.Addr) mem.Word {
	return p.do(isa.Op{Kind: isa.OpLoad, Addr: a})
}
func (p *proc) Store(a mem.Addr, v mem.Word) {
	p.do(isa.Op{Kind: isa.OpStore, Addr: a, Value: v})
}
func (p *proc) LoadU(a mem.Addr) mem.Word {
	return p.do(isa.Op{Kind: isa.OpLoadU, Addr: a})
}
func (p *proc) StoreU(a mem.Addr, v mem.Word) {
	p.do(isa.Op{Kind: isa.OpStoreU, Addr: a, Value: v})
}
func (p *proc) Compute(cycles int64) {
	if cycles <= 0 {
		return
	}
	p.do(isa.Op{Kind: isa.OpCompute, Cycles: cycles})
}

func (p *proc) WB(r mem.Range)       { p.do(isa.Op{Kind: isa.OpWB, Range: r}) }
func (p *proc) INV(r mem.Range)      { p.do(isa.Op{Kind: isa.OpINV, Range: r}) }
func (p *proc) WBGlobal(r mem.Range) { p.do(isa.Op{Kind: isa.OpWB, Range: r, Level: isa.LevelGlobal}) }
func (p *proc) INVGlobal(r mem.Range) {
	p.do(isa.Op{Kind: isa.OpINV, Range: r, Level: isa.LevelGlobal})
}

func (p *proc) WBAll()    { p.do(isa.Op{Kind: isa.OpWBAll}) }
func (p *proc) WBAllMEB() { p.do(isa.Op{Kind: isa.OpWBAll, UseMEB: true}) }
func (p *proc) WBAllGlobal() {
	p.do(isa.Op{Kind: isa.OpWBAll, Level: isa.LevelGlobal})
}
func (p *proc) INVAll()     { p.do(isa.Op{Kind: isa.OpINVAll}) }
func (p *proc) INVAllLazy() { p.do(isa.Op{Kind: isa.OpINVAll, Lazy: true}) }
func (p *proc) INVAllGlobal() {
	p.do(isa.Op{Kind: isa.OpINVAll, Level: isa.LevelGlobal})
}

func (p *proc) WBCons(r mem.Range, cons int) {
	p.do(isa.Op{Kind: isa.OpWBCons, Range: r, Peer: cons})
}
func (p *proc) InvProd(r mem.Range, prod int) {
	p.do(isa.Op{Kind: isa.OpInvProd, Range: r, Peer: prod})
}
func (p *proc) WBConsAll(cons int)  { p.do(isa.Op{Kind: isa.OpWBConsAll, Peer: cons}) }
func (p *proc) InvProdAll(prod int) { p.do(isa.Op{Kind: isa.OpInvProdAll, Peer: prod}) }

func (p *proc) DMACopy(dst mem.Addr, src mem.Range, toBlock int) {
	p.do(isa.Op{Kind: isa.OpDMACopy, Addr: dst, Range: src, Peer: toBlock})
}

func (p *proc) SigPublish(ch int) { p.do(isa.Op{Kind: isa.OpSigPublish, ID: ch}) }
func (p *proc) INVSig(ch int)     { p.do(isa.Op{Kind: isa.OpINVSig, ID: ch}) }

func (p *proc) Acquire(lock int) { p.do(isa.Op{Kind: isa.OpAcquire, ID: lock}) }
func (p *proc) Release(lock int) { p.do(isa.Op{Kind: isa.OpRelease, ID: lock}) }
func (p *proc) Barrier(id int)   { p.do(isa.Op{Kind: isa.OpBarrier, ID: id}) }
func (p *proc) FlagSet(id int, v int64) {
	p.do(isa.Op{Kind: isa.OpFlagSet, ID: id, Value: mem.Word(v)})
}
func (p *proc) FlagWait(id int, threshold int64) {
	p.do(isa.Op{Kind: isa.OpFlagWait, ID: id, Value: mem.Word(threshold)})
}
