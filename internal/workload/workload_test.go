package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestArrayAddressing(t *testing.T) {
	ar := mem.NewArena(4096)
	a := NewArray(ar, 100)
	if a.At(0) != a.Base {
		t.Error("At(0) should be the base")
	}
	if a.At(1)-a.At(0) != mem.WordBytes {
		t.Error("elements should be word-spaced")
	}
	r := a.Slice(10, 5)
	if r.Base != a.At(10) || r.Bytes != 5*mem.WordBytes {
		t.Errorf("Slice = %v", r)
	}
	if a.Whole().Bytes != 100*mem.WordBytes {
		t.Error("Whole covers the array")
	}
	if a.Slice(0, 0).Bytes != 0 {
		t.Error("empty slice should be empty")
	}
}

func TestArrayBoundsPanic(t *testing.T) {
	ar := mem.NewArena(4096)
	a := NewArray(ar, 10)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range At should panic")
		}
	}()
	a.At(10)
}

func TestChunkOfCoversAllItemsExactlyOnce(t *testing.T) {
	f := func(n8, t8 uint8) bool {
		n := int(n8%200) + 1
		threads := int(t8%32) + 1
		covered := make([]int, n)
		for th := 0; th < threads; th++ {
			lo, hi := ChunkOf(n, th, threads)
			if lo > hi || lo < 0 || hi > n {
				return false
			}
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChunksAreConsecutive(t *testing.T) {
	// OpenMP static chunk scheduling hands out consecutive runs in thread
	// order — the property Model 2's analysis depends on.
	f := func(n8, t8 uint8) bool {
		n := int(n8%200) + 1
		threads := int(t8%32) + 1
		next := 0
		for th := 0; th < threads; th++ {
			lo, hi := ChunkOf(n, th, threads)
			if lo != next && lo != hi { // empty chunks may collapse
				return false
			}
			if hi > next {
				next = hi
			}
		}
		return next == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOwnerOfMatchesChunkOf(t *testing.T) {
	f := func(n8, t8, i8 uint8) bool {
		n := int(n8%200) + 1
		threads := int(t8%32) + 1
		i := int(i8) % n
		owner := OwnerOf(n, i, threads)
		lo, hi := ChunkOf(n, owner, threads)
		return i >= lo && i < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCheckWord(t *testing.T) {
	m := mem.NewMemory()
	m.WriteWord(0x100, 5)
	if err := CheckWord(m, 0x100, 5, "x"); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	if err := CheckWord(m, 0x100, 6, "x"); err == nil {
		t.Error("mismatch should error")
	}
}
