// Package workload defines the common shape of the benchmark applications:
// a guest body written against the annotated shared-memory interface of
// Programming Model 1, plus the Table I pattern declaration and a
// self-verification function that checks the program's results in backing
// memory after the run drains. Verification is what makes the reproduction
// trustworthy: a configuration that omits a required WB or INV produces a
// detectably wrong answer, not just different timing.
package workload

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/annotate"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/oracle"
)

// Workload is one runnable application instance (problem size and address
// layout already fixed).
type Workload struct {
	// Name is the label used in figures ("fft", "lu-cont", ...).
	Name string
	// Threads is the number of guest threads (= cores used).
	Threads int
	// Pattern is the sharing knowledge handed to the annotator.
	Pattern annotate.Pattern
	// Main and Other are the Table I communication-pattern classification.
	Main, Other []string
	// Body is the per-thread program.
	Body annotate.App
	// Verify checks results against the sequential reference; memory must
	// have been drained first.
	Verify func(m *mem.Memory) error
}

// Guests lowers the workload to engine guests under configuration cfg.
func (w *Workload) Guests(cfg annotate.Config) []engine.Guest {
	return annotate.Guests(w.Threads, cfg, w.Pattern, w.Body)
}

// Run executes the workload on hierarchy h under cfg, drains, verifies,
// and returns the engine result.
func (w *Workload) Run(h engine.Hierarchy, cfg annotate.Config) (*engine.Result, error) {
	return w.RunChecked(context.Background(), h, cfg, nil)
}

// RunChecked is Run with cooperative cancellation and an optional
// coherence oracle: when orc is non-nil it observes the run's event
// stream, checks the final memory image after the drain, and any
// violation it found becomes the run's primary error (verification still
// runs and its failure is joined in).
func (w *Workload) RunChecked(ctx context.Context, h engine.Hierarchy, cfg annotate.Config, orc *oracle.Oracle) (*engine.Result, error) {
	return w.RunObserved(ctx, h, cfg, orc, nil)
}

// RunObserved is RunChecked with an optional observability recorder:
// when rec is non-nil the engine feeds it per-core stall spans and the
// hierarchy (if it supports attachment — see obs.Attach) its component
// metrics. Snapshots are the caller's to take afterwards.
func (w *Workload) RunObserved(ctx context.Context, h engine.Hierarchy, cfg annotate.Config, orc *oracle.Oracle, rec *obs.Recorder) (*engine.Result, error) {
	e := engine.New(h, w.Guests(cfg))
	if orc != nil {
		e.SetObserver(orc)
	}
	if rec != nil {
		e.SetRecorder(rec)
	}
	res, err := e.RunCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", w.Name, cfg.Name, err)
	}
	h.Drain()
	var errs []error
	if orc != nil {
		orc.CheckFinal(h.Memory())
		if cerr := orc.Err(); cerr != nil {
			errs = append(errs, fmt.Errorf("%s/%s: %w", w.Name, cfg.Name, cerr))
		}
	}
	if verr := w.Verify(h.Memory()); verr != nil {
		errs = append(errs, fmt.Errorf("%s/%s: verification: %w", w.Name, cfg.Name, verr))
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return res, nil
}

// Array is a word-array view over the simulated address space.
type Array struct {
	Base mem.Addr
	Len  int
}

// NewArray allocates n line-aligned words from ar.
func NewArray(ar *mem.Arena, n int) Array {
	return Array{Base: ar.AllocWords(n).Base, Len: n}
}

// At returns the address of element i.
func (a Array) At(i int) mem.Addr {
	if i < 0 || i >= a.Len {
		panic(fmt.Sprintf("workload: index %d out of [0,%d)", i, a.Len))
	}
	return a.Base + mem.Addr(i*mem.WordBytes)
}

// Slice returns the byte range covering elements [i, i+n).
func (a Array) Slice(i, n int) mem.Range {
	if n == 0 {
		return mem.Range{}
	}
	_ = a.At(i)
	_ = a.At(i + n - 1)
	return mem.WordRange(a.At(i), n)
}

// Whole returns the range covering the whole array.
func (a Array) Whole() mem.Range { return a.Slice(0, a.Len) }

// Chunk returns the [lo, hi) element range of thread t when Len elements
// are divided into nthreads consecutive chunks (OpenMP static chunk
// scheduling — the distribution Model 2's compiler analysis assumes).
func (a Array) Chunk(t, nthreads int) (lo, hi int) {
	return ChunkOf(a.Len, t, nthreads)
}

// ChunkOf splits n items into nthreads consecutive chunks and returns
// chunk t's bounds.
func ChunkOf(n, t, nthreads int) (lo, hi int) {
	per := (n + nthreads - 1) / nthreads
	lo = t * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// OwnerOf returns the thread owning item i under chunk distribution.
func OwnerOf(n, i, nthreads int) int {
	per := (n + nthreads - 1) / nthreads
	return i / per
}

// CheckWord compares one memory word against an expected value.
func CheckWord(m *mem.Memory, a mem.Addr, want mem.Word, what string) error {
	if got := m.ReadWord(a); got != want {
		return fmt.Errorf("%s: got %d, want %d (addr %#x)", what, got, want, uint32(a))
	}
	return nil
}
