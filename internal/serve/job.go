// Job lifecycle: a submitted sweep is queued, picked up by a worker,
// and finishes done or failed; a submit whose content address is
// already stored is born done. All job state is guarded by the server's
// mutex — jobs are small and the sweep work itself runs outside the
// lock.

package serve

// JobState is a job's lifecycle phase.
type JobState string

const (
	// JobQueued means the job is waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning means a worker is sweeping.
	JobRunning JobState = "running"
	// JobDone means the result bytes are ready.
	JobDone JobState = "done"
	// JobFailed means the sweep failed; Status.Error has the cause.
	JobFailed JobState = "failed"
)

// Job is one submitted sweep.
type Job struct {
	// ID addresses the job ("swp-000001").
	ID string
	// Tenant is the submitter's tenant label.
	Tenant string
	// Req is the normalized request.
	Req Request
	// Key is the request's content address.
	Key string

	// state, result, and progress are guarded by the server's mutex.
	state    JobState
	cacheHit bool
	errText  string
	result   []byte
	cells    []cellStatus
	done     int
	// doneCh closes when the job reaches a terminal state.
	doneCh chan struct{}
}

// cellStatus tracks one simulation cell's progress.
type cellStatus struct {
	Workload string `json:"workload"`
	Config   string `json:"config"`
	State    string `json:"state"` // "pending" or "done"
}

// Status is the wire form of a job's state (GET /v2/sweeps/{id}).
type Status struct {
	ID     string   `json:"id"`
	State  JobState `json:"state"`
	Suite  string   `json:"suite"`
	Scale  string   `json:"scale,omitempty"`
	Tenant string   `json:"tenant"`
	// Cache is "hit" when the result was served from the sweep store
	// without running, "miss" otherwise.
	Cache    string    `json:"cache"`
	Error    string    `json:"error,omitempty"`
	Progress *Progress `json:"progress,omitempty"`
}

// Progress is a simulation job's live per-cell progress, fed by the
// sweep's observability callback. Cells served from the cell-level
// cache jump straight to done when the job completes.
type Progress struct {
	Total int          `json:"total"`
	Done  int          `json:"done"`
	Cells []cellStatus `json:"cells,omitempty"`
}

// newJob builds a job in the queued state with its progress cells
// pre-populated from the request's predicted task list.
func newJob(id, tenant string, req Request, key string) *Job {
	j := &Job{
		ID: id, Tenant: tenant, Req: req, Key: key,
		state:  JobQueued,
		doneCh: make(chan struct{}),
	}
	for _, wc := range req.cells() {
		j.cells = append(j.cells, cellStatus{Workload: wc[0], Config: wc[1], State: "pending"})
	}
	return j
}

// status snapshots the job for the wire. Caller holds the server lock.
func (j *Job) status() Status {
	st := Status{
		ID: j.ID, State: j.state,
		Suite: j.Req.Suite, Scale: j.Req.Scale, Tenant: j.Tenant,
		Cache: "miss", Error: j.errText,
	}
	if j.cacheHit {
		st.Cache = "hit"
	}
	if len(j.cells) > 0 {
		p := &Progress{Total: len(j.cells), Done: j.done}
		p.Cells = append(p.Cells, j.cells...)
		st.Progress = p
	}
	return st
}

// markCell records one completed cell. Caller holds the server lock.
func (j *Job) markCell(workload, config string) {
	for i := range j.cells {
		c := &j.cells[i]
		if c.Workload == workload && c.Config == config && c.State != "done" {
			c.State = "done"
			j.done++
			return
		}
	}
}

// finish moves the job to a terminal state. Caller holds the server
// lock.
func (j *Job) finish(state JobState, result []byte, errText string) {
	j.state = state
	j.result = result
	j.errText = errText
	if state == JobDone {
		for i := range j.cells {
			j.cells[i].State = "done"
		}
		j.done = len(j.cells)
	}
	close(j.doneCh)
}
