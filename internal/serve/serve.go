// Package serve is sweep-as-a-service: an HTTP/JSON front end over the
// same experiment sweeps the CLIs run, with a bounded job queue,
// per-tenant concurrency limits, and a two-level content-addressed
// result cache.
//
//	POST /v2/sweeps            submit a Request; 202 queued, 200 done
//	                           (sweep-store hit), 429 over capacity
//	GET  /v2/sweeps/{id}       job status with live per-cell progress
//	GET  /v2/sweeps/{id}/result the document bytes, byte-identical to
//	                           the equivalent CLI -json invocation
//	GET  /v2/metrics           server counters as a hic-metrics/v1
//	                           snapshot (cache hits, rejections, jobs)
//	GET  /healthz              liveness
//
// Caching is content-addressed at two levels. The sweep store maps a
// normalized request's hash (which covers the code version) to the
// finished document bytes: a warm resubmit is answered at submit time
// with zero engine steps. The cell cache (hic.WithCache) shares
// individual simulation outcomes across jobs whose option sets agree,
// so overlapping requests — "intra" then "all", or per-workload slices
// of the same sweep — reuse each other's work. Determinism makes both
// levels exact: a hit returns the same bytes a fresh run would compute.
//
// Backpressure is explicit: a full queue or a tenant at its in-flight
// limit is refused with 429 and a Retry-After hint, never silently
// blocked, so clients can implement honest retry policies.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
)

// Config shapes a server.
type Config struct {
	// Workers is how many sweep jobs run concurrently (default 2).
	Workers int
	// QueueDepth bounds the submitted-but-not-finished backlog
	// (default 16); submits beyond it are refused with 429.
	QueueDepth int
	// PerTenant bounds one tenant's queued+running jobs (default 4).
	PerTenant int
	// Parallel is the per-sweep worker count (default GOMAXPROCS).
	Parallel int
	// Timeout bounds each individual simulation run (0 = none).
	Timeout time.Duration
	// CacheDir persists the sweep store across restarts ("" keeps it
	// in memory only).
	CacheDir string
}

// Server is the sweep service.
type Server struct {
	cfg   Config
	store *Store
	cells *runner.MemCache

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job
	inflight map[string]int
	seq      int

	// counters (guarded by mu)
	submitted, completed, failed  int64
	rejectedQueue, rejectedTenant int64

	queue  chan *Job
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// compute runs one request; tests stub it to control timing.
	compute func(ctx context.Context, req Request, env computeEnv) ([]byte, error)
}

// New builds a server and starts its workers; Close stops them.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.PerTenant <= 0 {
		cfg.PerTenant = 4
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.GOMAXPROCS(0)
	}
	store, err := NewStore(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		store:    store,
		cells:    runner.NewMemCache(),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]int),
		queue:    make(chan *Job, cfg.QueueDepth),
		ctx:      ctx,
		cancel:   cancel,
		compute: func(ctx context.Context, req Request, env computeEnv) ([]byte, error) {
			return req.compute(ctx, env)
		},
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close cancels running sweeps, refuses further submits, and waits for
// the workers to exit.
func (s *Server) Close() {
	s.cancel()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// worker drains the queue until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.run(job)
	}
}

// run executes one job end to end.
func (s *Server) run(job *Job) {
	s.mu.Lock()
	job.state = JobRunning
	s.mu.Unlock()

	env := computeEnv{
		Parallel: s.cfg.Parallel,
		Timeout:  s.cfg.Timeout,
		Cells:    s.cells,
		Observer: func(w, c string) {
			s.mu.Lock()
			job.markCell(w, c)
			s.mu.Unlock()
		},
	}
	data, err := s.compute(s.ctx, job.Req, env)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight[job.Tenant]--
	if err != nil {
		s.failed++
		job.finish(JobFailed, nil, err.Error())
		return
	}
	s.store.Put(job.Key, data)
	s.completed++
	job.finish(JobDone, data, "")
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v2/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v2/sweeps/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v2/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// TenantHeader names the submitting tenant; absent means "anonymous".
const TenantHeader = "X-Hic-Tenant"

// SubmitReply is the wire response to POST /v2/sweeps.
type SubmitReply struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Cache is "hit" when the sweep store answered at submit time.
	Cache string `json:"cache"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("request body: %v", err))
		return
	}
	if err := req.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = "anonymous"
	}
	key := req.Key()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	s.submitted++
	if data, ok := s.store.Get(key); ok {
		// Born done: the store already holds this address's bytes.
		job := newJob(s.nextID(), tenant, req, key)
		job.cacheHit = true
		job.finish(JobDone, data, "")
		s.jobs[job.ID] = job
		writeJSON(w, http.StatusOK, SubmitReply{ID: job.ID, State: JobDone, Cache: "hit"})
		return
	}
	if s.inflight[tenant] >= s.cfg.PerTenant {
		s.rejectedTenant++
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q at its in-flight limit (%d)", tenant, s.cfg.PerTenant))
		return
	}
	job := newJob(s.nextID(), tenant, req, key)
	select {
	case s.queue <- job:
	default:
		s.rejectedQueue++
		w.Header().Set("Retry-After", strconv.Itoa(1+len(s.queue)/s.cfg.Workers))
		writeError(w, http.StatusTooManyRequests, "queue full")
		return
	}
	s.jobs[job.ID] = job
	s.inflight[tenant]++
	writeJSON(w, http.StatusAccepted, SubmitReply{ID: job.ID, State: JobQueued, Cache: "miss"})
}

// nextID mints a job ID. Caller holds mu.
func (s *Server) nextID() string {
	s.seq++
	return fmt.Sprintf("swp-%06d", s.seq)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	var st Status
	if ok {
		st = job.status()
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	var state JobState
	var data []byte
	var errText string
	if ok {
		state, data, errText = job.state, job.result, job.errText
	}
	s.mu.Unlock()
	switch {
	case !ok:
		writeError(w, http.StatusNotFound, "unknown sweep")
	case state == JobFailed:
		writeError(w, http.StatusInternalServerError, errText)
	case state != JobDone:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Sprintf("sweep is %s; retry when done", state))
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	}
}

// handleMetrics exports the server's counters as a hic-metrics/v1
// snapshot, the same format the simulator's observability layer emits,
// so existing tooling (and the CI cache-hit gate) can read it.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	var queued, running int64
	for _, j := range s.jobs {
		switch j.state {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		}
	}
	snap := &obs.Snapshot{Schema: obs.MetricsSchema, Counters: map[string]int64{}}
	count := func(name string, v int64) {
		if v != 0 {
			snap.Counters[name] = v
		}
	}
	count("serve.store.hits", s.store.Hits())
	count("serve.store.misses", s.store.Misses())
	count("serve.store.entries", int64(s.store.Len()))
	count("serve.cells.hits", s.cells.Hits())
	count("serve.cells.misses", s.cells.Misses())
	count("serve.cells.entries", int64(s.cells.Len()))
	count("serve.jobs.submitted", s.submitted)
	count("serve.jobs.completed", s.completed)
	count("serve.jobs.failed", s.failed)
	count("serve.jobs.queued", queued)
	count("serve.jobs.running", running)
	count("serve.rejected.queue_full", s.rejectedQueue)
	count("serve.rejected.tenant_limit", s.rejectedTenant)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, snap)
}

// errorReply is the JSON error body.
type errorReply struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorReply{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
