// The sweep-level result store: canonical document bytes, addressed by
// the request's content hash. A hit at submit time answers the whole
// request without queueing a job — determinism makes the stored bytes
// exactly what a fresh run would produce for the same address.

package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
)

// keyPattern is the only shape a content address can take; it keeps
// directory-backed lookups from ever leaving the cache directory.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// Store holds document bytes by content address, in memory and
// optionally persisted to a directory (one <key>.json file per entry),
// with hit/miss accounting.
type Store struct {
	mu     sync.Mutex
	mem    map[string][]byte
	dir    string
	hits   int64
	misses int64
}

// NewStore returns a store persisting to dir ("" keeps entries in
// memory only). The directory is created if absent.
func NewStore(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: cache dir: %w", err)
		}
	}
	return &Store{mem: make(map[string][]byte), dir: dir}, nil
}

// Get returns the bytes stored under key and counts the hit or miss.
// Directory entries found on disk are promoted into memory.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if data, ok := s.mem[key]; ok {
		s.hits++
		return data, true
	}
	if s.dir != "" && keyPattern.MatchString(key) {
		if data, err := os.ReadFile(filepath.Join(s.dir, key+".json")); err == nil {
			s.mem[key] = data
			s.hits++
			return data, true
		}
	}
	s.misses++
	return nil, false
}

// Put stores data under key (and persists it when the store is
// directory-backed). Persistence failures are silent: the in-memory
// entry still serves this process, and the next process recomputes.
func (s *Store) Put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem[key] = data
	if s.dir == "" || !keyPattern.MatchString(key) {
		return
	}
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err == nil && tmp.Close() == nil {
		os.Rename(tmp.Name(), filepath.Join(s.dir, key+".json"))
	} else {
		tmp.Close()
		os.Remove(tmp.Name())
	}
}

// Hits returns how many Get calls found an entry.
func (s *Store) Hits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Misses returns how many Get calls found nothing.
func (s *Store) Misses() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.misses
}

// Len returns the number of in-memory entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}
