// The thin client: submit a request, honor the server's backpressure,
// poll until terminal, and fetch the result bytes. The five CLIs use it
// for their -server mode, which must emit exactly the bytes a local
// -json run would.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to a hicserve instance.
type Client struct {
	// BaseURL is the server root ("http://host:port").
	BaseURL string
	// Tenant is sent as the X-Hic-Tenant header when non-empty.
	Tenant string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
	// PollInterval is the status poll cadence (default 50ms).
	PollInterval time.Duration
}

// StatusError is a non-2xx server reply.
type StatusError struct {
	Code int
	// Message is the server's error text.
	Message string
	// RetryAfter is the server's backpressure hint (0 when absent).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

// do performs one request and decodes a JSON reply into out (skipped
// when out is nil). Non-2xx replies come back as *StatusError.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		se := &StatusError{Code: resp.StatusCode}
		var er errorReply
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			se.Message = er.Error
		} else {
			se.Message = strings.TrimSpace(string(data))
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
		return se
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts the request once. A 429 comes back as *StatusError with
// RetryAfter set; Run wraps Submit with the retry loop.
func (c *Client) Submit(ctx context.Context, req Request) (SubmitReply, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return SubmitReply{}, err
	}
	var reply SubmitReply
	if err := c.do(ctx, http.MethodPost, "/v2/sweeps", body, &reply); err != nil {
		return SubmitReply{}, err
	}
	return reply, nil
}

// Status fetches a job's state.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodGet, "/v2/sweeps/"+id, nil, &st)
	return st, err
}

// Result fetches a finished job's document bytes, verbatim.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v2/sweeps/"+id+"/result"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var er errorReply
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return nil, &StatusError{Code: resp.StatusCode, Message: msg}
	}
	return data, nil
}

// Wait polls until the job is terminal and returns its final status.
func (c *Client) Wait(ctx context.Context, id string) (Status, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State == JobDone || st.State == JobFailed {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// Run is the whole thin-client flow: submit (sleeping out 429
// backpressure per the server's Retry-After hint), wait, and fetch the
// result. A failed job returns its error text.
func (c *Client) Run(ctx context.Context, req Request) ([]byte, error) {
	var reply SubmitReply
	for {
		var err error
		reply, err = c.Submit(ctx, req)
		if err == nil {
			break
		}
		var se *StatusError
		if !isBusy(err, &se) {
			return nil, err
		}
		delay := se.RetryAfter
		if delay <= 0 {
			delay = time.Second
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("%w (last refusal: %v)", ctx.Err(), se)
		case <-time.After(delay):
		}
	}
	st, err := c.Wait(ctx, reply.ID)
	if err != nil {
		return nil, err
	}
	if st.State == JobFailed {
		return nil, fmt.Errorf("sweep %s failed: %s", reply.ID, st.Error)
	}
	return c.Result(ctx, reply.ID)
}

// isBusy reports whether err is a 429 refusal, extracting it into se.
func isBusy(err error, se **StatusError) bool {
	s, ok := err.(*StatusError)
	if !ok || s.Code != http.StatusTooManyRequests {
		return false
	}
	*se = s
	return true
}
