package serve

// End-to-end tests over httptest: the served bytes must be identical to
// what the local CLI code paths compute, warm resubmits must be
// answered from the sweep store without engine work, and the
// backpressure surface (429s, Retry-After, tenant limits) must behave
// as documented. Timing-sensitive queue tests stub the server's compute
// hook so a job blocks until the test releases it.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	hic "repro"
	"repro/internal/litmus"
	"repro/internal/obs"
	"repro/internal/overhead"
)

// newTestServer starts a server and an httptest front end, returning a
// client aimed at it.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, &Client{BaseURL: hs.URL, PollInterval: 2 * time.Millisecond}
}

// metricsCounter fetches one counter from GET /v2/metrics.
func metricsCounter(t *testing.T, c *Client, name string) int64 {
	t.Helper()
	resp, err := http.Get(c.BaseURL + "/v2/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != obs.MetricsSchema {
		t.Fatalf("metrics schema = %q, want %q", snap.Schema, obs.MetricsSchema)
	}
	return snap.Counters[name]
}

func TestServedIntraBytesEqualLocalAndWarmResubmitHits(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, Parallel: 1})
	ctx := context.Background()

	// The local reference: exactly what `intrablock -json` computes for
	// the same workload filter.
	res, err := hic.RunIntra(ctx, hic.ScaleTest, hic.WithParallel(1), hic.WithOnly("fft"))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.Document(hic.ScaleTest).Encode(&want); err != nil {
		t.Fatal(err)
	}

	req := Request{Suite: "intra", Scale: "test", Workloads: []string{"fft"}}
	got, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("served bytes differ from local compute:\nserved:\n%s\nlocal:\n%s", got, want.Bytes())
	}

	// Cold run: one store miss, no hits yet.
	if h, m := s.store.Hits(), s.store.Misses(); h != 0 || m != 1 {
		t.Fatalf("store hits/misses after cold run = %d/%d, want 0/1", h, m)
	}
	cellMisses := s.cells.Misses()
	if cellMisses == 0 {
		t.Fatal("cold run recorded no cell-cache misses (engine never ran?)")
	}

	// Warm resubmit: answered at submit time from the sweep store —
	// state done in the submit reply, zero additional engine work.
	reply, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if reply.State != JobDone || reply.Cache != "hit" {
		t.Fatalf("warm resubmit reply = %+v, want done/hit", reply)
	}
	again, err := c.Result(ctx, reply.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want.Bytes()) {
		t.Fatal("warm resubmit bytes differ from local compute")
	}
	if got := s.cells.Misses(); got != cellMisses {
		t.Fatalf("warm resubmit ran %d engine cells, want 0", got-cellMisses)
	}
	if got := metricsCounter(t, c, "serve.store.hits"); got < 1 {
		t.Fatalf("serve.store.hits = %d, want >= 1", got)
	}

	// The born-done job reports full progress and its cache provenance.
	st, err := c.Status(ctx, reply.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache != "hit" || st.State != JobDone {
		t.Fatalf("status = %+v, want done/hit", st)
	}
	wantCells := len(hic.IntraConfigs)
	if st.Progress == nil || st.Progress.Total != wantCells || st.Progress.Done != wantCells {
		t.Fatalf("progress = %+v, want %d/%d cells done", st.Progress, wantCells, wantCells)
	}
}

func TestServedLitmusAndOverheadBytesEqualLocal(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	t.Run("litmus", func(t *testing.T) {
		test, _ := litmus.SuiteTest("sb")
		cfg, _ := litmus.ConfigByName("Base")
		doc, err := litmus.SuiteDocument([]litmus.Test{test}, []litmus.Config{cfg}, litmus.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := doc.Encode(&want); err != nil {
			t.Fatal(err)
		}
		got, err := c.Run(ctx, Request{Suite: "litmus", Test: "sb", Config: "Base"})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatal("served litmus bytes differ from local compute")
		}
	})

	t.Run("overhead", func(t *testing.T) {
		var want bytes.Buffer
		if err := overhead.Compute(overhead.PaperMachine()).Document().Encode(&want); err != nil {
			t.Fatal(err)
		}
		got, err := c.Run(ctx, Request{Suite: "overhead"})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatal("served overhead bytes differ from local compute")
		}
	})
}

// stubCompute replaces the server's compute hook with one that blocks
// until release closes, so queue occupancy is test-controlled.
func stubCompute(s *Server, release <-chan struct{}) {
	s.compute = func(ctx context.Context, _ Request, _ computeEnv) ([]byte, error) {
		select {
		case <-release:
			return []byte("{}\n"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// litmusReq makes distinct valid requests (distinct content addresses)
// by varying the exploration budget.
func litmusReq(budget int) Request {
	return Request{Suite: "litmus", Test: "sb", Config: "Base", Budget: budget}
}

func TestQueueFullRefusesWithRetryAfter(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueDepth: 1, PerTenant: 8})
	release := make(chan struct{})
	stubCompute(s, release)
	ctx := context.Background()

	// First job occupies the worker, second fills the queue.
	r1, err := c.Submit(ctx, litmusReq(101))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, r1.ID, JobRunning)
	r2, err := c.Submit(ctx, litmusReq(102))
	if err != nil {
		t.Fatal(err)
	}

	// Third submit must be refused, not blocked.
	_, err = c.Submit(ctx, litmusReq(103))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: got %v, want 429", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("429 without a Retry-After hint: %+v", se)
	}
	if !strings.Contains(se.Message, "queue full") {
		t.Fatalf("429 message = %q, want queue-full diagnosis", se.Message)
	}
	if got := metricsCounter(t, c, "serve.rejected.queue_full"); got != 1 {
		t.Fatalf("serve.rejected.queue_full = %d, want 1", got)
	}

	close(release)
	for _, id := range []string{r1.ID, r2.ID} {
		if st, err := c.Wait(ctx, id); err != nil || st.State != JobDone {
			t.Fatalf("job %s: state %v err %v, want done", id, st.State, err)
		}
	}
}

func TestPerTenantLimit(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueDepth: 16, PerTenant: 1})
	release := make(chan struct{})
	stubCompute(s, release)
	ctx := context.Background()

	alice := &Client{BaseURL: c.BaseURL, Tenant: "alice", PollInterval: c.PollInterval}
	bob := &Client{BaseURL: c.BaseURL, Tenant: "bob", PollInterval: c.PollInterval}

	r1, err := alice.Submit(ctx, litmusReq(201))
	if err != nil {
		t.Fatal(err)
	}

	// Alice is at her in-flight limit; Bob is not affected by it.
	_, err = alice.Submit(ctx, litmusReq(202))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("tenant-limited submit: got %v, want 429", err)
	}
	if !strings.Contains(se.Message, `"alice"`) {
		t.Fatalf("429 message = %q, want the tenant named", se.Message)
	}
	r2, err := bob.Submit(ctx, litmusReq(202))
	if err != nil {
		t.Fatalf("other tenant refused: %v", err)
	}
	if got := metricsCounter(t, c, "serve.rejected.tenant_limit"); got != 1 {
		t.Fatalf("serve.rejected.tenant_limit = %d, want 1", got)
	}

	// Once Alice's job finishes her slot frees up.
	close(release)
	for _, id := range []string{r1.ID, r2.ID} {
		if st, err := c.Wait(ctx, id); err != nil || st.State != JobDone {
			t.Fatalf("job %s: state %v err %v, want done", id, st.State, err)
		}
	}
	if _, err := alice.Submit(ctx, litmusReq(203)); err != nil {
		t.Fatalf("post-completion submit refused: %v", err)
	}
}

// waitState polls until the job reaches state (or is already past it to
// done) so queue-occupancy tests don't race the worker pickup.
func waitState(t *testing.T, c *Client, id string, state JobState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == state || st.State == JobDone || st.State == JobFailed {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, state)
}

func TestHTTPErrorSurface(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	defer close(release)
	stubCompute(s, release)
	ctx := context.Background()

	t.Run("unknown-sweep-404", func(t *testing.T) {
		_, err := c.Status(ctx, "swp-999999")
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusNotFound {
			t.Fatalf("got %v, want 404", err)
		}
	})

	t.Run("result-before-done-409", func(t *testing.T) {
		reply, err := c.Submit(ctx, litmusReq(301))
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Result(ctx, reply.ID)
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusConflict {
			t.Fatalf("got %v, want 409", err)
		}
	})

	t.Run("invalid-request-400", func(t *testing.T) {
		for name, req := range map[string]Request{
			"unknown suite":            {Suite: "nonesuch"},
			"litmus params on sweep":   {Suite: "intra", K: 3},
			"sim params on litmus":     {Suite: "litmus", Scale: "test"},
			"overhead has no v1":       {Suite: "overhead", Version: "v1"},
			"unknown workload":         {Suite: "intra", Workloads: []string{"nonesuch"}},
			"manycore needs blocks":    {Suite: "manycore"},
			"blocks on intra":          {Suite: "intra", Blocks: 4},
			"enumerate excludes test":  {Suite: "litmus", Enumerate: true, Test: "sb"},
			"unknown litmus test":      {Suite: "litmus", Test: "nonesuch"},
			"unknown version spelling": {Suite: "intra", Version: "v3"},
		} {
			_, err := c.Submit(ctx, req)
			var se *StatusError
			if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
				t.Errorf("%s: got %v, want 400", name, err)
			}
		}
	})

	t.Run("unknown-field-400", func(t *testing.T) {
		resp, err := http.Post(c.BaseURL+"/v2/sweeps", "application/json",
			strings.NewReader(`{"suite":"intra","bogus":1}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("unknown field accepted: %d", resp.StatusCode)
		}
	})
}

func TestRequestKeyCanonicalization(t *testing.T) {
	key := func(r Request) string {
		t.Helper()
		if err := r.Normalize(); err != nil {
			t.Fatal(err)
		}
		return r.Key()
	}

	same := [][2]Request{
		{{Suite: "intra"}, {Suite: "intra", Scale: "test", Version: "v2"}},
		{
			{Suite: "intra", Workloads: []string{"fft", "barnes", "fft"}},
			{Suite: "intra", Workloads: []string{"barnes", "fft"}},
		},
		// K is inert without enumerate; manycore defaults its core count.
		{{Suite: "litmus", K: 7}, {Suite: "litmus"}},
		{{Suite: "manycore", Blocks: 2}, {Suite: "manycore", Blocks: 2, CoresPerBlock: 8}},
	}
	for _, pair := range same {
		if a, b := key(pair[0]), key(pair[1]); a != b {
			t.Errorf("equivalent requests hash differently:\n%+v\n%+v", pair[0], pair[1])
		}
	}

	base := key(Request{Suite: "intra"})
	for name, r := range map[string]Request{
		"suite":          {Suite: "inter"},
		"scale":          {Suite: "intra", Scale: "bench"},
		"version":        {Suite: "intra", Version: "v1"},
		"workloads":      {Suite: "intra", Workloads: []string{"fft"}},
		"coherence":      {Suite: "intra", Coherence: true},
		"metrics":        {Suite: "intra", Metrics: true},
		"block parallel": {Suite: "intra", BlockParallel: true},
		"seed":           {Suite: "intra", Seed: 1},
	} {
		if key(r) == base {
			t.Errorf("%s does not move the content address", name)
		}
	}
}

func TestComputeFailureIsNotCached(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1})
	boom := true
	s.compute = func(context.Context, Request, computeEnv) ([]byte, error) {
		if boom {
			return nil, fmt.Errorf("synthetic failure")
		}
		return []byte("{}\n"), nil
	}
	ctx := context.Background()

	reply, err := c.Submit(ctx, litmusReq(401))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, reply.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobFailed || !strings.Contains(st.Error, "synthetic failure") {
		t.Fatalf("status = %+v, want failed with the cause", st)
	}
	if _, err := c.Result(ctx, reply.ID); err == nil {
		t.Fatal("failed job served a result")
	}

	// The failure must not poison the store: a resubmit recomputes.
	boom = false
	data, err := c.Run(ctx, litmusReq(401))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{}\n" {
		t.Fatalf("resubmit after failure returned %q", data)
	}
	if got := metricsCounter(t, c, "serve.jobs.failed"); got != 1 {
		t.Fatalf("serve.jobs.failed = %d, want 1", got)
	}
}

func TestStorePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	_, c1 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	first, err := c1.Run(ctx, Request{Suite: "overhead"})
	if err != nil {
		t.Fatal(err)
	}

	// A fresh server over the same directory answers at submit time.
	s2, c2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	reply, err := c2.Submit(ctx, Request{Suite: "overhead"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Cache != "hit" || reply.State != JobDone {
		t.Fatalf("restarted server reply = %+v, want done/hit", reply)
	}
	data, err := c2.Result(ctx, reply.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, first) {
		t.Fatal("persisted bytes differ from the original run")
	}
	if s2.store.Hits() != 1 {
		t.Fatalf("restarted store hits = %d, want 1", s2.store.Hits())
	}
}
