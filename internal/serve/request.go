// The sweep request model: a normalized, validated description of one
// document-producing run (the same runs the CLIs perform), plus its
// content address and its local computation. Normalization is strict —
// fields that do not apply to the requested suite are rejected rather
// than ignored, so two requests that would compute identical bytes
// never hash to different addresses because of an inert field.

package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	hic "repro"
	"repro/internal/envelope"
	"repro/internal/faultinject"
	"repro/internal/litmus"
	"repro/internal/overhead"
	"repro/internal/runner"
)

// Request describes one sweep. The zero value is invalid: Suite is
// required, and Normalize must succeed before Key or the computation
// are meaningful.
type Request struct {
	// Suite selects what runs: "intra", "inter", "all", or "manycore"
	// (kind results), "litmus" (kind litmus), or "overhead" (kind
	// storage).
	Suite string `json:"suite"`
	// Scale is the problem scale ("test" or "bench"; default "test").
	// Simulation suites only.
	Scale string `json:"scale,omitempty"`
	// Version negotiates the envelope: "", "v2", or "hic/v2" for the
	// canonical v2 envelope, "v1" for the legacy per-kind layout
	// (rejected for kinds that predate no envelope, e.g. storage).
	Version string `json:"version,omitempty"`
	// Workloads restricts a simulation sweep to the named applications
	// (sorted and deduplicated by Normalize; unknown names are
	// rejected).
	Workloads []string `json:"workloads,omitempty"`
	// Coherence attaches the shadow-memory oracle to every run.
	Coherence bool `json:"coherence,omitempty"`
	// Metrics embeds per-run observability snapshots in the records.
	Metrics bool `json:"metrics,omitempty"`
	// BlockParallel runs each simulation on the block-parallel engine.
	BlockParallel bool `json:"block_parallel,omitempty"`
	// Faults is a deterministic fault plan (internal/faultinject
	// grammar), canonicalized by Normalize.
	Faults string `json:"faults,omitempty"`
	// Seed salts the content address (see hic.WithSeed).
	Seed int64 `json:"seed,omitempty"`
	// Blocks and CoresPerBlock shape the manycore sweep (suite
	// "manycore" only; CoresPerBlock defaults to 8).
	Blocks        int `json:"blocks,omitempty"`
	CoresPerBlock int `json:"cores_per_block,omitempty"`
	// Test and Config restrict the litmus suite matrix (suite "litmus"
	// only).
	Test   string `json:"test,omitempty"`
	Config string `json:"config,omitempty"`
	// Budget and MaxSchedules bound each litmus exploration (0 means
	// the explorer's defaults).
	Budget       int `json:"budget,omitempty"`
	MaxSchedules int `json:"max_schedules,omitempty"`
	// Swap selects the exhaustive adjacent-swap explorer instead of
	// DPOR.
	Swap bool `json:"swap,omitempty"`
	// Enumerate sweeps the systematic litmus enumeration up to K ops
	// instead of the curated suite.
	Enumerate bool `json:"enumerate,omitempty"`
	K         int  `json:"k,omitempty"`
}

// Kind is the envelope kind of the document the request produces.
func (r *Request) Kind() envelope.Kind {
	switch r.Suite {
	case "litmus":
		return envelope.KindLitmus
	case "overhead":
		return envelope.KindStorage
	default:
		return envelope.KindResults
	}
}

// simulation reports whether the suite runs the experiment sweeps (as
// opposed to the litmus explorer or the storage computation).
func (r *Request) simulation() bool {
	switch r.Suite {
	case "intra", "inter", "all", "manycore":
		return true
	}
	return false
}

// Normalize fills defaults, canonicalizes spellings, and validates; the
// request is ready for Key and computation afterward. Errors are safe
// to return to clients.
func (r *Request) Normalize() error {
	gen, err := envelope.Negotiate(r.Version)
	if err != nil {
		return err
	}
	if gen == envelope.V1 {
		if r.Kind().V1Schema() == "" {
			return fmt.Errorf("suite %s has no v1 layout (kind %s postdates the v2 envelope)", r.Suite, r.Kind())
		}
		r.Version = "v1"
	} else {
		r.Version = "v2"
	}

	switch {
	case r.simulation():
		if r.Scale == "" {
			r.Scale = "test"
		}
		if r.Scale != "test" && r.Scale != "bench" {
			return fmt.Errorf("unknown scale %q (want test or bench)", r.Scale)
		}
		if r.Suite == "manycore" {
			if r.Blocks < 1 {
				return fmt.Errorf("suite manycore requires blocks >= 1")
			}
			if r.CoresPerBlock == 0 {
				r.CoresPerBlock = hic.DefaultManycoreCoresPerBlock
			}
			if r.CoresPerBlock < 1 {
				return fmt.Errorf("cores_per_block %d: want at least 1", r.CoresPerBlock)
			}
		} else if r.Blocks != 0 || r.CoresPerBlock != 0 {
			return fmt.Errorf("blocks and cores_per_block apply to suite manycore only")
		}
		if r.Test != "" || r.Config != "" || r.Budget != 0 || r.MaxSchedules != 0 ||
			r.Swap || r.Enumerate || r.K != 0 {
			return fmt.Errorf("litmus parameters apply to suite litmus only")
		}
		if err := r.normalizeWorkloads(); err != nil {
			return err
		}
		if r.Faults != "" {
			plan, err := faultinject.Parse(r.Faults)
			if err != nil {
				return fmt.Errorf("faults: %w", err)
			}
			r.Faults = plan.String()
		}
	case r.Suite == "litmus":
		if err := r.rejectSimulationFields(); err != nil {
			return err
		}
		if r.Enumerate {
			if r.Test != "" {
				return fmt.Errorf("test applies to the curated suite, not -enumerate")
			}
			if r.K == 0 {
				r.K = 4
			}
			if r.K < 1 {
				return fmt.Errorf("k %d: want an op budget of at least 1", r.K)
			}
		} else {
			// K is inert without Enumerate; canonicalize instead of
			// branding equal computations with different addresses.
			r.K = 0
			if r.Test != "" {
				if _, ok := litmus.SuiteTest(r.Test); !ok {
					return fmt.Errorf("unknown litmus test %q", r.Test)
				}
			}
		}
		if r.Config != "" {
			if _, ok := litmus.ConfigByName(r.Config); !ok {
				return fmt.Errorf("unknown litmus config %q", r.Config)
			}
		}
		if r.Budget < 0 || r.MaxSchedules < 0 {
			return fmt.Errorf("budget and max_schedules must be non-negative")
		}
	case r.Suite == "overhead":
		if err := r.rejectSimulationFields(); err != nil {
			return err
		}
		if r.Test != "" || r.Config != "" || r.Budget != 0 || r.MaxSchedules != 0 ||
			r.Swap || r.Enumerate || r.K != 0 {
			return fmt.Errorf("litmus parameters apply to suite litmus only")
		}
	default:
		return fmt.Errorf("unknown suite %q (want intra, inter, all, manycore, litmus, or overhead)", r.Suite)
	}
	return nil
}

// rejectSimulationFields refuses sweep-only fields on non-simulation
// suites.
func (r *Request) rejectSimulationFields() error {
	if r.Scale != "" {
		return fmt.Errorf("scale applies to simulation suites only")
	}
	if len(r.Workloads) > 0 || r.Coherence || r.Metrics || r.BlockParallel ||
		r.Faults != "" || r.Seed != 0 || r.Blocks != 0 || r.CoresPerBlock != 0 {
		return fmt.Errorf("simulation parameters apply to suites intra, inter, all, and manycore only")
	}
	return nil
}

// normalizeWorkloads sorts, deduplicates, and validates the workload
// filter against the suite's applications.
func (r *Request) normalizeWorkloads() error {
	if len(r.Workloads) == 0 {
		r.Workloads = nil
		return nil
	}
	known := map[string]bool{}
	for _, n := range r.workloadNames() {
		known[n] = true
	}
	seen := map[string]bool{}
	var out []string
	for _, w := range r.Workloads {
		if !known[w] {
			return fmt.Errorf("unknown workload %q for suite %s", w, r.Suite)
		}
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Strings(out)
	r.Workloads = out
	return nil
}

// workloadNames lists the applications the suite can run.
func (r *Request) workloadNames() []string {
	var names []string
	s := r.scale()
	if r.Suite == "intra" || r.Suite == "all" {
		for _, w := range hic.IntraWorkloads(s) {
			names = append(names, w.Name)
		}
	}
	if r.Suite == "inter" || r.Suite == "all" {
		for _, w := range hic.InterWorkloads(s) {
			names = append(names, w.Name)
		}
	}
	if r.Suite == "manycore" {
		for _, w := range hic.ManycoreWorkloads(s, r.CoresPerBlock) {
			names = append(names, w.Name)
		}
	}
	return names
}

func (r *Request) scale() hic.Scale {
	if r.Scale == "bench" {
		return hic.ScaleBench
	}
	return hic.ScaleTest
}

// keyEnvelope is what the content address hashes: the normalized
// request plus the code version, so a new simulator build never reuses
// old bytes.
type keyEnvelope struct {
	Request
	CodeVersion string `json:"code_version"`
}

// Key returns the request's content address: the hex SHA-256 of the
// canonical JSON of the normalized request and the code version.
// Tenant identity is deliberately absent — identical requests from
// different tenants share bytes.
func (r *Request) Key() string {
	b, err := json.Marshal(keyEnvelope{Request: *r, CodeVersion: runner.CodeVersion()})
	if err != nil {
		panic(fmt.Sprintf("serve: request marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// computeEnv is the server-side execution context of one request: the
// orchestration the tenant does not control.
type computeEnv struct {
	// Parallel and Timeout are the server's per-sweep worker count and
	// per-run bound.
	Parallel int
	Timeout  time.Duration
	// Cells is the shared cell-level result cache (nil disables it).
	Cells runner.Cache
	// Observer, when non-nil, receives each completed simulation cell
	// for live progress. It is not attached to block-parallel sweeps
	// (a recorder would degrade them to serial execution) and does not
	// fire for cells served from the cell cache.
	Observer func(workload, config string)
}

// options converts the request and environment to run options.
func (r *Request) options(env computeEnv) []hic.Option {
	opts := []hic.Option{
		hic.WithParallel(env.Parallel),
		hic.WithTimeout(env.Timeout),
	}
	if len(r.Workloads) > 0 {
		opts = append(opts, hic.WithOnly(r.Workloads...))
	}
	if r.Coherence {
		opts = append(opts, hic.WithCoherenceCheck())
	}
	if r.Metrics {
		opts = append(opts, hic.WithMetrics())
	}
	if r.BlockParallel {
		opts = append(opts, hic.WithBlockParallel())
	}
	if r.Faults != "" {
		opts = append(opts, hic.WithFaultPlan(r.Faults))
	}
	if r.Seed != 0 {
		opts = append(opts, hic.WithSeed(r.Seed))
	}
	if env.Cells != nil {
		opts = append(opts, hic.WithCache(env.Cells))
	}
	if env.Observer != nil && !r.BlockParallel {
		done := env.Observer
		opts = append(opts, hic.WithObserver(func(w, c string, _ *hic.Recorder) { done(w, c) }))
	}
	return opts
}

// compute runs the request locally and returns the canonical document
// bytes — exactly what the equivalent CLI invocation writes to stdout.
func (r *Request) compute(ctx context.Context, env computeEnv) ([]byte, error) {
	var buf bytes.Buffer
	switch {
	case r.simulation():
		doc, err := r.sweepDocument(ctx, env)
		if err != nil {
			return nil, err
		}
		if r.Version == "v1" {
			doc = doc.LegacyV1()
		}
		if err := doc.Encode(&buf); err != nil {
			return nil, err
		}
	case r.Suite == "litmus":
		doc, err := r.litmusDocument()
		if err != nil {
			return nil, err
		}
		if r.Version == "v1" {
			doc = doc.LegacyV1()
		}
		if err := doc.Encode(&buf); err != nil {
			return nil, err
		}
	default: // overhead
		if err := overhead.Compute(overhead.PaperMachine()).Document().Encode(&buf); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// sweepDocument runs the simulation suites.
func (r *Request) sweepDocument(ctx context.Context, env computeEnv) (*runner.Document, error) {
	s := r.scale()
	opts := r.options(env)
	switch r.Suite {
	case "intra":
		res, err := hic.RunIntra(ctx, s, opts...)
		if err != nil {
			return nil, err
		}
		return res.Document(s), nil
	case "inter":
		res, err := hic.RunInter(ctx, s, opts...)
		if err != nil {
			return nil, err
		}
		return res.Document(s), nil
	case "all":
		intra, err := hic.RunIntra(ctx, s, opts...)
		if err != nil {
			return nil, err
		}
		inter, err := hic.RunInter(ctx, s, opts...)
		if err != nil {
			return nil, err
		}
		return runner.Merge(intra.Document(s), inter.Document(s)), nil
	default: // manycore
		res, err := hic.RunManycore(ctx, s, hic.ManycoreBlockCounts(r.Blocks), r.CoresPerBlock, opts...)
		if err != nil {
			return nil, err
		}
		return res.Document(s), nil
	}
}

// litmusDocument runs the litmus suite or enumeration.
func (r *Request) litmusDocument() (*litmus.Document, error) {
	tests := litmus.Suite
	if r.Test != "" {
		t, _ := litmus.SuiteTest(r.Test) // validated by Normalize
		tests = []litmus.Test{t}
	}
	configs := litmus.Configs
	if r.Config != "" {
		c, _ := litmus.ConfigByName(r.Config)
		configs = []litmus.Config{c}
	}
	opts := litmus.Options{Budget: r.Budget, MaxSchedules: r.MaxSchedules}
	if r.Swap {
		opts.Algo = litmus.AlgoSwap
	}
	if r.Enumerate {
		return litmus.EnumerateDocument(configs, r.K, opts), nil
	}
	return litmus.SuiteDocument(tests, configs, opts)
}

// wantsWorkload mirrors the sweeps' Only filter.
func (r *Request) wantsWorkload(name string) bool {
	if len(r.Workloads) == 0 {
		return true
	}
	for _, w := range r.Workloads {
		if w == name {
			return true
		}
	}
	return false
}

// cells predicts the sweep's (workload, config) labels in task order,
// for per-cell progress. Non-simulation suites have no cells.
func (r *Request) cells() [][2]string {
	if !r.simulation() {
		return nil
	}
	s := r.scale()
	var out [][2]string
	if r.Suite == "intra" || r.Suite == "all" {
		for _, w := range hic.IntraWorkloads(s) {
			if !r.wantsWorkload(w.Name) {
				continue
			}
			for _, cfg := range hic.IntraConfigs {
				out = append(out, [2]string{w.Name, cfg.Name})
			}
		}
	}
	if r.Suite == "inter" || r.Suite == "all" {
		for _, w := range hic.InterWorkloads(s) {
			if !r.wantsWorkload(w.Name) {
				continue
			}
			for _, mode := range hic.InterModes {
				out = append(out, [2]string{w.Name, mode.String()})
			}
		}
	}
	if r.Suite == "manycore" {
		for _, w := range hic.ManycoreWorkloads(s, r.CoresPerBlock) {
			if !r.wantsWorkload(w.Name) {
				continue
			}
			for b := 1; b <= r.Blocks; b *= 2 {
				out = append(out, [2]string{w.Name, fmt.Sprintf("blocks-%d", b)})
			}
		}
		// The manycore sweep sorts its tasks by (workload, config) for
		// deterministic records; mirror it.
		sort.Slice(out, func(i, j int) bool {
			if out[i][0] != out[j][0] {
				return out[i][0] < out[j][0]
			}
			return out[i][1] < out[j][1]
		})
	}
	return out
}
