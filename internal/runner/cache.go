// Content-addressed result cache. The simulator is deterministic: a
// cell's outcome is a pure function of its workload, configuration,
// topology, scale, fault plan, seed, the result-affecting options, and
// the code that ran it. CellKey captures exactly that tuple and hashes
// its canonical JSON form, so two sweeps that would compute the same
// bytes share one content address — no matter how many workers ran
// them, in what order their flags were spelled, or in what order an
// options map was populated (json.Marshal sorts map keys).
//
// Orchestration options (worker count, timeouts, retries) are
// deliberately absent from the key: they cannot change a deterministic
// cell's outcome, only how fast it is computed.

package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"sync"
)

// CellKey identifies one simulation cell by everything that determines
// its outcome.
type CellKey struct {
	// Workload and Config are the cell's grid labels ("fft", "B+M+I").
	Workload string `json:"workload"`
	Config   string `json:"config"`
	// Topology names the machine the sweep builds ("intra", "inter",
	// "manycore/8" for 8 cores per block).
	Topology string `json:"topology"`
	// Scale is the problem scale ("test", "bench").
	Scale string `json:"scale"`
	// Faults is the canonical fault plan, empty for clean runs.
	Faults string `json:"faults,omitempty"`
	// Seed is the run's random seed. Current workloads are
	// deterministic and ignore it, but it participates in the address
	// so stochastic workloads can join the scheme without invalidating
	// the keying discipline.
	Seed int64 `json:"seed,omitempty"`
	// Options is the result-affecting option subset, as a string map
	// ("coherence", "metrics", "block_parallel", "recording").
	// json.Marshal sorts the keys, so insertion order cannot perturb
	// the hash.
	Options map[string]string `json:"options,omitempty"`
	// CodeVersion pins the address to the simulator build that computed
	// the outcome (see CodeVersion()); a new revision never reuses old
	// bytes.
	CodeVersion string `json:"code_version"`
}

// Hash returns the cell's content address: the hex SHA-256 of the key's
// canonical JSON encoding.
func (k CellKey) Hash() string {
	b, err := json.Marshal(k)
	if err != nil {
		// A struct of strings, an int64, and a string map cannot fail
		// to marshal.
		panic(fmt.Sprintf("runner: CellKey marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

var (
	codeVersionOnce sync.Once
	codeVersion     string
)

// CodeVersion identifies the simulator build for cache addressing: the
// VCS revision stamped into the binary (suffixed "+dirty" when the
// working tree was modified), the module version for released builds,
// or "unknown" when the build carries neither (go test binaries).
func CodeVersion() string {
	codeVersionOnce.Do(func() {
		codeVersion = "unknown"
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		switch {
		case rev != "":
			codeVersion = rev
			if modified == "true" {
				codeVersion += "+dirty"
			}
		case bi.Main.Version != "" && bi.Main.Version != "(devel)":
			codeVersion = bi.Main.Version
		}
	})
	return codeVersion
}

// Cache is consulted by sweep task bodies before they simulate: a hit
// returns the cell's outcome without building a hierarchy or stepping
// the engine. Implementations must be safe for concurrent use; cached
// outcomes are shared and must be treated as immutable by callers.
type Cache interface {
	// Get returns the outcome stored under key, if any.
	Get(key string) (*Outcome, bool)
	// Put stores a successful outcome under key.
	Put(key string, out *Outcome)
}

// MemCache is the in-memory Cache with hit/miss accounting.
type MemCache struct {
	mu     sync.Mutex
	m      map[string]*Outcome
	hits   int64
	misses int64
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache {
	return &MemCache{m: make(map[string]*Outcome)}
}

// Get returns the outcome stored under key and counts the hit or miss.
func (c *MemCache) Get(key string) (*Outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return out, ok
}

// Put stores out under key.
func (c *MemCache) Put(key string, out *Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = out
}

// Hits returns how many Get calls found an entry.
func (c *MemCache) Hits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses returns how many Get calls found nothing.
func (c *MemCache) Misses() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// Len returns the number of stored outcomes.
func (c *MemCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
