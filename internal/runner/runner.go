// Package runner is the parallel experiment orchestrator: it fans a set
// of independent (workload, config) simulation runs out across a worker
// pool and assembles the outcomes into a deterministically-ordered,
// key-addressable grid.
//
// The experiments in the root package are embarrassingly parallel — every
// run owns its own hierarchy, engine, and guest memory — but figure
// normalization (to HCC or Addr) used to depend on loop order. The grid
// decouples execution order from assembly order: cells are stored and
// looked up by (workload, config) key, so normalization reads the
// baseline cell explicitly no matter which run finished first, and serial
// and parallel sweeps produce identical results.
//
// Each run is wrapped with a per-run timeout and panic capture: a wedged
// or crashing guest fails its own cell with a labeled error instead of
// taking down (or hanging) the whole sweep. Failures carry a small error
// taxonomy (ErrorKind: panic, timeout, livelock, coherence, nil-outcome,
// canceled) that flows into the JSON records, and failures marked
// transient (currently timeouts, which depend on host load) can be
// retried with exponential backoff.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Options controls how a sweep executes.
type Options struct {
	// Parallel is the worker count; values <= 0 mean GOMAXPROCS.
	// Parallel == 1 runs the tasks serially in task order.
	Parallel int
	// Timeout bounds each individual run; 0 means no per-run timeout.
	// A run that exceeds it fails its cell with a TimeoutError. The
	// engine observes cancellation cooperatively (engine.RunCtx) and
	// stops its guest goroutines, so a timed-out cell releases its worker
	// without leaking; only a body wedged outside the engine step loop is
	// abandoned, after a grace period.
	Timeout time.Duration
	// Retries is how many times a cell whose failure is transient
	// (currently timeouts) is rerun before the failure sticks. 0 means
	// no retries.
	Retries int
	// RetryBackoff is the sleep before the first retry; it doubles on
	// each subsequent one. 0 means retry immediately.
	RetryBackoff time.Duration
}

// Workers returns the effective worker count for n tasks.
func (o Options) Workers(n int) int {
	w := o.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Task is one independent cell of a sweep: a labeled run body. The body
// must be self-contained (build its own hierarchy and workload instance)
// so tasks can execute concurrently; ctx is done when the run's timeout
// fires or the sweep is canceled.
type Task struct {
	// Workload and Config label the cell ("fft", "B+M+I"); together they
	// form the grid key.
	Workload, Config string
	// Run executes the cell and returns its outcome.
	Run func(ctx context.Context) (*Outcome, error)
}

// Outcome is what one run produces.
type Outcome struct {
	// Result is the engine's timing and traffic outcome.
	Result *engine.Result
	// GlobalWB and GlobalINV are the hierarchy's global line-operation
	// counts (inter-block runs only; zero otherwise).
	GlobalWB, GlobalINV int64
	// Metrics is the run's observability snapshot, when the sweep ran
	// with metrics enabled (nil otherwise). It flows into the cell's
	// RunRecord.
	Metrics *obs.Snapshot
	// Trace is the run's stall-span timeline for Chrome-trace export,
	// when the sweep ran with tracing enabled (nil otherwise).
	Trace *obs.Trace
	// Degraded names why a requested block-parallel execution silently
	// fell back to the serial engine ("fault-injection", "recorder",
	// "observer"); empty when sharding engaged or was never requested.
	// It flows into the cell's RunRecord as degraded_to_serial.
	Degraded string
}

// Cell is one completed grid entry.
type Cell struct {
	// Workload and Config echo the task labels.
	Workload, Config string
	// Outcome is the run's product; nil when Err is set.
	Outcome *Outcome
	// Err is the run's failure, labeled with the cell's workload and
	// config (timeouts and panics included).
	Err error
	// Wall is the host wall-clock duration of the run, across all
	// attempts.
	Wall time.Duration
	// Attempts is how many times the cell ran (1 unless transient
	// failures were retried).
	Attempts int
}

// PanicError is a guest panic captured by the orchestrator.
type PanicError struct {
	// Workload and Config label the run that panicked.
	Workload, Config string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s/%s: panic: %v", e.Workload, e.Config, e.Value)
}

// ErrorKind labels the failure for the error taxonomy.
func (e *PanicError) ErrorKind() string { return "panic" }

// TimeoutError reports a run that exceeded the per-run timeout.
type TimeoutError struct {
	// Workload and Config label the run that timed out.
	Workload, Config string
	// Timeout is the limit that fired.
	Timeout time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("%s/%s: run exceeded timeout %s", e.Workload, e.Config, e.Timeout)
}

// ErrorKind labels the failure for the error taxonomy.
func (e *TimeoutError) ErrorKind() string { return "timeout" }

// Transient marks timeouts as retryable: the simulator is deterministic,
// but its wall-clock budget is not — a loaded host can push a healthy
// run past the limit.
func (e *TimeoutError) Transient() bool { return true }

// NilOutcomeError reports a task body that returned neither an outcome
// nor an error — a bug in the task, surfaced instead of recorded as a
// silently-empty success.
type NilOutcomeError struct {
	// Workload and Config label the broken task.
	Workload, Config string
}

func (e *NilOutcomeError) Error() string {
	return fmt.Sprintf("%s/%s: task returned neither outcome nor error", e.Workload, e.Config)
}

// ErrorKind labels the failure for the error taxonomy.
func (e *NilOutcomeError) ErrorKind() string { return "nil-outcome" }

// ReproError reports a fuzz-campaign failure together with the shrunk
// program that reproduces it, rendered in the internal/litmus DSL. The
// repro text flows into the cell's RunRecord, so a failed fuzz cell in a
// hic-results/v1 or hic/v2 document is a self-contained regression test.
type ReproError struct {
	// Workload and Config label the failed fuzz cell.
	Workload, Config string
	// Repro is the shrunk program as a litmus-DSL composite literal.
	Repro string
	// Err is the underlying campaign failure.
	Err error
}

func (e *ReproError) Error() string {
	return fmt.Sprintf("%s/%s: %v\nshrunk repro:\n%s", e.Workload, e.Config, e.Err, e.Repro)
}

func (e *ReproError) Unwrap() error { return e.Err }

// ErrorKind labels the failure for the error taxonomy.
func (e *ReproError) ErrorKind() string { return "fuzz-repro" }

// ErrorKind classifies a cell failure for reporting: the error's own
// kind when it declares one (panic, timeout, livelock, coherence,
// nil-outcome), else a context-derived fallback, else "error". A nil
// error yields "".
func ErrorKind(err error) string {
	if err == nil {
		return ""
	}
	var k interface{ ErrorKind() string }
	if errors.As(err, &k) {
		return k.ErrorKind()
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "timeout"
	}
	if errors.Is(err, context.Canceled) {
		return "canceled"
	}
	return "error"
}

// transient reports whether a failure declares itself retryable.
func transient(err error) bool {
	var tr interface{ Transient() bool }
	return errors.As(err, &tr) && tr.Transient()
}

// Grid holds a completed sweep: every cell in task order, addressable by
// (workload, config) key. Iteration order is the task order regardless of
// which runs finished first.
type Grid struct {
	cells []Cell
	index map[[2]string]int
}

// Run executes tasks under opts and returns the completed grid. Cell i
// always corresponds to tasks[i]; with Parallel == 1 the tasks run
// serially in order. Canceling ctx fails the remaining cells with the
// context's error.
func Run(ctx context.Context, tasks []Task, opts Options) *Grid {
	g := &Grid{cells: make([]Cell, len(tasks)), index: make(map[[2]string]int, len(tasks))}
	for i, t := range tasks {
		g.index[[2]string{t.Workload, t.Config}] = i
	}
	workers := opts.Workers(len(tasks))
	if workers == 1 {
		for i := range tasks {
			g.cells[i] = runOne(ctx, tasks[i], opts)
		}
		return g
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				g.cells[i] = runOne(ctx, tasks[i], opts)
			}
		}()
	}
	for i := range tasks {
		next <- i
	}
	close(next)
	wg.Wait()
	return g
}

// bodyGrace is how long a canceled run's body gets to observe the
// cancellation and return before it is abandoned. The engine polls its
// context in the step loop, so a simulating body returns well within
// this; only a body wedged outside the engine can exhaust it.
const bodyGrace = 2 * time.Second

// runOne executes a single task with timeout, panic capture, and bounded
// retry of transient failures.
func runOne(parent context.Context, t Task, opts Options) Cell {
	cell := Cell{Workload: t.Workload, Config: t.Config}
	start := time.Now()
	for attempt := 0; ; attempt++ {
		cell.Attempts = attempt + 1
		cell.Outcome, cell.Err = runAttempt(parent, t, opts.Timeout)
		if cell.Err == nil || attempt >= opts.Retries || !transient(cell.Err) || parent.Err() != nil {
			break
		}
		if opts.RetryBackoff > 0 {
			select {
			case <-time.After(opts.RetryBackoff << attempt):
			case <-parent.Done():
			}
		}
	}
	cell.Wall = time.Since(start)
	return cell
}

// runAttempt is one execution of the task body.
func runAttempt(parent context.Context, t Task, timeout time.Duration) (*Outcome, error) {
	ctx := parent
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, timeout)
		defer cancel()
	}
	type outcome struct {
		out *Outcome
		err error
	}
	// finish maps a returned body outcome to the cell's result: nil+nil
	// is a task bug, and errors caused by our own cancellation collapse
	// to the timeout/canceled taxonomy.
	finish := func(o outcome) (*Outcome, error) {
		if o.err != nil {
			if timeout > 0 && errors.Is(o.err, context.DeadlineExceeded) {
				return nil, &TimeoutError{Workload: t.Workload, Config: t.Config, Timeout: timeout}
			}
			if errors.Is(o.err, context.Canceled) && parent.Err() != nil {
				return nil, fmt.Errorf("%s/%s: sweep canceled: %w", t.Workload, t.Config, context.Canceled)
			}
			return nil, o.err
		}
		if o.out == nil {
			return nil, &NilOutcomeError{Workload: t.Workload, Config: t.Config}
		}
		return o.out, nil
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: &PanicError{
					Workload: t.Workload, Config: t.Config,
					Value: p, Stack: debug.Stack(),
				}}
			}
		}()
		// Label the body's goroutines for CPU/goroutine profiles, so a
		// pprof capture of a sweep attributes samples to experiment cells.
		pprof.Do(ctx, pprof.Labels("workload", t.Workload, "config", t.Config), func(ctx context.Context) {
			out, err := t.Run(ctx)
			ch <- outcome{out, err}
		})
	}()
	select {
	case o := <-ch:
		return finish(o)
	case <-ctx.Done():
		// Give the body a grace period to observe the cancellation: the
		// engine stops its guests and returns, so the worker is not
		// leaked. A body that finished successfully in the race keeps its
		// success.
		timer := time.NewTimer(bodyGrace)
		defer timer.Stop()
		select {
		case o := <-ch:
			return finish(o)
		case <-timer.C:
		}
		if timeout > 0 && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, &TimeoutError{Workload: t.Workload, Config: t.Config, Timeout: timeout}
		}
		return nil, fmt.Errorf("%s/%s: sweep canceled: %w", t.Workload, t.Config, ctx.Err())
	}
}

// Cells returns every cell in task order.
func (g *Grid) Cells() []Cell { return g.cells }

// Get returns the cell for (workload, config), or nil if the sweep had no
// such task.
func (g *Grid) Get(workload, config string) *Cell {
	i, ok := g.index[[2]string{workload, config}]
	if !ok {
		return nil
	}
	return &g.cells[i]
}

// Result returns the engine result for (workload, config), or nil if the
// cell is absent or failed.
func (g *Grid) Result(workload, config string) *engine.Result {
	c := g.Get(workload, config)
	if c == nil || c.Outcome == nil {
		return nil
	}
	return c.Outcome.Result
}

// Err joins every cell failure in task order (nil if the sweep was fully
// successful). Cell errors are already labeled with their workload and
// config.
func (g *Grid) Err() error {
	var errs []error
	for i := range g.cells {
		if g.cells[i].Err != nil {
			errs = append(errs, g.cells[i].Err)
		}
	}
	return errors.Join(errs...)
}
