// Package runner is the parallel experiment orchestrator: it fans a set
// of independent (workload, config) simulation runs out across a worker
// pool and assembles the outcomes into a deterministically-ordered,
// key-addressable grid.
//
// The experiments in the root package are embarrassingly parallel — every
// run owns its own hierarchy, engine, and guest memory — but figure
// normalization (to HCC or Addr) used to depend on loop order. The grid
// decouples execution order from assembly order: cells are stored and
// looked up by (workload, config) key, so normalization reads the
// baseline cell explicitly no matter which run finished first, and serial
// and parallel sweeps produce identical results.
//
// Each run is wrapped with a per-run timeout and panic capture: a wedged
// or crashing guest fails its own cell with a labeled error instead of
// taking down (or hanging) the whole sweep.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/engine"
)

// Options controls how a sweep executes.
type Options struct {
	// Parallel is the worker count; values <= 0 mean GOMAXPROCS.
	// Parallel == 1 runs the tasks serially in task order.
	Parallel int
	// Timeout bounds each individual run; 0 means no per-run timeout.
	// A run that exceeds it fails its cell with a timeout error. The
	// engine is not preemptible, so the abandoned run's goroutines keep
	// executing until the guest finishes or deadlocks; the sweep itself
	// proceeds.
	Timeout time.Duration
}

// Workers returns the effective worker count for n tasks.
func (o Options) Workers(n int) int {
	w := o.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Task is one independent cell of a sweep: a labeled run body. The body
// must be self-contained (build its own hierarchy and workload instance)
// so tasks can execute concurrently; ctx is done when the run's timeout
// fires or the sweep is canceled.
type Task struct {
	// Workload and Config label the cell ("fft", "B+M+I"); together they
	// form the grid key.
	Workload, Config string
	// Run executes the cell and returns its outcome.
	Run func(ctx context.Context) (*Outcome, error)
}

// Outcome is what one run produces.
type Outcome struct {
	// Result is the engine's timing and traffic outcome.
	Result *engine.Result
	// GlobalWB and GlobalINV are the hierarchy's global line-operation
	// counts (inter-block runs only; zero otherwise).
	GlobalWB, GlobalINV int64
}

// Cell is one completed grid entry.
type Cell struct {
	// Workload and Config echo the task labels.
	Workload, Config string
	// Outcome is the run's product; nil when Err is set.
	Outcome *Outcome
	// Err is the run's failure, labeled with the cell's workload and
	// config (timeouts and panics included).
	Err error
	// Wall is the host wall-clock duration of the run.
	Wall time.Duration
}

// PanicError is a guest panic captured by the orchestrator.
type PanicError struct {
	// Workload and Config label the run that panicked.
	Workload, Config string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s/%s: panic: %v", e.Workload, e.Config, e.Value)
}

// TimeoutError reports a run that exceeded the per-run timeout.
type TimeoutError struct {
	// Workload and Config label the run that timed out.
	Workload, Config string
	// Timeout is the limit that fired.
	Timeout time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("%s/%s: run exceeded timeout %s", e.Workload, e.Config, e.Timeout)
}

// Grid holds a completed sweep: every cell in task order, addressable by
// (workload, config) key. Iteration order is the task order regardless of
// which runs finished first.
type Grid struct {
	cells []Cell
	index map[[2]string]int
}

// Run executes tasks under opts and returns the completed grid. Cell i
// always corresponds to tasks[i]; with Parallel == 1 the tasks run
// serially in order. Canceling ctx fails the remaining cells with the
// context's error.
func Run(ctx context.Context, tasks []Task, opts Options) *Grid {
	g := &Grid{cells: make([]Cell, len(tasks)), index: make(map[[2]string]int, len(tasks))}
	for i, t := range tasks {
		g.index[[2]string{t.Workload, t.Config}] = i
	}
	workers := opts.Workers(len(tasks))
	if workers == 1 {
		for i := range tasks {
			g.cells[i] = runOne(ctx, tasks[i], opts.Timeout)
		}
		return g
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				g.cells[i] = runOne(ctx, tasks[i], opts.Timeout)
			}
		}()
	}
	for i := range tasks {
		next <- i
	}
	close(next)
	wg.Wait()
	return g
}

// runOne executes a single task with timeout and panic capture. The task
// body runs in its own goroutine; on timeout the body is abandoned (the
// engine cannot be preempted) and the cell fails with a TimeoutError.
func runOne(parent context.Context, t Task, timeout time.Duration) Cell {
	cell := Cell{Workload: t.Workload, Config: t.Config}
	ctx := parent
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, timeout)
		defer cancel()
	}
	type outcome struct {
		out *Outcome
		err error
	}
	ch := make(chan outcome, 1)
	start := time.Now()
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: &PanicError{
					Workload: t.Workload, Config: t.Config,
					Value: p, Stack: debug.Stack(),
				}}
			}
		}()
		out, err := t.Run(ctx)
		ch <- outcome{out, err}
	}()
	select {
	case o := <-ch:
		cell.Outcome, cell.Err = o.out, o.err
	case <-ctx.Done():
		if timeout > 0 && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			cell.Err = &TimeoutError{Workload: t.Workload, Config: t.Config, Timeout: timeout}
		} else {
			cell.Err = fmt.Errorf("%s/%s: sweep canceled: %w", t.Workload, t.Config, ctx.Err())
		}
	}
	cell.Wall = time.Since(start)
	return cell
}

// Cells returns every cell in task order.
func (g *Grid) Cells() []Cell { return g.cells }

// Get returns the cell for (workload, config), or nil if the sweep had no
// such task.
func (g *Grid) Get(workload, config string) *Cell {
	i, ok := g.index[[2]string{workload, config}]
	if !ok {
		return nil
	}
	return &g.cells[i]
}

// Result returns the engine result for (workload, config), or nil if the
// cell is absent or failed.
func (g *Grid) Result(workload, config string) *engine.Result {
	c := g.Get(workload, config)
	if c == nil || c.Outcome == nil {
		return nil
	}
	return c.Outcome.Result
}

// Err joins every cell failure in task order (nil if the sweep was fully
// successful). Cell errors are already labeled with their workload and
// config.
func (g *Grid) Err() error {
	var errs []error
	for i := range g.cells {
		if g.cells[i].Err != nil {
			errs = append(errs, g.cells[i].Err)
		}
	}
	return errors.Join(errs...)
}
