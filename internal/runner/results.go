// JSON result schema. A sweep serializes to a Document: the figures it
// regenerated (normalized stacked bars), plus one RunRecord per cell with
// the raw cycle count, stall breakdown, traffic classes, global-operation
// counts, and host wall time. The document is machine-readable so CI can
// assert the paper's config-vs-config shapes (internal/shapecheck) instead
// of trusting eyeballed tables.
//
// Canonical form: Encode strips host wall times (the only
// nondeterministic field), so serial and parallel sweeps of the same
// experiment produce byte-identical output. EncodeTiming keeps them.

package runner

import (
	"encoding/json"
	"errors"
	"io"

	"repro/internal/envelope"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Document is the machine-readable outcome of one or more sweeps. The
// envelope pair (schema, kind) is defined once in internal/envelope;
// LegacyV1 converts a document back to the pre-envelope hic-results/v1
// layout for old consumers.
type Document struct {
	// Schema is envelope.SchemaV2 (or envelope.ResultsV1 for legacy
	// documents).
	Schema string `json:"schema"`
	// Kind is envelope.KindResults under the v2 envelope; empty in v1
	// documents.
	Kind envelope.Kind `json:"kind,omitempty"`
	// Scale names the problem scale the sweep ran at ("test", "bench").
	Scale string `json:"scale"`
	// Suite names what ran: "intra", "inter", or "all".
	Suite string `json:"suite"`
	// Figures are the regenerated paper figures.
	Figures []Figure `json:"figures"`
	// Runs holds one record per sweep cell, in task order.
	Runs []RunRecord `json:"runs"`
}

// Figure is the JSON form of a stats.Figure, with a stable identifier.
type Figure struct {
	// ID names the paper artifact ("figure9" ... "figure12").
	ID         string   `json:"id"`
	Title      string   `json:"title"`
	Categories []string `json:"categories"`
	Groups     []Group  `json:"groups"`
}

// Group is one application's bars.
type Group struct {
	Name string `json:"name"`
	Bars []Bar  `json:"bars"`
}

// Bar is one normalized stacked bar.
type Bar struct {
	Label    string    `json:"label"`
	Segments []float64 `json:"segments"`
	Total    float64   `json:"total"`
}

// RunRecord is one cell's raw metrics.
type RunRecord struct {
	Workload string `json:"workload"`
	Config   string `json:"config"`
	// Cycles is the simulated parallel execution time.
	Cycles int64 `json:"cycles,omitempty"`
	// Stalls is the cycle breakdown by stall category, summed over
	// threads.
	Stalls map[string]int64 `json:"stalls,omitempty"`
	// Traffic is the flit count by traffic class.
	Traffic map[string]int64 `json:"traffic,omitempty"`
	// GlobalWB and GlobalINV are the global line-operation counts
	// (inter-block runs only).
	GlobalWB  int64 `json:"global_wb,omitempty"`
	GlobalINV int64 `json:"global_inv,omitempty"`
	// WallMS is the host wall-clock time of the run in milliseconds. It
	// is the only nondeterministic field and is stripped by Encode.
	WallMS float64 `json:"wall_ms,omitempty"`
	// Error is the cell's failure, if any; ErrorKind classifies it
	// (panic, timeout, livelock, coherence, nil-outcome, canceled,
	// error).
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
	// Attempts is emitted only when transient-failure retries reran the
	// cell (values > 1).
	Attempts int `json:"attempts,omitempty"`
	// Repro is the shrunk litmus-DSL reproduction of a fuzz-repro
	// failure, making the record a self-contained regression test.
	Repro string `json:"repro,omitempty"`
	// DegradedToSerial names why a requested block-parallel execution
	// fell back to the serial engine ("fault-injection", "recorder",
	// "observer"); empty when sharding engaged or was never requested.
	DegradedToSerial string `json:"degraded_to_serial,omitempty"`
	// Metrics is the cell's observability snapshot when the sweep ran
	// with metrics enabled. It is deterministic (all values are
	// simulation-derived) and therefore survives canonical encoding.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// FigureJSON converts a stats.Figure under the given identifier.
func FigureJSON(id string, f *stats.Figure) Figure {
	out := Figure{ID: id, Title: f.Title, Categories: f.Categories}
	for _, g := range f.Groups {
		jg := Group{Name: g.Name}
		for _, b := range g.Bars {
			jg.Bars = append(jg.Bars, Bar{Label: b.Label, Segments: b.Segments, Total: b.Height()})
		}
		out.Groups = append(out.Groups, jg)
	}
	return out
}

// FigureByID returns the document's figure with the given ID, or nil.
func (d *Document) FigureByID(id string) *Figure {
	for i := range d.Figures {
		if d.Figures[i].ID == id {
			return &d.Figures[i]
		}
	}
	return nil
}

// Records converts the grid's cells to run records in task order.
func (g *Grid) Records() []RunRecord {
	recs := make([]RunRecord, 0, len(g.cells))
	for i := range g.cells {
		c := &g.cells[i]
		rec := RunRecord{
			Workload: c.Workload,
			Config:   c.Config,
			WallMS:   float64(c.Wall.Microseconds()) / 1000,
		}
		if c.Err != nil {
			rec.Error = c.Err.Error()
			rec.ErrorKind = ErrorKind(c.Err)
			var re *ReproError
			if errors.As(c.Err, &re) {
				rec.Repro = re.Repro
			}
		}
		if c.Attempts > 1 {
			rec.Attempts = c.Attempts
		}
		if c.Outcome != nil {
			rec.GlobalWB, rec.GlobalINV = c.Outcome.GlobalWB, c.Outcome.GlobalINV
			rec.Metrics = c.Outcome.Metrics
			rec.DegradedToSerial = c.Outcome.Degraded
			if r := c.Outcome.Result; r != nil {
				rec.Cycles = r.Cycles
				rec.Stalls = make(map[string]int64, int(stats.NumStallKinds))
				for k := stats.StallKind(0); k < stats.NumStallKinds; k++ {
					if v := r.Stalls[k]; v != 0 {
						rec.Stalls[k.String()] = v
					}
				}
				rec.Traffic = make(map[string]int64, int(stats.NumTrafficClasses))
				for cl := stats.TrafficClass(0); cl < stats.NumTrafficClasses; cl++ {
					if v := r.Traffic[cl]; v != 0 {
						rec.Traffic[cl.String()] = v
					}
				}
			}
		}
		recs = append(recs, rec)
	}
	return recs
}

// LegacyV1 returns a copy of the document in the hic-results/v1 layout
// for consumers that predate the v2 envelope: the kind discriminator
// and the per-run metrics snapshots (fields v1 never had) are stripped.
func (d *Document) LegacyV1() *Document {
	legacy := *d
	legacy.Schema = envelope.ResultsV1
	legacy.Kind = ""
	legacy.Runs = make([]RunRecord, len(d.Runs))
	copy(legacy.Runs, d.Runs)
	for i := range legacy.Runs {
		legacy.Runs[i].Metrics = nil
	}
	return &legacy
}

// Merge combines documents into one (suite "all"): figures and runs are
// concatenated in argument order; scale is taken from the first document.
func Merge(docs ...*Document) *Document {
	out := &Document{Schema: envelope.SchemaV2, Kind: envelope.KindResults, Suite: "all"}
	for i, d := range docs {
		if i == 0 {
			out.Scale = d.Scale
		}
		out.Figures = append(out.Figures, d.Figures...)
		out.Runs = append(out.Runs, d.Runs...)
	}
	return out
}

// Encode writes the document as indented canonical JSON: host wall times
// are stripped, so serial and parallel sweeps of the same experiment emit
// byte-identical output. The original document is not modified.
func (d *Document) Encode(w io.Writer) error {
	canon := *d
	canon.Runs = make([]RunRecord, len(d.Runs))
	copy(canon.Runs, d.Runs)
	for i := range canon.Runs {
		canon.Runs[i].WallMS = 0
	}
	return encode(w, &canon)
}

// EncodeTiming writes the document with host wall times included; the
// output is not deterministic across runs.
func (d *Document) EncodeTiming(w io.Writer) error { return encode(w, d) }

func encode(w io.Writer, d *Document) error {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Decode reads a document produced by Encode or EncodeTiming.
func Decode(r io.Reader) (*Document, error) {
	var d Document
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, err
	}
	return &d, nil
}
