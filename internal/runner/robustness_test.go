package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/oracle"
	"repro/internal/topo"
	"repro/internal/trace"
)

func TestNilOutcomeFailsCell(t *testing.T) {
	tasks := []Task{{
		Workload: "fft", Config: "Base",
		Run: func(ctx context.Context) (*Outcome, error) { return nil, nil },
	}}
	g := Run(context.Background(), tasks, Options{Parallel: 1})
	c := g.Get("fft", "Base")
	var ne *NilOutcomeError
	if c.Err == nil || !errors.As(c.Err, &ne) {
		t.Fatalf("err = %v, want NilOutcomeError", c.Err)
	}
	if ne.Workload != "fft" || ne.Config != "Base" {
		t.Errorf("error labeled %s/%s, want fft/Base", ne.Workload, ne.Config)
	}
	if ErrorKind(c.Err) != "nil-outcome" {
		t.Errorf("kind = %q, want nil-outcome", ErrorKind(c.Err))
	}
	if rec := g.Records()[0]; rec.ErrorKind != "nil-outcome" {
		t.Errorf("record kind = %q, want nil-outcome", rec.ErrorKind)
	}
}

func TestTransientRetryRecovers(t *testing.T) {
	var calls int32
	tasks := []Task{{
		Workload: "fft", Config: "Base",
		Run: func(ctx context.Context) (*Outcome, error) {
			if atomic.AddInt32(&calls, 1) == 1 {
				// Deterministic first-attempt timeout: wait for the
				// cancellation the runner will deliver.
				<-ctx.Done()
				return nil, ctx.Err()
			}
			return &Outcome{Result: &engine.Result{Cycles: 7}}, nil
		},
	}}
	g := Run(context.Background(), tasks, Options{
		Parallel: 1, Timeout: 20 * time.Millisecond,
		Retries: 2, RetryBackoff: time.Millisecond,
	})
	c := g.Get("fft", "Base")
	if c.Err != nil {
		t.Fatalf("retried cell failed: %v", c.Err)
	}
	if c.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", c.Attempts)
	}
	if c.Outcome == nil || c.Outcome.Result.Cycles != 7 {
		t.Errorf("outcome = %+v, want the second attempt's result", c.Outcome)
	}
	if rec := g.Records()[0]; rec.Attempts != 2 {
		t.Errorf("record attempts = %d, want 2", rec.Attempts)
	}
}

func TestRetriesAreBounded(t *testing.T) {
	var calls int32
	tasks := []Task{{
		Workload: "fft", Config: "Base",
		Run: func(ctx context.Context) (*Outcome, error) {
			atomic.AddInt32(&calls, 1)
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}}
	g := Run(context.Background(), tasks, Options{
		Parallel: 1, Timeout: 10 * time.Millisecond, Retries: 2,
	})
	c := g.Get("fft", "Base")
	var te *TimeoutError
	if !errors.As(c.Err, &te) {
		t.Fatalf("err = %v, want TimeoutError", c.Err)
	}
	if c.Attempts != 3 || atomic.LoadInt32(&calls) != 3 {
		t.Errorf("attempts = %d (calls %d), want 3", c.Attempts, calls)
	}
}

func TestNonTransientFailureIsNotRetried(t *testing.T) {
	var calls int32
	tasks := []Task{{
		Workload: "fft", Config: "Base",
		Run: func(ctx context.Context) (*Outcome, error) {
			atomic.AddInt32(&calls, 1)
			return nil, errors.New("verification: wrong answer")
		},
	}}
	g := Run(context.Background(), tasks, Options{Parallel: 1, Retries: 5})
	if atomic.LoadInt32(&calls) != 1 {
		t.Errorf("deterministic failure ran %d times, want 1", calls)
	}
	if c := g.Get("fft", "Base"); c.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", c.Attempts)
	}
}

func TestErrorKindTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{&PanicError{Workload: "w", Config: "c", Value: "boom"}, "panic"},
		{&TimeoutError{Workload: "w", Config: "c", Timeout: time.Second}, "timeout"},
		{&NilOutcomeError{Workload: "w", Config: "c"}, "nil-outcome"},
		{&engine.LivelockError{Steps: 9}, "livelock"},
		{&oracle.ViolationError{Total: 1}, "coherence"},
		{fmt.Errorf("wrapped: %w", &engine.LivelockError{Steps: 1}), "livelock"},
		{fmt.Errorf("wrapped: %w", context.Canceled), "canceled"},
		{fmt.Errorf("wrapped: %w", context.DeadlineExceeded), "timeout"},
		{errors.New("plain"), "error"},
	}
	for _, c := range cases {
		if got := ErrorKind(c.err); got != c.want {
			t.Errorf("ErrorKind(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// The invariant panics in cache, topo, and trace stay panics — they mark
// impossible configurations or corrupt inputs, not run outcomes — and the
// runner's job is to surface each as a labeled PanicError instead of
// crashing the sweep.
func TestInvariantPanicsSurfaceAsPanicErrors(t *testing.T) {
	corrupt := func() []byte {
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// A record with an impossible op kind after a valid header.
		return append(buf.Bytes(), bytes.Repeat([]byte{0xFF}, 128)...)
	}()

	cases := []struct {
		name string
		body func(ctx context.Context) (*Outcome, error)
		msg  string // substring of the panic value
	}{
		{
			name: "cache-bad-config",
			body: func(ctx context.Context) (*Outcome, error) {
				cache.New(cache.Config{Bytes: 100, Ways: 3})
				return nil, nil
			},
			msg: "cache:",
		},
		{
			// topo's own tiling panic (blockDims) is defensive depth:
			// meshDims only emits factorizations blockDims can tile, and
			// degenerate inputs die earlier in the noc mesh validation —
			// which is the construction-time panic actually reachable
			// through topo.NewCustom.
			name: "topo-invalid-machine",
			body: func(ctx context.Context) (*Outcome, error) {
				topo.NewCustom(0, 4, 1, topo.DefaultParams())
				return nil, nil
			},
			msg: "invalid mesh",
		},
		{
			name: "trace-corrupt-stream",
			body: func(ctx context.Context) (*Outcome, error) {
				r, err := trace.NewReader(bytes.NewReader(corrupt))
				if err != nil {
					return nil, err
				}
				// The replay guest panics on the corrupt record before it
				// touches the proc, so no engine is needed.
				trace.Replay(r)(nil)
				return nil, nil
			},
			msg: "trace:",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tasks := []Task{{Workload: c.name, Config: "Base", Run: c.body}}
			g := Run(context.Background(), tasks, Options{Parallel: 1})
			cell := g.Get(c.name, "Base")
			var pe *PanicError
			if cell.Err == nil || !errors.As(cell.Err, &pe) {
				t.Fatalf("err = %v, want PanicError", cell.Err)
			}
			if pe.Workload != c.name {
				t.Errorf("panic labeled %s, want %s", pe.Workload, c.name)
			}
			if !strings.Contains(fmt.Sprint(pe.Value), c.msg) {
				t.Errorf("panic value %v lacks %q", pe.Value, c.msg)
			}
			if ErrorKind(cell.Err) != "panic" {
				t.Errorf("kind = %q, want panic", ErrorKind(cell.Err))
			}
			if len(pe.Stack) == 0 {
				t.Error("panic stack not captured")
			}
		})
	}
}
