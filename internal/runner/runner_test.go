package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/envelope"
	"repro/internal/stats"
)

// fixedTask returns a task whose outcome is a pure function of its labels,
// so serial and parallel sweeps must agree exactly.
func fixedTask(workload, config string, cycles int64) Task {
	return Task{
		Workload: workload,
		Config:   config,
		Run: func(ctx context.Context) (*Outcome, error) {
			r := &engine.Result{Cycles: cycles}
			r.Stalls.Add(stats.Busy, cycles/2)
			r.Stalls.Add(stats.LockStall, cycles/4)
			r.Traffic.Add(stats.Linefill, cycles*3)
			return &Outcome{Result: r, GlobalWB: cycles % 7, GlobalINV: cycles % 5}, nil
		},
	}
}

func sweepTasks() []Task {
	var tasks []Task
	for _, w := range []string{"fft", "lu", "barnes"} {
		for i, c := range []string{"HCC", "Base", "B+M+I"} {
			tasks = append(tasks, fixedTask(w, c, int64(1000+100*i+len(w))))
		}
	}
	return tasks
}

func TestGridKeyedAssemblyOrderIndependent(t *testing.T) {
	tasks := sweepTasks()
	g := Run(context.Background(), tasks, Options{Parallel: 1})
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	if len(g.Cells()) != len(tasks) {
		t.Fatalf("got %d cells, want %d", len(g.Cells()), len(tasks))
	}
	// Cells land at their task's index and are addressable by key.
	for i, task := range tasks {
		c := g.Get(task.Workload, task.Config)
		if c == nil {
			t.Fatalf("missing cell %s/%s", task.Workload, task.Config)
		}
		if c != &g.Cells()[i] {
			t.Errorf("cell %s/%s not at task index %d", task.Workload, task.Config, i)
		}
	}
	if g.Get("fft", "nope") != nil || g.Get("nope", "HCC") != nil {
		t.Error("lookup of absent key should be nil")
	}
	if r := g.Result("lu", "Base"); r == nil || r.Cycles != 1102 {
		t.Errorf("Result(lu, Base) = %+v, want cycles 1102", r)
	}
}

func TestSerialAndParallelEmitIdenticalJSON(t *testing.T) {
	tasks := sweepTasks()
	doc := func(par int) []byte {
		g := Run(context.Background(), tasks, Options{Parallel: par})
		if err := g.Err(); err != nil {
			t.Fatal(err)
		}
		d := &Document{Schema: envelope.ResultsV1, Scale: "test", Suite: "intra", Runs: g.Records()}
		var buf bytes.Buffer
		if err := d.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := doc(1)
	for _, par := range []int{2, 4, 16} {
		if got := doc(par); !bytes.Equal(serial, got) {
			t.Errorf("parallel=%d JSON differs from serial:\nserial:\n%s\nparallel:\n%s", par, serial, got)
		}
	}
}

func TestTimeoutFailsOnlyItsCell(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	tasks := []Task{
		fixedTask("fft", "HCC", 1000),
		{
			Workload: "barnes", Config: "Base",
			Run: func(ctx context.Context) (*Outcome, error) {
				<-release // wedged guest: never finishes on its own
				return nil, ctx.Err()
			},
		},
		fixedTask("lu", "B+M+I", 2000),
	}
	g := Run(context.Background(), tasks, Options{Parallel: 2, Timeout: 20 * time.Millisecond})
	c := g.Get("barnes", "Base")
	var te *TimeoutError
	if c.Err == nil || !errors.As(c.Err, &te) {
		t.Fatalf("wedged cell error = %v, want TimeoutError", c.Err)
	}
	if te.Workload != "barnes" || te.Config != "Base" {
		t.Errorf("timeout labeled %s/%s, want barnes/Base", te.Workload, te.Config)
	}
	if !strings.Contains(c.Err.Error(), "barnes/Base") {
		t.Errorf("timeout message %q lacks the cell label", c.Err.Error())
	}
	// The other cells completed normally and the sweep did not hang.
	for _, key := range [][2]string{{"fft", "HCC"}, {"lu", "B+M+I"}} {
		if c := g.Get(key[0], key[1]); c.Err != nil || c.Outcome == nil {
			t.Errorf("%s/%s should have succeeded: %v", key[0], key[1], c.Err)
		}
	}
	// The joined sweep error names exactly the failed cell.
	if err := g.Err(); err == nil || !strings.Contains(err.Error(), "barnes/Base") {
		t.Errorf("sweep error %v should name barnes/Base", err)
	}
}

func TestPanicIsCapturedWithLabels(t *testing.T) {
	tasks := []Task{
		fixedTask("fft", "HCC", 1000),
		{
			Workload: "raytrace", Config: "B+M",
			Run: func(ctx context.Context) (*Outcome, error) {
				panic("guest exploded")
			},
		},
	}
	g := Run(context.Background(), tasks, Options{Parallel: 2})
	c := g.Get("raytrace", "B+M")
	var pe *PanicError
	if c.Err == nil || !errors.As(c.Err, &pe) {
		t.Fatalf("panicking cell error = %v, want PanicError", c.Err)
	}
	if pe.Workload != "raytrace" || pe.Config != "B+M" {
		t.Errorf("panic labeled %s/%s, want raytrace/B+M", pe.Workload, pe.Config)
	}
	if fmt.Sprint(pe.Value) != "guest exploded" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	if !strings.Contains(c.Err.Error(), "raytrace/B+M") || !strings.Contains(c.Err.Error(), "guest exploded") {
		t.Errorf("panic message %q lacks label or value", c.Err.Error())
	}
	if c := g.Get("fft", "HCC"); c.Err != nil {
		t.Errorf("healthy cell failed: %v", c.Err)
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := Run(ctx, sweepTasks(), Options{Parallel: 2, Timeout: time.Minute})
	// Every task body observes a canceled context; fixedTask ignores ctx
	// and still succeeds — what matters is the sweep terminates. A task
	// that waits on ctx must fail with the cancellation, not hang.
	tasks := []Task{{
		Workload: "w", Config: "c",
		Run: func(ctx context.Context) (*Outcome, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}}
	g = Run(ctx, tasks, Options{Parallel: 1})
	if err := g.Err(); err == nil {
		t.Fatal("canceled sweep should report an error")
	}
}

func TestRecordsCarryMetricsAndErrors(t *testing.T) {
	tasks := []Task{
		fixedTask("jacobi", "Addr", 3000),
		{
			Workload: "cg", Config: "Addr+L",
			Run: func(ctx context.Context) (*Outcome, error) {
				return nil, errors.New("verification: element 3 = 7, want 9")
			},
		},
	}
	g := Run(context.Background(), tasks, Options{Parallel: 1})
	recs := g.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	ok := recs[0]
	if ok.Workload != "jacobi" || ok.Cycles != 3000 || ok.Error != "" {
		t.Errorf("good record wrong: %+v", ok)
	}
	if ok.Stalls["busy"] != 1500 || ok.Stalls["lock"] != 750 {
		t.Errorf("stall breakdown wrong: %v", ok.Stalls)
	}
	if ok.Traffic["linefill"] != 9000 {
		t.Errorf("traffic breakdown wrong: %v", ok.Traffic)
	}
	if ok.GlobalWB != 3000%7 || ok.GlobalINV != 3000%5 {
		t.Errorf("global ops wrong: %+v", ok)
	}
	if ok.WallMS < 0 {
		t.Errorf("wall time negative: %v", ok.WallMS)
	}
	bad := recs[1]
	if bad.Cycles != 0 || !strings.Contains(bad.Error, "verification") {
		t.Errorf("failed record wrong: %+v", bad)
	}
}

func TestEncodeStripsWallTimeAndRoundTrips(t *testing.T) {
	g := Run(context.Background(), sweepTasks(), Options{Parallel: 1})
	d := &Document{Schema: envelope.ResultsV1, Scale: "test", Suite: "intra", Runs: g.Records()}
	var canon, timed bytes.Buffer
	if err := d.Encode(&canon); err != nil {
		t.Fatal(err)
	}
	if err := d.EncodeTiming(&timed); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(canon.String(), "wall_ms") {
		t.Error("canonical encoding leaks wall_ms")
	}
	// Encode must not mutate the document itself.
	if d.Runs[0].WallMS == 0 {
		t.Skip("run finished in under 1µs; wall time legitimately zero")
	}
	back, err := Decode(bytes.NewReader(canon.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != envelope.ResultsV1 || len(back.Runs) != len(d.Runs) {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Runs[0].Cycles != d.Runs[0].Cycles {
		t.Errorf("round trip cycles = %d, want %d", back.Runs[0].Cycles, d.Runs[0].Cycles)
	}
}

func TestMergeAndFigureByID(t *testing.T) {
	a := &Document{Schema: envelope.ResultsV1, Scale: "test", Suite: "intra",
		Figures: []Figure{{ID: "figure9"}, {ID: "figure10"}},
		Runs:    []RunRecord{{Workload: "fft", Config: "HCC"}}}
	b := &Document{Schema: envelope.ResultsV1, Scale: "test", Suite: "inter",
		Figures: []Figure{{ID: "figure11"}, {ID: "figure12"}},
		Runs:    []RunRecord{{Workload: "ep", Config: "Addr"}}}
	m := Merge(a, b)
	if m.Suite != "all" || m.Scale != "test" {
		t.Errorf("merge header wrong: %+v", m)
	}
	if len(m.Figures) != 4 || len(m.Runs) != 2 {
		t.Errorf("merge lost content: %d figures, %d runs", len(m.Figures), len(m.Runs))
	}
	if f := m.FigureByID("figure12"); f == nil || f.ID != "figure12" {
		t.Error("FigureByID(figure12) failed")
	}
	if m.FigureByID("figure99") != nil {
		t.Error("FigureByID of absent id should be nil")
	}
}

func TestWorkersClamping(t *testing.T) {
	cases := []struct {
		opts Options
		n    int
		want int
	}{
		{Options{Parallel: 8}, 3, 3},
		{Options{Parallel: 2}, 10, 2},
		{Options{Parallel: 1}, 0, 1},
	}
	for _, c := range cases {
		if got := c.opts.Workers(c.n); got != c.want {
			t.Errorf("Workers(%+v, %d) = %d, want %d", c.opts, c.n, got, c.want)
		}
	}
	if got := (Options{}).Workers(64); got < 1 {
		t.Errorf("default Workers = %d, want >= 1", got)
	}
}
