package runner

import "testing"

func baseKey() CellKey {
	return CellKey{
		Workload: "fft", Config: "B+M+I",
		Topology: "intra", Scale: "test",
		Faults: "", Seed: 0,
		Options:     map[string]string{"coherence": "1", "metrics": "1"},
		CodeVersion: "abc123",
	}
}

func TestCellKeyHashStable(t *testing.T) {
	if a, b := baseKey().Hash(), baseKey().Hash(); a != b {
		t.Errorf("identical keys hash differently: %s vs %s", a, b)
	}
}

// TestCellKeyHashIgnoresMapOrder populates the options map in two
// different insertion orders; json.Marshal's sorted keys must make the
// addresses identical.
func TestCellKeyHashIgnoresMapOrder(t *testing.T) {
	a := baseKey()
	a.Options = map[string]string{}
	a.Options["coherence"] = "1"
	a.Options["metrics"] = "1"
	a.Options["block_parallel"] = "1"
	b := baseKey()
	b.Options = map[string]string{}
	b.Options["block_parallel"] = "1"
	b.Options["metrics"] = "1"
	b.Options["coherence"] = "1"
	if a.Hash() != b.Hash() {
		t.Errorf("insertion order perturbed the hash: %s vs %s", a.Hash(), b.Hash())
	}
}

// TestCellKeyHashSeparatesFields flips each outcome-determining field in
// turn; every mutation must move the content address.
func TestCellKeyHashSeparatesFields(t *testing.T) {
	ref := baseKey().Hash()
	muts := map[string]func(*CellKey){
		"workload":     func(k *CellKey) { k.Workload = "lu" },
		"config":       func(k *CellKey) { k.Config = "HCC" },
		"topology":     func(k *CellKey) { k.Topology = "inter" },
		"scale":        func(k *CellKey) { k.Scale = "bench" },
		"faults":       func(k *CellKey) { k.Faults = "drop-wb@3" },
		"seed":         func(k *CellKey) { k.Seed = 7 },
		"options":      func(k *CellKey) { k.Options["block_parallel"] = "1" },
		"code_version": func(k *CellKey) { k.CodeVersion = "def456" },
	}
	for name, mut := range muts {
		k := baseKey()
		mut(&k)
		if k.Hash() == ref {
			t.Errorf("mutating %s did not change the hash", name)
		}
	}
}

func TestMemCacheAccounting(t *testing.T) {
	c := NewMemCache()
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache reported a hit")
	}
	out := &Outcome{}
	c.Put("k", out)
	got, ok := c.Get("k")
	if !ok || got != out {
		t.Fatal("stored outcome not returned")
	}
	if c.Hits() != 1 || c.Misses() != 1 || c.Len() != 1 {
		t.Errorf("accounting: hits=%d misses=%d len=%d, want 1/1/1", c.Hits(), c.Misses(), c.Len())
	}
}

func TestCodeVersionNonEmptyAndStable(t *testing.T) {
	v := CodeVersion()
	if v == "" {
		t.Fatal("CodeVersion is empty")
	}
	if v2 := CodeVersion(); v2 != v {
		t.Errorf("CodeVersion unstable: %q then %q", v, v2)
	}
}
