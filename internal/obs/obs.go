// Package obs is the observability layer: a zero-cost-when-disabled
// instrumentation recorder threaded through the simulated components
// (caches, entry buffers, NoC, memory, engine scheduler) plus two
// exporters — a deterministic hic-metrics/v1 JSON snapshot and Chrome
// trace_event output viewable in Perfetto.
//
// The design has two rules:
//
//  1. Disabled means nil. Every Recorder (and Counter/Hist/SpanTrack/
//     Track) method is safe on a nil receiver and returns immediately,
//     so an uninstrumented run carries exactly one pointer-is-nil test
//     per would-be hook — nothing is allocated and nothing is counted.
//     The overhead-guard benchmark (BenchmarkObsOverhead) and the CI
//     overhead-guard job pin this property.
//
//  2. Prefer snapshot-time collection. Components that already count
//     events for the experiments (cache hit/miss/eviction counters,
//     MEB/IEB counters, the stats.Counters protocol bag) are read once
//     at Snapshot time through registered collectors instead of paying
//     a hook per event. Hot-path hooks exist only where the data is not
//     otherwise recorded: per-core stall spans (engine), NoC latency and
//     flit-size histograms (noc), and MEB/IEB occupancy tracks (core).
//
// A Recorder belongs to one run (one experiment cell) and is used from
// that run's scheduler goroutine; counters and histograms use atomics so
// collectors may also be read concurrently, but the span and track rings
// are single-writer by construction.
package obs

import (
	"sort"
	"sync/atomic"

	"repro/internal/stats"
)

// Defaults for the bounded buffers. Per-kind stall totals and occupancy
// high-water marks stay exact regardless of capacity; the caps only bound
// how much *timeline* is retained for trace export.
const (
	// DefaultSpanCap bounds the per-core stall-span ring.
	DefaultSpanCap = 1 << 14
	// DefaultTrackCap bounds each occupancy track's sample ring.
	DefaultTrackCap = 1 << 12
)

// Config sizes a Recorder's bounded buffers.
type Config struct {
	// SpanCap is the per-core stall-span capacity: 0 selects
	// DefaultSpanCap, negative keeps per-kind totals only (no stored
	// spans) — the right setting for metrics without trace export.
	SpanCap int
	// TrackCap is the per-track sample capacity: 0 selects
	// DefaultTrackCap, negative keeps high-water marks only.
	TrackCap int
}

// Recorder collects one run's instrumentation. The zero value is not
// useful; use New. A nil *Recorder is the disabled layer: every method
// is a no-op.
type Recorder struct {
	cfg Config
	now int64 // simulated clock, maintained by the engine via SetNow

	counters   map[string]*Counter
	hists      map[string]*Hist
	spans      []*SpanTrack // per core, grown on first use
	tracks     map[trackKey]*Track
	collectors []func(*Collect)
}

type trackKey struct {
	name string
	core int
}

// New returns an enabled recorder with the given buffer configuration.
func New(cfg Config) *Recorder {
	if cfg.SpanCap == 0 {
		cfg.SpanCap = DefaultSpanCap
	}
	if cfg.TrackCap == 0 {
		cfg.TrackCap = DefaultTrackCap
	}
	return &Recorder{
		cfg:      cfg,
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Hist),
		tracks:   make(map[trackKey]*Track),
	}
}

// Enabled reports whether the recorder records anything (i.e. is
// non-nil). Components may use it to skip building hook state.
func (r *Recorder) Enabled() bool { return r != nil }

// SetNow advances the recorder's view of the simulated clock. The engine
// calls it once per scheduler step so that component-side samples
// (occupancy tracks) carry simulation timestamps.
func (r *Recorder) SetNow(t int64) {
	if r == nil {
		return
	}
	r.now = t
}

// Now returns the last simulated time passed to SetNow.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return r.now
}

// Counter returns the named counter, creating it on first use. On a nil
// recorder it returns nil, and a nil *Counter's methods are no-ops, so
// components may resolve counters once at attach time and add blindly.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Hist returns the named histogram, creating it on first use (nil on a
// nil recorder; a nil *Hist is a no-op).
func (r *Recorder) Hist(name string) *Hist {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = new(Hist)
		r.hists[name] = h
	}
	return h
}

// Span records dur cycles of stall kind on core starting at start.
func (r *Recorder) Span(core int, kind stats.StallKind, start, dur int64) {
	if r == nil {
		return
	}
	r.SpanTrack(core).Add(kind, start, dur)
}

// SpanTrack returns core's span ring, growing the per-core table as
// needed (nil on a nil recorder).
func (r *Recorder) SpanTrack(core int) *SpanTrack {
	if r == nil {
		return nil
	}
	for core >= len(r.spans) {
		r.spans = append(r.spans, newSpanTrack(r.cfg.SpanCap))
	}
	return r.spans[core]
}

// Track returns the named per-core sample track, creating it on first
// use (nil on a nil recorder; a nil *Track is a no-op).
func (r *Recorder) Track(name string, core int) *Track {
	if r == nil {
		return nil
	}
	k := trackKey{name, core}
	t := r.tracks[k]
	if t == nil {
		t = &Track{Name: name, Core: core, cap: r.cfg.TrackCap}
		r.tracks[k] = t
	}
	return t
}

// Sample appends value v at the current simulated time to the named
// per-core track (convenience over Track().Sample()).
func (r *Recorder) Sample(name string, core int, v int64) {
	if r == nil {
		return
	}
	r.Track(name, core).Sample(r.now, v)
}

// OnCollect registers a snapshot-time collector: a closure that reads a
// component's existing counters into the snapshot. Collectors run in
// registration order each time Snapshot is called.
func (r *Recorder) OnCollect(f func(*Collect)) {
	if r == nil {
		return
	}
	r.collectors = append(r.collectors, f)
}

// Instrumentable is implemented by components (the two hierarchies)
// that can attach a recorder to their internals.
type Instrumentable interface{ SetObs(*Recorder) }

// Attach attaches r to h when h is Instrumentable and reports whether
// it did. It exists so callers holding an interface (engine.Hierarchy)
// can instrument without widening that interface and breaking every
// fake that implements it.
func Attach(h any, r *Recorder) bool {
	i, ok := h.(Instrumentable)
	if ok {
		i.SetObs(r)
	}
	return ok
}

// Counter is a single atomic event counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current count (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// sortedKeys returns m's keys in sorted order, for deterministic
// iteration at snapshot/export time.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
