package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTrace builds a small synthetic two-cell trace exercising every
// event type the exporter emits: process/thread metadata, coalesced
// stall spans, and occupancy counter tracks.
func goldenTrace() []CellTrace {
	r := New(Config{})
	r.Span(0, stats.Busy, 0, 60)
	r.Span(0, stats.Busy, 60, 40) // adjacent: coalesces with the span above
	r.Span(0, stats.WBStall, 100, 40)
	r.Span(1, stats.LockStall, 25, 75)
	r.SetNow(0)
	r.Sample("meb", 0, 0)
	r.SetNow(100)
	r.Sample("meb", 0, 3)
	r.SetNow(140)
	r.Sample("meb", 0, 0)

	r2 := New(Config{})
	r2.Span(0, stats.INVStall, 0, 12)
	return []CellTrace{
		{Workload: "fft", Config: "B+M+I", Trace: r.TraceData()},
		{Workload: "lu", Config: "Base", Trace: r2.TraceData()},
	}
}

func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenTrace()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome output drifted from golden (run with -update to regenerate):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWriteChromeWellFormed checks the structural contract Perfetto
// relies on: valid JSON, a traceEvents array, complete events with
// positive durations, and metadata naming every process and thread.
func TestWriteChromeWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenTrace()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var spans, meta, counters int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur <= 0 {
				t.Errorf("complete event %q has dur %d", ev.Name, ev.Dur)
			}
		case "M":
			meta++
		case "C":
			counters++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	// 4 spans (the adjacent busy pair coalesces into one), 3 counter
	// samples, and 2 process + 3 thread metadata events.
	if spans != 4 || counters != 3 || meta != 5 {
		t.Errorf("spans/counters/meta = %d/%d/%d, want 4/3/5", spans, counters, meta)
	}
}
