package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is one bucket per possible bit length of a non-negative
// int64 (1 through 63) plus bucket 0 for zero; bucket i counts values v
// with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i.
const histBuckets = 64

// Hist is a bounded power-of-two-bucket histogram: fixed storage, O(1)
// Observe, exact count/sum/max. It is the right shape for latency and
// message-size distributions where the interesting signal is the order
// of magnitude and the tail. Updates are atomic, so a snapshot may be
// taken while a run is still observing. A nil *Hist is a no-op.
type Hist struct {
	count, sum, max atomic.Int64
	buckets         [histBuckets]atomic.Int64
}

// Observe adds value v (negative values clamp to 0).
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistSnapshot is the exported form of a histogram: exact count, sum and
// max plus the bucket counts, trimmed at the last non-zero bucket.
// Buckets[i] counts observations v with bit length i (so bucket 0 is
// v==0 and bucket i covers [2^(i-1), 2^i)).
type HistSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Max     int64   `json:"max"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

func (h *Hist) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	last := -1
	for i := range h.buckets {
		if h.buckets[i].Load() != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = make([]int64, last+1)
		for i := 0; i <= last; i++ {
			s.Buckets[i] = h.buckets[i].Load()
		}
	}
	return s
}
