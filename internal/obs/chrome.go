package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// CellTrace pairs one experiment cell's identity with its retained
// timeline, for multi-cell Chrome export (one Perfetto process per
// cell).
type CellTrace struct {
	Workload string
	Config   string
	Trace    *Trace
}

// chromeEvent is one Chrome trace_event, JSON Object Format. Field order
// is fixed by the struct, so output is deterministic.
type chromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
	Cat  string `json:"cat,omitempty"`
	Args any    `json:"args,omitempty"`
}

// WriteChrome writes the cells' timelines in Chrome trace_event JSON
// (the format chrome://tracing and Perfetto load). Each cell becomes one
// process named "workload (config)"; each core becomes one thread
// carrying its stall spans as complete ("X") events; occupancy tracks
// become counter ("C") series. Timestamps are simulation cycles written
// into the format's microsecond field, so 1 displayed µs = 1 cycle
// (recorded under otherData.timestamp_unit).
//
// Output is deterministic: cells in the order given, cores ascending,
// tracks sorted by (name, core), fixed field order.
func WriteChrome(w io.Writer, cells []CellTrace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	for pid, cell := range cells {
		label := cell.Workload
		if cell.Config != "" {
			label = fmt.Sprintf("%s (%s)", cell.Workload, cell.Config)
		}
		if err := emit(chromeEvent{Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]string{"name": label}}); err != nil {
			return err
		}
		tr := cell.Trace
		if tr == nil {
			continue
		}
		for core := range tr.Spans {
			if err := emit(chromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: core,
				Args: map[string]string{"name": fmt.Sprintf("core %d", core)}}); err != nil {
				return err
			}
			for _, sp := range tr.Spans[core] {
				if err := emit(chromeEvent{Name: sp.Kind.String(), Ph: "X",
					TS: sp.Start, Dur: sp.Dur, PID: pid, TID: core, Cat: "stall"}); err != nil {
					return err
				}
			}
		}
		for _, t := range tr.Tracks {
			name := fmt.Sprintf("%s core %d", t.Name, t.Core)
			for _, s := range t.Samples() {
				if err := emit(chromeEvent{Name: name, Ph: "C", TS: s.T, PID: pid,
					Args: map[string]int64{"value": s.V}}); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString("\n],\"otherData\":{\"timestamp_unit\":\"cycles\"}}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
