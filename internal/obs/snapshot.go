package obs

import (
	"sort"

	"repro/internal/envelope"
	"repro/internal/stats"
)

// MetricsSchema identifies the metrics snapshot format.
const MetricsSchema = envelope.MetricsV1

// Snapshot is one run's metrics in exportable form. It is deterministic:
// map keys serialize sorted (encoding/json), every value derives from
// the simulation alone, and zero-valued entries are omitted, so two runs
// of the same cell produce byte-identical snapshots whatever the worker
// count.
type Snapshot struct {
	Schema string `json:"schema"`
	// Counters holds event counts: the hot-path counters registered via
	// Recorder.Counter plus everything the snapshot-time collectors
	// contribute (cache hits/misses/evictions, MEB/IEB events, protocol
	// counters, memory accesses).
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges holds level samples, merged by maximum (buffer occupancy
	// high-water marks).
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Hists holds the histograms (NoC latency and message sizes).
	Hists map[string]HistSnapshot `json:"hists,omitempty"`
	// StallCycles is the per-kind stall-span total summed over cores; it
	// reconciles exactly with the engine result's Stalls breakdown.
	StallCycles map[string]int64 `json:"stall_cycles,omitempty"`
	// SpanCount and SpanDropped describe the stored stall timeline:
	// spans retained across all cores and spans dropped to the ring
	// bound (totals in StallCycles still include dropped spans).
	SpanCount   int64 `json:"span_count,omitempty"`
	SpanDropped int64 `json:"span_dropped,omitempty"`
}

// Collect is the surface a snapshot-time collector writes through.
type Collect struct{ s *Snapshot }

// Count adds v to the named counter (zero adds are kept as omitted).
func (c *Collect) Count(name string, v int64) {
	if v == 0 {
		return
	}
	if c.s.Counters == nil {
		c.s.Counters = make(map[string]int64)
	}
	c.s.Counters[name] += v
}

// Gauge merges v into the named gauge by maximum.
func (c *Collect) Gauge(name string, v int64) {
	if c.s.Gauges == nil {
		c.s.Gauges = make(map[string]int64)
	}
	if cur, ok := c.s.Gauges[name]; !ok || v > cur {
		c.s.Gauges[name] = v
	}
}

// Snapshot collects the current metrics: registered counters, the
// snapshot-time collectors, histogram summaries, and stall-span totals.
// It may be called repeatedly; each call re-reads the live state. On a
// nil recorder it returns nil.
func (r *Recorder) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{Schema: MetricsSchema}
	col := &Collect{s: s}
	for _, name := range sortedKeys(r.counters) {
		col.Count(name, r.counters[name].Load())
	}
	for _, f := range r.collectors {
		f(col)
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		if h.Count() == 0 {
			continue
		}
		if s.Hists == nil {
			s.Hists = make(map[string]HistSnapshot)
		}
		s.Hists[name] = h.snapshot()
	}
	var totals stats.Stalls
	for _, st := range r.spans {
		t := st.Totals()
		totals.Merge(&t)
		s.SpanCount += int64(len(st.Spans()))
		s.SpanDropped += st.Dropped()
	}
	for k := stats.StallKind(0); k < stats.NumStallKinds; k++ {
		if totals[k] == 0 {
			continue
		}
		if s.StallCycles == nil {
			s.StallCycles = make(map[string]int64)
		}
		s.StallCycles[k.String()] = totals[k]
	}
	return s
}

// Trace is one run's full retained timeline, ready for Chrome export:
// per-core stall spans plus the occupancy tracks.
type Trace struct {
	// Spans holds each core's stall timeline (index = core).
	Spans [][]Span
	// Dropped counts per-core spans lost to the ring bound.
	Dropped []int64
	// Totals is each core's exact per-kind stall totals.
	Totals []stats.Stalls
	// Tracks holds the occupancy series, sorted by (Name, Core).
	Tracks []*Track
}

// StallTotals sums the exact per-kind totals over all cores; it equals
// the engine result's aggregate Stalls for a fully instrumented run.
func (t *Trace) StallTotals() stats.Stalls {
	var s stats.Stalls
	if t == nil {
		return s
	}
	for i := range t.Totals {
		s.Merge(&t.Totals[i])
	}
	return s
}

// TraceData extracts the retained timeline (nil on a nil recorder).
func (r *Recorder) TraceData() *Trace {
	if r == nil {
		return nil
	}
	t := &Trace{
		Spans:   make([][]Span, len(r.spans)),
		Dropped: make([]int64, len(r.spans)),
		Totals:  make([]stats.Stalls, len(r.spans)),
	}
	for i, st := range r.spans {
		t.Spans[i] = st.Spans()
		t.Dropped[i] = st.Dropped()
		t.Totals[i] = st.Totals()
	}
	keys := make([]trackKey, 0, len(r.tracks))
	for k := range r.tracks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].core < keys[j].core
	})
	for _, k := range keys {
		t.Tracks = append(t.Tracks, r.tracks[k])
	}
	return t
}
