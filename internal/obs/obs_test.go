package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/stats"
)

// TestNilRecorderIsInert pins the disabled-mode contract: every method
// of a nil Recorder (and of the nil sub-objects it hands out) is a
// no-op. The instrumented components call these blindly, so a panic
// here is a crash in every uninstrumented run.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims to be enabled")
	}
	r.SetNow(5)
	if r.Now() != 0 {
		t.Error("nil recorder has a clock")
	}
	r.Counter("x").Add(1)
	if r.Counter("x").Load() != 0 {
		t.Error("nil counter holds a value")
	}
	r.Hist("h").Observe(7)
	if r.Hist("h").Count() != 0 {
		t.Error("nil hist holds observations")
	}
	r.Span(3, stats.WBStall, 0, 10)
	if r.SpanTrack(3).Dropped() != 0 || r.SpanTrack(3).Spans() != nil {
		t.Error("nil span track holds spans")
	}
	if (r.SpanTrack(3).Totals() != stats.Stalls{}) {
		t.Error("nil span track holds totals")
	}
	r.Sample("meb", 0, 9)
	if r.Track("meb", 0).HWM() != 0 || r.Track("meb", 0).Samples() != nil {
		t.Error("nil track holds samples")
	}
	r.OnCollect(func(*Collect) { t.Error("collector registered on nil recorder") })
	if r.Snapshot() != nil || r.TraceData() != nil {
		t.Error("nil recorder exports data")
	}
}

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, -5} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 7 || s.Sum != 1010 || s.Max != 1000 {
		t.Fatalf("count/sum/max = %d/%d/%d, want 7/1010/1000", s.Count, s.Sum, s.Max)
	}
	// -5 clamps to 0, so bucket 0 (v==0) holds two; 1 -> bucket 1;
	// 2,3 -> bucket 2; 4 -> bucket 3; 1000 -> bucket 10.
	want := []int64{2, 1, 2, 1, 0, 0, 0, 0, 0, 0, 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", s.Buckets, want)
		}
	}
	if got := s.Mean(); got < 144 || got > 145 {
		t.Errorf("mean = %v, want 1010/7", got)
	}
}

func TestSpanCoalescingAndBounding(t *testing.T) {
	r := New(Config{SpanCap: 2})
	// Two adjacent busy spans coalesce into one.
	r.Span(0, stats.Busy, 0, 5)
	r.Span(0, stats.Busy, 5, 3)
	// A different kind starts a new span.
	r.Span(0, stats.WBStall, 8, 4)
	// Ring is full (cap 2): this span is dropped from the timeline but
	// still totalled.
	r.Span(0, stats.Busy, 12, 2)
	st := r.SpanTrack(0)
	spans := st.Spans()
	if len(spans) != 2 || spans[0] != (Span{Start: 0, Dur: 8, Kind: stats.Busy}) ||
		spans[1] != (Span{Start: 8, Dur: 4, Kind: stats.WBStall}) {
		t.Fatalf("spans = %+v", spans)
	}
	if st.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", st.Dropped())
	}
	tot := st.Totals()
	if tot[stats.Busy] != 10 || tot[stats.WBStall] != 4 {
		t.Errorf("totals = %v; busy/wb want 10/4", tot)
	}
	// Zero/negative durations are not spans.
	r.Span(0, stats.Busy, 14, 0)
	if st.Dropped() != 1 {
		t.Error("zero-duration span counted as dropped")
	}
}

func TestTrackDedupAndHWM(t *testing.T) {
	r := New(Config{TrackCap: 2})
	r.SetNow(10)
	r.Sample("meb", 1, 3)
	r.SetNow(20)
	r.Sample("meb", 1, 3) // unchanged: no new sample
	r.SetNow(30)
	r.Sample("meb", 1, 7)
	r.SetNow(40)
	r.Sample("meb", 1, 2) // ring full: dropped, HWM still tracked
	tr := r.Track("meb", 1)
	if got := tr.Samples(); len(got) != 2 || got[0] != (TrackSample{T: 10, V: 3}) || got[1] != (TrackSample{T: 30, V: 7}) {
		t.Fatalf("samples = %+v", got)
	}
	if tr.HWM() != 7 {
		t.Errorf("hwm = %d, want 7", tr.HWM())
	}
}

func TestSnapshotDeterministicAndReconciled(t *testing.T) {
	build := func() *Recorder {
		r := New(Config{})
		r.Counter("b.count").Add(2)
		r.Counter("a.count").Add(1)
		r.Hist("lat").Observe(16)
		r.Hist("lat").Observe(32)
		r.Span(0, stats.Busy, 0, 10)
		r.Span(1, stats.INVStall, 3, 7)
		r.SetNow(4)
		r.Sample("meb", 0, 5)
		r.OnCollect(func(c *Collect) {
			c.Count("cache.hits", 9)
			c.Count("zero.skipped", 0)
			c.Gauge("meb.occ.hwm", r.Track("meb", 0).HWM())
		})
		return r
	}
	a, _ := json.Marshal(build().Snapshot())
	b, _ := json.Marshal(build().Snapshot())
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot not deterministic:\n%s\n%s", a, b)
	}
	s := build().Snapshot()
	if s.Schema != MetricsSchema {
		t.Errorf("schema = %q", s.Schema)
	}
	if s.Counters["a.count"] != 1 || s.Counters["b.count"] != 2 || s.Counters["cache.hits"] != 9 {
		t.Errorf("counters = %v", s.Counters)
	}
	if _, ok := s.Counters["zero.skipped"]; ok {
		t.Error("zero-valued counter not omitted")
	}
	if s.Gauges["meb.occ.hwm"] != 5 {
		t.Errorf("gauges = %v", s.Gauges)
	}
	if s.StallCycles["busy"] != 10 || s.StallCycles["inv"] != 7 {
		t.Errorf("stall cycles = %v", s.StallCycles)
	}
	if s.SpanCount != 2 || s.SpanDropped != 0 {
		t.Errorf("span count/dropped = %d/%d", s.SpanCount, s.SpanDropped)
	}
	if s.Hists["lat"].Count != 2 || s.Hists["lat"].Sum != 48 {
		t.Errorf("hist = %+v", s.Hists["lat"])
	}
	// Trace totals reconcile with the snapshot's stall cycles.
	tr := build().TraceData()
	tot := tr.StallTotals()
	if tot[stats.Busy] != 10 || tot[stats.INVStall] != 7 {
		t.Errorf("trace totals = %v", tot)
	}
	if len(tr.Spans) != 2 || len(tr.Tracks) != 1 {
		t.Errorf("trace shape: %d cores, %d tracks", len(tr.Spans), len(tr.Tracks))
	}
}

func TestTotalsOnlyCapsStoreNothing(t *testing.T) {
	r := New(Config{SpanCap: -1, TrackCap: -1})
	r.Span(0, stats.Busy, 0, 4)
	r.Sample("meb", 0, 3)
	if n := len(r.SpanTrack(0).Spans()); n != 0 {
		t.Errorf("stored %d spans with negative cap", n)
	}
	if r.SpanTrack(0).Totals()[stats.Busy] != 4 {
		t.Error("totals lost with negative cap")
	}
	if n := len(r.Track("meb", 0).Samples()); n != 0 {
		t.Errorf("stored %d samples with negative cap", n)
	}
	if r.Track("meb", 0).HWM() != 3 {
		t.Error("HWM lost with negative cap")
	}
}
