package obs

import "repro/internal/stats"

// Span is one contiguous stretch of a core's time attributed to a single
// stall category (a slice of the paper's Figure 9 breakdown, with cycle
// timestamps). Adjacent same-kind spans are coalesced on insert, so a
// long compute phase is one span, not one per Compute op.
type Span struct {
	Start int64           `json:"ts"`
	Dur   int64           `json:"dur"`
	Kind  stats.StallKind `json:"kind"`
}

// SpanTrack is one core's bounded stall timeline. The per-kind cycle
// totals are exact whatever the capacity: when the ring fills, later
// spans are counted (Dropped) and totalled but not stored, keeping the
// retained timeline a faithful prefix. A nil *SpanTrack is a no-op.
type SpanTrack struct {
	cap     int
	spans   []Span
	dropped int64
	totals  stats.Stalls
}

func newSpanTrack(cap int) *SpanTrack { return &SpanTrack{cap: cap} }

// Add records dur cycles of kind starting at start. Zero or negative
// durations are ignored (an unexposed latency is not a span).
func (s *SpanTrack) Add(kind stats.StallKind, start, dur int64) {
	if s == nil || dur <= 0 {
		return
	}
	s.totals.Add(kind, dur)
	if s.cap < 0 {
		return
	}
	if n := len(s.spans); n > 0 {
		if last := &s.spans[n-1]; last.Kind == kind && last.Start+last.Dur == start {
			last.Dur += dur
			return
		}
	}
	if len(s.spans) >= s.cap {
		s.dropped++
		return
	}
	s.spans = append(s.spans, Span{Start: start, Dur: dur, Kind: kind})
}

// Totals returns the exact per-kind cycle totals.
func (s *SpanTrack) Totals() stats.Stalls {
	if s == nil {
		return stats.Stalls{}
	}
	return s.totals
}

// Spans returns the stored timeline (shared slice; callers must not
// mutate it).
func (s *SpanTrack) Spans() []Span {
	if s == nil {
		return nil
	}
	return s.spans
}

// Dropped returns how many spans did not fit in the ring.
func (s *SpanTrack) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped
}

// TrackSample is one (time, value) point of an occupancy track.
type TrackSample struct {
	T int64 `json:"t"`
	V int64 `json:"v"`
}

// Track is a bounded per-core sample series (MEB/IEB occupancy in
// practice) with an exact high-water mark. Samples are recorded only on
// value change; when the ring fills, further changes still update the
// high-water mark but are dropped from the series. A nil *Track is a
// no-op.
type Track struct {
	Name string
	Core int

	cap     int
	samples []TrackSample
	dropped int64
	hwm     int64
	last    int64
	seen    bool
}

// Sample records value v at time now.
func (t *Track) Sample(now, v int64) {
	if t == nil {
		return
	}
	if v > t.hwm {
		t.hwm = v
	}
	if t.seen && v == t.last {
		return
	}
	t.seen, t.last = true, v
	if t.cap < 0 {
		return
	}
	if len(t.samples) >= t.cap {
		t.dropped++
		return
	}
	t.samples = append(t.samples, TrackSample{T: now, V: v})
}

// HWM returns the track's high-water mark.
func (t *Track) HWM() int64 {
	if t == nil {
		return 0
	}
	return t.hwm
}

// Samples returns the stored series (shared slice; callers must not
// mutate it).
func (t *Track) Samples() []TrackSample {
	if t == nil {
		return nil
	}
	return t.samples
}
