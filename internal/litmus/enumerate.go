package litmus

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mem"
)

// This file systematically generates every litmus-test shape up to a
// small size from the DSL's instruction alphabet, for the exhaustive
// sweep in cmd/litmus -enumerate and the enumeration regression tests.
//
// Generated programs use only the annotated synchronization forms plus
// the always-safe raw ops (loads, stores, WB, INV — both WB and INV
// drain dirty words in this machine, and the oracle is purely
// value-based), so every emitted test is violation-free by construction
// and carries ExpectNone with an open (nil) Allowed set. The under-
// annotated variants come from Mutants, which strips one annotation
// bundle at a time; internal/fuzzgen judges those exhaustively.
//
// Termination of every generated program under every schedule is
// guaranteed by construction:
//
//   - critical sections are balanced, non-nested, on a single lock, and
//     contain no blocking op, so any lock holder eventually exits;
//   - a thread awaits flag f only if f was already notified earlier in
//     its own sequence, or some other thread notifies f behind a
//     wait-free prefix (no await, no barrier; CSEnter is fine since
//     critical sections always exit) — flags are only ever set to 1, so
//     the notify is permanent;
//   - barriers gate all engine threads, so every thread must carry the
//     same number of BarrierSync ops, and each inter-barrier segment's
//     awaits satisfy the rule above.
//
// DMA is constrained to stay inside the oracle's model: at most one DMA
// per program, its destination variable is stored by no thread, and its
// source is dirty-clean in the issuing thread at the DMA point (DMA
// reads the shared levels) and stored by no other thread.

// EnumOptions bounds one enumeration.
type EnumOptions struct {
	// MaxOps is the total instruction budget across all threads (k).
	// Default 4.
	MaxOps int
	// MaxThreads bounds the thread count (minimum 2 always). Default 3.
	MaxThreads int
	// Vars and Flags bound the shared-variable and flag alphabets.
	// Defaults 2 and 1.
	Vars  int
	Flags int
	// DMA includes the IDMA op in the alphabet.
	DMA bool
	// Packed additionally emits a packed-layout clone of every test that
	// uses at least two variables and no DMA.
	Packed bool
	// Locks > 0 includes balanced critical sections (on lock 0).
	Locks int
	// Barriers includes BarrierSync (id 0).
	Barriers bool
}

func (o EnumOptions) withDefaults() EnumOptions {
	if o.MaxOps <= 0 {
		o.MaxOps = 4
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 3
	}
	if o.MaxThreads > litmusCores {
		o.MaxThreads = litmusCores
	}
	if o.Vars <= 0 {
		o.Vars = 2
	}
	if o.Flags <= 0 {
		o.Flags = 1
	}
	return o
}

// enumOp is one abstract instruction of the enumeration alphabet; values
// and registers are assigned when the program is reified into a Test.
type enumOp struct {
	kind InstrKind
	arg  int // variable (memory ops, DMA dest) or flag ID (notify/await)
	src  int // DMA source variable
}

// sym renders the op as one compact name token.
func (op enumOp) sym() string {
	switch op.kind {
	case IStore:
		return fmt.Sprintf("s%d", op.arg)
	case ILoad:
		return fmt.Sprintf("l%d", op.arg)
	case IWB:
		return fmt.Sprintf("w%d", op.arg)
	case IINV:
		return fmt.Sprintf("i%d", op.arg)
	case INotifyFlag:
		return fmt.Sprintf("n%d", op.arg)
	case IAwaitFlag:
		return fmt.Sprintf("a%d", op.arg)
	case ICSEnter:
		return "c"
	case ICSExit:
		return "x"
	case IBarrierSync:
		return "b"
	case IDMA:
		return fmt.Sprintf("d%d<%d", op.arg, op.src)
	default:
		return "?"
	}
}

// alphabet builds the op vocabulary for the options.
func (o EnumOptions) alphabet() []enumOp {
	var al []enumOp
	for v := 0; v < o.Vars; v++ {
		al = append(al,
			enumOp{kind: IStore, arg: v},
			enumOp{kind: ILoad, arg: v},
			enumOp{kind: IWB, arg: v},
			enumOp{kind: IINV, arg: v},
		)
	}
	for f := 0; f < o.Flags; f++ {
		al = append(al,
			enumOp{kind: INotifyFlag, arg: f},
			enumOp{kind: IAwaitFlag, arg: f},
		)
	}
	if o.Locks > 0 {
		al = append(al, enumOp{kind: ICSEnter}, enumOp{kind: ICSExit})
	}
	if o.Barriers {
		al = append(al, enumOp{kind: IBarrierSync})
	}
	if o.DMA {
		for dst := 0; dst < o.Vars; dst++ {
			for src := 0; src < o.Vars; src++ {
				if dst != src {
					al = append(al, enumOp{kind: IDMA, arg: dst, src: src})
				}
			}
		}
	}
	return al
}

// Enumerate generates every canonical litmus test up to the options'
// bounds. Every test is annotated-by-construction (ExpectNone, open
// outcome set); thread permutations and variable/flag renamings are
// deduplicated to one representative.
func Enumerate(o EnumOptions) []Test {
	o = o.withDefaults()
	al := o.alphabet()

	var tests []Test
	seen := map[string]bool{}
	emit := func(prog [][]enumOp) {
		if !progValid(prog) {
			return
		}
		key := canonicalKey(prog)
		if seen[key] {
			return
		}
		seen[key] = true
		t := reify(prog)
		tests = append(tests, t)
		if o.Packed && t.Vars >= 2 && !usesDMA(prog) {
			p := t
			p.Name += "+packed"
			p.Packed = true
			tests = append(tests, p)
		}
	}

	// Enumerate thread counts, per-thread lengths, and sequences.
	for n := 2; n <= o.MaxThreads; n++ {
		lens := make([]int, n)
		var fill func(i, rem int)
		var seqs [][]enumOp
		var build func(i int)
		build = func(i int) {
			if i == n {
				prog := make([][]enumOp, n)
				for j := range seqs {
					prog[j] = append([]enumOp(nil), seqs[j]...)
				}
				emit(prog)
				return
			}
			var gen func(seq []enumOp, depth int)
			gen = func(seq []enumOp, depth int) {
				if len(seq) == lens[i] {
					if depth != 0 {
						return // unbalanced critical section
					}
					seqs = append(seqs, append([]enumOp(nil), seq...))
					build(i + 1)
					seqs = seqs[:len(seqs)-1]
					return
				}
				for _, op := range al {
					if !threadStepOK(seq, depth, op) {
						continue
					}
					d := depth
					switch op.kind {
					case ICSEnter:
						d++
					case ICSExit:
						d--
					}
					gen(append(seq, op), d)
				}
			}
			gen(nil, 0)
		}
		fill = func(i, rem int) {
			if i == n {
				if rem == 0 {
					build(0)
				}
				return
			}
			// Each thread gets at least one op; leave enough for the rest.
			for l := 1; l <= rem-(n-1-i); l++ {
				lens[i] = l
				fill(i+1, rem-l)
			}
		}
		for total := n; total <= o.MaxOps; total++ {
			fill(0, total)
		}
	}
	return tests
}

// threadStepOK applies the intra-thread validity rules for appending op
// to seq at critical-section depth.
func threadStepOK(seq []enumOp, depth int, op enumOp) bool {
	switch op.kind {
	case ICSEnter:
		if depth != 0 {
			return false // non-nested
		}
	case ICSExit:
		if depth != 1 {
			return false // balanced
		}
	case IAwaitFlag, IBarrierSync:
		if depth != 0 {
			return false // no blocking inside a critical section
		}
	case IINV:
		// INV drains dirty words, so it never loses data — but an INV of
		// a variable this thread has dirty would silently publish it,
		// making the "mutant drops a publication" judgment meaningless.
		// Keep INV to clean variables.
		if dirtyAt(seq, op.arg) {
			return false
		}
	case IDMA:
		// DMA reads the shared levels: the source must be clean here.
		if dirtyAt(seq, op.src) {
			return false
		}
	}
	return true
}

// dirtyAt reports whether variable v is locally dirty (stored and not
// yet covered by a WB or a WB-ALL-bearing annotated op) after seq.
func dirtyAt(seq []enumOp, v int) bool {
	dirty := false
	for _, op := range seq {
		switch op.kind {
		case IStore:
			if op.arg == v {
				dirty = true
			}
		case IWB:
			if op.arg == v {
				dirty = false
			}
		case IINV:
			if op.arg == v {
				dirty = false // INV drains dirty words on its way out
			}
		case INotifyFlag, ICSExit, IBarrierSync:
			dirty = false // these lower with a WB ALL on the write side
		}
	}
	return dirty
}

// progValid applies the cross-thread validity rules (see the file
// comment): barrier uniformity, await liveness, DMA constraints, and
// contiguous variable/flag use.
func progValid(prog [][]enumOp) bool {
	// Barrier counts must match across every thread.
	b0 := countKind(prog[0], IBarrierSync)
	for _, seq := range prog[1:] {
		if countKind(seq, IBarrierSync) != b0 {
			return false
		}
	}

	// Every await needs a notify: earlier in its own sequence, or in
	// another thread behind a wait-free prefix.
	for ti, seq := range prog {
		for ii, op := range seq {
			if op.kind != IAwaitFlag {
				continue
			}
			if notifiesBefore(seq[:ii], op.arg) || notifiedWaitFree(prog, ti, op.arg) {
				continue
			}
			return false
		}
	}

	// DMA: at most one; dest stored by nobody; source stored only by the
	// issuing thread (clean-at-issue is the intra-thread rule).
	dmas := 0
	for ti, seq := range prog {
		for _, op := range seq {
			if op.kind != IDMA {
				continue
			}
			dmas++
			if dmas > 1 {
				return false
			}
			for tj, other := range prog {
				for _, oo := range other {
					if oo.kind == IStore && oo.arg == op.arg {
						return false // dest stored
					}
					if tj != ti && oo.kind == IStore && oo.arg == op.src {
						return false // source stored by another thread
					}
				}
			}
		}
	}

	// Used variables and flags must form prefixes {0..m} so renamings of
	// the same shape are generated once (canonicalKey dedups the rest).
	return contiguous(usedVars(prog)) && contiguous(usedFlags(prog))
}

func countKind(seq []enumOp, k InstrKind) int {
	n := 0
	for _, op := range seq {
		if op.kind == k {
			n++
		}
	}
	return n
}

func notifiesBefore(prefix []enumOp, flag int) bool {
	for _, op := range prefix {
		if op.kind == INotifyFlag && op.arg == flag {
			return true
		}
	}
	return false
}

// notifiedWaitFree reports whether some thread other than ti notifies
// flag behind a prefix free of awaits and barriers.
func notifiedWaitFree(prog [][]enumOp, ti, flag int) bool {
	for tj, seq := range prog {
		if tj == ti {
			continue
		}
		for _, op := range seq {
			if op.kind == IAwaitFlag || op.kind == IBarrierSync {
				break
			}
			if op.kind == INotifyFlag && op.arg == flag {
				return true
			}
		}
	}
	return false
}

func usedVars(prog [][]enumOp) map[int]bool {
	m := map[int]bool{}
	for _, seq := range prog {
		for _, op := range seq {
			switch op.kind {
			case IStore, ILoad, IWB, IINV:
				m[op.arg] = true
			case IDMA:
				m[op.arg] = true
				m[op.src] = true
			}
		}
	}
	return m
}

func usedFlags(prog [][]enumOp) map[int]bool {
	m := map[int]bool{}
	for _, seq := range prog {
		for _, op := range seq {
			if op.kind == INotifyFlag || op.kind == IAwaitFlag {
				m[op.arg] = true
			}
		}
	}
	return m
}

func contiguous(m map[int]bool) bool {
	for i := 0; i < len(m); i++ {
		if !m[i] {
			return false
		}
	}
	return true
}

func usesDMA(prog [][]enumOp) bool {
	for _, seq := range prog {
		if countKind(seq, IDMA) > 0 {
			return true
		}
	}
	return false
}

// canonicalKey returns the minimal rendering of the program over all
// thread permutations, with variables and flags renamed by first use in
// each permutation's thread-major order — an exact canonical form, so
// dedup by key keeps exactly one representative per symmetry class.
func canonicalKey(prog [][]enumOp) string {
	best := ""
	perms(len(prog), func(order []int) {
		varMap, flagMap := map[int]int{}, map[int]int{}
		var b strings.Builder
		for i, ti := range order {
			if i > 0 {
				b.WriteByte('|')
			}
			for j, op := range prog[ti] {
				if j > 0 {
					b.WriteByte('.')
				}
				b.WriteString(renameOp(op, varMap, flagMap).sym())
			}
		}
		if s := b.String(); best == "" || s < best {
			best = s
		}
	})
	return best
}

func renameOp(op enumOp, varMap, flagMap map[int]int) enumOp {
	mapID := func(m map[int]int, id int) int {
		if v, ok := m[id]; ok {
			return v
		}
		v := len(m)
		m[id] = v
		return v
	}
	switch op.kind {
	case IStore, ILoad, IWB, IINV:
		op.arg = mapID(varMap, op.arg)
	case INotifyFlag, IAwaitFlag:
		op.arg = mapID(flagMap, op.arg)
	case IDMA:
		op.arg = mapID(varMap, op.arg)
		op.src = mapID(varMap, op.src)
	}
	return op
}

// perms calls f with every permutation of 0..n-1 (n is tiny).
func perms(n int, f func([]int)) {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			f(order)
			return
		}
		for i := k; i < n; i++ {
			order[k], order[i] = order[i], order[k]
			rec(k + 1)
			order[k], order[i] = order[i], order[k]
		}
	}
	rec(0)
}

// reify turns an abstract program into a runnable Test: store values and
// load registers are assigned in thread-major order, every used variable
// joins Final, the outcome set is open (nil Allowed), and the name is
// the program's canonical rendering.
func reify(prog [][]enumOp) Test {
	t := Test{Expect: ExpectNone}
	t.Vars = len(usedVars(prog))
	val := mem.Word(0)
	var name []string
	for _, seq := range prog {
		var instrs []Instr
		var syms []string
		for _, op := range seq {
			syms = append(syms, op.sym())
			switch op.kind {
			case IStore:
				val++
				instrs = append(instrs, Store(VarID(op.arg), val))
			case ILoad:
				instrs = append(instrs, Load(VarID(op.arg), Reg(t.Regs)))
				t.Regs++
			case IWB:
				instrs = append(instrs, WB(VarID(op.arg)))
			case IINV:
				instrs = append(instrs, INV(VarID(op.arg)))
			case INotifyFlag:
				instrs = append(instrs, NotifyFlag(op.arg, 1))
			case IAwaitFlag:
				instrs = append(instrs, AwaitFlag(op.arg, 1))
			case ICSEnter:
				instrs = append(instrs, CSEnter(0))
			case ICSExit:
				instrs = append(instrs, CSExit(0))
			case IBarrierSync:
				instrs = append(instrs, BarrierSync(0))
			case IDMA:
				instrs = append(instrs, DMA(VarID(op.arg), VarID(op.src), 0))
			}
		}
		t.Threads = append(t.Threads, instrs)
		name = append(name, strings.Join(syms, "."))
	}
	for v := 0; v < t.Vars; v++ {
		t.Final = append(t.Final, VarID(v))
	}
	t.Name = "enum[" + strings.Join(name, "|") + "]"
	t.Doc = "enumerated annotated program (violation-free by construction)"
	return t
}

// rawForm maps each annotated sync instruction to its raw machine
// counterpart, stripping the annotation bundle the config would lower
// around it. Ops without a raw counterpart (the barrier has none in the
// DSL) map to ok=false.
func rawForm(in Instr) (Instr, bool) {
	switch in.Kind {
	case INotifyFlag:
		return FlagSet(in.ID, in.Val), true
	case IAwaitFlag:
		return FlagWait(in.ID, in.Val), true
	case ICSEnter:
		return Acquire(in.ID), true
	case ICSExit:
		return Release(in.ID), true
	}
	return Instr{}, false
}

// Mutants returns the under-annotated variants of t: every annotated
// sync instruction is individually replaced by its raw counterpart
// (dropping that site's WB/INV bundle). Each mutant keeps ExpectNone and
// the open outcome set — the caller judges it by exhaustive exploration
// (internal/fuzzgen.JudgeExhaustive): either some schedule exposes a
// violation, or zero violations across the full schedule space prove the
// annotation was masked (no communication crossed it).
func Mutants(t Test) []Test {
	var ms []Test
	for ti, seq := range t.Threads {
		for ii, in := range seq {
			raw, ok := rawForm(in)
			if !ok {
				continue
			}
			m := t
			m.Name = fmt.Sprintf("%s!t%di%d-raw", t.Name, ti, ii)
			m.Doc = fmt.Sprintf("mutant of %s: thread %d instr %d (%v) stripped to %v", t.Name, ti, ii, in.Kind, raw.Kind)
			m.Threads = make([][]Instr, len(t.Threads))
			for j, s := range t.Threads {
				m.Threads[j] = append([]Instr(nil), s...)
			}
			m.Threads[ti][ii] = raw
			ms = append(ms, m)
		}
	}
	return ms
}

// SweepStats aggregates one enumeration sweep (Sweep).
type SweepStats struct {
	Programs   int   `json:"programs"`
	Mutants    int   `json:"mutants"`
	Runs       int64 `json:"runs"`
	Schedules  int64 `json:"schedules"`
	DedupCuts  int64 `json:"dedup_cuts"`
	StatesSeen int64 `json:"states_seen"`
	// Violating lists enumerated (non-mutant) tests any of whose
	// schedules violated — must be empty, they are annotated by
	// construction.
	Violating []string `json:"violating,omitempty"`
	// Failed lists tests whose exploration was not exhaustive (errors,
	// truncation, or the schedule cap) — also must be empty.
	Failed []string `json:"failed,omitempty"`
}

// Sweep enumerates every test under eo and explores each one under cfg,
// aggregating the statistics the enumeration gate pins. Mutants are not
// explored here (internal/fuzzgen judges them); Mutants only counts.
func Sweep(eo EnumOptions, cfg Config, opts Options) SweepStats {
	var st SweepStats
	tests := Enumerate(eo)
	st.Programs = len(tests)
	for _, t := range tests {
		st.Mutants += len(Mutants(t))
		rep, err := Explore(t, cfg, opts)
		if err != nil {
			st.Failed = append(st.Failed, t.Name+": "+err.Error())
			continue
		}
		st.Runs += int64(rep.Runs)
		st.Schedules += int64(rep.Schedules)
		st.DedupCuts += int64(rep.DedupCuts)
		st.StatesSeen += int64(rep.StatesSeen)
		if rep.ViolationSchedules > 0 {
			st.Violating = append(st.Violating, t.Name)
		}
		if rep.ErrorRuns > 0 || rep.Truncated > 0 || rep.Capped {
			st.Failed = append(st.Failed, t.Name+": exploration not exhaustive")
		}
	}
	sort.Strings(st.Violating)
	sort.Strings(st.Failed)
	return st
}
