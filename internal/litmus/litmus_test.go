package litmus

import (
	"testing"

	"repro/internal/mem"
)

// TestSuiteAllConfigs is the package's main gate: every suite test,
// under every configuration, explored exhaustively, must satisfy its
// declared expectation — annotated variants violation-free everywhere,
// under-annotated variants exposing their bug with the right
// attribution on at least one schedule.
func TestSuiteAllConfigs(t *testing.T) {
	for _, tc := range Suite {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			for _, cfg := range Configs {
				v, rep, err := Run(tc, cfg, Options{})
				if err != nil {
					t.Fatalf("%s: %v", cfg.Name, err)
				}
				if !v.OK {
					t.Errorf("%s", v)
					for _, o := range rep.SortedOutcomes() {
						t.Logf("  outcome %s count=%d allowed=%v sample=%s", o.Key, o.Count, o.Allowed, o.Sample)
					}
					for _, vi := range rep.Violations {
						t.Logf("  violation [%s] on %s: %s", vi.Class, vi.Schedule, vi.Detail)
					}
					continue
				}
				if rep.Schedules == 0 {
					t.Errorf("%s: zero schedules explored", cfg.Name)
				}
				t.Logf("%s/%s: %d schedules, %d pruned, %d dead ends, %d outcomes",
					tc.Name, cfg.Name, rep.Schedules, rep.Pruned, rep.DeadEnds, len(rep.Outcomes))
			}
		})
	}
}

// TestExplorationIsDeterministic pins the explorer's reproducibility:
// two explorations of the same test and config agree on every count.
func TestExplorationIsDeterministic(t *testing.T) {
	tc, _ := SuiteTest("mp-noinv")
	a, err := Explore(tc, Base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(tc, Base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedules != b.Schedules || a.Pruned != b.Pruned || a.DeadEnds != b.DeadEnds ||
		a.ViolationSchedules != b.ViolationSchedules || len(a.Outcomes) != len(b.Outcomes) {
		t.Errorf("explorations diverge:\n%+v\n%+v", a, b)
	}
	for k, oa := range a.Outcomes {
		ob := b.Outcomes[k]
		if ob == nil || oa.Count != ob.Count || oa.Sample != ob.Sample {
			t.Errorf("outcome %s diverges: %+v vs %+v", k, oa, ob)
		}
	}
}

// TestPruningLosesNoOutcomes reruns a test with pruning effectively
// disabled (by exploring with a scheduler-level comparison is not
// possible, so instead compare against an exploration of the reversed
// thread order, which canonicalizes differently) and checks the outcome
// sets agree. Swapping thread order relabels registers implicitly, so
// the check uses a symmetric test: coww, whose outcome space is the
// final memory value only.
func TestPruningLosesNoOutcomes(t *testing.T) {
	tc, _ := SuiteTest("coww")
	fwd, err := Explore(tc, Base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rev := tc
	rev.Threads = [][]Instr{tc.Threads[1], tc.Threads[0]}
	bwd, err := Explore(rev, Base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fwd.Outcomes) != len(bwd.Outcomes) {
		t.Errorf("outcome sets differ across thread relabeling: %d vs %d", len(fwd.Outcomes), len(bwd.Outcomes))
	}
	for k := range fwd.Outcomes {
		if bwd.Outcomes[k] == nil {
			t.Errorf("outcome %s lost under relabeling", k)
		}
	}
}

// TestBudgetTruncation checks that an impossibly small budget is
// reported as non-exhaustive and fails the verdict.
func TestBudgetTruncation(t *testing.T) {
	tc, _ := SuiteTest("sb")
	rep, err := Explore(tc, Base, Options{Budget: 3, MaxSchedules: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated == 0 {
		t.Fatal("budget 3 truncated nothing")
	}
	if v := rep.Verdict(tc); v.OK {
		t.Error("truncated exploration passed the verdict")
	}
}

// TestScheduleCapReported checks the MaxSchedules guard.
func TestScheduleCapReported(t *testing.T) {
	tc, _ := SuiteTest("sb")
	rep, err := Explore(tc, Base, Options{MaxSchedules: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Capped {
		t.Fatal("cap of 5 not reported")
	}
	if v := rep.Verdict(tc); v.OK {
		t.Error("capped exploration passed the verdict")
	}
}

// TestValidateRejectsMalformedTests covers the DSL's consistency checks.
func TestValidateRejectsMalformedTests(t *testing.T) {
	base := Test{
		Name: "ok", Vars: 1, Regs: 1,
		Threads: [][]Instr{{Load(0, 0)}},
		Allowed: []Outcome{regsOut(0)},
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid test rejected: %v", err)
	}
	bad := []Test{
		{},
		{Name: "no-threads"},
		{Name: "bad-var", Vars: 1, Regs: 1, Threads: [][]Instr{{Load(3, 0)}}},
		{Name: "bad-reg", Vars: 1, Regs: 1, Threads: [][]Instr{{Load(0, 7)}}},
		{Name: "bad-spin", Vars: 1, Regs: 1, Threads: [][]Instr{{Spin(0, 1, 0, 0)}}},
		{Name: "bad-final", Vars: 1, Regs: 0, Threads: [][]Instr{{Store(0, 1)}}, Final: []VarID{2}},
		{Name: "bad-outcome", Vars: 1, Regs: 1, Threads: [][]Instr{{Load(0, 0)}},
			Allowed: []Outcome{regsOut(0, 0)}},
	}
	for _, tc := range bad {
		if err := tc.Validate(); err == nil {
			t.Errorf("test %q accepted", tc.Name)
		}
	}
}

// TestUnsetRegRendersAsQuestionMark pins the sentinel rendering.
func TestUnsetRegRendersAsQuestionMark(t *testing.T) {
	o := Outcome{Regs: []mem.Word{UnsetReg, 4}, Mem: []mem.Word{1}}
	if got, want := o.Key(), "r0=?,r1=4;m0=1"; got != want {
		t.Errorf("Key() = %q, want %q", got, want)
	}
}
