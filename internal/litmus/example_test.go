package litmus_test

import (
	"fmt"

	"repro/internal/litmus"
	"repro/internal/mem"
)

// ExampleRun defines a minimal message-passing litmus test in the DSL
// and explores it exhaustively under the Base configuration: the writer
// publishes a payload and sets a hardware flag; the reader waits,
// self-invalidates, and must always observe the payload.
func ExampleRun() {
	test := litmus.Test{
		Name: "example-mp",
		Doc:  "annotated message passing: the reader always sees 42",
		Vars: 1, // one shared variable, X, on its own cache line
		Regs: 1, // one observation register, r0
		Threads: [][]litmus.Instr{
			{ // writer
				litmus.Store(0, 42),
				litmus.Publish(0, 1), // write X back, for consumer thread 1
				litmus.FlagSet(0, 1),
			},
			{ // reader
				litmus.FlagWait(0, 1),
				litmus.Invalidate(0, 0), // discard stale X, produced by thread 0
				litmus.Load(0, 0),       // r0 = X
			},
		},
		Allowed:  []litmus.Outcome{{Regs: []mem.Word{42}}},
		Requires: []litmus.Outcome{{Regs: []mem.Word{42}}},
		Expect:   litmus.ExpectNone,
	}

	verdict, report, err := litmus.Run(test, litmus.Base, litmus.Options{})
	if err != nil {
		fmt.Println("invalid test:", err)
		return
	}
	fmt.Println(verdict)
	fmt.Printf("schedules explored: %d\n", report.Schedules)
	for _, o := range report.SortedOutcomes() {
		fmt.Printf("outcome %s: %d schedule(s), allowed=%v\n", o.Key, o.Count, o.Allowed)
	}
	// The DPOR explorer proves the flag handoff serializes the threads:
	// only two schedules (flag observed set / observed unset once) are
	// inequivalent, where naive interleaving would run dozens.
	//
	// Output:
	// example-mp/Base: ok (expect none)
	// schedules explored: 2
	// outcome r0=42: 2 schedule(s), allowed=true
}

// ExampleReport_Verdict shows how an under-annotated test reads its
// verdict: the writer forgets the writeback, and the exhaustive
// exploration must find at least one schedule where the reader observes
// the stale value, attributed to the missing WB.
func ExampleReport_Verdict() {
	test := litmus.Test{
		Name: "example-mp-nowb",
		Doc:  "the writer never publishes: every ordered read is stale",
		Vars: 1, Regs: 1,
		Threads: [][]litmus.Instr{
			{litmus.Store(0, 42), litmus.FlagSet(0, 1)}, // missing Publish
			{litmus.FlagWait(0, 1), litmus.Invalidate(0, 0), litmus.Load(0, 0)},
		},
		Allowed: []litmus.Outcome{{Regs: []mem.Word{0}}}, // the stale zero is what the machine produces
		Expect:  litmus.ExpectMissingWB,
	}

	report, err := litmus.Explore(test, litmus.Base, litmus.Options{})
	if err != nil {
		fmt.Println("invalid test:", err)
		return
	}
	verdict := report.Verdict(test)
	fmt.Println("ok:", verdict.OK)
	fmt.Println("exposing schedules:", report.ViolationSchedules)
	fmt.Println("attribution:", report.Violations[0].Class)
	// Output:
	// ok: true
	// exposing schedules: 2
	// attribution: missing-wb
}
