package litmus

import (
	"reflect"
	"sort"
	"testing"
)

// allConfigs is the full configuration matrix the equivalence gate runs:
// the standard three plus the fuzz-only single-buffer points.
var allConfigs = []Config{Base, BMI, Adaptive, BM, BI}

// goldenSchedules pins, for every suite test under every configuration,
// the number of complete schedules each explorer needs. The DPOR count
// must stay at or below the adjacent-swap count (it explores the same
// outcome space with a finer dependence relation plus state dedup); a
// drift in either column means the explorer's pruning changed and must
// be re-derived deliberately.
var goldenSchedules = []struct {
	Test   string
	Config string
	DPOR   int
	Swap   int
}{
	{"mp-annotated", "Base", 2, 4},
	{"mp-annotated", "B+M+I", 2, 4},
	{"mp-annotated", "Adaptive", 2, 4},
	{"mp-annotated", "B+M", 2, 4},
	{"mp-annotated", "B+I", 2, 4},
	{"mp-nowb", "Base", 2, 3},
	{"mp-nowb", "B+M+I", 2, 3},
	{"mp-nowb", "Adaptive", 2, 3},
	{"mp-nowb", "B+M", 2, 3},
	{"mp-nowb", "B+I", 2, 3},
	{"mp-noinv", "Base", 6, 10},
	{"mp-noinv", "B+M+I", 6, 10},
	{"mp-noinv", "Adaptive", 6, 10},
	{"mp-noinv", "B+M", 6, 10},
	{"mp-noinv", "B+I", 6, 10},
	{"sb", "Base", 5, 11},
	{"sb", "B+M+I", 5, 11},
	{"sb", "Adaptive", 5, 11},
	{"sb", "B+M", 5, 11},
	{"sb", "B+I", 5, 11},
	{"lb", "Base", 5, 5},
	{"lb", "B+M+I", 5, 5},
	{"lb", "Adaptive", 5, 5},
	{"lb", "B+M", 5, 5},
	{"lb", "B+I", 5, 5},
	{"corr", "Base", 5, 15},
	{"corr", "B+M+I", 5, 15},
	{"corr", "Adaptive", 5, 15},
	{"corr", "B+M", 5, 15},
	{"corr", "B+I", 5, 15},
	{"coww", "Base", 6, 6},
	{"coww", "B+M+I", 6, 6},
	{"coww", "Adaptive", 6, 6},
	{"coww", "B+M", 6, 6},
	{"coww", "B+I", 6, 6},
	{"barrier", "Base", 2, 56},
	{"barrier", "B+M+I", 2, 56},
	{"barrier", "Adaptive", 2, 56},
	{"barrier", "B+M", 2, 56},
	{"barrier", "B+I", 2, 56},
	{"lock-annotated", "Base", 4, 36},
	{"lock-annotated", "B+M+I", 4, 10},
	{"lock-annotated", "Adaptive", 4, 36},
	{"lock-annotated", "B+M", 4, 36},
	{"lock-annotated", "B+I", 4, 10},
	{"lock-nowb", "Base", 4, 7},
	{"lock-nowb", "B+M+I", 4, 7},
	{"lock-nowb", "Adaptive", 4, 7},
	{"lock-nowb", "B+M", 4, 7},
	{"lock-nowb", "B+I", 4, 7},
	{"lock-noinv", "Base", 8, 17},
	{"lock-noinv", "B+M+I", 8, 17},
	{"lock-noinv", "Adaptive", 8, 17},
	{"lock-noinv", "B+M", 8, 17},
	{"lock-noinv", "B+I", 8, 17},
	{"lock-lostupdate", "Base", 4, 7},
	{"lock-lostupdate", "B+M+I", 4, 7},
	{"lock-lostupdate", "Adaptive", 4, 7},
	{"lock-lostupdate", "B+M", 4, 7},
	{"lock-lostupdate", "B+I", 4, 7},
	{"flag-annotated", "Base", 2, 4},
	{"flag-annotated", "B+M+I", 2, 4},
	{"flag-annotated", "Adaptive", 2, 4},
	{"flag-annotated", "B+M", 2, 4},
	{"flag-annotated", "B+I", 2, 4},
	{"flag-nowb", "Base", 2, 3},
	{"flag-nowb", "B+M+I", 2, 3},
	{"flag-nowb", "Adaptive", 2, 3},
	{"flag-nowb", "B+M", 2, 3},
	{"flag-nowb", "B+I", 2, 3},
	{"flag-noinv", "Base", 6, 10},
	{"flag-noinv", "B+M+I", 6, 10},
	{"flag-noinv", "Adaptive", 6, 10},
	{"flag-noinv", "B+M", 6, 10},
	{"flag-noinv", "B+I", 6, 10},
	{"race-annotated", "Base", 7, 20},
	{"race-annotated", "B+M+I", 7, 20},
	{"race-annotated", "Adaptive", 7, 20},
	{"race-annotated", "B+M", 7, 20},
	{"race-annotated", "B+I", 7, 20},
	{"fuzz-csexit-nowb", "Base", 4, 30},
	{"fuzz-csexit-nowb", "B+M+I", 4, 9},
	{"fuzz-csexit-nowb", "Adaptive", 4, 30},
	{"fuzz-csexit-nowb", "B+M", 4, 30},
	{"fuzz-csexit-nowb", "B+I", 4, 9},
	{"fuzz-notify-nowb", "Base", 2, 60},
	{"fuzz-notify-nowb", "B+M+I", 2, 60},
	{"fuzz-notify-nowb", "Adaptive", 2, 60},
	{"fuzz-notify-nowb", "B+M", 2, 60},
	{"fuzz-notify-nowb", "B+I", 2, 60},
	{"fuzz-await-noinv", "Base", 6, 210},
	{"fuzz-await-noinv", "B+M+I", 6, 210},
	{"fuzz-await-noinv", "Adaptive", 6, 210},
	{"fuzz-await-noinv", "B+M", 6, 210},
	{"fuzz-await-noinv", "B+I", 6, 210},
	{"race-nowb-payload", "Base", 6, 17},
	{"race-nowb-payload", "B+M+I", 6, 17},
	{"race-nowb-payload", "Adaptive", 6, 17},
	{"race-nowb-payload", "B+M", 6, 17},
	{"race-nowb-payload", "B+I", 6, 17},
}

// outcomeKeys returns the sorted outcome-key set of a report.
func outcomeKeys(r *Report) []string {
	keys := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// violationClasses returns the sorted distinct violation classes.
func violationClasses(r *Report) []string {
	set := map[string]bool{}
	for _, v := range r.Violations {
		set[v.Class] = true
	}
	classes := make([]string, 0, len(set))
	for c := range set {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	return classes
}

// TestDPORSwapEquivalence is the explorer-replacement regression gate:
// for every suite test under every configuration, source-DPOR and the
// legacy adjacent-swap canonicalization must agree on the outcome-key
// set, the outcomes' allowed bits, the set of violation classes, and
// whether any schedule violates at all — while DPOR completes in at
// most as many schedules. Both schedule counts are pinned in
// goldenSchedules.
func TestDPORSwapEquivalence(t *testing.T) {
	golden := map[[2]string][2]int{}
	for _, g := range goldenSchedules {
		golden[[2]string{g.Test, g.Config}] = [2]int{g.DPOR, g.Swap}
	}
	for _, tc := range Suite {
		for _, cfg := range allConfigs {
			d, err := Explore(tc, cfg, Options{Algo: AlgoDPOR})
			if err != nil {
				t.Fatalf("%s/%s dpor: %v", tc.Name, cfg.Name, err)
			}
			s, err := Explore(tc, cfg, Options{Algo: AlgoSwap})
			if err != nil {
				t.Fatalf("%s/%s swap: %v", tc.Name, cfg.Name, err)
			}
			if got, want := outcomeKeys(d), outcomeKeys(s); !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: outcome sets differ: dpor %v, swap %v", tc.Name, cfg.Name, got, want)
			}
			for k, od := range d.Outcomes {
				if os, ok := s.Outcomes[k]; ok && od.Allowed != os.Allowed {
					t.Errorf("%s/%s: outcome %q allowed bit differs", tc.Name, cfg.Name, k)
				}
			}
			if got, want := violationClasses(d), violationClasses(s); !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: violation classes differ: dpor %v, swap %v", tc.Name, cfg.Name, got, want)
			}
			if (d.ViolationSchedules > 0) != (s.ViolationSchedules > 0) {
				t.Errorf("%s/%s: violation presence differs: dpor %d, swap %d",
					tc.Name, cfg.Name, d.ViolationSchedules, s.ViolationSchedules)
			}
			if dv, sv := d.Verdict(tc), s.Verdict(tc); dv.OK != sv.OK {
				t.Errorf("%s/%s: verdicts differ: dpor %v, swap %v", tc.Name, cfg.Name, dv, sv)
			}
			if d.Schedules > s.Schedules {
				t.Errorf("%s/%s: dpor explored MORE schedules (%d) than swap (%d)",
					tc.Name, cfg.Name, d.Schedules, s.Schedules)
			}
			want, ok := golden[[2]string{tc.Name, cfg.Name}]
			if !ok {
				t.Errorf("%s/%s: missing golden entry: {%q, %q, %d, %d}", tc.Name, cfg.Name, tc.Name, cfg.Name, d.Schedules, s.Schedules)
				continue
			}
			if d.Schedules != want[0] || s.Schedules != want[1] {
				t.Errorf("%s/%s: schedule counts (dpor %d, swap %d) drifted from golden (%d, %d)",
					tc.Name, cfg.Name, d.Schedules, s.Schedules, want[0], want[1])
			}
		}
	}
}

// TestDPORStrictWin: on the 4-thread disjoint-pair test, DPOR's refined
// dependence relation (sync ops independent across primitive IDs) plus
// state dedup must beat adjacent-swap by a strict margin, not just tie.
func TestDPORStrictWin(t *testing.T) {
	tc, ok := SuiteTest("mp-pair-annotated")
	if !ok {
		t.Fatal("mp-pair-annotated missing")
	}
	for _, cfg := range allConfigs {
		d, err := Explore(tc, cfg, Options{Algo: AlgoDPOR})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Explore(tc, cfg, Options{Algo: AlgoSwap})
		if err != nil {
			t.Fatal(err)
		}
		if d.Schedules >= s.Schedules {
			t.Errorf("%s: dpor %d schedules, swap %d: want strictly fewer", cfg.Name, d.Schedules, s.Schedules)
		}
		if v := d.Verdict(tc); !v.OK {
			t.Errorf("%s: %v", cfg.Name, v)
		}
	}
}

// TestExtraSuite runs the extra tests (4-thread pair and the packed
// variants the explorer used to reject) to a passing verdict under DPOR,
// and checks the packed fuzz repros still expose their violations.
func TestExtraSuite(t *testing.T) {
	for _, tc := range ExtraSuite {
		for _, cfg := range Configs {
			v, rep, err := Run(tc, cfg, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.Name, cfg.Name, err)
			}
			if !v.OK {
				t.Errorf("%s/%s: %v", tc.Name, cfg.Name, v)
			}
			if tc.Expect != ExpectNone && rep.ViolationSchedules == 0 {
				t.Errorf("%s/%s: expected violations, saw none", tc.Name, cfg.Name)
			}
		}
	}
}
