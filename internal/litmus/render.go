package litmus

import (
	"fmt"
	"strings"
)

// Render writes the test as a Go composite literal in this package's
// constructor DSL — the form the suite table is written in — so a
// program found by the fuzzer can be committed verbatim as a permanent
// regression test. The output is stable: identical tests render to
// identical bytes.
func Render(t Test) string {
	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, "\tName: %q,\n", t.Name)
	if t.Doc != "" {
		fmt.Fprintf(&b, "\tDoc:  %q,\n", t.Doc)
	}
	fmt.Fprintf(&b, "\tVars: %d, Regs: %d,\n", t.Vars, t.Regs)
	b.WriteString("\tThreads: [][]Instr{\n")
	for _, th := range t.Threads {
		b.WriteString("\t\t{")
		for i, in := range th {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(renderInstr(in))
		}
		b.WriteString("},\n")
	}
	b.WriteString("\t},\n")
	if len(t.Final) > 0 {
		parts := make([]string, len(t.Final))
		for i, v := range t.Final {
			parts[i] = fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(&b, "\tFinal: []VarID{%s},\n", strings.Join(parts, ", "))
	}
	if len(t.Allowed) > 0 {
		fmt.Fprintf(&b, "\tAllowed: []Outcome{%s},\n", renderOutcomes(t.Allowed))
	}
	if len(t.Requires) > 0 {
		fmt.Fprintf(&b, "\tRequires: []Outcome{%s},\n", renderOutcomes(t.Requires))
	}
	if t.Expect != ExpectNone {
		fmt.Fprintf(&b, "\tExpect: %s,\n", expectIdents[t.Expect])
	}
	if t.OCC {
		b.WriteString("\tOCC: true,\n")
	}
	if t.Packed {
		b.WriteString("\tPacked: true,\n")
	}
	b.WriteString("}")
	return b.String()
}

var expectIdents = [...]string{
	"ExpectNone", "ExpectMissingWB", "ExpectMissingINV", "ExpectLostUpdate", "ExpectForbidden",
}

func renderInstr(in Instr) string {
	switch in.Kind {
	case ILoad:
		return fmt.Sprintf("Load(%d, %d)", in.Var, in.Dst)
	case IStore:
		return fmt.Sprintf("Store(%d, %d)", in.Var, in.Val)
	case ICompute:
		return fmt.Sprintf("Compute(%d)", in.Val)
	case IWB:
		return fmt.Sprintf("WB(%d)", in.Var)
	case IINV:
		return fmt.Sprintf("INV(%d)", in.Var)
	case IPublish:
		return fmt.Sprintf("Publish(%d, %d)", in.Var, in.Peer)
	case IInvalidate:
		return fmt.Sprintf("Invalidate(%d, %d)", in.Var, in.Peer)
	case ISpin:
		return fmt.Sprintf("Spin(%d, %d, %d, %d)", in.Var, in.Val, in.N, in.Dst)
	case IAcquire:
		return fmt.Sprintf("Acquire(%d)", in.ID)
	case IRelease:
		return fmt.Sprintf("Release(%d)", in.ID)
	case IFlagSet:
		return fmt.Sprintf("FlagSet(%d, %d)", in.ID, in.Val)
	case IFlagWait:
		return fmt.Sprintf("FlagWait(%d, %d)", in.ID, in.Val)
	case ICSEnter:
		return fmt.Sprintf("CSEnter(%d)", in.ID)
	case ICSExit:
		return fmt.Sprintf("CSExit(%d)", in.ID)
	case INotifyFlag:
		return fmt.Sprintf("NotifyFlag(%d, %d)", in.ID, in.Val)
	case IAwaitFlag:
		return fmt.Sprintf("AwaitFlag(%d, %d)", in.ID, in.Val)
	case IBarrierSync:
		return fmt.Sprintf("BarrierSync(%d)", in.ID)
	case IDMA:
		return fmt.Sprintf("DMA(%d, %d, %d)", in.Var, in.Src, in.Peer)
	}
	return fmt.Sprintf("Instr{Kind: %d}", in.Kind)
}

func renderOutcomes(outs []Outcome) string {
	var b strings.Builder
	for _, o := range outs {
		b.WriteString("\n\t\t{")
		if len(o.Regs) > 0 {
			b.WriteString("Regs: []mem.Word{")
			for i, v := range o.Regs {
				if i > 0 {
					b.WriteString(", ")
				}
				if v == UnsetReg {
					b.WriteString("UnsetReg")
				} else {
					fmt.Fprintf(&b, "%d", v)
				}
			}
			b.WriteString("}")
		}
		if len(o.Mem) > 0 {
			if len(o.Regs) > 0 {
				b.WriteString(", ")
			}
			b.WriteString("Mem: []mem.Word{")
			for i, v := range o.Mem {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%d", v)
			}
			b.WriteString("}")
		}
		b.WriteString("},")
	}
	b.WriteString("\n\t")
	return b.String()
}
