package litmus

import (
	"reflect"
	"strings"
	"testing"
)

// enumGateOptions is the enumeration surface the gate sweeps: the full
// alphabet (loads, stores, WB, INV, annotated flags, critical sections,
// barriers, DMA) with packed clones.
func enumGateOptions(k int) EnumOptions {
	return EnumOptions{MaxOps: k, MaxThreads: 3, DMA: true, Packed: true, Locks: 1, Barriers: true}
}

// goldenEnum pins the sweep size per op budget k: canonical programs
// (packed clones included) and annotation mutants. Drift means the
// alphabet, the validity filters, or the canonicalization changed.
var goldenEnum = []struct {
	K        int
	Programs int
	Mutants  int
}{
	{2, 44, 9},
	{3, 1009, 367},
	{4, 17851, 10416},
}

// TestEnumerateGolden pins the enumeration's size and basic hygiene:
// every generated test and every mutant validates, names are unique,
// and the counts match the golden table.
func TestEnumerateGolden(t *testing.T) {
	for _, g := range goldenEnum {
		if testing.Short() && g.K > 3 {
			continue
		}
		tests := Enumerate(enumGateOptions(g.K))
		if len(tests) != g.Programs {
			t.Errorf("k=%d: %d programs, golden %d", g.K, len(tests), g.Programs)
		}
		names := map[string]bool{}
		mutants := 0
		for _, tc := range tests {
			if err := tc.Validate(); err != nil {
				t.Fatalf("k=%d: generated invalid test: %v", g.K, err)
			}
			if names[tc.Name] {
				t.Errorf("k=%d: duplicate name %s", g.K, tc.Name)
			}
			names[tc.Name] = true
			if tc.Allowed != nil {
				t.Errorf("k=%d: %s: enumerated test must leave the outcome set open", g.K, tc.Name)
			}
			for _, m := range Mutants(tc) {
				mutants++
				if err := m.Validate(); err != nil {
					t.Fatalf("k=%d: invalid mutant: %v", g.K, err)
				}
			}
		}
		if mutants != g.Mutants {
			t.Errorf("k=%d: %d mutants, golden %d", g.K, mutants, g.Mutants)
		}
	}
}

// TestEnumerateDeterministic: two runs produce identical test lists.
func TestEnumerateDeterministic(t *testing.T) {
	a := Enumerate(enumGateOptions(3))
	b := Enumerate(enumGateOptions(3))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("enumeration is not deterministic")
	}
}

// TestEnumerateCanonical: the canonicalization is genuinely symmetric —
// no two generated programs are thread-permutations or variable/flag
// renamings of each other (their canonical keys would collide and dedup
// would have dropped one).
func TestEnumerateCanonical(t *testing.T) {
	tests := Enumerate(enumGateOptions(3))
	for _, tc := range tests {
		if tc.Packed {
			continue
		}
		// Threads of a canonical program arrive sorted by their rendering
		// in at least one permutation; a cheap spot-check: the name embeds
		// the canonical key, so names are canonical renderings.
		if !strings.HasPrefix(tc.Name, "enum[") {
			t.Fatalf("unexpected name %q", tc.Name)
		}
	}
}

// TestEnumerationSweep is the exhaustiveness gate of the enumeration
// tentpole: every annotated-by-construction program up to k ops must
// explore to completion (no errors, truncation, or caps) with zero
// violations under DPOR. Short mode stops at k=3; the full run sweeps
// k=4 (the CI litmus-enumerate job always runs the full sweep).
func TestEnumerationSweep(t *testing.T) {
	maxK := 4
	if testing.Short() {
		maxK = 3
	}
	st := Sweep(enumGateOptions(maxK), Base, Options{})
	if len(st.Violating) > 0 {
		t.Errorf("%d annotated programs violated, first: %s", len(st.Violating), st.Violating[0])
	}
	if len(st.Failed) > 0 {
		t.Errorf("%d explorations not exhaustive, first: %s", len(st.Failed), st.Failed[0])
	}
	for _, g := range goldenEnum {
		if g.K == maxK && st.Programs != g.Programs {
			t.Errorf("k=%d: swept %d programs, golden %d", maxK, st.Programs, g.Programs)
		}
	}
	if st.DedupCuts == 0 || st.Schedules == 0 {
		t.Errorf("sweep looks degenerate: schedules=%d dedup_cuts=%d", st.Schedules, st.DedupCuts)
	}
	t.Logf("k=%d: %d programs, %d mutants, runs=%d schedules=%d dedup_cuts=%d states=%d",
		maxK, st.Programs, st.Mutants, st.Runs, st.Schedules, st.DedupCuts, st.StatesSeen)
}

// TestEnumerateMutantsChangeBehavior spot-checks that stripping an
// annotation is observable: for the classic MP shape the nowb mutant
// must expose a missing-wb violation under exhaustive exploration.
func TestEnumerateMutantsChangeBehavior(t *testing.T) {
	// Store x; NotifyFlag || AwaitFlag; Load x — the enumeration's own
	// rendering of flag-annotated.
	var mp Test
	for _, tc := range Enumerate(EnumOptions{MaxOps: 4, MaxThreads: 2, Vars: 1, Flags: 1}) {
		if tc.Name == "enum[s0.n0|a0.l0]" {
			mp = tc
			break
		}
	}
	if mp.Name == "" {
		t.Fatal("enumeration did not generate the MP shape")
	}
	found := false
	for _, m := range Mutants(mp) {
		rep, err := Explore(m, Base, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.ViolationSchedules > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no MP mutant exposed a violation")
	}
}
