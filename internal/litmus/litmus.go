// Package litmus is the repo's correctness-tooling layer: a table-driven
// litmus-test engine that drives internal/engine through every thread
// interleaving of a tiny guest program (up to a step budget, with
// partial-order pruning of provably equivalent schedules) and checks
// every outcome against both the test's declared allowed set and
// internal/oracle's visibility rules.
//
// Each test is a handful of threads written in a small instruction DSL
// (ILoad/IStore plus the WB/INV publication forms and both raw and
// annotated synchronization), a declared set of allowed final
// register/memory outcomes, and an expectation: annotated variants must
// be violation-free on every schedule, while deliberately
// under-annotated variants must expose their stale read or lost update
// on at least one schedule with the correct missing-wb / missing-inv /
// lost-update attribution. The standard suite (Suite) covers the
// classic patterns — message passing, store/load buffering, coherent
// read-read and write-write, lock- and flag-based publication, and
// Figure 6b's enforced-data-race flags — under the Base, B+M+I, and
// level-adaptive configurations.
package litmus

import (
	"fmt"
	"strings"

	"repro/internal/annotate"
	"repro/internal/mem"
)

// VarID names one shared variable of a test. The harness places each
// variable on its own cache line (sequential lines, so tiny tests can
// never conflict-miss — see the eviction guard in explore.go).
type VarID int

// Reg names one observation register. Registers are global to the test
// (any thread may write any register, though by convention each thread
// owns its own) and initialize to the sentinel UnsetReg so a register
// no instruction wrote is distinguishable from a loaded zero.
type Reg int

// UnsetReg is the initial value of every observation register.
const UnsetReg mem.Word = 0xdeadbeef

// InstrKind enumerates the litmus instruction vocabulary.
type InstrKind int

const (
	// ILoad loads Var into register Dst. IStore stores Val to Var.
	// ICompute burns Val cycles of local work.
	ILoad InstrKind = iota
	IStore
	ICompute

	// IWB / IINV are the raw per-variable writeback / self-invalidation
	// of Figure 6b: identical in every configuration. Under-annotated
	// variants use them on the side that is still correct, so the blame
	// for the exposed stale read lands on the side that omitted them.
	IWB
	IINV

	// IPublish and IInvalidate are the config-lowered publication forms:
	// WB(range) / INV(range) under Base, the MEB-served WB ALL and
	// IEB-arming lazy INV ALL under B+M+I, and WB_CONS(range, Peer) /
	// INV_PROD(range, Peer) under the level-adaptive configuration.
	IPublish
	IInvalidate

	// ISpin is Figure 6b's racy flag read loop: up to N probes of
	// {INV Var; load Var}, stopping early when the loaded value equals
	// Val. The last loaded value lands in Dst.
	ISpin

	// Raw synchronization: the machine operation with no annotation at
	// all. Under-annotated variants use these where an annotated variant
	// would use the forms below.
	IAcquire
	IRelease
	IFlagSet
	IFlagWait

	// Annotated synchronization, lowered through internal/annotate
	// exactly as Programming Model 1 programs are: the active
	// configuration decides which WB/INV forms surround the operation.
	ICSEnter
	ICSExit
	INotifyFlag
	IAwaitFlag
	IBarrierSync

	// IDMA is a DMA copy of variable Src's word to variable Var,
	// depositing the line into block Peer's L2 (core/dma.go). The source
	// must already be published — DMA reads the shared levels, not the
	// initiator's L1 — so tests pair it with a preceding IWB.
	IDMA
)

var instrNames = [...]string{
	"load", "store", "compute",
	"wb", "inv", "publish", "invalidate", "spin",
	"acquire", "release", "flagset", "flagwait",
	"csenter", "csexit", "notifyflag", "awaitflag", "barriersync",
	"dma",
}

func (k InstrKind) String() string {
	if k < 0 || int(k) >= len(instrNames) {
		return fmt.Sprintf("instr(%d)", int(k))
	}
	return instrNames[k]
}

// Instr is one litmus instruction. Only the fields relevant to Kind are
// meaningful.
type Instr struct {
	Kind InstrKind
	Var  VarID    // load/store/WB/INV/publish/spin target; IDMA destination
	Val  mem.Word // store value, spin target value, flag value, compute cycles
	Dst  Reg      // destination register (ILoad, ISpin)
	ID   int      // lock/flag/barrier identifier
	N    int      // spin probe bound (ISpin)
	Peer int      // peer thread (level-adaptive forms) or target block (IDMA)
	Src  VarID    // IDMA source variable
}

// Convenience constructors keep test tables readable.

// Load reads v into register dst.
func Load(v VarID, dst Reg) Instr { return Instr{Kind: ILoad, Var: v, Dst: dst} }

// Store writes val to v.
func Store(v VarID, val mem.Word) Instr { return Instr{Kind: IStore, Var: v, Val: val} }

// Compute burns cycles of local work.
func Compute(cycles mem.Word) Instr { return Instr{Kind: ICompute, Val: cycles} }

// WB and INV are the raw, config-invariant per-variable forms.
func WB(v VarID) Instr  { return Instr{Kind: IWB, Var: v} }
func INV(v VarID) Instr { return Instr{Kind: IINV, Var: v} }

// Publish and Invalidate are the config-lowered forms; peer is the
// consuming (resp. producing) thread for the level-adaptive lowering.
func Publish(v VarID, peer int) Instr    { return Instr{Kind: IPublish, Var: v, Peer: peer} }
func Invalidate(v VarID, peer int) Instr { return Instr{Kind: IInvalidate, Var: v, Peer: peer} }

// Spin probes v up to n times (INV + load each), stopping when it reads
// target; the last value read lands in dst.
func Spin(v VarID, target mem.Word, n int, dst Reg) Instr {
	return Instr{Kind: ISpin, Var: v, Val: target, N: n, Dst: dst}
}

// Raw synchronization.
func Acquire(lock int) Instr           { return Instr{Kind: IAcquire, ID: lock} }
func Release(lock int) Instr           { return Instr{Kind: IRelease, ID: lock} }
func FlagSet(id int, v mem.Word) Instr { return Instr{Kind: IFlagSet, ID: id, Val: v} }
func FlagWait(id int, v mem.Word) Instr {
	return Instr{Kind: IFlagWait, ID: id, Val: v}
}

// Annotated synchronization.
func CSEnter(lock int) Instr { return Instr{Kind: ICSEnter, ID: lock} }
func CSExit(lock int) Instr  { return Instr{Kind: ICSExit, ID: lock} }
func NotifyFlag(id int, v mem.Word) Instr {
	return Instr{Kind: INotifyFlag, ID: id, Val: v}
}
func AwaitFlag(id int, v mem.Word) Instr {
	return Instr{Kind: IAwaitFlag, ID: id, Val: v}
}
func BarrierSync(id int) Instr { return Instr{Kind: IBarrierSync, ID: id} }

// DMA copies src's word to dst, depositing into block toBlock's L2.
func DMA(dst, src VarID, toBlock int) Instr {
	return Instr{Kind: IDMA, Var: dst, Src: src, Peer: toBlock}
}

// Expectation declares what the exhaustive exploration must find.
type Expectation int

const (
	// ExpectNone: a correctly annotated test — zero oracle violations
	// and only Allowed outcomes, on every schedule.
	ExpectNone Expectation = iota
	// ExpectMissingWB / ExpectMissingINV / ExpectLostUpdate: an
	// under-annotated test — at least one schedule must produce an
	// oracle violation, and every violation must carry exactly this
	// attribution class.
	ExpectMissingWB
	ExpectMissingINV
	ExpectLostUpdate
	// ExpectForbidden: a racy test whose reads the oracle deliberately
	// skips — the bug instead surfaces as an outcome outside Allowed on
	// at least one schedule, with zero oracle violations.
	ExpectForbidden
)

var expectNames = [...]string{"none", "missing-wb", "missing-inv", "lost-update", "forbidden-outcome"}

func (e Expectation) String() string {
	if e < 0 || int(e) >= len(expectNames) {
		return fmt.Sprintf("expect(%d)", int(e))
	}
	return expectNames[e]
}

// Outcome is one observable final state: every observation register (in
// Reg order) plus the drained final memory value of each Final variable
// (in declaration order).
type Outcome struct {
	Regs []mem.Word
	Mem  []mem.Word
}

// Key renders the outcome as a canonical string, used as the map key in
// reports.
func (o Outcome) Key() string {
	var b strings.Builder
	for i, v := range o.Regs {
		if i > 0 {
			b.WriteByte(',')
		}
		if v == UnsetReg {
			fmt.Fprintf(&b, "r%d=?", i)
		} else {
			fmt.Fprintf(&b, "r%d=%d", i, v)
		}
	}
	for i, v := range o.Mem {
		if i > 0 || len(o.Regs) > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "m%d=%d", i, v)
	}
	return b.String()
}

// Test is one litmus test.
type Test struct {
	// Name identifies the test; Doc says what it checks.
	Name string
	Doc  string
	// Vars is the number of shared variables; Regs the number of
	// observation registers.
	Vars int
	Regs int
	// Threads holds each thread's instruction sequence.
	Threads [][]Instr
	// Final lists variables whose drained final memory value joins the
	// outcome.
	Final []VarID
	// Allowed is the set of permitted outcomes. A nil Allowed leaves the
	// outcome set open (every outcome is permitted) — enumerated tests
	// (see enumerate.go) use this, relying on the oracle rather than an
	// outcome whitelist for their verdicts. An empty non-nil set still
	// forbids everything.
	Allowed []Outcome
	// Requires lists outcomes that must each appear on at least one
	// schedule — they prove the exploration actually reaches the
	// interesting interleavings rather than vacuously passing.
	Requires []Outcome
	// Expect declares the verdict rule (see Expectation).
	Expect Expectation
	// OCC sets the annotation pattern's outside-critical-section
	// communication bit for the annotated sync forms.
	OCC bool
	// Packed lays consecutive variables out word-by-word on shared cache
	// lines (false sharing) instead of one line per variable. Packed
	// tests exercise line-granular WB/INV interactions; both explorers
	// handle them soundly (same-line ops are dependent under both
	// relations), the adjacent-swap one just prunes nothing between
	// packed neighbors.
	Packed bool
}

// Validate checks the test's internal consistency.
func (t Test) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("litmus: test with empty name")
	}
	if len(t.Threads) == 0 {
		return fmt.Errorf("litmus %s: no threads", t.Name)
	}
	check := func(o Outcome, what string) error {
		if len(o.Regs) != t.Regs || len(o.Mem) != len(t.Final) {
			return fmt.Errorf("litmus %s: %s outcome %q has shape %d regs/%d mem, want %d/%d",
				t.Name, what, o.Key(), len(o.Regs), len(o.Mem), t.Regs, len(t.Final))
		}
		return nil
	}
	for _, o := range t.Allowed {
		if err := check(o, "allowed"); err != nil {
			return err
		}
	}
	for _, o := range t.Requires {
		if err := check(o, "required"); err != nil {
			return err
		}
	}
	for ti, th := range t.Threads {
		for ii, in := range th {
			if in.Var < 0 || (int(in.Var) >= t.Vars && varKinds[in.Kind]) {
				return fmt.Errorf("litmus %s: thread %d instr %d (%v) references var %d of %d",
					t.Name, ti, ii, in.Kind, in.Var, t.Vars)
			}
			if regKinds[in.Kind] && (in.Dst < 0 || int(in.Dst) >= t.Regs) {
				return fmt.Errorf("litmus %s: thread %d instr %d (%v) writes reg %d of %d",
					t.Name, ti, ii, in.Kind, in.Dst, t.Regs)
			}
			if in.Kind == ISpin && in.N < 1 {
				return fmt.Errorf("litmus %s: thread %d instr %d: spin with N=%d", t.Name, ti, ii, in.N)
			}
			if in.Kind == IDMA {
				if in.Src < 0 || int(in.Src) >= t.Vars {
					return fmt.Errorf("litmus %s: thread %d instr %d (dma) reads var %d of %d",
						t.Name, ti, ii, in.Src, t.Vars)
				}
				if in.Peer < 0 {
					return fmt.Errorf("litmus %s: thread %d instr %d: dma to block %d", t.Name, ti, ii, in.Peer)
				}
				if t.Packed {
					// The DMA engine works in whole lines; under the packed
					// layout a variable's line is shared, so a transfer would
					// clobber its neighbors.
					return fmt.Errorf("litmus %s: thread %d instr %d: dma in a packed test", t.Name, ti, ii)
				}
			}
		}
	}
	for _, v := range t.Final {
		if v < 0 || int(v) >= t.Vars {
			return fmt.Errorf("litmus %s: final var %d of %d", t.Name, v, t.Vars)
		}
	}
	return nil
}

var varKinds = map[InstrKind]bool{
	ILoad: true, IStore: true, IWB: true, IINV: true,
	IPublish: true, IInvalidate: true, ISpin: true, IDMA: true,
}

var regKinds = map[InstrKind]bool{ILoad: true, ISpin: true}

// allowed reports whether o is in the test's allowed set; a nil set is
// open (everything allowed).
func (t Test) allowed(o Outcome) bool {
	if t.Allowed == nil {
		return true
	}
	for _, a := range t.Allowed {
		if outcomeEq(a, o) {
			return true
		}
	}
	return false
}

func outcomeEq(a, b Outcome) bool {
	if len(a.Regs) != len(b.Regs) || len(a.Mem) != len(b.Mem) {
		return false
	}
	for i := range a.Regs {
		if a.Regs[i] != b.Regs[i] {
			return false
		}
	}
	for i := range a.Mem {
		if a.Mem[i] != b.Mem[i] {
			return false
		}
	}
	return true
}

// Config is one litmus execution configuration: the annotation config
// that lowers the annotated sync forms, the buffer sizes that enable
// MEB/IEB in the hierarchy, and whether the publication forms lower to
// the level-adaptive instructions.
type Config struct {
	Name string
	Ann  annotate.Config
	// MEBEntries/IEBEntries size the hierarchy's entry buffers (0 = off).
	MEBEntries int
	IEBEntries int
	// Adaptive lowers IPublish/IInvalidate to WB_CONS/INV_PROD.
	Adaptive bool
}

// The configurations that matter for the paper's protocol core
// (Table II's endpoints plus Section V's level-adaptive forms).
var (
	Base     = Config{Name: "Base", Ann: annotate.Base}
	BMI      = Config{Name: "B+M+I", Ann: annotate.BMI, MEBEntries: 16, IEBEntries: 4}
	Adaptive = Config{Name: "Adaptive", Ann: annotate.Base, Adaptive: true}
	// BM and BI are the intermediate Table II points (one entry buffer
	// each). The standard litmus matrix skips them — B+M+I subsumes both
	// buffers' interleaving surface — but the fuzz campaign
	// (internal/fuzzgen) runs all four incoherent configurations so an
	// annotation weakening is judged under every buffer combination.
	BM = Config{Name: "B+M", Ann: annotate.BM, MEBEntries: 16}
	BI = Config{Name: "B+I", Ann: annotate.BI, IEBEntries: 4}
)

// Configs is the standard configuration matrix.
var Configs = []Config{Base, BMI, Adaptive}

// ConfigByName resolves a configuration label (as printed by cmd/litmus
// -config) to its Config, the fuzz-only BM/BI configurations included.
func ConfigByName(name string) (Config, bool) {
	for _, c := range append(append([]Config{}, Configs...), BM, BI) {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}
