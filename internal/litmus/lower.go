package litmus

import (
	"fmt"

	"repro/internal/annotate"
	"repro/internal/engine"
	"repro/internal/mem"
)

// varBase is where the shared-variable arena starts; each variable owns
// one full cache line so distinct variables never share a line (a
// precondition of the explorer's independence pruning) and sequential
// lines land in sequential sets (so tiny tests never conflict-miss).
// Packed tests instead lay variables out word-by-word from the same
// base, deliberately sharing lines.
const varBase = mem.Addr(0x10000)

// AddrOf returns the address of variable v under the test's layout.
func (t Test) AddrOf(v VarID) mem.Addr {
	if t.Packed {
		return varBase + mem.Addr(v)*mem.WordBytes
	}
	return varBase + mem.Addr(v)*mem.LineBytes
}

// VarOfAddr is the inverse of AddrOf: the variable whose word address is
// a, if any. Violation addresses are word-granular, so the mapping is
// exact under both layouts.
func (t Test) VarOfAddr(a mem.Addr) (VarID, bool) {
	if a < varBase {
		return 0, false
	}
	off := a - varBase
	step := mem.Addr(mem.LineBytes)
	if t.Packed {
		step = mem.WordBytes
	}
	if off%step != 0 {
		return 0, false
	}
	v := VarID(off / step)
	if int(v) >= t.Vars {
		return 0, false
	}
	return v, true
}

// rangeOf returns the one-word range of variable v.
func (t Test) rangeOf(v VarID) mem.Range { return mem.WordRange(t.AddrOf(v), 1) }

// lineOf returns the full cache line of variable v: the DMA engine works
// in whole lines, so IDMA transfers the variable's entire (private) line.
func (t Test) lineOf(v VarID) mem.Range {
	return mem.Range{Base: mem.LineAddr(t.AddrOf(v)), Bytes: mem.LineBytes}
}

// Guests lowers the test's threads to engine guests under cfg. The regs
// slice receives observation-register writes; guest execution is
// serialized by the engine's rendezvous protocol, so sharing it is safe.
func Guests(t Test, cfg Config, regs []mem.Word) []engine.Guest {
	gs := make([]engine.Guest, len(t.Threads))
	for i, instrs := range t.Threads {
		instrs := instrs
		gs[i] = func(ep engine.Proc) {
			p := annotate.Wrap(ep, cfg.Ann, annotate.Pattern{OCC: t.OCC})
			for _, in := range instrs {
				exec(p, t, cfg, in, regs)
			}
		}
	}
	return gs
}

// exec runs one litmus instruction on thread p.
func exec(p *annotate.P, t Test, cfg Config, in Instr, regs []mem.Word) {
	a := t.AddrOf(in.Var)
	r := t.rangeOf(in.Var)
	switch in.Kind {
	case ILoad:
		regs[in.Dst] = p.Load(a)
	case IStore:
		p.Store(a, in.Val)
	case ICompute:
		p.Compute(int64(in.Val))
	case IWB:
		p.WB(r)
	case IINV:
		p.INV(r)
	case IPublish:
		switch {
		case cfg.Adaptive:
			p.WBCons(r, in.Peer)
		case cfg.Ann.UseMEB:
			p.WBAllMEB()
		default:
			p.WB(r)
		}
	case IInvalidate:
		switch {
		case cfg.Adaptive:
			p.InvProd(r, in.Peer)
		case cfg.Ann.UseIEB:
			p.INVAllLazy()
		default:
			p.INV(r)
		}
	case ISpin:
		for i := 0; i < in.N; i++ {
			p.INV(r)
			v := p.Load(a)
			regs[in.Dst] = v
			if v == in.Val {
				break
			}
		}
	case IAcquire:
		p.Acquire(in.ID)
	case IRelease:
		p.Release(in.ID)
	case IFlagSet:
		p.FlagSet(in.ID, int64(in.Val))
	case IFlagWait:
		p.FlagWait(in.ID, int64(in.Val))
	case ICSEnter:
		p.CSEnter(in.ID)
	case ICSExit:
		p.CSExit(in.ID)
	case INotifyFlag:
		p.NotifyFlag(in.ID, int64(in.Val))
	case IAwaitFlag:
		p.AwaitFlag(in.ID, int64(in.Val))
	case IBarrierSync:
		p.BarrierSync(in.ID)
	case IDMA:
		p.DMACopy(a, t.lineOf(in.Src), in.Peer)
	default:
		panic(fmt.Sprintf("litmus: unknown instruction kind %v", in.Kind))
	}
}
