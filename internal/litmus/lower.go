package litmus

import (
	"fmt"

	"repro/internal/annotate"
	"repro/internal/engine"
	"repro/internal/mem"
)

// varBase is where the shared-variable arena starts; each variable owns
// one full cache line so distinct variables never share a line (a
// precondition of the explorer's independence pruning) and sequential
// lines land in sequential sets (so tiny tests never conflict-miss).
const varBase = mem.Addr(0x10000)

// varAddr returns the address of variable v.
func varAddr(v VarID) mem.Addr { return varBase + mem.Addr(v)*mem.LineBytes }

// varRange returns the one-word range of variable v.
func varRange(v VarID) mem.Range { return mem.WordRange(varAddr(v), 1) }

// guests lowers the test's threads to engine guests under cfg. The regs
// slice receives observation-register writes; guest execution is
// serialized by the engine's rendezvous protocol, so sharing it is safe.
func guests(t Test, cfg Config, regs []mem.Word) []engine.Guest {
	gs := make([]engine.Guest, len(t.Threads))
	for i, instrs := range t.Threads {
		instrs := instrs
		gs[i] = func(ep engine.Proc) {
			p := annotate.Wrap(ep, cfg.Ann, annotate.Pattern{OCC: t.OCC})
			for _, in := range instrs {
				exec(p, cfg, in, regs)
			}
		}
	}
	return gs
}

// exec runs one litmus instruction on thread p.
func exec(p *annotate.P, cfg Config, in Instr, regs []mem.Word) {
	a := varAddr(in.Var)
	r := varRange(in.Var)
	switch in.Kind {
	case ILoad:
		regs[in.Dst] = p.Load(a)
	case IStore:
		p.Store(a, in.Val)
	case ICompute:
		p.Compute(int64(in.Val))
	case IWB:
		p.WB(r)
	case IINV:
		p.INV(r)
	case IPublish:
		switch {
		case cfg.Adaptive:
			p.WBCons(r, in.Peer)
		case cfg.Ann.UseMEB:
			p.WBAllMEB()
		default:
			p.WB(r)
		}
	case IInvalidate:
		switch {
		case cfg.Adaptive:
			p.InvProd(r, in.Peer)
		case cfg.Ann.UseIEB:
			p.INVAllLazy()
		default:
			p.INV(r)
		}
	case ISpin:
		for i := 0; i < in.N; i++ {
			p.INV(r)
			v := p.Load(a)
			regs[in.Dst] = v
			if v == in.Val {
				break
			}
		}
	case IAcquire:
		p.Acquire(in.ID)
	case IRelease:
		p.Release(in.ID)
	case IFlagSet:
		p.FlagSet(in.ID, int64(in.Val))
	case IFlagWait:
		p.FlagWait(in.ID, int64(in.Val))
	case ICSEnter:
		p.CSEnter(in.ID)
	case ICSExit:
		p.CSExit(in.ID)
	case INotifyFlag:
		p.NotifyFlag(in.ID, int64(in.Val))
	case IAwaitFlag:
		p.AwaitFlag(in.ID, int64(in.Val))
	case IBarrierSync:
		p.BarrierSync(in.ID)
	default:
		panic(fmt.Sprintf("litmus: unknown instruction kind %v", in.Kind))
	}
}
