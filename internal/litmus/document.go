// The machine-readable document of a litmus run, shared by the litmus
// CLI and the sweep server so both emit byte-identical JSON for the
// same exploration.

package litmus

import (
	"encoding/json"
	"io"

	"repro/internal/envelope"
)

// SuiteResult pairs one exploration's verdict with its full report.
type SuiteResult struct {
	Verdict Verdict `json:"verdict"`
	Report  *Report `json:"report"`
}

// SweepResult is one enumeration sweep under one configuration.
type SweepResult struct {
	Config string     `json:"config"`
	K      int        `json:"k"`
	Stats  SweepStats `json:"stats"`
}

// Document is the machine-readable outcome of a litmus run, in
// suite-then-config order. The default envelope is hic/v2 with kind
// "litmus"; LegacyV1 converts to the hic-litmus/v1 layout. Exactly one
// of Results (suite mode) and Sweeps (enumeration) is populated. The
// document is canonical: fixed key order, sorted outcome maps, no
// timestamps — byte-identical across runs.
type Document struct {
	Schema  string        `json:"schema"`
	Kind    envelope.Kind `json:"kind,omitempty"`
	Budget  int           `json:"budget"`
	Results []SuiteResult `json:"results,omitempty"`
	Sweeps  []SweepResult `json:"sweeps,omitempty"`
}

// SuiteDocument explores every test under every configuration and
// collects the verdicts and reports. The returned error covers harness
// failures only; failed verdicts are data (see Failed).
func SuiteDocument(tests []Test, configs []Config, opts Options) (*Document, error) {
	doc := &Document{Schema: envelope.SchemaV2, Kind: envelope.KindLitmus, Budget: opts.Budget}
	for _, t := range tests {
		for _, cfg := range configs {
			v, rep, err := Run(t, cfg, opts)
			if err != nil {
				return nil, err
			}
			doc.Results = append(doc.Results, SuiteResult{Verdict: v, Report: rep})
		}
	}
	return doc, nil
}

// DefaultEnumOptions is the enumeration shape the CLI and server sweep:
// every litmus shape up to k ops across 3 threads, DMA and packed
// variants included, one lock, barriers on.
func DefaultEnumOptions(k int) EnumOptions {
	return EnumOptions{MaxOps: k, MaxThreads: 3, DMA: true, Packed: true, Locks: 1, Barriers: true}
}

// EnumerateDocument runs the systematic enumeration up to k ops under
// every configuration.
func EnumerateDocument(configs []Config, k int, opts Options) *Document {
	doc := &Document{Schema: envelope.SchemaV2, Kind: envelope.KindLitmus, Budget: opts.Budget}
	for _, cfg := range configs {
		doc.Sweeps = append(doc.Sweeps, SweepResult{
			Config: cfg.Name, K: k, Stats: Sweep(DefaultEnumOptions(k), cfg, opts),
		})
	}
	return doc
}

// Failed reports whether any verdict failed or any enumeration sweep
// found a violating or non-exhaustive program.
func (d *Document) Failed() bool {
	for _, r := range d.Results {
		if !r.Verdict.OK {
			return true
		}
	}
	for _, s := range d.Sweeps {
		if len(s.Stats.Violating) > 0 || len(s.Stats.Failed) > 0 {
			return true
		}
	}
	return false
}

// LegacyV1 returns a copy in the hic-litmus/v1 layout (no kind
// discriminator) for consumers that predate the v2 envelope.
func (d *Document) LegacyV1() *Document {
	legacy := *d
	legacy.Schema = envelope.LitmusV1
	legacy.Kind = ""
	return &legacy
}

// Encode writes the document as indented JSON with a trailing newline,
// the canonical wire form shared by the CLI and the server.
func (d *Document) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
