package litmus

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/topo"
)

// Exploration algorithms.
const (
	// AlgoDPOR is source-DPOR with sleep sets, backtrack sets over the
	// eviction-sound isa.Deps relation, and state-hash deduplication
	// (see dpor.go). It is the default: sound for every test, packed
	// layouts and eviction-bearing schedules included.
	AlgoDPOR = "dpor"
	// AlgoSwap is the original adjacent-swap canonicalization, retained
	// as the reference the DPOR explorer is regression-tested against.
	// It is only sound for runs without dirty evictions (the verdict
	// enforces this) and prunes nothing between packed variables.
	AlgoSwap = "adjacent-swap"
)

// Options bounds one exploration.
type Options struct {
	// Budget is the maximum number of scheduling decisions per schedule;
	// schedules that exceed it are cut off and counted as Truncated
	// (failing exhaustiveness). Default 256.
	Budget int
	// MaxSchedules caps the total number of runs (complete, truncated,
	// dead-end, or dedup-cut); hitting it sets Report.Capped. Default
	// 200000.
	MaxSchedules int
	// Algo selects the exploration algorithm: AlgoDPOR (default) or
	// AlgoSwap.
	Algo string
	// NoDedup disables the DPOR state-hash deduplication, for measuring
	// its contribution; the exploration is still sound, just larger.
	NoDedup bool
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = 256
	}
	if o.MaxSchedules <= 0 {
		o.MaxSchedules = 200000
	}
	if o.Algo == "" {
		o.Algo = AlgoDPOR
	}
	return o
}

// litmusCores is the machine size explorations run on: a single block
// (the intra-block topology, scaled to four cores) is enough for every
// two- to four-thread test and keeps per-run construction cheap.
const litmusCores = 4

// NewHierarchy builds the small, fresh hierarchy one litmus-scale run
// executes on: blocks×coresPerBlock cores with scaled-down caches (4 KB
// L1, 32 KB L2) — litmus footprints are a handful of lines, and small
// caches keep per-run allocation off the exploration's critical path.
// The explorer uses the single-block litmus machine; the fuzz harness
// (internal/fuzzgen) also builds multi-block machines for its tri-engine
// differential runs.
func NewHierarchy(cfg Config, blocks, coresPerBlock int) *core.Hierarchy {
	m := topo.NewCustom(blocks, coresPerBlock, 0, topo.DefaultParams())
	return core.New(m, core.Config{
		L1:         cache.Config{Bytes: 4 << 10, Ways: 4},
		L2:         cache.Config{Bytes: 32 << 10, Ways: 8},
		MEBEntries: cfg.MEBEntries,
		IEBEntries: cfg.IEBEntries,
	})
}

// litmusHierarchy builds the explorer's machine.
func litmusHierarchy(cfg Config) *core.Hierarchy {
	return NewHierarchy(cfg, 1, litmusCores)
}

// run status values.
const (
	runComplete = iota
	runDeadEnd
	runTruncated
	runError
	runCut
)

// machine is the fresh hierarchy+engine+oracle one run executes on.
type machine struct {
	h    *core.Hierarchy
	e    *engine.Engine
	o    *oracle.Oracle
	regs []mem.Word
}

func newMachine(t Test, cfg Config) *machine {
	m := &machine{h: litmusHierarchy(cfg)}
	m.regs = make([]mem.Word, t.Regs)
	for i := range m.regs {
		m.regs[i] = UnsetReg
	}
	m.e = engine.New(m.h, Guests(t, cfg, m.regs))
	m.o = oracle.New(len(t.Threads))
	m.e.SetObserver(m.o)
	return m
}

// finish folds one complete run into the report: it probes stale-read
// violations before the drain rewrites memory (so the "where" snapshot
// reflects the machine state the reader saw), drains, checks the final
// image, and records the outcome and any violations under sched.
func (m *machine) finish(t Test, rep *Report, sched string) {
	viol := m.o.Violations()
	wheres := make([]string, len(viol))
	for i, v := range viol {
		if v.Reader >= 0 {
			p := m.h.ProbeWord(v.Reader, v.Addr)
			wheres[i] = fmt.Sprintf("reader L1: present=%v dirty=%v val=%d; L2: present=%v val=%d; mem=%d",
				p.L1Present, p.L1Dirty, p.L1Val, p.L2Present, p.L2Val, p.MemVal)
		}
	}
	m.h.Drain()
	m.o.CheckFinal(m.h.Memory())
	if m.h.Evictions() > 0 {
		rep.EvictionRuns++
	}

	out := Outcome{Regs: append([]mem.Word(nil), m.regs...), Mem: make([]mem.Word, len(t.Final))}
	for i, v := range t.Final {
		out.Mem[i] = m.h.Memory().ReadWord(t.AddrOf(v))
	}
	key := out.Key()
	info := rep.Outcomes[key]
	if info == nil {
		info = &OutcomeInfo{Outcome: out, Key: key, Allowed: t.allowed(out), Sample: sched}
		rep.Outcomes[key] = info
	}
	info.Count++
	rep.Schedules++

	if m.o.Total() > 0 {
		rep.ViolationSchedules++
		for i, v := range m.o.Violations() {
			if len(rep.Violations) >= maxViolationsKept {
				break
			}
			vi := ViolationInfo{
				Class:    string(v.Class),
				Schedule: sched,
				Detail:   v.String(),
				Addr:     uint32(v.Addr),
				Reader:   v.Reader,
				Writer:   v.Writer,
			}
			if i < len(wheres) {
				vi.Where = wheres[i]
			}
			rep.Violations = append(rep.Violations, vi)
		}
	}
}

// replayer is the engine.Scheduler that drives one adjacent-swap run: it
// replays the prefix of candidate-index choices, then extends it with
// the first candidate the canonicalization allows, recording the
// candidate list at every decision for the driver's backtracking.
type replayer struct {
	prefix []int
	budget int
	pruned *int64

	trace  [][]engine.Candidate
	chosen []int
	status int
}

func (r *replayer) Pick(cands []engine.Candidate) int {
	d := len(r.chosen)
	if d >= r.budget {
		r.status = runTruncated
		return -1
	}
	r.trace = append(r.trace, append([]engine.Candidate(nil), cands...))
	var choice int
	if d < len(r.prefix) {
		choice = r.prefix[d]
		if choice >= len(cands) {
			// Deterministic replay guarantees identical candidate sets;
			// reaching this means the engine or a guest is nondeterministic.
			panic(fmt.Sprintf("litmus: replay diverged at decision %d: choice %d of %d candidates",
				d, choice, len(cands)))
		}
	} else {
		choice = -1
		for j := range cands {
			if r.prunedAt(d, cands, j) {
				*r.pruned++
				continue
			}
			choice = j
			break
		}
		if choice < 0 {
			// Every candidate is pruned: this prefix is a non-canonical
			// linearization whose representative is explored elsewhere.
			r.status = runDeadEnd
			return -1
		}
	}
	r.chosen = append(r.chosen, choice)
	return choice
}

// prunedAt implements the adjacent-swap canonicalization: candidate j
// at decision d is cut iff executing it here would create an adjacent
// independent inversion — the previous step came from a higher-numbered
// thread and the two ops commute (isa.Independent). Every schedule
// equivalence class keeps at least one inversion-free representative,
// so pruning these branches loses no outcomes; see also the eviction
// guard that protects the independence relation's soundness.
func (r *replayer) prunedAt(d int, cands []engine.Candidate, j int) bool {
	if d == 0 {
		return false
	}
	prev := r.trace[d-1][r.chosen[d-1]]
	c := cands[j]
	return prev.Thread > c.Thread && isa.Independent(prev.Op, c.Op)
}

// schedule renders the executed thread order as a comma-separated ID
// string ("0,0,1,0"), the replayable identity of the run.
func (r *replayer) schedule() string {
	var b strings.Builder
	for d, c := range r.chosen {
		if d > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(r.trace[d][c].Thread))
	}
	return b.String()
}

// maxErrorsKept caps Report.Errors; ErrorRuns keeps counting past it.
const maxErrorsKept = 8

// Explore drives the test through every schedule (up to opts) under
// cfg, aggregating outcomes, oracle violations, and exploration
// statistics. The returned error covers only malformed tests or bad
// options; machine or expectation failures are reported through
// Report/Verdict.
func Explore(t Test, cfg Config, opts Options) (*Report, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if len(t.Threads) > litmusCores {
		return nil, fmt.Errorf("litmus %s: %d threads exceed the %d-core litmus machine", t.Name, len(t.Threads), litmusCores)
	}
	opts = opts.withDefaults()
	rep := &Report{Test: t.Name, Config: cfg.Name, Algo: opts.Algo, Outcomes: map[string]*OutcomeInfo{}}
	switch opts.Algo {
	case AlgoSwap:
		exploreSwap(t, cfg, opts, rep)
	case AlgoDPOR:
		exploreDPOR(t, cfg, opts, rep)
	default:
		return nil, fmt.Errorf("litmus %s: unknown exploration algorithm %q (want %q or %q)", t.Name, opts.Algo, AlgoDPOR, AlgoSwap)
	}
	return rep, nil
}

// exploreSwap is the adjacent-swap reference explorer: repeatedly run
// the engine from scratch replaying a prefix of choices, extend
// canonically to completion, then backtrack to the deepest decision
// with an unexplored, unpruned candidate.
func exploreSwap(t Test, cfg Config, opts Options, rep *Report) {
	prefix := []int{}
	for {
		if rep.Runs >= opts.MaxSchedules {
			rep.Capped = true
			break
		}
		r := runSwapOne(t, cfg, prefix, opts.Budget, rep)
		next, ok := swapBacktrack(r, &rep.Pruned)
		if !ok {
			break
		}
		prefix = next
	}
}

// swapBacktrack finds the deepest decision with an unexplored, unpruned
// candidate and returns the prefix that takes it; ok=false means the
// schedule space is exhausted.
func swapBacktrack(r *replayer, pruned *int64) ([]int, bool) {
	for d := len(r.chosen) - 1; d >= 0; d-- {
		for j := r.chosen[d] + 1; j < len(r.trace[d]); j++ {
			if r.prunedAt(d, r.trace[d], j) {
				*pruned++
				continue
			}
			next := make([]int, d+1)
			copy(next, r.chosen[:d])
			next[d] = j
			return next, true
		}
	}
	return nil, false
}

// runSwapOne executes one adjacent-swap schedule on a fresh machine.
func runSwapOne(t Test, cfg Config, prefix []int, budget int, rep *Report) *replayer {
	m := newMachine(t, cfg)
	r := &replayer{prefix: prefix, budget: budget, pruned: &rep.Pruned}
	m.e.SetScheduler(r)

	_, err := m.e.Run()
	rep.Runs++
	switch {
	case r.status == runDeadEnd:
		rep.DeadEnds++
		return r
	case r.status == runTruncated:
		rep.Truncated++
		return r
	case err != nil:
		r.status = runError
		rep.ErrorRuns++
		if len(rep.Errors) < maxErrorsKept {
			rep.Errors = append(rep.Errors, fmt.Sprintf("schedule %s: %v", r.schedule(), err))
		}
		return r
	}
	m.finish(t, rep, r.schedule())
	return r
}

// Run explores the test under cfg and judges the result in one call.
func Run(t Test, cfg Config, opts Options) (Verdict, *Report, error) {
	rep, err := Explore(t, cfg, opts)
	if err != nil {
		return Verdict{}, nil, err
	}
	return rep.Verdict(t), rep, nil
}
