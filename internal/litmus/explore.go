package litmus

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/topo"
)

// Options bounds one exploration.
type Options struct {
	// Budget is the maximum number of scheduling decisions per schedule;
	// schedules that exceed it are cut off and counted as Truncated
	// (failing exhaustiveness). Default 256.
	Budget int
	// MaxSchedules caps the total number of runs (complete, truncated,
	// or dead-end); hitting it sets Report.Capped. Default 200000.
	MaxSchedules int
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = 256
	}
	if o.MaxSchedules <= 0 {
		o.MaxSchedules = 200000
	}
	return o
}

// litmusCores is the machine size explorations run on: a single block
// (the intra-block topology, scaled to four cores) is enough for every
// two- and three-thread test and keeps per-run construction cheap.
const litmusCores = 4

// NewHierarchy builds the small, fresh hierarchy one litmus-scale run
// executes on: blocks×coresPerBlock cores with scaled-down caches (4 KB
// L1, 32 KB L2) — litmus footprints are a handful of lines, and small
// caches keep per-run allocation off the exploration's critical path.
// The explorer uses the single-block litmus machine; the fuzz harness
// (internal/fuzzgen) also builds multi-block machines for its tri-engine
// differential runs.
func NewHierarchy(cfg Config, blocks, coresPerBlock int) *core.Hierarchy {
	m := topo.NewCustom(blocks, coresPerBlock, 0, topo.DefaultParams())
	return core.New(m, core.Config{
		L1:         cache.Config{Bytes: 4 << 10, Ways: 4},
		L2:         cache.Config{Bytes: 32 << 10, Ways: 8},
		MEBEntries: cfg.MEBEntries,
		IEBEntries: cfg.IEBEntries,
	})
}

// litmusHierarchy builds the explorer's machine.
func litmusHierarchy(cfg Config) *core.Hierarchy {
	return NewHierarchy(cfg, 1, litmusCores)
}

// run status values.
const (
	runComplete = iota
	runDeadEnd
	runTruncated
	runError
)

// replayer is the engine.Scheduler that drives one run: it replays the
// prefix of candidate-index choices, then extends it with the first
// candidate the partial-order reduction allows, recording the candidate
// list at every decision for the driver's backtracking.
type replayer struct {
	prefix []int
	budget int
	pruned *int64

	trace  [][]engine.Candidate
	chosen []int
	status int
}

func (r *replayer) Pick(cands []engine.Candidate) int {
	d := len(r.chosen)
	if d >= r.budget {
		r.status = runTruncated
		return -1
	}
	r.trace = append(r.trace, append([]engine.Candidate(nil), cands...))
	var choice int
	if d < len(r.prefix) {
		choice = r.prefix[d]
		if choice >= len(cands) {
			// Deterministic replay guarantees identical candidate sets;
			// reaching this means the engine or a guest is nondeterministic.
			panic(fmt.Sprintf("litmus: replay diverged at decision %d: choice %d of %d candidates",
				d, choice, len(cands)))
		}
	} else {
		choice = -1
		for j := range cands {
			if r.prunedAt(d, cands, j) {
				*r.pruned++
				continue
			}
			choice = j
			break
		}
		if choice < 0 {
			// Every candidate is pruned: this prefix is a non-canonical
			// linearization whose representative is explored elsewhere.
			r.status = runDeadEnd
			return -1
		}
	}
	r.chosen = append(r.chosen, choice)
	return choice
}

// prunedAt implements the adjacent-swap canonicalization: candidate j
// at decision d is cut iff executing it here would create an adjacent
// independent inversion — the previous step came from a higher-numbered
// thread and the two ops commute (isa.Independent). Every schedule
// equivalence class keeps at least one inversion-free representative,
// so pruning these branches loses no outcomes; see also the eviction
// guard that protects the independence relation's soundness.
func (r *replayer) prunedAt(d int, cands []engine.Candidate, j int) bool {
	if d == 0 {
		return false
	}
	prev := r.trace[d-1][r.chosen[d-1]]
	c := cands[j]
	return prev.Thread > c.Thread && isa.Independent(prev.Op, c.Op)
}

// schedule renders the executed thread order as a comma-separated ID
// string ("0,0,1,0"), the replayable identity of the run.
func (r *replayer) schedule() string {
	var b strings.Builder
	for d, c := range r.chosen {
		if d > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(r.trace[d][c].Thread))
	}
	return b.String()
}

// maxErrorsKept caps Report.Errors.
const maxErrorsKept = 8

// Explore drives the test through every schedule (up to opts) under
// cfg, aggregating outcomes, oracle violations, and exploration
// statistics. The returned error covers only malformed tests; machine
// or expectation failures are reported through Report/Verdict.
func Explore(t Test, cfg Config, opts Options) (*Report, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if len(t.Threads) > litmusCores {
		return nil, fmt.Errorf("litmus %s: %d threads exceed the %d-core litmus machine", t.Name, len(t.Threads), litmusCores)
	}
	if t.Packed {
		return nil, fmt.Errorf("litmus %s: packed variable layout voids the independence pruning; exploration is unsupported", t.Name)
	}
	opts = opts.withDefaults()
	rep := &Report{Test: t.Name, Config: cfg.Name, Outcomes: map[string]*OutcomeInfo{}}

	prefix := []int{}
	for runs := 0; ; runs++ {
		if runs >= opts.MaxSchedules {
			rep.Capped = true
			break
		}
		r := runOne(t, cfg, prefix, opts.Budget, rep)
		next, ok := backtrack(r, &rep.Pruned)
		if !ok {
			break
		}
		prefix = next
	}
	return rep, nil
}

// backtrack finds the deepest decision with an unexplored, unpruned
// candidate and returns the prefix that takes it; ok=false means the
// schedule space is exhausted.
func backtrack(r *replayer, pruned *int64) ([]int, bool) {
	for d := len(r.chosen) - 1; d >= 0; d-- {
		for j := r.chosen[d] + 1; j < len(r.trace[d]); j++ {
			if r.prunedAt(d, r.trace[d], j) {
				*pruned++
				continue
			}
			next := make([]int, d+1)
			copy(next, r.chosen[:d])
			next[d] = j
			return next, true
		}
	}
	return nil, false
}

// runOne executes one schedule: a fresh hierarchy, engine, and oracle,
// driven by the replayer. Complete runs drain the hierarchy, check the
// final memory image, and fold the outcome and any violations into rep.
func runOne(t Test, cfg Config, prefix []int, budget int, rep *Report) *replayer {
	h := litmusHierarchy(cfg)
	regs := make([]mem.Word, t.Regs)
	for i := range regs {
		regs[i] = UnsetReg
	}
	e := engine.New(h, Guests(t, cfg, regs))
	o := oracle.New(len(t.Threads))
	e.SetObserver(o)
	r := &replayer{prefix: prefix, budget: budget, pruned: &rep.Pruned}
	e.SetScheduler(r)

	_, err := e.Run()
	switch {
	case r.status == runDeadEnd:
		rep.DeadEnds++
		return r
	case r.status == runTruncated:
		rep.Truncated++
		return r
	case err != nil:
		r.status = runError
		if len(rep.Errors) < maxErrorsKept {
			rep.Errors = append(rep.Errors, fmt.Sprintf("schedule %s: %v", r.schedule(), err))
		}
		return r
	}

	// Probe stale-read violations before the drain rewrites memory, so
	// the "where" snapshot reflects the machine state the reader saw.
	sched := r.schedule()
	viol := o.Violations()
	wheres := make([]string, len(viol))
	for i, v := range viol {
		if v.Reader >= 0 {
			p := h.ProbeWord(v.Reader, v.Addr)
			wheres[i] = fmt.Sprintf("reader L1: present=%v dirty=%v val=%d; L2: present=%v val=%d; mem=%d",
				p.L1Present, p.L1Dirty, p.L1Val, p.L2Present, p.L2Val, p.MemVal)
		}
	}
	h.Drain()
	o.CheckFinal(h.Memory())
	if h.Evictions() > 0 {
		rep.EvictionRuns++
	}

	out := Outcome{Regs: append([]mem.Word(nil), regs...), Mem: make([]mem.Word, len(t.Final))}
	for i, v := range t.Final {
		out.Mem[i] = h.Memory().ReadWord(t.AddrOf(v))
	}
	key := out.Key()
	info := rep.Outcomes[key]
	if info == nil {
		info = &OutcomeInfo{Outcome: out, Key: key, Allowed: t.allowed(out), Sample: sched}
		rep.Outcomes[key] = info
	}
	info.Count++
	rep.Schedules++

	if o.Total() > 0 {
		rep.ViolationSchedules++
		for i, v := range o.Violations() {
			if len(rep.Violations) >= maxViolationsKept {
				break
			}
			vi := ViolationInfo{Class: string(v.Class), Schedule: sched, Detail: v.String()}
			if i < len(wheres) {
				vi.Where = wheres[i]
			}
			rep.Violations = append(rep.Violations, vi)
		}
	}
	return r
}

// Run explores the test under cfg and judges the result in one call.
func Run(t Test, cfg Config, opts Options) (Verdict, *Report, error) {
	rep, err := Explore(t, cfg, opts)
	if err != nil {
		return Verdict{}, nil, err
	}
	return rep.Verdict(t), rep, nil
}
