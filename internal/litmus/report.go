package litmus

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/oracle"
)

// OutcomeInfo aggregates one observed outcome across an exploration.
type OutcomeInfo struct {
	Outcome Outcome `json:"-"`
	// Key is the outcome's canonical rendering.
	Key string `json:"key"`
	// Count is the number of complete schedules producing it.
	Count int `json:"count"`
	// Allowed reports membership in the test's allowed set.
	Allowed bool `json:"allowed"`
	// Sample is one schedule (comma-separated thread IDs in execution
	// order) that produced the outcome, for replay and debugging.
	Sample string `json:"sample"`
}

// ViolationInfo is one oracle violation observed during exploration,
// with the schedule that produced it and a hierarchy probe of where the
// offending value lived.
type ViolationInfo struct {
	Class    string `json:"class"`
	Schedule string `json:"schedule"`
	Detail   string `json:"detail"`
	// Where reports, from the reader's core at detection time, where the
	// stale value was cached (empty for lost updates).
	Where string `json:"where,omitempty"`
	// Addr, Reader, and Writer carry the oracle's attribution fields so
	// downstream judges (internal/fuzzgen) can map a violation back to
	// an annotation site without re-running the schedule.
	Addr   uint32 `json:"addr"`
	Reader int    `json:"reader"`
	Writer int    `json:"writer"`
}

// Report is the result of exhaustively exploring one test under one
// configuration.
type Report struct {
	Test   string `json:"test"`
	Config string `json:"config"`
	// Algo is the exploration algorithm that produced the report
	// (AlgoDPOR or AlgoSwap).
	Algo string `json:"algo,omitempty"`

	// Runs counts every engine run the exploration performed, whatever
	// its fate; the accounting invariant is
	//
	//	Runs == Schedules + DeadEnds + Truncated + DedupCuts + ErrorRuns.
	//
	// Schedules counts complete schedules executed; Pruned counts
	// candidate branches cut by the partial-order reduction; DeadEnds
	// counts abandoned redundant prefixes (every candidate pruned or
	// asleep); Truncated counts schedules cut off by the step budget.
	Runs      int   `json:"runs"`
	Schedules int   `json:"schedules"`
	Pruned    int64 `json:"pruned"`
	DeadEnds  int   `json:"dead_ends"`
	Truncated int   `json:"truncated"`
	// DedupCuts counts runs abandoned because the frontier state's
	// fingerprint was already fully explored; StatesSeen is the size of
	// the dedup table at the end (DPOR only).
	DedupCuts  int `json:"dedup_cuts,omitempty"`
	StatesSeen int `json:"states_seen,omitempty"`
	// ErrorRuns counts runs that failed with an engine error; the first
	// few messages are kept in Errors.
	ErrorRuns int `json:"error_runs,omitempty"`
	// Capped is set when the exploration hit MaxSchedules before
	// exhausting the schedule space — the report is then a sample, not a
	// proof.
	Capped bool `json:"capped,omitempty"`
	// EvictionRuns counts runs that evicted at least one cache line.
	// Under AlgoSwap any nonzero value voids the pruning's soundness
	// guarantee (see isa.Independent) and fails the verdict; AlgoDPOR
	// treats cache-set conflicts as dependencies (isa.Deps), so
	// evictions are explored soundly and merely counted here.
	EvictionRuns int `json:"eviction_runs,omitempty"`

	// Outcomes maps outcome keys to their aggregate info.
	Outcomes map[string]*OutcomeInfo `json:"outcomes"`
	// Violations holds one entry per (schedule, violation) observed,
	// capped at maxViolationsKept.
	Violations []ViolationInfo `json:"violations,omitempty"`
	// ViolationSchedules counts schedules with at least one violation.
	ViolationSchedules int `json:"violation_schedules"`
	// Errors holds engine failures other than scheduler aborts (these
	// indicate a broken test or machine, never a legal outcome).
	Errors []string `json:"errors,omitempty"`
}

// maxViolationsKept caps Report.Violations; ViolationSchedules keeps
// counting past it.
const maxViolationsKept = 16

// SortedOutcomes returns the outcome infos sorted by key, for
// deterministic rendering.
func (r *Report) SortedOutcomes() []*OutcomeInfo {
	keys := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*OutcomeInfo, len(keys))
	for i, k := range keys {
		out[i] = r.Outcomes[k]
	}
	return out
}

// Verdict holds the pass/fail decision for one report against its
// test's expectation.
type Verdict struct {
	Test   string `json:"test"`
	Config string `json:"config"`
	Expect string `json:"expect"`
	OK     bool   `json:"ok"`
	// Problems lists everything that failed; empty iff OK.
	Problems []string `json:"problems,omitempty"`
}

func (v Verdict) String() string {
	if v.OK {
		return fmt.Sprintf("%s/%s: ok (expect %s)", v.Test, v.Config, v.Expect)
	}
	return fmt.Sprintf("%s/%s: FAIL (expect %s): %s", v.Test, v.Config, v.Expect, strings.Join(v.Problems, "; "))
}

// Verdict judges the report against the test's declared expectation.
func (r *Report) Verdict(t Test) Verdict {
	v := Verdict{Test: r.Test, Config: r.Config, Expect: t.Expect.String()}
	problem := func(format string, args ...interface{}) {
		v.Problems = append(v.Problems, fmt.Sprintf(format, args...))
	}

	if r.ErrorRuns > 0 {
		problem("%d engine error(s), first: %s", r.ErrorRuns, r.Errors[0])
	}
	if r.Truncated > 0 {
		problem("%d schedule(s) truncated by the step budget: exploration is not exhaustive", r.Truncated)
	}
	if r.Capped {
		problem("schedule cap hit: exploration is not exhaustive")
	}
	if r.EvictionRuns > 0 && r.Algo != AlgoDPOR {
		problem("%d run(s) evicted cache lines: partial-order pruning is unsound for this test", r.EvictionRuns)
	}

	var disallowed []*OutcomeInfo
	for _, o := range r.SortedOutcomes() {
		if !o.Allowed {
			disallowed = append(disallowed, o)
		}
	}
	classes := map[string]int{}
	for _, vi := range r.Violations {
		classes[vi.Class]++
	}

	switch t.Expect {
	case ExpectNone:
		if r.ViolationSchedules > 0 {
			problem("%d schedule(s) violated coherence, first: %s", r.ViolationSchedules, r.Violations[0].Detail)
		}
		if len(disallowed) > 0 {
			problem("disallowed outcome %q on %d schedule(s), e.g. schedule %s",
				disallowed[0].Key, disallowed[0].Count, disallowed[0].Sample)
		}
	case ExpectMissingWB, ExpectMissingINV, ExpectLostUpdate:
		want := map[Expectation]oracle.Class{
			ExpectMissingWB:  oracle.MissingWB,
			ExpectMissingINV: oracle.MissingINV,
			ExpectLostUpdate: oracle.LostUpdate,
		}[t.Expect]
		if r.ViolationSchedules == 0 {
			problem("no schedule exposed the expected %s violation", want)
		}
		for c, n := range classes {
			if c != string(want) {
				problem("%d violation(s) attributed to %s, want only %s", n, c, want)
			}
		}
		if len(disallowed) > 0 {
			problem("disallowed outcome %q on %d schedule(s)", disallowed[0].Key, disallowed[0].Count)
		}
	case ExpectForbidden:
		if r.ViolationSchedules > 0 {
			problem("oracle flagged %d schedule(s) on a test it should skip as racy, first: %s",
				r.ViolationSchedules, r.Violations[0].Detail)
		}
		if len(disallowed) == 0 {
			problem("no schedule produced a forbidden outcome")
		}
	default:
		problem("unknown expectation %v", t.Expect)
	}

	for _, req := range t.Requires {
		if o, ok := r.Outcomes[req.Key()]; !ok || o.Count == 0 {
			problem("required outcome %q never observed", req.Key())
		}
	}

	v.OK = len(v.Problems) == 0
	return v
}
