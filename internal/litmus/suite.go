package litmus

import "repro/internal/mem"

// Variable and register conventions used throughout the suite: X (and Y)
// are payload variables, F is a racy flag variable; r0 is the primary
// observed register, r1 the secondary (prelude or flag) register.
const (
	vX VarID = 0
	vY VarID = 1
	vF VarID = 1
)

// regsOut builds a registers-only outcome; memOut a memory-only one.
func regsOut(vals ...mem.Word) Outcome { return Outcome{Regs: vals} }
func memOut(vals ...mem.Word) Outcome  { return Outcome{Mem: vals} }

// Suite is the standard litmus table: the classic communication
// patterns, each in an annotated variant (which must be violation-free
// on every schedule) and, where a coherence annotation can be dropped,
// deliberately under-annotated variants (which must expose their stale
// read or lost update on at least one schedule, with the attribution
// naming the side that omitted the annotation).
var Suite = []Test{
	{
		Name: "mp-annotated",
		Doc: "Message passing over a hardware flag: store payload, publish, " +
			"set flag / wait flag, invalidate, load. The reader must always see the payload.",
		Vars: 1, Regs: 1,
		Threads: [][]Instr{
			{Store(vX, 1), Publish(vX, 1), FlagSet(0, 1)},
			{FlagWait(0, 1), Invalidate(vX, 0), Load(vX, 0)},
		},
		Allowed:  []Outcome{regsOut(1)},
		Requires: []Outcome{regsOut(1)},
		Expect:   ExpectNone,
	},
	{
		Name: "mp-nowb",
		Doc: "Message passing with the writer's publication dropped: the payload " +
			"stays dirty in the writer's L1 and the reader always sees stale zero (missing-wb).",
		Vars: 1, Regs: 1,
		Threads: [][]Instr{
			{Store(vX, 1), FlagSet(0, 1)},
			{FlagWait(0, 1), Invalidate(vX, 0), Load(vX, 0)},
		},
		Allowed:  []Outcome{regsOut(0)},
		Requires: []Outcome{regsOut(0)},
		Expect:   ExpectMissingWB,
	},
	{
		Name: "mp-noinv",
		Doc: "Message passing with the reader's invalidation dropped: a prelude load " +
			"caches stale zero, and schedules where it ran before the publication leave the " +
			"post-wait load hitting that stale line (missing-inv). r1 is the prelude value.",
		Vars: 1, Regs: 2,
		Threads: [][]Instr{
			{Store(vX, 1), Publish(vX, 1), FlagSet(0, 1)},
			{Load(vX, 1), FlagWait(0, 1), Load(vX, 0)},
		},
		Allowed:  []Outcome{regsOut(0, 0), regsOut(1, 1)},
		Requires: []Outcome{regsOut(0, 0), regsOut(1, 1)},
		Expect:   ExpectMissingINV,
	},
	{
		Name: "sb",
		Doc: "Store buffering with full per-variable annotation. The in-order machine " +
			"cannot produce the relaxed (0,0) outcome: each thread publishes before it reads.",
		Vars: 2, Regs: 2,
		Threads: [][]Instr{
			{Store(vX, 1), WB(vX), INV(vY), Load(vY, 0)},
			{Store(vY, 1), WB(vY), INV(vX), Load(vX, 1)},
		},
		Allowed:  []Outcome{regsOut(0, 1), regsOut(1, 0), regsOut(1, 1)},
		Requires: []Outcome{regsOut(0, 1), regsOut(1, 0), regsOut(1, 1)},
		Expect:   ExpectNone,
	},
	{
		Name: "lb",
		Doc: "Load buffering: loads precede the cross-stores. (1,1) would need each " +
			"load to observe the other thread's later store — impossible in program order.",
		Vars: 2, Regs: 2,
		Threads: [][]Instr{
			{Load(vY, 0), Store(vX, 1), WB(vX)},
			{Load(vX, 1), Store(vY, 1), WB(vY)},
		},
		Allowed:  []Outcome{regsOut(0, 0), regsOut(0, 1), regsOut(1, 0)},
		Requires: []Outcome{regsOut(0, 0), regsOut(0, 1), regsOut(1, 0)},
		Expect:   ExpectNone,
	},
	{
		Name: "corr",
		Doc: "Coherent read-read: two self-invalidating reads of one variable may " +
			"straddle the writer's publication but can never run backward (1 then 0).",
		Vars: 1, Regs: 2,
		Threads: [][]Instr{
			{Store(vX, 1), WB(vX)},
			{INV(vX), Load(vX, 0), INV(vX), Load(vX, 1)},
		},
		Allowed:  []Outcome{regsOut(0, 0), regsOut(0, 1), regsOut(1, 1)},
		Requires: []Outcome{regsOut(0, 0), regsOut(0, 1), regsOut(1, 1)},
		Expect:   ExpectNone,
	},
	{
		Name: "coww",
		Doc: "Coherent write-write: two published writes to one variable; the drained " +
			"final value is whichever writeback landed second, never a merge artifact.",
		Vars: 1, Regs: 0,
		Threads: [][]Instr{
			{Store(vX, 1), WB(vX)},
			{Store(vX, 2), WB(vX)},
		},
		Final:    []VarID{vX},
		Allowed:  []Outcome{memOut(1), memOut(2)},
		Requires: []Outcome{memOut(1), memOut(2)},
		Expect:   ExpectNone,
	},
	{
		Name: "barrier",
		Doc: "Cross publication over an annotated barrier: both threads must observe " +
			"each other's pre-barrier store on every schedule.",
		Vars: 2, Regs: 2,
		Threads: [][]Instr{
			{Store(vX, 4), BarrierSync(0), Load(vY, 0)},
			{Store(vY, 6), BarrierSync(0), Load(vX, 1)},
		},
		Allowed:  []Outcome{regsOut(6, 4)},
		Requires: []Outcome{regsOut(6, 4)},
		Expect:   ExpectNone,
	},
	{
		Name: "lock-annotated",
		Doc: "Lock-based publication through the annotated critical-section protocol: " +
			"the reader sees the write iff it locked second.",
		Vars: 1, Regs: 1,
		Threads: [][]Instr{
			{CSEnter(0), Store(vX, 5), CSExit(0)},
			{CSEnter(0), Load(vX, 0), CSExit(0)},
		},
		Allowed:  []Outcome{regsOut(0), regsOut(5)},
		Requires: []Outcome{regsOut(0), regsOut(5)},
		Expect:   ExpectNone,
	},
	{
		Name: "lock-nowb",
		Doc: "Raw lock with the writer's writeback dropped: when the reader locks " +
			"second, the release->acquire edge orders the write but the bits never moved (missing-wb).",
		Vars: 1, Regs: 1,
		Threads: [][]Instr{
			{Acquire(0), Store(vX, 5), Release(0)},
			{Acquire(0), INV(vX), Load(vX, 0), Release(0)},
		},
		Allowed:  []Outcome{regsOut(0)},
		Requires: []Outcome{regsOut(0)},
		Expect:   ExpectMissingWB,
	},
	{
		Name: "lock-noinv",
		Doc: "Raw lock with the reader's invalidation dropped: a prelude load caches " +
			"stale zero; locking second then re-reads the stale line (missing-inv). r1 is the prelude.",
		Vars: 1, Regs: 2,
		Threads: [][]Instr{
			{Acquire(0), Store(vX, 5), WB(vX), Release(0)},
			{Load(vX, 1), Acquire(0), Load(vX, 0), Release(0)},
		},
		Allowed:  []Outcome{regsOut(0, 0), regsOut(5, 5)},
		Requires: []Outcome{regsOut(0, 0), regsOut(5, 5)},
		Expect:   ExpectMissingINV,
	},
	{
		Name: "lock-lostupdate",
		Doc: "Two locked writers, the second one blind (no writeback): when it locks " +
			"first, its unpublished dirty word outlives the other writer's publication and " +
			"clobbers it at drain time (lost-update).",
		Vars: 1, Regs: 0,
		Threads: [][]Instr{
			{Acquire(0), Store(vX, 9), WB(vX), Release(0)},
			{Acquire(0), Store(vX, 7), Release(0)},
		},
		Final:    []VarID{vX},
		Allowed:  []Outcome{memOut(7)},
		Requires: []Outcome{memOut(7)},
		Expect:   ExpectLostUpdate,
	},
	{
		Name: "flag-annotated",
		Doc: "Flag publication through the annotated notify/await protocol: the " +
			"reader always sees the payload.",
		Vars: 1, Regs: 1,
		Threads: [][]Instr{
			{Store(vX, 3), NotifyFlag(0, 1)},
			{AwaitFlag(0, 1), Load(vX, 0)},
		},
		Allowed:  []Outcome{regsOut(3)},
		Requires: []Outcome{regsOut(3)},
		Expect:   ExpectNone,
	},
	{
		Name: "flag-nowb",
		Doc: "Flag publication with a raw set (no writeback): the ordered reader " +
			"always sees stale zero (missing-wb).",
		Vars: 1, Regs: 1,
		Threads: [][]Instr{
			{Store(vX, 3), FlagSet(0, 1)},
			{AwaitFlag(0, 1), Load(vX, 0)},
		},
		Allowed:  []Outcome{regsOut(0)},
		Requires: []Outcome{regsOut(0)},
		Expect:   ExpectMissingWB,
	},
	{
		Name: "flag-noinv",
		Doc: "Flag publication with a raw wait (no invalidation): a prelude load " +
			"caches stale zero that the post-wait load re-reads (missing-inv). r1 is the prelude.",
		Vars: 1, Regs: 2,
		Threads: [][]Instr{
			{Store(vX, 3), NotifyFlag(0, 1)},
			{Load(vX, 1), FlagWait(0, 1), Load(vX, 0)},
		},
		Allowed:  []Outcome{regsOut(0, 0), regsOut(3, 3)},
		Requires: []Outcome{regsOut(0, 0), regsOut(3, 3)},
		Expect:   ExpectMissingINV,
	},
	{
		Name: "race-annotated",
		Doc: "Figure 6b's enforced data race: payload and flag published per-variable, " +
			"the reader spins with self-invalidating probes. A successful spin implies the payload. " +
			"r0 is the payload, r1 the last flag probe.",
		Vars: 2, Regs: 2,
		Threads: [][]Instr{
			{Store(vX, 9), WB(vX), Store(vF, 1), WB(vF)},
			{Spin(vF, 1, 2, 1), INV(vX), Load(vX, 0)},
		},
		Allowed:  []Outcome{regsOut(9, 1), regsOut(0, 0), regsOut(9, 0)},
		Requires: []Outcome{regsOut(9, 1), regsOut(0, 0)},
		Expect:   ExpectNone,
	},
	// The three tests below were harvested from the fuzz campaign
	// (internal/fuzzgen): each is a mutated random program that the
	// oracle detected, automatically shrunk to a minimal repro by the
	// campaign's delta-debugger and promoted verbatim (names keep the
	// generating seed and mutation class).
	{
		Name: "fuzz-csexit-nowb",
		Doc: "Fuzz harvest (seed 3, weaken-csexit): a critical-section writer whose " +
			"CSExit was weakened to a raw lock release, dropping the exit writeback. On " +
			"schedules where the reader's critical section runs second, its locked read " +
			"sees stale zero (missing-wb); the store only reaches memory at the final drain. " +
			"(The shrunk repro's reader kept its lock held to the end; the promoted form " +
			"closes the reader's section so every interleaving terminates.)",
		Vars: 1, Regs: 1,
		Threads: [][]Instr{
			{CSEnter(0), Store(vX, 1), Release(0)},
			{CSEnter(0), Load(vX, 0), CSExit(0)},
		},
		Final:    []VarID{vX},
		Allowed:  []Outcome{{Regs: []mem.Word{0}, Mem: []mem.Word{1}}},
		Requires: []Outcome{{Regs: []mem.Word{0}, Mem: []mem.Word{1}}},
		Expect:   ExpectMissingWB,
	},
	{
		Name: "fuzz-notify-nowb",
		Doc: "Fuzz harvest (seed 6, weaken-notify): flag publication after a barrier " +
			"with NotifyFlag weakened to a raw flag set. The barrier's whole-cache writeback " +
			"predates the store, so the ordered reader always sees stale zero (missing-wb).",
		Vars: 1, Regs: 1,
		Threads: [][]Instr{
			{BarrierSync(0), Store(vX, 1), FlagSet(1, 2)},
			{BarrierSync(0), AwaitFlag(1, 2), Load(vX, 0)},
		},
		Final:    []VarID{vX},
		Allowed:  []Outcome{{Regs: []mem.Word{0}, Mem: []mem.Word{1}}},
		Requires: []Outcome{{Regs: []mem.Word{0}, Mem: []mem.Word{1}}},
		Expect:   ExpectMissingWB,
	},
	{
		Name: "fuzz-await-noinv",
		Doc: "Fuzz harvest (seed 18, weaken-await): message passing after a barrier " +
			"with AwaitFlag weakened to a raw flag wait, dropping the reader's invalidation. " +
			"A post-barrier prelude load caches stale zero; schedules where it beat the " +
			"publication leave the post-wait load on that stale line (missing-inv). r1 is " +
			"the post-wait value, r0 the prelude.",
		Vars: 1, Regs: 2,
		Threads: [][]Instr{
			{BarrierSync(0), Store(vX, 1), NotifyFlag(1, 2)},
			{BarrierSync(0), Load(vX, 0), FlagWait(1, 2), Load(vX, 1)},
		},
		Final: []VarID{vX},
		Allowed: []Outcome{
			{Regs: []mem.Word{0, 0}, Mem: []mem.Word{1}},
			{Regs: []mem.Word{1, 1}, Mem: []mem.Word{1}},
		},
		Requires: []Outcome{
			{Regs: []mem.Word{0, 0}, Mem: []mem.Word{1}},
			{Regs: []mem.Word{1, 1}, Mem: []mem.Word{1}},
		},
		Expect: ExpectMissingINV,
	},
	{
		Name: "race-nowb-payload",
		Doc: "Figure 6b with the payload writeback dropped: the flag is published but " +
			"the payload is not, so a successful spin observes zero payload — an outcome outside " +
			"the message-passing contract. The oracle deliberately skips these racy reads; the " +
			"declared allowed set is what catches the bug.",
		Vars: 2, Regs: 2,
		Threads: [][]Instr{
			{Store(vX, 9), Store(vF, 1), WB(vF)},
			{Spin(vF, 1, 2, 1), INV(vX), Load(vX, 0)},
		},
		Allowed:  []Outcome{regsOut(9, 1), regsOut(0, 0), regsOut(9, 0)},
		Requires: []Outcome{regsOut(0, 1)},
		Expect:   ExpectForbidden,
	},
}

// ExtraSuite holds tests outside the standard 20-test matrix: the
// 4-thread disjoint-pair test that demonstrates the DPOR explorer's
// strict schedule win over adjacent-swap (cross-pair steps are
// independent under isa.Deps but not under the legacy relation), and
// the packed-layout variants the legacy explorer used to reject.
var ExtraSuite = []Test{
	{
		Name: "mp-pair-annotated",
		Doc: "Two disjoint message-passing pairs: threads 0/1 hand off X over flag 0, " +
			"threads 2/3 hand off Y over flag 1. The pairs share nothing, so DPOR (whose " +
			"dependence relation distinguishes sync primitives by ID) explores strictly " +
			"fewer schedules than adjacent-swap, which treats all sync ops as dependent.",
		Vars: 2, Regs: 2,
		Threads: [][]Instr{
			{Store(vX, 1), Publish(vX, 1), FlagSet(0, 1)},
			{FlagWait(0, 1), Invalidate(vX, 0), Load(vX, 0)},
			{Store(vY, 2), Publish(vY, 3), FlagSet(1, 1)},
			{FlagWait(1, 1), Invalidate(vY, 2), Load(vY, 1)},
		},
		Allowed:  []Outcome{regsOut(1, 2)},
		Requires: []Outcome{regsOut(1, 2)},
		Expect:   ExpectNone,
	},
	{
		Name: "mp-packed",
		Doc: "Message passing under the packed layout: the payload shares its cache " +
			"line with a variable the reader dirties (false sharing). Word-granular dirty " +
			"tracking must keep the handoff exact on every schedule.",
		Vars: 2, Regs: 1, Packed: true,
		Threads: [][]Instr{
			{Store(vX, 1), Publish(vX, 1), FlagSet(0, 1)},
			{Store(vY, 5), FlagWait(0, 1), Invalidate(vX, 0), Load(vX, 0)},
		},
		Allowed:  []Outcome{regsOut(1)},
		Requires: []Outcome{regsOut(1)},
		Expect:   ExpectNone,
	},
	{
		Name: "sb-packed",
		Doc: "Store buffering under the packed layout: both variables live on one " +
			"line, so every WB/INV is line-granular false sharing. The relaxed (0,0) " +
			"outcome must stay impossible.",
		Vars: 2, Regs: 2, Packed: true,
		Threads: [][]Instr{
			{Store(vX, 1), WB(vX), INV(vY), Load(vY, 0)},
			{Store(vY, 1), WB(vY), INV(vX), Load(vX, 1)},
		},
		Allowed:  []Outcome{regsOut(0, 1), regsOut(1, 0), regsOut(1, 1)},
		Requires: []Outcome{regsOut(0, 1), regsOut(1, 0), regsOut(1, 1)},
		Expect:   ExpectNone,
	},
	{
		Name: "fuzz-csexit-nowb-packed",
		Doc: "fuzz-csexit-nowb with a false-sharing neighbor: the reader dirties the " +
			"word next to the payload inside its critical section. The dropped exit " +
			"writeback must still be exposed (missing-wb), and the neighbor word must " +
			"not mask or corrupt the drained payload.",
		Vars: 2, Regs: 1, Packed: true,
		Threads: [][]Instr{
			{CSEnter(0), Store(vX, 1), Release(0)},
			{CSEnter(0), Store(vY, 5), Load(vX, 0), CSExit(0)},
		},
		Final:    []VarID{vX},
		Allowed:  []Outcome{{Regs: []mem.Word{0}, Mem: []mem.Word{1}}},
		Requires: []Outcome{{Regs: []mem.Word{0}, Mem: []mem.Word{1}}},
		Expect:   ExpectMissingWB,
	},
	{
		Name: "fuzz-notify-nowb-packed",
		Doc: "fuzz-notify-nowb with a false-sharing neighbor dirtied by the reader " +
			"before its await: the weakened notify (raw flag set, no writeback) must " +
			"still leave the ordered reader stale (missing-wb).",
		Vars: 2, Regs: 1, Packed: true,
		Threads: [][]Instr{
			{BarrierSync(0), Store(vX, 1), FlagSet(1, 2)},
			{BarrierSync(0), Store(vY, 5), AwaitFlag(1, 2), Load(vX, 0)},
		},
		Final:    []VarID{vX},
		Allowed:  []Outcome{{Regs: []mem.Word{0}, Mem: []mem.Word{1}}},
		Requires: []Outcome{{Regs: []mem.Word{0}, Mem: []mem.Word{1}}},
		Expect:   ExpectMissingWB,
	},
	{
		Name: "fuzz-await-noinv-packed",
		Doc: "fuzz-await-noinv with a false-sharing neighbor: the reader's prelude " +
			"load shares a line with its own dirty word, so the stale copy is pinned in " +
			"its L1. The weakened await (raw wait, no invalidation) must still re-read " +
			"the stale line (missing-inv).",
		Vars: 2, Regs: 2, Packed: true,
		Threads: [][]Instr{
			{BarrierSync(0), Store(vX, 1), NotifyFlag(1, 2)},
			{BarrierSync(0), Store(vY, 5), Load(vX, 0), FlagWait(1, 2), Load(vX, 1)},
		},
		Final: []VarID{vX},
		Allowed: []Outcome{
			{Regs: []mem.Word{0, 0}, Mem: []mem.Word{1}},
			{Regs: []mem.Word{1, 1}, Mem: []mem.Word{1}},
		},
		Requires: []Outcome{
			{Regs: []mem.Word{0, 0}, Mem: []mem.Word{1}},
			{Regs: []mem.Word{1, 1}, Mem: []mem.Word{1}},
		},
		Expect: ExpectMissingINV,
	},
}

// SuiteTest returns the suite or extra-suite entry with the given name.
func SuiteTest(name string) (Test, bool) {
	for _, t := range append(append([]Test{}, Suite...), ExtraSuite...) {
		if t.Name == name {
			return t, true
		}
	}
	return Test{}, false
}
