package litmus

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/isa"
)

// This file implements the default exploration algorithm: source-style
// dynamic partial-order reduction (Flanagan/Godefroid backtrack sets
// with sleep sets) over the eviction-sound isa.Deps dependence relation,
// plus state-hash deduplication.
//
// The explorer maintains a persistent stack of decision nodes mirroring
// the current schedule prefix. Each run replays the stack's choices on a
// fresh machine (the engine cannot snapshot mid-run) and extends the
// frontier until the program completes, the step budget truncates it,
// every enabled thread is asleep (a provably redundant prefix), or the
// frontier state's fingerprint has already been fully explored (a dedup
// cut). Races detected while executing an op add the racing thread to
// the backtrack set of the deepest earlier node whose executed op
// depends on it; a thread whose subtree is fully explored joins its
// node's sleep set so no trace-equivalent schedule completes twice.
//
// Soundness of the dedup cut rests on three pieces:
//
//   - engine.StateFingerprint covers everything the future depends on:
//     hierarchy (memory, caches with LRU rank order, MEB/IEB, parked
//     WBs), sync controller, per-thread continuation state, and the
//     oracle's shadow state — so equal fingerprints mean identical
//     future outcome and violation sets.
//   - Sleep sets make caching conditional: a cached subtree was explored
//     while *its* sleep set suppressed some first steps, so a cut is
//     taken only when the cached entry's sleep set is a subset of the
//     current node's (the cut then skips a subset of what was covered).
//   - Backtrack propagation across cuts: a cut skips re-executing the
//     subtree, but ops inside it can still race with the *current*
//     prefix, which differs from the prefix the subtree was first
//     explored under. Every completed subtree therefore records the set
//     of distinct (thread, op) steps it executed, and a cut folds that
//     summary into the backtrack sets of every dependent node on the
//     current stack (a conservative superset of the updates a full
//     re-exploration would have made).
//
// The fingerprint includes the scheduling-decision count, so a state can
// never alias one of its own ancestors and the cut cannot create cycles.

// threadOp is one distinct (thread, op) step of a subtree, the unit of
// the cut-propagation summary. isa.Op is comparable.
type threadOp struct {
	thread int
	op     isa.Op
}

// dporNode is one decision on the persistent exploration stack.
type dporNode struct {
	cands  []engine.Candidate
	chosen int // index into cands of the child currently being explored
	// sleep maps threads whose subtrees here are already covered to the
	// pending op they would execute; entrySleep is the sorted thread set
	// as of node creation, the key for dedup registration.
	sleep      map[int]isa.Op
	entrySleep []int
	backtrack  map[int]bool // threads scheduled for exploration from here
	done       map[int]bool // threads already explored from here
	fp         uint64
	fpOK       bool
	summary    map[threadOp]struct{}
	// tainted marks a subtree that was not fully explored (budget
	// truncation or an engine error below); tainted nodes never register
	// in the dedup table.
	tainted bool
}

// dedupEntry is one fully-explored subtree of a fingerprinted state.
type dedupEntry struct {
	sleep   []int // sorted entry sleep set the subtree was explored under
	summary map[threadOp]struct{}
}

// dpor is the engine.Scheduler driving a source-DPOR exploration.
type dpor struct {
	opts  Options
	rep   *Report
	dep   isa.Deps
	stack []*dporNode
	seen  map[uint64][]*dedupEntry

	// Per-run state, reset by exploreDPOR before each replay.
	m          *machine
	depth      int
	status     int
	cutSummary map[threadOp]struct{}
	sched      []int
}

func exploreDPOR(t Test, cfg Config, opts Options, rep *Report) {
	x := &dpor{
		opts: opts,
		rep:  rep,
		dep:  isa.Deps{MinSets: litmusHierarchy(cfg).MinCacheSets()},
		seen: map[uint64][]*dedupEntry{},
	}
	for {
		if rep.Runs >= opts.MaxSchedules {
			rep.Capped = true
			break
		}
		m := newMachine(t, cfg)
		x.m = m
		x.depth = 0
		x.status = runComplete
		x.cutSummary = nil
		x.sched = x.sched[:0]
		m.e.SetScheduler(x)
		_, err := m.e.Run()
		rep.Runs++

		var childSummary map[threadOp]struct{}
		taint := false
		switch {
		case x.status == runCut:
			rep.DedupCuts++
			childSummary = x.cutSummary
		case x.status == runDeadEnd:
			rep.DeadEnds++
		case x.status == runTruncated:
			rep.Truncated++
			taint = true
		case err != nil:
			x.status = runError
			rep.ErrorRuns++
			taint = true
			if len(rep.Errors) < maxErrorsKept {
				rep.Errors = append(rep.Errors, fmt.Sprintf("schedule %s: %v", x.schedString(), err))
			}
		default:
			m.finish(t, rep, x.schedString())
		}
		if !x.advance(childSummary, taint) {
			break
		}
	}
	rep.StatesSeen = len(x.seen)
}

// Pick replays the stack's choices, then extends the frontier (see the
// file comment for the full protocol).
func (x *dpor) Pick(cands []engine.Candidate) int {
	d := x.depth
	x.depth++
	if d < len(x.stack) {
		n := x.stack[d]
		if len(cands) != len(n.cands) || cands[n.chosen].Thread != n.cands[n.chosen].Thread {
			// Deterministic replay guarantees identical candidate sets;
			// reaching this means the engine or a guest is nondeterministic.
			panic(fmt.Sprintf("litmus: dpor replay diverged at decision %d: %d candidates, stack recorded %d",
				d, len(cands), len(n.cands)))
		}
		x.sched = append(x.sched, n.cands[n.chosen].Thread)
		return n.chosen
	}
	if d >= x.opts.Budget {
		x.status = runTruncated
		return -1
	}

	n := &dporNode{
		cands:     append([]engine.Candidate(nil), cands...),
		chosen:    -1,
		sleep:     map[int]isa.Op{},
		backtrack: map[int]bool{},
		done:      map[int]bool{},
		summary:   map[threadOp]struct{}{},
	}
	if d > 0 {
		// Inherit the parent's sleepers whose ops commute with the op
		// that led here; the executed op may have woken the rest.
		p := x.stack[d-1]
		ex := p.cands[p.chosen]
		for q, op := range p.sleep {
			if x.dep.Independent(ex.Op, op) {
				n.sleep[q] = op
			}
		}
	}
	n.entrySleep = sortedThreads(n.sleep)
	if !x.opts.NoDedup {
		if fp, ok := x.m.e.StateFingerprint(); ok {
			n.fp, n.fpOK = fp, true
		}
	}
	if n.fpOK {
		if ent := x.lookup(n.fp, n.sleep); ent != nil {
			x.status = runCut
			x.cutSummary = ent.summary
			x.foldCutSummary(ent.summary)
			return -1
		}
	}

	choice := -1
	for j, c := range n.cands {
		if _, asleep := n.sleep[c.Thread]; !asleep {
			choice = j
			break
		}
	}
	if choice < 0 {
		// Every enabled thread is asleep: any schedule from here is
		// trace-equivalent to one already explored.
		x.status = runDeadEnd
		x.rep.Pruned += int64(len(n.cands))
		return -1
	}
	c := n.cands[choice]
	x.raceUpdate(len(x.stack), c)
	n.chosen = choice
	n.backtrack[c.Thread] = true
	n.done[c.Thread] = true
	x.stack = append(x.stack, n)
	x.sched = append(x.sched, c.Thread)
	return choice
}

// raceUpdate performs the DPOR backtrack-set update for executing c from
// stack depth k: the deepest earlier node whose executed op is dependent
// with c's (and from another thread) must also try c's thread — or, if
// c's thread was not enabled there, everything that was.
func (x *dpor) raceUpdate(k int, c engine.Candidate) {
	for i := k - 1; i >= 0; i-- {
		n := x.stack[i]
		ex := n.cands[n.chosen]
		if ex.Thread == c.Thread || x.dep.Independent(ex.Op, c.Op) {
			continue
		}
		x.addBacktrack(n, c.Thread)
		return
	}
}

// foldCutSummary applies the backtrack updates a re-exploration of the
// cut subtree would have made: every step the subtree executed is
// raced against every dependent node of the current stack. Scanning all
// dependent nodes (not just the deepest) over-approximates, which only
// adds schedules, never loses them.
func (x *dpor) foldCutSummary(sum map[threadOp]struct{}) {
	for to := range sum {
		for i := len(x.stack) - 1; i >= 0; i-- {
			n := x.stack[i]
			ex := n.cands[n.chosen]
			if ex.Thread == to.thread || x.dep.Independent(ex.Op, to.op) {
				continue
			}
			x.addBacktrack(n, to.thread)
		}
	}
}

// addBacktrack schedules thread q for exploration at n if it is enabled
// there, otherwise conservatively schedules every enabled thread.
func (x *dpor) addBacktrack(n *dporNode, q int) {
	for _, c := range n.cands {
		if c.Thread == q {
			n.backtrack[q] = true
			return
		}
	}
	for _, c := range n.cands {
		n.backtrack[c.Thread] = true
	}
}

// advance retires the just-finished child subtree (whose executed-step
// summary is childSummary) and moves the stack to the next unexplored
// backtrack choice, popping fully-explored nodes into the dedup table.
// It returns false when the whole tree is explored.
func (x *dpor) advance(childSummary map[threadOp]struct{}, taint bool) bool {
	for len(x.stack) > 0 {
		n := x.stack[len(x.stack)-1]
		if taint {
			n.tainted = true
		}
		ex := n.cands[n.chosen]
		for to := range childSummary {
			n.summary[to] = struct{}{}
		}
		n.summary[threadOp{ex.Thread, ex.Op}] = struct{}{}
		// The explored thread joins the sleep set: any schedule that
		// delays it past an independent op is equivalent to one of the
		// schedules just covered.
		n.sleep[ex.Thread] = ex.Op

		for j, c := range n.cands {
			q := c.Thread
			if !n.backtrack[q] || n.done[q] {
				continue
			}
			if _, asleep := n.sleep[q]; asleep {
				continue
			}
			x.raceUpdate(len(x.stack)-1, c)
			n.chosen = j
			n.done[q] = true
			return true
		}

		x.rep.Pruned += int64(len(n.cands) - len(n.done))
		if n.fpOK && !n.tainted {
			x.register(n)
		}
		childSummary = n.summary
		taint = n.tainted
		x.stack = x.stack[:len(x.stack)-1]
	}
	return false
}

// lookup returns a dedup entry proving the state behind fp was fully
// explored under a sleep set no stronger than the current one.
func (x *dpor) lookup(fp uint64, sleep map[int]isa.Op) *dedupEntry {
	for _, ent := range x.seen[fp] {
		covered := true
		for _, q := range ent.sleep {
			if _, ok := sleep[q]; !ok {
				covered = false
				break
			}
		}
		if covered {
			return ent
		}
	}
	return nil
}

// register records a fully-explored node in the dedup table unless an
// entry with a weaker (subset) sleep set already covers it.
func (x *dpor) register(n *dporNode) {
	ents := x.seen[n.fp]
	for _, ent := range ents {
		if subsetSorted(ent.sleep, n.entrySleep) {
			return
		}
	}
	x.seen[n.fp] = append(ents, &dedupEntry{sleep: n.entrySleep, summary: n.summary})
}

func (x *dpor) schedString() string {
	var b strings.Builder
	for i, t := range x.sched {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(t))
	}
	return b.String()
}

func sortedThreads(m map[int]isa.Op) []int {
	if len(m) == 0 {
		return nil
	}
	ts := make([]int, 0, len(m))
	for t := range m {
		ts = append(ts, t)
	}
	sort.Ints(ts)
	return ts
}

// subsetSorted reports whether sorted slice a ⊆ sorted slice b.
func subsetSorted(a, b []int) bool {
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j >= len(b) || b[j] != v {
			return false
		}
		j++
	}
	return true
}
