package litmus

import (
	"repro/internal/mem"

	"testing"
)

// checkAccounting asserts the report's run-accounting invariant: every
// engine run is classified exactly once.
func checkAccounting(t *testing.T, label string, r *Report) {
	t.Helper()
	sum := r.Schedules + r.DeadEnds + r.Truncated + r.DedupCuts + r.ErrorRuns
	if r.Runs != sum {
		t.Errorf("%s: Runs=%d but Schedules+DeadEnds+Truncated+DedupCuts+ErrorRuns=%d (%d+%d+%d+%d+%d)",
			label, r.Runs, sum, r.Schedules, r.DeadEnds, r.Truncated, r.DedupCuts, r.ErrorRuns)
	}
	if r.Runs <= 0 {
		t.Errorf("%s: no runs recorded", label)
	}
}

// TestExplorerAccounting sweeps both explorers across the suite and a
// range of budgets, checking the accounting invariant everywhere and the
// budget semantics: a sufficient budget reports zero truncation and is
// insensitive to further increases, while a starvation budget truncates.
func TestExplorerAccounting(t *testing.T) {
	for _, tc := range Suite {
		for _, algo := range []string{AlgoDPOR, AlgoSwap} {
			full, err := Explore(tc, Base, Options{Algo: algo})
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.Name, algo, err)
			}
			checkAccounting(t, tc.Name+"/"+algo, full)
			if full.Truncated != 0 || full.Capped {
				t.Errorf("%s/%s: default budget truncated (%d) or capped", tc.Name, algo, full.Truncated)
			}

			// A bigger budget must change nothing: the default already
			// covers every schedule to completion.
			bigger, err := Explore(tc, Base, Options{Algo: algo, Budget: 4096})
			if err != nil {
				t.Fatal(err)
			}
			if bigger.Schedules != full.Schedules || bigger.Runs != full.Runs || bigger.Pruned != full.Pruned {
				t.Errorf("%s/%s: budget 4096 changed the exploration: %d/%d/%d schedules/runs/pruned vs %d/%d/%d",
					tc.Name, algo, bigger.Schedules, bigger.Runs, bigger.Pruned,
					full.Schedules, full.Runs, full.Pruned)
			}

			// A starvation budget must truncate (every suite program needs
			// more than two decisions) and still account for each run.
			starved, err := Explore(tc, Base, Options{Algo: algo, Budget: 2})
			if err != nil {
				t.Fatal(err)
			}
			checkAccounting(t, tc.Name+"/"+algo+"/starved", starved)
			if starved.Truncated == 0 {
				t.Errorf("%s/%s: budget 2 did not truncate", tc.Name, algo)
			}
			if v := starved.Verdict(tc); v.OK {
				t.Errorf("%s/%s: truncated exploration still passed the verdict", tc.Name, algo)
			}
		}
	}
}

// TestExplorerScheduleCap: hitting MaxSchedules sets Capped, keeps the
// accounting exact, and fails the verdict.
func TestExplorerScheduleCap(t *testing.T) {
	tc, _ := SuiteTest("sb")
	for _, algo := range []string{AlgoDPOR, AlgoSwap} {
		rep, err := Explore(tc, Base, Options{Algo: algo, MaxSchedules: 3})
		if err != nil {
			t.Fatal(err)
		}
		checkAccounting(t, "sb/"+algo+"/capped", rep)
		if !rep.Capped {
			t.Errorf("%s: cap of 3 runs not reported", algo)
		}
		if rep.Runs != 3 {
			t.Errorf("%s: want exactly 3 runs under the cap, got %d", algo, rep.Runs)
		}
		if v := rep.Verdict(tc); v.OK {
			t.Errorf("%s: capped exploration still passed the verdict", algo)
		}
	}
}

// TestExplorerSingleThread: with one thread there is exactly one
// schedule — one complete run, nothing pruned, dead-ended, or cut.
func TestExplorerSingleThread(t *testing.T) {
	tc := Test{
		Name: "single",
		Vars: 1, Regs: 1,
		Threads:  [][]Instr{{Store(0, 7), WB(0), Load(0, 0)}},
		Allowed:  []Outcome{{Regs: []mem.Word{7}}},
		Requires: []Outcome{{Regs: []mem.Word{7}}},
		Expect:   ExpectNone,
	}
	for _, algo := range []string{AlgoDPOR, AlgoSwap} {
		rep, err := Explore(tc, Base, Options{Algo: algo})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Runs != 1 || rep.Schedules != 1 || rep.Pruned != 0 || rep.DeadEnds != 0 || rep.DedupCuts != 0 {
			t.Errorf("%s: single-thread exploration not trivial: runs=%d schedules=%d pruned=%d deadends=%d cuts=%d",
				algo, rep.Runs, rep.Schedules, rep.Pruned, rep.DeadEnds, rep.DedupCuts)
		}
		if v := rep.Verdict(tc); !v.OK {
			t.Errorf("%s: %v", algo, v)
		}
	}
}

// TestDPORNoDedup: disabling the dedup table must preserve the outcome
// set and violation classes (it only remerges subtrees), with at least
// as many schedules.
func TestDPORNoDedup(t *testing.T) {
	for _, name := range []string{"mp-noinv", "barrier", "lock-annotated", "fuzz-await-noinv"} {
		tc, ok := SuiteTest(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		with, err := Explore(tc, Base, Options{Algo: AlgoDPOR})
		if err != nil {
			t.Fatal(err)
		}
		without, err := Explore(tc, Base, Options{Algo: AlgoDPOR, NoDedup: true})
		if err != nil {
			t.Fatal(err)
		}
		checkAccounting(t, name+"/nodedup", without)
		if without.DedupCuts != 0 || without.StatesSeen != 0 {
			t.Errorf("%s: NoDedup still cut %d / registered %d states", name, without.DedupCuts, without.StatesSeen)
		}
		if got, want := outcomeKeys(without), outcomeKeys(with); !sliceEq(got, want) {
			t.Errorf("%s: outcome sets differ without dedup: %v vs %v", name, got, want)
		}
		if without.Schedules < with.Schedules {
			t.Errorf("%s: dedup INCREASED schedules: %d with, %d without", name, with.Schedules, without.Schedules)
		}
	}
}

func sliceEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
