package cli

// Round-trip tests of the shared flag surface: every command's mask is
// parsed with a full argument vector and the values must land in Flags
// and flow through to hic.RunOptions. These catch the classic CLI drift
// bug — a flag that parses but is never wired into the options — for
// every command at once.

import (
	"bytes"
	"flag"
	"strings"
	"testing"
	"time"

	hic "repro"
	"repro/internal/envelope"
	"repro/internal/runner"
)

func parse(t *testing.T, mask Mask, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs, mask)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return f
}

// masks mirrors the per-command flag selections in cmd/*.
var masks = map[string]Mask{
	"hicsim":     SweepFlags,
	"intrablock": FigureFlags,
	"interblock": FigureFlags,
	"litmus":     JSONFlags | FlagExplore,
	"overhead":   FlagJSON,
}

// argFor maps each registered shared flag to a non-default test value.
var argFor = map[Mask][]string{
	FlagScale:     {"-scale", "test"},
	FlagParallel:  {"-parallel", "3"},
	FlagTimeout:   {"-timeout", "90s"},
	FlagJSON:      {"-json"},
	FlagTiming:    {"-timing"},
	FlagSchema:    {"-schema", "v1"},
	FlagCheck:     {"-check"},
	FlagCoherence: {"-check-coherence"},
	FlagFaults:    {"-faults", "drop-wb@0"},
	FlagObs:       {"-metrics", "-trace-chrome", "out.json"},
	FlagProfile:   {"-cpuprofile", "cpu.out", "-memprofile", "mem.out"},
	FlagExplore:   {"-enumerate", "-k", "3", "-dpor=false"},
}

func TestEveryCommandMaskRoundTrips(t *testing.T) {
	all := []Mask{FlagScale, FlagParallel, FlagTimeout, FlagJSON, FlagTiming,
		FlagSchema, FlagCheck, FlagCoherence, FlagFaults, FlagObs, FlagProfile,
		FlagExplore}
	for name, mask := range masks {
		t.Run(name, func(t *testing.T) {
			var args []string
			for _, bit := range all {
				if mask&bit != 0 {
					args = append(args, argFor[bit]...)
				}
			}
			f := parse(t, mask, args...)
			if mask&FlagScale != 0 {
				if s, err := f.ScaleValue(); err != nil || s != hic.ScaleTest {
					t.Errorf("scale = %v, %v; want ScaleTest", s, err)
				}
			}
			if mask&FlagParallel != 0 && f.Parallel != 3 {
				t.Errorf("parallel = %d, want 3", f.Parallel)
			}
			if mask&FlagTimeout != 0 && f.Timeout != 90*time.Second {
				t.Errorf("timeout = %s, want 90s", f.Timeout)
			}
			if mask&FlagJSON != 0 && !f.JSON {
				t.Error("-json not recorded")
			}
			if mask&FlagTiming != 0 && !f.Timing {
				t.Error("-timing not recorded")
			}
			if mask&FlagSchema != 0 && !f.SchemaV1() {
				t.Error("-schema v1 not recorded")
			}
			if mask&FlagCheck != 0 && !f.Check {
				t.Error("-check not recorded")
			}
			if mask&FlagCoherence != 0 && !f.CheckCoherence {
				t.Error("-check-coherence not recorded")
			}
			if mask&FlagFaults != 0 && f.Faults != "drop-wb@0" {
				t.Errorf("faults = %q", f.Faults)
			}
			if mask&FlagObs != 0 && (!f.Metrics || f.TraceChrome != "out.json") {
				t.Errorf("metrics/trace-chrome = %v/%q", f.Metrics, f.TraceChrome)
			}
			if mask&FlagProfile != 0 && (f.CPUProfile != "cpu.out" || f.MemProfile != "mem.out") {
				t.Errorf("profiles = %q/%q", f.CPUProfile, f.MemProfile)
			}
			if mask&FlagExplore != 0 && (!f.Enumerate || f.K != 3 || f.DPOR) {
				t.Errorf("enumerate/k/dpor = %v/%d/%v, want true/3/false", f.Enumerate, f.K, f.DPOR)
			}
			if err := f.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

func TestUnselectedFlagsAreNotRegistered(t *testing.T) {
	// A command that did not select a flag must reject it, not silently
	// swallow it with a default.
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(&bytes.Buffer{})
	Register(fs, FlagJSON)
	if err := fs.Parse([]string{"-parallel", "4"}); err == nil {
		t.Error("mask without FlagParallel accepted -parallel")
	}
}

func TestOptionsFlowIntoRunOptions(t *testing.T) {
	f := parse(t, SweepFlags,
		"-parallel", "5", "-timeout", "30s", "-check-coherence",
		"-metrics", "-trace-chrome", "t.json", "-faults", "drop-wb@1")
	o := hic.NewRunOptions(f.Options()...)
	if o.Parallel != 5 || o.Timeout != 30*time.Second {
		t.Errorf("orchestration = %d/%s", o.Parallel, o.Timeout)
	}
	if !o.CheckCoherence {
		t.Error("coherence check not wired")
	}
	if !o.Metrics || !o.Trace {
		t.Errorf("metrics/trace = %v/%v, want true/true", o.Metrics, o.Trace)
	}
	if o.Faults != "drop-wb@1" {
		t.Errorf("faults = %q", o.Faults)
	}
	// "matrix" is a command-level mode, not a plan: it must not reach
	// the options.
	f2 := parse(t, SweepFlags, "-faults", "matrix")
	if o2 := hic.NewRunOptions(f2.Options()...); o2.Faults != "" {
		t.Errorf(`faults = %q, want "" for -faults matrix`, o2.Faults)
	}
}

func TestValidateRejectsUnknownSchema(t *testing.T) {
	f := parse(t, JSONFlags, "-schema", "v3")
	if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "v3") {
		t.Errorf("Validate = %v, want unknown-schema error", err)
	}
}

func TestValidateRejectsBadOpBudget(t *testing.T) {
	f := parse(t, JSONFlags|FlagExplore, "-k", "0")
	if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "-k") {
		t.Errorf("Validate = %v, want op-budget error", err)
	}
}

func TestScaleValueRejectsUnknownScale(t *testing.T) {
	f := parse(t, FlagScale, "-scale", "huge")
	if _, err := f.ScaleValue(); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestEncodeDocHonorsSchemaFlag(t *testing.T) {
	doc := &runner.Document{Schema: envelope.SchemaV2, Kind: envelope.KindResults, Scale: "test", Suite: "intra"}
	v2 := parse(t, FigureFlags)
	var buf bytes.Buffer
	if err := v2.EncodeDoc(&buf, doc); err != nil {
		t.Fatal(err)
	}
	out, err := runner.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema != envelope.SchemaV2 || out.Kind != envelope.KindResults {
		t.Errorf("default encode = %q/%q, want v2 envelope", out.Schema, out.Kind)
	}
	v1 := parse(t, FigureFlags, "-schema", "v1")
	buf.Reset()
	if err := v1.EncodeDoc(&buf, doc); err != nil {
		t.Fatal(err)
	}
	if out, err = runner.Decode(&buf); err != nil {
		t.Fatal(err)
	}
	if out.Schema != envelope.ResultsV1 || out.Kind != "" {
		t.Errorf("-schema v1 encode = %q/%q, want legacy layout", out.Schema, out.Kind)
	}
	if doc.Schema != envelope.SchemaV2 {
		t.Error("EncodeDoc mutated the caller's document")
	}
}
