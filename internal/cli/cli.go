// Package cli is the shared command-line surface of the hic tools. Every
// command used to declare its own copies of the common flags (-parallel,
// -timeout, -json, ...), which let their spellings, defaults, and help
// strings drift; here each command selects the shared flags it supports
// with a Mask and registers only its extras, and the parsed values
// convert to hic run options and JSON encoding policy in one place.
//
// Typical use (see cmd/intrablock for a complete example):
//
//	f := cli.Register(flag.CommandLine, cli.FigureFlags)
//	extra := flag.Bool("traffic", false, "...")   // command-specific
//	flag.Parse()
//	s, err := f.ScaleValue()
//	...
//	res, err := hic.RunIntra(ctx, s, f.Options()...)
//	err = f.EncodeDoc(os.Stdout, res.Document(s))
//	err = f.WriteTraces(res.Traces)
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	hic "repro"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/serve"
)

// Mask selects which shared flags a command registers.
type Mask uint

const (
	// FlagScale is -scale (problem size).
	FlagScale Mask = 1 << iota
	// FlagParallel is -parallel (sweep worker count).
	FlagParallel
	// FlagTimeout is -timeout (per-run bound).
	FlagTimeout
	// FlagJSON is -json (machine-readable output).
	FlagJSON
	// FlagTiming is -timing (host wall times in -json output).
	FlagTiming
	// FlagSchema is -schema (v2 envelope or v1 compatibility layout).
	FlagSchema
	// FlagCheck is -check (shapecheck gate).
	FlagCheck
	// FlagCoherence is -check-coherence (shadow-memory oracle).
	FlagCoherence
	// FlagFaults is -faults (deterministic fault injection).
	FlagFaults
	// FlagObs is -metrics and -trace-chrome (observability layer).
	FlagObs
	// FlagProfile is -cpuprofile and -memprofile.
	FlagProfile
	// FlagTopo is -blocks, -cores-per-block, and -block-parallel (custom
	// machine topology and the block-parallel engine).
	FlagTopo
	// FlagExplore is -enumerate, -k, and -dpor (systematic litmus
	// enumeration and explorer selection).
	FlagExplore
	// FlagServer is -server (run the sweep on a hicserve instance and
	// print the fetched document, byte-identical to a local -json run).
	FlagServer

	// SweepFlags is the full sweep-command set (hicsim).
	SweepFlags = FlagScale | FlagParallel | FlagTimeout | FlagJSON | FlagTiming |
		FlagSchema | FlagCheck | FlagCoherence | FlagFaults | FlagObs | FlagProfile |
		FlagTopo | FlagServer
	// FigureFlags is the single-figure sweep set (intrablock, interblock):
	// everything but the shapecheck gate, fault injection, and topology.
	FigureFlags = FlagScale | FlagParallel | FlagTimeout | FlagJSON | FlagTiming |
		FlagSchema | FlagCoherence | FlagObs | FlagProfile | FlagServer
	// JSONFlags is the minimal machine-output set (litmus, overhead).
	JSONFlags = FlagJSON | FlagSchema
	// FuzzFlags is the fuzz-campaign set (hicfuzz): machine output plus
	// sweep parallelism and wall-time reporting.
	FuzzFlags = FlagParallel | FlagJSON | FlagSchema | FlagTiming
)

// Flags holds the parsed shared flags. Fields whose flag was not
// selected by the mask keep their defaults.
type Flags struct {
	mask Mask

	// Scale is the problem scale spelling ("test" or "bench").
	Scale string
	// Parallel is the sweep worker count.
	Parallel int
	// Timeout bounds each individual run (0 = none).
	Timeout time.Duration
	// JSON selects machine-readable output.
	JSON bool
	// Timing includes host wall times in JSON output.
	Timing bool
	// Schema selects the JSON envelope: "v2" (default) or "v1" for the
	// legacy per-tool layouts.
	Schema string
	// Check evaluates the expected orderings and exits nonzero on
	// violation.
	Check bool
	// CheckCoherence attaches the coherence oracle to every run.
	CheckCoherence bool
	// Faults is the fault-injection plan ("matrix" or a plan string).
	Faults string
	// Metrics embeds observability snapshots in the run records.
	Metrics bool
	// TraceChrome writes a Chrome trace_event file of the sweep's stall
	// timelines to this path.
	TraceChrome string
	// CPUProfile and MemProfile are pprof output paths.
	CPUProfile, MemProfile string
	// Blocks selects the many-core block-scaling sweep up to this block
	// count (0 = run the standard paper sweeps instead).
	Blocks int
	// CoresPerBlock is the cores per block of the many-core machines.
	CoresPerBlock int
	// BlockParallel runs each simulation on the block-parallel engine.
	BlockParallel bool
	// Enumerate sweeps the systematic litmus enumeration instead of the
	// curated suite.
	Enumerate bool
	// K is the enumeration op budget per program (with -enumerate).
	K int
	// DPOR selects the partial-order-reduction explorer (the default);
	// false falls back to the exhaustive adjacent-swap explorer.
	DPOR bool
	// Server is a hicserve base URL; when set the sweep runs remotely
	// and the fetched document is printed instead of computing locally.
	Server string
	// Tenant is the X-Hic-Tenant label sent with -server requests.
	Tenant string
}

// Register installs the shared flags selected by mask on fs and returns
// the destination Flags. Call it before registering command-specific
// extras so the shared spellings stay first in -help output.
func Register(fs *flag.FlagSet, mask Mask) *Flags {
	f := &Flags{mask: mask, Scale: "bench", Parallel: runtime.GOMAXPROCS(0), Schema: "v2", K: 4, DPOR: true}
	if mask&FlagScale != 0 {
		fs.StringVar(&f.Scale, "scale", f.Scale, "problem scale: test or bench")
	}
	if mask&FlagParallel != 0 {
		fs.IntVar(&f.Parallel, "parallel", f.Parallel, "worker count for the experiment sweeps")
	}
	if mask&FlagTimeout != 0 {
		fs.DurationVar(&f.Timeout, "timeout", 0, "per-run timeout (0 = none)")
	}
	if mask&FlagJSON != 0 {
		fs.BoolVar(&f.JSON, "json", false, "emit results as a machine-readable JSON document on stdout")
	}
	if mask&FlagTiming != 0 {
		fs.BoolVar(&f.Timing, "timing", false, "include host wall times in -json output (not deterministic)")
	}
	if mask&FlagSchema != 0 {
		fs.StringVar(&f.Schema, "schema", f.Schema, `JSON envelope: "v2" (hic/v2) or "v1" (legacy layout)`)
	}
	if mask&FlagCheck != 0 {
		fs.BoolVar(&f.Check, "check", false, "verify the paper's expected orderings; exit nonzero on violation")
	}
	if mask&FlagCoherence != 0 {
		fs.BoolVar(&f.CheckCoherence, "check-coherence", false, "attach the coherence oracle to every run")
	}
	if mask&FlagFaults != 0 {
		fs.StringVar(&f.Faults, "faults", "", `run the buggy-annotation experiment: "matrix" or a fault plan`)
	}
	if mask&FlagObs != 0 {
		fs.BoolVar(&f.Metrics, "metrics", false, "embed per-run observability snapshots in the JSON run records")
		fs.StringVar(&f.TraceChrome, "trace-chrome", "", "write a Chrome trace_event file of the sweep's stall timelines (open in Perfetto)")
	}
	if mask&FlagProfile != 0 {
		fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
		fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	}
	if mask&FlagTopo != 0 {
		fs.IntVar(&f.Blocks, "blocks", 0, "run the many-core block-scaling sweep: powers of two up to this block count (0 = standard sweeps)")
		fs.IntVar(&f.CoresPerBlock, "cores-per-block", hic.DefaultManycoreCoresPerBlock, "cores per block of the many-core machines")
		fs.BoolVar(&f.BlockParallel, "block-parallel", false, "run each simulation on the block-parallel engine (one goroutine per block; results are byte-identical)")
	}
	if mask&FlagExplore != 0 {
		fs.BoolVar(&f.Enumerate, "enumerate", false, "sweep every litmus shape up to -k ops instead of the curated suite")
		fs.IntVar(&f.K, "k", f.K, "op budget per enumerated program (with -enumerate)")
		fs.BoolVar(&f.DPOR, "dpor", f.DPOR, "explore with dynamic partial-order reduction; -dpor=false uses the exhaustive adjacent-swap explorer")
	}
	if mask&FlagServer != 0 {
		fs.StringVar(&f.Server, "server", "", "run on this hicserve base URL instead of locally (requires -json; bytes are identical)")
		fs.StringVar(&f.Tenant, "tenant", "", "tenant label sent with -server requests")
	}
	return f
}

// ScaleValue parses the -scale spelling.
func (f *Flags) ScaleValue() (hic.Scale, error) {
	switch f.Scale {
	case "bench":
		return hic.ScaleBench, nil
	case "test":
		return hic.ScaleTest, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want test or bench)", f.Scale)
}

// SchemaV1 reports whether -schema selected the legacy layout.
func (f *Flags) SchemaV1() bool { return f.Schema == "v1" }

// Validate rejects values the flag parser accepts but the tools do not
// (bad -scale spellings are reported by ScaleValue).
func (f *Flags) Validate() error {
	if f.Schema != "v1" && f.Schema != "v2" {
		return fmt.Errorf("unknown schema %q (want v1 or v2)", f.Schema)
	}
	if f.Blocks < 0 {
		return fmt.Errorf("-blocks %d: want a positive block count (or 0 for the standard sweeps)", f.Blocks)
	}
	if f.Blocks > 0 && f.CoresPerBlock < 1 {
		return fmt.Errorf("-cores-per-block %d: want at least 1", f.CoresPerBlock)
	}
	if f.K < 1 {
		return fmt.Errorf("-k %d: want an op budget of at least 1", f.K)
	}
	if f.Server != "" {
		// The server computes canonical documents; flags that change the
		// output beyond what a Request can express (or that only make
		// sense against a local process) cannot ride along.
		switch {
		case !f.JSON:
			return fmt.Errorf("-server requires -json (the server returns the machine-readable document)")
		case f.Timing:
			return fmt.Errorf("-timing is incompatible with -server (served documents are canonical, wall times stripped)")
		case f.TraceChrome != "":
			return fmt.Errorf("-trace-chrome is incompatible with -server (stall timelines stay on the server)")
		case f.CPUProfile != "" || f.MemProfile != "":
			return fmt.Errorf("profiling flags are incompatible with -server (profile the server process instead)")
		case f.Faults != "":
			return fmt.Errorf("-faults is incompatible with -server (the robustness experiment runs locally only)")
		case f.Check && f.SchemaV1():
			return fmt.Errorf("-check with -server requires the v2 schema (the gate decodes the fetched document)")
		}
	}
	return nil
}

// Tracing reports whether the command should retain stall timelines.
func (f *Flags) Tracing() bool { return f.TraceChrome != "" }

// Options converts the parsed flags to functional run options. A
// -faults value other than "matrix" becomes a WithFaultPlan option
// ("matrix" selects RunBuggyAnnotation's canonical per-class plans, so
// it contributes no plan of its own).
func (f *Flags) Options() []hic.Option {
	opts := []hic.Option{
		hic.WithParallel(f.Parallel),
		hic.WithTimeout(f.Timeout),
	}
	if f.CheckCoherence {
		opts = append(opts, hic.WithCoherenceCheck())
	}
	if f.Faults != "" && f.Faults != "matrix" {
		opts = append(opts, hic.WithFaultPlan(f.Faults))
	}
	if f.Metrics {
		opts = append(opts, hic.WithMetrics())
	}
	if f.Tracing() {
		opts = append(opts, hic.WithTracing())
	}
	if f.BlockParallel {
		opts = append(opts, hic.WithBlockParallel())
	}
	return opts
}

// EncodeDoc writes a results document per the -schema and -timing flags:
// the hic/v2 envelope by default, the legacy hic-results/v1 layout under
// -schema v1, canonical (wall times stripped) unless -timing.
func (f *Flags) EncodeDoc(w io.Writer, doc *runner.Document) error {
	if f.SchemaV1() {
		doc = doc.LegacyV1()
	}
	if f.Timing {
		return doc.EncodeTiming(w)
	}
	return doc.Encode(w)
}

// RunRemote completes req from the shared flags (-scale, -schema,
// -check-coherence, -metrics, -block-parallel), runs it on the -server
// instance — riding out 429 backpressure per the server's Retry-After
// hints — and writes the fetched document bytes to w (skipped when w is
// nil). The bytes are identical to the equivalent local -json run.
func (f *Flags) RunRemote(ctx context.Context, req serve.Request, w io.Writer) ([]byte, error) {
	if f.mask&FlagScale != 0 && req.Scale == "" {
		req.Scale = f.Scale
	}
	if f.SchemaV1() {
		req.Version = "v1"
	}
	if f.CheckCoherence {
		req.Coherence = true
	}
	if f.Metrics {
		req.Metrics = true
	}
	if f.BlockParallel {
		req.BlockParallel = true
	}
	c := &serve.Client{BaseURL: f.Server, Tenant: f.Tenant}
	data, err := c.Run(ctx, req)
	if err != nil {
		return nil, err
	}
	if w != nil {
		if _, err := w.Write(data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// WriteTraces writes the sweep's stall timelines to the -trace-chrome
// path (no-op when the flag is unset or no cell retained a timeline).
func (f *Flags) WriteTraces(traces []obs.CellTrace) error {
	if f.TraceChrome == "" {
		return nil
	}
	out, err := os.Create(f.TraceChrome)
	if err != nil {
		return err
	}
	if err := obs.WriteChrome(out, traces); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// StartProfiles begins the -cpuprofile capture and returns a stop
// function that ends it and writes the -memprofile snapshot; defer it
// from main. Profile-file failures are fatal via log.
func (f *Flags) StartProfiles() (stop func()) {
	var stopCPU func()
	if f.CPUProfile != "" {
		out, err := os.Create(f.CPUProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(out); err != nil {
			log.Fatal(err)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			out.Close()
		}
	}
	return func() {
		if stopCPU != nil {
			stopCPU()
		}
		if f.MemProfile != "" {
			out, err := os.Create(f.MemProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer out.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(out); err != nil {
				log.Fatal(err)
			}
		}
	}
}
