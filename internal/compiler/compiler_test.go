package compiler

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/mesi"
	"repro/internal/topo"
)

// hierFor builds the inter-block machine hierarchy for a mode.
func hierFor(mode Mode) engine.Hierarchy {
	m := topo.NewInterBlock()
	if mode == ModeHCC {
		return mesi.New(m, mesi.DefaultConfig(m))
	}
	return core.New(m, core.DefaultConfig(m))
}

// pipeline is a simple two-stage producer-consumer program: loop P writes
// X chunked, loop C reads X shifted by one chunk, so every thread consumes
// from its neighbor.
func pipeline(n, shift int) *Program {
	prog := NewProgram("pipeline")
	prog.Array("X", n)
	prog.Array("Y", n)
	prog.Add(
		&Loop{
			Name: "produce", Parallel: true, Lo: 0, Hi: n,
			Writes: []Write{{Array: "X", At: func(i int) int { return i }}},
			Body: func(i int, _ func(int) mem.Word) []mem.Word {
				return []mem.Word{mem.Word(i * 3)}
			},
		},
		&Loop{
			Name: "consume", Parallel: true, Lo: 0, Hi: n,
			Reads:  []Read{{Array: "X", At: func(i int) int { return (i + shift) % n }}},
			Writes: []Write{{Array: "Y", At: func(i int) int { return i }}},
			Body: func(i int, read func(int) mem.Word) []mem.Word {
				return []mem.Word{read(0) + 1}
			},
		},
	)
	return prog
}

func TestReferenceInterpreter(t *testing.T) {
	prog := pipeline(64, 8)
	ref := Reference(prog)
	if ref["X"][5] != 15 {
		t.Errorf("X[5] = %d", ref["X"][5])
	}
	if ref["Y"][0] != ref["X"][8]+1 {
		t.Errorf("Y[0] = %d", ref["Y"][0])
	}
}

func TestAnalyzeFindsProducerConsumerPairs(t *testing.T) {
	prog := pipeline(64, 2) // chunk = 2 with 32 threads: neighbor exchange
	plan := Analyze(prog, 32)
	consume := prog.Stmts[1].(*Loop)
	produce := prog.Stmts[0].(*Loop)
	invs, wbs := 0, 0
	for u := 0; u < 32; u++ {
		invs += len(plan.Loops[consume].INVIn[u])
		wbs += len(plan.Loops[produce].WBOut[u])
	}
	if invs == 0 {
		t.Error("no INV_PROD annotations for the consumer")
	}
	if wbs == 0 {
		t.Error("no WB_CONS annotations for the producer")
	}
	// With shift=2 and chunk=2, each thread reads exactly its successor's
	// chunk: one INV annotation per thread, naming the successor.
	for u := 0; u < 32; u++ {
		anns := plan.Loops[consume].INVIn[u]
		if len(anns) != 1 {
			t.Fatalf("thread %d has %d INV annotations, want 1 (%v)", u, len(anns), anns)
		}
		wantPeer := (u + 1) % 32
		if anns[0].Peer != wantPeer || anns[0].Multi {
			t.Errorf("thread %d INV peer = %d (multi=%v), want %d", u, anns[0].Peer, anns[0].Multi, wantPeer)
		}
	}
}

func TestAnalyzeSelfChunkNoCommunication(t *testing.T) {
	prog := pipeline(64, 0) // shift 0: every thread reads its own chunk
	plan := Analyze(prog, 32)
	consume := prog.Stmts[1].(*Loop)
	for u := 0; u < 32; u++ {
		if len(plan.Loops[consume].INVIn[u]) != 0 {
			t.Fatalf("thread %d has annotations for a thread-local read", u)
		}
	}
}

func TestPipelineCorrectUnderAllModes(t *testing.T) {
	for _, mode := range Modes {
		w := &IRWorkload{Name: "pipeline", Prog: pipeline(64, 8), Threads: 32}
		if _, err := w.Run(hierFor(mode), mode); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

// reduceProg sums i over a reduction, then a serial loop reads the total.
func reduceProg(n int) *Program {
	prog := NewProgram("reduce")
	prog.Array("acc", 4)
	prog.Array("out", 4)
	prog.Add(
		&Loop{
			Name: "reduce", Parallel: true, Lo: 0, Hi: n,
			Reduction: &Reduction{Array: "acc", At: func(i int) int { return i % 4 }},
			Body: func(i int, _ func(int) mem.Word) []mem.Word {
				return []mem.Word{mem.Word(i)}
			},
		},
		&Loop{
			Name: "report", Parallel: false, Lo: 0, Hi: 4,
			Reads:  []Read{{Array: "acc", At: func(j int) int { return j }}},
			Writes: []Write{{Array: "out", At: func(j int) int { return j }}},
			Body: func(j int, read func(int) mem.Word) []mem.Word {
				return []mem.Word{read(0) * 2}
			},
		},
	)
	return prog
}

func TestReductionCorrectUnderAllModes(t *testing.T) {
	for _, mode := range Modes {
		w := &IRWorkload{Name: "reduce", Prog: reduceProg(256), Threads: 32}
		if _, err := w.Run(hierFor(mode), mode); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

func TestReductionHasNoAdaptiveAnnotations(t *testing.T) {
	prog := reduceProg(256)
	plan := Analyze(prog, 32)
	reduce := prog.Stmts[0].(*Loop)
	report := prog.Stmts[1].(*Loop)
	for u := 0; u < 32; u++ {
		for _, ann := range plan.Loops[reduce].WBOut[u] {
			if !ann.Multi {
				t.Error("reduction producer got a level-adaptive WB annotation")
			}
		}
	}
	// The serial consumer's invalidations are conservative (Multi).
	found := false
	for _, ann := range plan.Loops[report].INVIn[0] {
		if !ann.Multi {
			t.Errorf("reduction consumer annotation is not conservative: %+v", ann)
		}
		found = true
	}
	if !found {
		t.Error("reduction consumer has no fallback INV")
	}
}

// indirectProg: gather through an index array (exercises the inspector).
func indirectProg(n int) *Program {
	prog := NewProgram("gather")
	prog.Array("idx", n)
	prog.Array("src", n)
	prog.Array("dst", n)
	perm := func(i int) int { return (i*7 + 3) % n }
	prog.Add(
		&Loop{
			Name: "init-idx", Parallel: true, Lo: 0, Hi: n,
			Writes: []Write{{Array: "idx", At: func(i int) int { return i }}},
			Body: func(i int, _ func(int) mem.Word) []mem.Word {
				return []mem.Word{mem.Word(perm(i))}
			},
		},
		&Loop{
			Name: "init-src", Parallel: true, Lo: 0, Hi: n,
			Writes: []Write{{Array: "src", At: func(i int) int { return i }}},
			Body: func(i int, _ func(int) mem.Word) []mem.Word {
				return []mem.Word{mem.Word(i * 11)}
			},
		},
		&Loop{
			Name: "gather", Parallel: true, Lo: 0, Hi: n,
			Reads: []Read{{
				Array: "src", At: perm,
				Indirect: true, IndexArray: "idx", IndexAt: func(i int) int { return i },
			}},
			Writes: []Write{{Array: "dst", At: func(i int) int { return i }}},
			Body: func(i int, read func(int) mem.Word) []mem.Word {
				return []mem.Word{read(0) + 5}
			},
		},
	)
	return prog
}

func TestInspectorGatherCorrectUnderAllModes(t *testing.T) {
	for _, mode := range Modes {
		w := &IRWorkload{Name: "gather", Prog: indirectProg(128), Threads: 32}
		if _, err := w.Run(hierFor(mode), mode); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

func TestInspectorPlanned(t *testing.T) {
	prog := indirectProg(128)
	plan := Analyze(prog, 32)
	gather := prog.Stmts[2].(*Loop)
	if len(plan.Loops[gather].Inspectors) != 1 {
		t.Fatalf("inspectors = %d, want 1", len(plan.Loops[gather].Inspectors))
	}
	owner := plan.Loops[gather].Inspectors[0].OwnerOf
	// Element 0 of src is produced by thread 0 under chunking of 128/32.
	if got := owner(0); got != 0 {
		t.Errorf("owner(0) = %d", got)
	}
	if got := owner(127); got != 31 {
		t.Errorf("owner(127) = %d", got)
	}
}

func TestTimeLoopCrossIterationPairs(t *testing.T) {
	// A ping-pong program where the copy loop's output feeds the next
	// iteration's stencil: annotations must exist via the back edge.
	n := 64
	prog := NewProgram("ping")
	prog.Array("A", n)
	prog.Array("B", n)
	prog.Add(&Loop{
		Name: "init", Parallel: true, Lo: 0, Hi: n,
		Writes: []Write{{Array: "A", At: func(i int) int { return i }}},
		Body:   func(i int, _ func(int) mem.Word) []mem.Word { return []mem.Word{mem.Word(i)} },
	})
	prog.Add(&TimeLoop{Iters: 3, Body: []Stmt{
		&Loop{
			Name: "shift", Parallel: true, Lo: 0, Hi: n,
			Reads:  []Read{{Array: "A", At: func(i int) int { return (i + 1) % n }}},
			Writes: []Write{{Array: "B", At: func(i int) int { return i }}},
			Body: func(i int, read func(int) mem.Word) []mem.Word {
				return []mem.Word{read(0) + 1}
			},
		},
		&Loop{
			Name: "copy", Parallel: true, Lo: 0, Hi: n,
			Reads:  []Read{{Array: "B", At: func(i int) int { return i }}},
			Writes: []Write{{Array: "A", At: func(i int) int { return i }}},
			Body: func(i int, read func(int) mem.Word) []mem.Word {
				return []mem.Word{read(0)}
			},
		},
	}})
	plan := Analyze(prog, 32)
	shift := (prog.Stmts[1].(*TimeLoop)).Body[0].(*Loop)
	anyINV := false
	for u := 0; u < 32; u++ {
		if len(plan.Loops[shift].INVIn[u]) > 0 {
			anyINV = true
		}
	}
	if !anyINV {
		t.Fatal("no cross-iteration annotations found")
	}
	for _, mode := range Modes {
		w := &IRWorkload{Name: "ping", Prog: prog, Threads: 32}
		if _, err := w.Run(hierFor(mode), mode); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if ModeHCC.String() != "HCC" || ModeAddrL.String() != "Addr+L" {
		t.Error("mode names wrong")
	}
}

func TestAddrLReducesGlobalOpsOnNeighborExchange(t *testing.T) {
	// Figure 11's mechanism in miniature: neighbor exchange where most
	// neighbors share a block must produce fewer global ops under Addr+L
	// than under Addr.
	runMode := func(mode Mode) (int64, int64) {
		h := hierFor(mode).(*core.Hierarchy)
		w := &IRWorkload{Name: "pipeline", Prog: pipeline(64, 2), Threads: 32}
		if _, err := w.Run(h, mode); err != nil {
			t.Fatal(err)
		}
		wb, inv := h.GlobalOps()
		return wb, inv
	}
	wbAddr, invAddr := runMode(ModeAddr)
	wbAdpt, invAdpt := runMode(ModeAddrL)
	if wbAdpt >= wbAddr {
		t.Errorf("global WBs: Addr+L %d not below Addr %d", wbAdpt, wbAddr)
	}
	if invAdpt >= invAddr {
		t.Errorf("global INVs: Addr+L %d not below Addr %d", invAdpt, invAddr)
	}
}

// A range read by three or more consumer threads collapses to a single
// conservative global writeback (the broadcast case), while two consumers
// get one WB_CONS each.
func TestBroadcastWBCollapse(t *testing.T) {
	n := 64
	mk := func(readers int) *Program {
		prog := NewProgram("bcast")
		prog.Array("X", n)
		prog.Array("Y", n)
		prog.Add(
			&Loop{
				Name: "produce", Parallel: false, Lo: 0, Hi: 1,
				Writes: []Write{{Array: "X", At: func(int) int { return 0 }}},
				Body: func(int, func(int) mem.Word) []mem.Word {
					return []mem.Word{7}
				},
			},
			&Loop{
				Name: "consume", Parallel: true, Lo: 0, Hi: readers,
				Reads:  []Read{{Array: "X", At: func(int) int { return 0 }}},
				Writes: []Write{{Array: "Y", At: func(i int) int { return i }}},
				Body: func(_ int, read func(int) mem.Word) []mem.Word {
					return []mem.Word{read(0) + 1}
				},
			},
		)
		return prog
	}
	// Two readers (threads 0 and 1; thread 0 produces, so one cross-thread
	// consumer): per-consumer WB_CONS annotations, none Multi.
	plan := Analyze(mk(2), 32)
	produce := plan.flat[0].loop
	for _, ann := range plan.Loops[produce].WBOut[0] {
		if ann.Multi {
			t.Errorf("two-consumer range should not collapse: %+v", ann)
		}
	}
	// Many readers: chunking of 32 threads over 8 iterations gives 8
	// distinct consumer threads reading X[0] — must collapse to Multi.
	plan = Analyze(mk(8), 32)
	produce = plan.flat[0].loop
	foundMulti := false
	perPeer := 0
	for _, ann := range plan.Loops[produce].WBOut[0] {
		if ann.Multi {
			foundMulti = true
		} else {
			perPeer++
		}
	}
	if !foundMulti {
		t.Error("broadcast range did not collapse to a global WB")
	}
	if perPeer > 2 {
		t.Errorf("%d per-consumer annotations survived the collapse", perPeer)
	}
	// And the program still verifies under every mode.
	for _, mode := range Modes {
		w := &IRWorkload{Name: "bcast", Prog: mk(8), Threads: 32}
		if _, err := w.Run(hierFor(mode), mode); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

// Loops with empty chunks (more threads than iterations) analyze and run.
func TestEmptyChunksHandled(t *testing.T) {
	prog := NewProgram("tiny")
	prog.Array("X", 4)
	prog.Array("Y", 4)
	prog.Add(
		&Loop{
			Name: "p", Parallel: true, Lo: 0, Hi: 4,
			Writes: []Write{{Array: "X", At: func(i int) int { return i }}},
			Body: func(i int, _ func(int) mem.Word) []mem.Word {
				return []mem.Word{mem.Word(i * 3)}
			},
		},
		&Loop{
			Name: "c", Parallel: true, Lo: 0, Hi: 4,
			Reads:  []Read{{Array: "X", At: func(i int) int { return 3 - i }}},
			Writes: []Write{{Array: "Y", At: func(i int) int { return i }}},
			Body: func(_ int, read func(int) mem.Word) []mem.Word {
				return []mem.Word{read(0)}
			},
		},
	)
	for _, mode := range Modes {
		w := &IRWorkload{Name: "tiny", Prog: prog, Threads: 32}
		if _, err := w.Run(hierFor(mode), mode); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}
