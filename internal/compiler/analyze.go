package compiler

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/workload"
)

// flatLoop is one loop occurrence in the flattened interprocedural control
// flow: its position in program order and whether it sits inside a time
// loop (whose back edge makes every loop in the region reach every other).
type flatLoop struct {
	loop   *Loop
	index  int
	region int // -1 outside any TimeLoop, else TimeLoop ordinal
}

// flatten linearizes the statement list.
func flatten(stmts []Stmt, region int, nextRegion *int, out *[]flatLoop) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *Loop:
			*out = append(*out, flatLoop{loop: s, index: len(*out), region: region})
		case *TimeLoop:
			r := *nextRegion
			*nextRegion++
			flatten(s.Body, r, nextRegion, out)
		default:
			panic(fmt.Sprintf("compiler: unknown statement %T", s))
		}
	}
}

// Annotation is one WB or INV insertion: a set of element ranges plus the
// peer thread for the level-adaptive instruction form. Multi marks pieces
// with more than one peer (or no identifiable peer, as after reductions),
// which lower to the conservative global instructions.
type Annotation struct {
	Ranges []mem.Range
	Peer   int
	Multi  bool
}

// InspectorPlan describes one irregular read requiring a runtime
// inspector: for each consumer iteration the lowered code computes the
// producing thread of the element it reads (from the producer's static
// schedule) and issues a conditional INV before the read.
type InspectorPlan struct {
	ReadIdx int
	// OwnerOf maps an element of the read array to the thread that
	// produces it (derived from the producer loop's chunk distribution).
	OwnerOf func(elem int) int
}

// LoopPlan is the instrumentation computed for one loop.
type LoopPlan struct {
	// WBOut[t] are the writebacks thread t issues at the loop's epoch
	// end; INVIn[t] are the invalidations it issues at epoch start.
	WBOut, INVIn [][]Annotation
	// Inspectors are the loop's irregular reads.
	Inspectors []InspectorPlan
	// ReductionElems, for reduction loops, is the set of target element
	// ranges a thread may touch (used by the lowering's locked merge).
	ReductionElems []mem.Range
}

// Plan is the full compilation result.
type Plan struct {
	Prog    *Program
	Threads int
	Loops   map[*Loop]*LoopPlan
	// GlobalWBElems/GlobalINVElems count the analyzed elements that could
	// not be level-adapted (diagnostics).
	flat []flatLoop
}

// chunkOwner returns the owner of iteration i of loop l.
func chunkOwner(l *Loop, i, threads int) int {
	if !l.Parallel {
		return 0
	}
	return workload.OwnerOf(l.Hi-l.Lo, i-l.Lo, threads)
}

// iterRange returns thread t's iterations of loop l.
func iterRange(l *Loop, t, threads int) (lo, hi int) {
	if !l.Parallel {
		if t == 0 {
			return l.Lo, l.Hi
		}
		return l.Lo, l.Lo
	}
	clo, chi := workload.ChunkOf(l.Hi-l.Lo, t, threads)
	return l.Lo + clo, l.Lo + chi
}

// writeFoot returns loop l's written elements per array: array -> elem ->
// writer thread. Reduction targets are excluded (they are handled by the
// reduction fallback, not producer-consumer pairing).
func writeFoot(l *Loop, threads int) map[string]map[int]int {
	foot := make(map[string]map[int]int)
	for t := 0; t < threads; t++ {
		lo, hi := iterRange(l, t, threads)
		for i := lo; i < hi; i++ {
			for _, w := range l.Writes {
				m, ok := foot[w.Array]
				if !ok {
					m = make(map[int]int)
					foot[w.Array] = m
				}
				m[w.At(i)] = t
			}
		}
	}
	return foot
}

// Analyze compiles prog for the given thread count: it builds the control
// flow, extracts producer-consumer epoch pairs via DEF-USE over the
// numeric access footprints, plans inspectors for irregular reads, and
// records reduction fallbacks.
func Analyze(prog *Program, threads int) *Plan {
	var flat []flatLoop
	nextRegion := 0
	flatten(prog.Stmts, -1, &nextRegion, &flat)

	plan := &Plan{Prog: prog, Threads: threads, Loops: make(map[*Loop]*LoopPlan), flat: flat}
	for _, fl := range flat {
		lp := &LoopPlan{
			WBOut: make([][]Annotation, threads),
			INVIn: make([][]Annotation, threads),
		}
		plan.Loops[fl.loop] = lp
		if r := fl.loop.Reduction; r != nil {
			elems := map[int]bool{}
			for i := fl.loop.Lo; i < fl.loop.Hi; i++ {
				elems[r.At(i)] = true
			}
			lp.ReductionElems = elemsToRanges(prog.Arrays[r.Array], elems)
		}
	}

	// Precompute write footprints.
	foots := make([]map[string]map[int]int, len(flat))
	for i, fl := range flat {
		foots[i] = writeFoot(fl.loop, threads)
	}

	for ci, cf := range flat {
		cons := cf.loop
		for ri, rd := range cons.Reads {
			sameIter, backEdge, outside := plan.reachableProducers(ci, rd.Array, foots)
			if len(sameIter)+len(backEdge)+len(outside) == 0 {
				continue
			}
			if rd.Indirect {
				// Inspector-executor: the compiler cannot see the
				// footprint; derive the element-owner function from the
				// producers' static schedules. When the steady-state
				// (back-edge) writer and the first-iteration writer of an
				// element belong to different threads, the owner is
				// reported as OwnerUnknown and the lowering invalidates
				// globally.
				owner := plan.ownerFunc(rd.Array, sameIter, backEdge, outside, foots)
				lp := plan.Loops[cons]
				lp.Inspectors = append(lp.Inspectors, InspectorPlan{ReadIdx: ri, OwnerOf: owner})
				// Producer side: every reaching producer writes its whole
				// footprint to L3 (Section V-A.2: exact consumer analysis
				// of indirect reads is skipped).
				for _, pf := range concat(sameIter, backEdge, outside) {
					plan.addProducerGlobalWB(pf.loop, rd.Array, foots[pf.index][rd.Array])
				}
				continue
			}
			plan.pairDirect(ci, ri, sameIter, backEdge, outside, foots)
		}
		// Reduction consumers: any loop reading an array that a reachable
		// reduction targets gets a conservative global INV of the read
		// footprint (no producer-consumer order exists).
		for ri, rd := range cons.Reads {
			if rd.Indirect {
				continue
			}
			for _, pf := range flat {
				if pf.loop.Reduction == nil || pf.loop == cons {
					continue
				}
				if pf.loop.Reduction.Array != rd.Array || !plan.reaches(pf.index, ci) {
					continue
				}
				redElems := map[int]bool{}
				for i := pf.loop.Lo; i < pf.loop.Hi; i++ {
					redElems[pf.loop.Reduction.At(i)] = true
				}
				for u := 0; u < threads; u++ {
					lo, hi := iterRange(cons, u, threads)
					elems := map[int]bool{}
					for i := lo; i < hi; i++ {
						if e := rd.At(i); redElems[e] {
							elems[e] = true
						}
					}
					if len(elems) == 0 {
						continue
					}
					plan.Loops[cons].INVIn[u] = append(plan.Loops[cons].INVIn[u], Annotation{
						Ranges: elemsToRanges(prog.Arrays[rd.Array], elems),
						Multi:  true,
					})
				}
				_ = ri
			}
		}
	}
	return plan
}

// reaches reports whether loop at flat index p can feed loop at flat index
// c: program order, or both inside the same time-loop region (back edge).
func (pl *Plan) reaches(p, c int) bool {
	if p < c {
		return true
	}
	return pl.flat[p].region >= 0 && pl.flat[p].region == pl.flat[c].region
}

// reachableProducers classifies the producers of array reaching consumer
// ci by dependence distance, each group nearest-first:
//
//   - sameIter: producers earlier in the same time-loop iteration (or in
//     straight-line code before the consumer inside the same region) —
//     these kill everything older;
//   - backEdge: producers later in the region, feeding the consumer via
//     the time loop's back edge (steady-state source from iteration 2 on);
//   - outside: producers before the consumer's region (the source on the
//     first iteration when no sameIter producer writes the element).
func (pl *Plan) reachableProducers(ci int, array string, foots []map[string]map[int]int) (sameIter, backEdge, outside []flatLoop) {
	creg := pl.flat[ci].region
	for pi, pf := range pl.flat {
		if pi == ci {
			continue
		}
		if _, writes := foots[pi][array]; !writes {
			continue
		}
		switch {
		case pf.region == creg && pi < ci:
			sameIter = append(sameIter, pf)
		case creg >= 0 && pf.region == creg:
			backEdge = append(backEdge, pf)
		case pi < ci:
			outside = append(outside, pf)
		}
	}
	sort.Slice(sameIter, func(a, b int) bool { return sameIter[a].index > sameIter[b].index })
	sort.Slice(backEdge, func(a, b int) bool { return backEdge[a].index > backEdge[b].index })
	sort.Slice(outside, func(a, b int) bool { return outside[a].index > outside[b].index })
	return sameIter, backEdge, outside
}

func concat(groups ...[]flatLoop) []flatLoop {
	var out []flatLoop
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// producerSrc identifies one producer occurrence.
type producerSrc struct{ pi, t int }

// candidateProducers returns the producer occurrences that can be the
// last writer of element e at some dynamic consumption: if a same-
// iteration producer writes e it is the unique candidate; otherwise the
// nearest back-edge writer (iterations ≥ 2) and the nearest preceding
// outside writer (iteration 1) are both candidates.
func candidateProducers(e int, array string, sameIter, backEdge, outside []flatLoop, foots []map[string]map[int]int) []producerSrc {
	for _, pf := range sameIter {
		if t, ok := foots[pf.index][array][e]; ok {
			return []producerSrc{{pf.index, t}}
		}
	}
	var out []producerSrc
	for _, pf := range backEdge {
		if t, ok := foots[pf.index][array][e]; ok {
			out = append(out, producerSrc{pf.index, t})
			break
		}
	}
	for _, pf := range outside {
		if t, ok := foots[pf.index][array][e]; ok {
			out = append(out, producerSrc{pf.index, t})
			break
		}
	}
	return out
}

// OwnerUnknown is returned by an inspector's OwnerOf when an element's
// possible last writers belong to different threads; the lowering then
// invalidates globally.
const OwnerUnknown = -2

// ownerFunc builds the inspector's element-owner function.
func (pl *Plan) ownerFunc(array string, sameIter, backEdge, outside []flatLoop, foots []map[string]map[int]int) func(int) int {
	return func(e int) int {
		cands := candidateProducers(e, array, sameIter, backEdge, outside, foots)
		if len(cands) == 0 {
			return OwnerUnknown
		}
		t := cands[0].t
		for _, c := range cands[1:] {
			if c.t != t {
				return OwnerUnknown
			}
		}
		return t
	}
}

// pairDirect extracts producer-consumer pairs for a direct (affine) read:
// for each consumer thread, each element is attributed to its candidate
// last writers (DEF-USE with kills across the back edge), then grouped
// into per-(producer-thread, consumer-thread) ranges yielding WB_CONS at
// the producer and INV_PROD at the consumer. Elements whose candidate
// writers span several threads lower to conservative global instructions.
func (pl *Plan) pairDirect(ci, ri int, sameIter, backEdge, outside []flatLoop, foots []map[string]map[int]int) {
	cons := pl.flat[ci].loop
	rd := cons.Reads[ri]
	arr := pl.Prog.Arrays[rd.Array]

	elemCands := make(map[int][]producerSrc)
	for u := 0; u < pl.Threads; u++ {
		lo, hi := iterRange(cons, u, pl.Threads)
		invElems := make(map[producerSrc]map[int]bool) // single-writer pieces
		multiElems := make(map[int]bool)               // conflicting-writer pieces
		for i := lo; i < hi; i++ {
			e := rd.At(i)
			cands, ok := elemCands[e]
			if !ok {
				cands = candidateProducers(e, rd.Array, sameIter, backEdge, outside, foots)
				elemCands[e] = cands
			}
			switch {
			case len(cands) == 0:
				// Never-written (initial) data: nothing to communicate.
			case allSameThread(cands):
				if cands[0].t == u {
					continue // produced by this thread: no communication
				}
				s := producerSrc{cands[0].pi, cands[0].t}
				m, ok := invElems[s]
				if !ok {
					m = make(map[int]bool)
					invElems[s] = m
				}
				m[e] = true
			default:
				multiElems[e] = true
			}
		}
		// WB side: every candidate occurrence must write back the
		// elements this consumer reads from it (the outside producer
		// feeds the first iteration, the back-edge one the rest).
		wbElems := make(map[producerSrc]map[int]bool)
		note := func(e int) {
			for _, c := range elemCands[e] {
				m, ok := wbElems[c]
				if !ok {
					m = make(map[int]bool)
					wbElems[c] = m
				}
				m[e] = true
			}
		}
		for s, elems := range invElems {
			ranges := elemsToRanges(arr, elems)
			pl.Loops[cons].INVIn[u] = append(pl.Loops[cons].INVIn[u], Annotation{Ranges: ranges, Peer: s.t})
			for e := range elems {
				note(e)
			}
		}
		if len(multiElems) > 0 {
			pl.Loops[cons].INVIn[u] = append(pl.Loops[cons].INVIn[u], Annotation{
				Ranges: elemsToRanges(arr, multiElems), Multi: true,
			})
			for e := range multiElems {
				note(e)
			}
		}
		for c, elems := range wbElems {
			pl.addWB(pl.flat[c.pi].loop, c.t, u, elemsToRanges(arr, elems))
		}
	}
	sortAnnotations(pl.Loops[cons].INVIn)
}

func allSameThread(cands []producerSrc) bool {
	for _, c := range cands[1:] {
		if c.t != cands[0].t {
			return false
		}
	}
	return true
}

// addWB records that producer thread t must write back ranges for
// consumer thread u at the end of loop prod. A range read by up to two
// distinct consumers gets one WB_CONS per consumer (the two-neighbor case
// of boundary exchange; the second WB finds the L1 line already clean and
// only moves data deeper if its consumer's level requires it). A range
// with more than two consumers is a broadcast and collapses into a single
// conservative global annotation, matching the paper's serial-section
// handling ("the producer writes back the data to the last level cache").
func (pl *Plan) addWB(prod *Loop, t, u int, ranges []mem.Range) {
	lp := pl.Loops[prod]
	out := lp.WBOut[t]
	for _, r := range ranges {
		peers := map[int]bool{}
		first := -1
		for k := range out {
			for _, have := range out[k].Ranges {
				if have == r {
					if first < 0 {
						first = k
					}
					if out[k].Multi {
						peers[multiPeerSentinel] = true
					} else {
						peers[out[k].Peer] = true
					}
				}
			}
		}
		switch {
		case peers[multiPeerSentinel] || peers[u]:
			// Already covered (globally, or for this consumer).
		case len(peers) >= 2:
			// Third distinct consumer: collapse to one global annotation.
			kept := out[:0]
			for _, ann := range out {
				if len(ann.Ranges) == 1 && ann.Ranges[0] == r {
					continue
				}
				kept = append(kept, ann)
			}
			out = append(kept, Annotation{Ranges: []mem.Range{r}, Multi: true})
		default:
			out = append(out, Annotation{Ranges: []mem.Range{r}, Peer: u})
		}
	}
	lp.WBOut[t] = out
	sortAnnotations(lp.WBOut)
}

// multiPeerSentinel marks a collapsed multi-consumer annotation in peer
// sets (never a valid thread ID).
const multiPeerSentinel = -1

// addProducerGlobalWB records a whole-footprint global writeback for
// producer threads feeding an irregular consumer.
func (pl *Plan) addProducerGlobalWB(prod *Loop, array string, foot map[int]int) {
	perThread := make(map[int]map[int]bool)
	for e, t := range foot {
		m, ok := perThread[t]
		if !ok {
			m = make(map[int]bool)
			perThread[t] = m
		}
		m[e] = true
	}
	lp := pl.Loops[prod]
	arr := pl.Prog.Arrays[array]
	for t, elems := range perThread {
		ann := Annotation{Ranges: elemsToRanges(arr, elems), Multi: true}
		// Avoid duplicating an identical fallback annotation.
		dup := false
		for _, have := range lp.WBOut[t] {
			if have.Multi && rangesEqual(have.Ranges, ann.Ranges) {
				dup = true
				break
			}
		}
		if !dup {
			lp.WBOut[t] = append(lp.WBOut[t], ann)
		}
	}
	sortAnnotations(lp.WBOut)
}

func rangesEqual(a, b []mem.Range) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// elemsToRanges coalesces an element set into maximal consecutive byte
// ranges of the array.
func elemsToRanges(arr workload.Array, elems map[int]bool) []mem.Range {
	if len(elems) == 0 {
		return nil
	}
	idx := make([]int, 0, len(elems))
	for e := range elems {
		idx = append(idx, e)
	}
	sort.Ints(idx)
	var out []mem.Range
	start, prev := idx[0], idx[0]
	for _, e := range idx[1:] {
		if e == prev+1 {
			prev = e
			continue
		}
		out = append(out, arr.Slice(start, prev-start+1))
		start, prev = e, e
	}
	out = append(out, arr.Slice(start, prev-start+1))
	return out
}

// sortAnnotations keeps annotation lists in a deterministic order.
func sortAnnotations(per [][]Annotation) {
	for _, anns := range per {
		sort.Slice(anns, func(a, b int) bool {
			ra, rb := anns[a].Ranges[0], anns[b].Ranges[0]
			if ra.Base != rb.Base {
				return ra.Base < rb.Base
			}
			return anns[a].Peer < anns[b].Peer
		})
	}
}
