package compiler

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/oracle"
)

// Reference executes prog sequentially over host arrays and returns the
// final contents of every array. It defines the correct result that every
// mode's parallel execution must reproduce (all reductions in this IR are
// commutative uint32 sums, so parallel merge order cannot change the
// outcome).
func Reference(prog *Program) map[string][]mem.Word {
	arrays := make(map[string][]mem.Word, len(prog.Arrays))
	for name, a := range prog.Arrays {
		arrays[name] = make([]mem.Word, a.Len)
	}
	var run func(stmts []Stmt)
	run = func(stmts []Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *Loop:
				for i := s.Lo; i < s.Hi; i++ {
					read := func(r int) mem.Word {
						rd := &s.Reads[r]
						elem := rd.At(i)
						if rd.Indirect {
							elem = int(arrays[rd.IndexArray][rd.IndexAt(i)])
						}
						return arrays[rd.Array][elem]
					}
					vals := s.Body(i, read)
					if s.Reduction != nil {
						arrays[s.Reduction.Array][s.Reduction.At(i)] += vals[0]
					} else {
						for w, v := range vals {
							arrays[s.Writes[w].Array][s.Writes[w].At(i)] = v
						}
					}
				}
			case *TimeLoop:
				for it := 0; it < s.Iters; it++ {
					run(s.Body)
				}
			default:
				panic(fmt.Sprintf("compiler: unknown statement %T", s))
			}
		}
	}
	run(prog.Stmts)
	return arrays
}

// IRWorkload is a Model 2 benchmark: an IR program plus its verification.
type IRWorkload struct {
	Name    string
	Prog    *Program
	Threads int
	// SkipVerify lists arrays whose final contents are schedule-dependent
	// and should not be compared (none of the shipped programs need it;
	// it exists for experiments).
	SkipVerify map[string]bool
}

// Run lowers the workload under mode, executes it on h, drains, and
// verifies every array against the sequential reference.
func (w *IRWorkload) Run(h engine.Hierarchy, mode Mode) (*engine.Result, error) {
	return w.RunChecked(context.Background(), h, mode, nil)
}

// RunChecked is Run with cooperative cancellation and an optional
// coherence oracle observing the event stream; an oracle violation
// becomes the run's primary error.
func (w *IRWorkload) RunChecked(ctx context.Context, h engine.Hierarchy, mode Mode, orc *oracle.Oracle) (*engine.Result, error) {
	return w.RunObserved(ctx, h, mode, orc, nil)
}

// RunObserved is RunChecked with an optional observability recorder fed
// by the engine (per-core stall spans); attach the recorder to the
// hierarchy separately (obs.Attach) for component metrics.
func (w *IRWorkload) RunObserved(ctx context.Context, h engine.Hierarchy, mode Mode, orc *oracle.Oracle, rec *obs.Recorder) (*engine.Result, error) {
	e := engine.New(h, Lower(w.Prog, w.Threads, mode))
	if orc != nil {
		e.SetObserver(orc)
	}
	if rec != nil {
		e.SetRecorder(rec)
	}
	res, err := e.RunCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", w.Name, mode, err)
	}
	h.Drain()
	var errs []error
	if orc != nil {
		orc.CheckFinal(h.Memory())
		if cerr := orc.Err(); cerr != nil {
			errs = append(errs, fmt.Errorf("%s/%s: %w", w.Name, mode, cerr))
		}
	}
	if verr := w.VerifyMemory(h.Memory()); verr != nil {
		errs = append(errs, fmt.Errorf("%s/%s: verification: %w", w.Name, mode, verr))
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return res, nil
}

// VerifyMemory checks the drained memory against the sequential reference.
func (w *IRWorkload) VerifyMemory(m *mem.Memory) error {
	ref := Reference(w.Prog)
	for name, want := range ref {
		if w.SkipVerify[name] {
			continue
		}
		arr := w.Prog.Arrays[name]
		for i, v := range want {
			if got := m.ReadWord(arr.At(i)); got != v {
				return fmt.Errorf("array %q element %d = %d, want %d", name, i, got, v)
			}
		}
	}
	return nil
}

// Plan exposes the analysis result (used by tests and diagnostics).
func (w *IRWorkload) Plan() *Plan { return Analyze(w.Prog, w.Threads) }
