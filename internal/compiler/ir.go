// Package compiler implements Programming Model 2 (Section V): an
// OpenMP-like parallel intermediate representation, the interprocedural
// control-flow and DEF-USE dataflow analysis that extracts producer-
// consumer epoch pairs under static chunk scheduling, the inspector-
// executor transformation for irregular (indirectly indexed) accesses, and
// the lowering that instruments the program with WB_CONS/INV_PROD (or the
// simpler Base/Addr instruction choices of Table II's inter-block
// configurations).
//
// The analysis evaluates access footprints numerically — the exact
// information a polyhedral/ROSE-style pass derives symbolically — and has
// the same capability boundaries the paper reports: affine accesses are
// fully analyzed, indirect accesses require a runtime inspector, and
// reductions admit no producer-consumer pairing at all, so they fall back
// to global writebacks and invalidations.
package compiler

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/workload"
)

// Program is one parallel program: named arrays plus a statement list.
// Statements execute in order; a TimeLoop repeats its body, creating the
// cross-iteration dependences typical of iterative solvers.
type Program struct {
	Name   string
	arena  *mem.Arena
	Arrays map[string]workload.Array
	Stmts  []Stmt
}

// NewProgram returns an empty program with its own address arena.
func NewProgram(name string) *Program {
	return &Program{
		Name:   name,
		arena:  mem.NewArena(4096),
		Arrays: make(map[string]workload.Array),
	}
}

// Array declares (or returns) a named array of n words.
func (p *Program) Array(name string, n int) workload.Array {
	if a, ok := p.Arrays[name]; ok {
		if a.Len != n {
			panic(fmt.Sprintf("compiler: array %q redeclared with length %d != %d", name, n, a.Len))
		}
		return a
	}
	a := workload.NewArray(p.arena, n)
	p.Arrays[name] = a
	return a
}

// Add appends statements.
func (p *Program) Add(ss ...Stmt) { p.Stmts = append(p.Stmts, ss...) }

// Stmt is a program statement.
type Stmt interface{ isStmt() }

// Read is one read access of a loop iteration.
type Read struct {
	Array string
	// At gives the element read at iteration i. For direct (affine)
	// accesses the compiler evaluates it to build footprints.
	At func(i int) int
	// Indirect marks a data-dependent subscript (e.g. p[colidx[k]]): the
	// compiler cannot evaluate the footprint and generates an inspector.
	// At still defines the runtime semantics (the lowered code reads the
	// index array through the cache hierarchy separately).
	Indirect bool
	// IndexArray and IndexAt describe the subscript source for indirect
	// reads: element = value of IndexArray[IndexAt(i)].
	IndexArray string
	IndexAt    func(i int) int
}

// Write is one write access of a loop iteration.
type Write struct {
	Array string
	At    func(i int) int
}

// Loop is a (possibly parallel) counted loop over [Lo, Hi). Parallel loops
// use OpenMP static chunk scheduling: iterations are split into
// NumThreads consecutive chunks and chunk t runs on thread t (Section
// V-A.1's assumed distribution). Serial loops run entirely on thread 0.
// Every loop ends with an implicit barrier.
type Loop struct {
	Name     string
	Parallel bool
	Lo, Hi   int
	Reads    []Read
	Writes   []Write
	// Body computes the written values for iteration i. read(r) returns
	// the current value of Reads[r]'s element.
	Body func(i int, read func(r int) mem.Word) []mem.Word
	// WorkCycles models the iteration's non-memory computation.
	WorkCycles int64
	// Reduction, when set, makes the loop a reduction: Body's single
	// result is accumulated into Reduction.Array[Reduction.At(i)] with a
	// commutative add. Reductions have no ordering, so no producer-
	// consumer pairs exist (Section VII-C's EP/IS discussion).
	Reduction *Reduction
}

// Reduction describes a reduction target.
type Reduction struct {
	Array string
	At    func(i int) int
	// BlockLocal marks a hierarchical-reduction rewrite (the paper's
	// Section VII-C suggestion for EP/IS): the programmer guarantees that
	// each target element is touched only by threads of one block, so the
	// merge critical section can use block-local WB/INV and a per-block
	// lock. BlockOf must then map a thread ID to its block.
	BlockLocal bool
	BlockOf    func(thread int) int
}

func (*Loop) isStmt() {}

// TimeLoop repeats Body statements Iters times (an outer sequential
// iteration, as in Jacobi or CG).
type TimeLoop struct {
	Iters int
	Body  []Stmt
}

func (*TimeLoop) isStmt() {}

// Mode selects a Table II inter-block configuration.
type Mode int

const (
	// ModeHCC inserts nothing (hardware coherence).
	ModeHCC Mode = iota
	// ModeBase surrounds every epoch with WB ALL to L3 and INV ALL from
	// L2.
	ModeBase
	// ModeAddr writes back and invalidates the analyzed address ranges,
	// always globally (to L3 / from L2).
	ModeAddr
	// ModeAddrL uses the level-adaptive WB_CONS and INV_PROD
	// instructions.
	ModeAddrL
)

var modeNames = [...]string{"HCC", "Base", "Addr", "Addr+L"}

func (m Mode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return fmt.Sprintf("Mode(%d)", int(m))
	}
	return modeNames[m]
}

// Modes lists the inter-block configurations in Figure 12's bar order.
var Modes = []Mode{ModeHCC, ModeBase, ModeAddr, ModeAddrL}
