package compiler

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/mem"
)

// reductionLock is the synchronization-table lock serializing reduction
// merges (one lock per reduction array would also work; contention is the
// point of the pattern).
const reductionLock = 31

// Lower compiles prog for the given thread count and instruments it per
// mode, returning one engine guest per thread. All modes execute the same
// computation; they differ only in the coherence-management instructions
// inserted (Section VI's Base / Addr / Addr+L, or nothing for HCC).
func Lower(prog *Program, threads int, mode Mode) []engine.Guest {
	plan := Analyze(prog, threads)
	guests := make([]engine.Guest, threads)
	for t := 0; t < threads; t++ {
		t := t
		guests[t] = func(p engine.Proc) {
			ex := &executor{prog: prog, plan: plan, mode: mode, p: p, me: t, threads: threads}
			ex.runStmts(prog.Stmts)
		}
	}
	return guests
}

// executor runs the IR for one thread.
type executor struct {
	prog    *Program
	plan    *Plan
	mode    Mode
	p       engine.Proc
	me      int
	threads int
	// conflicts caches inspector results per (loop, read): iteration ->
	// producing thread (-1 for own or unwritten elements). The inspector
	// loop that fills it runs once, through the cache hierarchy.
	conflicts map[*Loop]map[int][]int
	// invDone tracks (line, writer) pairs already self-invalidated in the
	// current epoch by inspector-guided INVs: hardware INV works at line
	// granularity, so one INV per line and producer per epoch suffices,
	// and the inspector knows the whole access pattern ahead of time
	// (Figure 8's conflict array lets the generated code coalesce). The
	// writer is part of the key because two INV_PROD of one line naming
	// producers in different blocks resolve to different invalidation
	// depths.
	invDone map[invKey]bool
}

// invKey identifies one already-performed inspector INV.
type invKey struct {
	line   mem.Addr
	writer int
}

func (ex *executor) runStmts(stmts []Stmt) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *Loop:
			ex.runLoop(s)
		case *TimeLoop:
			for it := 0; it < s.Iters; it++ {
				ex.runStmts(s.Body)
			}
		default:
			panic(fmt.Sprintf("compiler: unknown statement %T", s))
		}
	}
}

// runLoop executes one epoch: INV side, inspector, body, reduction merge,
// WB side, implicit barrier.
func (ex *executor) runLoop(l *Loop) {
	lp := ex.plan.Loops[l]
	lo, hi := iterRange(l, ex.me, ex.threads)
	ex.invDone = nil // fresh epoch: no lines invalidated yet

	// Epoch start: self-invalidate what this epoch may consume.
	switch ex.mode {
	case ModeBase:
		ex.p.INVAllGlobal()
	case ModeAddr:
		for _, ann := range lp.INVIn[ex.me] {
			for _, r := range ann.Ranges {
				ex.p.INVGlobal(r)
			}
		}
	case ModeAddrL:
		for _, ann := range lp.INVIn[ex.me] {
			for _, r := range ann.Ranges {
				if ann.Multi {
					ex.p.INVGlobal(r)
				} else {
					ex.p.InvProd(r, ann.Peer)
				}
			}
		}
	}

	// Run the inspector once per irregular read (the access pattern is
	// static across time-loop iterations, so the cost amortizes).
	if ex.mode == ModeAddr || ex.mode == ModeAddrL {
		ex.ensureInspected(l, lo, hi)
	}

	// Body.
	var redLocal map[int]mem.Word
	if l.Reduction != nil {
		redLocal = make(map[int]mem.Word)
	}
	for i := lo; i < hi; i++ {
		read := func(r int) mem.Word {
			rd := &l.Reads[r]
			elem := rd.At(i)
			if rd.Indirect {
				// The subscript itself is loaded through the hierarchy.
				idxArr := ex.prog.Arrays[rd.IndexArray]
				elem = int(ex.p.Load(idxArr.At(rd.IndexAt(i))))
				// Conditional inspector-guided INV before the read.
				if ex.mode == ModeAddr || ex.mode == ModeAddrL {
					ex.irregularINV(l, r, i, elem, rd)
				}
			}
			return ex.p.Load(ex.prog.Arrays[rd.Array].At(elem))
		}
		vals := l.Body(i, read)
		if l.WorkCycles > 0 {
			ex.p.Compute(l.WorkCycles)
		}
		if l.Reduction != nil {
			if len(vals) != 1 {
				panic("compiler: reduction body must produce one value")
			}
			redLocal[l.Reduction.At(i)] += vals[0]
		} else {
			if len(vals) != len(l.Writes) {
				panic(fmt.Sprintf("compiler: loop %q body produced %d values for %d writes", l.Name, len(vals), len(l.Writes)))
			}
			for w, v := range vals {
				ex.p.Store(ex.prog.Arrays[l.Writes[w].Array].At(l.Writes[w].At(i)), v)
			}
		}
	}

	// Reduction merge under the controller lock. The compiler knows the
	// reduction semantics, so the critical section gets exact WB/INV of
	// the touched elements (globally: reductions have no identifiable
	// producer-consumer pairs).
	if l.Reduction != nil && len(redLocal) > 0 {
		arr := ex.prog.Arrays[l.Reduction.Array]
		elems := make([]int, 0, len(redLocal))
		set := make(map[int]bool, len(redLocal))
		for e := range redLocal {
			elems = append(elems, e)
			set[e] = true
		}
		sortInts(elems)
		ranges := elemsToRanges(arr, set)
		// A hierarchical-reduction rewrite confines each element to one
		// block, so the merge uses a per-block lock and block-local
		// coherence operations; a plain reduction must assume any thread
		// consumes the result and goes global. The INV/WB pair brackets
		// the whole merged range once (batched, like any competent
		// instrumentation of a critical section over a known range).
		lock := reductionLock
		local := l.Reduction.BlockLocal && l.Reduction.BlockOf != nil
		if local {
			lock = reductionLock + 1 + l.Reduction.BlockOf(ex.me)
		}
		ex.p.Acquire(lock)
		if ex.mode != ModeHCC {
			for _, r := range ranges {
				if local {
					ex.p.INV(r)
				} else {
					ex.p.INVGlobal(r)
				}
			}
		}
		for _, e := range elems {
			v := ex.p.Load(arr.At(e))
			ex.p.Store(arr.At(e), v+redLocal[e])
		}
		if ex.mode != ModeHCC {
			for _, r := range ranges {
				if local {
					ex.p.WB(r)
				} else {
					ex.p.WBGlobal(r)
				}
			}
		}
		ex.p.Release(lock)
	}

	// Epoch end: post what later epochs may consume.
	switch ex.mode {
	case ModeBase:
		ex.p.WBAllGlobal()
	case ModeAddr:
		for _, ann := range lp.WBOut[ex.me] {
			for _, r := range ann.Ranges {
				ex.p.WBGlobal(r)
			}
		}
	case ModeAddrL:
		for _, ann := range lp.WBOut[ex.me] {
			for _, r := range ann.Ranges {
				if ann.Multi {
					ex.p.WBGlobal(r)
				} else {
					ex.p.WBCons(r, ann.Peer)
				}
			}
		}
	}

	// Implicit OpenMP barrier at loop end.
	ex.p.Barrier(0)
}

// ensureInspected runs the inspector loops for l once (Figure 8's lines
// 8-12): for every irregular read of every owned iteration, record the
// producing thread of the element that will be read.
func (ex *executor) ensureInspected(l *Loop, lo, hi int) {
	lp := ex.plan.Loops[l]
	if len(lp.Inspectors) == 0 {
		return
	}
	if ex.conflicts == nil {
		ex.conflicts = make(map[*Loop]map[int][]int)
	}
	if _, done := ex.conflicts[l]; done {
		return
	}
	per := make(map[int][]int)
	for _, insp := range lp.Inspectors {
		rd := &l.Reads[insp.ReadIdx]
		idxArr := ex.prog.Arrays[rd.IndexArray]
		conf := make([]int, hi-lo)
		for i := lo; i < hi; i++ {
			elem := int(ex.p.Load(idxArr.At(rd.IndexAt(i))))
			conf[i-lo] = insp.OwnerOf(elem)
		}
		per[insp.ReadIdx] = conf
	}
	ex.conflicts[l] = per
	// The inspector is its own epoch, closed by a barrier so all threads
	// agree it ran against the pre-loop state.
	ex.p.Barrier(0)
}

// irregularINV issues the inspector-guided conditional INV before an
// irregular read (Figure 8's lines 21-22): reads produced by this thread
// need no invalidation; others are invalidated at the level the producer's
// location requires (Addr: always global; Addr+L: INV_PROD).
func (ex *executor) irregularINV(l *Loop, readIdx, i, elem int, rd *Read) {
	lo, _ := iterRange(l, ex.me, ex.threads)
	conf := ex.conflicts[l][readIdx]
	writer := conf[i-lo]
	if writer == ex.me {
		return
	}
	r := ex.prog.Arrays[rd.Array].Slice(elem, 1)
	key := invKey{line: mem.LineAddr(r.Base), writer: writer}
	if ex.mode == ModeAddr {
		key.writer = -1 // Addr INVs are all global: the line alone keys
	}
	if ex.invDone[key] {
		return
	}
	if ex.invDone == nil {
		ex.invDone = make(map[invKey]bool)
	}
	ex.invDone[key] = true
	if ex.mode == ModeAddrL {
		ex.p.InvProd(r, writer)
	} else {
		ex.p.INVGlobal(r)
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
