// Package trace records and replays guest instruction streams in a
// compact binary format. Recording wraps a guest so every operation it
// issues is appended to a writer; replaying turns such a stream back into
// a guest that re-issues the identical operations.
//
// Replay is trace-driven simulation in the classic sense: the control flow
// is the recorded execution's, so replaying under a different machine
// configuration gives that configuration's timing for the same dynamic
// instruction stream. This is how execution-driven results can be compared
// against trace-driven ones, and how a problematic run can be captured for
// regression.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
)

// magic and version identify the stream format.
var magic = [4]byte{'H', 'I', 'C', 'T'}

const version = 1

// record is the fixed-size on-disk form of one operation.
type record struct {
	Kind  uint8
	Flags uint8 // bit0 UseMEB, bit1 Lazy, bit2 LevelGlobal
	A     uint32
	B     uint32
	Peer  int32
	Val   uint32
	Cyc   int64
}

const (
	flagMEB    = 1 << 0
	flagLazy   = 1 << 1
	flagGlobal = 1 << 2
)

func toRecord(op isa.Op) record {
	r := record{
		Kind: uint8(op.Kind),
		A:    uint32(op.Range.Base),
		B:    op.Range.Bytes,
		Peer: int32(op.Peer),
		Val:  uint32(op.Value),
		Cyc:  op.Cycles,
	}
	switch op.Kind {
	case isa.OpLoad, isa.OpStore, isa.OpLoadU, isa.OpStoreU:
		r.A = uint32(op.Addr)
	case isa.OpAcquire, isa.OpRelease, isa.OpBarrier, isa.OpFlagSet, isa.OpFlagWait,
		isa.OpSigPublish, isa.OpINVSig:
		r.Peer = int32(op.ID)
	case isa.OpDMACopy:
		r.Val = uint32(op.Addr) // destination base rides the value slot
	}
	if op.UseMEB {
		r.Flags |= flagMEB
	}
	if op.Lazy {
		r.Flags |= flagLazy
	}
	if op.Level == isa.LevelGlobal {
		r.Flags |= flagGlobal
	}
	return r
}

func (r record) op() isa.Op {
	op := isa.Op{
		Kind:   isa.OpKind(r.Kind),
		Range:  mem.Range{Base: mem.Addr(r.A), Bytes: r.B},
		Peer:   int(r.Peer),
		Value:  mem.Word(r.Val),
		Cycles: r.Cyc,
		UseMEB: r.Flags&flagMEB != 0,
		Lazy:   r.Flags&flagLazy != 0,
	}
	if r.Flags&flagGlobal != 0 {
		op.Level = isa.LevelGlobal
	}
	switch op.Kind {
	case isa.OpLoad, isa.OpStore, isa.OpLoadU, isa.OpStoreU:
		op.Addr = mem.Addr(r.A)
	case isa.OpAcquire, isa.OpRelease, isa.OpBarrier, isa.OpFlagSet, isa.OpFlagWait,
		isa.OpSigPublish, isa.OpINVSig:
		op.ID = int(r.Peer)
	case isa.OpDMACopy:
		op.Addr = mem.Addr(r.Val)
		op.Value = 0
	}
	return op
}

// Writer records one thread's operation stream.
type Writer struct {
	bw  *bufio.Writer
	n   int64
	err error
}

// NewWriter starts a stream on w with the format header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Append writes one operation.
func (w *Writer) Append(op isa.Op) {
	if w.err != nil {
		return
	}
	w.err = binary.Write(w.bw, binary.LittleEndian, toRecord(op))
	w.n++
}

// Close flushes the stream and reports the first error encountered.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Len returns the number of operations appended.
func (w *Writer) Len() int64 { return w.n }

// Reader iterates a recorded stream.
type Reader struct {
	br *bufio.Reader
}

// NewReader validates the header and returns a stream reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	v, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{br: br}, nil
}

// Next returns the next operation, or io.EOF.
func (r *Reader) Next() (isa.Op, error) {
	var rec record
	if err := binary.Read(r.br, binary.LittleEndian, &rec); err != nil {
		return isa.Op{}, err
	}
	if rec.Kind >= uint8(isa.NumOpKinds) {
		return isa.Op{}, fmt.Errorf("trace: corrupt record kind %d", rec.Kind)
	}
	return rec.op(), nil
}

// Record wraps a guest so that every operation it issues is appended to w.
// The caller must Close w after the run.
func Record(g engine.Guest, w *Writer) engine.Guest {
	return func(p engine.Proc) {
		g(&recordingProc{Proc: p, w: w})
	}
}

// recordingProc forwards every operation and logs it.
type recordingProc struct {
	engine.Proc
	w *Writer
}

func (rp *recordingProc) log(op isa.Op) { rp.w.Append(op) }

func (rp *recordingProc) Load(a mem.Addr) mem.Word {
	rp.log(isa.Op{Kind: isa.OpLoad, Addr: a})
	return rp.Proc.Load(a)
}
func (rp *recordingProc) Store(a mem.Addr, v mem.Word) {
	rp.log(isa.Op{Kind: isa.OpStore, Addr: a, Value: v})
	rp.Proc.Store(a, v)
}
func (rp *recordingProc) LoadU(a mem.Addr) mem.Word {
	rp.log(isa.Op{Kind: isa.OpLoadU, Addr: a})
	return rp.Proc.LoadU(a)
}
func (rp *recordingProc) StoreU(a mem.Addr, v mem.Word) {
	rp.log(isa.Op{Kind: isa.OpStoreU, Addr: a, Value: v})
	rp.Proc.StoreU(a, v)
}
func (rp *recordingProc) Compute(c int64) {
	if c <= 0 {
		return
	}
	rp.log(isa.Op{Kind: isa.OpCompute, Cycles: c})
	rp.Proc.Compute(c)
}
func (rp *recordingProc) WB(r mem.Range) {
	rp.log(isa.Op{Kind: isa.OpWB, Range: r})
	rp.Proc.WB(r)
}
func (rp *recordingProc) INV(r mem.Range) {
	rp.log(isa.Op{Kind: isa.OpINV, Range: r})
	rp.Proc.INV(r)
}
func (rp *recordingProc) WBGlobal(r mem.Range) {
	rp.log(isa.Op{Kind: isa.OpWB, Range: r, Level: isa.LevelGlobal})
	rp.Proc.WBGlobal(r)
}
func (rp *recordingProc) INVGlobal(r mem.Range) {
	rp.log(isa.Op{Kind: isa.OpINV, Range: r, Level: isa.LevelGlobal})
	rp.Proc.INVGlobal(r)
}
func (rp *recordingProc) WBAll() {
	rp.log(isa.Op{Kind: isa.OpWBAll})
	rp.Proc.WBAll()
}
func (rp *recordingProc) WBAllMEB() {
	rp.log(isa.Op{Kind: isa.OpWBAll, UseMEB: true})
	rp.Proc.WBAllMEB()
}
func (rp *recordingProc) WBAllGlobal() {
	rp.log(isa.Op{Kind: isa.OpWBAll, Level: isa.LevelGlobal})
	rp.Proc.WBAllGlobal()
}
func (rp *recordingProc) INVAll() {
	rp.log(isa.Op{Kind: isa.OpINVAll})
	rp.Proc.INVAll()
}
func (rp *recordingProc) INVAllLazy() {
	rp.log(isa.Op{Kind: isa.OpINVAll, Lazy: true})
	rp.Proc.INVAllLazy()
}
func (rp *recordingProc) INVAllGlobal() {
	rp.log(isa.Op{Kind: isa.OpINVAll, Level: isa.LevelGlobal})
	rp.Proc.INVAllGlobal()
}
func (rp *recordingProc) WBCons(r mem.Range, cons int) {
	rp.log(isa.Op{Kind: isa.OpWBCons, Range: r, Peer: cons})
	rp.Proc.WBCons(r, cons)
}
func (rp *recordingProc) InvProd(r mem.Range, prod int) {
	rp.log(isa.Op{Kind: isa.OpInvProd, Range: r, Peer: prod})
	rp.Proc.InvProd(r, prod)
}
func (rp *recordingProc) WBConsAll(cons int) {
	rp.log(isa.Op{Kind: isa.OpWBConsAll, Peer: cons})
	rp.Proc.WBConsAll(cons)
}
func (rp *recordingProc) InvProdAll(prod int) {
	rp.log(isa.Op{Kind: isa.OpInvProdAll, Peer: prod})
	rp.Proc.InvProdAll(prod)
}
func (rp *recordingProc) DMACopy(dst mem.Addr, src mem.Range, toBlock int) {
	rp.log(isa.Op{Kind: isa.OpDMACopy, Addr: dst, Range: src, Peer: toBlock})
	rp.Proc.DMACopy(dst, src, toBlock)
}
func (rp *recordingProc) SigPublish(ch int) {
	rp.log(isa.Op{Kind: isa.OpSigPublish, ID: ch})
	rp.Proc.SigPublish(ch)
}
func (rp *recordingProc) INVSig(ch int) {
	rp.log(isa.Op{Kind: isa.OpINVSig, ID: ch})
	rp.Proc.INVSig(ch)
}
func (rp *recordingProc) Acquire(l int) {
	rp.log(isa.Op{Kind: isa.OpAcquire, ID: l})
	rp.Proc.Acquire(l)
}
func (rp *recordingProc) Release(l int) {
	rp.log(isa.Op{Kind: isa.OpRelease, ID: l})
	rp.Proc.Release(l)
}
func (rp *recordingProc) Barrier(id int) {
	rp.log(isa.Op{Kind: isa.OpBarrier, ID: id})
	rp.Proc.Barrier(id)
}
func (rp *recordingProc) FlagSet(id int, v int64) {
	rp.log(isa.Op{Kind: isa.OpFlagSet, ID: id, Value: mem.Word(v)})
	rp.Proc.FlagSet(id, v)
}
func (rp *recordingProc) FlagWait(id int, th int64) {
	rp.log(isa.Op{Kind: isa.OpFlagWait, ID: id, Value: mem.Word(th)})
	rp.Proc.FlagWait(id, th)
}

// Replay turns a recorded stream into a guest that re-issues it.
func Replay(r *Reader) engine.Guest {
	return func(p engine.Proc) {
		for {
			op, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				panic(fmt.Sprintf("trace: %v", err))
			}
			issue(p, op)
		}
	}
}

// issue replays one operation on p.
func issue(p engine.Proc, op isa.Op) {
	switch op.Kind {
	case isa.OpLoad:
		p.Load(op.Addr)
	case isa.OpStore:
		p.Store(op.Addr, op.Value)
	case isa.OpLoadU:
		p.LoadU(op.Addr)
	case isa.OpStoreU:
		p.StoreU(op.Addr, op.Value)
	case isa.OpCompute:
		p.Compute(op.Cycles)
	case isa.OpWB:
		if op.Level == isa.LevelGlobal {
			p.WBGlobal(op.Range)
		} else {
			p.WB(op.Range)
		}
	case isa.OpINV:
		if op.Level == isa.LevelGlobal {
			p.INVGlobal(op.Range)
		} else {
			p.INV(op.Range)
		}
	case isa.OpWBAll:
		switch {
		case op.UseMEB:
			p.WBAllMEB()
		case op.Level == isa.LevelGlobal:
			p.WBAllGlobal()
		default:
			p.WBAll()
		}
	case isa.OpINVAll:
		switch {
		case op.Lazy:
			p.INVAllLazy()
		case op.Level == isa.LevelGlobal:
			p.INVAllGlobal()
		default:
			p.INVAll()
		}
	case isa.OpWBCons:
		p.WBCons(op.Range, op.Peer)
	case isa.OpInvProd:
		p.InvProd(op.Range, op.Peer)
	case isa.OpWBConsAll:
		p.WBConsAll(op.Peer)
	case isa.OpInvProdAll:
		p.InvProdAll(op.Peer)
	case isa.OpDMACopy:
		p.DMACopy(op.Addr, op.Range, op.Peer)
	case isa.OpSigPublish:
		p.SigPublish(op.ID)
	case isa.OpINVSig:
		p.INVSig(op.ID)
	case isa.OpAcquire:
		p.Acquire(op.ID)
	case isa.OpRelease:
		p.Release(op.ID)
	case isa.OpBarrier:
		p.Barrier(op.ID)
	case isa.OpFlagSet:
		p.FlagSet(op.ID, int64(op.Value))
	case isa.OpFlagWait:
		p.FlagWait(op.ID, int64(op.Value))
	default:
		panic(fmt.Sprintf("trace: cannot replay op %v", op))
	}
}
