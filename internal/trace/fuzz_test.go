package trace

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// FuzzDecodeRobustness feeds arbitrary bytes to the reader: it must never
// panic, only return errors or valid ops.
func FuzzDecodeRobustness(f *testing.F) {
	var seed bytes.Buffer
	w, _ := NewWriter(&seed)
	w.Append(isa.Op{Kind: isa.OpLoad, Addr: 0x40})
	w.Append(isa.Op{Kind: isa.OpBarrier, ID: 1})
	w.Close()
	f.Add(seed.Bytes())
	f.Add([]byte("HICT\x01garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			op, err := r.Next()
			if err != nil {
				return
			}
			if op.Kind < 0 || op.Kind >= isa.NumOpKinds {
				t.Fatalf("decoded invalid op kind %d", op.Kind)
			}
		}
	})
}

// FuzzEncodeRoundTrip encodes a pseudo-op built from fuzz inputs and
// checks it decodes identically.
func FuzzEncodeRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint32(0x40), uint32(64), int32(3), uint32(9), int64(100))
	f.Fuzz(func(t *testing.T, kind uint8, a, n uint32, peer int32, val uint32, cyc int64) {
		op := isa.Op{
			Kind:   isa.OpKind(kind % uint8(isa.NumOpKinds)),
			Addr:   mem.Addr(a),
			Range:  mem.RangeOf(mem.Addr(a), n),
			Peer:   int(peer),
			ID:     int(peer),
			Value:  mem.Word(val),
			Cycles: cyc,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		w.Append(op)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		// The String form captures all kind-relevant fields.
		if got.String() != op.String() {
			t.Fatalf("round trip: got %v, want %v", got, op)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("expected EOF, got %v", err)
		}
	})
}
