package trace

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/annotate"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/topo"
)

func TestRoundTripEncoding(t *testing.T) {
	ops := []isa.Op{
		{Kind: isa.OpLoad, Addr: 0x1234},
		{Kind: isa.OpStore, Addr: 0x5678, Value: 99},
		{Kind: isa.OpCompute, Cycles: 12345},
		{Kind: isa.OpWB, Range: mem.RangeOf(0x100, 64)},
		{Kind: isa.OpINV, Range: mem.RangeOf(0x200, 128), Level: isa.LevelGlobal},
		{Kind: isa.OpWBAll, UseMEB: true},
		{Kind: isa.OpINVAll, Lazy: true},
		{Kind: isa.OpWBCons, Range: mem.RangeOf(0x300, 4), Peer: 17},
		{Kind: isa.OpInvProd, Range: mem.RangeOf(0x400, 4), Peer: 3},
		{Kind: isa.OpAcquire, ID: 7},
		{Kind: isa.OpBarrier, ID: 0},
		{Kind: isa.OpFlagSet, ID: 5, Value: 2},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		w.Append(op)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != int64(len(ops)) {
		t.Errorf("Len = %d", w.Len())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range ops {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if got.String() != want.String() {
			t.Errorf("op %d: got %v, want %v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestBadHeaderRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic should be rejected")
	}
}

func newHier() *core.Hierarchy {
	m := topo.NewIntraBlock()
	cfg := core.DefaultConfig(m)
	cfg.MEBEntries = 16
	cfg.IEBEntries = 4
	return core.New(m, cfg)
}

// Record a run, replay the traces on a fresh identical machine, and check
// that cycles and traffic match exactly (the replay is the same dynamic
// instruction stream).
func TestRecordReplayTimingIdentical(t *testing.T) {
	app := func(p *annotate.P) {
		slot := mem.Addr(0x1000 + p.ID()*4)
		p.Store(slot, mem.Word(p.ID()))
		p.BarrierSync(0)
		for k := 0; k < 3; k++ {
			p.CSEnter(1)
			v := p.Load(0x2000)
			p.Store(0x2000, v+1)
			p.CSExit(1)
		}
		p.BarrierSync(1)
	}
	const n = 16
	guests := annotate.Guests(n, annotate.BMI, annotate.Pattern{OCC: true}, app)

	bufs := make([]bytes.Buffer, n)
	writers := make([]*Writer, n)
	recorded := make([]engine.Guest, n)
	for i := range guests {
		w, err := NewWriter(&bufs[i])
		if err != nil {
			t.Fatal(err)
		}
		writers[i] = w
		recorded[i] = Record(guests[i], w)
	}
	res1, err := engine.New(newHier(), recorded).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if w.Len() == 0 {
			t.Fatal("empty trace")
		}
	}

	replayed := make([]engine.Guest, n)
	for i := range replayed {
		r, err := NewReader(bytes.NewReader(bufs[i].Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		replayed[i] = Replay(r)
	}
	res2, err := engine.New(newHier(), replayed).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cycles != res2.Cycles {
		t.Errorf("cycles: recorded %d, replayed %d", res1.Cycles, res2.Cycles)
	}
	if res1.Traffic != res2.Traffic {
		t.Errorf("traffic: recorded %v, replayed %v", res1.Traffic, res2.Traffic)
	}
	if res1.Ops != res2.Ops {
		t.Errorf("op counts differ")
	}
}

// A trace captured under one configuration can be replayed under another
// (trace-driven cross-configuration estimation).
func TestCrossConfigReplayRuns(t *testing.T) {
	app := func(p *annotate.P) {
		p.Store(mem.Addr(0x1000+p.ID()*64), 1)
		p.BarrierSync(0)
	}
	const n = 16
	guests := annotate.Guests(n, annotate.Base, annotate.Pattern{}, app)
	bufs := make([]bytes.Buffer, n)
	recorded := make([]engine.Guest, n)
	writers := make([]*Writer, n)
	for i := range guests {
		w, _ := NewWriter(&bufs[i])
		writers[i] = w
		recorded[i] = Record(guests[i], w)
	}
	if _, err := engine.New(newHier(), recorded).Run(); err != nil {
		t.Fatal(err)
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	replayed := make([]engine.Guest, n)
	for i := range replayed {
		r, err := NewReader(bytes.NewReader(bufs[i].Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		replayed[i] = Replay(r)
	}
	// Replay on a machine with different buffer configuration.
	m := topo.NewIntraBlock()
	h := core.New(m, core.DefaultConfig(m))
	if _, err := engine.New(h, replayed).Run(); err != nil {
		t.Fatal(err)
	}
}
