// Package stats holds the measurement vocabulary shared by the simulators:
// stall categories matching the paper's Figure 9 breakdown, network traffic
// classes matching Figure 10, and text renderers for normalized stacked-bar
// tables so the benchmark harness can print the same rows the paper plots.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// StallKind classifies where a thread's cycles went. The first five match
// the paper's Figure 9 categories; Flag waits are tracked separately and
// folded into Lock for rendering (the paper's applications treat flag
// spinning as lock-like synchronization stall).
type StallKind int

const (
	// Busy is computation plus pipelined memory access ("rest of the
	// execution" in Figure 9).
	Busy StallKind = iota
	// INVStall is exposed latency of self-invalidation instructions.
	INVStall
	// WBStall is exposed latency of writeback instructions.
	WBStall
	// LockStall is time spent waiting for lock acquires.
	LockStall
	// BarrierStall is time spent waiting at barriers.
	BarrierStall
	// FlagStall is time spent waiting on condition flags (reported under
	// LockStall in figure output).
	FlagStall
	// MemStall is exposed cache-miss latency (part of "rest" in the paper's
	// breakdown but kept separate internally for diagnosis).
	MemStall

	NumStallKinds
)

var stallNames = [...]string{"busy", "inv", "wb", "lock", "barrier", "flag", "mem"}

func (k StallKind) String() string {
	if k < 0 || int(k) >= len(stallNames) {
		return fmt.Sprintf("stall(%d)", int(k))
	}
	return stallNames[k]
}

// Stalls accumulates cycles per stall category.
type Stalls [NumStallKinds]int64

// Add accumulates cycles into category k.
func (s *Stalls) Add(k StallKind, cycles int64) { s[k] += cycles }

// Total returns the sum over all categories.
func (s *Stalls) Total() int64 {
	var t int64
	for _, v := range s {
		t += v
	}
	return t
}

// Merge adds o into s.
func (s *Stalls) Merge(o *Stalls) {
	for i := range s {
		s[i] += o[i]
	}
}

// Figure9 returns the five-category breakdown used by the paper's Figure 9:
// INV stall, WB stall, lock stall (including flag waits), barrier stall, and
// rest (busy plus exposed miss latency).
func (s *Stalls) Figure9() (inv, wb, lock, barrier, rest int64) {
	return s[INVStall], s[WBStall], s[LockStall] + s[FlagStall], s[BarrierStall], s[Busy] + s[MemStall]
}

// TrafficClass classifies network flits. The first four match the paper's
// Figure 10 breakdown; Sync covers uncacheable synchronization requests,
// which Figure 10 omits.
type TrafficClass int

const (
	// Linefill is data brought into a cache on a read or write miss.
	Linefill TrafficClass = iota
	// Writeback is dirty data pushed toward a shared cache (explicit WB
	// instructions, evictions, and directory-forced downgrades).
	Writeback
	// Invalidation is coherence invalidation requests and acknowledgments
	// (hardware-coherent configurations only; self-invalidation is local
	// and generates none).
	Invalidation
	// MemoryTraffic is traffic between the last-level cache and off-chip
	// memory.
	MemoryTraffic
	// SyncTraffic is uncacheable synchronization requests and grants.
	SyncTraffic

	NumTrafficClasses
)

var trafficNames = [...]string{"linefill", "writeback", "invalidation", "memory", "sync"}

func (c TrafficClass) String() string {
	if c < 0 || int(c) >= len(trafficNames) {
		return fmt.Sprintf("traffic(%d)", int(c))
	}
	return trafficNames[c]
}

// Traffic accumulates 128-bit flits per class.
type Traffic [NumTrafficClasses]int64

// Add accumulates flits into class c.
func (t *Traffic) Add(c TrafficClass, flits int64) { t[c] += flits }

// Total returns the flit count over all classes.
func (t *Traffic) Total() int64 {
	var n int64
	for _, v := range t {
		n += v
	}
	return n
}

// Figure10 returns the four-class breakdown of the paper's Figure 10
// (linefill, writeback, invalidation, memory), excluding sync traffic.
func (t *Traffic) Figure10() (linefill, writeback, invalidation, memory int64) {
	return t[Linefill], t[Writeback], t[Invalidation], t[MemoryTraffic]
}

// Counters is a named bag of monotonically increasing event counts used by
// the hierarchies for protocol-level events (hits, misses, WBs issued,
// lines invalidated, MEB overflows, ...).
type Counters struct {
	m map[string]int64
}

// NewCounters returns an empty counter bag.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Inc adds n to counter name.
func (c *Counters) Inc(name string, n int64) { c.m[name] += n }

// Get returns counter name (zero if never incremented).
func (c *Counters) Get(name string) int64 { return c.m[name] }

// Names returns all counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Merge adds all of o's counters into c.
func (c *Counters) Merge(o *Counters) {
	for k, v := range o.m {
		c.m[k] += v
	}
}

// Bar is one stacked bar of a normalized figure: a label plus segment
// values in the figure's category order.
type Bar struct {
	Label    string
	Segments []float64
}

// Height returns the bar's total height. Non-finite segments (NaN or
// ±Inf, e.g. from a normalization against a zero baseline) count as
// zero, so one bad cell cannot poison a figure's totals or scaling.
func (b Bar) Height() float64 {
	var h float64
	for _, s := range b.Segments {
		h += finite(s)
	}
	return h
}

// finite maps NaN and ±Inf to zero; every renderer and aggregate in
// this package reads segment values through it.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Figure is a printable reproduction of one of the paper's normalized
// stacked-bar figures: groups of bars (one group per application), each
// normalized to the group's reference bar.
type Figure struct {
	Title      string
	Categories []string
	Groups     []Group
}

// Group is one application's set of bars.
type Group struct {
	Name string
	Bars []Bar
}

// Render prints the figure as a fixed-width text table: one row per bar,
// with per-category segments and the total, all normalized values.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-16s %-10s", "app", "config")
	for _, c := range f.Categories {
		fmt.Fprintf(&b, " %10s", c)
	}
	fmt.Fprintf(&b, " %10s\n", "total")
	for _, g := range f.Groups {
		for _, bar := range g.Bars {
			fmt.Fprintf(&b, "%-16s %-10s", g.Name, bar.Label)
			for _, s := range bar.Segments {
				fmt.Fprintf(&b, " %10.3f", finite(s))
			}
			fmt.Fprintf(&b, " %10.3f\n", bar.Height())
		}
	}
	return b.String()
}

// GeoMeanTotals returns, for each bar label, the geometric mean across
// groups of the bar's total height. The paper's "average" bars over
// normalized execution times are means over the per-application ratios;
// the geometric mean is the standard aggregation for normalized ratios.
func (f *Figure) GeoMeanTotals() map[string]float64 {
	prod := make(map[string]float64)
	n := make(map[string]int)
	for _, g := range f.Groups {
		for _, bar := range g.Bars {
			if _, ok := prod[bar.Label]; !ok {
				prod[bar.Label] = 1
			}
			prod[bar.Label] *= bar.Height()
			n[bar.Label]++
		}
	}
	out := make(map[string]float64, len(prod))
	for label, p := range prod {
		out[label] = pow(p, 1/float64(n[label]))
	}
	return out
}

// MeanTotals returns the arithmetic mean of bar totals per label, matching
// how the paper's "Average" group is computed in Figures 9-12.
func (f *Figure) MeanTotals() map[string]float64 {
	sum := make(map[string]float64)
	n := make(map[string]int)
	for _, g := range f.Groups {
		for _, bar := range g.Bars {
			sum[bar.Label] += bar.Height()
			n[bar.Label]++
		}
	}
	out := make(map[string]float64, len(sum))
	for label, s := range sum {
		out[label] = s / float64(n[label])
	}
	return out
}

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}

// RenderBars prints the figure as horizontal ASCII bars (one per config
// bar, segments marked by category initials), scaled so the largest bar
// spans width characters. It complements Render for quick visual reading
// in terminals.
func (f *Figure) RenderBars(width int) string {
	if width < 10 {
		width = 10
	}
	var maxH float64
	for _, g := range f.Groups {
		for _, bar := range g.Bars {
			if h := bar.Height(); h > maxH {
				maxH = h
			}
		}
	}
	if maxH == 0 {
		maxH = 1
	}
	marks := make([]byte, len(f.Categories))
	for i, c := range f.Categories {
		if len(c) > 0 {
			marks[i] = c[0]
		} else {
			marks[i] = '#'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	for _, g := range f.Groups {
		fmt.Fprintf(&b, "%s\n", g.Name)
		for _, bar := range g.Bars {
			fmt.Fprintf(&b, "  %-8s ", bar.Label)
			for i, s := range bar.Segments {
				n := int(finite(s) / maxH * float64(width))
				mark := byte('#')
				if i < len(marks) {
					mark = marks[i]
				}
				for k := 0; k < n; k++ {
					b.WriteByte(mark)
				}
			}
			fmt.Fprintf(&b, " %.3f\n", bar.Height())
		}
	}
	if len(f.Categories) > 0 {
		b.WriteString("legend:")
		for i, c := range f.Categories {
			fmt.Fprintf(&b, " %c=%s", marks[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
