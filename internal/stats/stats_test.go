package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStallsAddTotal(t *testing.T) {
	var s Stalls
	s.Add(Busy, 100)
	s.Add(WBStall, 30)
	s.Add(LockStall, 20)
	if got := s.Total(); got != 150 {
		t.Errorf("Total = %d, want 150", got)
	}
}

func TestStallsFigure9FoldsFlagIntoLock(t *testing.T) {
	var s Stalls
	s.Add(LockStall, 10)
	s.Add(FlagStall, 5)
	s.Add(Busy, 1)
	s.Add(MemStall, 2)
	inv, wb, lock, barrier, rest := s.Figure9()
	if inv != 0 || wb != 0 || barrier != 0 {
		t.Errorf("unexpected nonzero categories: %d %d %d", inv, wb, barrier)
	}
	if lock != 15 {
		t.Errorf("lock = %d, want 15 (lock+flag)", lock)
	}
	if rest != 3 {
		t.Errorf("rest = %d, want 3 (busy+mem)", rest)
	}
}

func TestStallsFigure9Conservation(t *testing.T) {
	f := func(vals [NumStallKinds]uint16) bool {
		var s Stalls
		for i, v := range vals {
			s.Add(StallKind(i), int64(v))
		}
		inv, wb, lock, barrier, rest := s.Figure9()
		return inv+wb+lock+barrier+rest == s.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStallsMerge(t *testing.T) {
	var a, b Stalls
	a.Add(Busy, 1)
	b.Add(Busy, 2)
	b.Add(INVStall, 3)
	a.Merge(&b)
	if a[Busy] != 3 || a[INVStall] != 3 {
		t.Errorf("merge result = %v", a)
	}
}

func TestTrafficFigure10ExcludesSync(t *testing.T) {
	var tr Traffic
	tr.Add(Linefill, 10)
	tr.Add(SyncTraffic, 99)
	lf, wb, inv, memf := tr.Figure10()
	if lf != 10 || wb != 0 || inv != 0 || memf != 0 {
		t.Errorf("Figure10 = %d %d %d %d", lf, wb, inv, memf)
	}
	if tr.Total() != 109 {
		t.Errorf("Total = %d", tr.Total())
	}
}

func TestStallKindStrings(t *testing.T) {
	if Busy.String() != "busy" || BarrierStall.String() != "barrier" {
		t.Error("bad stall names")
	}
	if Linefill.String() != "linefill" || MemoryTraffic.String() != "memory" {
		t.Error("bad traffic names")
	}
	if StallKind(99).String() == "" || TrafficClass(99).String() == "" {
		t.Error("out-of-range names should not be empty")
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("b", 2)
	c.Inc("a", 1)
	c.Inc("b", 3)
	if c.Get("b") != 5 || c.Get("a") != 1 || c.Get("missing") != 0 {
		t.Error("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	o := NewCounters()
	o.Inc("a", 10)
	c.Merge(o)
	if c.Get("a") != 11 {
		t.Errorf("merged a = %d", c.Get("a"))
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		Title:      "Figure 9: test",
		Categories: []string{"inv", "wb"},
		Groups: []Group{
			{Name: "fft", Bars: []Bar{
				{Label: "HCC", Segments: []float64{0, 1}},
				{Label: "Base", Segments: []float64{0.1, 1.1}},
			}},
		},
	}
	out := f.Render()
	for _, want := range []string{"Figure 9", "fft", "HCC", "Base", "1.200"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigureMeans(t *testing.T) {
	f := &Figure{
		Groups: []Group{
			{Name: "a", Bars: []Bar{{Label: "x", Segments: []float64{1}}}},
			{Name: "b", Bars: []Bar{{Label: "x", Segments: []float64{4}}}},
		},
	}
	if got := f.MeanTotals()["x"]; got != 2.5 {
		t.Errorf("arithmetic mean = %v", got)
	}
	if got := f.GeoMeanTotals()["x"]; math.Abs(got-2) > 1e-12 {
		t.Errorf("geometric mean = %v", got)
	}
}

func TestGeoMeanZeroBar(t *testing.T) {
	f := &Figure{Groups: []Group{{Name: "a", Bars: []Bar{{Label: "x", Segments: []float64{0}}}}}}
	if got := f.GeoMeanTotals()["x"]; got != 0 {
		t.Errorf("geomean with zero bar = %v", got)
	}
}

func TestRenderBars(t *testing.T) {
	f := &Figure{
		Title:      "Figure X",
		Categories: []string{"inv", "wb", "rest"},
		Groups: []Group{{Name: "app", Bars: []Bar{
			{Label: "HCC", Segments: []float64{0, 0, 1}},
			{Label: "Base", Segments: []float64{0.2, 0.3, 1}},
		}}},
	}
	out := f.RenderBars(40)
	for _, want := range []string{"Figure X", "app", "HCC", "Base", "legend:", "i=inv"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderBars missing %q:\n%s", want, out)
		}
	}
	// The Base bar (height 1.5) is the longest; its segment characters
	// must outnumber HCC's.
	lines := strings.Split(out, "\n")
	var hccLen, baseLen int
	for _, l := range lines {
		if strings.Contains(l, "HCC") {
			hccLen = strings.Count(l, "r")
		}
		if strings.Contains(l, "Base") {
			baseLen = strings.Count(l, "r") + strings.Count(l, "i") + strings.Count(l, "w")
		}
	}
	if baseLen <= hccLen {
		t.Errorf("Base bar (%d marks) should be longer than HCC (%d)", baseLen, hccLen)
	}
}

func TestRenderBarsEmptyFigure(t *testing.T) {
	f := &Figure{Title: "empty"}
	if out := f.RenderBars(5); !strings.Contains(out, "empty") {
		t.Error("empty figure should still render its title")
	}
}
