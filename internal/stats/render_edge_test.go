package stats

// Table-driven edge cases for the figure renderers: zero-total rows,
// single-category bars, and the NaN/Inf values a normalization against
// a zero baseline can produce. The renderers' contract is that no input
// panics, no output contains NaN or Inf text, and non-finite segments
// count as zero everywhere.

import (
	"math"
	"strings"
	"testing"
)

func edgeFigures() map[string]*Figure {
	nan := math.NaN()
	inf := math.Inf(1)
	return map[string]*Figure{
		"zero-total-row": {
			Title:      "zeros",
			Categories: []string{"a", "b"},
			Groups: []Group{{Name: "app", Bars: []Bar{
				{Label: "Base", Segments: []float64{0, 0}},
				{Label: "BMI", Segments: []float64{0.5, 0.25}},
			}}},
		},
		"all-zero-figure": {
			Title:      "flat",
			Categories: []string{"a"},
			Groups: []Group{{Name: "app", Bars: []Bar{
				{Label: "Base", Segments: []float64{0}},
			}}},
		},
		"single-category": {
			Title:      "cycles-only",
			Categories: []string{"cycles"},
			Groups: []Group{{Name: "app", Bars: []Bar{
				{Label: "Base", Segments: []float64{1.0}},
				{Label: "Addr+L", Segments: []float64{0.69}},
			}}},
		},
		"nan-segment": {
			Title:      "nan",
			Categories: []string{"a", "b"},
			Groups: []Group{{Name: "app", Bars: []Bar{
				{Label: "Base", Segments: []float64{nan, 0.5}},
			}}},
		},
		"inf-segments": {
			Title:      "inf",
			Categories: []string{"a", "b"},
			Groups: []Group{{Name: "app", Bars: []Bar{
				{Label: "Base", Segments: []float64{inf, math.Inf(-1)}},
				{Label: "BMI", Segments: []float64{0.75, 0.25}},
			}}},
		},
		"empty-category-name": {
			Title:      "anon",
			Categories: []string{""},
			Groups: []Group{{Name: "app", Bars: []Bar{
				{Label: "Base", Segments: []float64{1}},
			}}},
		},
		"more-segments-than-categories": {
			Title:      "ragged",
			Categories: []string{"a"},
			Groups: []Group{{Name: "app", Bars: []Bar{
				{Label: "Base", Segments: []float64{0.5, 0.5, 0.5}},
			}}},
		},
	}
}

func TestRenderersSurviveEdgeCases(t *testing.T) {
	for name, f := range edgeFigures() {
		f := f
		t.Run(name, func(t *testing.T) {
			for render, out := range map[string]string{
				"Render":     f.Render(),
				"RenderBars": f.RenderBars(40),
			} {
				for _, bad := range []string{"NaN", "Inf"} {
					if strings.Contains(out, bad) {
						t.Errorf("%s leaks %s:\n%s", render, bad, out)
					}
				}
				if !strings.Contains(out, f.Title) {
					t.Errorf("%s drops the title:\n%s", render, out)
				}
			}
			for agg, m := range map[string]map[string]float64{
				"MeanTotals":    f.MeanTotals(),
				"GeoMeanTotals": f.GeoMeanTotals(),
			} {
				for label, v := range m {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Errorf("%s[%s] = %v", agg, label, v)
					}
				}
			}
		})
	}
}

func TestNonFiniteSegmentsCountAsZero(t *testing.T) {
	cases := []struct {
		name string
		bar  Bar
		want float64
	}{
		{"nan-alone", Bar{Segments: []float64{math.NaN()}}, 0},
		{"nan-plus-half", Bar{Segments: []float64{math.NaN(), 0.5}}, 0.5},
		{"pos-inf", Bar{Segments: []float64{math.Inf(1), 1}}, 1},
		{"neg-inf", Bar{Segments: []float64{math.Inf(-1), 1}}, 1},
		{"finite", Bar{Segments: []float64{0.25, 0.75}}, 1},
		{"empty", Bar{}, 0},
	}
	for _, tc := range cases {
		if got := tc.bar.Height(); got != tc.want {
			t.Errorf("%s: Height() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRenderBarsInfDoesNotDominate pins the bug the finite() guard
// fixes: an Inf segment must not swallow the figure's scale (leaving
// every other bar empty) or drive the mark loop with a garbage count.
func TestRenderBarsInfDoesNotDominate(t *testing.T) {
	f := edgeFigures()["inf-segments"]
	out := f.RenderBars(40)
	if !strings.Contains(out, "a") || !strings.Contains(out, "BMI") {
		t.Fatalf("bars missing:\n%s", out)
	}
	// The finite BMI bar (height 1.0) is the tallest; its 0.75 segment
	// spans 30 of 40 columns.
	if !strings.Contains(out, strings.Repeat("a", 30)) {
		t.Errorf("finite bar lost its scale to an Inf segment:\n%s", out)
	}
}

// TestZeroBaselineNormalizationIsFinite checks the contract the
// experiment normalization relies on: a zero-cycle or zero-traffic
// baseline produces zero-height bars, never NaN/Inf rows.
func TestZeroBaselineNormalizationIsFinite(t *testing.T) {
	f := &Figure{
		Title:      "zero baseline",
		Categories: []string{"x"},
		Groups: []Group{
			{Name: "a", Bars: []Bar{{Label: "Base", Segments: []float64{math.Inf(1)}}}},
			{Name: "b", Bars: []Bar{{Label: "Base", Segments: []float64{2}}}},
		},
	}
	means := f.MeanTotals()
	if got := means["Base"]; got != 1 {
		t.Errorf("MeanTotals treats Inf bar as %v (want it to count as a zero-height bar, mean 1)", got)
	}
	geo := f.GeoMeanTotals()
	if v := geo["Base"]; math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("GeoMeanTotals = %v", v)
	}
}
