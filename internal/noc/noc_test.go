package noc

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func grid4x4() *Mesh {
	m := New(4, 4)
	ids := make([]NodeID, 16)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	m.PlaceGrid(ids)
	return m
}

func TestHopsManhattan(t *testing.T) {
	m := grid4x4()
	cases := []struct {
		a, b NodeID
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4, 1},
		{0, 5, 2},
		{0, 15, 6},
		{3, 12, 6},
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	m := grid4x4()
	f := func(a, b uint8) bool {
		x, y := NodeID(a%16), NodeID(b%16)
		return m.Hops(x, y) == m.Hops(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	m := grid4x4()
	f := func(a, b, c uint8) bool {
		x, y, z := NodeID(a%16), NodeID(b%16), NodeID(c%16)
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatency(t *testing.T) {
	m := grid4x4()
	if got := m.Latency(0, 15); got != 6*CyclesPerHop {
		t.Errorf("Latency(0,15) = %d", got)
	}
	if got := m.RTLatency(0, 15); got != 12*CyclesPerHop {
		t.Errorf("RTLatency(0,15) = %d", got)
	}
}

func TestDataFlits(t *testing.T) {
	cases := []struct {
		bytes int
		want  int64
	}{
		{0, 1},  // header only
		{1, 2},  // one partial payload flit
		{16, 2}, // exactly one payload flit
		{17, 3}, // spills into a second
		{64, 5}, // a full cache line: 1 header + 4 payload flits
		{4, 2},  // a single dirty word
		{28, 3}, // seven dirty words
	}
	for _, c := range cases {
		if got := DataFlits(c.bytes); got != c.want {
			t.Errorf("DataFlits(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
	if CtrlFlits() != 1 {
		t.Error("control messages should be one flit")
	}
}

func TestDataFlitsMonotonic(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return DataFlits(x) <= DataFlits(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSendAccountsTraffic(t *testing.T) {
	m := grid4x4()
	lat := m.Send(0, 5, DataFlits(64), stats.Linefill)
	if lat != 2*CyclesPerHop {
		t.Errorf("latency = %d", lat)
	}
	m.Send(5, 0, CtrlFlits(), stats.Invalidation)
	tr := m.Traffic()
	if tr[stats.Linefill] != 5 || tr[stats.Invalidation] != 1 {
		t.Errorf("traffic = %v", tr)
	}
	m.ResetTraffic()
	if after := m.Traffic(); after.Total() != 0 {
		t.Error("reset did not clear traffic")
	}
}

func TestPlaceGridCoversMesh(t *testing.T) {
	m := grid4x4()
	seen := map[Coord]bool{}
	for i := 0; i < 16; i++ {
		seen[m.Coord(NodeID(i))] = true
	}
	if len(seen) != 16 {
		t.Errorf("grid placement has %d distinct coords", len(seen))
	}
}

func TestCorners(t *testing.T) {
	m := New(8, 4)
	c := m.Corners()
	want := [4]Coord{{0, 0}, {7, 0}, {0, 3}, {7, 3}}
	if c != want {
		t.Errorf("Corners = %v, want %v", c, want)
	}
}

func TestPlacePanicsOutsideMesh(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-mesh placement")
		}
	}()
	New(2, 2).Place(0, Coord{5, 0})
}

func TestCoordPanicsForUnplaced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unplaced node")
		}
	}()
	New(2, 2).Coord(7)
}
