// Package noc models the on-chip interconnect of the paper's Table III: a
// 2D mesh with 4 cycles per hop and 128-bit links. It provides Manhattan
// hop counts between nodes, a flit cost model (one header flit per message
// plus one flit per 16 payload bytes), and per-class flit accounting used to
// regenerate Figure 10.
//
// The mesh is modeled without link contention: messages pay per-hop latency
// but do not queue against each other. The paper's traffic comparison is in
// flit volume, which this model counts exactly; its latency comparison is
// dominated by cache and directory round trips, which the hierarchies model
// on top of these hop latencies.
package noc

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Table III mesh parameters.
const (
	// CyclesPerHop is the per-hop link+router latency.
	CyclesPerHop = 4
	// LinkBytes is the link width: 128-bit links move 16 bytes per flit.
	LinkBytes = 16
	// HeaderFlits is the cost of a message header (routing + address +
	// command); control-only messages are exactly one header flit.
	HeaderFlits = 1
)

// NodeID identifies a mesh node (a core tile, cache bank, or memory port).
type NodeID int

// Coord is a mesh coordinate.
type Coord struct{ X, Y int }

// Node ID segmentation: the topo package hands out core IDs from 0, L3
// bank IDs from 1<<16, and memory port IDs from 1<<17. Placements are
// stored in one dense slice per segment (structure-of-arrays) so the
// routing hot path (Coord → Hops → RTLatency, hit on every linefill and
// writeback) is two slice loads instead of two map probes.
const (
	segCoreEnd = 1 << 16
	segL3Base  = 1 << 16
	segL3End   = 1 << 17
	segMemBase = 1 << 17
)

// Mesh is a W×H 2D mesh with a node placement table.
type Mesh struct {
	w, h int
	// Per-segment placements, indexed by id minus the segment base and
	// grown on Place. An unplaced slot has X == -1.
	cores, l3s, mems []Coord
	tr               stats.Traffic
	// shardTr, when non-nil, gives block-parallel shards private traffic
	// accumulators; Traffic() folds them into tr's view.
	shardTr []stats.Traffic
	// hooks holds the observability histograms when a recorder is
	// attached (nil otherwise — the only cost then is this nil test).
	hooks *meshObs
}

// meshObs holds the pre-resolved histograms so the accounting hot path
// never does a map lookup: one latency histogram plus a per-class
// message-size histogram.
type meshObs struct {
	lat   *obs.Hist
	flits [stats.NumTrafficClasses]*obs.Hist
}

// SetObs attaches the observability recorder (nil detaches). Message
// sends then feed the "noc.latency" histogram (one-way cycles) and
// per-class "noc.flits.<class>" histograms (message sizes in flits).
func (m *Mesh) SetObs(r *obs.Recorder) {
	if r == nil {
		m.hooks = nil
		return
	}
	h := &meshObs{lat: r.Hist("noc.latency")}
	for c := stats.TrafficClass(0); c < stats.NumTrafficClasses; c++ {
		h.flits[c] = r.Hist("noc.flits." + c.String())
	}
	m.hooks = h
}

// New returns a W×H mesh with no placed nodes.
func New(w, h int) *Mesh {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("noc: invalid mesh %dx%d", w, h))
	}
	return &Mesh{w: w, h: h}
}

// seg returns the placement slice for id's segment and id's index into
// it, growing the slice (with unplaced sentinels) to cover the index.
func (m *Mesh) seg(id NodeID) (*[]Coord, int) {
	var s *[]Coord
	i := int(id)
	switch {
	case i >= 0 && i < segCoreEnd:
		s = &m.cores
	case i >= segL3Base && i < segL3End:
		s, i = &m.l3s, i-segL3Base
	case i >= segMemBase:
		s, i = &m.mems, i-segMemBase
	default:
		panic(fmt.Sprintf("noc: node id %d outside every placement segment", id))
	}
	for len(*s) <= i {
		*s = append(*s, Coord{X: -1})
	}
	return s, i
}

// Place assigns node id to coordinate c. Placing outside the mesh panics:
// machine construction is static and a bad placement is a programming
// error, not a runtime condition.
func (m *Mesh) Place(id NodeID, c Coord) {
	if c.X < 0 || c.X >= m.w || c.Y < 0 || c.Y >= m.h {
		panic(fmt.Sprintf("noc: coordinate %v outside %dx%d mesh", c, m.w, m.h))
	}
	s, i := m.seg(id)
	(*s)[i] = c
}

// Dims returns the mesh dimensions.
func (m *Mesh) Dims() (w, h int) { return m.w, m.h }

// Coord returns the placement of id; it panics if the node was never
// placed, because hierarchies only route between statically placed nodes.
func (m *Mesh) Coord(id NodeID) Coord {
	var s []Coord
	i := int(id)
	switch {
	case i >= 0 && i < segCoreEnd:
		s = m.cores
	case i >= segL3Base && i < segL3End:
		s, i = m.l3s, i-segL3Base
	case i >= segMemBase:
		s, i = m.mems, i-segMemBase
	}
	if i < 0 || i >= len(s) || s[i].X < 0 {
		panic(fmt.Sprintf("noc: node %d not placed", id))
	}
	return s[i]
}

// Hops returns the Manhattan distance between two placed nodes.
func (m *Mesh) Hops(a, b NodeID) int {
	ca, cb := m.Coord(a), m.Coord(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

// Latency returns the one-way latency in cycles between two placed nodes.
func (m *Mesh) Latency(a, b NodeID) int64 {
	return int64(m.Hops(a, b)) * CyclesPerHop
}

// RTLatency returns the round-trip network latency between two nodes.
func (m *Mesh) RTLatency(a, b NodeID) int64 { return 2 * m.Latency(a, b) }

// DataFlits returns the number of flits of a message carrying n payload
// bytes: one header flit plus ceil(n/16) payload flits.
func DataFlits(n int) int64 {
	if n < 0 {
		panic("noc: negative payload")
	}
	return HeaderFlits + int64((n+LinkBytes-1)/LinkBytes)
}

// CtrlFlits is the size of a control-only message (request, invalidation,
// acknowledgment): one header flit.
func CtrlFlits() int64 { return HeaderFlits }

// Send accounts a message of the given flit count traveling from a to b
// under traffic class c, and returns its one-way latency. Flits are counted
// once per message regardless of distance, matching the paper's "number of
// 128-bit flits" metric for Figure 10; latency still depends on hops.
func (m *Mesh) Send(a, b NodeID, flits int64, c stats.TrafficClass) int64 {
	m.tr.Add(c, flits)
	lat := m.Latency(a, b)
	if m.hooks != nil {
		m.hooks.lat.Observe(lat)
		m.hooks.flits[c].Observe(flits)
	}
	return lat
}

// Account adds flits to class c without a latency result, for messages
// whose timing is already folded into a round-trip cost.
func (m *Mesh) Account(c stats.TrafficClass, flits int64) {
	m.tr.Add(c, flits)
	if m.hooks != nil {
		m.hooks.flits[c].Observe(flits)
	}
}

// SetTrafficShards gives the mesh n private traffic accumulators for
// block-parallel execution, so shard-local accounting never contends on
// (or races over) the shared counters. n <= 0 removes them.
func (m *Mesh) SetTrafficShards(n int) {
	if n <= 0 {
		m.shardTr = nil
		return
	}
	m.shardTr = make([]stats.Traffic, n)
}

// AccountShard is Account for a message whose accounting may happen on a
// block-parallel shard. With shard accumulators installed and no
// observability hooks attached, the flits land in the shard's private
// counter; otherwise it behaves exactly like Account (the block-parallel
// executor never engages when a recorder is attached, so the fallback is
// only taken on serial runs).
func (m *Mesh) AccountShard(shard int, c stats.TrafficClass, flits int64) {
	if m.shardTr == nil || m.hooks != nil {
		m.Account(c, flits)
		return
	}
	m.shardTr[shard].Add(c, flits)
}

// Traffic returns the accumulated flit counts, folding in any per-shard
// accumulators. Callers must be quiescent with respect to shard execution
// (the hierarchies only read traffic after Drain or between epochs).
func (m *Mesh) Traffic() stats.Traffic {
	tr := m.tr
	for s := range m.shardTr {
		for c := range m.shardTr[s] {
			tr[c] += m.shardTr[s][c]
		}
	}
	return tr
}

// ResetTraffic clears the accumulated flit counts.
func (m *Mesh) ResetTraffic() {
	m.tr = stats.Traffic{}
	for s := range m.shardTr {
		m.shardTr[s] = stats.Traffic{}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// PlaceGrid places ids[0..w*h) in row-major order across the whole mesh.
// It is the standard placement for one-tile-per-node machines (16 cores on
// a 4×4 mesh, each tile holding a core, its L1, and one L2 bank).
func (m *Mesh) PlaceGrid(ids []NodeID) {
	if len(ids) != m.w*m.h {
		panic(fmt.Sprintf("noc: PlaceGrid got %d ids for %dx%d mesh", len(ids), m.w, m.h))
	}
	for i, id := range ids {
		m.Place(id, Coord{X: i % m.w, Y: i / m.w})
	}
}

// Corners returns the four corner coordinates of the mesh, where Table III
// attaches the off-chip memory ports (and where the inter-block machine
// places its four L3 banks).
func (m *Mesh) Corners() [4]Coord {
	return [4]Coord{
		{0, 0},
		{m.w - 1, 0},
		{0, m.h - 1},
		{m.w - 1, m.h - 1},
	}
}
