package core

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// This file implements the engine's ShardedHierarchy surface: the
// hierarchy's state decomposes by block (per-core L1s/MEBs/IEBs/Bloom
// accumulators, per-block L2s, per-block counter bags, per-block traffic
// accumulators), with only the L3, backing memory, Bloom channels, and
// delayed-fault state shared. The block-parallel executor may run an
// operation on its block's shard exactly when OpLocal vouches that the
// operation provably touches only that shard's slice of the state.
//
// OpLocal is a pure classifier: it peeks at caches without touching LRU
// state or counters, and errs on the side of false. Anything it cannot
// prove local — sync operations, uncached accesses, global-level WB/INV,
// L2 misses, victim writebacks that would descend past the L2, Bloom
// signature exchanges, DMA — executes at the coordinator between phases
// with every shard quiescent, exactly as in a serial run.

// SetBlockParallel opts the hierarchy in (or out) of block-parallel
// execution. Enabling it also gives the mesh per-block traffic
// accumulators so shard-local flit accounting stays race-free.
func (h *Hierarchy) SetBlockParallel(on bool) {
	h.blockPar = on
	if on {
		h.m.Mesh.SetTrafficShards(h.m.Blocks)
	} else {
		h.m.Mesh.SetTrafficShards(0)
	}
}

// ParallelShards returns the number of independent shards: one per block,
// except that fault injection and observability recording force serial
// execution (their state is deliberately not sharded — fault plans are
// global cursors and recorders sample freely across cores).
func (h *Hierarchy) ParallelShards() int {
	if !h.blockPar || h.fi != nil || h.rec != nil {
		return 1
	}
	return h.m.Blocks
}

// DegradeReason explains why a hierarchy opted into block parallelism
// will nevertheless execute serially: "fault-injection" when a fault
// plan is attached (its cursors are global state), "recorder" when an
// observability recorder is attached (it samples freely across cores).
// Empty when sharding actually engages, when block parallelism was
// never requested, or on a single-block machine — there is nothing to
// shard there, so the option is an exact no-op rather than a
// degradation.
func (h *Hierarchy) DegradeReason() string {
	if !h.blockPar || h.m.Blocks <= 1 {
		return ""
	}
	switch {
	case h.fi != nil:
		return "fault-injection"
	case h.rec != nil:
		return "recorder"
	}
	return ""
}

// ShardOf maps a core to its shard — the block it belongs to. The shard
// index deliberately equals the block index: the engine's cross-block DMA
// check relies on OpDMACopy's Peer (a block) naming the target shard.
func (h *Hierarchy) ShardOf(core int) int { return h.m.BlockOf(core) }

// OpLocal reports whether op, executed now on core, provably touches only
// core's block: its L1/MEB/IEB/signature, the block's L2, and the block's
// counter and traffic accumulators. It must not mutate anything.
func (h *Hierarchy) OpLocal(core int, op *isa.Op) bool {
	if !h.blockPar || h.fi != nil || h.rec != nil {
		return false
	}
	b := h.m.BlockOf(core)
	switch op.Kind {
	case isa.OpCompute:
		return true
	case isa.OpLoad:
		return h.loadLocal(core, b, op.Addr)
	case isa.OpStore:
		return h.storeLocal(core, b, op.Addr)
	case isa.OpWB:
		return h.effLevel(op.Level) != isa.LevelGlobal && h.rangeLocal(core, b, op.Range)
	case isa.OpINV:
		return h.effLevel(op.Level) != isa.LevelGlobal && h.rangeLocal(core, b, op.Range)
	case isa.OpINVAll:
		// The lazy form only arms the core's IEB; the eager flash form
		// may drain dirty lines below the L2, so it stays global.
		return op.Lazy && h.effLevel(op.Level) == isa.LevelAuto && h.ieb[core] != nil
	case isa.OpWBCons:
		return h.adaptiveLevel(core, op.Peer) != isa.LevelGlobal && h.rangeLocal(core, b, op.Range)
	case isa.OpInvProd:
		return h.adaptiveLevel(core, op.Peer) != isa.LevelGlobal && h.rangeLocal(core, b, op.Range)
	}
	// Sync ops, uncached accesses, whole-cache WB/INV traversals, the
	// level-adaptive ALL forms, Bloom signature exchanges, and DMA all
	// reach shared state (or other shards): coordinator-only.
	return false
}

// loadLocal mirrors Load's control flow: an L1 hit is local; a miss is
// local when the fill stays within the block (fillLocal). With an armed
// IEB, the first epoch-read of a cached line self-invalidates it (after
// draining its dirty words into the L2) and refills — local only when
// both the drain and the refill stay in the block.
func (h *Hierarchy) loadLocal(core, b int, a mem.Addr) bool {
	l1 := h.l1[core]
	line := mem.LineAddr(a)
	l := l1.Peek(a)
	if ieb := h.ieb[core]; ieb != nil && ieb.Armed() {
		if !ieb.Contains(line) && !(l != nil && l.Dirty.Has(mem.WordIndex(a))) && l != nil {
			// The load will self-invalidate and refetch this line.
			if l.IsDirty() && h.l2[b].Peek(line) == nil {
				return false // the drain would descend below the L2
			}
			l = nil // the refill takes the just-freed frame
		}
	}
	if l != nil {
		return true
	}
	return h.fillLocal(core, b, line)
}

// storeLocal mirrors Store: an L1 hit only dirties the L1 (and the MEB
// and Bloom accumulator, both per-core); a miss needs a local fill. Under
// write-through the stored word also merges into the block's L2, so the
// line must be present there.
func (h *Hierarchy) storeLocal(core, b int, a mem.Addr) bool {
	if h.cfg.WriteThrough && h.l2[b].Peek(a) == nil {
		return false
	}
	if h.l1[core].Peek(a) != nil {
		return true
	}
	return h.fillLocal(core, b, mem.LineAddr(a))
}

// fillLocal reports whether filling line into core's L1 stays inside the
// block: the line must hit the block's L2, and the victim the insertion
// would displace must not carry dirty words that would miss the L2 on
// their way down. (If the victim prediction is stale because the set has
// since gained an invalid frame, the real insertion is strictly safer: it
// uses the invalid frame and evicts nothing.)
func (h *Hierarchy) fillLocal(core, b int, line mem.Addr) bool {
	if h.l2[b].Peek(line) == nil {
		return false
	}
	l1 := h.l1[core]
	v := l1.Frame(l1.Victim(line))
	return !v.IsDirty() || h.l2[b].Peek(v.Tag) != nil
}

// rangeLocal reports whether a local-level WB or INV over r stays inside
// the block: every line of r with a dirty L1 copy must hit the block's L2
// (the drain merges there; clean lines move no data). INV additionally
// removes clean L1 lines, which is always core-local.
func (h *Hierarchy) rangeLocal(core, b int, r mem.Range) bool {
	ok := true
	r.Lines(func(line mem.Addr, _ mem.LineMask) {
		if !ok {
			return
		}
		if l := h.l1[core].Peek(line); l != nil && l.IsDirty() && h.l2[b].Peek(line) == nil {
			ok = false
		}
	})
	return ok
}
