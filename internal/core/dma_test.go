package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

func TestDMACopyCrossBlock(t *testing.T) {
	h := interHierarchy()
	src := mem.RangeOf(0x10000, 2*mem.LineBytes)
	dst := mem.Addr(0x20000)
	// Producer in block 0 writes the source and pushes it globally.
	for i := 0; i < 2*mem.WordsPerLine; i++ {
		h.Store(0, src.Base+mem.Addr(i*mem.WordBytes), mem.Word(100+i))
	}
	h.WB(0, src, isa.LevelGlobal)
	// DMA into block 1's L2.
	lat := h.DMACopy(0, dst, src, 1)
	if lat <= 0 {
		t.Error("DMA should have initiation latency")
	}
	// Consumer in block 1: lines are already in its L2, so after an
	// L1-only INV the reads are cheap and fresh.
	h.INV(8, mem.RangeOf(dst, src.Bytes), isa.LevelAuto)
	for i := 0; i < 2*mem.WordsPerLine; i++ {
		v, l := h.Load(8, dst+mem.Addr(i*mem.WordBytes))
		if v != mem.Word(100+i) {
			t.Fatalf("word %d = %d, want %d", i, v, 100+i)
		}
		if i%mem.WordsPerLine == 0 && l >= h.m.Params.MemRT {
			t.Errorf("word %d latency %d: DMA deposit should avoid deep misses", i, l)
		}
	}
	if h.Counters().Get("dma.lines") != 2 {
		t.Errorf("dma.lines = %d", h.Counters().Get("dma.lines"))
	}
}

func TestDMADoesNotInvalidateStaleCopies(t *testing.T) {
	// Incoherent hardware: a consumer that cached the destination before
	// the DMA and does not self-invalidate keeps reading its stale copy.
	h := interHierarchy()
	src := mem.RangeOf(0x30000, mem.LineBytes)
	dst := mem.Addr(0x40000)
	h.Load(9, dst) // stale copy of the destination
	h.Store(0, src.Base, 77)
	h.WB(0, src, isa.LevelGlobal)
	h.DMACopy(0, dst, src, 1)
	if v, _ := h.Load(9, dst); v == 77 {
		t.Error("DMA must not invalidate private caches on incoherent hardware")
	}
	h.INV(9, mem.RangeOf(dst, mem.LineBytes), isa.LevelAuto)
	if v, _ := h.Load(9, dst); v != 77 {
		t.Errorf("after self-invalidation read %d, want 77", v)
	}
}

func TestDMAOnSingleBlockMachine(t *testing.T) {
	h := intraHierarchy()
	src := mem.RangeOf(0x5000, mem.LineBytes)
	h.Store(0, src.Base, 5)
	h.WB(0, src, isa.LevelAuto)
	h.DMACopy(0, 0x6000, src, 0)
	h.INV(3, mem.RangeOf(0x6000, mem.LineBytes), isa.LevelAuto)
	if v, _ := h.Load(3, 0x6000); v != 5 {
		t.Errorf("single-block DMA read %d, want 5", v)
	}
}

func TestDMAValidatesAlignment(t *testing.T) {
	h := interHierarchy()
	defer func() {
		if recover() == nil {
			t.Error("unaligned DMA should panic")
		}
	}()
	h.DMACopy(0, 0x40, mem.RangeOf(0x10004, 64), 1)
}

func TestDMALatencyScalesWithLines(t *testing.T) {
	h := interHierarchy()
	small := h.DMACopy(0, 0x50000, mem.RangeOf(0x60000, mem.LineBytes), 1)
	large := h.DMACopy(0, 0x70000, mem.RangeOf(0x80000, 16*mem.LineBytes), 1)
	if large <= small {
		t.Errorf("16-line DMA (%d) should cost more than 1-line (%d)", large, small)
	}
}
