package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/topo"
)

func intraHierarchy() *Hierarchy {
	m := topo.NewIntraBlock()
	cfg := DefaultConfig(m)
	cfg.MEBEntries = 16
	cfg.IEBEntries = 4
	return New(m, cfg)
}

func interHierarchy() *Hierarchy {
	m := topo.NewInterBlock()
	return New(m, DefaultConfig(m))
}

// seed writes v to addr via core c and returns the store's latency.
func seed(h *Hierarchy, c int, a mem.Addr, v mem.Word) { h.Store(c, a, v) }

func TestProducerConsumerNeedsWBAndINV(t *testing.T) {
	a := mem.Addr(0x1000)
	// Correct protocol: store, WB, (sync), INV, load.
	h := intraHierarchy()
	// Consumer caches the stale value first.
	if v, _ := h.Load(1, a); v != 0 {
		t.Fatalf("initial value = %d", v)
	}
	seed(h, 0, a, 42)
	h.WB(0, mem.WordRange(a, 1), isa.LevelAuto)
	h.INV(1, mem.WordRange(a, 1), isa.LevelAuto)
	if v, _ := h.Load(1, a); v != 42 {
		t.Errorf("consumer read %d after WB+INV, want 42", v)
	}
}

func TestMissingWBYieldsStaleRead(t *testing.T) {
	h := intraHierarchy()
	a := mem.Addr(0x1000)
	h.Load(1, a) // consumer caches line
	seed(h, 0, a, 42)
	// No WB: even after INV the consumer refetches the stale shared copy.
	h.INV(1, mem.WordRange(a, 1), isa.LevelAuto)
	if v, _ := h.Load(1, a); v == 42 {
		t.Error("consumer saw the update without a writeback — caches are snooping?")
	}
}

func TestMissingINVYieldsStaleRead(t *testing.T) {
	h := intraHierarchy()
	a := mem.Addr(0x1000)
	h.Load(1, a)
	seed(h, 0, a, 42)
	h.WB(0, mem.WordRange(a, 1), isa.LevelAuto)
	if v, _ := h.Load(1, a); v == 42 {
		t.Error("consumer saw the update without self-invalidation")
	}
}

func TestPerWordDirtyMergePreservesBothWriters(t *testing.T) {
	h := intraHierarchy()
	line := mem.Addr(0x2000)
	w0, w3 := line, line+3*mem.WordBytes
	// Both cores cache the line, then write different words.
	h.Load(0, w0)
	h.Load(1, w3)
	h.Store(0, w0, 11)
	h.Store(1, w3, 33)
	// Each writes back its own variable; per-word dirty bits must prevent
	// them from overwriting each other (Section III-B).
	h.WB(0, mem.WordRange(w0, 1), isa.LevelAuto)
	h.WB(1, mem.WordRange(w3, 1), isa.LevelAuto)
	h.INV(2, mem.WordRange(line, mem.WordsPerLine), isa.LevelAuto)
	if v, _ := h.Load(2, w0); v != 11 {
		t.Errorf("word 0 = %d, want 11", v)
	}
	if v, _ := h.Load(2, w3); v != 33 {
		t.Errorf("word 3 = %d, want 33", v)
	}
}

func TestWBLeavesLineCleanValid(t *testing.T) {
	h := intraHierarchy()
	a := mem.Addr(0x3000)
	h.Store(0, a, 5)
	h.WB(0, mem.WordRange(a, 1), isa.LevelAuto)
	l := h.l1[0].Peek(a)
	if l == nil || !l.Valid {
		t.Fatal("line should remain valid after WB")
	}
	if l.IsDirty() {
		t.Error("line should be clean after WB")
	}
	// And the local copy still hits with the written value.
	if v, lat := h.Load(0, a); v != 5 || lat != 0 {
		t.Errorf("post-WB load = (%d, %d)", v, lat)
	}
}

func TestWBNoEffectWhenClean(t *testing.T) {
	h := intraHierarchy()
	a := mem.Addr(0x3000)
	h.Load(0, a)
	before := h.Counters().Get("wb.words")
	lat := h.WB(0, mem.WordRange(a, 1), isa.LevelAuto)
	if h.Counters().Get("wb.words") != before {
		t.Error("clean WB moved data")
	}
	if lat >= h.m.Params.L2RT {
		t.Errorf("clean WB latency %d should not include a drain round trip", lat)
	}
}

func TestINVDrainsDirtyDataFirst(t *testing.T) {
	h := intraHierarchy()
	a := mem.Addr(0x4000)
	h.Store(0, a, 77)
	// INV without prior WB: Section III-B says dirty data is written back
	// before invalidation, so no update may be lost.
	h.INV(0, mem.WordRange(a, 1), isa.LevelAuto)
	if h.l1[0].Peek(a) != nil {
		t.Fatal("line still present after INV")
	}
	if v, _ := h.Load(1, a); v != 77 {
		t.Errorf("update lost by INV: consumer read %d", v)
	}
}

func TestINVRangeExpandsToLines(t *testing.T) {
	h := intraHierarchy()
	// One range covering three lines.
	base := mem.Addr(0x5000)
	for i := 0; i < 3; i++ {
		h.Load(0, base+mem.Addr(i*mem.LineBytes))
	}
	h.INV(0, mem.RangeOf(base+4, 2*mem.LineBytes), isa.LevelAuto)
	for i := 0; i < 3; i++ {
		if h.l1[0].Peek(base+mem.Addr(i*mem.LineBytes)) != nil {
			t.Errorf("line %d not invalidated", i)
		}
	}
}

func TestWBAllFullTraversal(t *testing.T) {
	h := intraHierarchy()
	for i := 0; i < 10; i++ {
		h.Store(0, mem.Addr(0x6000+i*mem.LineBytes), mem.Word(i))
	}
	lat := h.WBAll(0, false, isa.LevelAuto)
	if lat < int64(h.l1[0].NumFrames()) {
		t.Errorf("full WB ALL latency %d below tag traversal cost", lat)
	}
	if h.l1[0].CountDirty() != 0 {
		t.Error("dirty lines remain after WB ALL")
	}
	// Values visible to others after INV.
	h.INVAll(1, false, isa.LevelAuto)
	for i := 0; i < 10; i++ {
		if v, _ := h.Load(1, mem.Addr(0x6000+i*mem.LineBytes)); v != mem.Word(i) {
			t.Errorf("line %d = %d", i, v)
		}
	}
}

func TestWBAllMEBServedAndCheaper(t *testing.T) {
	h := intraHierarchy()
	for i := 0; i < 5; i++ {
		h.Store(0, mem.Addr(0x7000+i*mem.LineBytes), mem.Word(100+i))
	}
	latMEB := h.WBAll(0, true, isa.LevelAuto)
	if h.Counters().Get("meb.served") != 1 {
		t.Fatal("MEB did not serve the WB ALL")
	}
	if h.l1[0].CountDirty() != 0 {
		t.Error("MEB WB ALL left dirty lines")
	}
	// Compare against a full traversal on a second, identical hierarchy.
	h2 := intraHierarchy()
	for i := 0; i < 5; i++ {
		h2.Store(0, mem.Addr(0x7000+i*mem.LineBytes), mem.Word(100+i))
	}
	latFull := h2.WBAll(0, false, isa.LevelAuto)
	if latMEB >= latFull {
		t.Errorf("MEB WB ALL (%d) not cheaper than full traversal (%d)", latMEB, latFull)
	}
}

func TestMEBOverflowFallsBack(t *testing.T) {
	h := intraHierarchy() // MEB capacity 16
	for i := 0; i < 40; i++ {
		h.Store(0, mem.Addr(0x8000+i*mem.LineBytes), mem.Word(i))
	}
	h.WBAll(0, true, isa.LevelAuto)
	if h.Counters().Get("meb.fallback") != 1 {
		t.Error("overflowed MEB should fall back to full traversal")
	}
	if h.l1[0].CountDirty() != 0 {
		t.Error("fallback WB ALL left dirty lines")
	}
	// The WB ALL cleared the MEB, so it is valid again.
	h.Store(0, 0x8000, 9)
	h.WBAll(0, true, isa.LevelAuto)
	if h.Counters().Get("meb.served") != 1 {
		t.Error("MEB should serve again after clear")
	}
}

// Property: whatever the store pattern, an MEB-assisted WB ALL leaves no
// dirty line behind (the soundness invariant of the clear-on-WBALL design).
func TestMEBSoundnessProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		h := intraHierarchy()
		for _, o := range ops {
			a := mem.Addr(0x10000 + int(o%997)*4)
			if o%3 == 0 {
				h.Load(0, a)
			} else {
				h.Store(0, a, mem.Word(o))
			}
			if o%31 == 0 {
				h.WBAll(0, true, isa.LevelAuto)
			}
		}
		h.WBAll(0, true, isa.LevelAuto)
		return h.l1[0].CountDirty() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIEBLazyInvalidation(t *testing.T) {
	h := intraHierarchy()
	a := mem.Addr(0x9000)
	// Consumer caches stale copy; producer updates and writes back.
	h.Load(1, a)
	h.Store(0, a, 55)
	h.WB(0, mem.WordRange(a, 1), isa.LevelAuto)
	// Lazy INV ALL: nothing invalidated yet, but the first read must
	// refresh.
	lat := h.INVAll(1, true, isa.LevelAuto)
	if lat > 2 {
		t.Errorf("lazy INV ALL latency = %d, want ~1", lat)
	}
	if v, l := h.Load(1, a); v != 55 || l == 0 {
		t.Fatalf("first armed read = (%d, lat %d), want fresh 55 with a miss", v, l)
	}
	// Second read of the same line: filtered by IEB, hits locally.
	if v, l := h.Load(1, a); v != 55 || l != 0 {
		t.Errorf("second armed read = (%d, lat %d), want hit", v, l)
	}
	if h.Counters().Get("ieb.filtered") == 0 {
		t.Error("IEB did not filter the second read")
	}
}

func TestIEBDirtyOwnWordNotInvalidated(t *testing.T) {
	h := intraHierarchy()
	a := mem.Addr(0xa000)
	h.INVAll(0, true, isa.LevelAuto)
	h.Store(0, a, 7) // own write inside the epoch
	if v, lat := h.Load(0, a); v != 7 || lat != 0 {
		t.Errorf("read of own dirty word = (%d, %d), want hit of 7", v, lat)
	}
	if h.Counters().Get("ieb.dirtyhit") == 0 {
		t.Error("dirty-word read should be recognized as not stale")
	}
}

func TestIEBEvictionCausesExtraInvalidation(t *testing.T) {
	h := intraHierarchy() // IEB capacity 4
	h.INVAll(0, true, isa.LevelAuto)
	// Touch 5 distinct lines: the first gets evicted from the IEB.
	for i := 0; i < 5; i++ {
		h.Load(0, mem.Addr(0xb000+i*mem.LineBytes))
	}
	if h.Counters().Get("ieb.evictions") == 0 {
		t.Fatal("expected an IEB eviction")
	}
	// Re-reading the first line self-invalidates again (unnecessary but
	// correct).
	before := h.Counters().Get("ieb.selfinv")
	if _, lat := h.Load(0, 0xb000); lat == 0 {
		t.Error("evicted line should re-invalidate and miss")
	}
	if h.Counters().Get("ieb.selfinv") != before+1 {
		t.Error("re-read of evicted line should self-invalidate")
	}
}

func TestIEBDisarmedAtEpochBoundary(t *testing.T) {
	h := intraHierarchy()
	h.INVAll(0, true, isa.LevelAuto)
	if !h.ieb[0].Armed() {
		t.Fatal("IEB should be armed")
	}
	h.EpochBoundary(0)
	if h.ieb[0].Armed() {
		t.Fatal("IEB should disarm at the epoch boundary")
	}
	// After disarm, loads behave normally (no self-invalidation).
	h.Load(0, 0xc000)
	before := h.Counters().Get("ieb.selfinv")
	h.Load(0, 0xc000)
	if h.Counters().Get("ieb.selfinv") != before {
		t.Error("disarmed IEB still invalidating")
	}
}

func TestIEBDrainsOwnDirtyWordsOnFirstRead(t *testing.T) {
	h := intraHierarchy()
	line := mem.Addr(0xd000)
	// Core 0 dirties word 0, then enters a lazy epoch and reads word 1
	// (clean) of the same line: the self-invalidation must not lose word 0.
	h.Store(0, line, 88)
	h.INVAll(0, true, isa.LevelAuto)
	h.Load(0, line+4)
	if v, _ := h.Load(1, line); v == 88 {
		// Not yet visible is fine (nothing synchronized), but the value
		// must exist in the shared level, which the refetch proves:
		_ = v
	}
	if v, _ := h.Load(0, line); v != 88 {
		t.Errorf("own update lost by lazy invalidation: %d", v)
	}
}

func TestLatencyOrdering(t *testing.T) {
	h := interHierarchy()
	a := mem.Addr(0xe000)
	_, missLat := h.Load(0, a) // cold: memory
	if missLat < h.m.Params.MemRT {
		t.Errorf("cold miss latency %d below memory RT", missLat)
	}
	if _, lat := h.Load(0, a); lat != 0 {
		t.Errorf("L1 hit latency = %d", lat)
	}
	// Another core in the same block: L2 hit.
	_, l2lat := h.Load(1, a)
	if l2lat <= 0 || l2lat >= missLat {
		t.Errorf("L2 hit latency %d not between hit and memory (%d)", l2lat, missLat)
	}
	// A core in another block: misses its own L2, hits L3.
	_, l3lat := h.Load(8, a)
	if l3lat <= l2lat || l3lat >= missLat {
		t.Errorf("L3 hit latency %d not between L2 (%d) and memory (%d)", l3lat, l2lat, missLat)
	}
}

func TestCrossBlockNeedsGlobalOps(t *testing.T) {
	h := interHierarchy()
	a := mem.Addr(0xf000)
	h.Load(8, a) // consumer in block 1 caches stale copy (L1+L2)
	h.Store(0, a, 123)
	// Local WB + local INV are not enough across blocks.
	h.WB(0, mem.WordRange(a, 1), isa.LevelAuto)
	h.INV(8, mem.WordRange(a, 1), isa.LevelAuto)
	if v, _ := h.Load(8, a); v == 123 {
		t.Fatal("cross-block update visible with local-only WB/INV")
	}
	// Global WB + global INV work.
	h.WB(0, mem.WordRange(a, 1), isa.LevelGlobal)
	h.INV(8, mem.WordRange(a, 1), isa.LevelGlobal)
	if v, _ := h.Load(8, a); v != 123 {
		t.Errorf("cross-block read = %d, want 123", v)
	}
}

func TestLevelAdaptiveSameBlockStaysLocal(t *testing.T) {
	h := interHierarchy()
	a := mem.Addr(0x11000)
	h.Load(1, a)
	h.Store(0, a, 9)
	h.WBCons(0, mem.WordRange(a, 1), 1) // consumer thread 1: same block
	h.InvProd(1, mem.WordRange(a, 1), 0)
	if v, _ := h.Load(1, a); v != 9 {
		t.Errorf("same-block adaptive read = %d", v)
	}
	if h.Counters().Get("wbcons.auto") != 1 || h.Counters().Get("wbcons.global") != 0 {
		t.Error("WB_CONS should have resolved to the local level")
	}
	wb, inv := h.GlobalOps()
	if wb != 0 || inv != 0 {
		t.Errorf("global ops = (%d,%d), want none", wb, inv)
	}
}

func TestLevelAdaptiveCrossBlockGoesGlobal(t *testing.T) {
	h := interHierarchy()
	a := mem.Addr(0x12000)
	h.Load(8, a)
	h.Store(0, a, 31)
	h.WBCons(0, mem.WordRange(a, 1), 8) // consumer thread 8: block 1
	h.InvProd(8, mem.WordRange(a, 1), 0)
	if v, _ := h.Load(8, a); v != 31 {
		t.Errorf("cross-block adaptive read = %d, want 31", v)
	}
	if h.Counters().Get("wbcons.global") != 1 {
		t.Error("WB_CONS should have resolved to the global level")
	}
	wb, inv := h.GlobalOps()
	if wb == 0 || inv == 0 {
		t.Errorf("global ops = (%d,%d), want both nonzero", wb, inv)
	}
}

func TestLevelAdaptiveFollowsThreadMap(t *testing.T) {
	// Same program, different mapping: thread 8 remapped into block 0
	// makes the operation local.
	h := interHierarchy()
	h.MapThread(8, 0)
	a := mem.Addr(0x13000)
	h.Store(0, a, 1)
	h.WBCons(0, mem.WordRange(a, 1), 8)
	if h.Counters().Get("wbcons.auto") != 1 {
		t.Error("remapped consumer should make WB_CONS local")
	}
}

func TestWBConsAllCrossBlockFlushesBlockL2(t *testing.T) {
	h := interHierarchy()
	a := mem.Addr(0x14000)
	// Core 1 (same block as 0) dirtied the L2 via an eviction-free WB.
	h.Store(1, a, 77)
	h.WB(1, mem.WordRange(a, 1), isa.LevelAuto) // now dirty in block 0's L2
	h.Store(0, 0x15000, 5)
	h.WBConsAll(0, 8) // cross block: must also push block L2 dirty lines to L3
	// Consumer in block 1 invalidates L2+L1, then reads both values.
	h.InvProdAll(8, 0)
	if v, _ := h.Load(8, a); v != 77 {
		t.Errorf("block-L2 dirty line not pushed to L3: read %d", v)
	}
	if v, _ := h.Load(8, 0x15000); v != 5 {
		t.Errorf("L1 dirty line not pushed to L3: read %d", v)
	}
}

func TestGlobalWBAlsoUpdatesLocalL2(t *testing.T) {
	h := interHierarchy()
	a := mem.Addr(0x16000)
	h.Load(1, a) // block sibling caches stale
	h.Store(0, a, 64)
	h.WB(0, mem.WordRange(a, 1), isa.LevelGlobal)
	// A sibling in the same block INVs locally and must see the value via
	// the block's L2 (the global WB updates both L2 and L3).
	h.INV(1, mem.WordRange(a, 1), isa.LevelAuto)
	if v, _ := h.Load(1, a); v != 64 {
		t.Errorf("sibling read %d after global WB, want 64", v)
	}
}

func TestDrainFlushesEverything(t *testing.T) {
	h := interHierarchy()
	h.Store(0, 0x17000, 1)
	h.Store(9, 0x18000, 2)
	h.WB(9, mem.WordRange(0x18000, 1), isa.LevelAuto) // dirty in block L2
	h.Drain()
	if h.Memory().ReadWord(0x17000) != 1 || h.Memory().ReadWord(0x18000) != 2 {
		t.Error("drain did not flush dirty data to memory")
	}
}

func TestUncachedAccess(t *testing.T) {
	h := interHierarchy()
	lat := h.StoreUncached(0, 0x19000, 11)
	if lat <= 0 {
		t.Error("uncached store should have latency")
	}
	v, lat2 := h.LoadUncached(8, 0x19000)
	if v != 11 {
		t.Errorf("uncached load = %d", v)
	}
	if lat2 <= 0 {
		t.Error("uncached load should have latency")
	}
	// Uncached data bypasses caches entirely: visible without WB/INV.
}

func TestEffLevelClampsOnSingleBlock(t *testing.T) {
	h := intraHierarchy()
	a := mem.Addr(0x1a000)
	h.Store(0, a, 3)
	// Global on a machine with no L3 behaves like auto and must not panic.
	h.WB(0, mem.WordRange(a, 1), isa.LevelGlobal)
	h.INV(1, mem.WordRange(a, 1), isa.LevelGlobal)
	if v, _ := h.Load(1, a); v != 3 {
		t.Errorf("read = %d", v)
	}
	wb, _ := h.GlobalOps()
	if wb != 0 {
		t.Error("single-block machine should record no global WBs")
	}
}

func TestMapThreadValidation(t *testing.T) {
	h := interHierarchy()
	defer func() {
		if recover() == nil {
			t.Error("mapping to a nonexistent block should panic")
		}
	}()
	h.MapThread(0, 99)
}

func TestL1EvictionWritesBackDirtyWords(t *testing.T) {
	m := topo.NewIntraBlock()
	cfg := DefaultConfig(m)
	cfg.L1 = cacheConfigTiny()
	h := New(m, cfg)
	// Fill one set beyond capacity with dirty lines; evicted dirty data
	// must survive in the shared level.
	setsBytes := uint32(cfg.L1.Bytes)
	h.Store(0, 0x100000, 1)
	for i := 1; i < 3; i++ {
		h.Store(0, mem.Addr(0x100000+uint32(i)*setsBytes), mem.Word(i+1))
	}
	// First line was necessarily evicted (1-way tiny cache).
	if v, _ := h.Load(1, 0x100000); v != 1 {
		t.Errorf("evicted dirty line lost: read %d", v)
	}
}

func cacheConfigTiny() cache.Config {
	return cache.Config{Bytes: 64, Ways: 1}
}
