package core

import (
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/stats"
)

// This file implements Bloom-signature selective self-invalidation in the
// style of Ashby, Díaz and Cintra (Section VIII): each core accumulates
// the line addresses it writes into a Bloom signature; the signature is
// transferred with a synchronization release (published to a per-lock
// channel in the shared-cache controller); an acquirer self-invalidates
// only the cached lines that match the channel's signature, instead of
// executing INV ALL.
//
// Signatures are unioned into the channel at every release and are never
// subtracted (Bloom filters cannot forget), so channels saturate over
// time and selectivity decays toward INV ALL — the overhead in
// lock-intensive programs that the paper's MEB/IEB design avoids. The
// implementation exists to reproduce that comparison
// (BenchmarkExtensionBloom).

// Bloom is a fixed-size Bloom filter over line addresses.
type Bloom struct {
	bits   []uint64
	nbits  uint32
	hashes int
}

// NewBloom returns an empty filter of nbits bits (rounded up to 64) with
// the given number of hash functions.
func NewBloom(nbits, hashes int) *Bloom {
	if nbits <= 0 || hashes <= 0 {
		panic("core: Bloom filter needs positive size and hash count")
	}
	words := (nbits + 63) / 64
	return &Bloom{bits: make([]uint64, words), nbits: uint32(words * 64), hashes: hashes}
}

// hash derives the i-th bit index for a line address.
func (f *Bloom) hash(line mem.Addr, i int) uint32 {
	x := uint32(line/mem.LineBytes) * 2654435761
	x ^= uint32(i) * 2246822519
	x ^= x >> 15
	x *= 2654435761
	x ^= x >> 13
	return x % f.nbits
}

// Add inserts a line address.
func (f *Bloom) Add(line mem.Addr) {
	for i := 0; i < f.hashes; i++ {
		b := f.hash(line, i)
		f.bits[b/64] |= 1 << (b % 64)
	}
}

// MayContain reports whether line might have been added (no false
// negatives; false positives possible).
func (f *Bloom) MayContain(line mem.Addr) bool {
	for i := 0; i < f.hashes; i++ {
		b := f.hash(line, i)
		if f.bits[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}

// Union ORs o into f.
func (f *Bloom) Union(o *Bloom) {
	for i := range f.bits {
		f.bits[i] |= o.bits[i]
	}
}

// Reset clears the filter.
func (f *Bloom) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
}

// PopCount returns the number of set bits (saturation diagnostic).
func (f *Bloom) PopCount() int {
	n := 0
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Bits returns the filter size in bits.
func (f *Bloom) Bits() int { return int(f.nbits) }

// SizeFlits returns the network cost of transferring the signature.
func (f *Bloom) SizeFlits() int64 { return noc.DataFlits(int(f.nbits) / 8) }

// bloomState is the per-hierarchy signature machinery.
type bloomState struct {
	write    []*Bloom       // per core: lines written since last publish
	channels map[int]*Bloom // per sync channel (lock ID): published union
	hashes   int
	nbits    int
}

func newBloomState(cores, nbits, hashes int) *bloomState {
	s := &bloomState{
		write:    make([]*Bloom, cores),
		channels: make(map[int]*Bloom),
		hashes:   hashes,
		nbits:    nbits,
	}
	for i := range s.write {
		s.write[i] = NewBloom(nbits, hashes)
	}
	return s
}

// SigPublish transfers core's accumulated write signature to channel ch
// (the release side of Ashby's scheme) and resets the accumulator. The
// published union keeps growing: Bloom filters cannot forget.
func (h *Hierarchy) SigPublish(core, ch int) int64 {
	if h.bloom == nil {
		return 0
	}
	sig, ok := h.bloom.channels[ch]
	if !ok {
		sig = NewBloom(h.bloom.nbits, h.bloom.hashes)
		h.bloom.channels[ch] = sig
	}
	w := h.bloom.write[core]
	sig.Union(w)
	w.Reset()
	h.ctr(core).Inc("bloom.publishes", 1)
	h.m.Mesh.Account(stats.SyncTraffic, w.SizeFlits())
	// The signature rides the release message to the controller.
	return h.m.SyncCost(core, ch) / 2
}

// INVSig selectively self-invalidates core's L1 using channel ch's
// signature (the acquire side): every cached line matching the signature
// is eliminated (dirty words written back first). The tag array is
// traversed in full — the signature only saves the invalidations and the
// refetch misses, not the scan.
func (h *Hierarchy) INVSig(core, ch int) int64 {
	if h.bloom == nil {
		return 0
	}
	p := h.m.Params
	sig, ok := h.bloom.channels[ch]
	if !ok {
		return p.ScanPerFrame
	}
	l1 := h.l1[core]
	lat := int64(l1.NumFrames()) * p.TraversalPerFrame
	drains := 0
	matched := 0
	var toDrop []mem.Addr
	l1.ForEachValid(func(_ cache.FrameID, l *cache.Line) {
		if !sig.MayContain(l.Tag) {
			return
		}
		matched++
		if l.IsDirty() {
			h.wbDirtyWords(core, l, isa.LevelAuto)
			drains++
		}
		toDrop = append(toDrop, l.Tag)
	})
	for _, tag := range toDrop {
		l1.Invalidate(tag)
	}
	lat += int64(drains) * p.WBOccupancy
	h.ctr(core).Inc("bloom.invsig", 1)
	h.ctr(core).Inc("bloom.matched", int64(matched))
	h.ctr(core).Inc("inv.l1lines", int64(matched))
	h.countLineOp(core, "inv", isa.LevelAuto, int64(matched))
	return lat
}

// noteBloomWrite records a written line in core's signature accumulator.
func (h *Hierarchy) noteBloomWrite(core int, line mem.Addr) {
	if h.bloom != nil {
		h.bloom.write[core].Add(line)
	}
}

// BloomChannelSaturation returns the fraction of set bits in channel ch's
// signature (1.0 = INV ALL equivalence), for diagnostics and benches.
func (h *Hierarchy) BloomChannelSaturation(ch int) float64 {
	if h.bloom == nil {
		return 0
	}
	sig, ok := h.bloom.channels[ch]
	if !ok {
		return 0
	}
	return float64(sig.PopCount()) / float64(sig.Bits())
}

// BloomMaxSaturation returns the highest saturation over all channels.
func (h *Hierarchy) BloomMaxSaturation() float64 {
	if h.bloom == nil {
		return 0
	}
	var max float64
	for _, sig := range h.bloom.channels {
		if f := float64(sig.PopCount()) / float64(sig.Bits()); f > max {
			max = f
		}
	}
	return max
}
