package core

import (
	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/mem"
)

// This file threads deterministic fault injection (internal/faultinject)
// through the hierarchy. Every WB-family instruction consults the plan's
// WB cursor exactly once (the public WB/WBAll entry points and the
// level-adaptive WBCons/WBConsAll each consult before dispatching to the
// internal implementations), so the oracle can replay the decisions from
// its own cursor over the identical instruction stream. INV-family
// instructions consult the INV cursor the same way. The meb-cap and
// ieb-lie faults hook the Store and Load paths directly (hierarchy.go).
//
// A dropped writeback is a pure no-op. A delayed writeback parks the
// affected dirty words in h.delayed and clears their dirty bits — the
// data is withheld from the shared levels for the rest of the run and
// only reaches backing memory when Drain executes, modeling a write
// buffer that drains after the synchronization it was supposed to
// precede. Parked words are applied before the cache drains, so any line
// still cached (or re-written later) wins over the delayed copy.

// parked is one delayed line's withheld dirty words.
type parked struct {
	line  mem.Addr
	words [mem.WordsPerLine]mem.Word
	mask  mem.LineMask
}

// SetFaults attaches a fault-injection state (nil detaches).
func (h *Hierarchy) SetFaults(fi *faultinject.State) { h.fi = fi }

// Faults returns the attached fault-injection state, or nil.
func (h *Hierarchy) Faults() *faultinject.State { return h.fi }

// wbFaultRange consults the WB cursor for a range writeback. When the
// instruction is sabotaged it performs the fault's effect and returns
// (latency, true); the caller must then skip the real writeback.
func (h *Hierarchy) wbFaultRange(core int, r mem.Range) (int64, bool) {
	if h.fi == nil {
		return 0, false
	}
	switch h.fi.NextWB() {
	case faultinject.WBDrop:
		h.ctr(core).Inc("fault.wb.dropped", 1)
		return 1, true
	case faultinject.WBDelay:
		h.ctr(core).Inc("fault.wb.delayed", 1)
		r.Lines(func(line mem.Addr, _ mem.LineMask) {
			if l := h.l1[core].Peek(line); l != nil && l.IsDirty() {
				h.park(l)
			}
		})
		return 1, true
	}
	return 0, false
}

// wbFaultAll consults the WB cursor for a whole-cache writeback.
func (h *Hierarchy) wbFaultAll(core int) (int64, bool) {
	if h.fi == nil {
		return 0, false
	}
	switch h.fi.NextWB() {
	case faultinject.WBDrop:
		h.ctr(core).Inc("fault.wb.dropped", 1)
		return 1, true
	case faultinject.WBDelay:
		h.ctr(core).Inc("fault.wb.delayed", 1)
		h.l1[core].ForEachValid(func(_ cache.FrameID, l *cache.Line) {
			if l.IsDirty() {
				h.park(l)
			}
		})
		return 1, true
	}
	return 0, false
}

// invFault consults the INV cursor; true means the invalidation is
// skipped entirely (for a lazy INV ALL, the IEB is not armed either).
func (h *Hierarchy) invFault(core int) bool {
	if h.fi == nil || !h.fi.NextINV() {
		return false
	}
	h.ctr(core).Inc("fault.inv.skipped", 1)
	return true
}

// park withholds a line's dirty words until Drain and cleans the line.
func (h *Hierarchy) park(l *cache.Line) {
	h.delayed = append(h.delayed, parked{line: l.Tag, words: l.Words, mask: l.Dirty})
	l.Dirty = 0
}

// applyDelayed writes every parked word to backing memory; Drain calls it
// before draining the caches.
func (h *Hierarchy) applyDelayed() {
	for i := range h.delayed {
		d := &h.delayed[i]
		h.backing.WriteLine(d.line, &d.words, d.mask)
	}
	h.delayed = h.delayed[:0]
}
