package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

func TestProbeWordTracksLineMovement(t *testing.T) {
	h := intraHierarchy()
	a := mem.Addr(0x2000)

	p := h.ProbeWord(0, a)
	if p.L1Present || p.L2Present || p.L3Present || p.MemVal != 0 {
		t.Fatalf("fresh hierarchy probe = %+v, want all-absent zero", p)
	}

	h.Store(0, a, 7)
	p = h.ProbeWord(0, a)
	if !p.L1Present || !p.L1Dirty || p.L1Val != 7 {
		t.Errorf("after store, L1 probe = %+v, want present dirty 7", p)
	}
	if p.MemVal != 0 {
		t.Errorf("store leaked to memory before WB: mem = %d", p.MemVal)
	}
	// The same word from another core's view: nothing private, same memory.
	if q := h.ProbeWord(1, a); q.L1Present {
		t.Errorf("core 1 L1 claims a line only core 0 touched: %+v", q)
	}

	h.WB(0, mem.WordRange(a, 1), isa.LevelAuto)
	p = h.ProbeWord(0, a)
	if p.L1Dirty {
		t.Errorf("after WB, L1 word still dirty: %+v", p)
	}
	if !p.L2Present || p.L2Val != 7 {
		t.Errorf("after WB, L2 probe = %+v, want present 7", p)
	}

	h.INV(0, mem.WordRange(a, 1), isa.LevelAuto)
	p = h.ProbeWord(0, a)
	if p.L1Present {
		t.Errorf("after INV, line still in L1: %+v", p)
	}
	if !p.L2Present || p.L2Val != 7 {
		t.Errorf("INV from L1 disturbed L2: %+v", p)
	}
}

func TestProbeWordHasNoSideEffects(t *testing.T) {
	h := intraHierarchy()
	a := mem.Addr(0x3000)
	h.Store(0, a, 5)
	l1 := h.l1[0]
	hits, misses := l1.Hits, l1.Misses
	for i := 0; i < 10; i++ {
		h.ProbeWord(0, a)
		h.ProbeWord(0, a+0x10000) // absent everywhere
	}
	if l1.Hits != hits || l1.Misses != misses {
		t.Errorf("probe moved hit/miss counters: %d/%d -> %d/%d", hits, misses, l1.Hits, l1.Misses)
	}
	if p := h.ProbeWord(0, a); !p.L1Present || p.L1Val != 5 {
		t.Errorf("probe after probes = %+v, want L1 present 5", p)
	}
}

func TestProbeWordSeesL3(t *testing.T) {
	h := interHierarchy()
	a := mem.Addr(0x4000)
	h.Store(0, a, 9)
	h.WB(0, mem.WordRange(a, 1), isa.LevelGlobal)
	p := h.ProbeWord(0, a)
	if !p.L3Present || p.L3Val != 9 {
		t.Errorf("after WB to global, L3 probe = %+v, want present 9", p)
	}
}
