// Package core implements the paper's primary contribution: the
// hardware-incoherent multiprocessor cache hierarchy and its management
// support. Caches never snoop and there is no directory; data moves between
// private and shared caches only under explicit writeback (WB) and
// self-invalidation (INV) instructions (Section III). The package provides:
//
//   - all WB/INV flavors: address ranges, whole-cache ALL forms, the
//     level-directed WB_L3/INV_L2 forms, and the level-adaptive
//     WB_CONS/INV_PROD forms of Section V;
//   - the Modified Entry Buffer (MEB) and Invalidated Entry Buffer (IEB)
//     of Section IV-B;
//   - the per-block ThreadMap table consulted by the level-adaptive
//     instructions (Section V-B).
//
// The hierarchy is functional: caches carry real word values, so a missing
// self-invalidation yields an observably stale read and a missing writeback
// yields an observably lost update. Timing follows the cost model described
// in DESIGN.md §3 on the shared topo.Machine.
package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Config sizes the hierarchy.
type Config struct {
	// L1 is each core's private cache; L2 is each block's shared cache
	// (one logical cache per block, physically banked across the block's
	// tiles for latency); L3 is the global shared cache, present only when
	// the machine has L3 banks.
	L1, L2, L3 cache.Config
	// MEBEntries and IEBEntries enable the entry buffers when nonzero.
	MEBEntries int
	IEBEntries int
	// BloomBits enables Ashby-style Bloom-signature selective
	// self-invalidation when nonzero (BloomHashes defaults to 2): cores
	// accumulate write signatures, publish them on release (SigPublish)
	// and acquirers invalidate selectively (INVSig). See bloom.go.
	BloomBits   int
	BloomHashes int
	// WriteThrough switches the L1s from write-back to write-through (the
	// VIPS-style self-downgrade alternative discussed in Section VIII):
	// every store immediately propagates its word to the shared L2, lines
	// never hold dirty words, and WB instructions become no-ops. Stores
	// are posted through the write buffer (no exposed latency) but each
	// pays word-granular network traffic; no coalescing is modeled.
	WriteThrough bool
}

// DefaultConfig returns the Table III cache sizes for machine m: 32 KB
// 4-way L1s, 128 KB × cores-per-block 8-way block L2s, and 4 MB × banks
// 8-way L3 when the machine is multi-block. The entry buffers are disabled;
// experiment configurations enable them explicitly (Table II's B+M, B+I,
// B+M+I).
func DefaultConfig(m *topo.Machine) Config {
	cfg := Config{
		L1: cache.Config{Bytes: 32 << 10, Ways: 4},
		L2: cache.Config{Bytes: (128 << 10) * m.CoresPerBlock, Ways: 8},
	}
	if m.L3Banks > 0 {
		cfg.L3 = cache.Config{Bytes: (4 << 20) * m.L3Banks, Ways: 8}
	}
	return cfg
}

// Hierarchy is one hardware-incoherent cache hierarchy instance.
type Hierarchy struct {
	m   *topo.Machine
	cfg Config

	backing *mem.Memory
	l1      []*cache.Cache // per core
	l2      []*cache.Cache // per block
	l3      *cache.Cache   // nil when the machine has no L3

	meb []*MEB // per core, nil entries when disabled
	ieb []*IEB // per core, nil entries when disabled

	// threadMap[t] is the block that thread t runs in — the per-L2
	// ThreadMap hardware table, filled by the runtime at spawn time.
	threadMap []int

	// bloom holds the optional Bloom-signature machinery (nil when
	// disabled).
	bloom *bloomState

	// fi is the optional fault-injection state (nil when no faults are
	// injected); delayed holds dirty words parked by delay-wb faults,
	// applied to backing memory only when Drain runs. See faults.go.
	fi      *faultinject.State
	delayed []parked

	// ctrs holds one protocol counter bag per block, so block-parallel
	// shards never contend on one map: an event raised on core c lands in
	// ctrs[BlockOf(c)] via h.ctr(c). Counters() merges the bags.
	ctrs []*stats.Counters

	// blockPar enables the ShardedHierarchy surface (parallel.go) once the
	// caller has opted in via SetBlockParallel.
	blockPar bool

	// rec plus the pre-resolved per-core occupancy tracks, set when the
	// observability recorder is attached (nil otherwise). See obs.go.
	rec      *obs.Recorder
	mebTrack []*obs.Track
	iebTrack []*obs.Track
}

// New builds a hierarchy on machine m with config cfg and a fresh backing
// memory. Threads are mapped identically to cores (thread t on core t).
func New(m *topo.Machine, cfg Config) *Hierarchy {
	h := &Hierarchy{
		m:       m,
		cfg:     cfg,
		backing: mem.NewMemory(),
		l1:      make([]*cache.Cache, m.NumCores()),
		l2:      make([]*cache.Cache, m.Blocks),
		meb:     make([]*MEB, m.NumCores()),
		ieb:     make([]*IEB, m.NumCores()),
		ctrs:    make([]*stats.Counters, m.Blocks),
	}
	for b := range h.ctrs {
		h.ctrs[b] = stats.NewCounters()
	}
	for c := range h.l1 {
		h.l1[c] = cache.New(cfg.L1)
		if cfg.MEBEntries > 0 {
			h.meb[c] = NewMEB(cfg.MEBEntries)
		}
		if cfg.IEBEntries > 0 {
			h.ieb[c] = NewIEB(cfg.IEBEntries)
		}
	}
	for b := range h.l2 {
		h.l2[b] = cache.New(cfg.L2)
	}
	if m.L3Banks > 0 {
		if cfg.L3.Bytes == 0 {
			panic("core: machine has L3 banks but config has no L3 cache")
		}
		h.l3 = cache.New(cfg.L3)
	}
	h.threadMap = make([]int, m.NumCores())
	for t := range h.threadMap {
		h.threadMap[t] = m.BlockOf(t)
	}
	if cfg.BloomBits > 0 {
		hashes := cfg.BloomHashes
		if hashes == 0 {
			hashes = 2
		}
		h.bloom = newBloomState(m.NumCores(), cfg.BloomBits, hashes)
	}
	return h
}

// Machine returns the topology the hierarchy is built on.
func (h *Hierarchy) Machine() *topo.Machine { return h.m }

// Memory returns the backing store (authoritative only after Drain).
func (h *Hierarchy) Memory() *mem.Memory { return h.backing }

// ctr returns the counter bag events raised on core must land in.
func (h *Hierarchy) ctr(core int) *stats.Counters { return h.ctrs[h.m.BlockOf(core)] }

// Counters returns the protocol event counters, merged across the
// per-block bags. Callers must be quiescent with respect to shard
// execution (counters are read after Drain or between epochs).
func (h *Hierarchy) Counters() *stats.Counters {
	if len(h.ctrs) == 1 {
		return h.ctrs[0]
	}
	merged := stats.NewCounters()
	for _, c := range h.ctrs {
		merged.Merge(c)
	}
	return merged
}

// Traffic returns accumulated network traffic.
func (h *Hierarchy) Traffic() stats.Traffic { return h.m.Mesh.Traffic() }

// SyncCost implements the synchronization cost hook for the hwsync
// controller, accounting the request/grant message pair as sync traffic.
func (h *Hierarchy) SyncCost(core, id int) int64 {
	h.m.Mesh.Account(stats.SyncTraffic, 2)
	return h.m.SyncCost(core, id)
}

// MapThread records in the ThreadMap that thread t runs in block b. The
// runtime calls this when threads are spawned; tests use it to check that
// level-adaptive programs run unmodified under different mappings.
func (h *Hierarchy) MapThread(t, b int) {
	if b < 0 || b >= h.m.Blocks {
		panic(fmt.Sprintf("core: thread %d mapped to nonexistent block %d", t, b))
	}
	h.threadMap[t] = b
}

// sameBlock reports whether core's block equals peer thread's block per the
// ThreadMap — the hardware check behind the level-adaptive instructions.
func (h *Hierarchy) sameBlock(core, peer int) bool {
	if peer < 0 || peer >= len(h.threadMap) {
		return false
	}
	return h.m.BlockOf(core) == h.threadMap[peer]
}

// ---- Loads and stores -------------------------------------------------

// Load reads one word through the hierarchy, returning the value and the
// exposed latency. L1 hits are pipelined (zero exposed cycles). When the
// core's IEB is armed, the load follows the Section IV-B.2 protocol.
func (h *Hierarchy) Load(core int, a mem.Addr) (mem.Word, int64) {
	l1 := h.l1[core]
	line := mem.LineAddr(a)

	if b := h.ieb[core]; b != nil && b.Armed() {
		switch {
		case b.Contains(line):
			// Already refreshed this epoch: no special action.
			h.ctr(core).Inc("ieb.filtered", 1)
		case func() bool { l := l1.Peek(a); return l != nil && l.Dirty.Has(mem.WordIndex(a)) }():
			// The word was written by this core in the past: not stale.
			h.ctr(core).Inc("ieb.dirtyhit", 1)
		default:
			if h.fi != nil && h.fi.NextIEBLie() {
				// Injected fault: the IEB claims the line was already
				// refreshed this epoch; the stale copy survives.
				h.ctr(core).Inc("fault.ieb.lie", 1)
				break
			}
			if b.Insert(line) {
				h.ctr(core).Inc("ieb.evictions", 1)
			}
			h.sampleIEB(core)
			h.ctr(core).Inc("ieb.insertions", 1)
			if l := l1.Peek(a); l != nil {
				// First read in the epoch: invalidate the potentially
				// stale copy (draining this core's own dirty words first,
				// so INV never loses updates) and refetch fresh below.
				if l.IsDirty() {
					h.wbDirtyWords(core, l, isa.LevelAuto)
				}
				l1.Invalidate(a)
				h.ctr(core).Inc("ieb.selfinv", 1)
			}
		}
	}

	if l := l1.Lookup(a); l != nil {
		return l.Words[mem.WordIndex(a)], 0
	}
	words, lat := h.fillL1(core, line)
	return words[mem.WordIndex(a)], lat
}

// Store writes one word, write-allocating on a miss, and returns exposed
// latency. A clean→dirty word transition records the frame in the MEB.
// Under write-through the word goes straight to the shared L2 and the L1
// copy stays clean.
func (h *Hierarchy) Store(core int, a mem.Addr, v mem.Word) int64 {
	l1 := h.l1[core]
	var lat int64
	l := l1.Lookup(a)
	if l == nil {
		_, lat = h.fillL1(core, mem.LineAddr(a))
		l = l1.Peek(a)
	}
	i := mem.WordIndex(a)
	if h.cfg.WriteThrough {
		l.Words[i] = v
		var words [mem.WordsPerLine]mem.Word
		words[i] = v
		h.ctr(core).Inc("wt.stores", 1)
		h.noteBloomWrite(core, mem.LineAddr(a))
		h.mergeBelowL1(h.m.BlockOf(core), mem.LineAddr(a), &words, mem.Bit(i))
		return lat
	}
	if !l.Dirty.Has(i) {
		if b := h.meb[core]; b != nil {
			f := l1.FrameOf(a)
			if h.fi != nil && h.fi.MEBOverCap(b.Len(), b.Has(f)) {
				// Injected fault: an undersized MEB silently discards the
				// record instead of entering the overflow state.
				h.fi.NoteMEBLost(mem.LineAddr(a))
				h.ctr(core).Inc("fault.meb.lost", 1)
			} else if b.Record(f) {
				h.ctr(core).Inc("meb.overflows", 1)
			}
			h.sampleMEB(core)
		}
		h.noteBloomWrite(core, mem.LineAddr(a))
	}
	l.Words[i] = v
	l.Dirty |= mem.Bit(i)
	return lat
}

// fillL1 fetches a line into core's L1 from the shared levels, handling
// victim writeback, and returns the line data and exposed latency.
func (h *Hierarchy) fillL1(core int, line mem.Addr) ([mem.WordsPerLine]mem.Word, int64) {
	b := h.m.BlockOf(core)
	words, lat := h.readThroughL2(core, b, line)
	var victim cache.Line
	if _, evicted := h.l1[core].Insert(line, &words, cache.StateNone, &victim); evicted && victim.IsDirty() {
		// Victim writeback drains through the write buffer: traffic but no
		// exposed latency.
		h.mergeBelowL1(b, victim.Tag, &victim.Words, victim.Dirty)
		h.ctr(core).Inc("l1.evict.dirty", 1)
	}
	return words, lat
}

// readThroughL2 returns the line's data as seen from block b's L2,
// filling L2 from L3/memory on an L2 miss. Latency covers the L1-miss
// round trip to the L2 bank plus any deeper legs.
func (h *Hierarchy) readThroughL2(core, b int, line mem.Addr) ([mem.WordsPerLine]mem.Word, int64) {
	p := h.m.Params
	mesh := h.m.Mesh
	bank := h.m.L2BankNode(b, line)
	lat := p.L2RT + mesh.RTLatency(h.m.CoreNode(core), bank)
	// This leg can run on a block-parallel shard (L2-hit fills are
	// shard-local); route the flits to the shard's accumulator.
	mesh.AccountShard(b, stats.Linefill, noc.CtrlFlits()+noc.DataFlits(mem.LineBytes))
	if l2l := h.l2[b].Lookup(line); l2l != nil {
		return l2l.Words, lat
	}
	words, deeper := h.fillL2(b, line)
	return words, lat + deeper
}

// fillL2 fetches a line into block b's L2 from L3 or memory and returns
// its data plus the latency of the deeper legs.
func (h *Hierarchy) fillL2(b int, line mem.Addr) ([mem.WordsPerLine]mem.Word, int64) {
	p := h.m.Params
	mesh := h.m.Mesh
	bank := h.m.L2BankNode(b, line)
	var words [mem.WordsPerLine]mem.Word
	var lat int64
	if h.l3 != nil {
		l3n := h.m.L3Node(line)
		lat += p.L3RT + mesh.RTLatency(bank, l3n)
		mesh.Account(stats.Linefill, noc.CtrlFlits()+noc.DataFlits(mem.LineBytes))
		if l3l := h.l3.Lookup(line); l3l != nil {
			words = l3l.Words
		} else {
			lat += p.MemRT + mesh.RTLatency(l3n, h.m.MemNode(line))
			mesh.Account(stats.MemoryTraffic, noc.CtrlFlits()+noc.DataFlits(mem.LineBytes))
			h.backing.ReadLine(line, &words)
			var v3 cache.Line
			if _, evicted := h.l3.Insert(line, &words, cache.StateNone, &v3); evicted && v3.IsDirty() {
				h.writeMemory(v3.Tag, &v3.Words, v3.Dirty)
			}
		}
	} else {
		lat += p.MemRT + mesh.RTLatency(bank, h.m.MemNode(line))
		mesh.Account(stats.MemoryTraffic, noc.CtrlFlits()+noc.DataFlits(mem.LineBytes))
		h.backing.ReadLine(line, &words)
	}
	var victim cache.Line
	if _, evicted := h.l2[b].Insert(line, &words, cache.StateNone, &victim); evicted && victim.IsDirty() {
		h.mergeBelowL2(victim.Tag, &victim.Words, victim.Dirty)
		h.ctrs[b].Inc("l2.evict.dirty", 1)
	}
	return words, lat
}

// writeMemory pushes masked words to backing memory with memory traffic.
func (h *Hierarchy) writeMemory(line mem.Addr, words *[mem.WordsPerLine]mem.Word, mask mem.LineMask) {
	h.backing.WriteLine(line, words, mask)
	h.m.Mesh.Account(stats.MemoryTraffic, noc.DataFlits(mask.Count()*mem.WordBytes))
}

// mergeBelowL1 pushes masked dirty words from an L1 line into the block's
// L2 if present (marking them dirty there), else forwards them deeper
// (write-no-allocate below L1).
func (h *Hierarchy) mergeBelowL1(b int, line mem.Addr, words *[mem.WordsPerLine]mem.Word, mask mem.LineMask) {
	// Like the L2 read leg, this can run on a block-parallel shard (the
	// OpLocal classifier only admits writebacks whose lines hit the L2).
	h.m.Mesh.AccountShard(b, stats.Writeback, noc.DataFlits(mask.Count()*mem.WordBytes))
	if l2l := h.l2[b].Peek(line); l2l != nil {
		for i := 0; i < mem.WordsPerLine; i++ {
			if mask.Has(i) {
				l2l.Words[i] = words[i]
			}
		}
		l2l.Dirty |= mask
		return
	}
	h.mergeBelowL2NoTraffic(line, words, mask)
}

// mergeBelowL2 pushes masked dirty words from an L2 line into L3 if
// present (marking them dirty), else to memory.
func (h *Hierarchy) mergeBelowL2(line mem.Addr, words *[mem.WordsPerLine]mem.Word, mask mem.LineMask) {
	if h.l3 != nil {
		h.m.Mesh.Account(stats.Writeback, noc.DataFlits(mask.Count()*mem.WordBytes))
	}
	h.mergeBelowL2NoTraffic(line, words, mask)
}

func (h *Hierarchy) mergeBelowL2NoTraffic(line mem.Addr, words *[mem.WordsPerLine]mem.Word, mask mem.LineMask) {
	if h.l3 != nil {
		if l3l := h.l3.Peek(line); l3l != nil {
			for i := 0; i < mem.WordsPerLine; i++ {
				if mask.Has(i) {
					l3l.Words[i] = words[i]
				}
			}
			l3l.Dirty |= mask
			return
		}
	}
	h.writeMemory(line, words, mask)
}

// ---- Uncacheable accesses ---------------------------------------------

// LoadUncached reads a word directly from the on-chip shared storage,
// bypassing the private caches — the access mode of the synchronization
// variables and MPI buffers of Programming Model 1.
func (h *Hierarchy) LoadUncached(core int, a mem.Addr) (mem.Word, int64) {
	h.m.Mesh.Account(stats.SyncTraffic, noc.CtrlFlits()+noc.DataFlits(mem.WordBytes))
	return h.backing.ReadWord(a), h.uncachedRT(core, a)
}

// StoreUncached writes a word directly to the on-chip shared storage.
func (h *Hierarchy) StoreUncached(core int, a mem.Addr, v mem.Word) int64 {
	h.m.Mesh.Account(stats.SyncTraffic, noc.DataFlits(mem.WordBytes))
	h.backing.WriteWord(a, v)
	return h.uncachedRT(core, a)
}

func (h *Hierarchy) uncachedRT(core int, a mem.Addr) int64 {
	p := h.m.Params
	line := mem.LineAddr(a)
	if h.l3 != nil {
		return p.L3RT + h.m.Mesh.RTLatency(h.m.CoreNode(core), h.m.L3Node(line))
	}
	b := h.m.BlockOf(core)
	return p.L2RT + h.m.Mesh.RTLatency(h.m.CoreNode(core), h.m.L2BankNode(b, line))
}

// ---- Epochs and verification ------------------------------------------

// EpochBoundary tells core's cache controller that a synchronization
// operation executed: the IEB is disarmed and cleared ("the IEB starts the
// epoch empty", Section IV-B.2). The MEB deliberately persists until the
// next WB ALL so that it always covers every line dirtied since the last
// full writeback (see MEB docs).
func (h *Hierarchy) EpochBoundary(core int) {
	if b := h.ieb[core]; b != nil {
		b.Disarm()
		h.sampleIEB(core)
	}
}

// Drain flushes every dirty word in every cache to backing memory, without
// timing or traffic, so tests can verify final program results. It leaves
// clean copies in place. Words parked by delay-wb faults land first, so
// data still cached (and later re-written) wins over the delayed copy.
func (h *Hierarchy) Drain() {
	h.applyDelayed()
	for c, l1 := range h.l1 {
		b := h.m.BlockOf(c)
		l1.ForEachValid(func(_ cache.FrameID, l *cache.Line) {
			if l.IsDirty() {
				if l2l := h.l2[b].Peek(l.Tag); l2l != nil {
					for i := 0; i < mem.WordsPerLine; i++ {
						if l.Dirty.Has(i) {
							l2l.Words[i] = l.Words[i]
						}
					}
					l2l.Dirty |= l.Dirty
				} else {
					h.drainToBelowL2(l.Tag, &l.Words, l.Dirty)
				}
				l.Dirty = 0
			}
		})
	}
	for _, l2 := range h.l2 {
		l2.ForEachValid(func(_ cache.FrameID, l *cache.Line) {
			if l.IsDirty() {
				h.drainToBelowL2(l.Tag, &l.Words, l.Dirty)
				l.Dirty = 0
			}
		})
	}
	if h.l3 != nil {
		h.l3.ForEachValid(func(_ cache.FrameID, l *cache.Line) {
			if l.IsDirty() {
				h.backing.WriteLine(l.Tag, &l.Words, l.Dirty)
				l.Dirty = 0
			}
		})
	}
}

func (h *Hierarchy) drainToBelowL2(line mem.Addr, words *[mem.WordsPerLine]mem.Word, mask mem.LineMask) {
	if h.l3 != nil {
		if l3l := h.l3.Peek(line); l3l != nil {
			for i := 0; i < mem.WordsPerLine; i++ {
				if mask.Has(i) {
					l3l.Words[i] = words[i]
				}
			}
			l3l.Dirty |= mask
			return
		}
	}
	h.backing.WriteLine(line, words, mask)
}
