package core

import "repro/internal/mem"

// Fingerprint hashes every piece of hierarchy state that can influence
// future behavior, for the litmus explorer's dedup table: the backing
// memory, every cache (contents plus per-set LRU order), every core's
// MEB and IEB, and any dirty words parked by delay-wb faults. Protocol
// counters and traffic totals are excluded — they are observational.
// The litmus machines never enable Bloom signatures; Fingerprint panics
// if they are present rather than silently under-hashing.
func (h *Hierarchy) Fingerprint() uint64 {
	if h.bloom != nil {
		panic("core: Fingerprint does not cover Bloom-signature state")
	}
	fp := h.backing.Fingerprint()
	for _, c := range h.l1 {
		fp = mem.Mix64(fp, c.Fingerprint())
	}
	for _, c := range h.l2 {
		fp = mem.Mix64(fp, c.Fingerprint())
	}
	if h.l3 != nil {
		fp = mem.Mix64(fp, h.l3.Fingerprint())
	}
	for core, b := range h.meb {
		if b == nil {
			continue
		}
		fp = mem.Mix64(fp, uint64(core)<<8|1)
		fp = mem.Mix64(fp, uint64(len(b.entries)))
		for _, f := range b.entries {
			fp = mem.Mix64(fp, uint64(f))
		}
		fp = mem.Mix64(fp, boolBit(b.overflow))
	}
	for core, b := range h.ieb {
		if b == nil {
			continue
		}
		fp = mem.Mix64(fp, uint64(core)<<8|2)
		fp = mem.Mix64(fp, uint64(len(b.fifo)))
		for _, a := range b.fifo {
			fp = mem.Mix64(fp, uint64(a))
		}
		fp = mem.Mix64(fp, boolBit(b.armed))
	}
	for _, p := range h.delayed {
		fp = mem.Mix64(fp, uint64(p.line))
		fp = mem.Mix64(fp, uint64(p.mask))
		for i, w := range p.words {
			if p.mask.Has(i) {
				fp = mem.Mix64(fp, uint64(w))
			}
		}
	}
	return fp
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// MinCacheSets returns the smallest set count among the hierarchy's
// caches. Two lines can conflict for capacity in *some* cache exactly
// when their line numbers are congruent modulo this value (set counts
// are powers of two), which is what isa.Deps needs to make independence
// sound under evictions.
func (h *Hierarchy) MinCacheSets() int {
	min := h.l1[0].Sets()
	for _, c := range h.l1 {
		if c.Sets() < min {
			min = c.Sets()
		}
	}
	for _, c := range h.l2 {
		if c.Sets() < min {
			min = c.Sets()
		}
	}
	if h.l3 != nil && h.l3.Sets() < min {
		min = h.l3.Sets()
	}
	return min
}
