package core

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/topo"
)

func bloomHierarchy() *Hierarchy {
	m := topo.NewIntraBlock()
	cfg := DefaultConfig(m)
	cfg.BloomBits = 256
	cfg.BloomHashes = 2
	return New(m, cfg)
}

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(lines []uint16) bool {
		b := NewBloom(256, 2)
		for _, l := range lines {
			b.Add(mem.Addr(l) * mem.LineBytes)
		}
		for _, l := range lines {
			if !b.MayContain(mem.Addr(l) * mem.LineBytes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBloomUnionSuperset(t *testing.T) {
	f := func(a, b []uint16) bool {
		fa, fb := NewBloom(256, 2), NewBloom(256, 2)
		for _, l := range a {
			fa.Add(mem.Addr(l) * mem.LineBytes)
		}
		for _, l := range b {
			fb.Add(mem.Addr(l) * mem.LineBytes)
		}
		fa.Union(fb)
		for _, l := range append(a, b...) {
			if !fa.MayContain(mem.Addr(l) * mem.LineBytes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBloomSelectivityOnFreshFilter(t *testing.T) {
	b := NewBloom(1024, 2)
	b.Add(0x1000)
	// A fresh filter with one entry should reject the vast majority of
	// other lines.
	misses := 0
	for i := 0; i < 1000; i++ {
		if !b.MayContain(mem.Addr(0x100000 + i*mem.LineBytes)) {
			misses++
		}
	}
	if misses < 950 {
		t.Errorf("only %d/1000 rejected by a nearly-empty filter", misses)
	}
	b.Reset()
	if b.PopCount() != 0 {
		t.Error("reset filter should be empty")
	}
}

func TestSigPublishAndINVSigCommunicate(t *testing.T) {
	h := bloomHierarchy()
	a := mem.Addr(0x1000)
	const ch = 7
	h.Load(1, a) // consumer caches stale copy
	h.Store(0, a, 99)
	h.WBAll(0, false, isa.LevelAuto) // write back (release side)
	h.SigPublish(0, ch)
	h.INVSig(1, ch) // acquire side: selective invalidation
	if v, _ := h.Load(1, a); v != 99 {
		t.Errorf("consumer read %d after signature invalidation, want 99", v)
	}
}

func TestINVSigIsSelective(t *testing.T) {
	h := bloomHierarchy()
	written := mem.Addr(0x2000)
	untouched := mem.Addr(0x8000)
	const ch = 3
	h.Load(1, written)
	h.Load(1, untouched)
	h.Store(0, written, 5)
	h.WBAll(0, false, isa.LevelAuto)
	h.SigPublish(0, ch)
	h.INVSig(1, ch)
	if h.l1[1].Peek(written) != nil {
		t.Error("written line should have been invalidated")
	}
	if h.l1[1].Peek(untouched) == nil {
		t.Error("unwritten line should have survived the selective invalidation")
	}
}

func TestChannelSignaturesSaturate(t *testing.T) {
	h := bloomHierarchy()
	const ch = 1
	before := h.BloomChannelSaturation(ch)
	// Many epochs writing distinct lines: the channel union only grows.
	for e := 0; e < 150; e++ {
		h.Store(0, mem.Addr(0x10000+e*mem.LineBytes), mem.Word(e))
		h.WBAll(0, false, isa.LevelAuto)
		h.SigPublish(0, ch)
	}
	after := h.BloomChannelSaturation(ch)
	if after <= before || after < 0.3 {
		t.Errorf("saturation did not grow as expected: %f -> %f", before, after)
	}
	// A saturated signature invalidates most of a consumer's cache —
	// selectivity decays toward INV ALL, the weakness the paper cites.
	for i := 0; i < 32; i++ {
		h.Load(1, mem.Addr(0x80000+i*mem.LineBytes))
	}
	h.INVSig(1, ch)
	if h.Counters().Get("bloom.matched") < 4 {
		t.Errorf("saturated signature matched only %d lines", h.Counters().Get("bloom.matched"))
	}
}

func TestBloomDisabledOpsAreNoops(t *testing.T) {
	m := topo.NewIntraBlock()
	h := New(m, DefaultConfig(m)) // no Bloom
	if lat := h.SigPublish(0, 1); lat != 0 {
		t.Error("publish without Bloom should be free")
	}
	if lat := h.INVSig(0, 1); lat != 0 {
		t.Error("INVSig without Bloom should be free")
	}
}
