package core

import (
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/stats"
)

// This file implements the WB and INV instruction family (Sections III-B,
// IV-B and V-B).
//
// Cost model (DESIGN.md §3): a WB or INV pays one ScanPerFrame cycle per
// tag it probes (per MEB entry on the MEB path, per frame on a full
// traversal, per line on a range op), one WBOccupancy cycle per line whose
// dirty words it ejects (writeback bursts are pipelined), and — for WBs
// that moved data — one drain round trip to the destination cache, since
// Section III-C requires WB to complete before a subsequent synchronization
// posts it. Whole-cache L2 traversals are parallel across the block's banks.
//
// On the single-block machine there is no L3, so LevelGlobal degrades to
// LevelAuto (the L2 is already the deepest shared cache).

// effLevel clamps the requested level to the machine's depth.
func (h *Hierarchy) effLevel(lvl isa.Level) isa.Level {
	if h.l3 == nil {
		return isa.LevelAuto
	}
	return lvl
}

// WB writes back the dirty words of every line overlapping r (Section
// III-B): to the block's L2 for LevelAuto, through to the L3 for
// LevelGlobal. Lines are left clean valid. It returns the exposed latency.
func (h *Hierarchy) WB(core int, r mem.Range, lvl isa.Level) int64 {
	if lat, sabotaged := h.wbFaultRange(core, r); sabotaged {
		return lat
	}
	return h.wb(core, r, lvl)
}

func (h *Hierarchy) wb(core int, r mem.Range, lvl isa.Level) int64 {
	lvl = h.effLevel(lvl)
	p := h.m.Params
	var lat int64
	written := 0
	var lastLine mem.Addr
	r.Lines(func(line mem.Addr, _ mem.LineMask) {
		lat += p.ScanPerFrame
		if h.wbLine(core, line, lvl) {
			written++
			lastLine = line
		}
		h.countLineOp(core, "wb", lvl, 1)
	})
	lat += int64(written) * p.WBOccupancy
	if written > 0 {
		lat += h.wbDrainRT(core, lastLine, lvl)
	}
	return lat
}

// wbLine writes back one line's dirty words (L1's and, at LevelGlobal,
// also the block L2's) and reports whether any data moved. WB has no
// effect on lines with no dirty valid data.
func (h *Hierarchy) wbLine(core int, line mem.Addr, lvl isa.Level) bool {
	wrote := false
	if l := h.l1[core].Peek(line); l != nil && l.IsDirty() {
		h.wbDirtyWords(core, l, lvl)
		wrote = true
	}
	if lvl == isa.LevelGlobal {
		b := h.m.BlockOf(core)
		if l2l := h.l2[b].Peek(line); l2l != nil && l2l.IsDirty() {
			h.pushL2WordsToL3(core, l2l)
			wrote = true
		}
	}
	return wrote
}

// wbDirtyWords ejects an L1 line's dirty words toward the requested level
// and leaves the line clean valid.
func (h *Hierarchy) wbDirtyWords(core int, l *cache.Line, lvl isa.Level) {
	b := h.m.BlockOf(core)
	h.ctr(core).Inc("wb.words", int64(l.Dirty.Count()))
	h.ctr(core).Inc("wb.dirtylines", 1)
	if h.effLevel(lvl) == isa.LevelGlobal {
		h.pushWordsGlobal(b, l.Tag, &l.Words, l.Dirty)
	} else {
		h.mergeBelowL1(b, l.Tag, &l.Words, l.Dirty)
	}
	l.Dirty = 0
}

// pushWordsGlobal writes masked words to both the block's L2 and the L3
// (Section V-B: "the dirty words are written back to both L2 and L3").
// The L2 copy is updated and left clean for those words, since the L3 now
// holds them too.
func (h *Hierarchy) pushWordsGlobal(b int, line mem.Addr, words *[mem.WordsPerLine]mem.Word, mask mem.LineMask) {
	flits := noc.DataFlits(mask.Count() * mem.WordBytes)
	h.m.Mesh.Account(stats.Writeback, flits) // L1 -> L2 leg
	if l2l := h.l2[b].Peek(line); l2l != nil {
		for i := 0; i < mem.WordsPerLine; i++ {
			if mask.Has(i) {
				l2l.Words[i] = words[i]
			}
		}
		l2l.Dirty &^= mask
	}
	h.m.Mesh.Account(stats.Writeback, flits) // L2 -> L3 leg
	h.mergeBelowL2NoTraffic(line, words, mask)
}

// pushL2WordsToL3 ejects a block-L2 line's dirty words to the L3 (or
// memory when the L3 evicted the line) and leaves the L2 line clean.
func (h *Hierarchy) pushL2WordsToL3(core int, l2l *cache.Line) {
	h.ctr(core).Inc("wb.words", int64(l2l.Dirty.Count()))
	h.ctr(core).Inc("wb.dirtylines", 1)
	h.m.Mesh.Account(stats.Writeback, noc.DataFlits(l2l.Dirty.Count()*mem.WordBytes))
	h.mergeBelowL2NoTraffic(l2l.Tag, &l2l.Words, l2l.Dirty)
	l2l.Dirty = 0
}

// wbDrainRT is the final drain round trip of a writeback burst.
func (h *Hierarchy) wbDrainRT(core int, line mem.Addr, lvl isa.Level) int64 {
	p := h.m.Params
	b := h.m.BlockOf(core)
	bank := h.m.L2BankNode(b, line)
	rt := p.L2RT + h.m.Mesh.RTLatency(h.m.CoreNode(core), bank)
	if h.effLevel(lvl) == isa.LevelGlobal {
		rt += p.L3RT + h.m.Mesh.RTLatency(bank, h.m.L3Node(line))
	}
	return rt
}

// INV eliminates from the caches every line overlapping r (Section III-B):
// from the L1 for LevelAuto, from both L1 and the block's L2 for
// LevelGlobal. Dirty data is first written back, so INV never loses
// updates. It returns the exposed latency.
func (h *Hierarchy) INV(core int, r mem.Range, lvl isa.Level) int64 {
	if h.invFault(core) {
		return 1
	}
	return h.inv(core, r, lvl)
}

func (h *Hierarchy) inv(core int, r mem.Range, lvl isa.Level) int64 {
	lvl = h.effLevel(lvl)
	p := h.m.Params
	b := h.m.BlockOf(core)
	var lat int64
	drains := 0
	var dead cache.Line // victim buffer reused across lines
	r.Lines(func(line mem.Addr, _ mem.LineMask) {
		lat += p.ScanPerFrame
		if h.l1[core].InvalidateInto(line, &dead) {
			h.ctr(core).Inc("inv.l1lines", 1)
			if dead.IsDirty() {
				h.wbDirtyWordsOfInvalidated(b, &dead, lvl)
				drains++
			}
		}
		if lvl == isa.LevelGlobal {
			lat += p.ScanPerFrame // L2 tag check
			if h.l2[b].InvalidateInto(line, &dead) {
				h.ctr(core).Inc("inv.l2lines", 1)
				if dead.IsDirty() {
					h.pushL2WordsToL3(core, &dead)
					drains++
				}
			}
		}
		h.countLineOp(core, "inv", lvl, 1)
	})
	lat += int64(drains) * p.WBOccupancy
	return lat
}

// wbDirtyWordsOfInvalidated saves the dirty words of an L1 line that is
// being invalidated. At LevelGlobal the block L2 copy is dying too, so the
// words go straight to the L3/memory; at LevelAuto they merge into the L2.
func (h *Hierarchy) wbDirtyWordsOfInvalidated(b int, l *cache.Line, lvl isa.Level) {
	if h.effLevel(lvl) == isa.LevelGlobal {
		h.m.Mesh.Account(stats.Writeback, noc.DataFlits(l.Dirty.Count()*mem.WordBytes))
		h.mergeBelowL2NoTraffic(l.Tag, &l.Words, l.Dirty)
	} else {
		h.mergeBelowL1(b, l.Tag, &l.Words, l.Dirty)
	}
}

// WBAll writes back every dirty line of core's L1 (Section IV-A's WB ALL).
// With useMEB and a valid (non-overflowed) MEB, only the recorded frames
// are scanned (Section IV-B.1); otherwise the whole tag array is traversed.
// At LevelGlobal the whole local block's L2 is written back to the L3 as
// well (Section V-B's WB_CONS ALL behaviour, also used by the inter-block
// Base configuration's "WB ALL to L3").
func (h *Hierarchy) WBAll(core int, useMEB bool, lvl isa.Level) int64 {
	if lat, sabotaged := h.wbFaultAll(core); sabotaged {
		return lat
	}
	return h.wbAll(core, useMEB, lvl)
}

func (h *Hierarchy) wbAll(core int, useMEB bool, lvl isa.Level) int64 {
	lvl = h.effLevel(lvl)
	p := h.m.Params
	l1 := h.l1[core]
	meb := h.meb[core]
	var lat int64
	written := 0

	if useMEB && meb != nil && meb.Valid() {
		h.ctr(core).Inc("meb.served", 1)
		if h.fi != nil {
			// Lines a faulty MEB silently discarded are invisible to this
			// entry scan: hand them to the oracle as misses.
			h.fi.FlushMEBLost()
		}
		lat += int64(meb.Len()) * p.ScanPerFrame
		for _, f := range meb.Entries() {
			if l := l1.Frame(f); l.Valid && l.IsDirty() {
				h.wbDirtyWords(core, l, lvl)
				written++
			}
		}
	} else {
		if useMEB && meb != nil {
			h.ctr(core).Inc("meb.fallback", 1)
		}
		if h.fi != nil {
			// The full traversal sees every dirty line, so discarded MEB
			// records cost nothing here.
			h.fi.ClearMEBLost()
		}
		lat += int64(l1.NumFrames()) * p.TraversalPerFrame
		l1.ForEachValid(func(_ cache.FrameID, l *cache.Line) {
			if l.IsDirty() {
				h.wbDirtyWords(core, l, lvl)
				written++
			}
		})
	}
	lat += int64(written) * p.WBOccupancy
	if written > 0 {
		lat += h.wbDrainRT(core, 0, lvl)
	}
	if meb != nil {
		meb.Clear()
		h.sampleMEB(core)
	}
	h.countLineOp(core, "wb", lvl, int64(written))

	if lvl == isa.LevelGlobal {
		b := h.m.BlockOf(core)
		l2 := h.l2[b]
		// Banked parallel traversal of the block's L2 tags.
		lat += int64(l2.NumFrames()/h.m.CoresPerBlock) * p.TraversalPerFrame
		l2written := 0
		l2.ForEachValid(func(_ cache.FrameID, l *cache.Line) {
			if l.IsDirty() {
				h.pushL2WordsToL3(core, l)
				l2written++
			}
		})
		lat += int64(l2written) * p.WBOccupancy
		if l2written > 0 {
			lat += p.L3RT + h.m.Mesh.RTLatency(h.m.CoreNode(core), h.m.L3Node(0))
		}
		h.countLineOp(core, "wb", lvl, int64(l2written))
	}
	return lat
}

// INVAll invalidates core's whole L1 (Section IV-A's INV ALL). With lazy
// and an IEB present, no lines are invalidated now; instead the IEB is
// armed and first reads self-invalidate lazily (Section IV-B.2). At
// LevelGlobal the whole local block's L2 is flash-invalidated as well
// (INV_PROD ALL / inter-block Base's "INV ALL from L2"). Dirty data is
// always written back before invalidation.
func (h *Hierarchy) INVAll(core int, lazy bool, lvl isa.Level) int64 {
	if h.invFault(core) {
		return 1
	}
	return h.invAll(core, lazy, lvl)
}

func (h *Hierarchy) invAll(core int, lazy bool, lvl isa.Level) int64 {
	lvl = h.effLevel(lvl)
	p := h.m.Params
	if lazy && lvl == isa.LevelAuto {
		if b := h.ieb[core]; b != nil {
			b.Arm()
			h.sampleIEB(core)
			h.ctr(core).Inc("ieb.armed", 1)
			return 1
		}
	}
	b := h.m.BlockOf(core)
	drains := 0
	n := h.l1[core].FlashInvalidate(func(l *cache.Line) {
		h.wbDirtyWordsOfInvalidated(b, l, lvl)
		drains++
	})
	h.ctr(core).Inc("inv.l1lines", int64(n))
	h.countLineOp(core, "inv", lvl, int64(n))
	lat := p.FlashCost + int64(drains)*p.WBOccupancy
	if lvl == isa.LevelGlobal {
		l2drains := 0
		n2 := h.l2[b].FlashInvalidate(func(l *cache.Line) {
			h.pushL2WordsToL3(core, l)
			l2drains++
		})
		h.ctr(core).Inc("inv.l2lines", int64(n2))
		h.countLineOp(core, "inv", lvl, int64(n2))
		lat += p.FlashCost + int64(l2drains)*p.WBOccupancy
	}
	return lat
}

// countLineOp tracks line-granular WB/INV operations by level, feeding the
// Figure 11 global-operation counts.
func (h *Hierarchy) countLineOp(core int, op string, lvl isa.Level, n int64) {
	if n == 0 {
		return
	}
	if lvl == isa.LevelGlobal {
		h.ctr(core).Inc(op+".lines.global", n)
	} else {
		h.ctr(core).Inc(op+".lines.local", n)
	}
}

// GlobalOps returns the counts of global (L3-directed) WB line operations
// and global (L2-depth) INV line operations — the quantities compared in
// Figure 11.
func (h *Hierarchy) GlobalOps() (wb, inv int64) {
	c := h.Counters()
	return c.Get("wb.lines.global"), c.Get("inv.lines.global")
}
