package core

// Observability integration. The hierarchy follows the obs package's
// two-rule design: everything that is already counted for the
// experiments (cache counters, MEB/IEB activity counters, the protocol
// counter bag, memory footprint) is read once at snapshot time through
// a collector; the only hot-path hooks are the MEB/IEB *occupancy*
// tracks, which sample the buffer fill level at each mutation — data
// that exists nowhere else. With no recorder attached the hooks are a
// single nil-slice test.

import (
	"repro/internal/cache"
	"repro/internal/obs"
)

// SetObs attaches the observability recorder (nil detaches). The mesh's
// histograms are hooked, per-core MEB/IEB occupancy tracks are created
// for the cores that have buffers, and a snapshot-time collector is
// registered for the counters the hierarchy already maintains.
func (h *Hierarchy) SetObs(r *obs.Recorder) {
	h.rec = r
	h.mebTrack, h.iebTrack = nil, nil
	h.m.Mesh.SetObs(r)
	if r == nil {
		return
	}
	n := h.m.NumCores()
	h.mebTrack = make([]*obs.Track, n)
	h.iebTrack = make([]*obs.Track, n)
	for c := 0; c < n; c++ {
		if h.meb[c] != nil {
			h.mebTrack[c] = r.Track("meb.occupancy", c)
		}
		if h.ieb[c] != nil {
			h.iebTrack[c] = r.Track("ieb.occupancy", c)
		}
	}
	r.OnCollect(h.collect)
}

// sampleMEB and sampleIEB record the buffer fill level after a
// mutation. They are the hierarchy's only hot-path hooks.
func (h *Hierarchy) sampleMEB(core int) {
	if h.mebTrack == nil {
		return
	}
	if t := h.mebTrack[core]; t != nil {
		t.Sample(h.rec.Now(), int64(h.meb[core].Len()))
	}
}

func (h *Hierarchy) sampleIEB(core int) {
	if h.iebTrack == nil {
		return
	}
	if t := h.iebTrack[core]; t != nil {
		t.Sample(h.rec.Now(), int64(h.ieb[core].Len()))
	}
}

// collect reads the hierarchy's existing counters into a snapshot.
func (h *Hierarchy) collect(c *obs.Collect) {
	// A collector only runs with a recorder attached, which is itself a
	// degrade cause on a multi-block machine, so the counter fires
	// exactly when a block-parallel request silently fell back to the
	// serial engine (ParallelShards == 1; see DegradeReason).
	if h.DegradeReason() != "" {
		c.Count("engine.degraded_to_serial", 1)
	}
	var l1 cache.Stats
	for _, cc := range h.l1 {
		addCacheStats(&l1, cc)
	}
	emitCacheStats(c, "cache.l1", l1)
	var l2 cache.Stats
	for _, cc := range h.l2 {
		addCacheStats(&l2, cc)
	}
	emitCacheStats(c, "cache.l2", l2)
	if h.l3 != nil {
		emitCacheStats(c, "cache.l3", h.l3.Stats())
	}

	var mebRecords, mebOverflows, iebInsertions, iebEvictions int64
	for i := range h.meb {
		if b := h.meb[i]; b != nil {
			mebRecords += b.Records
			mebOverflows += b.Overflows
		}
		if b := h.ieb[i]; b != nil {
			iebInsertions += b.Insertions
			iebEvictions += b.Evictions
		}
	}
	c.Count("meb.records", mebRecords)
	c.Count("meb.overflow.events", mebOverflows)
	c.Count("ieb.insertions", iebInsertions)
	c.Count("ieb.fifo.evictions", iebEvictions)
	gaugeOccupancy(c, "meb.occupancy.hwm", h.mebTrack)
	gaugeOccupancy(c, "ieb.occupancy.hwm", h.iebTrack)

	ctr := h.Counters()
	for _, name := range ctr.Names() {
		c.Count("proto."+name, ctr.Get(name))
	}

	words, pages := h.backing.Stats()
	c.Count("mem.footprint.words", int64(words))
	c.Gauge("mem.pages", int64(pages))
}

func addCacheStats(dst *cache.Stats, c *cache.Cache) {
	s := c.Stats()
	dst.Hits += s.Hits
	dst.Misses += s.Misses
	dst.Evictions += s.Evictions
	dst.WritebacksOnEvict += s.WritebacksOnEvict
}

func emitCacheStats(c *obs.Collect, prefix string, s cache.Stats) {
	c.Count(prefix+".hits", s.Hits)
	c.Count(prefix+".misses", s.Misses)
	c.Count(prefix+".evictions", s.Evictions)
	c.Count(prefix+".writebacks_on_evict", s.WritebacksOnEvict)
}

// gaugeOccupancy merges the per-core high-water marks into one gauge
// (skipped entirely when no core has the buffer).
func gaugeOccupancy(c *obs.Collect, name string, tracks []*obs.Track) {
	any := false
	var hwm int64
	for _, t := range tracks {
		if t != nil {
			any = true
			if v := t.HWM(); v > hwm {
				hwm = v
			}
		}
	}
	if any {
		c.Gauge(name, hwm)
	}
}
