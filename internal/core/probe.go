package core

import "repro/internal/mem"

// Probe is a side-effect-free snapshot of where one word lives in the
// hierarchy as seen from a given core: its private L1, its block's L2,
// the global L3 (when present), and backing memory. Litmus checkers and
// debugging tools use it to explain an observed value — e.g. a stale
// read shows up as L1Present with L1Val differing from MemVal.
type Probe struct {
	L1Present bool
	L1Dirty   bool // the probed word's dirty bit, not the whole line's
	L1Val     mem.Word

	L2Present bool
	L2Dirty   bool
	L2Val     mem.Word

	L3Present bool
	L3Dirty   bool
	L3Val     mem.Word

	MemVal mem.Word
}

// Evictions returns the total number of line evictions — clean and
// dirty — across every cache in the hierarchy. Schedule explorers use
// it to assert that a run stayed eviction-free: their line-disjointness
// independence rule (isa.Independent) is only sound when no line moved
// for capacity reasons.
func (h *Hierarchy) Evictions() int64 {
	var n int64
	for _, c := range h.l1 {
		n += c.Evictions
	}
	for _, c := range h.l2 {
		n += c.Evictions
	}
	if h.l3 != nil {
		n += h.l3.Evictions
	}
	return n
}

// ProbeWord reports where the word at a currently lives relative to
// core. It disturbs nothing: no LRU update, no hit/miss counters, no
// fills — safe to call between scheduling steps of a live run.
func (h *Hierarchy) ProbeWord(core int, a mem.Addr) Probe {
	wi := mem.WordIndex(a)
	var p Probe
	if l := h.l1[core].Peek(a); l != nil {
		p.L1Present = true
		p.L1Dirty = l.Dirty.Has(wi)
		p.L1Val = l.Words[wi]
	}
	if l := h.l2[h.m.BlockOf(core)].Peek(a); l != nil {
		p.L2Present = true
		p.L2Dirty = l.Dirty.Has(wi)
		p.L2Val = l.Words[wi]
	}
	if h.l3 != nil {
		if l := h.l3.Peek(a); l != nil {
			p.L3Present = true
			p.L3Dirty = l.Dirty.Has(wi)
			p.L3Val = l.Words[wi]
		}
	}
	p.MemVal = h.backing.ReadWord(a)
	return p
}
