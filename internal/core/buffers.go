package core

import (
	"repro/internal/cache"
	"repro/internal/mem"
)

// MEB is the Modified Entry Buffer of Section IV-B.1: a small hardware
// buffer that accumulates the frame IDs of cache lines written since the
// last full writeback. Each entry holds only a line frame ID (9 bits for a
// 32-KB cache), not an address, so entries can go stale when frames are
// reused — stale entries are deliberately not removed and at worst cause a
// harmless extra writeback, exactly as in the paper.
//
// One refinement over the paper's prose: the paper clears the MEB at every
// epoch and relies on the annotation discipline ("every epoch that writes
// ends in a WB ALL") to make MEB-assisted WB ALL complete. We instead clear
// the MEB only when a WB ALL executes, which makes the invariant
// unconditional: the MEB (when not overflowed) always covers every frame
// dirtied since the last WB ALL, so an MEB-assisted WB ALL can never miss
// a dirty line regardless of annotation choices. The cost is the same
// stale-entry false positives the paper already tolerates.
type MEB struct {
	cap      int
	entries  []cache.FrameID
	present  map[cache.FrameID]bool
	overflow bool

	// Records and Overflows count buffer activity for ablation benches.
	Records, Overflows int64
}

// NewMEB returns an empty MEB with the given capacity (Table III: 16).
func NewMEB(capacity int) *MEB {
	if capacity <= 0 {
		panic("core: MEB capacity must be positive")
	}
	return &MEB{cap: capacity, present: make(map[cache.FrameID]bool, capacity)}
}

// Record notes that frame f had a clean word updated. It reports whether
// this record caused the buffer to overflow (entering the invalid state
// where WB ALL must fall back to a full traversal).
func (b *MEB) Record(f cache.FrameID) bool {
	b.Records++
	if b.overflow || b.present[f] {
		return false
	}
	if len(b.entries) == b.cap {
		b.overflow = true
		b.Overflows++
		return true
	}
	b.entries = append(b.entries, f)
	b.present[f] = true
	return false
}

// Valid reports whether the buffer contents can serve a WB ALL.
func (b *MEB) Valid() bool { return !b.overflow }

// Entries returns the recorded frame IDs (undefined order significance;
// hardware would scan them in insertion order).
func (b *MEB) Entries() []cache.FrameID { return b.entries }

// Len returns the number of recorded frames.
func (b *MEB) Len() int { return len(b.entries) }

// Has reports whether frame f is already recorded.
func (b *MEB) Has(f cache.FrameID) bool { return b.present[f] }

// Clear empties the buffer; called when a WB ALL executes.
func (b *MEB) Clear() {
	b.entries = b.entries[:0]
	for k := range b.present {
		delete(b.present, k)
	}
	b.overflow = false
}

// IEB is the Invalidated Entry Buffer of Section IV-B.2: a small buffer of
// exact line addresses that do not need invalidation on a future read,
// because they were already read (and refreshed) earlier in the epoch. It
// is armed by a lazy INV ALL at epoch entry and disarmed at the next
// synchronization. While armed, the first read of each line self-invalidates
// and refetches the line; reads filtered by the IEB proceed normally.
//
// The buffer is tiny (Table III: 4 entries) because it is searched on every
// L1 read; eviction is FIFO, and an evicted line's next read costs one
// unnecessary invalidation plus a miss — a performance loss, never a
// correctness one.
type IEB struct {
	cap   int
	fifo  []mem.Addr
	armed bool

	// Insertions and Evictions count buffer activity.
	Insertions, Evictions int64
}

// NewIEB returns a disarmed IEB with the given capacity (Table III: 4).
func NewIEB(capacity int) *IEB {
	if capacity <= 0 {
		panic("core: IEB capacity must be positive")
	}
	return &IEB{cap: capacity}
}

// Arm starts a lazy-invalidation epoch with an empty buffer.
func (b *IEB) Arm() {
	b.fifo = b.fifo[:0]
	b.armed = true
}

// Disarm ends the epoch, clearing the buffer.
func (b *IEB) Disarm() {
	b.fifo = b.fifo[:0]
	b.armed = false
}

// Armed reports whether a lazy-invalidation epoch is active.
func (b *IEB) Armed() bool { return b.armed }

// Contains reports whether line needs no invalidation on read.
func (b *IEB) Contains(line mem.Addr) bool {
	for _, a := range b.fifo {
		if a == line {
			return true
		}
	}
	return false
}

// Insert records line as refreshed, evicting FIFO if full; it reports
// whether an eviction happened.
func (b *IEB) Insert(line mem.Addr) (evicted bool) {
	b.Insertions++
	if len(b.fifo) == b.cap {
		copy(b.fifo, b.fifo[1:])
		b.fifo = b.fifo[:len(b.fifo)-1]
		evicted = true
		b.Evictions++
	}
	b.fifo = append(b.fifo, line)
	return evicted
}

// Len returns the number of tracked lines.
func (b *IEB) Len() int { return len(b.fifo) }
