package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/topo"
)

// litmusLikeHierarchy mirrors the litmus explorer's machine: one block,
// four cores, MEB and IEB enabled — the configuration whose states the
// dedup table actually fingerprints.
func litmusLikeHierarchy() *Hierarchy {
	m := topo.NewCustom(1, 4, 0, topo.DefaultParams())
	return New(m, Config{
		L1:         cache.Config{Bytes: 4 << 10, Ways: 4},
		L2:         cache.Config{Bytes: 32 << 10, Ways: 8},
		MEBEntries: 16,
		IEBEntries: 4,
	})
}

func TestFingerprintDeterministic(t *testing.T) {
	run := func() uint64 {
		h := litmusLikeHierarchy()
		h.Load(1, 0x1000)
		h.Store(0, 0x1000, 42)
		h.Store(0, 0x2000, 7)
		h.WBAll(0, true, isa.LevelAuto)  // drains via the MEB
		h.INVAll(1, true, isa.LevelAuto) // arms the IEB
		h.Load(1, 0x1000)
		return h.Fingerprint()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical histories fingerprint differently: %#x vs %#x", a, b)
	}
}

// TestFingerprintSensitivity: each kind of state the explorer's dedup
// table must distinguish — memory values, clean-cache residency, dirty
// words, LRU order, MEB contents — changes the fingerprint.
func TestFingerprintSensitivity(t *testing.T) {
	base := litmusLikeHierarchy().Fingerprint()
	step := func(name string, mut func(h *Hierarchy)) uint64 {
		h := litmusLikeHierarchy()
		mut(h)
		fp := h.Fingerprint()
		if fp == base {
			t.Errorf("%s: fingerprint unchanged from empty hierarchy", name)
		}
		return fp
	}
	dirty := step("dirty store", func(h *Hierarchy) { h.Store(0, 0x1000, 1) })
	step("different value", func(h *Hierarchy) { h.Store(0, 0x1000, 2) })
	step("different core", func(h *Hierarchy) { h.Store(1, 0x1000, 1) })
	clean := step("clean residency", func(h *Hierarchy) { h.Load(0, 0x1000) })
	published := step("published", func(h *Hierarchy) {
		h.Store(0, 0x1000, 1)
		h.WB(0, mem.WordRange(0x1000, 1), isa.LevelAuto)
	})
	if dirty == clean || dirty == published || clean == published {
		t.Error("dirty / clean / published states collide")
	}
	// LRU order is future-relevant (it decides the next victim): two
	// hierarchies caching the same two lines in opposite touch order
	// must differ.
	lru := func(first, second mem.Addr) uint64 {
		h := litmusLikeHierarchy()
		h.Load(0, first)
		h.Load(0, second)
		// Touch first again so the recency order differs from insertion
		// order in exactly one of the two variants.
		h.Load(0, first)
		return h.Fingerprint()
	}
	// 0x1000 and 0x1000+64*sets map to the same set of the 4 KB L1.
	mate := mem.Addr(0x1000 + 4<<10)
	if lru(0x1000, mate) == lru(mate, 0x1000) {
		t.Error("LRU recency order does not reach the fingerprint")
	}
}

func TestFingerprintPanicsOnBloom(t *testing.T) {
	m := topo.NewIntraBlock()
	cfg := DefaultConfig(m)
	cfg.BloomBits = 256
	h := New(m, cfg)
	defer func() {
		if recover() == nil {
			t.Error("Fingerprint with Bloom signatures did not panic")
		}
	}()
	h.Fingerprint()
}

func TestMinCacheSets(t *testing.T) {
	h := litmusLikeHierarchy()
	// 4 KB, 4-way, 64 B lines -> 16 sets; the 32 KB 8-way L2 has 64.
	if got := h.MinCacheSets(); got != 16 {
		t.Errorf("MinCacheSets = %d, want 16 (the L1)", got)
	}
	inter := interHierarchy()
	if got, l1 := inter.MinCacheSets(), inter.l1[0].Sets(); got > l1 {
		t.Errorf("MinCacheSets = %d exceeds the L1's %d sets", got, l1)
	}
}
