package core

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/stats"
)

// This file implements the DMA engine that Runnemede uses for inter-block
// communication (Section VIII: "Runnemede does not specify how to
// communicate between blocks except through DMA operations initiated by a
// DMA engine"). A DMA copies a source range — whose data the software must
// first have pushed to the L3 with a global writeback — into a destination
// range, writing the lines into the L3 and depositing them directly into
// the target block's L2 (Runnemede's cluster memory). Consumers in the
// target block then self-invalidate only their L1s before reading.
//
// The initiating core drives the descriptor and blocks for the transfer
// (a synchronous model of the engine; asynchronous completion would hide
// part of the latency behind unrelated work, which none of the benchmarks
// here exploit). Like all incoherent-hierarchy mechanisms, DMA does not
// invalidate anybody's caches: stale private copies of the destination
// remain until their owners self-invalidate.

// DMACopy copies src to the range of equal length at dst, depositing the
// lines in the L3 and in block toBlock's L2, and returns the initiation
// latency. Ranges must be line-aligned and of equal, line-multiple length
// (the DMA engine works in whole lines).
func (h *Hierarchy) DMACopy(core int, dst mem.Addr, src mem.Range, toBlock int) int64 {
	if h.l3 == nil {
		// Single-block machine: the L2 is the only shared level; a DMA
		// degenerates to an L2-to-L2 copy within the block.
		toBlock = h.m.BlockOf(core)
	}
	if src.Base%mem.LineBytes != 0 || dst%mem.LineBytes != 0 || src.Bytes%mem.LineBytes != 0 {
		panic("core: DMA ranges must be line-aligned and line-multiple")
	}
	if toBlock < 0 || toBlock >= h.m.Blocks {
		panic("core: DMA target block out of range")
	}
	p := h.m.Params
	lines := int64(src.NumLines())
	h.ctr(core).Inc("dma.transfers", 1)
	h.ctr(core).Inc("dma.lines", lines)

	off := int64(dst) - int64(src.Base)
	src.Lines(func(line mem.Addr, _ mem.LineMask) {
		var words [mem.WordsPerLine]mem.Word
		// Source of truth: L3 (the caller wrote back globally), falling
		// back to memory.
		if h.l3 != nil {
			if l3l := h.l3.Peek(line); l3l != nil {
				words = l3l.Words
			} else {
				h.backing.ReadLine(line, &words)
			}
		} else {
			b := h.m.BlockOf(core)
			if l2l := h.l2[b].Peek(line); l2l != nil {
				words = l2l.Words
			} else {
				h.backing.ReadLine(line, &words)
			}
		}
		dline := mem.Addr(int64(line) + off)
		// Destination in L3 (dirty with respect to memory).
		if h.l3 != nil {
			if l3l := h.l3.Peek(dline); l3l != nil {
				l3l.Words = words
				l3l.Dirty = mem.FullMask
			} else {
				var victim cache.Line
				if _, evicted := h.l3.Insert(dline, &words, 0, &victim); evicted && victim.IsDirty() {
					h.writeMemory(victim.Tag, &victim.Words, victim.Dirty)
				}
				h.l3.Peek(dline).Dirty = mem.FullMask
			}
		} else {
			h.backing.WriteLine(dline, &words, mem.FullMask)
		}
		// Deposit into the target block's L2 (clean: the L3 holds it too).
		l2 := h.l2[toBlock]
		if l2l := l2.Peek(dline); l2l != nil {
			l2l.Words = words
			l2l.Dirty = 0
		} else {
			var victim cache.Line
			if _, evicted := l2.Insert(dline, &words, 0, &victim); evicted && victim.IsDirty() {
				h.mergeBelowL2(victim.Tag, &victim.Words, victim.Dirty)
			}
		}
		h.m.Mesh.Account(stats.MemoryTraffic, noc.CtrlFlits()+noc.DataFlits(mem.LineBytes)) // L3 read leg
		h.m.Mesh.Account(stats.Writeback, noc.DataFlits(mem.LineBytes))                     // deposit leg
	})

	// Initiation cost: descriptor round trip to the engine at the L3 plus
	// pipelined per-line occupancy.
	var rt int64
	if h.l3 != nil {
		rt = p.L3RT + h.m.Mesh.RTLatency(h.m.CoreNode(core), h.m.L3Node(src.Base))
	} else {
		b := h.m.BlockOf(core)
		rt = p.L2RT + h.m.Mesh.RTLatency(h.m.CoreNode(core), h.m.L2BankNode(b, src.Base))
	}
	return rt + lines*p.WBOccupancy
}
