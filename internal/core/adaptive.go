package core

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// This file implements the level-adaptive instructions of Section V:
// WB_CONS(addr, ConsID), INV_PROD(addr, ProdID), and their ALL forms. The
// hardware consults the local block's ThreadMap to decide whether the peer
// thread runs in the same block; if it does, the operation stays intra-block
// (WB to L2, INV from L1), otherwise it goes global (WB through to L3, INV
// from both L1 and L2). A program annotated with these instructions runs
// correctly under any thread-to-block mapping without modification.

// adaptiveLevel resolves the level for an operation between core and peer.
func (h *Hierarchy) adaptiveLevel(core, peer int) isa.Level {
	if h.sameBlock(core, peer) {
		return isa.LevelAuto
	}
	return isa.LevelGlobal
}

// WBCons executes WB_CONS(r, cons): write back r's dirty words so that
// consumer thread cons can see them, choosing the cache level from the
// ThreadMap.
func (h *Hierarchy) WBCons(core int, r mem.Range, cons int) int64 {
	lvl := h.adaptiveLevel(core, cons)
	h.ctr(core).Inc("wbcons."+lvl.String(), 1)
	// Consult the fault plan here, not in the internal impl, so one
	// instruction advances the WB cursor exactly once.
	if lat, sabotaged := h.wbFaultRange(core, r); sabotaged {
		return lat
	}
	return h.wb(core, r, lvl)
}

// InvProd executes INV_PROD(r, prod): self-invalidate r so that the next
// reads see producer thread prod's updates, choosing the cache level from
// the ThreadMap.
func (h *Hierarchy) InvProd(core int, r mem.Range, prod int) int64 {
	lvl := h.adaptiveLevel(core, prod)
	h.ctr(core).Inc("invprod."+lvl.String(), 1)
	if h.invFault(core) {
		return 1
	}
	return h.inv(core, r, lvl)
}

// WBConsAll executes WB_CONS ALL(cons). When the consumer is in another
// block, this writes back not just the local L1 but the whole local
// block's L2 to the L3 (Section V-B).
func (h *Hierarchy) WBConsAll(core, cons int) int64 {
	lvl := h.adaptiveLevel(core, cons)
	h.ctr(core).Inc("wbcons."+lvl.String(), 1)
	if lat, sabotaged := h.wbFaultAll(core); sabotaged {
		return lat
	}
	return h.wbAll(core, false, lvl)
}

// InvProdAll executes INV_PROD ALL(prod). When the producer is in another
// block, this self-invalidates not only the local L1 but the whole local
// block's L2 (Section V-B).
func (h *Hierarchy) InvProdAll(core, prod int) int64 {
	lvl := h.adaptiveLevel(core, prod)
	h.ctr(core).Inc("invprod."+lvl.String(), 1)
	if h.invFault(core) {
		return 1
	}
	return h.invAll(core, false, lvl)
}
