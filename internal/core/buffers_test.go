package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/mem"
)

func TestMEBRecordDedup(t *testing.T) {
	b := NewMEB(4)
	b.Record(1)
	b.Record(1)
	b.Record(2)
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2 (duplicates filtered)", b.Len())
	}
	if !b.Valid() {
		t.Error("buffer should be valid")
	}
}

func TestMEBOverflow(t *testing.T) {
	b := NewMEB(2)
	b.Record(1)
	b.Record(2)
	if over := b.Record(3); !over {
		t.Error("third distinct record should overflow")
	}
	if b.Valid() {
		t.Error("overflowed buffer must be invalid")
	}
	// After overflow, records are ignored but counted.
	b.Record(4)
	if b.Records != 4 {
		t.Errorf("Records = %d", b.Records)
	}
	b.Clear()
	if !b.Valid() || b.Len() != 0 {
		t.Error("Clear should restore validity")
	}
}

// Property: a non-overflowed MEB contains exactly the set of distinct
// frames recorded since the last Clear.
func TestMEBContentsProperty(t *testing.T) {
	f := func(frames []uint8) bool {
		b := NewMEB(16)
		want := map[cache.FrameID]bool{}
		for _, fr := range frames {
			id := cache.FrameID(fr % 64)
			b.Record(id)
			want[id] = true
			if len(want) > 16 {
				return !b.Valid()
			}
		}
		if len(want) > 16 {
			return !b.Valid()
		}
		if b.Len() != len(want) {
			return false
		}
		for _, e := range b.Entries() {
			if !want[e] {
				return false
			}
		}
		return b.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIEBFIFOEviction(t *testing.T) {
	b := NewIEB(2)
	b.Arm()
	b.Insert(0x00)
	b.Insert(0x40)
	if ev := b.Insert(0x80); !ev {
		t.Error("third insert should evict")
	}
	if b.Contains(0x00) {
		t.Error("oldest entry should have been evicted (FIFO)")
	}
	if !b.Contains(0x40) || !b.Contains(0x80) {
		t.Error("younger entries should remain")
	}
}

func TestIEBArmDisarmClears(t *testing.T) {
	b := NewIEB(4)
	b.Arm()
	b.Insert(0x40)
	if !b.Armed() || !b.Contains(0x40) {
		t.Error("armed buffer should track lines")
	}
	b.Disarm()
	if b.Armed() || b.Contains(0x40) {
		t.Error("disarm must clear the buffer")
	}
	b.Arm()
	if b.Contains(0x40) {
		t.Error("the IEB starts the epoch empty")
	}
}

// Property: the IEB never holds more than its capacity and always
// contains the most recent distinct inserts.
func TestIEBRecencyProperty(t *testing.T) {
	f := func(lines []uint8) bool {
		b := NewIEB(4)
		b.Arm()
		var history []mem.Addr
		for _, l := range lines {
			a := mem.Addr(l) * 64
			b.Insert(a)
			history = append(history, a)
		}
		if b.Len() > 4 {
			return false
		}
		// The last insert is always present.
		if len(history) > 0 && !b.Contains(history[len(history)-1]) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBufferConstructorsValidate(t *testing.T) {
	for _, f := range []func(){
		func() { NewMEB(0) },
		func() { NewIEB(0) },
		func() { NewMEB(-3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("nonpositive capacity should panic")
				}
			}()
			f()
		}()
	}
}
