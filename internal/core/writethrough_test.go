package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/topo"
)

func wtHierarchy() *Hierarchy {
	m := topo.NewIntraBlock()
	cfg := DefaultConfig(m)
	cfg.WriteThrough = true
	cfg.IEBEntries = 4
	return New(m, cfg)
}

func TestWriteThroughStoreVisibleWithoutWB(t *testing.T) {
	h := wtHierarchy()
	a := mem.Addr(0x1000)
	h.Store(0, a, 42)
	// No WB issued; the consumer's self-invalidation alone suffices.
	h.INV(1, mem.WordRange(a, 1), isa.LevelAuto)
	if v, _ := h.Load(1, a); v != 42 {
		t.Errorf("consumer read %d without producer WB, want 42 (write-through)", v)
	}
}

func TestWriteThroughLeavesL1Clean(t *testing.T) {
	h := wtHierarchy()
	a := mem.Addr(0x2000)
	h.Store(0, a, 7)
	l := h.l1[0].Peek(a)
	if l == nil || l.IsDirty() {
		t.Error("write-through store should leave the L1 line clean")
	}
	// WB ALL finds nothing to do.
	before := h.Counters().Get("wb.words")
	h.WBAll(0, false, isa.LevelAuto)
	if h.Counters().Get("wb.words") != before {
		t.Error("WB ALL moved data on a write-through hierarchy")
	}
}

func TestWriteThroughOwnReadsStayCorrect(t *testing.T) {
	h := wtHierarchy()
	a := mem.Addr(0x3000)
	h.Store(0, a, 5)
	if v, lat := h.Load(0, a); v != 5 || lat != 0 {
		t.Errorf("own read = (%d, %d), want hit of 5", v, lat)
	}
}

func TestWriteThroughPaysPerStoreTraffic(t *testing.T) {
	h := wtHierarchy()
	a := mem.Addr(0x4000)
	h.Load(0, a) // allocate first so only store traffic follows
	beforeTr := h.Traffic()
	for i := 0; i < 10; i++ {
		h.Store(0, a, mem.Word(i))
	}
	after := h.Traffic()
	if after[stats.Writeback]-beforeTr[stats.Writeback] < 10 {
		t.Error("write-through should pay per-store writeback traffic")
	}
	if h.Counters().Get("wt.stores") != 10 {
		t.Errorf("wt.stores = %d", h.Counters().Get("wt.stores"))
	}
}

func TestWriteThroughFalseSharingSafe(t *testing.T) {
	h := wtHierarchy()
	line := mem.Addr(0x5000)
	h.Load(0, line)
	h.Load(1, line+4)
	h.Store(0, line, 11)
	h.Store(1, line+4, 22)
	h.INV(2, mem.WordRange(line, 16), isa.LevelAuto)
	if v, _ := h.Load(2, line); v != 11 {
		t.Errorf("word 0 = %d", v)
	}
	if v, _ := h.Load(2, line+4); v != 22 {
		t.Errorf("word 1 = %d", v)
	}
}

func TestWriteThroughDrain(t *testing.T) {
	h := wtHierarchy()
	h.Store(0, 0x6000, 9)
	h.Drain()
	if h.Memory().ReadWord(0x6000) != 9 {
		t.Error("write-through data lost at drain")
	}
}
