// Package topo describes the physical organization of the simulated
// machine: how many blocks and cores it has, where each core tile, L2 bank,
// L3 bank, and memory port sits on the 2D mesh, and the Table III latency
// parameters. Both the hardware-coherent (mesi) and hardware-incoherent
// (core) hierarchies are built on the same topology so their timing and
// traffic are directly comparable.
package topo

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/noc"
)

// Node ID layout on the mesh: cores occupy [0, NumCores); L3 banks and
// memory ports get high IDs placed at mesh corners.
const (
	l3NodeBase  = 1 << 16
	memNodeBase = 1 << 17
)

// Params are the timing parameters of Table III plus the cost-model knobs
// this reproduction adds (documented in DESIGN.md §3).
type Params struct {
	// L1RT, L2RT, L3RT are round-trip access times of the caches (cycles),
	// excluding network hops. MemRT is the off-chip memory round trip.
	L1RT, L2RT, L3RT, MemRT int64
	// ScanPerFrame is the cost of probing one tag (range WB/INV line
	// probes, MEB entry scans).
	ScanPerFrame int64
	// TraversalPerFrame is the per-frame cost of a whole-cache WB ALL
	// traversal. Scaled-capacity experiment machines raise it so the
	// absolute traversal cost stays representative of the full Table III
	// tag array.
	TraversalPerFrame int64
	// WBOccupancy is the per-line issue occupancy of a writeback burst;
	// bursts are pipelined, so k lines cost k×WBOccupancy plus one drain
	// round trip.
	WBOccupancy int64
	// FlashCost is the cost of flash-clearing the valid bits on INV ALL.
	FlashCost int64
	// SyncService is the synchronization controller service time per
	// request, on top of the mesh round trip.
	SyncService int64
	// CPI approximates the pipelined cost of issuing one memory
	// instruction that hits in the L1 (the 4-issue core's throughput
	// limit); pure Compute ops charge their cycle count directly.
	CPI int64
}

// DefaultParams returns the Table III timing parameters.
func DefaultParams() Params {
	return Params{
		L1RT:              2,
		L2RT:              11,
		L3RT:              20,
		MemRT:             150,
		ScanPerFrame:      1,
		TraversalPerFrame: 1,
		WBOccupancy:       4,
		FlashCost:         8,
		SyncService:       11,
		CPI:               1,
	}
}

// Machine is the static machine layout.
type Machine struct {
	Blocks        int
	CoresPerBlock int
	L3Banks       int // 0 for the single-block machine (L2 is last level)
	MemPorts      int
	Mesh          *noc.Mesh
	Params        Params

	blockW, blockH int // tile dims of one block
	meshW, meshH   int
}

// NumCores returns the total core count.
func (m *Machine) NumCores() int { return m.Blocks * m.CoresPerBlock }

// NewIntraBlock builds the Table III intra-block machine: one block of 16
// cores on a 4×4 mesh, one L2 bank per core tile, no L3, memory at the four
// corners.
func NewIntraBlock() *Machine {
	return build(1, 16, 0, DefaultParams())
}

// NewInterBlock builds the Table III inter-block machine: 4 blocks of 8
// cores on an 8×4 mesh (each block a 4×2 quadrant), one L2 bank per core
// tile, 4 L3 banks at the corners, memory at the corners.
func NewInterBlock() *Machine {
	return build(4, 8, 4, DefaultParams())
}

// NewCustom builds a machine with the given shape; blocks×coresPerBlock
// must be expressible as a mesh of 2^k columns. It exists for tests and
// ablation benches.
func NewCustom(blocks, coresPerBlock, l3Banks int, p Params) *Machine {
	return build(blocks, coresPerBlock, l3Banks, p)
}

func build(blocks, coresPerBlock, l3Banks int, p Params) *Machine {
	total := blocks * coresPerBlock
	w, h := meshDims(total)
	m := &Machine{
		Blocks:        blocks,
		CoresPerBlock: coresPerBlock,
		L3Banks:       l3Banks,
		MemPorts:      4,
		Mesh:          noc.New(w, h),
		Params:        p,
		meshW:         w,
		meshH:         h,
	}
	// Blocks tile the mesh left-to-right, top-to-bottom. Each block is a
	// bw×bh rectangle of core tiles.
	bw, bh := blockDims(coresPerBlock, w, h, blocks)
	m.blockW, m.blockH = bw, bh
	blocksPerRow := w / bw
	for c := 0; c < total; c++ {
		b := c / coresPerBlock
		i := c % coresPerBlock
		bx, by := (b%blocksPerRow)*bw, (b/blocksPerRow)*bh
		m.Mesh.Place(noc.NodeID(c), noc.Coord{X: bx + i%bw, Y: by + i/bw})
	}
	corners := m.Mesh.Corners()
	for b := 0; b < l3Banks; b++ {
		m.Mesh.Place(noc.NodeID(l3NodeBase+b), corners[b%4])
	}
	for p := 0; p < m.MemPorts; p++ {
		m.Mesh.Place(noc.NodeID(memNodeBase+p), corners[p%4])
	}
	return m
}

func meshDims(total int) (w, h int) {
	// Pick the most square power-of-two-ish factorization.
	bestW, bestH := total, 1
	for h := 1; h <= total; h++ {
		if total%h != 0 {
			continue
		}
		w := total / h
		if abs(w-h) < abs(bestW-bestH) {
			bestW, bestH = w, h
		}
	}
	if bestW < bestH {
		bestW, bestH = bestH, bestW
	}
	return bestW, bestH
}

func blockDims(coresPerBlock, w, h, blocks int) (bw, bh int) {
	// Find a rectangle of coresPerBlock tiles that tiles the w×h mesh into
	// exactly `blocks` rectangles.
	for bh = 1; bh <= h; bh++ {
		if coresPerBlock%bh != 0 {
			continue
		}
		bw = coresPerBlock / bh
		if bw <= w && w%bw == 0 && h%bh == 0 && (w/bw)*(h/bh) == blocks {
			return bw, bh
		}
	}
	panic(fmt.Sprintf("topo: cannot tile %d cores/block into %dx%d mesh with %d blocks",
		coresPerBlock, w, h, blocks))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// BlockOf returns the block holding core c (threads map 1:1 to cores and do
// not migrate, per Section IV-A).
func (m *Machine) BlockOf(core int) int { return core / m.CoresPerBlock }

// CoreNode returns the mesh node of core c's tile.
func (m *Machine) CoreNode(core int) noc.NodeID { return noc.NodeID(core) }

// L2BankOf returns, for a block, which of its core tiles hosts the L2 bank
// serving the given line (line-interleaved across the block's banks).
func (m *Machine) L2BankOf(line mem.Addr) int {
	return int(line/mem.LineBytes) % m.CoresPerBlock
}

// L2BankNode returns the mesh node of the L2 bank serving line in block b.
func (m *Machine) L2BankNode(b int, line mem.Addr) noc.NodeID {
	return noc.NodeID(b*m.CoresPerBlock + m.L2BankOf(line))
}

// L3BankOf returns the L3 bank index serving line.
func (m *Machine) L3BankOf(line mem.Addr) int {
	if m.L3Banks == 0 {
		return 0
	}
	return int(line/mem.LineBytes) % m.L3Banks
}

// L3Node returns the mesh node of the L3 bank serving line.
func (m *Machine) L3Node(line mem.Addr) noc.NodeID {
	return noc.NodeID(l3NodeBase + m.L3BankOf(line))
}

// MemNode returns the mesh node of the memory port serving line.
func (m *Machine) MemNode(line mem.Addr) noc.NodeID {
	return noc.NodeID(memNodeBase + int(line/mem.LineBytes)%m.MemPorts)
}

// SyncNode returns the mesh node of the shared-cache controller entry
// serving synchronization variable id (interleaved across the machine's
// shared-cache banks: L3 banks when present, else the block's L2 banks).
func (m *Machine) SyncNode(id int) noc.NodeID {
	if m.L3Banks > 0 {
		return noc.NodeID(l3NodeBase + id%m.L3Banks)
	}
	return noc.NodeID(id % m.NumCores())
}

// SyncCost returns the round trip for core's synchronization request on
// variable id: mesh round trip plus controller service time.
func (m *Machine) SyncCost(core, id int) int64 {
	return m.Mesh.RTLatency(m.CoreNode(core), m.SyncNode(id)) + m.Params.SyncService
}
