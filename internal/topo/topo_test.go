package topo

import (
	"testing"

	"repro/internal/mem"
)

func TestIntraBlockShape(t *testing.T) {
	m := NewIntraBlock()
	if m.NumCores() != 16 || m.Blocks != 1 || m.L3Banks != 0 {
		t.Fatalf("shape = %d cores, %d blocks, %d L3 banks", m.NumCores(), m.Blocks, m.L3Banks)
	}
	if w, h := m.Mesh.Dims(); w != 4 || h != 4 {
		t.Errorf("mesh = %dx%d, want 4x4", w, h)
	}
	for c := 0; c < 16; c++ {
		if m.BlockOf(c) != 0 {
			t.Errorf("core %d in block %d", c, m.BlockOf(c))
		}
	}
}

func TestInterBlockShape(t *testing.T) {
	m := NewInterBlock()
	if m.NumCores() != 32 || m.Blocks != 4 || m.L3Banks != 4 {
		t.Fatalf("shape = %d cores, %d blocks, %d L3 banks", m.NumCores(), m.Blocks, m.L3Banks)
	}
	if w, h := m.Mesh.Dims(); w != 8 || h != 4 {
		t.Errorf("mesh = %dx%d, want 8x4", w, h)
	}
	if m.BlockOf(7) != 0 || m.BlockOf(8) != 1 || m.BlockOf(31) != 3 {
		t.Error("block assignment wrong")
	}
}

func TestBlockTilesAreContiguous(t *testing.T) {
	m := NewInterBlock()
	// All cores of one block must be closer to each other than the mesh
	// diameter, and distinct cores get distinct tiles.
	seen := map[[2]int]bool{}
	for c := 0; c < m.NumCores(); c++ {
		co := m.Mesh.Coord(m.CoreNode(c))
		key := [2]int{co.X, co.Y}
		if seen[key] {
			t.Fatalf("core %d shares a tile", c)
		}
		seen[key] = true
	}
	// Within a block, max distance must be at most bw+bh-2 = 7 for an 8x1
	// block row.
	for b := 0; b < m.Blocks; b++ {
		for i := 0; i < m.CoresPerBlock; i++ {
			for j := i + 1; j < m.CoresPerBlock; j++ {
				ci, cj := b*m.CoresPerBlock+i, b*m.CoresPerBlock+j
				if h := m.Mesh.Hops(m.CoreNode(ci), m.CoreNode(cj)); h > 7 {
					t.Errorf("cores %d,%d in block %d are %d hops apart", ci, cj, b, h)
				}
			}
		}
	}
}

func TestL2BankInterleaving(t *testing.T) {
	m := NewIntraBlock()
	if m.L2BankOf(0) != 0 || m.L2BankOf(64) != 1 || m.L2BankOf(64*16) != 0 {
		t.Error("L2 bank interleave wrong")
	}
	// A bank node must be a core tile of the same block.
	n := m.L2BankNode(0, 64*5)
	if int(n) != 5 {
		t.Errorf("bank node = %d, want tile 5", n)
	}
}

func TestL2BankNodeInBlock(t *testing.T) {
	m := NewInterBlock()
	for b := 0; b < m.Blocks; b++ {
		for line := mem.Addr(0); line < 64*32; line += 64 {
			n := int(m.L2BankNode(b, line))
			if n/m.CoresPerBlock != b {
				t.Fatalf("bank node %d for block %d is outside the block", n, b)
			}
		}
	}
}

func TestL3AndMemPlacement(t *testing.T) {
	m := NewInterBlock()
	for line := mem.Addr(0); line < 64*8; line += 64 {
		// Must not panic: nodes are placed.
		m.Mesh.Coord(m.L3Node(line))
		m.Mesh.Coord(m.MemNode(line))
	}
	if m.L3BankOf(0) == m.L3BankOf(64) {
		t.Error("adjacent lines should hit different L3 banks")
	}
}

func TestSyncCostPositive(t *testing.T) {
	for _, m := range []*Machine{NewIntraBlock(), NewInterBlock()} {
		for c := 0; c < m.NumCores(); c++ {
			if cost := m.SyncCost(c, 3); cost < m.Params.SyncService {
				t.Errorf("sync cost %d below service time", cost)
			}
		}
	}
}

func TestDefaultParamsMatchTableIII(t *testing.T) {
	p := DefaultParams()
	if p.L1RT != 2 || p.L2RT != 11 || p.L3RT != 20 || p.MemRT != 150 {
		t.Errorf("params = %+v", p)
	}
}

func TestCustomMachine(t *testing.T) {
	m := NewCustom(2, 4, 2, DefaultParams())
	if m.NumCores() != 8 {
		t.Fatal("custom machine core count")
	}
	if m.BlockOf(3) != 0 || m.BlockOf(4) != 1 {
		t.Error("custom block mapping")
	}
}
