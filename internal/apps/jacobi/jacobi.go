// Package jacobi provides the 2D Jacobi application the paper developed
// for its inter-block evaluation (Section VI): an iterative five-point
// stencil whose inter-thread communication is entirely nearest-neighbor
// chunk-boundary exchange — the best case for level-adaptive WB_CONS and
// INV_PROD, since most neighbor pairs land in the same block.
package jacobi

import (
	"repro/internal/compiler"
	"repro/internal/mem"
)

// Size selects a problem scale.
type Size int

const (
	// Test is small enough for unit tests across every mode.
	Test Size = iota
	// Bench is the scale used by the Figure 11/12 harness.
	Bench
)

// New builds a 2D Jacobi IR workload on an n×n grid (n chosen from size)
// for the given thread count. The interior initialization uses the same
// iteration space and chunking as the update loop, so the compiler can
// prove that an element's first-iteration producer and steady-state
// producer are the same thread (standard first-touch discipline in NUMA
// codes).
func New(sz Size, threads int) *compiler.IRWorkload {
	n := 18
	iters := 2
	if sz == Bench {
		n = 34
		iters = 4
	}
	in := n - 2 // interior dimension
	d := in * in
	// Rows are padded to cache-line multiples, as any NUMA/false-sharing-
	// aware stencil code lays them out; this matters for the HCC baseline,
	// which otherwise ping-pongs boundary-straddling lines.
	stride := (n + 15) &^ 15
	ij := func(k int) (int, int) { return k/in + 1, k%in + 1 }
	seed := func(i, j int) mem.Word { return mem.Word(uint32(i*stride+j)*2246822519 + 9) }

	prog := compiler.NewProgram("jacobi")
	prog.Array("A", n*stride)
	prog.Array("B", n*stride)

	prog.Add(&compiler.Loop{
		Name: "init-interior", Parallel: true, Lo: 0, Hi: d,
		Writes: []compiler.Write{{Array: "A", At: func(k int) int { i, j := ij(k); return i*stride + j }}},
		Body: func(k int, _ func(int) mem.Word) []mem.Word {
			i, j := ij(k)
			return []mem.Word{seed(i, j)}
		},
	})
	// Boundary cells are written once by thread 0 and never updated.
	boundary := make([]int, 0, 4*n)
	for j := 0; j < n; j++ {
		boundary = append(boundary, j, (n-1)*stride+j)
	}
	for i := 1; i < n-1; i++ {
		boundary = append(boundary, i*stride, i*stride+n-1)
	}
	prog.Add(&compiler.Loop{
		Name: "init-boundary", Parallel: false, Lo: 0, Hi: len(boundary),
		Writes: []compiler.Write{{Array: "A", At: func(k int) int { return boundary[k] }}},
		Body: func(k int, _ func(int) mem.Word) []mem.Word {
			e := boundary[k]
			return []mem.Word{seed(e/stride, e%stride)}
		},
	})
	prog.Add(&compiler.TimeLoop{
		Iters: iters,
		Body: []compiler.Stmt{
			&compiler.Loop{
				Name: "stencil", Parallel: true, Lo: 0, Hi: d,
				Reads: []compiler.Read{
					{Array: "A", At: func(k int) int { i, j := ij(k); return (i-1)*stride + j }},
					{Array: "A", At: func(k int) int { i, j := ij(k); return (i+1)*stride + j }},
					{Array: "A", At: func(k int) int { i, j := ij(k); return i*stride + j - 1 }},
					{Array: "A", At: func(k int) int { i, j := ij(k); return i*stride + j + 1 }},
				},
				Writes: []compiler.Write{{Array: "B", At: func(k int) int { i, j := ij(k); return i*stride + j }}},
				Body: func(k int, read func(int) mem.Word) []mem.Word {
					return []mem.Word{(read(0) + read(1) + read(2) + read(3)) / 4}
				},
				WorkCycles: 4,
			},
			&compiler.Loop{
				Name: "copy", Parallel: true, Lo: 0, Hi: d,
				Reads:  []compiler.Read{{Array: "B", At: func(k int) int { i, j := ij(k); return i*stride + j }}},
				Writes: []compiler.Write{{Array: "A", At: func(k int) int { i, j := ij(k); return i*stride + j }}},
				Body: func(k int, read func(int) mem.Word) []mem.Word {
					return []mem.Word{read(0)}
				},
				WorkCycles: 1,
			},
		},
	})
	return &compiler.IRWorkload{Name: "jacobi", Prog: prog, Threads: threads}
}
