package jacobi

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mesi"
	"repro/internal/topo"
)

func hierFor(mode compiler.Mode) engine.Hierarchy {
	m := topo.NewInterBlock()
	if mode == compiler.ModeHCC {
		return mesi.New(m, mesi.DefaultConfig(m))
	}
	return core.New(m, core.DefaultConfig(m))
}

func TestJacobiAllModes(t *testing.T) {
	for _, mode := range compiler.Modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			w := New(Test, 32)
			if _, err := w.Run(hierFor(mode), mode); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Jacobi is the paper's showcase for level-adaptive instructions: most
// neighbor exchanges stay inside a block, so Addr+L's global operations
// drop well below Addr's (Figure 11 reports ~25% remaining).
func TestJacobiGlobalOpsDropSharply(t *testing.T) {
	run := func(mode compiler.Mode) (wb, inv int64) {
		h := hierFor(mode).(*core.Hierarchy)
		if _, err := New(Test, 32).Run(h, mode); err != nil {
			t.Fatal(err)
		}
		return h.GlobalOps()
	}
	wbAddr, invAddr := run(compiler.ModeAddr)
	wbAdpt, invAdpt := run(compiler.ModeAddrL)
	if f := float64(wbAdpt) / float64(wbAddr); f > 0.6 {
		t.Errorf("global WB fraction remaining = %.2f, want well below 0.6 (%d vs %d)", f, wbAdpt, wbAddr)
	}
	if f := float64(invAdpt) / float64(invAddr); f > 0.6 {
		t.Errorf("global INV fraction remaining = %.2f, want well below 0.6 (%d vs %d)", f, invAdpt, invAddr)
	}
}

// The same annotated binary must run correctly under a different
// thread-to-block mapping (Section V-B's portability requirement).
func TestJacobiUnderShuffledThreadMap(t *testing.T) {
	m := topo.NewInterBlock()
	h := core.New(m, core.DefaultConfig(m))
	// Reverse the mapping: thread t runs conceptually in block 3-t/8.
	// (Threads still execute on their cores; the ThreadMap is what the
	// level-adaptive hardware consults, so a wrong map that still covers
	// reality differently exercises the global fallback paths.)
	for t2 := 0; t2 < 32; t2++ {
		h.MapThread(t2, m.BlockOf(t2))
	}
	w := New(Test, 32)
	if _, err := w.Run(h, compiler.ModeAddrL); err != nil {
		t.Fatal(err)
	}
}
