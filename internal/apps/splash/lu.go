package splash

import (
	"fmt"

	"repro/internal/annotate"
	"repro/internal/mem"
	"repro/internal/workload"
)

// LU reproduces the SPLASH-2 blocked dense factorization skeleton: for
// each step k, the owner of the diagonal block factors it; after a
// barrier, owners of the perimeter blocks update them against the
// diagonal; after another barrier, owners of the interior blocks apply a
// block multiply-accumulate against the perimeter. Blocks are assigned
// round-robin to threads. Arithmetic is uint32 (exact), with the genuine
// O(b³) inner block product.
//
// The contiguous variant stores each block contiguously ("blocked" layout,
// SPLASH's LU-cont); the non-contiguous variant stores the matrix
// row-major, so a block's rows are scattered and adjacent blocks share
// cache lines (false sharing — SPLASH's LU-non-cont).
//
// Table I: Main = Barrier.
func LU(sz Size, threads int, contiguous bool) *workload.Workload {
	b := 16
	nb := pick(sz, 3, 6) // nb×nb blocks of b×b
	n := nb * b
	ar := mem.NewArena(4096)
	mat := workload.NewArray(ar, n*n)

	// Element index for (i,j) depending on layout.
	idx := func(i, j int) int {
		if contiguous {
			bi, bj := i/b, j/b
			return (bi*nb+bj)*b*b + (i%b)*b + (j % b)
		}
		return i*n + j
	}
	owner := func(bi, bj int) int { return (bi*nb + bj) % threads }
	initVal := func(i, j int) mem.Word { return mem.Word(uint32(i*n+j)*2246822519 + 1) }

	// Sequential reference over a plain slice (same algorithm).
	ref := make([]mem.Word, n*n)
	at := func(i, j int) *mem.Word { return &ref[idx(i, j)] }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			*at(i, j) = initVal(i, j)
		}
	}
	for k := 0; k < nb; k++ {
		// Factor diagonal block (elementwise pseudo-factorization).
		for i := k * b; i < (k+1)*b; i++ {
			for j := k * b; j < (k+1)*b; j++ {
				*at(i, j) = *at(i, j)*3 + 1
			}
		}
		// Perimeter updates against the diagonal.
		for t := k + 1; t < nb; t++ {
			for x := 0; x < b; x++ {
				for y := 0; y < b; y++ {
					*at(k*b+x, t*b+y) += *at(k*b+x, k*b+y) * 7
					*at(t*b+x, k*b+y) += *at(k*b+x, k*b+y) * 5
				}
			}
		}
		// Interior block multiply-accumulate.
		for bi := k + 1; bi < nb; bi++ {
			for bj := k + 1; bj < nb; bj++ {
				for x := 0; x < b; x++ {
					for z := 0; z < b; z++ {
						a := *at(bi*b+x, k*b+z)
						for y := 0; y < b; y++ {
							*at(bi*b+x, bj*b+y) += a * *at(k*b+z, bj*b+y)
						}
					}
				}
			}
		}
	}

	body := func(p *annotate.P) {
		me := p.ID()
		// Parallel init: thread owns blocks round-robin.
		for bi := 0; bi < nb; bi++ {
			for bj := 0; bj < nb; bj++ {
				if owner(bi, bj) != me {
					continue
				}
				for x := 0; x < b; x++ {
					for y := 0; y < b; y++ {
						i, j := bi*b+x, bj*b+y
						p.Store(mat.At(idx(i, j)), initVal(i, j))
					}
				}
			}
		}
		p.BarrierSync(0)
		for k := 0; k < nb; k++ {
			if owner(k, k) == me {
				for i := k * b; i < (k+1)*b; i++ {
					for j := k * b; j < (k+1)*b; j++ {
						v := p.Load(mat.At(idx(i, j)))
						p.Store(mat.At(idx(i, j)), v*3+1)
					}
				}
			}
			p.BarrierSync(0)
			for t := k + 1; t < nb; t++ {
				doRow := owner(k, t) == me
				doCol := owner(t, k) == me
				if !doRow && !doCol {
					continue
				}
				for x := 0; x < b; x++ {
					for y := 0; y < b; y++ {
						d := p.Load(mat.At(idx(k*b+x, k*b+y)))
						if doRow {
							v := p.Load(mat.At(idx(k*b+x, t*b+y)))
							p.Store(mat.At(idx(k*b+x, t*b+y)), v+d*7)
						}
						if doCol {
							v := p.Load(mat.At(idx(t*b+x, k*b+y)))
							p.Store(mat.At(idx(t*b+x, k*b+y)), v+d*5)
						}
					}
				}
			}
			p.BarrierSync(0)
			for bi := k + 1; bi < nb; bi++ {
				for bj := k + 1; bj < nb; bj++ {
					if owner(bi, bj) != me {
						continue
					}
					for x := 0; x < b; x++ {
						for z := 0; z < b; z++ {
							a := p.Load(mat.At(idx(bi*b+x, k*b+z)))
							for y := 0; y < b; y++ {
								c := p.Load(mat.At(idx(bi*b+x, bj*b+y)))
								u := p.Load(mat.At(idx(k*b+z, bj*b+y)))
								p.Compute(1)
								p.Store(mat.At(idx(bi*b+x, bj*b+y)), c+a*u)
							}
						}
					}
				}
			}
			p.BarrierSync(0)
		}
	}

	verify := func(m *mem.Memory) error {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got := m.ReadWord(mat.At(idx(i, j))); got != *at(i, j) {
					return fmt.Errorf("lu(%v): element (%d,%d) = %d, want %d", contiguous, i, j, got, *at(i, j))
				}
			}
		}
		return nil
	}

	name := "lu-cont"
	if !contiguous {
		name = "lu-noncont"
	}
	return &workload.Workload{
		Name:    name,
		Threads: threads,
		Main:    []string{"barrier"},
		Body: func(p *annotate.P) {
			body(p)
		},
		Verify: verify,
	}
}
