package splash

import (
	"fmt"

	"repro/internal/annotate"
	"repro/internal/mem"
	"repro/internal/workload"
)

// Barnes reproduces the SPLASH-2 Barnes-Hut skeleton at grid granularity:
// a shared spatial structure is built concurrently under per-cell locks
// (tree build), and after a barrier every thread walks neighboring cells
// of its bodies to accumulate forces — reads of data produced by other
// threads partly outside critical sections.
//
// Bodies live on a g×g cell grid; force on a body is a commutative sum
// over bodies in the 3×3 cell neighborhood, so results are independent of
// insertion order and verification is exact.
//
// Table I: Main = Barrier, outside critical; Other = Critical.
func Barnes(sz Size, threads int) *workload.Workload {
	nbodies := pick(sz, 96, 512)
	g := 6
	cellCap := nbodies // worst case
	const (
		lockBase = 200
	)
	ar := mem.NewArena(4096)
	count := workload.NewArray(ar, g*g)
	lists := workload.NewArray(ar, g*g*cellCap)
	force := workload.NewArray(ar, nbodies)

	posOf := func(b int) (cx, cy int) {
		h := uint32(b) * 2654435761
		return int(h % uint32(g)), int((h / 16) % uint32(g))
	}
	massOf := func(b int) mem.Word { return mem.Word(uint32(b)*40503 + 11) }

	// Sequential reference: per-cell membership, then neighborhood sums.
	cells := make([][]int, g*g)
	for b := 0; b < nbodies; b++ {
		cx, cy := posOf(b)
		cells[cy*g+cx] = append(cells[cy*g+cx], b)
	}
	ref := make([]mem.Word, nbodies)
	for b := 0; b < nbodies; b++ {
		cx, cy := posOf(b)
		var f mem.Word
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				x, y := cx+dx, cy+dy
				if x < 0 || x >= g || y < 0 || y >= g {
					continue
				}
				for _, o := range cells[y*g+x] {
					if o != b {
						f += massOf(b)*3 + massOf(o)*7
					}
				}
			}
		}
		ref[b] = f
	}

	body := func(p *annotate.P) {
		lo, hi := workload.ChunkOf(nbodies, p.ID(), threads)
		// Build phase: insert bodies under per-cell locks.
		for b := lo; b < hi; b++ {
			cx, cy := posOf(b)
			c := cy*g + cx
			p.CSEnter(lockBase + c)
			n := p.Load(count.At(c))
			p.Store(lists.At(c*cellCap+int(n)), mem.Word(b))
			p.Store(count.At(c), n+1)
			p.CSExit(lockBase + c)
		}
		p.BarrierSync(0)
		// Force phase: read 3×3 neighborhoods built by other threads.
		for b := lo; b < hi; b++ {
			cx, cy := posOf(b)
			var f mem.Word
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					x, y := cx+dx, cy+dy
					if x < 0 || x >= g || y < 0 || y >= g {
						continue
					}
					c := y*g + x
					n := int(p.Load(count.At(c)))
					for k := 0; k < n; k++ {
						o := int(p.Load(lists.At(c*cellCap + k)))
						if o != b {
							p.Compute(2)
							f += massOf(b)*3 + massOf(o)*7
						}
					}
				}
			}
			p.Store(force.At(b), f)
		}
		p.BarrierSync(0)
	}

	verify := func(m *mem.Memory) error {
		for b := 0; b < nbodies; b++ {
			if got := m.ReadWord(force.At(b)); got != ref[b] {
				return fmt.Errorf("barnes: force[%d] = %d, want %d", b, got, ref[b])
			}
		}
		return nil
	}

	return &workload.Workload{
		Name:    "barnes",
		Threads: threads,
		Pattern: annotate.Pattern{OCC: true},
		Main:    []string{"barrier", "outside-critical"},
		Other:   []string{"critical"},
		Body:    body,
		Verify:  verify,
	}
}
