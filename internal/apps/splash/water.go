package splash

import (
	"fmt"
	"sort"

	"repro/internal/annotate"
	"repro/internal/mem"
	"repro/internal/workload"
)

// Water reproduces the SPLASH-2 Water codes: per-timestep phases separated
// by barriers, with pairwise force accumulation into shared per-molecule
// arrays protected by per-molecule locks. The nsquared variant visits all
// molecule pairs; the spatial variant places molecules into 1D cells and
// only interacts molecules of the same or adjacent cells, which both cuts
// the work and (as in the paper's classification) makes synchronization
// comparatively coarse.
//
// Force contributions are commutative uint32 sums, so the result does not
// depend on accumulation order and verification is exact.
//
// Table I: Main = Barrier, critical.
func Water(sz Size, threads int, spatial bool) *workload.Workload {
	nmol := pick(sz, 24, 64)
	steps := 2
	ncells := 6
	const lockBase = 100
	ar := mem.NewArena(4096)
	pos := workload.NewArray(ar, nmol)
	frc := workload.NewArray(ar, nmol)

	initPos := func(i int) mem.Word { return mem.Word(uint32(i)*2654435761%1024 + 1) }
	cellOf := func(v mem.Word) int { return int(v) * ncells / 1026 }
	interact := func(a, b mem.Word) mem.Word { return (a+b)*3 + (a ^ b) }
	move := func(v, f mem.Word) mem.Word { return (v + f%17) % 1024 }

	// Sequential reference.
	rp := make([]mem.Word, nmol)
	rf := make([]mem.Word, nmol)
	for i := range rp {
		rp[i] = initPos(i)
	}
	for s := 0; s < steps; s++ {
		for i := range rf {
			rf[i] = 0
		}
		for i := 0; i < nmol; i++ {
			for j := i + 1; j < nmol; j++ {
				if spatial {
					ci, cj := cellOf(rp[i]), cellOf(rp[j])
					if ci-cj > 1 || cj-ci > 1 {
						continue
					}
				}
				g := interact(rp[i], rp[j])
				rf[i] += g
				rf[j] += g * 2
			}
		}
		for i := 0; i < nmol; i++ {
			rp[i] = move(rp[i], rf[i])
		}
	}

	body := func(p *annotate.P) {
		lo, hi := workload.ChunkOf(nmol, p.ID(), threads)
		for i := lo; i < hi; i++ {
			p.Store(pos.At(i), initPos(i))
		}
		p.BarrierSync(0)
		for s := 0; s < steps; s++ {
			// Clear owned force slots.
			for i := lo; i < hi; i++ {
				p.Store(frc.At(i), 0)
			}
			p.BarrierSync(0)
			// Pairwise interactions for owned i. The nsquared variant
			// locks per pair update (its fine-grain structure); the
			// spatial variant accumulates locally and flushes once per
			// touched molecule, which is what makes its synchronization
			// coarse in the paper's classification.
			acc := make(map[int]mem.Word)
			for i := lo; i < hi; i++ {
				pi := p.Load(pos.At(i))
				var selfAcc mem.Word
				for j := i + 1; j < nmol; j++ {
					pj := p.Load(pos.At(j))
					if spatial {
						ci, cj := cellOf(pi), cellOf(pj)
						if ci-cj > 1 || cj-ci > 1 {
							continue
						}
					}
					p.Compute(224)
					g := interact(pi, pj)
					selfAcc += g
					if spatial {
						acc[j] += g * 2
						continue
					}
					// Cross-thread accumulation under molecule j's lock.
					p.CSEnter(lockBase + j)
					fj := p.Load(frc.At(j))
					p.Store(frc.At(j), fj+g*2)
					p.CSExit(lockBase + j)
				}
				if spatial {
					acc[i] += selfAcc
					continue
				}
				p.CSEnter(lockBase + i)
				fi := p.Load(frc.At(i))
				p.Store(frc.At(i), fi+selfAcc)
				p.CSExit(lockBase + i)
			}
			if spatial {
				keys := make([]int, 0, len(acc))
				for j := range acc {
					keys = append(keys, j)
				}
				sort.Ints(keys)
				// One batched flush per thread per step: this is what
				// makes spatial's synchronization coarse in Table I's
				// classification.
				p.CSEnter(lockBase)
				for _, j := range keys {
					fj := p.Load(frc.At(j))
					p.Store(frc.At(j), fj+acc[j])
				}
				p.CSExit(lockBase)
			}
			p.BarrierSync(0)
			// Integrate owned molecules.
			for i := lo; i < hi; i++ {
				v := p.Load(pos.At(i))
				f := p.Load(frc.At(i))
				p.Compute(2)
				p.Store(pos.At(i), move(v, f))
			}
			p.BarrierSync(0)
		}
	}

	verify := func(m *mem.Memory) error {
		for i := 0; i < nmol; i++ {
			if got := m.ReadWord(pos.At(i)); got != rp[i] {
				return fmt.Errorf("water(spatial=%v): pos[%d] = %d, want %d", spatial, i, got, rp[i])
			}
			if got := m.ReadWord(frc.At(i)); got != rf[i] {
				return fmt.Errorf("water(spatial=%v): force[%d] = %d, want %d", spatial, i, got, rf[i])
			}
		}
		return nil
	}

	name := "water-nsq"
	if spatial {
		name = "water-sp"
	}
	return &workload.Workload{
		Name:    name,
		Threads: threads,
		Main:    []string{"barrier", "critical"},
		Body:    body,
		Verify:  verify,
	}
}
