package splash

import (
	"fmt"

	"repro/internal/annotate"
	"repro/internal/mem"
	"repro/internal/workload"
)

// Ocean reproduces the SPLASH-2 ocean simulation skeleton: red-black
// relaxation sweeps over a shared 2D grid with global barriers between
// colors and iterations, plus a per-iteration residual accumulation into a
// global word inside a critical section.
//
// The contiguous variant assigns each thread a contiguous band of rows
// (SPLASH's "contiguous partitions" 4D layout: a thread's data is local);
// the non-contiguous variant deals rows round-robin, so every thread's
// rows interleave with every other's and boundary sharing is pervasive.
// Red cells read only black cells and vice versa, so the computation is
// deterministic regardless of partitioning; integer averaging keeps it
// exact.
//
// Table I: Main = Barrier, critical.
func Ocean(sz Size, threads int, contiguous bool) *workload.Workload {
	n := pick(sz, 18, 130) // grid (n)x(n) including fixed boundary
	iters := pick(sz, 2, 3)
	// The contiguous variant models SPLASH's 4D-array layout: rows padded
	// to cache-line multiples, so no two threads' data share a line. The
	// non-contiguous variant models the plain 2D-array layout: rows are
	// packed, so lines straddle row boundaries and threads false-share at
	// band edges.
	stride := n
	if contiguous {
		stride = (n + 15) &^ 15
	}
	const lockResid = 1
	ar := mem.NewArena(4096)
	grid := workload.NewArray(ar, n*stride)
	resid := workload.NewArray(ar, 1)

	initVal := func(i, j int) mem.Word { return mem.Word(uint32(i*stride+j)*2246822519 + 5) }
	rowsOf := func(t int) []int {
		lo, hi := workload.ChunkOf(n-2, t, threads)
		var rows []int
		for r := lo + 1; r <= hi; r++ {
			rows = append(rows, r)
		}
		return rows
	}

	// Sequential reference.
	ref := make([]mem.Word, n*stride)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ref[i*stride+j] = initVal(i, j)
		}
	}
	var refResid mem.Word
	for it := 0; it < iters; it++ {
		for color := 0; color < 2; color++ {
			for i := 1; i < n-1; i++ {
				for j := 1; j < n-1; j++ {
					if (i+j)%2 != color {
						continue
					}
					ref[i*stride+j] = (ref[(i-1)*stride+j] + ref[(i+1)*stride+j] + ref[i*stride+j-1] + ref[i*stride+j+1]) / 4
				}
			}
		}
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				refResid += ref[i*stride+j] % 97
			}
		}
	}

	body := func(p *annotate.P) {
		rows := rowsOf(p.ID())
		// Parallel init: interior rows by owner, boundary by thread 0.
		for _, i := range rows {
			for j := 0; j < n; j++ {
				p.Store(grid.At(i*stride+j), initVal(i, j))
			}
		}
		if p.ID() == 0 {
			for j := 0; j < n; j++ {
				p.Store(grid.At(j), initVal(0, j))
				p.Store(grid.At((n-1)*stride+j), initVal(n-1, j))
			}
		}
		p.BarrierSync(0)
		for it := 0; it < iters; it++ {
			for color := 0; color < 2; color++ {
				for _, i := range rows {
					for j := 1; j < n-1; j++ {
						if (i+j)%2 != color {
							continue
						}
						up := p.Load(grid.At((i-1)*stride + j))
						dn := p.Load(grid.At((i+1)*stride + j))
						lf := p.Load(grid.At(i*stride + j - 1))
						rt := p.Load(grid.At(i*stride + j + 1))
						p.Compute(8)
						p.Store(grid.At(i*stride+j), (up+dn+lf+rt)/4)
					}
				}
				p.BarrierSync(0)
			}
			var local mem.Word
			for _, i := range rows {
				for j := 1; j < n-1; j++ {
					local += p.Load(grid.At(i*stride+j)) % 97
				}
			}
			p.CSEnter(lockResid)
			r := p.Load(resid.At(0))
			p.Store(resid.At(0), r+local)
			p.CSExit(lockResid)
			p.BarrierSync(0)
		}
	}

	verify := func(m *mem.Memory) error {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got := m.ReadWord(grid.At(i*stride + j)); got != ref[i*stride+j] {
					return fmt.Errorf("ocean(%v): cell (%d,%d) = %d, want %d", contiguous, i, j, got, ref[i*stride+j])
				}
			}
		}
		return workload.CheckWord(m, resid.At(0), refResid, "ocean residual")
	}

	name := "ocean-cont"
	if !contiguous {
		name = "ocean-noncont"
	}
	return &workload.Workload{
		Name:    name,
		Threads: threads,
		Main:    []string{"barrier", "critical"},
		Body:    body,
		Verify:  verify,
	}
}
