// Package splash provides scaled-down reimplementations of the SPLASH-2
// applications the paper uses for intra-block evaluation (Section VI):
// FFT, LU (contiguous and non-contiguous), Cholesky, Barnes, Raytrace,
// Volrend, Ocean (contiguous and non-contiguous), and Water (nsquared and
// spatial). Each kernel reproduces its Table I communication-pattern mix —
// barriers, critical sections, flags, outside-critical-section
// communication, and data races — with real shared-memory computation over
// the simulated address space, scaled so cycle-level simulation stays
// fast. Every kernel self-verifies against a sequential reference, so a
// configuration that misses a required WB or INV fails the run rather than
// silently reporting timing for a wrong execution.
//
// Arithmetic is exact (uint32 wraparound, integer averages), which makes
// verification bit-exact, and all per-molecule/per-cell accumulations are
// commutative so results are independent of dynamic task assignment.
package splash

import "repro/internal/workload"

// Size selects a problem scale.
type Size int

const (
	// Test is small enough for unit tests across every configuration.
	Test Size = iota
	// Bench is the scale used by the Figure 9/10 harness.
	Bench
)

// All returns all eleven application variants (Figure 9's x-axis) at the
// given size for the given thread count.
func All(sz Size, threads int) []*workload.Workload {
	return []*workload.Workload{
		FFT(sz, threads),
		LU(sz, threads, true),
		LU(sz, threads, false),
		Cholesky(sz, threads),
		Barnes(sz, threads),
		Raytrace(sz, threads),
		Volrend(sz, threads),
		Ocean(sz, threads, true),
		Ocean(sz, threads, false),
		Water(sz, threads, false),
		Water(sz, threads, true),
	}
}

// pick returns a or b depending on sz.
func pick(sz Size, test, bench int) int {
	if sz == Test {
		return test
	}
	return bench
}
