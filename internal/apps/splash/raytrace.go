package splash

import (
	"fmt"

	"repro/internal/annotate"
	"repro/internal/mem"
	"repro/internal/workload"
)

// Raytrace reproduces the SPLASH-2 ray tracer's scheduling structure: a
// read-only scene, a global job queue of ray bundles drained with very
// frequent, very small critical sections (the paper singles Raytrace out
// for its fine-grain lock structure), and a racy start flag communicated
// per Figure 6b. Each job's result is a pure function of the scene, so
// results are independent of which thread processes which job.
//
// Table I: Main = Critical; Other = Barrier, data race.
func Raytrace(sz Size, threads int) *workload.Workload {
	jobs := pick(sz, 64, 256)
	sceneLen := pick(sz, 256, 4096)
	jobWork := pick(sz, 8, 16) // scene samples per job
	const lockQueue = 1
	ar := mem.NewArena(4096)
	start := workload.NewArray(ar, 1) // racy flag word
	qHead := workload.NewArray(ar, 1)
	scene := workload.NewArray(ar, sceneLen)
	out := workload.NewArray(ar, jobs)

	sceneVal := func(i int) mem.Word { return mem.Word(uint32(i)*2246822519 + 3) }
	// Sequential reference.
	ref := make([]mem.Word, jobs)
	for j := 0; j < jobs; j++ {
		var acc mem.Word = mem.Word(j)
		for k := 0; k < jobWork; k++ {
			s := sceneVal((j*jobWork + k*7) % sceneLen)
			acc = acc*31 + s
		}
		ref[j] = acc
	}

	body := func(p *annotate.P) {
		if p.ID() == 0 {
			// Thread 0 builds the scene, then releases the workers with a
			// racy flag (Figure 6b): scene ranges are the payload.
			for i := 0; i < sceneLen; i++ {
				p.Store(scene.At(i), sceneVal(i))
			}
			p.RacePublish(start.At(0), 1, scene.Whole(), qHead.Slice(0, 1))
		} else {
			p.RaceSpin(start.At(0), func(v mem.Word) bool { return v == 1 },
				scene.Whole(), qHead.Slice(0, 1))
		}
		for {
			p.CSEnter(lockQueue)
			j := int(p.Load(qHead.At(0)))
			p.Store(qHead.At(0), mem.Word(j+1))
			p.CSExit(lockQueue)
			if j >= jobs {
				break
			}
			var acc mem.Word = mem.Word(j)
			for k := 0; k < jobWork; k++ {
				s := p.Load(scene.At((j*jobWork + k*7) % sceneLen))
				p.Compute(8)
				acc = acc*31 + s
			}
			p.Store(out.At(j), acc)
		}
		p.BarrierSync(0)
	}

	verify := func(m *mem.Memory) error {
		for j := 0; j < jobs; j++ {
			if got := m.ReadWord(out.At(j)); got != ref[j] {
				return fmt.Errorf("raytrace: job %d = %d, want %d", j, got, ref[j])
			}
		}
		return nil
	}

	return &workload.Workload{
		Name:    "raytrace",
		Threads: threads,
		Main:    []string{"critical"},
		Other:   []string{"barrier", "data-race"},
		Body:    body,
		Verify:  verify,
	}
}
