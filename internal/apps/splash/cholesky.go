package splash

import (
	"fmt"

	"repro/internal/annotate"
	"repro/internal/mem"
	"repro/internal/workload"
)

// Cholesky reproduces the SPLASH-2 sparse factorization skeleton: a shared
// task queue of columns drained inside small critical sections, with the
// actual column updates performed outside the critical section — the
// paper's canonical Outside-Critical-section Communication (OCC) pattern
// (Figure 4d). Dependencies between columns follow a synthetic elimination
// tree and are enforced with flag synchronization (the paper notes it
// converted Cholesky's busy-waits to flags).
//
// Column j's data is a pure function of its parents' data, so the result
// is independent of which thread processes which column, and verification
// is exact.
//
// Table I: Main = Outside critical; Other = Barrier, critical, flag.
func Cholesky(sz Size, threads int) *workload.Workload {
	cols := pick(sz, 24, 64)
	colLen := pick(sz, 16, 32)
	const (
		lockQueue = 1
		flagBase  = 100
	)
	ar := mem.NewArena(4096)
	qHead := workload.NewArray(ar, 1)
	data := workload.NewArray(ar, cols*colLen)

	parents := func(j int) []int {
		var ps []int
		if j > 0 {
			ps = append(ps, j-1)
		}
		if j/2 < j-1 {
			ps = append(ps, j/2)
		}
		return ps
	}
	seedVal := func(j, x int) mem.Word { return mem.Word(uint32(j*colLen+x)*2654435761 + 7) }

	// Sequential reference.
	ref := make([][]mem.Word, cols)
	for j := 0; j < cols; j++ {
		ref[j] = make([]mem.Word, colLen)
		for x := range ref[j] {
			v := seedVal(j, x)
			for pi, pcol := range parents(j) {
				mul := mem.Word(3 + 2*pi)
				v += ref[pcol][x] * mul
			}
			ref[j][x] = v
		}
	}

	body := func(p *annotate.P) {
		for {
			// Pop the next column inside a small critical section.
			p.CSEnter(lockQueue)
			j := int(p.Load(qHead.At(0)))
			p.Store(qHead.At(0), mem.Word(j+1))
			p.CSExit(lockQueue)
			if j >= cols {
				break
			}
			// Wait for parents, then read their columns — data produced
			// by other threads outside their critical sections.
			for _, pcol := range parents(j) {
				p.AwaitFlag(flagBase+pcol, 1)
			}
			for x := 0; x < colLen; x++ {
				v := seedVal(j, x)
				for pi, pcol := range parents(j) {
					mul := mem.Word(3 + 2*pi)
					v += p.Load(data.At(pcol*colLen+x)) * mul
				}
				p.Compute(2)
				p.Store(data.At(j*colLen+x), v)
			}
			p.NotifyFlag(flagBase+j, 1)
		}
		p.BarrierSync(0)
	}

	verify := func(m *mem.Memory) error {
		for j := 0; j < cols; j++ {
			for x := 0; x < colLen; x++ {
				if got := m.ReadWord(data.At(j*colLen + x)); got != ref[j][x] {
					return fmt.Errorf("cholesky: col %d elem %d = %d, want %d", j, x, got, ref[j][x])
				}
			}
		}
		return nil
	}

	return &workload.Workload{
		Name:    "cholesky",
		Threads: threads,
		Pattern: annotate.Pattern{OCC: true},
		Main:    []string{"outside-critical"},
		Other:   []string{"barrier", "critical", "flag"},
		Body:    body,
		Verify:  verify,
	}
}
