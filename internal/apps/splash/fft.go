package splash

import (
	"fmt"

	"repro/internal/annotate"
	"repro/internal/mem"
	"repro/internal/workload"
)

// FFT reproduces the SPLASH-2 FFT communication skeleton: log2(N) butterfly
// stages over a shared array with a global barrier between stages, so every
// stage's reads consume values produced by other threads in the previous
// stage. The butterflies compute an exact Walsh–Hadamard transform (the
// same stride-doubling access pattern as the radix-2 FFT, in integer
// arithmetic), making verification bit-exact.
//
// Table I: Main = Barrier.
func FFT(sz Size, threads int) *workload.Workload {
	n := pick(sz, 256, 32768)
	ar := mem.NewArena(4096)
	data := workload.NewArray(ar, n)

	// Sequential reference.
	ref := make([]mem.Word, n)
	for i := range ref {
		ref[i] = mem.Word(uint32(i) * 2654435761)
	}
	for stride := 1; stride < n; stride <<= 1 {
		for i := 0; i < n; i++ {
			if i&stride == 0 {
				a, b := ref[i], ref[i+stride]
				ref[i], ref[i+stride] = a+b, a-b
			}
		}
	}

	body := func(p *annotate.P) {
		lo, hi := data.Chunk(p.ID(), threads)
		// Parallel initialization of the owned chunk.
		for i := lo; i < hi; i++ {
			p.Store(data.At(i), mem.Word(uint32(i)*2654435761))
		}
		p.BarrierSync(0)
		for stride := 1; stride < n; stride <<= 1 {
			for i := lo; i < hi; i++ {
				if i&stride == 0 {
					a := p.Load(data.At(i))
					b := p.Load(data.At(i + stride))
					p.Compute(4) // butterfly arithmetic
					p.Store(data.At(i), a+b)
					p.Store(data.At(i+stride), a-b)
				}
			}
			p.BarrierSync(0)
		}
	}

	verify := func(m *mem.Memory) error {
		for i, want := range ref {
			if got := m.ReadWord(data.At(i)); got != want {
				return fmt.Errorf("fft: element %d = %d, want %d", i, got, want)
			}
		}
		return nil
	}

	return &workload.Workload{
		Name:    "fft",
		Threads: threads,
		Main:    []string{"barrier"},
		Body:    body,
		Verify:  verify,
	}
}
