package splash

import (
	"testing"

	"repro/internal/annotate"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mesi"
	"repro/internal/topo"
	"repro/internal/workload"
)

func hierarchyFor(cfg annotate.Config) engine.Hierarchy {
	m := topo.NewIntraBlock()
	if cfg.HCC {
		return mesi.New(m, mesi.DefaultConfig(m))
	}
	c := core.DefaultConfig(m)
	c.WriteThrough = cfg.WriteThrough
	if cfg.UseMEB {
		c.MEBEntries = 16
	}
	if cfg.UseIEB {
		c.IEBEntries = 4
	}
	return core.New(m, c)
}

// runAll verifies a workload under every Table II configuration.
func runAll(t *testing.T, w *workload.Workload) {
	t.Helper()
	for _, cfg := range annotate.IntraConfigs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			h := hierarchyFor(cfg)
			if _, err := w.Run(h, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFFT(t *testing.T)          { runAll(t, FFT(Test, 16)) }
func TestLUCont(t *testing.T)       { runAll(t, LU(Test, 16, true)) }
func TestLUNonCont(t *testing.T)    { runAll(t, LU(Test, 16, false)) }
func TestCholesky(t *testing.T)     { runAll(t, Cholesky(Test, 16)) }
func TestBarnes(t *testing.T)       { runAll(t, Barnes(Test, 16)) }
func TestRaytrace(t *testing.T)     { runAll(t, Raytrace(Test, 16)) }
func TestVolrend(t *testing.T)      { runAll(t, Volrend(Test, 16)) }
func TestOceanCont(t *testing.T)    { runAll(t, Ocean(Test, 16, true)) }
func TestOceanNonCont(t *testing.T) { runAll(t, Ocean(Test, 16, false)) }
func TestWaterNsq(t *testing.T)     { runAll(t, Water(Test, 16, false)) }
func TestWaterSp(t *testing.T)      { runAll(t, Water(Test, 16, true)) }

func TestAllRegistry(t *testing.T) {
	ws := All(Test, 16)
	if len(ws) != 11 {
		t.Fatalf("registry has %d workloads, want 11", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		if names[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		names[w.Name] = true
		if len(w.Main) == 0 {
			t.Errorf("%s: no Table I main pattern declared", w.Name)
		}
	}
}

func TestFFTFewThreads(t *testing.T) {
	w := FFT(Test, 4)
	h := hierarchyFor(annotate.Base)
	if _, err := w.Run(h, annotate.Base); err != nil {
		t.Fatal(err)
	}
}

// Every workload must also verify under the write-through extension
// configuration: stores self-downgrade continuously, no WBs are inserted,
// and correctness must still hold through INV alone.
func TestAllUnderWriteThrough(t *testing.T) {
	for _, w := range All(Test, 16) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			h := hierarchyFor(annotate.WT)
			if _, err := w.Run(h, annotate.WT); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Every workload must also verify under the Bloom-signature extension:
// critical-section invalidation becomes selective, everything else keeps
// the Base annotations.
func TestAllUnderBloomSignatures(t *testing.T) {
	for _, w := range All(Test, 16) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			m := topo.NewIntraBlock()
			c := core.DefaultConfig(m)
			c.BloomBits = 256
			c.BloomHashes = 2
			h := core.New(m, c)
			if _, err := w.Run(h, annotate.BloomSig); err != nil {
				t.Fatal(err)
			}
		})
	}
}
