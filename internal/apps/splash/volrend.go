package splash

import (
	"fmt"

	"repro/internal/annotate"
	"repro/internal/mem"
	"repro/internal/workload"
)

// Volrend reproduces the SPLASH-2 volume renderer's structure: several
// rendering phases separated by barriers; within each phase threads grab
// tile tasks from a shared per-phase counter inside a small critical
// section and write their tile's pixels outside it; the next phase reads
// neighboring tiles produced by whichever thread happened to grab them —
// outside-critical-section communication across phases.
//
// A tile's next-phase value is a pure function of its neighborhood, so
// results are independent of tile-to-thread assignment.
//
// Table I: Main = Barrier, outside critical.
func Volrend(sz Size, threads int) *workload.Workload {
	tiles := pick(sz, 32, 96)
	tileLen := 32
	phases := pick(sz, 3, 4)
	const lockBase = 1
	ar := mem.NewArena(4096)
	counters := workload.NewArray(ar, phases)
	imgA := workload.NewArray(ar, tiles*tileLen)
	imgB := workload.NewArray(ar, tiles*tileLen)

	initVal := func(i int) mem.Word { return mem.Word(uint32(i)*2654435761 + 13) }

	// Sequential reference.
	cur := make([]mem.Word, tiles*tileLen)
	nxt := make([]mem.Word, tiles*tileLen)
	for i := range cur {
		cur[i] = initVal(i)
	}
	for ph := 0; ph < phases; ph++ {
		for t := 0; t < tiles; t++ {
			left, right := (t+tiles-1)%tiles, (t+1)%tiles
			for x := 0; x < tileLen; x++ {
				nxt[t*tileLen+x] = cur[t*tileLen+x]*3 + cur[left*tileLen+x] + cur[right*tileLen+x]
			}
		}
		cur, nxt = nxt, cur
	}
	want := cur

	body := func(p *annotate.P) {
		lo, hi := workload.ChunkOf(tiles*tileLen, p.ID(), threads)
		for i := lo; i < hi; i++ {
			p.Store(imgA.At(i), initVal(i))
		}
		p.BarrierSync(0)
		src, dst := imgA, imgB
		for ph := 0; ph < phases; ph++ {
			for {
				p.CSEnter(lockBase)
				t := int(p.Load(counters.At(ph)))
				p.Store(counters.At(ph), mem.Word(t+1))
				p.CSExit(lockBase)
				if t >= tiles {
					break
				}
				left, right := (t+tiles-1)%tiles, (t+1)%tiles
				for x := 0; x < tileLen; x++ {
					c := p.Load(src.At(t*tileLen + x))
					l := p.Load(src.At(left*tileLen + x))
					r := p.Load(src.At(right*tileLen + x))
					p.Compute(16)
					p.Store(dst.At(t*tileLen+x), c*3+l+r)
				}
			}
			p.BarrierSync(0)
			src, dst = dst, src
		}
	}

	verify := func(m *mem.Memory) error {
		final := imgA
		if phases%2 == 1 {
			final = imgB
		}
		for i := 0; i < tiles*tileLen; i++ {
			if got := m.ReadWord(final.At(i)); got != want[i] {
				return fmt.Errorf("volrend: pixel %d = %d, want %d", i, got, want[i])
			}
		}
		return nil
	}

	return &workload.Workload{
		Name:    "volrend",
		Threads: threads,
		Pattern: annotate.Pattern{OCC: true},
		Main:    []string{"barrier", "outside-critical"},
		Body:    body,
		Verify:  verify,
	}
}
