// Package nas provides the three NAS Parallel Benchmark kernels the paper
// uses for inter-block evaluation (Section VI) — EP, IS, and CG — written
// in the compiler package's parallel IR. Their analysis properties match
// the paper's Figure 11 discussion: EP and IS communicate through
// reductions (no producer-consumer pairs, so level-adaptive instructions
// cannot help), while CG's sparse matrix-vector product reads the p vector
// through an indirection and is handled by the inspector-executor
// transformation.
package nas

import (
	"repro/internal/compiler"
	"repro/internal/mem"
)

// Size selects a problem scale.
type Size int

const (
	// Test is small enough for unit tests across every mode.
	Test Size = iota
	// Bench is the scale used by the Figure 11/12 harness.
	Bench
)

func pick(sz Size, test, bench int) int {
	if sz == Test {
		return test
	}
	return bench
}

func hash(i int) uint32 { return uint32(i)*2654435761 + 12345 }

// EP builds the embarrassingly-parallel kernel: heavy per-sample
// computation whose only communication is the reduction of per-sample
// results into shared bins and moment sums, followed by a serial report.
func EP(sz Size, threads int) *compiler.IRWorkload {
	n := pick(sz, 512, 4096)
	work := int64(pick(sz, 24, 200))
	const q = 16
	prog := compiler.NewProgram("ep")
	prog.Array("bins", q)
	prog.Array("sums", 2)
	prog.Array("report", q)

	prog.Add(&compiler.Loop{
		Name: "generate", Parallel: true, Lo: 0, Hi: n,
		Reduction: &compiler.Reduction{Array: "bins", At: func(i int) int { return int(hash(i) >> 28) }},
		Body: func(i int, _ func(int) mem.Word) []mem.Word {
			return []mem.Word{1}
		},
		WorkCycles: work, // the pseudo-random pair generation and acceptance test
	})
	prog.Add(&compiler.Loop{
		Name: "moments", Parallel: true, Lo: 0, Hi: n,
		Reduction: &compiler.Reduction{Array: "sums", At: func(i int) int { return i % 2 }},
		Body: func(i int, _ func(int) mem.Word) []mem.Word {
			return []mem.Word{mem.Word(hash(i) % 1000)}
		},
		WorkCycles: work / 2,
	})
	prog.Add(&compiler.Loop{
		Name: "report", Parallel: false, Lo: 0, Hi: q,
		Reads: []compiler.Read{
			{Array: "bins", At: func(j int) int { return j }},
			{Array: "sums", At: func(j int) int { return j % 2 }},
		},
		Writes: []compiler.Write{{Array: "report", At: func(j int) int { return j }}},
		Body: func(j int, read func(int) mem.Word) []mem.Word {
			return []mem.Word{read(0)*3 + read(1)}
		},
	})
	return &compiler.IRWorkload{Name: "ep", Prog: prog, Threads: threads}
}

// IS builds the integer-sort kernel: parallel key generation, a histogram
// reduction over shared buckets, a serial prefix scan, and a parallel
// ranking pass that reads the scan results.
func IS(sz Size, threads int) *compiler.IRWorkload {
	n := pick(sz, 512, 8192)
	const buckets = 64
	keyOf := func(i int) int { return int(hash(i) % buckets) }
	prog := compiler.NewProgram("is")
	prog.Array("keys", n)
	prog.Array("hist", buckets)
	prog.Array("prefix", buckets)
	prog.Array("rank", n)

	prog.Add(&compiler.Loop{
		Name: "keyinit", Parallel: true, Lo: 0, Hi: n,
		Writes: []compiler.Write{{Array: "keys", At: func(i int) int { return i }}},
		Body: func(i int, _ func(int) mem.Word) []mem.Word {
			return []mem.Word{mem.Word(keyOf(i))}
		},
		WorkCycles: 2,
	})
	prog.Add(&compiler.Loop{
		Name: "hist", Parallel: true, Lo: 0, Hi: n,
		Reads:     []compiler.Read{{Array: "keys", At: func(i int) int { return i }}},
		Reduction: &compiler.Reduction{Array: "hist", At: keyOf},
		Body: func(i int, read func(int) mem.Word) []mem.Word {
			_ = read(0) // the key load is the kernel's memory traffic
			return []mem.Word{1}
		},
		WorkCycles: 2,
	})
	prog.Add(&compiler.Loop{
		Name: "prefix", Parallel: false, Lo: 1, Hi: buckets,
		Reads: []compiler.Read{
			{Array: "prefix", At: func(j int) int { return j - 1 }},
			{Array: "hist", At: func(j int) int { return j - 1 }},
		},
		Writes: []compiler.Write{{Array: "prefix", At: func(j int) int { return j }}},
		Body: func(j int, read func(int) mem.Word) []mem.Word {
			return []mem.Word{read(0) + read(1)}
		},
	})
	prog.Add(&compiler.Loop{
		Name: "rank", Parallel: true, Lo: 0, Hi: n,
		Reads: []compiler.Read{
			{Array: "prefix", At: func(i int) int { return keyOf(i) }},
			{Array: "keys", At: func(i int) int { return i }},
		},
		Writes: []compiler.Write{{Array: "rank", At: func(i int) int { return i }}},
		Body: func(i int, read func(int) mem.Word) []mem.Word {
			return []mem.Word{read(0)*8 + read(1)%8}
		},
		WorkCycles: 2,
	})
	return &compiler.IRWorkload{Name: "is", Prog: prog, Threads: threads}
}

// CG builds the conjugate-gradient kernel's communication skeleton: an
// iterative sparse matrix-vector product whose reads of the p vector go
// through the colidx indirection (inspector-executor territory), followed
// by a direct vector update. The sparsity pattern mixes a local band with
// far columns, as in the paper's Figure 8 discussion.
func CG(sz Size, threads int) *compiler.IRWorkload {
	n := pick(sz, 96, 512)
	const nnz = 6
	iters := pick(sz, 2, 3)
	colOf := func(k int) int {
		i, s := k/nnz, k%nnz
		if s < 4 {
			return ((i + s - 2) + n) % n // local band
		}
		return (i*17 + s*31 + i*i%13) % n // far, irregular
	}
	prog := compiler.NewProgram("cg")
	prog.Array("colidx", n*nnz)
	prog.Array("aval", n*nnz)
	prog.Array("p", n)
	prog.Array("q", n)

	prog.Add(&compiler.Loop{
		Name: "init-idx", Parallel: true, Lo: 0, Hi: n * nnz,
		Writes: []compiler.Write{{Array: "colidx", At: func(k int) int { return k }}},
		Body: func(k int, _ func(int) mem.Word) []mem.Word {
			return []mem.Word{mem.Word(colOf(k))}
		},
	})
	prog.Add(&compiler.Loop{
		Name: "init-val", Parallel: true, Lo: 0, Hi: n * nnz,
		Writes: []compiler.Write{{Array: "aval", At: func(k int) int { return k }}},
		Body: func(k int, _ func(int) mem.Word) []mem.Word {
			return []mem.Word{mem.Word(hash(k)%7 + 1)}
		},
	})
	prog.Add(&compiler.Loop{
		Name: "init-p", Parallel: true, Lo: 0, Hi: n,
		Writes: []compiler.Write{{Array: "p", At: func(i int) int { return i }}},
		Body: func(i int, _ func(int) mem.Word) []mem.Word {
			return []mem.Word{mem.Word(hash(i) % 100)}
		},
	})

	// The matvec's reads of p are indirect through colidx; the reads of
	// aval are direct and thread-local under the aligned chunking.
	matvecReads := make([]compiler.Read, 0, 2*nnz)
	for s := 0; s < nnz; s++ {
		s := s
		matvecReads = append(matvecReads, compiler.Read{
			Array:      "p",
			At:         func(i int) int { return colOf(i*nnz + s) },
			Indirect:   true,
			IndexArray: "colidx",
			IndexAt:    func(i int) int { return i*nnz + s },
		})
	}
	for s := 0; s < nnz; s++ {
		s := s
		matvecReads = append(matvecReads, compiler.Read{
			Array: "aval",
			At:    func(i int) int { return i*nnz + s },
		})
	}
	prog.Add(&compiler.TimeLoop{
		Iters: iters,
		Body: []compiler.Stmt{
			&compiler.Loop{
				Name: "matvec", Parallel: true, Lo: 0, Hi: n,
				Reads:  matvecReads,
				Writes: []compiler.Write{{Array: "q", At: func(i int) int { return i }}},
				Body: func(i int, read func(int) mem.Word) []mem.Word {
					var sum mem.Word
					for s := 0; s < nnz; s++ {
						sum += read(nnz+s) * read(s)
					}
					return []mem.Word{sum}
				},
				WorkCycles: 6,
			},
			&compiler.Loop{
				Name: "update", Parallel: true, Lo: 0, Hi: n,
				Reads: []compiler.Read{
					{Array: "p", At: func(i int) int { return i }},
					{Array: "q", At: func(i int) int { return i }},
				},
				Writes: []compiler.Write{{Array: "p", At: func(i int) int { return i }}},
				Body: func(i int, read func(int) mem.Word) []mem.Word {
					return []mem.Word{read(0) + read(1)*3 + 1}
				},
				WorkCycles: 3,
			},
		},
	})
	return &compiler.IRWorkload{Name: "cg", Prog: prog, Threads: threads}
}

// EPHier is the hierarchical-reduction rewrite of EP that Section VII-C
// suggests as future work: samples first reduce into per-block partial
// bins whose merges use block-local critical sections (block-local WB and
// INV), and a second, much smaller stage combines the per-block partials
// into the global bins. The stage-2 chunking is aligned so each thread
// combines partials of its own block, so only blocks×Q merge operations
// ever go global instead of threads×Q.
func EPHier(sz Size, threads, blocks int) *compiler.IRWorkload {
	n := pick(sz, 512, 4096)
	const q = 16
	coresPerBlock := threads / blocks
	blockOfThread := func(t int) int { return t / coresPerBlock }
	// Owner of sample i under chunk scheduling, for the partial-bin index.
	per := (n + threads - 1) / threads
	prog := compiler.NewProgram("ep-hier")
	prog.Array("partial", blocks*q)
	prog.Array("bins", q)
	prog.Array("report", q)

	prog.Add(&compiler.Loop{
		Name: "generate-local", Parallel: true, Lo: 0, Hi: n,
		Reduction: &compiler.Reduction{
			Array:      "partial",
			At:         func(i int) int { return blockOfThread(i/per)*q + int(hash(i)>>28) },
			BlockLocal: true,
			BlockOf:    blockOfThread,
		},
		Body: func(i int, _ func(int) mem.Word) []mem.Word {
			return []mem.Word{1}
		},
		WorkCycles: 24,
	})
	prog.Add(&compiler.Loop{
		Name: "combine", Parallel: true, Lo: 0, Hi: blocks * q,
		Reads:     []compiler.Read{{Array: "partial", At: func(e int) int { return e }}},
		Reduction: &compiler.Reduction{Array: "bins", At: func(e int) int { return e % q }},
		Body: func(e int, read func(int) mem.Word) []mem.Word {
			return []mem.Word{read(0)}
		},
		WorkCycles: 2,
	})
	prog.Add(&compiler.Loop{
		Name: "report", Parallel: false, Lo: 0, Hi: q,
		Reads:  []compiler.Read{{Array: "bins", At: func(j int) int { return j }}},
		Writes: []compiler.Write{{Array: "report", At: func(j int) int { return j }}},
		Body: func(j int, read func(int) mem.Word) []mem.Word {
			return []mem.Word{read(0) * 3}
		},
	})
	return &compiler.IRWorkload{Name: "ep-hier", Prog: prog, Threads: threads}
}
