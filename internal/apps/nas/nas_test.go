package nas

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mesi"
	"repro/internal/topo"
)

func hierFor(mode compiler.Mode) engine.Hierarchy {
	m := topo.NewInterBlock()
	if mode == compiler.ModeHCC {
		return mesi.New(m, mesi.DefaultConfig(m))
	}
	return core.New(m, core.DefaultConfig(m))
}

func runAllModes(t *testing.T, mk func() *compiler.IRWorkload) {
	t.Helper()
	for _, mode := range compiler.Modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			w := mk()
			if _, err := w.Run(hierFor(mode), mode); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEP(t *testing.T) { runAllModes(t, func() *compiler.IRWorkload { return EP(Test, 32) }) }
func TestIS(t *testing.T) { runAllModes(t, func() *compiler.IRWorkload { return IS(Test, 32) }) }
func TestCG(t *testing.T) { runAllModes(t, func() *compiler.IRWorkload { return CG(Test, 32) }) }

// The Figure 11 mechanism: CG's level-adaptive INVs drop below Addr's
// global INVs (some matrix columns are block-local), while its global WBs
// stay put (the producer writes everything to L3, Section V-A.2).
func TestCGGlobalOpShape(t *testing.T) {
	run := func(mode compiler.Mode) (wb, inv int64) {
		h := hierFor(mode).(*core.Hierarchy)
		if _, err := CG(Test, 32).Run(h, mode); err != nil {
			t.Fatal(err)
		}
		return h.GlobalOps()
	}
	wbAddr, invAddr := run(compiler.ModeAddr)
	wbAdpt, invAdpt := run(compiler.ModeAddrL)
	if invAdpt >= invAddr {
		t.Errorf("CG global INVs: Addr+L %d not below Addr %d", invAdpt, invAddr)
	}
	if invAdpt == 0 {
		t.Error("CG should retain some global INVs (far columns cross blocks)")
	}
	ratio := float64(wbAdpt) / float64(wbAddr)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("CG global WBs should be ~unchanged: Addr+L %d vs Addr %d", wbAdpt, wbAddr)
	}
}

// EP and IS communicate through reductions: level-adaptive instructions
// bring (almost) no reduction in global operations.
func TestEPISGlobalOpShape(t *testing.T) {
	for _, mk := range []func() *compiler.IRWorkload{
		func() *compiler.IRWorkload { return EP(Test, 32) },
		func() *compiler.IRWorkload { return IS(Test, 32) },
	} {
		run := func(mode compiler.Mode) (wb, inv int64) {
			h := hierFor(mode).(*core.Hierarchy)
			w := mk()
			if _, err := w.Run(h, mode); err != nil {
				t.Fatal(err)
			}
			return h.GlobalOps()
		}
		wbAddr, invAddr := run(compiler.ModeAddr)
		wbAdpt, invAdpt := run(compiler.ModeAddrL)
		name := mk().Name
		if float64(wbAdpt) < 0.9*float64(wbAddr) {
			t.Errorf("%s: global WBs dropped too much under Addr+L: %d vs %d", name, wbAdpt, wbAddr)
		}
		if float64(invAdpt) < 0.75*float64(invAddr) {
			t.Errorf("%s: global INVs dropped too much under Addr+L: %d vs %d", name, invAdpt, invAddr)
		}
	}
}

func TestEPHier(t *testing.T) {
	runAllModes(t, func() *compiler.IRWorkload { return EPHier(Test, 32, 4) })
}

// The hierarchical rewrite must both compute the same histogram shape and
// slash global operations relative to the flat reduction under Addr+L.
func TestEPHierReducesGlobalOps(t *testing.T) {
	run := func(mk func() *compiler.IRWorkload) (wb, inv int64) {
		h := hierFor(compiler.ModeAddrL).(*core.Hierarchy)
		if _, err := mk().Run(h, compiler.ModeAddrL); err != nil {
			t.Fatal(err)
		}
		return h.GlobalOps()
	}
	wbFlat, invFlat := run(func() *compiler.IRWorkload { return EP(Test, 32) })
	wbHier, invHier := run(func() *compiler.IRWorkload { return EPHier(Test, 32, 4) })
	if wbHier >= wbFlat {
		t.Errorf("hierarchical EP global WBs %d not below flat %d", wbHier, wbFlat)
	}
	if invHier >= invFlat {
		t.Errorf("hierarchical EP global INVs %d not below flat %d", invHier, invFlat)
	}
}
