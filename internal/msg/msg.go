// Package msg implements the message-passing half of Programming Model 1
// (Section IV): MPI-style Send/Recv between blocks over an on-chip
// uncacheable shared buffer, with flag synchronization served by the
// shared-cache controller. Because the buffers are uncacheable, no WB or
// INV instructions are needed: a sender's words are globally visible as
// soon as they are written, exactly the property the paper exploits to
// make MPI_Send/MPI_Recv cheap on this machine.
//
// Broadcast needs no per-recipient copies: the sender writes once and
// every receiver reads the same buffer (Section IV's single-write
// broadcast). Nonblocking sends are modeled by deferring the completion
// wait to Wait, following the paper's reference to Friedley et al.'s
// shared-buffer MPI.
package msg

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/workload"
)

// Comm is a communicator: per-rank mailboxes in uncacheable shared memory
// plus the flag IDs used for rendezvous. Create one per machine with
// NewComm and share it across ranks (it is immutable after creation).
type Comm struct {
	ranks    int
	slots    int                // words per mailbox
	box      [][]workload.Array // box[dst][src]: one mailbox per ordered pair
	flagBase int
}

// NewComm builds a communicator for the given number of ranks with
// mailboxes of slotWords words, allocating from ar. flagBase namespaces
// the controller flags used for rendezvous.
func NewComm(ar *mem.Arena, ranks, slotWords, flagBase int) *Comm {
	c := &Comm{ranks: ranks, slots: slotWords, flagBase: flagBase}
	c.box = make([][]workload.Array, ranks)
	for dst := 0; dst < ranks; dst++ {
		c.box[dst] = make([]workload.Array, ranks)
		for src := 0; src < ranks; src++ {
			c.box[dst][src] = workload.NewArray(ar, slotWords)
		}
	}
	return c
}

// Ranks returns the communicator size.
func (c *Comm) Ranks() int { return c.ranks }

// pairFlag returns the flag ID sequencing messages from src to dst. The
// flag value counts completed transfers: the sender waits for value 2k
// (buffer free), posts the payload, sets 2k+1; the receiver waits for
// 2k+1, drains, sets 2k+2.
func (c *Comm) pairFlag(src, dst int) int {
	return c.flagBase + src*c.ranks + dst
}

// Rank is one rank's endpoint, bound to a guest thread's Proc.
type Rank struct {
	c    *Comm
	p    engine.Proc
	me   int
	sent map[int]int64 // per-peer completed send count
	rcvd map[int]int64 // per-peer completed receive count
}

// Attach binds rank me to processor p.
func (c *Comm) Attach(p engine.Proc, me int) *Rank {
	if me < 0 || me >= c.ranks {
		panic(fmt.Sprintf("msg: rank %d out of [0,%d)", me, c.ranks))
	}
	return &Rank{c: c, p: p, me: me, sent: make(map[int]int64), rcvd: make(map[int]int64)}
}

// Send transfers words to rank dst, blocking until the mailbox accepts it.
func (r *Rank) Send(dst int, words []mem.Word) {
	if len(words) > r.c.slots {
		panic(fmt.Sprintf("msg: message of %d words exceeds mailbox of %d", len(words), r.c.slots))
	}
	k := r.sent[dst]
	flag := r.c.pairFlag(r.me, dst)
	// Wait for the mailbox to be free (receiver drained message k-1).
	r.p.FlagWait(flag, 2*k)
	box := r.c.box[dst][r.me]
	for i, w := range words {
		r.p.StoreU(box.At(i), w)
	}
	r.p.FlagSet(flag, 2*k+1)
	r.sent[dst] = k + 1
}

// Recv blocks until a message from src arrives and returns n words.
func (r *Rank) Recv(src, n int) []mem.Word {
	if n > r.c.slots {
		panic(fmt.Sprintf("msg: receive of %d words exceeds mailbox of %d", n, r.c.slots))
	}
	k := r.rcvd[src]
	flag := r.c.pairFlag(src, r.me)
	r.p.FlagWait(flag, 2*k+1)
	box := r.c.box[r.me][src]
	out := make([]mem.Word, n)
	for i := range out {
		out[i] = r.p.LoadU(box.At(i))
	}
	r.p.FlagSet(flag, 2*k+2)
	r.rcvd[src] = k + 1
	return out
}

// Request is a pending nonblocking operation.
type Request struct {
	done func() []mem.Word
	out  []mem.Word
}

// Isend starts a nonblocking send: the payload is written immediately
// (the buffer write is cheap and uncacheable); completion — the free-slot
// rendezvous for the *next* send — is deferred to Wait. If the mailbox is
// still busy with the previous message, Isend itself performs the
// rendezvous first, as a shared-buffer MPI must.
func (r *Rank) Isend(dst int, words []mem.Word) *Request {
	r.Send(dst, words)
	return &Request{done: func() []mem.Word { return nil }}
}

// Irecv starts a nonblocking receive completed by Wait.
func (r *Rank) Irecv(src, n int) *Request {
	return &Request{done: func() []mem.Word { return r.Recv(src, n) }}
}

// Wait completes a request, returning received words (nil for sends).
func (req *Request) Wait() []mem.Word {
	if req.done != nil {
		req.out = req.done()
		req.done = nil
	}
	return req.out
}

// Bcast broadcasts words from root: the root writes its own mailbox once
// and raises one flag; every other rank reads the same buffer — no
// per-recipient copies (Section IV). All ranks must call Bcast; it
// returns the payload on every rank. gen distinguishes successive
// broadcasts (use a counter starting at 1). Because receivers do not
// acknowledge, successive broadcasts from the same root must be separated
// by a barrier.
func (c *Comm) Bcast(p engine.Proc, me, root int, words []mem.Word, gen int64, n int) []mem.Word {
	box := c.box[root][root]
	flag := c.flagBase + c.ranks*c.ranks + root
	if me == root {
		for i, w := range words {
			p.StoreU(box.At(i), w)
		}
		p.FlagSet(flag, gen)
		return words
	}
	p.FlagWait(flag, gen)
	out := make([]mem.Word, n)
	for i := range out {
		out[i] = p.LoadU(box.At(i))
	}
	return out
}
