package msg

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/topo"
)

func newMachine() (*core.Hierarchy, *mem.Arena) {
	m := topo.NewInterBlock()
	return core.New(m, core.DefaultConfig(m)), mem.NewArena(1 << 20)
}

func run(t *testing.T, h engine.Hierarchy, guests []engine.Guest) *engine.Result {
	t.Helper()
	res, err := engine.New(h, guests).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPingPong(t *testing.T) {
	h, ar := newMachine()
	c := NewComm(ar, 32, 16, 1000)
	var got []mem.Word
	guests := make([]engine.Guest, 32)
	for i := range guests {
		i := i
		guests[i] = func(p engine.Proc) {
			r := c.Attach(p, i)
			switch i {
			case 0:
				r.Send(8, []mem.Word{1, 2, 3})
				got = r.Recv(8, 3)
			case 8:
				in := r.Recv(0, 3)
				r.Send(0, []mem.Word{in[0] * 10, in[1] * 10, in[2] * 10})
			}
		}
	}
	run(t, h, guests)
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("pingpong result = %v", got)
	}
}

func TestBackToBackMessagesKeepOrder(t *testing.T) {
	h, ar := newMachine()
	c := NewComm(ar, 32, 4, 1000)
	var got []mem.Word
	guests := make([]engine.Guest, 32)
	for i := range guests {
		i := i
		guests[i] = func(p engine.Proc) {
			r := c.Attach(p, i)
			switch i {
			case 1:
				for k := 0; k < 5; k++ {
					r.Send(2, []mem.Word{mem.Word(100 + k)})
				}
			case 2:
				for k := 0; k < 5; k++ {
					got = append(got, r.Recv(1, 1)[0])
				}
			}
		}
	}
	run(t, h, guests)
	for k, v := range got {
		if v != mem.Word(100+k) {
			t.Fatalf("message %d = %d, want %d (FIFO violated)", k, v, 100+k)
		}
	}
}

func TestBroadcastSingleWrite(t *testing.T) {
	h, ar := newMachine()
	c := NewComm(ar, 32, 8, 2000)
	results := make([][]mem.Word, 32)
	guests := make([]engine.Guest, 32)
	for i := range guests {
		i := i
		guests[i] = func(p engine.Proc) {
			r := c.Bcast(p, i, 5, []mem.Word{7, 8, 9}, 1, 3)
			results[i] = r
		}
	}
	run(t, h, guests)
	for i, r := range results {
		if len(r) != 3 || r[0] != 7 || r[1] != 8 || r[2] != 9 {
			t.Errorf("rank %d broadcast = %v", i, r)
		}
	}
}

func TestNonblocking(t *testing.T) {
	h, ar := newMachine()
	c := NewComm(ar, 32, 8, 3000)
	var got []mem.Word
	guests := make([]engine.Guest, 32)
	for i := range guests {
		i := i
		guests[i] = func(p engine.Proc) {
			r := c.Attach(p, i)
			switch i {
			case 0:
				req := r.Isend(9, []mem.Word{42})
				p.Compute(1000)
				req.Wait()
			case 9:
				req := r.Irecv(0, 1)
				p.Compute(10)
				got = req.Wait()
			}
		}
	}
	run(t, h, guests)
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("nonblocking result = %v", got)
	}
}

func TestCrossBlockExchangeAllPairs(t *testing.T) {
	// Every rank sends its ID to rank (id+8)%32 — all cross-block.
	h, ar := newMachine()
	c := NewComm(ar, 32, 4, 4000)
	got := make([]mem.Word, 32)
	guests := make([]engine.Guest, 32)
	for i := range guests {
		i := i
		guests[i] = func(p engine.Proc) {
			r := c.Attach(p, i)
			dst := (i + 8) % 32
			src := (i + 24) % 32
			// The first send to a mailbox never blocks, so send-then-
			// receive is deadlock-free for a single exchange.
			r.Send(dst, []mem.Word{mem.Word(i)})
			got[i] = r.Recv(src, 1)[0]
		}
	}
	run(t, h, guests)
	for i := range got {
		want := mem.Word((i + 24) % 32)
		if got[i] != want {
			t.Errorf("rank %d received %d, want %d", i, got[i], want)
		}
	}
}

func TestOversizeMessagePanics(t *testing.T) {
	h, ar := newMachine()
	c := NewComm(ar, 2, 2, 5000)
	guests := []engine.Guest{
		func(p engine.Proc) {
			r := c.Attach(p, 0)
			r.Send(1, make([]mem.Word, 10))
		},
		func(p engine.Proc) {},
	}
	if _, err := engine.New(h, guests).Run(); err == nil {
		t.Error("oversize send should fail")
	}
}
