package hwsync

import (
	"sort"
	"testing"
	"testing/quick"
)

func fixedCost(rt int64) CostFunc { return func(int, int) int64 { return rt } }

func TestLockFreeAcquire(t *testing.T) {
	c := New(fixedCost(10))
	at, ok := c.Acquire(0, 1, 100)
	if !ok || at != 110 {
		t.Fatalf("acquire = (%d,%v)", at, ok)
	}
	if holder, held := c.HeldBy(1); !held || holder != 0 {
		t.Error("lock should be held by 0")
	}
}

func TestLockQueueFIFO(t *testing.T) {
	c := New(fixedCost(10))
	c.Acquire(0, 1, 0)
	if _, ok := c.Acquire(1, 1, 5); ok {
		t.Fatal("second acquire should block")
	}
	if _, ok := c.Acquire(2, 1, 6); ok {
		t.Fatal("third acquire should block")
	}
	if c.QueueLen(1) != 2 {
		t.Fatalf("queue len = %d", c.QueueLen(1))
	}
	g, ok := c.Release(0, 1, 50)
	if !ok || g.Thread != 1 {
		t.Fatalf("release grant = %+v ok=%v, want thread 1", g, ok)
	}
	if g.At != 60 { // releaser half RT + grantee half RT
		t.Errorf("grant time = %d, want 60", g.At)
	}
	g, ok = c.Release(1, 1, 80)
	if !ok || g.Thread != 2 {
		t.Fatalf("second grant = %+v, want thread 2", g)
	}
	if g, ok = c.Release(2, 1, 90); ok {
		t.Fatalf("empty queue release should not grant, got %+v", g)
	}
	if _, held := c.HeldBy(1); held {
		t.Error("lock should be free")
	}
}

func TestReleaseWithoutHoldPanics(t *testing.T) {
	c := New(nil)
	defer func() {
		if recover() == nil {
			t.Error("release of unheld lock should panic")
		}
	}()
	c.Release(0, 1, 0)
}

func TestGrantNeverBeforeRequest(t *testing.T) {
	c := New(fixedCost(4))
	c.Acquire(0, 7, 0)
	c.Acquire(1, 7, 1000) // requester far in the future
	g, ok := c.Release(0, 7, 10)
	if !ok || g.At < 1000 {
		t.Errorf("grant %v must not precede the request time", g)
	}
}

func TestBarrier(t *testing.T) {
	c := New(fixedCost(6))
	if g := c.BarrierArrive(0, 3, 10, 3); g != nil {
		t.Fatal("first arrival should block")
	}
	if g := c.BarrierArrive(1, 3, 30, 3); g != nil {
		t.Fatal("second arrival should block")
	}
	grants := c.BarrierArrive(2, 3, 20, 3)
	if len(grants) != 3 {
		t.Fatalf("grants = %v", grants)
	}
	for _, g := range grants {
		if g.At != 30+6 { // last arrival + RT
			t.Errorf("grant %v, want At=36", g)
		}
	}
	// Barrier is reusable.
	if g := c.BarrierArrive(0, 3, 100, 3); g != nil {
		t.Fatal("reused barrier should block again")
	}
	c.BarrierArrive(1, 3, 100, 3)
	if grants := c.BarrierArrive(2, 3, 100, 3); len(grants) != 3 {
		t.Fatal("reused barrier should release all")
	}
}

func TestBarrierPartiesMismatchPanics(t *testing.T) {
	c := New(nil)
	c.BarrierArrive(0, 1, 0, 2)
	defer func() {
		if recover() == nil {
			t.Error("parties mismatch should panic")
		}
	}()
	c.BarrierArrive(1, 1, 0, 3)
}

func TestFlagSetThenWait(t *testing.T) {
	c := New(fixedCost(8))
	if woken := c.FlagSet(0, 5, 1, 10); len(woken) != 0 {
		t.Fatal("no waiters yet")
	}
	at, ok := c.FlagWait(1, 5, 1, 20)
	if !ok || at != 28 {
		t.Fatalf("satisfied wait = (%d,%v)", at, ok)
	}
}

func TestFlagWaitThenSet(t *testing.T) {
	c := New(fixedCost(8))
	if _, ok := c.FlagWait(1, 5, 3, 20); ok {
		t.Fatal("unsatisfied wait should block")
	}
	if woken := c.FlagSet(0, 5, 2, 40); len(woken) != 0 {
		t.Fatal("threshold 3 not reached by value 2")
	}
	woken := c.FlagSet(0, 5, 3, 50)
	if len(woken) != 1 || woken[0].Thread != 1 {
		t.Fatalf("woken = %v", woken)
	}
	if woken[0].At != 50+4+4 {
		t.Errorf("wake time = %d, want 58", woken[0].At)
	}
	if c.FlagValue(5) != 3 {
		t.Errorf("flag value = %d", c.FlagValue(5))
	}
}

func TestFlagWakesMultipleWaiters(t *testing.T) {
	c := New(nil)
	c.FlagWait(1, 9, 1, 0)
	c.FlagWait(2, 9, 1, 0)
	c.FlagWait(3, 9, 2, 0)
	woken := c.FlagSet(0, 9, 1, 5)
	ids := []int{}
	for _, g := range woken {
		ids = append(ids, g.Thread)
	}
	sort.Ints(ids)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("woken = %v, want [1 2]", ids)
	}
	if woken = c.FlagSet(0, 9, 2, 6); len(woken) != 1 || woken[0].Thread != 3 {
		t.Fatalf("second set woke %v", woken)
	}
}

func TestBlockedDiagnostics(t *testing.T) {
	c := New(nil)
	c.Acquire(0, 1, 0)
	c.Acquire(1, 1, 0)
	c.BarrierArrive(2, 2, 0, 2)
	c.FlagWait(3, 3, 1, 0)
	blocked := c.Blocked()
	sort.Ints(blocked)
	want := []int{1, 2, 3}
	if len(blocked) != 3 {
		t.Fatalf("blocked = %v, want %v", blocked, want)
	}
	for i := range want {
		if blocked[i] != want[i] {
			t.Fatalf("blocked = %v, want %v", blocked, want)
		}
	}
}

// Property: for any interleaving of acquires, the lock is granted in
// controller arrival (call) order, each grant goes to a thread that
// requested it, and mutual exclusion holds.
func TestLockOrderProperty(t *testing.T) {
	f := func(reqs []uint8) bool {
		c := New(fixedCost(2))
		now := int64(0)
		var order []int // threads in request order
		granted := map[int]bool{}
		for i, r := range reqs {
			thread := int(r % 8)
			if granted[thread] {
				continue
			}
			granted[thread] = true
			now += int64(i)
			if _, ok := c.Acquire(thread, 0, now); ok {
				order = append(order, thread)
				// immediate grant = holder
			} else {
				order = append(order, thread)
			}
		}
		if len(order) == 0 {
			return true
		}
		// Drain: repeatedly release from current holder and check FIFO.
		for i := 0; i < len(order); i++ {
			holder, held := c.HeldBy(0)
			if !held || holder != order[i] {
				return false
			}
			g, ok := c.Release(holder, 0, now+int64(1000+i))
			if i == len(order)-1 {
				if ok {
					return false
				}
			} else if !ok || g.Thread != order[i+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: barrier grants are never earlier than the latest arrival.
func TestBarrierGrantTimeProperty(t *testing.T) {
	f := func(times [5]uint16) bool {
		c := New(fixedCost(3))
		var last int64
		var grants []Grant
		for i, tm := range times {
			at := int64(tm)
			if at > last {
				last = at
			}
			grants = c.BarrierArrive(i, 0, at, 5)
		}
		if len(grants) != 5 {
			return false
		}
		for _, g := range grants {
			if g.At < last {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
