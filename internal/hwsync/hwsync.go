// Package hwsync implements the synchronization hardware of Section III-D:
// a synchronization table in the shared-cache controller serving barriers,
// queued locks, and condition flags. Requests are uncacheable; a requester
// that cannot be satisfied immediately is parked in the controller's queue
// and answered only when it owns the lock, the barrier is complete, or the
// flag condition holds — there is no spinning over the network.
//
// The controller is a pure timing/ordering structure: callers pass the
// request time and receive grant times; the execution engine blocks and
// wakes guest threads accordingly. All decisions are deterministic given
// request order (the engine presents requests in global time order with
// thread-ID tie-breaking).
package hwsync

import "fmt"

// Grant tells the engine to wake a thread at a given cycle.
type Grant struct {
	Thread int
	At     int64
}

// CostFunc returns the round-trip cost, in cycles, for a thread to reach
// the controller entry serving sync variable id. Machines derive it from
// mesh distance plus controller service time.
type CostFunc func(thread, id int) int64

// Controller is the synchronization table of one shared-cache controller.
type Controller struct {
	cost     CostFunc
	locks    map[int]*lockState
	barriers map[int]*barrierState
	flags    map[int]*flagState

	// Requests counts synchronization requests served, for sync-traffic
	// accounting by the machine.
	Requests int64
}

type lockState struct {
	held   bool
	holder int
	queue  []pending // FIFO of blocked acquirers
}

type pending struct {
	thread int
	at     int64 // request time at the requester
	value  int64 // flag threshold for flag waiters
}

type barrierState struct {
	parties int
	arrived []pending
}

type flagState struct {
	value   int64
	waiters []pending
}

// New returns a controller whose request round trips cost cost(thread, id).
// A nil cost means zero-cost synchronization (useful in unit tests).
func New(cost CostFunc) *Controller {
	if cost == nil {
		cost = func(int, int) int64 { return 0 }
	}
	return &Controller{
		cost:     cost,
		locks:    make(map[int]*lockState),
		barriers: make(map[int]*barrierState),
		flags:    make(map[int]*flagState),
	}
}

func (c *Controller) lock(id int) *lockState {
	l, ok := c.locks[id]
	if !ok {
		l = &lockState{}
		c.locks[id] = l
	}
	return l
}

func (c *Controller) flag(id int) *flagState {
	f, ok := c.flags[id]
	if !ok {
		f = &flagState{}
		c.flags[id] = f
	}
	return f
}

// Acquire requests lock id for thread at time now. If the lock is free the
// thread is granted immediately and Acquire returns (grantTime, true);
// otherwise the thread is queued and the engine must block it until a
// Release produces a Grant for it.
func (c *Controller) Acquire(thread, id int, now int64) (int64, bool) {
	c.Requests++
	l := c.lock(id)
	if !l.held {
		l.held = true
		l.holder = thread
		return now + c.cost(thread, id), true
	}
	l.queue = append(l.queue, pending{thread: thread, at: now})
	return 0, false
}

// Release releases lock id held by thread at time now. If another thread is
// queued, ownership transfers to the queue head and Release returns its
// Grant; the grant time covers the releaser's request reaching the
// controller plus the response to the new owner.
func (c *Controller) Release(thread, id int, now int64) (Grant, bool) {
	c.Requests++
	l := c.lock(id)
	if !l.held || l.holder != thread {
		panic(fmt.Sprintf("hwsync: thread %d releasing lock %d it does not hold (held=%v holder=%d)",
			thread, id, l.held, l.holder))
	}
	if len(l.queue) == 0 {
		l.held = false
		return Grant{}, false
	}
	next := l.queue[0]
	l.queue = l.queue[1:]
	l.holder = next.thread
	at := now + c.cost(thread, id)/2 + c.cost(next.thread, id)/2
	if at < next.at {
		at = next.at
	}
	return Grant{Thread: next.thread, At: at}, true
}

// HeldBy reports whether lock id is currently held and by whom.
func (c *Controller) HeldBy(id int) (int, bool) {
	l := c.lock(id)
	return l.holder, l.held
}

// QueueLen returns the number of threads waiting on lock id.
func (c *Controller) QueueLen(id int) int { return len(c.lock(id).queue) }

// BarrierArrive registers thread's arrival at barrier id with the given
// number of parties. When the last party arrives, it returns grants for
// every participant; until then it returns nil and the engine must block
// the thread.
func (c *Controller) BarrierArrive(thread, id int, now int64, parties int) []Grant {
	if parties <= 0 {
		panic("hwsync: barrier needs at least one party")
	}
	c.Requests++
	b, ok := c.barriers[id]
	if !ok {
		b = &barrierState{parties: parties}
		c.barriers[id] = b
	}
	if b.parties != parties {
		panic(fmt.Sprintf("hwsync: barrier %d used with %d parties, previously %d", id, parties, b.parties))
	}
	b.arrived = append(b.arrived, pending{thread: thread, at: now})
	if len(b.arrived) < parties {
		return nil
	}
	last := int64(0)
	for _, p := range b.arrived {
		if p.at > last {
			last = p.at
		}
	}
	grants := make([]Grant, len(b.arrived))
	for i, p := range b.arrived {
		grants[i] = Grant{Thread: p.thread, At: last + c.cost(p.thread, id)}
	}
	b.arrived = b.arrived[:0] // barrier is reusable
	return grants
}

// FlagSet sets flag id to value at time now and returns grants for every
// parked waiter whose threshold is now satisfied. Flag values are
// monotically usable counters: a waiter with threshold v wakes when
// value >= v.
func (c *Controller) FlagSet(thread, id int, value int64, now int64) []Grant {
	c.Requests++
	f := c.flag(id)
	f.value = value
	arrive := now + c.cost(thread, id)/2
	var grants []Grant
	rest := f.waiters[:0]
	for _, w := range f.waiters {
		if f.value >= w.value {
			at := arrive + c.cost(w.thread, id)/2
			if at < w.at {
				at = w.at
			}
			grants = append(grants, Grant{Thread: w.thread, At: at})
		} else {
			rest = append(rest, w)
		}
	}
	f.waiters = rest
	return grants
}

// FlagWait asks for flag id to reach threshold at time now. If already
// satisfied it returns (grantTime, true); otherwise the thread is parked.
func (c *Controller) FlagWait(thread, id int, threshold int64, now int64) (int64, bool) {
	c.Requests++
	f := c.flag(id)
	if f.value >= threshold {
		return now + c.cost(thread, id), true
	}
	f.waiters = append(f.waiters, pending{thread: thread, at: now, value: threshold})
	return 0, false
}

// FlagValue returns the current value of flag id.
func (c *Controller) FlagValue(id int) int64 { return c.flag(id).value }

// Blocked returns the IDs of all threads currently parked in the
// controller (lock queues, incomplete barriers, flag waiters), for deadlock
// diagnostics.
func (c *Controller) Blocked() []int {
	var out []int
	for _, l := range c.locks {
		for _, p := range l.queue {
			out = append(out, p.thread)
		}
	}
	for _, b := range c.barriers {
		for _, p := range b.arrived {
			out = append(out, p.thread)
		}
	}
	for _, f := range c.flags {
		for _, p := range f.waiters {
			out = append(out, p.thread)
		}
	}
	return out
}
