package hwsync

import (
	"sort"

	"repro/internal/mem"
)

// Fingerprint hashes the controller's full synchronization state for the
// litmus explorer's dedup table: every lock's holder and queue, every
// barrier's arrival list, and every flag's value and waiter list, in
// ascending id order (the maps are keyed by program-chosen ids, so
// sorting makes the hash deterministic). Queue and waiter order is part
// of the state — grants are FIFO — so it is hashed positionally.
func (c *Controller) Fingerprint() uint64 {
	h := mem.FNVOffset
	for _, id := range sortedKeys(len(c.locks), func(ks []int) []int {
		for k := range c.locks {
			ks = append(ks, k)
		}
		return ks
	}) {
		l := c.locks[id]
		h = mem.Mix64(h, uint64(id)<<8|1)
		if l.held {
			h = mem.Mix64(h, uint64(l.holder)<<1|1)
		} else {
			h = mem.Mix64(h, 0)
		}
		h = hashPending(h, l.queue)
	}
	for _, id := range sortedKeys(len(c.barriers), func(ks []int) []int {
		for k := range c.barriers {
			ks = append(ks, k)
		}
		return ks
	}) {
		b := c.barriers[id]
		h = mem.Mix64(h, uint64(id)<<8|2)
		h = mem.Mix64(h, uint64(b.parties))
		h = hashPending(h, b.arrived)
	}
	for _, id := range sortedKeys(len(c.flags), func(ks []int) []int {
		for k := range c.flags {
			ks = append(ks, k)
		}
		return ks
	}) {
		f := c.flags[id]
		h = mem.Mix64(h, uint64(id)<<8|3)
		h = mem.Mix64(h, uint64(f.value))
		h = hashPending(h, f.waiters)
	}
	return mem.Mix64(h, uint64(c.Requests))
}

func hashPending(h uint64, ps []pending) uint64 {
	h = mem.Mix64(h, uint64(len(ps)))
	for _, p := range ps {
		h = mem.Mix64(h, uint64(p.thread))
		h = mem.Mix64(h, uint64(p.at))
		h = mem.Mix64(h, uint64(p.value))
	}
	return h
}

func sortedKeys(n int, collect func([]int) []int) []int {
	if n == 0 {
		return nil
	}
	ks := collect(make([]int, 0, n))
	sort.Ints(ks)
	return ks
}
