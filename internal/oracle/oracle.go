// Package oracle is the coherence checker for the hardware-incoherent
// hierarchy: a shadow sequentially-consistent memory plus a
// happens-before tracker that rides the engine's event stream
// (engine.Observer) and checks every guest load against the set of values
// it may legally observe.
//
// Happens-before is induced by the machine's synchronization operations
// only — lock release→acquire, barrier arrival→departure, and flag
// set→satisfied wait — exactly the edges Programming Model 1 annotates
// with WB/INV pairs. Each thread carries a vector clock; each shadow word
// remembers its last write (writer thread, writer epoch, value) plus the
// still-legal writes concurrent with it. On a load:
//
//   - if the last write is not ordered before the reading thread (a
//     deliberate data race, e.g. the Figure 6 racy flags), several values
//     are legal and the read is not checked — the oracle is conservative
//     and never flags racy reads;
//   - otherwise the loaded value must be the last write's value or one of
//     the concurrent writes' values. Anything else is a stale read: the
//     coherence annotations failed to move the bits.
//
// Detection is purely value-based, so bookkeeping can only cause false
// negatives, never false positives. Writeback bookkeeping (which writes
// have been published by a WB-family instruction) is used only to
// attribute a detected violation to the site that should have covered it:
// an unpublished write indicts the writer's missing/ineffective WB, a
// published one the reader's missing/ineffective INV. CheckFinal compares
// the drained memory image against the shadow memory and reports lost
// updates.
//
// When a fault-injection state is attached (internal/faultinject), the
// oracle replays the hierarchy's WB sabotage decisions from its own
// cursor over the identical deterministic instruction stream, so an
// injected drop/delay correctly leaves the shadow copy unpublished and
// the resulting stale read is attributed to the injected site.
package oracle

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Class labels what kind of coherence bug a violation indicates.
type Class string

const (
	// MissingWB: the stale value's writer never published it — a WB
	// covering the address is missing or was sabotaged on the writer's
	// side.
	MissingWB Class = "missing-wb"
	// MissingINV: the value was published, so the reader kept serving a
	// stale private copy — an INV covering the address is missing or was
	// sabotaged on the reader's side.
	MissingINV Class = "missing-inv"
	// LostUpdate: after the run drained, memory does not hold any legal
	// final value for the address.
	LostUpdate Class = "lost-update"
)

// Violation is one detected coherence violation.
type Violation struct {
	Class  Class
	Addr   mem.Addr
	Reader int // reading thread; -1 for CheckFinal
	Writer int // thread whose write defines the expected value
	Cycle  int64
	Got    mem.Word
	Want   mem.Word
	// Site describes the WB/INV site that should have covered the
	// address.
	Site string
}

func (v Violation) String() string {
	switch v.Class {
	case LostUpdate:
		return fmt.Sprintf("lost update at %#x: drained memory holds %d, want %d (written by thread %d at cycle %d; %s)",
			uint32(v.Addr), v.Got, v.Want, v.Writer, v.Cycle, v.Site)
	default:
		return fmt.Sprintf("stale read (%s) at %#x: thread %d got %d at cycle %d, want %d written by thread %d; %s",
			v.Class, uint32(v.Addr), v.Reader, v.Got, v.Cycle, v.Want, v.Writer, v.Site)
	}
}

// ViolationError carries a run's violations; it is the primary error of a
// checked run.
type ViolationError struct {
	// Total counts distinct violated addresses (reads are deduplicated
	// per address, so a spinning stale reader is one violation).
	Total int
	// Violations holds the first few in detection order (capped).
	Violations []Violation
}

func (e *ViolationError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "coherence: %d violation(s)", e.Total)
	for i, v := range e.Violations {
		if i == 3 {
			fmt.Fprintf(&b, "; ...")
			break
		}
		fmt.Fprintf(&b, "; %s", v)
	}
	return b.String()
}

// ErrorKind labels the failure for the runner's error taxonomy.
func (e *ViolationError) ErrorKind() string { return "coherence" }

// maxRecorded caps the stored violation list; Total keeps counting.
const maxRecorded = 32

// maxConcurrent caps the per-word concurrent-write list; a word whose
// race degree exceeds it becomes unchecked (conservative).
const maxConcurrent = 4

type vclock []int64

func (v vclock) join(u vclock) {
	for i, x := range u {
		if x > v[i] {
			v[i] = x
		}
	}
}

// writeRec is one shadow write: enough to test visibility against any
// thread's current vector clock (writer component + epoch) and to
// attribute blame (published state, cycle).
type writeRec struct {
	thread    int
	clock     int64
	cycle     int64
	val       mem.Word
	published bool
}

// wordState is one shadow word: its last write in happens-before order
// plus the writes still concurrent with it (all legal to read), or
// unchecked when the race degree overflowed.
type wordState struct {
	wr        writeRec
	conc      []writeRec
	unchecked bool
}

type barrierState struct {
	acc   vclock
	dones int
}

// opAt remembers a thread's most recent WB- or INV-family instruction
// for site attribution.
type opAt struct {
	op    isa.Op
	cycle int64
	valid bool
}

func (s opAt) String() string {
	if !s.valid {
		return "none issued"
	}
	return fmt.Sprintf("last was %q at cycle %d", s.op, s.cycle)
}

// Oracle implements engine.Observer. One instance checks one run; it is
// driven from the scheduler goroutine and needs no locking.
type Oracle struct {
	n        int
	vc       []vclock
	locks    map[int]vclock
	flags    map[int]vclock
	barriers map[int]*barrierState

	words map[mem.Addr]*wordState
	// unpub[t] is the set of word addresses thread t has written but not
	// yet published with a WB-family instruction.
	unpub []map[mem.Addr]struct{}

	lastWB  []opAt // per thread, for missing-wb attribution
	lastINV []opAt // per thread, for missing-inv attribution

	fi *faultinject.State

	reported   map[mem.Addr]bool
	violations []Violation
	total      int
}

// New builds an oracle for a run with the given number of threads.
func New(threads int) *Oracle {
	o := &Oracle{
		n:        threads,
		vc:       make([]vclock, threads),
		locks:    make(map[int]vclock),
		flags:    make(map[int]vclock),
		barriers: make(map[int]*barrierState),
		words:    make(map[mem.Addr]*wordState),
		unpub:    make([]map[mem.Addr]struct{}, threads),
		lastWB:   make([]opAt, threads),
		lastINV:  make([]opAt, threads),
		reported: make(map[mem.Addr]bool),
	}
	for t := 0; t < threads; t++ {
		o.vc[t] = make(vclock, threads)
		// Epochs start at 1 so a fresh write is not trivially visible to
		// every thread (other threads' components start at 0).
		o.vc[t][t] = 1
		o.unpub[t] = make(map[mem.Addr]struct{})
	}
	return o
}

// SetFaults attaches the run's fault-injection state so the oracle can
// replay the hierarchy's WB sabotage decisions (nil is fine).
func (o *Oracle) SetFaults(st *faultinject.State) { o.fi = st }

// OnEvent consumes one engine event (engine.Observer).
func (o *Oracle) OnEvent(ev engine.Event) {
	switch ev.Kind {
	case engine.EvOp:
		switch ev.Op.Kind {
		case isa.OpLoad, isa.OpLoadU:
			o.load(ev)
		case isa.OpStore:
			o.store(ev, false)
		case isa.OpStoreU:
			o.store(ev, true)
		case isa.OpWB, isa.OpWBCons:
			o.wbRange(ev)
		case isa.OpWBAll, isa.OpWBConsAll:
			o.wbAll(ev)
		case isa.OpDMACopy:
			o.dma(ev)
		default:
			if ev.Op.Kind.IsINVFamily() {
				o.lastINV[ev.Thread] = opAt{op: ev.Op, cycle: ev.Time, valid: true}
			}
		}
	case engine.EvSyncIssue:
		o.syncIssue(ev)
	case engine.EvSyncDone:
		o.syncDone(ev)
	}
}

// ---- Synchronization: the happens-before edges -------------------------

func (o *Oracle) syncIssue(ev engine.Event) {
	t := ev.Thread
	switch ev.Op.Kind {
	case isa.OpRelease:
		o.locks[ev.Op.ID] = joined(o.locks[ev.Op.ID], o.vc[t], o.n)
		o.vc[t][t]++
	case isa.OpFlagSet:
		o.flags[ev.Op.ID] = joined(o.flags[ev.Op.ID], o.vc[t], o.n)
		o.vc[t][t]++
	case isa.OpBarrier:
		b := o.barriers[ev.Op.ID]
		if b == nil {
			b = &barrierState{acc: make(vclock, o.n)}
			o.barriers[ev.Op.ID] = b
		}
		b.acc.join(o.vc[t])
		o.vc[t][t]++
	}
}

func (o *Oracle) syncDone(ev engine.Event) {
	t := ev.Thread
	switch ev.Op.Kind {
	case isa.OpAcquire:
		if lv := o.locks[ev.Op.ID]; lv != nil {
			o.vc[t].join(lv)
		}
	case isa.OpFlagWait:
		if fv := o.flags[ev.Op.ID]; fv != nil {
			o.vc[t].join(fv)
		}
	case isa.OpBarrier:
		b := o.barriers[ev.Op.ID]
		if b == nil {
			return
		}
		o.vc[t].join(b.acc)
		// The engine delivers all of a round's arrivals before any of its
		// departures, so counting departures detects the round boundary.
		if b.dones++; b.dones == o.n {
			b.acc = make(vclock, o.n)
			b.dones = 0
		}
	}
}

func joined(dst, src vclock, n int) vclock {
	if dst == nil {
		dst = make(vclock, n)
	}
	dst.join(src)
	return dst
}

// ---- Shadow memory ------------------------------------------------------

func (o *Oracle) word(a mem.Addr) *wordState {
	ws := o.words[a]
	if ws == nil {
		ws = &wordState{wr: writeRec{thread: -1}}
		o.words[a] = ws
	}
	return ws
}

// store updates the shadow word for a write by ev.Thread. Uncached
// stores land in backing memory immediately and count as published.
func (o *Oracle) store(ev engine.Event, uncached bool) {
	t := ev.Thread
	a := mem.WordAddr(ev.Op.Addr)
	ws := o.word(a)
	nw := writeRec{thread: t, clock: o.vc[t][t], cycle: ev.Time, val: ev.Op.Value, published: uncached}
	if ws.wr.thread >= 0 {
		// Keep only entries still concurrent with the new write.
		keep := ws.conc[:0]
		for _, e := range ws.conc {
			if o.vc[t][e.thread] < e.clock {
				keep = append(keep, e)
			}
		}
		ws.conc = keep
		if o.vc[t][ws.wr.thread] < ws.wr.clock {
			// The previous last write is concurrent with this one: it
			// stays legal to read.
			if len(ws.conc) >= maxConcurrent {
				ws.unchecked = true
			} else {
				ws.conc = append(ws.conc, ws.wr)
			}
		}
	}
	ws.wr = nw
	if !uncached {
		o.unpub[t][a] = struct{}{}
	} else {
		delete(o.unpub[t], a)
	}
}

// load checks a read against the legal value set.
func (o *Oracle) load(ev engine.Event) {
	t := ev.Thread
	a := mem.WordAddr(ev.Op.Addr)
	ws := o.words[a]
	if ws == nil || ws.unchecked || ws.wr.thread < 0 {
		return
	}
	if o.vc[t][ws.wr.thread] < ws.wr.clock {
		// Racy read (e.g. a Figure 6 spin flag): old and new values are
		// both legal; skip.
		return
	}
	got := ev.Value
	if legalHere(ws, got) {
		return
	}
	if o.reported[a] {
		return
	}
	o.reported[a] = true
	v := Violation{
		Addr:   a,
		Reader: t,
		Writer: ws.wr.thread,
		Cycle:  ev.Time,
		Got:    got,
		Want:   ws.wr.val,
	}
	if ws.wr.published {
		v.Class = MissingINV
		v.Site = fmt.Sprintf("the value was written back; an INV covering %#x is missing or ineffective on reader thread %d (%s)",
			uint32(a), t, o.lastINV[t])
	} else {
		v.Class = MissingWB
		v.Site = fmt.Sprintf("a WB covering %#x is missing or ineffective on writer thread %d (%s)",
			uint32(a), ws.wr.thread, o.lastWB[ws.wr.thread])
	}
	o.record(v)
}

func (o *Oracle) record(v Violation) {
	o.total++
	if len(o.violations) < maxRecorded {
		o.violations = append(o.violations, v)
	}
}

// ---- Writeback bookkeeping ---------------------------------------------

// consumeWB replays the fault plan's decision for the WB-family
// instruction the hierarchy just executed. A dropped instruction
// publishes nothing and leaves the words pending (the hierarchy kept
// their dirty bits, so a later writeback republishes them); a delayed
// instruction consumes the words without publishing them (the
// hierarchy parked them and cleared the dirty bits, so nothing can
// cover them again before the drain).
func (o *Oracle) consumeWB() faultinject.WBAction {
	if o.fi == nil {
		return faultinject.WBKeep
	}
	return o.fi.OracleNextWB()
}

// publish marks thread t's latest write of word a as written back.
func (o *Oracle) publish(t int, a mem.Addr) {
	if ws := o.words[a]; ws != nil && ws.wr.thread == t {
		ws.wr.published = true
	}
	delete(o.unpub[t], a)
}

// wbRange handles WB and WB_CONS: a range writeback publishes every
// dirty word of the lines overlapping the range — the hierarchy writes
// back whole lines, not just the requested words.
func (o *Oracle) wbRange(ev engine.Event) {
	t := ev.Thread
	o.lastWB[t] = opAt{op: ev.Op, cycle: ev.Time, valid: true}
	act := o.consumeWB()
	if act == faultinject.WBDrop {
		return
	}
	ev.Op.Range.Lines(func(line mem.Addr, _ mem.LineMask) {
		for i := 0; i < mem.WordsPerLine; i++ {
			a := mem.WordOfLine(line, i)
			if _, dirty := o.unpub[t][a]; dirty {
				if act == faultinject.WBDelay {
					delete(o.unpub[t], a)
				} else {
					o.publish(t, a)
				}
			}
		}
	})
}

// wbAll handles WB ALL and WB_CONS ALL: everything the thread has
// written since its last full writeback is published — except lines a
// faulty MEB silently discarded, which the hierarchy's MEB-served
// traversal missed.
func (o *Oracle) wbAll(ev engine.Event) {
	t := ev.Thread
	o.lastWB[t] = opAt{op: ev.Op, cycle: ev.Time, valid: true}
	act := o.consumeWB()
	if act == faultinject.WBDrop {
		return
	}
	if act == faultinject.WBDelay {
		// The whole pending set was parked unpublished.
		o.unpub[t] = make(map[mem.Addr]struct{})
		return
	}
	var miss map[mem.Addr]bool
	if o.fi != nil {
		miss = o.fi.TakeMEBMiss()
	}
	for a := range o.unpub[t] {
		if miss[mem.LineAddr(a)] {
			// Silently lost from the MEB: stays unpublished, and stays
			// pending so a later full traversal can still publish it.
			continue
		}
		o.publish(t, a)
	}
}

// dma propagates shadow state for a DMA copy: the destination words take
// the source words' expected values and are immediately published (DMA
// deposits into shared caches). A source word that is unknown, already
// unchecked, or not ordered before the initiating thread leaves the
// destination word unchecked — the engine may legally have copied a
// value the oracle cannot pin down.
func (o *Oracle) dma(ev engine.Event) {
	t := ev.Thread
	src := ev.Op.Range
	dstBase := mem.WordAddr(ev.Op.Addr)
	for off := mem.Addr(0); off < mem.Addr(src.Bytes); off += mem.WordBytes {
		sa := mem.WordAddr(src.Base + off)
		da := dstBase + off
		sw := o.words[sa]
		dw := o.word(da)
		if sw == nil || sw.wr.thread < 0 {
			// Source untouched this run: backing holds zero (or its
			// pre-run image, which the oracle does not model). Treat the
			// destination as unchecked.
			dw.wr = writeRec{thread: -1}
			dw.conc = nil
			dw.unchecked = true
			continue
		}
		if sw.unchecked || o.vc[t][sw.wr.thread] < sw.wr.clock {
			dw.wr = writeRec{thread: -1}
			dw.conc = nil
			dw.unchecked = true
			continue
		}
		dw.wr = writeRec{thread: t, clock: o.vc[t][t], cycle: ev.Time, val: sw.wr.val, published: true}
		dw.conc = append(dw.conc[:0], sw.conc...)
		dw.unchecked = false
	}
}

// ---- Final check --------------------------------------------------------

// CheckFinal compares the drained memory image against the shadow
// memory: every checked word must hold one of its legal final values.
// Call after Hierarchy.Drain.
func (o *Oracle) CheckFinal(m *mem.Memory) {
	addrs := make([]mem.Addr, 0, len(o.words))
	for a := range o.words {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		ws := o.words[a]
		if ws.unchecked || ws.wr.thread < 0 || o.reported[a] {
			continue
		}
		got := m.ReadWord(a)
		if legalHere(ws, got) {
			continue
		}
		o.reported[a] = true
		o.record(Violation{
			Class:  LostUpdate,
			Addr:   a,
			Reader: -1,
			Writer: ws.wr.thread,
			Cycle:  ws.wr.cycle,
			Got:    got,
			Want:   ws.wr.val,
			Site: fmt.Sprintf("the final value never reached memory; thread %d's writeback path dropped it (%s)",
				ws.wr.thread, o.lastWB[ws.wr.thread]),
		})
	}
}

// Violations returns the recorded violations in detection order.
func (o *Oracle) Violations() []Violation { return o.violations }

// Total returns the number of distinct violated addresses.
func (o *Oracle) Total() int { return o.total }

// Err returns the run's ViolationError, or nil when the run was clean.
func (o *Oracle) Err() error {
	if o.total == 0 {
		return nil
	}
	return &ViolationError{Total: o.total, Violations: o.violations}
}
