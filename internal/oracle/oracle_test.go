package oracle

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/topo"
)

// ---- Unit tests driving the event stream directly ----------------------

func opEv(thread int, op isa.Op, v mem.Word) engine.Event {
	return engine.Event{Kind: engine.EvOp, Thread: thread, Op: op, Value: v}
}

func store(o *Oracle, thread int, a mem.Addr, v mem.Word) {
	o.OnEvent(opEv(thread, isa.Op{Kind: isa.OpStore, Addr: a, Value: v}, 0))
}

func loadEv(o *Oracle, thread int, a mem.Addr, got mem.Word) {
	o.OnEvent(opEv(thread, isa.Op{Kind: isa.OpLoad, Addr: a}, got))
}

func flagSet(o *Oracle, thread, id int) {
	o.OnEvent(engine.Event{Kind: engine.EvSyncIssue, Thread: thread, Op: isa.Op{Kind: isa.OpFlagSet, ID: id}})
}

func flagWaitDone(o *Oracle, thread, id int) {
	o.OnEvent(engine.Event{Kind: engine.EvSyncDone, Thread: thread, Op: isa.Op{Kind: isa.OpFlagWait, ID: id}})
}

func wbRange(o *Oracle, thread int, r mem.Range) {
	o.OnEvent(opEv(thread, isa.Op{Kind: isa.OpWB, Range: r}, 0))
}

func TestRacyReadNotFlagged(t *testing.T) {
	o := New(2)
	store(o, 0, 0x100, 7)
	// Thread 1 has no happens-before edge from the write: both the old
	// and the new value are legal, so even a stale 0 passes.
	loadEv(o, 1, 0x100, 0)
	loadEv(o, 1, 0x100, 7)
	if o.Total() != 0 {
		t.Fatalf("racy reads flagged: %v", o.Violations())
	}
}

func TestOrderedStaleReadFlagged(t *testing.T) {
	o := New(2)
	store(o, 0, 0x100, 7)
	wbRange(o, 0, mem.WordRange(0x100, 1))
	flagSet(o, 0, 3)
	flagWaitDone(o, 1, 3)
	loadEv(o, 1, 0x100, 0) // stale: the write is hb-visible and published
	if o.Total() != 1 {
		t.Fatalf("Total = %d, want 1", o.Total())
	}
	v := o.Violations()[0]
	if v.Class != MissingINV || v.Reader != 1 || v.Writer != 0 || v.Got != 0 || v.Want != 7 {
		t.Errorf("violation = %+v", v)
	}
	// The same address is not reported twice.
	loadEv(o, 1, 0x100, 0)
	if o.Total() != 1 {
		t.Errorf("duplicate address reported: Total = %d", o.Total())
	}
}

func TestUnpublishedStaleReadIsMissingWB(t *testing.T) {
	o := New(2)
	store(o, 0, 0x100, 7)
	// No WB: the write is never published.
	flagSet(o, 0, 3)
	flagWaitDone(o, 1, 3)
	loadEv(o, 1, 0x100, 0)
	if o.Total() != 1 || o.Violations()[0].Class != MissingWB {
		t.Fatalf("want one missing-wb, got %v", o.Violations())
	}
	if !strings.Contains(o.Violations()[0].Site, "thread 0") {
		t.Errorf("site should indict the writer: %q", o.Violations()[0].Site)
	}
}

func TestConcurrentWritesAllLegal(t *testing.T) {
	o := New(3)
	store(o, 0, 0x200, 1)
	store(o, 1, 0x200, 2) // concurrent with thread 0's write
	flagSet(o, 0, 0)
	flagSet(o, 1, 1)
	flagWaitDone(o, 2, 0)
	flagWaitDone(o, 2, 1)
	loadEv(o, 2, 0x200, 1)
	loadEv(o, 2, 0x200, 2)
	if o.Total() != 0 {
		t.Fatalf("legal racy values flagged: %v", o.Violations())
	}
	loadEv(o, 2, 0x200, 3)
	if o.Total() != 1 {
		t.Fatalf("illegal value not flagged")
	}
}

func TestBarrierOrdersWrites(t *testing.T) {
	o := New(2)
	store(o, 0, 0x300, 5)
	wbRange(o, 0, mem.WordRange(0x300, 1))
	for th := 0; th < 2; th++ {
		o.OnEvent(engine.Event{Kind: engine.EvSyncIssue, Thread: th, Op: isa.Op{Kind: isa.OpBarrier, ID: 9}})
	}
	for th := 0; th < 2; th++ {
		o.OnEvent(engine.Event{Kind: engine.EvSyncDone, Thread: th, Op: isa.Op{Kind: isa.OpBarrier, ID: 9}})
	}
	loadEv(o, 1, 0x300, 0)
	if o.Total() != 1 || o.Violations()[0].Class != MissingINV {
		t.Fatalf("stale read across barrier not flagged: %v", o.Violations())
	}
	// A second barrier round starts from a clean accumulator: a write
	// after this round must not leak backwards. (Just exercise the reset.)
	store(o, 0, 0x304, 6)
}

func TestCheckFinalLostUpdate(t *testing.T) {
	o := New(1)
	store(o, 0, 0x400, 5)
	m := mem.NewMemory()
	o.CheckFinal(m) // memory still holds 0
	if o.Total() != 1 {
		t.Fatalf("Total = %d, want 1", o.Total())
	}
	v := o.Violations()[0]
	if v.Class != LostUpdate || v.Got != 0 || v.Want != 5 {
		t.Errorf("violation = %+v", v)
	}
	err := o.Err()
	if err == nil {
		t.Fatal("Err() = nil with violations recorded")
	}
	type kinder interface{ ErrorKind() string }
	if k, ok := err.(kinder); !ok || k.ErrorKind() != "coherence" {
		t.Errorf("ErrorKind = %v, want coherence", err)
	}
}

func TestCheckFinalCleanMemory(t *testing.T) {
	o := New(1)
	store(o, 0, 0x400, 5)
	wbRange(o, 0, mem.WordRange(0x400, 1))
	m := mem.NewMemory()
	m.WriteWord(0x400, 5)
	o.CheckFinal(m)
	if o.Err() != nil {
		t.Fatalf("clean final memory flagged: %v", o.Err())
	}
}

// ---- Integration: injected fault ⇒ detected violation ------------------

// checkedRun executes guests on an intra-block incoherent hierarchy with
// the given fault plan, the oracle attached, and returns the oracle.
func checkedRun(t *testing.T, plan string, cfgMod func(*core.Config), guests []engine.Guest) *Oracle {
	t.Helper()
	m := topo.NewIntraBlock()
	cfg := core.DefaultConfig(m)
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	h := core.New(m, cfg)
	st := faultinject.NewState(faultinject.MustParse(plan))
	h.SetFaults(st)
	orc := New(len(guests))
	orc.SetFaults(st)
	e := engine.New(h, guests)
	e.SetObserver(orc)
	if _, err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	h.Drain()
	orc.CheckFinal(h.Memory())
	return orc
}

func TestInjectedFaultsAreDetected(t *testing.T) {
	const a = mem.Addr(0x1000)
	r := mem.WordRange(a, 1)

	// Producer/consumer pair correctly annotated for the incoherent
	// hierarchy: the only way the consumer can read stale data is an
	// injected fault.
	producerConsumer := []engine.Guest{
		func(p engine.Proc) { p.Store(a, 41); p.WB(r); p.FlagSet(0, 1) },
		func(p engine.Proc) { p.FlagWait(0, 1); p.INV(r); _ = p.Load(a) },
	}
	// Same, but the consumer caches the line before the handoff, so a
	// skipped INV leaves a stale copy to hit on.
	preCached := []engine.Guest{
		func(p engine.Proc) { p.Barrier(0); p.Store(a, 41); p.WB(r); p.FlagSet(0, 1) },
		func(p engine.Proc) { _ = p.Load(a); p.Barrier(0); p.FlagWait(0, 1); p.INV(r); _ = p.Load(a) },
	}
	// Epoch-style consumer: arms the IEB lazily instead of an eager INV.
	lazyConsumer := []engine.Guest{
		func(p engine.Proc) { p.Barrier(0); p.Store(a, 41); p.WB(r); p.FlagSet(0, 1) },
		func(p engine.Proc) { _ = p.Load(a); p.Barrier(0); p.FlagWait(0, 1); p.INVAllLazy(); _ = p.Load(a) },
	}
	// Two dirty lines but an MEB sabotaged to hold one: the MEB-served
	// WB ALL silently misses the second line.
	const a2 = mem.Addr(0x2000)
	mebPair := []engine.Guest{
		func(p engine.Proc) { p.Store(a, 41); p.Store(a2, 43); p.WBAllMEB(); p.FlagSet(0, 1) },
		func(p engine.Proc) { p.FlagWait(0, 1); p.INVAll(); _ = p.Load(a); _ = p.Load(a2) },
	}

	cases := []struct {
		name   string
		plan   string
		cfgMod func(*core.Config)
		guests []engine.Guest
		class  Class
		addr   mem.Addr
		site   string // substring the attribution must contain
	}{
		{"drop-wb", "drop-wb@0", nil, producerConsumer, MissingWB, a, "writer thread 0"},
		{"delay-wb", "delay-wb@0", nil, producerConsumer, MissingWB, a, "writer thread 0"},
		{"skip-inv", "skip-inv@0", nil, preCached, MissingINV, a, "reader thread 1"},
		{"ieb-lie", "ieb-lie@0", func(c *core.Config) { c.IEBEntries = 4 }, lazyConsumer, MissingINV, a, "reader thread 1"},
		{"meb-cap", "meb-cap=1", func(c *core.Config) { c.MEBEntries = 16 }, mebPair, MissingWB, a2, "writer thread 0"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			orc := checkedRun(t, c.plan, c.cfgMod, c.guests)
			if orc.Total() == 0 {
				t.Fatalf("injected %s went undetected", c.plan)
			}
			v := orc.Violations()[0]
			if v.Class != c.class {
				t.Errorf("class = %s, want %s (%+v)", v.Class, c.class, v)
			}
			if v.Addr != c.addr {
				t.Errorf("addr = %#x, want %#x", uint32(v.Addr), uint32(c.addr))
			}
			if !strings.Contains(v.Site, c.site) {
				t.Errorf("site %q does not name the faulty site (%s)", v.Site, c.site)
			}
			// The faultless twin of every scenario is clean.
			clean := checkedRun(t, "", c.cfgMod, c.guests)
			if clean.Total() != 0 {
				t.Errorf("fault-free twin reported violations: %v", clean.Violations())
			}
		})
	}
}

func TestMEBFaultSparesCoveredLine(t *testing.T) {
	const a, a2 = mem.Addr(0x1000), mem.Addr(0x2000)
	got := make([]mem.Word, 2)
	guests := []engine.Guest{
		func(p engine.Proc) { p.Store(a, 41); p.Store(a2, 43); p.WBAllMEB(); p.FlagSet(0, 1) },
		func(p engine.Proc) {
			p.FlagWait(0, 1)
			p.INVAll()
			got[0] = p.Load(a)
			got[1] = p.Load(a2)
		},
	}
	orc := checkedRun(t, "meb-cap=1", func(c *core.Config) { c.MEBEntries = 16 }, guests)
	if got[0] != 41 {
		t.Errorf("covered line got %d, want 41", got[0])
	}
	if got[1] == 43 {
		t.Errorf("discarded line unexpectedly wrote back")
	}
	if orc.Total() != 1 || orc.Violations()[0].Addr != a2 {
		t.Errorf("want exactly the lost line flagged, got %v", orc.Violations())
	}
}

func TestDelayWBReachesMemoryAtDrain(t *testing.T) {
	const a = mem.Addr(0x1000)
	r := mem.WordRange(a, 1)
	m := topo.NewIntraBlock()
	h := core.New(m, core.DefaultConfig(m))
	h.SetFaults(faultinject.NewState(faultinject.MustParse("delay-wb@0")))
	guests := []engine.Guest{
		func(p engine.Proc) { p.Store(a, 41); p.WB(r); p.FlagSet(0, 1) },
		func(p engine.Proc) { p.FlagWait(0, 1); p.INV(r); _ = p.Load(a) },
	}
	if _, err := engine.New(h, guests).Run(); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	if got := h.Memory().ReadWord(a); got != 41 {
		t.Errorf("delayed writeback lost at drain: memory holds %d, want 41", got)
	}
}
