package oracle

import (
	"sort"

	"repro/internal/mem"
)

// Fingerprint hashes the oracle's complete shadow state for the litmus
// explorer's dedup table. Two explorer states are only interchangeable
// if their *futures produce the same verdicts*, and verdicts come from
// this shadow machine, so the fingerprint must cover everything the
// oracle's future decisions read: per-thread and per-primitive vector
// clocks, every shadow word's happens-before-last write and concurrent
// set, unpublished-write sets, last WB/INV sites, the per-address
// reported filter, and the violation totals. Map iteration is made
// deterministic by sorting keys.
func (o *Oracle) Fingerprint() uint64 {
	h := mem.FNVOffset
	for _, v := range o.vc {
		h = hashClock(h, v)
	}
	// Tag each primitive-clock map so a lock's clock can never alias a
	// flag's with the same ID.
	h = mem.Mix64(h, uint64(len(o.locks))<<8|'L')
	h = hashClockMap(h, o.locks)
	h = mem.Mix64(h, uint64(len(o.flags))<<8|'F')
	h = hashClockMap(h, o.flags)
	for _, id := range sortedIntKeys(len(o.barriers), func(ks []int) []int {
		for k := range o.barriers {
			ks = append(ks, k)
		}
		return ks
	}) {
		b := o.barriers[id]
		h = mem.Mix64(h, uint64(id))
		h = hashClock(h, b.acc)
		h = mem.Mix64(h, uint64(b.dones))
	}
	addrs := make([]mem.Addr, 0, len(o.words))
	for a := range o.words {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		ws := o.words[a]
		h = mem.Mix64(h, uint64(a))
		h = hashWrite(h, ws.wr)
		h = mem.Mix64(h, uint64(len(ws.conc)))
		for _, w := range ws.conc {
			h = hashWrite(h, w)
		}
		if ws.unchecked {
			h = mem.Mix64(h, ^uint64(0))
		}
	}
	for t, set := range o.unpub {
		h = mem.Mix64(h, uint64(t))
		us := make([]mem.Addr, 0, len(set))
		for a := range set {
			us = append(us, a)
		}
		sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
		for _, a := range us {
			h = mem.Mix64(h, uint64(a))
		}
	}
	for t := 0; t < o.n; t++ {
		h = hashOpAt(h, o.lastWB[t])
		h = hashOpAt(h, o.lastINV[t])
	}
	ra := make([]mem.Addr, 0, len(o.reported))
	for a := range o.reported {
		ra = append(ra, a)
	}
	sort.Slice(ra, func(i, j int) bool { return ra[i] < ra[j] })
	for _, a := range ra {
		h = mem.Mix64(h, uint64(a))
	}
	h = mem.Mix64(h, uint64(len(o.violations)))
	return mem.Mix64(h, uint64(o.total))
}

func hashClock(h uint64, v vclock) uint64 {
	for _, x := range v {
		h = mem.Mix64(h, uint64(x))
	}
	return h
}

func hashClockMap(h uint64, m map[int]vclock) uint64 {
	for _, id := range sortedIntKeys(len(m), func(ks []int) []int {
		for k := range m {
			ks = append(ks, k)
		}
		return ks
	}) {
		h = mem.Mix64(h, uint64(id))
		h = hashClock(h, m[id])
	}
	return h
}

func hashWrite(h uint64, w writeRec) uint64 {
	h = mem.Mix64(h, uint64(w.thread))
	h = mem.Mix64(h, uint64(w.clock))
	h = mem.Mix64(h, uint64(w.cycle))
	v := uint64(w.val) << 1
	if w.published {
		v |= 1
	}
	return mem.Mix64(h, v)
}

func hashOpAt(h uint64, s opAt) uint64 {
	if !s.valid {
		return mem.Mix64(h, 0)
	}
	h = mem.Mix64(h, uint64(s.op.Kind)<<1|1)
	h = mem.Mix64(h, uint64(s.op.Range.Base))
	h = mem.Mix64(h, uint64(s.op.Range.Bytes))
	return mem.Mix64(h, uint64(s.cycle))
}

func sortedIntKeys(n int, collect func([]int) []int) []int {
	if n == 0 {
		return nil
	}
	ks := collect(make([]int, 0, n))
	sort.Ints(ks)
	return ks
}
