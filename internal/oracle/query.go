package oracle

import "repro/internal/mem"

// This file is the oracle's query API: the same legal-value sets the
// event-driven checks (load, CheckFinal) enforce, exposed so external
// harnesses — the litmus explorer in particular — can ask "what may
// thread t read here?" or "what may drained memory hold here?" without
// re-deriving happens-before.

// legalHere reports whether got is in the word's legal read set: the
// last happens-before-ordered write's value or any still-concurrent
// write's value. Allocation-free; shared by the hot-path load check,
// CheckFinal, and the public queries.
func legalHere(ws *wordState, got mem.Word) bool {
	if got == ws.wr.val {
		return true
	}
	for _, e := range ws.conc {
		if got == e.val {
			return true
		}
	}
	return false
}

// values materializes the word's legal value set (deduplicated, last
// write first).
func values(ws *wordState) []mem.Word {
	vals := make([]mem.Word, 0, 1+len(ws.conc))
	vals = append(vals, ws.wr.val)
	for _, e := range ws.conc {
		dup := false
		for _, v := range vals {
			if v == e.val {
				dup = true
				break
			}
		}
		if !dup {
			vals = append(vals, e.val)
		}
	}
	return vals
}

// LegalValues returns the set of values thread t may legally load from
// the word at a, as of the oracle's current event position. ok=false
// means the read is unconstrained: the word was never written this run,
// its race degree overflowed the tracker, or the last write is racy
// with respect to t (both old and new values are legal) — exactly the
// cases the oracle declines to check.
func (o *Oracle) LegalValues(t int, a mem.Addr) ([]mem.Word, bool) {
	ws := o.words[mem.WordAddr(a)]
	if ws == nil || ws.unchecked || ws.wr.thread < 0 {
		return nil, false
	}
	if t < 0 || t >= o.n || o.vc[t][ws.wr.thread] < ws.wr.clock {
		return nil, false
	}
	return values(ws), true
}

// FinalValues returns the set of values drained memory may legally hold
// at the word at a: the last write in happens-before order or any write
// concurrent with it. ok=false means the word is unconstrained (never
// written or unchecked). Meaningful once the run has completed; this is
// the set CheckFinal enforces.
func (o *Oracle) FinalValues(a mem.Addr) ([]mem.Word, bool) {
	ws := o.words[mem.WordAddr(a)]
	if ws == nil || ws.unchecked || ws.wr.thread < 0 {
		return nil, false
	}
	return values(ws), true
}
