package oracle

import (
	"reflect"
	"testing"

	"repro/internal/mem"
)

func TestLegalValuesUnwritten(t *testing.T) {
	o := New(2)
	if vals, ok := o.LegalValues(0, 0x100); ok || vals != nil {
		t.Errorf("unwritten word constrained: %v, %v", vals, ok)
	}
	if vals, ok := o.FinalValues(0x100); ok || vals != nil {
		t.Errorf("unwritten word has final constraint: %v, %v", vals, ok)
	}
}

func TestLegalValuesRespectHappensBefore(t *testing.T) {
	o := New(2)
	store(o, 0, 0x100, 7)
	// Writer sees its own write.
	if vals, ok := o.LegalValues(0, 0x100); !ok || !reflect.DeepEqual(vals, []mem.Word{7}) {
		t.Errorf("writer's own view = %v, %v, want [7]", vals, ok)
	}
	// Thread 1 has no edge from the write: unconstrained.
	if _, ok := o.LegalValues(1, 0x100); ok {
		t.Error("racy read constrained")
	}
	// After a publishing sync edge, thread 1 is pinned to 7.
	flagSet(o, 0, 3)
	flagWaitDone(o, 1, 3)
	if vals, ok := o.LegalValues(1, 0x100); !ok || !reflect.DeepEqual(vals, []mem.Word{7}) {
		t.Errorf("ordered view = %v, %v, want [7]", vals, ok)
	}
	// Word addressing: any byte of the word maps to the same answer.
	if vals, ok := o.LegalValues(1, 0x102); !ok || !reflect.DeepEqual(vals, []mem.Word{7}) {
		t.Errorf("mid-word query = %v, %v, want [7]", vals, ok)
	}
}

func TestLegalValuesConcurrentWritesAndDedup(t *testing.T) {
	o := New(3)
	store(o, 0, 0x200, 1)
	store(o, 1, 0x200, 2) // concurrent with thread 0's write
	store(o, 2, 0x240, 9)
	flagSet(o, 0, 0)
	flagSet(o, 1, 1)
	flagWaitDone(o, 2, 0)
	flagWaitDone(o, 2, 1)
	vals, ok := o.LegalValues(2, 0x200)
	if !ok {
		t.Fatal("ordered-after-both read unconstrained")
	}
	want := map[mem.Word]bool{1: true, 2: true}
	if len(vals) != 2 || !want[vals[0]] || !want[vals[1]] {
		t.Errorf("legal set = %v, want {1,2}", vals)
	}
	// Final values mirror the read set for the last writer's view.
	fvals, ok := o.FinalValues(0x200)
	if !ok || len(fvals) != 2 {
		t.Errorf("final set = %v, %v, want two values", fvals, ok)
	}
	// A duplicated concurrent value collapses.
	store(o, 0, 0x300, 5)
	store(o, 1, 0x300, 5)
	if fv, ok := o.FinalValues(0x300); !ok || !reflect.DeepEqual(fv, []mem.Word{5}) {
		t.Errorf("duplicate values not collapsed: %v, %v", fv, ok)
	}
}

func TestQueriesAgreeWithChecks(t *testing.T) {
	// The query API and the event-driven check must agree: a value outside
	// LegalValues is exactly what load() flags.
	o := New(2)
	store(o, 0, 0x100, 7)
	wbRange(o, 0, mem.WordRange(0x100, 1))
	flagSet(o, 0, 3)
	flagWaitDone(o, 1, 3)
	vals, ok := o.LegalValues(1, 0x100)
	if !ok {
		t.Fatal("ordered read unconstrained")
	}
	legal := map[mem.Word]bool{}
	for _, v := range vals {
		legal[v] = true
	}
	if legal[0] {
		t.Fatal("stale 0 in legal set")
	}
	loadEv(o, 1, 0x100, 0)
	if o.Total() != 1 {
		t.Errorf("value outside LegalValues not flagged by load: total=%d", o.Total())
	}
}

func TestLegalValuesBadThread(t *testing.T) {
	o := New(2)
	store(o, 0, 0x100, 7)
	if _, ok := o.LegalValues(-1, 0x100); ok {
		t.Error("negative thread constrained")
	}
	if _, ok := o.LegalValues(5, 0x100); ok {
		t.Error("out-of-range thread constrained")
	}
}
