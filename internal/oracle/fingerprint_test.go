package oracle

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
)

// script drives one oracle through a history touching every piece of
// shadow state the fingerprint must cover: vector clocks, lock, flag,
// and barrier clocks, shadow words with concurrent-write sets,
// unpublished sets, last-WB/INV sites, and a recorded violation (which
// populates the reported filter and the totals).
func script() *Oracle {
	o := New(2)
	store(o, 0, 0x100, 7)
	store(o, 1, 0x100, 9) // concurrent writer -> conc set
	wbRange(o, 0, mem.WordRange(0x100, 1))
	o.OnEvent(opEv(0, isa.Op{Kind: isa.OpINV, Range: mem.WordRange(0x200, 1)}, 0))
	o.OnEvent(engine.Event{Kind: engine.EvSyncIssue, Thread: 0, Op: isa.Op{Kind: isa.OpRelease, ID: 1}})
	o.OnEvent(engine.Event{Kind: engine.EvSyncDone, Thread: 1, Op: isa.Op{Kind: isa.OpAcquire, ID: 1}})
	flagSet(o, 0, 3)
	flagWaitDone(o, 1, 3)
	o.OnEvent(engine.Event{Kind: engine.EvSyncIssue, Thread: 0, Op: isa.Op{Kind: isa.OpBarrier, ID: 2}})
	loadEv(o, 1, 0x100, 3) // synchronized stale read -> violation + reported
	return o
}

func TestFingerprintDeterministic(t *testing.T) {
	if a, b := script().Fingerprint(), script().Fingerprint(); a != b {
		t.Fatalf("identical histories fingerprint differently: %#x vs %#x", a, b)
	}
	if script().Total() != 1 {
		t.Fatal("script is expected to record exactly one violation")
	}
}

// TestFingerprintSensitivity: each shadow-state dimension separates
// states. The dedup table must never merge two explorer states whose
// oracles would verdict the future differently.
func TestFingerprintSensitivity(t *testing.T) {
	base := New(2).Fingerprint()
	seen := map[uint64]string{0: "zero"}
	record := func(name string, build func() *Oracle) {
		fp := build().Fingerprint()
		if fp == base {
			t.Errorf("%s: fingerprint equals the empty oracle's", name)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}
	record("store", func() *Oracle { o := New(2); store(o, 0, 0x100, 7); return o })
	record("store other value", func() *Oracle { o := New(2); store(o, 0, 0x100, 8); return o })
	record("store other thread", func() *Oracle { o := New(2); store(o, 1, 0x100, 7); return o })
	record("published", func() *Oracle {
		o := New(2)
		store(o, 0, 0x100, 7)
		wbRange(o, 0, mem.WordRange(0x100, 1))
		return o
	})
	record("flag clock", func() *Oracle { o := New(2); flagSet(o, 0, 3); return o })
	record("other flag", func() *Oracle { o := New(2); flagSet(o, 0, 4); return o })
	record("lock clock", func() *Oracle {
		o := New(2)
		o.OnEvent(engine.Event{Kind: engine.EvSyncIssue, Thread: 0, Op: isa.Op{Kind: isa.OpRelease, ID: 3}})
		return o
	})
	record("barrier clock", func() *Oracle {
		o := New(2)
		o.OnEvent(engine.Event{Kind: engine.EvSyncIssue, Thread: 0, Op: isa.Op{Kind: isa.OpBarrier, ID: 3}})
		return o
	})
	record("full script", script)
}

// TestFingerprintViolationStateCovered: two oracles that agree on every
// clock but differ in whether a violation was already reported must not
// merge — the report filter suppresses duplicate findings, so it shapes
// future verdicts.
func TestFingerprintViolationStateCovered(t *testing.T) {
	quiet := func() *Oracle {
		o := New(2)
		store(o, 0, 0x100, 7)
		wbRange(o, 0, mem.WordRange(0x100, 1))
		flagSet(o, 0, 3)
		flagWaitDone(o, 1, 3)
		return o
	}
	clean, violated := quiet(), quiet()
	loadEv(violated, 1, 0x100, 7) // fresh read: no violation
	loadEv(clean, 1, 0x100, 7)
	a, b := clean.Fingerprint(), violated.Fingerprint()
	if a != b {
		t.Fatalf("identical clean histories differ: %#x vs %#x", a, b)
	}
	loadEv(violated, 1, 0x100, 0) // stale read -> violation recorded
	if violated.Fingerprint() == a {
		t.Error("recorded violation does not reach the fingerprint")
	}
}
