package cache

import "repro/internal/mem"

// Fingerprint hashes the behavioral state of the cache for the litmus
// explorer's dedup table: every valid frame's tag, dirty mask, MESI
// state, and word values, plus the *relative* LRU order within each set.
// Raw LRU stamps are monotone access counters, so two states reached by
// different (but equivalent) schedules would never compare equal on
// them; what future behavior actually depends on is only which way of a
// set is least recently used, i.e. the rank order of the stamps.
// Event counters are excluded: they never influence behavior.
func (c *Cache) Fingerprint() uint64 {
	h := mem.FNVOffset
	ways := c.cfg.Ways
	rank := make([]int, ways)
	for s := 0; s < c.sets; s++ {
		base := s * ways
		hasValid := false
		for w := 0; w < ways; w++ {
			if c.keys[base+w] != 0 {
				hasValid = true
				break
			}
		}
		if !hasValid {
			continue
		}
		// Rank stamps within the set: rank[w] = number of ways in this
		// set with a strictly smaller stamp. Invalid frames keep stamp 0
		// and tie at the bottom, which is fine — they are skipped below
		// and victim selection prefers them regardless of stamp.
		for w := 0; w < ways; w++ {
			r := 0
			for v := 0; v < ways; v++ {
				if c.lrus[base+v] < c.lrus[base+w] {
					r++
				}
			}
			rank[w] = r
		}
		h = mem.Mix64(h, uint64(s))
		for w := 0; w < ways; w++ {
			if c.keys[base+w] == 0 {
				continue
			}
			l := &c.frames[base+w]
			h = mem.Mix64(h, uint64(w))
			h = mem.Mix64(h, uint64(l.Tag))
			h = mem.Mix64(h, uint64(l.Dirty)<<8|uint64(l.State))
			h = mem.Mix64(h, uint64(rank[w]))
			for i := range l.Words {
				h = mem.Mix64(h, uint64(l.Words[i]))
			}
		}
	}
	return h
}
