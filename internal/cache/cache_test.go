package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func l1() *Cache { return New(Config{Bytes: 32 << 10, Ways: 4}) } // Table III private L1

func lineWords(seed mem.Word) *[mem.WordsPerLine]mem.Word {
	var w [mem.WordsPerLine]mem.Word
	for i := range w {
		w[i] = seed + mem.Word(i)
	}
	return &w
}

func TestGeometry(t *testing.T) {
	c := l1()
	if c.NumFrames() != 512 {
		t.Errorf("frames = %d, want 512", c.NumFrames())
	}
	if c.Sets() != 128 || c.Ways() != 4 {
		t.Errorf("sets/ways = %d/%d", c.Sets(), c.Ways())
	}
}

func TestBadConfigPanics(t *testing.T) {
	cases := []Config{
		{Bytes: 0, Ways: 4},
		{Bytes: 100, Ways: 4},        // not line-divisible
		{Bytes: 3 * 64 * 4, Ways: 4}, // 3 sets: not a power of two
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestLookupInsert(t *testing.T) {
	c := l1()
	if c.Lookup(0x1000) != nil {
		t.Fatal("empty cache should miss")
	}
	if c.Misses != 1 {
		t.Errorf("misses = %d", c.Misses)
	}
	var victim Line
	f, evicted := c.Insert(0x1000, lineWords(7), StateNone, &victim)
	if evicted {
		t.Error("insert into empty set should not evict")
	}
	if got := c.Frame(f).Tag; got != 0x1000 {
		t.Errorf("tag = %#x", got)
	}
	l := c.Lookup(0x1004) // any address within the line
	if l == nil {
		t.Fatal("should hit after insert")
	}
	if l.Words[1] != 8 {
		t.Errorf("word value = %d", l.Words[1])
	}
	if c.Hits != 1 {
		t.Errorf("hits = %d", c.Hits)
	}
}

func TestInsertDuplicatePanics(t *testing.T) {
	c := l1()
	c.Insert(0x40, lineWords(0), StateNone, nil)
	defer func() {
		if recover() == nil {
			t.Error("duplicate insert should panic")
		}
	}()
	c.Insert(0x40, lineWords(0), StateNone, nil)
}

// TestInsertDuplicatePanicsWithInvalidWay pins the subtlety of the merged
// scan: the duplicate check must cover the whole set even when an invalid
// way appears before the duplicate.
func TestInsertDuplicatePanicsWithInvalidWay(t *testing.T) {
	c := New(Config{Bytes: 2 * 64 * 2, Ways: 2})
	c.Insert(0, lineWords(1), StateNone, nil)   // way 0 of set 0
	c.Insert(128, lineWords(2), StateNone, nil) // way 1 of set 0
	c.Invalidate(0)                             // way 0 now invalid, duplicate sits in way 1
	defer func() {
		if recover() == nil {
			t.Error("duplicate insert behind an invalid way should panic")
		}
	}()
	c.Insert(128, lineWords(3), StateNone, nil)
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{Bytes: 2 * 64 * 2, Ways: 2}) // 2 sets × 2 ways
	// Three lines mapping to set 0: line addresses 0, 128, 256.
	c.Insert(0, lineWords(1), StateNone, nil)
	c.Insert(128, lineWords(2), StateNone, nil)
	c.Lookup(0) // make line 0 MRU
	var victim Line
	_, evicted := c.Insert(256, lineWords(3), StateNone, &victim)
	if !evicted || victim.Tag != 128 {
		t.Fatalf("victim = %+v (evicted=%v), want tag 128 (LRU)", victim, evicted)
	}
	if c.Peek(0) == nil || c.Peek(256) == nil || c.Peek(128) != nil {
		t.Error("post-eviction contents wrong")
	}
}

func TestVictimPrefersInvalidWay(t *testing.T) {
	c := New(Config{Bytes: 2 * 64 * 2, Ways: 2})
	c.Insert(0, lineWords(1), StateNone, nil)
	f := c.Victim(128)
	if c.Frame(f).Valid {
		t.Error("victim should be the invalid way")
	}
}

func TestDirtyEvictionCounted(t *testing.T) {
	c := New(Config{Bytes: 1 * 64 * 1, Ways: 1}) // direct-mapped single line
	c.Insert(0, lineWords(1), StateNone, nil)
	c.Frame(c.FrameOf(0)).Dirty = mem.Bit(3)
	var victim Line
	_, evicted := c.Insert(64, lineWords(2), StateNone, &victim)
	if !evicted || !victim.IsDirty() {
		t.Fatal("dirty victim should be returned dirty")
	}
	if c.WritebacksOnEvict != 1 {
		t.Errorf("WritebacksOnEvict = %d", c.WritebacksOnEvict)
	}
}

func TestInvalidate(t *testing.T) {
	c := l1()
	c.Insert(0x80, lineWords(9), StateNone, nil)
	var v Line
	if !c.InvalidateInto(0x80, &v) || v.Tag != 0x80 || v.Words[0] != 9 {
		t.Fatalf("InvalidateInto returned %+v", v)
	}
	if c.Peek(0x80) != nil {
		t.Error("line still present after invalidate")
	}
	if c.Invalidate(0x80) {
		t.Error("second invalidate should report absent")
	}
	c.Insert(0x80, lineWords(3), StateNone, nil)
	if !c.Invalidate(0x80) || c.Peek(0x80) != nil {
		t.Error("Invalidate should drop the line and report presence")
	}
	v = Line{Tag: 0x123}
	if c.InvalidateInto(0xbeef, &v) || v.Tag != 0x123 {
		t.Error("InvalidateInto of an absent line must not touch the buffer")
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	c := l1()
	c.Peek(0x40)
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("Peek must not count hits or misses")
	}
}

func TestFlashInvalidateDrainsDirty(t *testing.T) {
	c := l1()
	c.Insert(0, lineWords(1), StateNone, nil)
	c.Insert(64, lineWords(2), StateNone, nil)
	c.Frame(c.FrameOf(64)).Dirty = mem.FullMask
	var drained []mem.Addr
	n := c.FlashInvalidate(func(l *Line) { drained = append(drained, l.Tag) })
	if n != 2 {
		t.Errorf("invalidated %d lines", n)
	}
	if len(drained) != 1 || drained[0] != 64 {
		t.Errorf("drained = %v, want [64]", drained)
	}
	if c.CountValid() != 0 {
		t.Error("cache not empty after flash invalidate")
	}
}

func TestCountDirty(t *testing.T) {
	c := l1()
	c.Insert(0, lineWords(1), StateNone, nil)
	c.Insert(64, lineWords(2), StateNone, nil)
	c.Frame(c.FrameOf(0)).Dirty = mem.Bit(0)
	if c.CountValid() != 2 || c.CountDirty() != 1 {
		t.Errorf("valid=%d dirty=%d", c.CountValid(), c.CountDirty())
	}
}

// Property: after any sequence of inserts, each set holds at most Ways
// valid lines and every valid tag maps to its own set.
func TestSetInvariant(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(Config{Bytes: 4 * 64 * 2, Ways: 2})
		for _, a := range addrs {
			line := mem.LineAddr(mem.Addr(a))
			if c.Peek(line) == nil {
				c.Insert(line, lineWords(mem.Word(a)), StateNone, nil)
			}
		}
		perSet := make(map[int]int)
		ok := true
		c.ForEachValid(func(_ FrameID, l *Line) {
			set := int(l.Tag/mem.LineBytes) % c.Sets()
			perSet[set]++
			if c.FrameOf(l.Tag) < 0 {
				ok = false
			}
		})
		for _, n := range perSet {
			if n > c.Ways() {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a line just inserted is always findable until something else
// maps to its set and evicts it; Lookup of present lines preserves values.
func TestInsertThenLookupValueFidelity(t *testing.T) {
	f := func(seed uint16) bool {
		c := l1()
		base := mem.LineAddr(mem.Addr(seed) * 64)
		c.Insert(base, lineWords(mem.Word(seed)), StateNone, nil)
		l := c.Lookup(base + 32)
		return l != nil && l.Words[8] == mem.Word(seed)+8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{StateNone: "-", Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
}

// Property: Insert lands in exactly the frame Victim predicts — the merged
// single-scan selection and the standalone Victim scan always agree.
func TestInsertMatchesVictimPrediction(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(Config{Bytes: 4 * 64 * 2, Ways: 2})
		for _, a := range addrs {
			line := mem.LineAddr(mem.Addr(a))
			if c.Peek(line) != nil {
				continue
			}
			want := c.Victim(line)
			got, _ := c.Insert(line, lineWords(mem.Word(a)), StateNone, nil)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
