// Package cache implements the set-associative write-back caches shared by
// both hierarchies in this repository. Lines carry real word values, a
// single valid bit, per-word dirty bits (Section III-B's fine-grained dirty
// bits), and — for the hardware-coherent configuration only — a MESI state
// byte that the incoherent hierarchy ignores.
//
// The cache is a passive structure: it looks up, inserts, evicts, and
// traverses lines, and counts events. All protocol behavior (what to do on
// a miss, where written-back data goes, who gets invalidated) lives in the
// hierarchy packages that own the caches.
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// State is a MESI coherence state. Incoherent caches leave lines in
// StateNone; the mesi package uses the other values.
type State uint8

const (
	// StateNone marks a line whose cache is not hardware-coherent.
	StateNone State = iota
	// Invalid, Shared, Exclusive, Modified are the MESI stable states.
	Invalid
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case StateNone:
		return "-"
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Line is one cache line frame.
type Line struct {
	// Tag is the line address (full address of the line's first byte).
	Tag mem.Addr
	// Valid is the line's single valid bit. INV must clear the whole line
	// because there is only one valid bit (Section III-B).
	Valid bool
	// Dirty holds the per-word dirty bits.
	Dirty mem.LineMask
	// State is the MESI state for hardware-coherent caches.
	State State
	// Words are the line's data.
	Words [mem.WordsPerLine]mem.Word
}

// IsDirty reports whether any word of the line is dirty.
func (l *Line) IsDirty() bool { return l.Valid && l.Dirty != 0 }

// FrameID identifies a physical line frame within a cache. The MEB records
// frame IDs rather than addresses: for a 32-KB cache with 64-B lines that
// is a 9-bit ID (Table III).
type FrameID int

// Config sizes a cache.
type Config struct {
	// Bytes is the total capacity.
	Bytes int
	// Ways is the associativity.
	Ways int
}

// Cache is one set-associative write-back cache.
//
// Line metadata that set scans need — the packed tag+valid key and the
// LRU stamp — lives in dense side arrays (structure-of-arrays): a Line
// is hundreds of bytes, so probing a set through the frames slice would
// stride whole cache lines of simulator memory per way, while the side
// arrays pack 8 ways into one. Lookup, Peek, FrameOf, Victim and Insert
// touch only the side arrays until they have a frame to return.
type Cache struct {
	cfg    Config
	sets   int
	frames []Line   // sets × ways, frame f = set*ways + way
	keys   []uint64 // tag | 1 when valid, 0 when invalid
	lrus   []uint64 // LRU stamps, parallel to frames
	clock  uint64

	// Event counters.
	Hits, Misses, Evictions, WritebacksOnEvict int64
}

// keyOf packs a line address and the valid bit into one comparable word.
// Line addresses are line-aligned, so bit 0 is free for the valid flag;
// an invalid frame's key is 0, which no valid line can produce.
func keyOf(line mem.Addr) uint64 { return uint64(line) | 1 }

// Stats is the cache's event counters in one bundle, read by the
// observability layer at snapshot time (the counters themselves are
// maintained on the lookup/insert paths regardless, so attaching a
// recorder adds no per-access cost here).
type Stats struct {
	Hits, Misses, Evictions, WritebacksOnEvict int64
}

// Stats returns the current counter values.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.Hits, Misses: c.Misses, Evictions: c.Evictions, WritebacksOnEvict: c.WritebacksOnEvict}
}

// New builds a cache. Capacity must be a multiple of ways × line size and
// the set count must be a power of two.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 || cfg.Bytes <= 0 {
		panic(fmt.Sprintf("cache: bad config %+v", cfg))
	}
	lines := cfg.Bytes / mem.LineBytes
	if lines*mem.LineBytes != cfg.Bytes || lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache: %d bytes not divisible into %d-way sets of %d-byte lines",
			cfg.Bytes, cfg.Ways, mem.LineBytes))
	}
	sets := lines / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	return &Cache{
		cfg:    cfg,
		sets:   sets,
		frames: make([]Line, lines),
		keys:   make([]uint64, lines),
		lrus:   make([]uint64, lines),
	}
}

// NumFrames returns the number of line frames.
func (c *Cache) NumFrames() int { return len(c.frames) }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

// setOf returns the set index for a line address.
func (c *Cache) setOf(line mem.Addr) int {
	return int(line/mem.LineBytes) & (c.sets - 1)
}

// FrameOf returns the frame holding the given line address, or -1.
func (c *Cache) FrameOf(line mem.Addr) FrameID {
	line = mem.LineAddr(line)
	want := keyOf(line)
	base := c.setOf(line) * c.cfg.Ways
	for f := base; f < base+c.cfg.Ways; f++ {
		if c.keys[f] == want {
			return FrameID(f)
		}
	}
	return -1
}

// Frame returns the line in frame f. The pointer stays valid until the
// frame is reused; callers must not retain it across Insert calls.
func (c *Cache) Frame(f FrameID) *Line { return &c.frames[f] }

// Lookup returns the valid line holding addr's line, or nil. A successful
// lookup refreshes LRU state and counts a hit; a failed one counts a miss.
// The set is scanned exactly once.
func (c *Cache) Lookup(addr mem.Addr) *Line {
	line := mem.LineAddr(addr)
	want := keyOf(line)
	base := c.setOf(line) * c.cfg.Ways
	for f := base; f < base+c.cfg.Ways; f++ {
		if c.keys[f] == want {
			c.Hits++
			c.touch(FrameID(f))
			return &c.frames[f]
		}
	}
	c.Misses++
	return nil
}

// Peek returns the valid line holding addr's line without touching LRU or
// counters. Hierarchy-internal probes (directory checks, WB traversals) use
// Peek so they do not perturb replacement or hit statistics.
func (c *Cache) Peek(addr mem.Addr) *Line {
	line := mem.LineAddr(addr)
	want := keyOf(line)
	base := c.setOf(line) * c.cfg.Ways
	for f := base; f < base+c.cfg.Ways; f++ {
		if c.keys[f] == want {
			return &c.frames[f]
		}
	}
	return nil
}

func (c *Cache) touch(f FrameID) {
	c.clock++
	c.lrus[f] = c.clock
}

// Victim selects the frame an insertion of line addr would use: an invalid
// way if one exists, else the LRU way of the set. It does not modify the
// cache.
func (c *Cache) Victim(addr mem.Addr) FrameID {
	base := c.setOf(mem.LineAddr(addr)) * c.cfg.Ways
	best := FrameID(base)
	for f := base; f < base+c.cfg.Ways; f++ {
		if c.keys[f] == 0 {
			return FrameID(f)
		}
		if c.lrus[f] < c.lrus[best] {
			best = FrameID(f)
		}
	}
	return best
}

// Insert installs a line with the given data and state in a single set
// scan (duplicate check, invalid-way search, and LRU victim selection all
// derive from the same pass). It returns the frame the line landed in and
// whether a valid line was displaced; if so, the displaced line is copied
// into the caller-provided victim buffer (which may be nil when the caller
// only cares that an eviction happened). The caller is responsible for
// writing back the victim's dirty words; the WritebacksOnEvict counter
// tracks how often that was needed. Insert panics if the line is already
// present.
func (c *Cache) Insert(line mem.Addr, words *[mem.WordsPerLine]mem.Word, st State, victim *Line) (FrameID, bool) {
	line = mem.LineAddr(line)
	want := keyOf(line)
	base := c.setOf(line) * c.cfg.Ways
	invalid := -1
	best := base
	for f := base; f < base+c.cfg.Ways; f++ {
		k := c.keys[f]
		if k == 0 {
			if invalid < 0 {
				invalid = f
			}
			continue
		}
		if k == want {
			panic(fmt.Sprintf("cache: Insert of already-present line %#x", uint32(line)))
		}
		if c.lrus[f] < c.lrus[best] {
			best = f
		}
	}
	f := invalid
	evicted := false
	if f < 0 {
		f = best
		if victim != nil {
			*victim = c.frames[f]
		}
		c.Evictions++
		if c.frames[f].IsDirty() {
			c.WritebacksOnEvict++
		}
		evicted = true
	}
	c.frames[f] = Line{Tag: line, Valid: true, State: st, Words: *words}
	c.keys[f] = want
	c.touch(FrameID(f))
	return FrameID(f), evicted
}

// InvalidateFrame clears frame f. The caller must have dealt with dirty
// data first (written it back or deliberately dropped it).
func (c *Cache) InvalidateFrame(f FrameID) {
	c.frames[f] = Line{}
	c.keys[f] = 0
	c.lrus[f] = 0
}

// Invalidate removes addr's line if present and reports whether it was
// there. Callers that need the dying line's data (for example to write
// back its dirty words) use InvalidateInto instead.
func (c *Cache) Invalidate(addr mem.Addr) bool {
	f := c.FrameOf(addr)
	if f < 0 {
		return false
	}
	c.InvalidateFrame(f)
	return true
}

// InvalidateInto removes addr's line if present, copying the line as it
// was into the caller-provided victim buffer, and reports whether it was
// present. The buffer is untouched when the line is absent.
func (c *Cache) InvalidateInto(addr mem.Addr, victim *Line) bool {
	f := c.FrameOf(addr)
	if f < 0 {
		return false
	}
	*victim = c.frames[f]
	c.InvalidateFrame(f)
	return true
}

// ForEachValid calls fn for every valid line. fn may mutate the line (for
// example, clear dirty bits during a full writeback) but must not insert or
// invalidate.
func (c *Cache) ForEachValid(fn func(f FrameID, l *Line)) {
	for i := range c.frames {
		if c.frames[i].Valid {
			fn(FrameID(i), &c.frames[i])
		}
	}
}

// CountValid returns the number of valid lines.
func (c *Cache) CountValid() int {
	n := 0
	for i := range c.frames {
		if c.frames[i].Valid {
			n++
		}
	}
	return n
}

// CountDirty returns the number of lines with at least one dirty word.
func (c *Cache) CountDirty() int {
	n := 0
	for i := range c.frames {
		if c.frames[i].IsDirty() {
			n++
		}
	}
	return n
}

// FlashInvalidate clears every valid line, calling drain first on each
// line that has dirty words so the caller can save them. It returns the
// number of lines invalidated. This is the INV ALL primitive; per Section
// III-B, dirty data is never lost by INV.
func (c *Cache) FlashInvalidate(drain func(l *Line)) int {
	n := 0
	for i := range c.frames {
		if !c.frames[i].Valid {
			continue
		}
		if c.frames[i].IsDirty() && drain != nil {
			drain(&c.frames[i])
		}
		c.InvalidateFrame(FrameID(i))
		n++
	}
	return n
}
