package fuzzgen

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/envelope"
	"repro/internal/litmus"
	"repro/internal/runner"
)

// Options parameterizes one fuzz campaign.
type Options struct {
	// SeedLo/SeedHi bound the seed range [SeedLo, SeedHi): one generated
	// program per seed.
	SeedLo, SeedHi uint64
	// MutantsPerProgram caps the under-annotated variants derived from
	// each program (default 2).
	MutantsPerProgram int
	// Configs is the configuration matrix (default: Base, B+M, B+I,
	// B+M+I — every incoherent buffer combination).
	Configs []litmus.Config
	// Parallel is the sweep worker count (<= 0 means GOMAXPROCS).
	Parallel int
	// Budget soft-bounds the campaign's wall time: cells starting after
	// it expires are skipped (and counted). 0 means no budget. A
	// budgeted campaign trades determinism of the report for timeliness;
	// reproducibility tests run without one.
	Budget time.Duration
	// FailSeeds forces the named seeds' first detected mutant through
	// the shrinker and fails the cell with a runner.ReproError — the
	// deterministic failure path the shrinker-reproducibility tests and
	// repro harvesting use.
	FailSeeds []uint64
}

func (o Options) withDefaults() Options {
	if o.MutantsPerProgram == 0 {
		o.MutantsPerProgram = 2
	}
	if len(o.Configs) == 0 {
		o.Configs = []litmus.Config{litmus.Base, litmus.BM, litmus.BI, litmus.BMI}
	}
	return o
}

// Detection is one detected mutant: the E10 table's raw material and
// the harvesting input for suite promotion.
type Detection struct {
	Seed uint64 `json:"seed"`
	// Config is the configuration the mutant ran under.
	Config string `json:"config"`
	// Mutation is the weakening class (drop-wb, weaken-notify, ...).
	Mutation string `json:"mutation"`
	// Thread/Index locate the mutation site.
	Thread int `json:"thread"`
	Index  int `json:"index"`
	// Violation is the oracle's class for the first violation.
	Violation string `json:"violation"`
	// Mutant names the mutated test.
	Mutant string `json:"mutant"`
}

// Report is the campaign's machine-readable outcome, serialized under
// the hic/v2 envelope with kind "fuzz".
type Report struct {
	Schema string        `json:"schema"`
	Kind   envelope.Kind `json:"kind"`
	SeedLo uint64        `json:"seed_lo"`
	SeedHi uint64        `json:"seed_hi"`
	// Programs and Mutants count what actually ran (budget-skipped
	// seeds excluded); Cells and SkippedCells count (seed, config)
	// tasks.
	Programs     int `json:"programs"`
	Mutants      int `json:"mutants"`
	Cells        int `json:"cells"`
	SkippedCells int `json:"skipped_cells,omitempty"`
	// Detected and Masked count mutants by mutation class and
	// configuration — the E10 detection-rate table.
	Detected map[string]map[string]int `json:"detected"`
	Masked   map[string]map[string]int `json:"masked"`
	// MaskReasons counts undetected mutants by masking-analysis verdict.
	MaskReasons map[string]int `json:"mask_reasons"`
	// Detections lists every detected mutant in task order.
	Detections []Detection `json:"detections,omitempty"`
	// Runs holds one record per (seed, config) cell, in task order;
	// failed cells carry error_kind "fuzz-repro" and a shrunk repro.
	Runs []runner.RunRecord `json:"runs"`
}

// aggregate collects campaign statistics across workers. Counters
// commute, and ordered slices are keyed by cell so the final report is
// identical whatever the execution order — the campaign's reports must
// be byte-identical between 1 and N workers.
type aggregate struct {
	mu          sync.Mutex
	programs    int
	mutants     int
	cells       int
	skipped     int
	detected    map[string]map[string]int
	masked      map[string]map[string]int
	maskReasons map[string]int
	detections  map[cellKey][]Detection
}

type cellKey struct {
	seed uint64
	cfg  int
}

func newAggregate() *aggregate {
	return &aggregate{
		detected:    map[string]map[string]int{},
		masked:      map[string]map[string]int{},
		maskReasons: map[string]int{},
		detections:  map[cellKey][]Detection{},
	}
}

func bump(m map[string]map[string]int, class, cfg string) {
	if m[class] == nil {
		m[class] = map[string]int{}
	}
	m[class][cfg]++
}

// Campaign generates, mutates, and checks every seed in the range under
// every configuration, through the runner so each (seed, config) cell
// is a first-class run record. The returned error joins the failed
// cells' errors (runner semantics); the report is complete either way.
func Campaign(ctx context.Context, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	agg := newAggregate()
	fail := make(map[uint64]bool, len(opts.FailSeeds))
	for _, s := range opts.FailSeeds {
		fail[s] = true
	}
	var deadline time.Time
	if opts.Budget > 0 {
		deadline = time.Now().Add(opts.Budget)
	}

	var tasks []runner.Task
	for seed := opts.SeedLo; seed < opts.SeedHi; seed++ {
		for ci, cfg := range opts.Configs {
			seed, ci, cfg := seed, ci, cfg
			tasks = append(tasks, runner.Task{
				Workload: fmt.Sprintf("s%d", seed),
				Config:   cfg.Name,
				Run: func(ctx context.Context) (*runner.Outcome, error) {
					return runCell(seed, ci, cfg, opts, agg, fail[seed], deadline)
				},
			})
		}
	}
	grid := runner.Run(ctx, tasks, runner.Options{Parallel: opts.Parallel})

	rep := &Report{
		Schema:       envelope.SchemaV2,
		Kind:         envelope.KindFuzz,
		SeedLo:       opts.SeedLo,
		SeedHi:       opts.SeedHi,
		Programs:     agg.programs,
		Mutants:      agg.mutants,
		Cells:        agg.cells,
		SkippedCells: agg.skipped,
		Detected:     agg.detected,
		Masked:       agg.masked,
		MaskReasons:  agg.maskReasons,
		Runs:         grid.Records(),
	}
	for seed := opts.SeedLo; seed < opts.SeedHi; seed++ {
		for ci := range opts.Configs {
			rep.Detections = append(rep.Detections, agg.detections[cellKey{seed, ci}]...)
		}
	}
	return rep, grid.Err()
}

// runCell checks one (seed, config) cell: the annotated program must be
// violation-free and engine-stable; each mutant must be detected with
// attribution or masked. Failures shrink to a minimal repro and surface
// as a *runner.ReproError.
func runCell(seed uint64, ci int, cfg litmus.Config, opts Options, agg *aggregate, forceFail bool, deadline time.Time) (*runner.Outcome, error) {
	if !deadline.IsZero() && time.Now().After(deadline) {
		agg.mu.Lock()
		agg.skipped++
		agg.mu.Unlock()
		return &runner.Outcome{}, nil
	}
	p := Gen(seed)
	name := p.Test.Name

	ann := Check(p.Test, cfg)
	if ann.Err != nil {
		return nil, shrinkFailure(name, cfg, p.Test,
			Signature{Kind: "error", Class: errorClass(ann.Err)},
			fmt.Errorf("annotated program failed: %w", ann.Err))
	}
	if len(ann.Violations) > 0 {
		return nil, shrinkFailure(name, cfg, p.Test,
			Signature{Kind: "violation", Class: string(ann.Violations[0].Class)},
			fmt.Errorf("annotated program raised %d oracle violation(s); first: %v", len(ann.Violations), ann.Violations[0]))
	}
	if ann.Diverged != "" {
		return nil, shrinkFailure(name, cfg, p.Test, Signature{Kind: "diverge"},
			fmt.Errorf("annotated program diverged across engines: %s", ann.Diverged))
	}

	muts := Mutants(p, opts.MutantsPerProgram)
	agg.mu.Lock()
	agg.cells++
	if ci == 0 {
		agg.programs++
		agg.mutants += len(muts)
	}
	agg.mu.Unlock()

	var forced *Mutant
	var forcedSig Signature
	for i := range muts {
		m := muts[i]
		v := Judge(p, m, cfg)
		switch {
		case v.Err != nil:
			return nil, shrinkFailure(m.Test.Name, cfg, m.Test,
				Signature{Kind: "error", Class: errorClass(v.Err)},
				fmt.Errorf("mutant failed: %w", v.Err))
		case v.Diverged != "":
			return nil, shrinkFailure(m.Test.Name, cfg, m.Test, Signature{Kind: "diverge"},
				fmt.Errorf("mutant diverged across engines: %s", v.Diverged))
		case v.BadAttribution != "":
			return nil, shrinkFailure(m.Test.Name, cfg, m.Test,
				Signature{Kind: "violation", Class: string(v.Violations[0].Class)},
				fmt.Errorf("mutant detected with wrong attribution: %s", v.BadAttribution))
		case v.Detected:
			agg.mu.Lock()
			bump(agg.detected, m.Site.Class, cfg.Name)
			k := cellKey{seed, ci}
			agg.detections[k] = append(agg.detections[k], Detection{
				Seed: seed, Config: cfg.Name, Mutation: m.Site.Class,
				Thread: m.Site.Thread, Index: m.Site.Index,
				Violation: string(v.Violations[0].Class), Mutant: m.Test.Name,
			})
			agg.mu.Unlock()
			if forced == nil && forceFail {
				forced = &muts[i]
				forcedSig = Signature{Kind: "violation", Class: string(v.Violations[0].Class)}
			}
		default:
			agg.mu.Lock()
			bump(agg.masked, m.Site.Class, cfg.Name)
			agg.maskReasons[v.MaskReason]++
			agg.mu.Unlock()
		}
	}
	if forced != nil {
		return nil, shrinkFailure(forced.Test.Name, cfg, forced.Test, forcedSig,
			fmt.Errorf("fail-seed %d: forcing detected mutant through the shrinker", seed))
	}
	return &runner.Outcome{Result: ann.Result}, nil
}

// shrinkFailure reduces the failing program to a minimal repro and
// wraps the cause in a runner.ReproError, so the cell's run record is a
// self-contained regression test (error_kind "fuzz-repro").
func shrinkFailure(name string, cfg litmus.Config, t litmus.Test, sig Signature, cause error) error {
	shrunk := Shrink(t, cfg, sig)
	return &runner.ReproError{
		Workload: name,
		Config:   cfg.Name,
		Repro:    ReproText(shrunk, cfg, sig),
		Err:      cause,
	}
}
