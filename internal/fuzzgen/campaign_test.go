package fuzzgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/envelope"
	"repro/internal/litmus"
	"repro/internal/runner"
)

// encodeReport marshals a report canonically: host wall times (the only
// nondeterministic field) are stripped first.
func encodeReport(t *testing.T, rep *Report) []byte {
	t.Helper()
	canon := *rep
	canon.Runs = append([]runner.RunRecord(nil), rep.Runs...)
	for i := range canon.Runs {
		canon.Runs[i].WallMS = 0
	}
	b, err := json.MarshalIndent(&canon, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCampaignAcceptance is the tentpole gate: a pinned seed range —
// at least 200 programs and 100 mutants in full mode — completes with
// zero annotated-program violations, every mutant detected with
// attribution or attributed to masking analysis, and byte-identical
// serial / fast-forward / block-parallel documents on the entire
// corpus. Any breach fails the campaign with a shrunk repro.
func TestCampaignAcceptance(t *testing.T) {
	hi := uint64(201)
	if testing.Short() {
		hi = 31
	}
	rep, err := Campaign(context.Background(), Options{SeedLo: 1, SeedHi: hi})
	if err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	if rep.Schema != envelope.SchemaV2 || rep.Kind != envelope.KindFuzz {
		t.Fatalf("report envelope = %s/%s", rep.Schema, rep.Kind)
	}
	if want := int(hi - 1); rep.Programs != want {
		t.Fatalf("programs = %d, want %d", rep.Programs, want)
	}
	minMutants := 100
	if testing.Short() {
		minMutants = 15
	}
	if rep.Mutants < minMutants {
		t.Fatalf("mutants = %d, want >= %d", rep.Mutants, minMutants)
	}
	sum := func(m map[string]map[string]int) int {
		n := 0
		for _, byCfg := range m {
			for _, c := range byCfg {
				n += c
			}
		}
		return n
	}
	det, masked := sum(rep.Detected), sum(rep.Masked)
	// Every (mutant, config) judgment lands in exactly one bucket.
	if want := rep.Mutants * 4; det+masked != want {
		t.Fatalf("detected %d + masked %d = %d judgments, want %d", det, masked, det+masked, want)
	}
	if det == 0 {
		t.Fatal("campaign detected no mutants — the detection table is vacuous")
	}
	if masked > 0 && len(rep.MaskReasons) == 0 {
		t.Fatal("masked mutants without mask reasons")
	}
	if len(rep.Runs) != int(hi-1)*4 {
		t.Fatalf("runs = %d, want %d", len(rep.Runs), int(hi-1)*4)
	}
	for _, r := range rep.Runs {
		if r.Error != "" {
			t.Fatalf("%s/%s: %s", r.Workload, r.Config, r.Error)
		}
	}
}

// TestCampaignDeterministicAcrossWorkers is the shrinker-determinism
// gate: the same seed range with a forced failure produces a
// byte-identical report — shrunk repro included — whether the campaign
// runs on 1 worker or 8. (CI runs the suite with -shuffle=on, so test
// order independence rides along.)
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	const lo, hi = 1, 31
	base, err := Campaign(context.Background(), Options{SeedLo: lo, SeedHi: hi})
	if err != nil {
		t.Fatalf("baseline campaign failed: %v", err)
	}
	if len(base.Detections) == 0 {
		t.Fatal("no detections in the baseline range")
	}
	failSeed := base.Detections[0].Seed

	run := func(workers int) (*Report, []byte) {
		rep, err := Campaign(context.Background(), Options{
			SeedLo: lo, SeedHi: hi, Parallel: workers, FailSeeds: []uint64{failSeed},
		})
		if err == nil {
			t.Fatalf("workers=%d: campaign with fail-seed %d did not fail", workers, failSeed)
		}
		return rep, encodeReport(t, rep)
	}
	rep1, doc1 := run(1)
	_, doc8 := run(8)
	if !bytes.Equal(doc1, doc8) {
		t.Fatalf("campaign reports differ between 1 and 8 workers:\n--- 1 worker\n%s\n--- 8 workers\n%s", doc1, doc8)
	}

	// The forced cells carry the shrunk repro, self-contained.
	found := false
	for _, r := range rep1.Runs {
		if r.ErrorKind == "" {
			continue
		}
		if r.ErrorKind != "fuzz-repro" {
			t.Fatalf("%s/%s: error_kind = %q, want fuzz-repro", r.Workload, r.Config, r.ErrorKind)
		}
		if r.Repro == "" || !strings.Contains(r.Repro, "Threads:") {
			t.Fatalf("%s/%s: repro is not a litmus-DSL test:\n%s", r.Workload, r.Config, r.Repro)
		}
		var sig string
		var ops int
		if _, err := fmt.Sscanf(r.Repro[strings.Index(r.Repro, "signature"):], "signature %s %d ops", &sig, &ops); err != nil {
			t.Fatalf("%s/%s: cannot parse op count from repro header: %v\n%s", r.Workload, r.Config, err, r.Repro)
		}
		if ops > 6 {
			t.Errorf("%s/%s: shrunk repro has %d ops, want <= 6:\n%s", r.Workload, r.Config, ops, r.Repro)
		}
		found = true
	}
	if !found {
		t.Fatal("no fuzz-repro cell in the failed campaign")
	}
}

// TestShrinkDeterministic pins the shrinker in isolation: shrinking the
// same failing mutant twice yields byte-identical repro text.
func TestShrinkDeterministic(t *testing.T) {
	base, err := Campaign(context.Background(), Options{SeedLo: 1, SeedHi: 31})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Detections) == 0 {
		t.Fatal("no detections to shrink")
	}
	d := base.Detections[0]
	p := Gen(d.Seed)
	var mut *Mutant
	for _, m := range Mutants(p, 2) {
		if m.Test.Name == d.Mutant {
			m := m
			mut = &m
		}
	}
	if mut == nil {
		t.Fatalf("mutant %s not re-derivable from seed %d", d.Mutant, d.Seed)
	}
	cfg, ok := litmus.ConfigByName(d.Config)
	if !ok {
		t.Fatalf("unknown config %s", d.Config)
	}
	sig := Signature{Kind: "violation", Class: d.Violation}
	shrunk := Shrink(mut.Test, cfg, sig)
	a := ReproText(shrunk, cfg, sig)
	b := ReproText(Shrink(mut.Test, cfg, sig), cfg, sig)
	if a != b {
		t.Fatalf("two shrinks of the same mutant differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if got := SignatureOf(shrunk, cfg); got != sig {
		t.Fatalf("shrunk repro signature = %v, want %v", got, sig)
	}
}
