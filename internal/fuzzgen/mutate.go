package fuzzgen

import (
	"fmt"

	"repro/internal/litmus"
	"repro/internal/mem"
)

// Mutant is one under-annotated variant of a generated program: exactly
// one site weakened.
type Mutant struct {
	// Seed is the parent program's seed.
	Seed uint64
	// Site is the weakened site (coordinates in the parent's threads).
	Site Site
	// Test is the mutated program.
	Test litmus.Test
}

// mutate applies the site's weakening to a deep copy of t.
//
//	drop-wb / drop-inv          delete the raw IWB / IINV
//	weaken-notify               INotifyFlag -> IFlagSet  (keeps the sync, drops the WB)
//	weaken-await                IAwaitFlag  -> IFlagWait (keeps the sync, drops the INV)
//	weaken-csenter              ICSEnter    -> IAcquire
//	weaken-csexit               ICSExit     -> IRelease
//
// Every weakening preserves the raw synchronization op, so the mutant
// cannot deadlock and the oracle's vector clocks still order the racing
// accesses — which is exactly what lets it check them and attribute the
// stale value to the dropped WB/INV.
func mutate(t litmus.Test, s Site) litmus.Test {
	out := t
	out.Threads = make([][]litmus.Instr, len(t.Threads))
	for i, th := range t.Threads {
		out.Threads[i] = append([]litmus.Instr(nil), th...)
	}
	th := out.Threads[s.Thread]
	in := th[s.Index]
	switch s.Class {
	case "drop-wb", "drop-inv":
		out.Threads[s.Thread] = append(th[:s.Index:s.Index], th[s.Index+1:]...)
	case "weaken-notify":
		in.Kind = litmus.IFlagSet
		th[s.Index] = in
	case "weaken-await":
		in.Kind = litmus.IFlagWait
		th[s.Index] = in
	case "weaken-csenter":
		in.Kind = litmus.IAcquire
		th[s.Index] = in
	case "weaken-csexit":
		in.Kind = litmus.IRelease
		th[s.Index] = in
	default:
		panic("fuzzgen: unknown mutation class " + s.Class)
	}
	out.Name = fmt.Sprintf("%s-%s-t%d.%d", t.Name, s.Class, s.Thread, s.Index)
	return out
}

// Mutants derives up to max single-site mutants of p, deterministically:
// sites are taken in an evenly spread order over the site list, seeded
// by the program itself, so the same program always yields the same
// mutants.
func Mutants(p Program, max int) []Mutant {
	if max <= 0 || len(p.Sites) == 0 {
		return nil
	}
	idx := make([]int, 0, max)
	if len(p.Sites) <= max {
		for i := range p.Sites {
			idx = append(idx, i)
		}
	} else {
		r := newRNG(p.Seed ^ 0xa5a5a5a5a5a5a5a5)
		start := r.intn(len(p.Sites))
		stride := len(p.Sites)/max + 1
		seen := make(map[int]bool)
		for i := start; len(idx) < max; i += stride {
			j := i % len(p.Sites)
			for seen[j] {
				j = (j + 1) % len(p.Sites)
			}
			seen[j] = true
			idx = append(idx, j)
		}
	}
	out := make([]Mutant, 0, len(idx))
	for _, i := range idx {
		s := p.Sites[i]
		out = append(out, Mutant{Seed: p.Seed, Site: s, Test: mutate(p.Test, s)})
	}
	return out
}

// wbFamily reports whether kind publishes (covers pending stores) in the
// annotated lowering: the raw per-line WB, the config-lowered publish,
// and the annotated release-side forms, which all lower through a
// WB ALL (or the MEB-served variant).
func wbFamily(k litmus.InstrKind) bool {
	switch k {
	case litmus.IWB, litmus.IPublish, litmus.INotifyFlag, litmus.ICSExit, litmus.IBarrierSync:
		return true
	}
	return false
}

// invFamily reports whether kind invalidates in the annotated lowering.
func invFamily(k litmus.InstrKind) bool {
	switch k {
	case litmus.IINV, litmus.IInvalidate, litmus.IAwaitFlag, litmus.ICSEnter, litmus.IBarrierSync:
		return true
	}
	return false
}

// wbCoverage returns the variables whose publication the site's mutation
// drops: the thread's still-unpublished stores at the site (whole-cache
// forms take all of them, the per-line IWB its own line's share). The
// walk replays the thread's earlier publications, so a store already
// written back — the DMA motif's pinned IWB, an earlier notify — is not
// charged to the site. IPublish is treated per-line (its weakest
// lowering), which only enlarges the set: a sound superset under every
// configuration.
func wbCoverage(t litmus.Test, s Site) map[litmus.VarID]bool {
	th := t.Threads[s.Thread]
	pending := make(map[litmus.VarID]bool)
	clearLine := func(v litmus.VarID) {
		delete(pending, v)
		for u := range covLine(t, v) {
			delete(pending, u)
		}
	}
	for i := 0; i < s.Index; i++ {
		switch in := th[i]; in.Kind {
		case litmus.IStore:
			pending[in.Var] = true
		case litmus.IWB, litmus.IPublish:
			clearLine(in.Var)
		case litmus.INotifyFlag, litmus.ICSExit, litmus.IBarrierSync:
			pending = make(map[litmus.VarID]bool)
		}
	}
	if in := th[s.Index]; in.Kind == litmus.IWB {
		cov := make(map[litmus.VarID]bool)
		if pending[in.Var] {
			cov[in.Var] = true
		}
		for u := range covLine(t, in.Var) {
			if pending[u] {
				cov[u] = true
			}
		}
		return cov
	}
	return pending
}

// invCoverage returns the variables a dropped invalidation could leave
// stale in the reader's caches: everything the thread loads after the
// site (whole-cache forms) or the site's own line (per-line forms).
func invCoverage(t litmus.Test, s Site) map[litmus.VarID]bool {
	cov := make(map[litmus.VarID]bool)
	in := t.Threads[s.Thread][s.Index]
	if in.Kind == litmus.IINV {
		cov[in.Var] = true
		addLineMates(t, in.Var, cov)
		return cov
	}
	for i := s.Index + 1; i < len(t.Threads[s.Thread]); i++ {
		if post := t.Threads[s.Thread][i]; post.Kind == litmus.ILoad {
			cov[post.Var] = true
		}
	}
	return cov
}

// addLineMates extends a coverage set with the variables sharing v's
// cache line: WB and INV act on whole lines, so under the packed layout
// a per-line operation covers the neighbors too.
func addLineMates(t litmus.Test, v litmus.VarID, cov map[litmus.VarID]bool) {
	if !t.Packed {
		return
	}
	line := mem.LineAddr(t.AddrOf(v))
	for u := 0; u < t.Vars; u++ {
		if mem.LineAddr(t.AddrOf(litmus.VarID(u))) == line {
			cov[litmus.VarID(u)] = true
		}
	}
}
