package fuzzgen

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/litmus"
	"repro/internal/mem"
)

// Signature identifies a failure for shrinking: the shrinker only
// accepts a smaller candidate if it reproduces the same signature.
type Signature struct {
	// Kind is "violation" (oracle-flagged run), "diverge" (tri-engine
	// document mismatch), "error" (run failure), or "clean".
	Kind string
	// Class is the first violation's class when Kind == "violation".
	Class string
}

func (s Signature) String() string {
	if s.Class != "" {
		return s.Kind + ":" + s.Class
	}
	return s.Kind
}

// SignatureOf classifies one check outcome.
func SignatureOf(t litmus.Test, cfg litmus.Config) Signature {
	return signatureOf(Check(t, cfg))
}

func signatureOf(res CheckResult) Signature {
	switch {
	case res.Err != nil:
		return Signature{Kind: "error", Class: errorClass(res.Err)}
	case res.Diverged != "":
		return Signature{Kind: "diverge"}
	case len(res.Violations) > 0:
		return Signature{Kind: "violation", Class: string(res.Violations[0].Class)}
	}
	return Signature{Kind: "clean"}
}

// errorClass buckets a run error into a stable family, so shrinking an
// errored case cannot drift to an unrelated failure (a dropped lock
// acquire turning a DMA-reordering bug into a deadlock, say). The full
// error text carries run-specific detail (cycle counts) and cannot be
// the signature itself.
func errorClass(err error) string {
	s := err.Error()
	switch {
	case strings.Contains(s, "cross-block DMA"):
		return "dma-reorder"
	case strings.Contains(s, "deadlock"):
		return "deadlock"
	case strings.Contains(s, "livelock"):
		return "livelock"
	case strings.Contains(s, "panic"):
		return "panic"
	}
	return "other"
}

// stable runs the checker twice and reports the signature only if both
// runs agree byte for byte — the per-step determinism re-validation the
// shrinker relies on. A candidate whose two runs disagree is rejected
// outright (and would itself be a determinism bug worth a shrunk repro).
func stable(t litmus.Test, cfg litmus.Config) (Signature, bool) {
	a := Check(t, cfg)
	b := Check(t, cfg)
	sa, sb := signatureOf(a), signatureOf(b)
	if sa != sb || !bytes.Equal(a.OracleDoc, b.OracleDoc) {
		return Signature{}, false
	}
	return sa, true
}

// Shrink reduces t to a smaller program that still reproduces want
// under cfg: greedy linear delta debugging over instructions and
// threads, iterated to a fixpoint, followed by a canonicalization pass
// that compacts variables, registers, sync IDs, and store values. Every
// accepted step re-validates determinism (two identical check runs).
// The pass order is fixed, so the same input always shrinks to the same
// output — the property the campaign's reproducibility tests pin.
func Shrink(t litmus.Test, cfg litmus.Config, want Signature) litmus.Test {
	cur := t
	accept := func(cand litmus.Test) bool {
		if cand.Validate() != nil {
			return false
		}
		got, ok := stable(cand, cfg)
		return ok && got == want
	}

	// Unpack first: a line-per-variable repro is simpler to read and is
	// the layout the litmus suite (and its explorer) accepts.
	if cur.Packed {
		cand := cur
		cand.Packed = false
		if accept(cand) {
			cur = cand
		}
	}

	for changed := true; changed; {
		changed = false
		// Remove instructions, one at a time: threads in ascending
		// order, instructions from the back (so earlier indices stay
		// valid as the tail shrinks).
		for ti := 0; ti < len(cur.Threads); ti++ {
			for ii := len(cur.Threads[ti]) - 1; ii >= 0; ii-- {
				cand := removeInstr(cur, ti, ii)
				if accept(cand) {
					cur = cand
					changed = true
				}
			}
		}
		// Remove whole threads, from the back.
		for ti := len(cur.Threads) - 1; ti >= 0 && len(cur.Threads) > 1; ti-- {
			cand := removeThread(cur, ti)
			if accept(cand) {
				cur = cand
				changed = true
			}
		}
	}

	if cand := canonicalize(cur); accept(cand) {
		cur = cand
	}
	return cur
}

// removeInstr returns t without thread ti's instruction ii.
func removeInstr(t litmus.Test, ti, ii int) litmus.Test {
	out := t
	out.Threads = make([][]litmus.Instr, len(t.Threads))
	for i, th := range t.Threads {
		if i != ti {
			out.Threads[i] = th
			continue
		}
		ns := make([]litmus.Instr, 0, len(th)-1)
		ns = append(ns, th[:ii]...)
		ns = append(ns, th[ii+1:]...)
		out.Threads[i] = ns
	}
	return out
}

// removeThread returns t without thread ti.
func removeThread(t litmus.Test, ti int) litmus.Test {
	out := t
	out.Threads = make([][]litmus.Instr, 0, len(t.Threads)-1)
	for i, th := range t.Threads {
		if i != ti {
			out.Threads = append(out.Threads, th)
		}
	}
	return out
}

// canonicalize compacts the shrunk program: variables, registers, and
// sync IDs renumber in first-use order; store and flag values renumber
// 1, 2, 3, ... preserving equality (flag waits keep matching their
// sets); Final lists exactly the surviving variables. The caller
// re-checks the signature and discards the pass if it broke.
func canonicalize(t litmus.Test) litmus.Test {
	vars := map[litmus.VarID]litmus.VarID{}
	regs := map[litmus.Reg]litmus.Reg{}
	ids := map[int]int{}
	vals := map[mem.Word]mem.Word{}
	mapVar := func(v litmus.VarID) litmus.VarID {
		if n, ok := vars[v]; ok {
			return n
		}
		n := litmus.VarID(len(vars))
		vars[v] = n
		return n
	}
	mapReg := func(r litmus.Reg) litmus.Reg {
		if n, ok := regs[r]; ok {
			return n
		}
		n := litmus.Reg(len(regs))
		regs[r] = n
		return n
	}
	mapID := func(id int) int {
		if n, ok := ids[id]; ok {
			return n
		}
		n := len(ids)
		ids[id] = n
		return n
	}
	mapVal := func(v mem.Word) mem.Word {
		if n, ok := vals[v]; ok {
			return n
		}
		n := mem.Word(len(vals) + 1)
		vals[v] = n
		return n
	}

	out := t
	out.Threads = make([][]litmus.Instr, len(t.Threads))
	for ti, th := range t.Threads {
		ns := make([]litmus.Instr, len(th))
		for ii, in := range th {
			switch in.Kind {
			case litmus.ILoad:
				in.Var, in.Dst = mapVar(in.Var), mapReg(in.Dst)
			case litmus.IStore:
				in.Var, in.Val = mapVar(in.Var), mapVal(in.Val)
			case litmus.IWB, litmus.IINV, litmus.IPublish, litmus.IInvalidate:
				in.Var = mapVar(in.Var)
			case litmus.ISpin:
				in.Var, in.Val, in.Dst = mapVar(in.Var), mapVal(in.Val), mapReg(in.Dst)
			case litmus.IDMA:
				in.Var, in.Src = mapVar(in.Var), mapVar(in.Src)
			case litmus.IAcquire, litmus.IRelease, litmus.ICSEnter, litmus.ICSExit, litmus.IBarrierSync:
				in.ID = mapID(in.ID)
			case litmus.IFlagSet, litmus.IFlagWait, litmus.INotifyFlag, litmus.IAwaitFlag:
				in.ID, in.Val = mapID(in.ID), mapVal(in.Val)
			}
			ns[ii] = in
		}
		out.Threads[ti] = ns
	}
	out.Vars, out.Regs = len(vars), len(regs)
	out.Final = out.Final[:0:0]
	for v := 0; v < out.Vars; v++ {
		out.Final = append(out.Final, litmus.VarID(v))
	}
	return out
}

// Ops returns the program's instruction count — the "≤ N ops" measure of
// a shrunk repro.
func Ops(t litmus.Test) int {
	n := 0
	for _, th := range t.Threads {
		n += len(th)
	}
	return n
}

// ReproText renders a shrunk failure as a self-contained repro: a
// comment header naming the configuration and signature, then the test
// as a litmus-DSL composite literal ready to paste into a suite table.
func ReproText(t litmus.Test, cfg litmus.Config, want Signature) string {
	return fmt.Sprintf("// config %s, signature %s, %d ops\n%s\n", cfg.Name, want, Ops(t), litmus.Render(t))
}
