package fuzzgen

import (
	"reflect"
	"testing"

	"repro/internal/litmus"
)

// TestGenDeterministic pins the generator's core contract: a seed is a
// complete address — the same seed yields the same program and the same
// mutation sites, bit for bit.
func TestGenDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		a, b := Gen(seed), Gen(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// TestGenValid checks every generated program is well-formed and lands
// inside the harness's machine bounds.
func TestGenValid(t *testing.T) {
	sites, packed := 0, 0
	for seed := uint64(1); seed <= 200; seed++ {
		p := Gen(seed)
		if err := p.Test.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := len(p.Test.Threads); n < minThreads || n > maxThreads {
			t.Fatalf("seed %d: %d threads", seed, n)
		}
		for _, s := range p.Sites {
			in := p.Test.Threads[s.Thread][s.Index]
			switch s.Class {
			case "drop-wb":
				if in.Kind != litmus.IWB {
					t.Fatalf("seed %d: drop-wb site points at %v", seed, in.Kind)
				}
			case "weaken-notify":
				if in.Kind != litmus.INotifyFlag {
					t.Fatalf("seed %d: weaken-notify site points at %v", seed, in.Kind)
				}
			}
		}
		sites += len(p.Sites)
		if p.Test.Packed {
			packed++
		}
	}
	if sites == 0 {
		t.Fatal("no mutation sites in 200 programs")
	}
	if packed == 0 {
		t.Fatal("no packed programs in 200 seeds")
	}
}

// TestMutantsDeterministic pins mutant derivation: same program, same
// mutants, and each mutant differs from its parent at exactly the site.
func TestMutantsDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		p := Gen(seed)
		a, b := Mutants(p, 2), Mutants(p, 2)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two derivations differ", seed)
		}
		for _, m := range a {
			if err := m.Test.Validate(); err != nil {
				t.Fatalf("seed %d mutant %s: %v", seed, m.Test.Name, err)
			}
			if reflect.DeepEqual(m.Test.Threads, p.Test.Threads) {
				t.Fatalf("seed %d mutant %s: identical to parent", seed, m.Test.Name)
			}
		}
	}
}

// TestAnnotatedProgramsClean is the harness's half of the tentpole
// invariant in isolation: correctly annotated programs raise no oracle
// violation and run identically on all three engines, under every
// incoherent configuration.
func TestAnnotatedProgramsClean(t *testing.T) {
	hi := uint64(25)
	if testing.Short() {
		hi = 8
	}
	for seed := uint64(1); seed <= hi; seed++ {
		p := Gen(seed)
		for _, cfg := range []litmus.Config{litmus.Base, litmus.BM, litmus.BI, litmus.BMI} {
			res := Check(p.Test, cfg)
			if res.Err != nil {
				t.Fatalf("seed %d %s: %v", seed, cfg.Name, res.Err)
			}
			if len(res.Violations) > 0 {
				t.Fatalf("seed %d %s: annotated program violated: %v", seed, cfg.Name, res.Violations[0])
			}
			if res.Diverged != "" {
				t.Fatalf("seed %d %s: engines diverged:\n%s", seed, cfg.Name, res.Diverged)
			}
		}
	}
}
