package fuzzgen

import (
	"testing"

	"repro/internal/litmus"
)

// TestEnumeratedDifferential feeds 50 enumerated programs of up to five
// ops through the tri-engine differential checker: the fast-forward,
// serial, and block-parallel engines must produce byte-identical
// canonical documents on every one, and the oracle must stay silent
// (enumerated programs are annotated by construction).
func TestEnumeratedDifferential(t *testing.T) {
	k := 5
	if testing.Short() {
		k = 4
	}
	tests := litmus.Enumerate(litmus.EnumOptions{MaxOps: k, MaxThreads: 2, DMA: true, Locks: 1, Barriers: true})
	if len(tests) < 50 {
		t.Fatalf("enumeration too small to sample: %d programs", len(tests))
	}
	stride := len(tests) / 50
	checked := 0
	for i := 0; i < len(tests) && checked < 50; i += stride {
		tc := tests[i]
		res := Check(tc, litmus.Base)
		if res.Err != nil {
			t.Fatalf("%s: %v", tc.Name, res.Err)
		}
		if res.Diverged != "" {
			t.Errorf("%s: engines diverged: %s", tc.Name, res.Diverged)
		}
		if len(res.Violations) > 0 {
			t.Errorf("%s: annotated enumerated program violated: %+v", tc.Name, res.Violations[0])
		}
		checked++
	}
	if checked != 50 {
		t.Fatalf("sampled %d programs, want 50", checked)
	}
}

// TestEnumeratedMutantsJudged is the mutant half of the enumeration
// gate: every under-annotated mutant of every enumerated program must be
// either detected (some schedule violates, attributed to the weakened
// site) or proven masked by exhaustive exploration — never silently
// missed, and never left unjudged by a non-exhaustive exploration.
func TestEnumeratedMutantsJudged(t *testing.T) {
	k := 4
	if testing.Short() {
		k = 3
	}
	tests := litmus.Enumerate(litmus.EnumOptions{MaxOps: k, MaxThreads: 3, DMA: true, Packed: true, Locks: 1, Barriers: true})
	var judged, detected, masked int
	for _, tc := range tests {
		p := Program{Test: tc}
		for _, m := range EnumeratedMutants(tc) {
			v := JudgeExhaustive(p, m, litmus.Base, litmus.Options{})
			judged++
			switch {
			case v.Err != nil:
				t.Fatalf("%s: judgment failed: %v", m.Test.Name, v.Err)
			case v.Detected:
				detected++
				if v.BadAttribution != "" {
					t.Errorf("%s: detected but misattributed: %s", m.Test.Name, v.BadAttribution)
				}
			case v.MaskReason == MaskProvenExhaustive:
				masked++
			default:
				t.Errorf("%s: silent miss: neither detected nor proven masked (%+v)", m.Test.Name, v)
			}
		}
	}
	if judged == 0 || masked == 0 {
		t.Errorf("degenerate judgment split: %d judged, %d masked", judged, masked)
	}
	// Up to three ops no mutant has both a producer and a consumer around
	// the weakened annotation, so everything is provably masked; from k=4
	// on the MP shapes make real detections mandatory.
	if k >= 4 && detected == 0 {
		t.Error("no mutant detected at k>=4: the judge lost its teeth")
	}
	t.Logf("k=%d: %d mutants judged: %d detected, %d proven masked", k, judged, detected, masked)
}

// TestJudgeExhaustiveAgreesWithJudge cross-checks the two judges on
// fuzzer-generated programs: the single-schedule Judge can only observe
// a subset of what exhaustive exploration covers, so Judge-detected
// implies exhaustive-detected, and a statically proven mask (a proof
// about all schedules) implies the exhaustive explorer finds no
// violating schedule either.
func TestJudgeExhaustiveAgreesWithJudge(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 6
	}
	// Fuzzer programs with a weakened lock can have schedule spaces beyond
	// any practical cap; those report a capped-exploration error and are
	// skipped — JudgeExhaustive refusing to judge is the correct outcome,
	// the cross-check only applies where exploration finished.
	opts := litmus.Options{MaxSchedules: 30000}
	skipped, checked := 0, 0
	for seed := uint64(1); seed <= uint64(n); seed++ {
		p := Gen(seed)
		for _, m := range Mutants(p, 2) {
			jv := Judge(p, m, litmus.Base)
			if jv.Err != nil {
				t.Fatalf("seed %d %s: %v", seed, m.Test.Name, jv.Err)
			}
			ev := JudgeExhaustive(p, m, litmus.Base, opts)
			if ev.Err != nil {
				skipped++
				continue
			}
			checked++
			if jv.Detected && !ev.Detected {
				t.Errorf("seed %d %s: Judge detected on one schedule but exhaustive exploration found none",
					seed, m.Test.Name)
			}
			if !jv.Detected && jv.MaskReason != "" && jv.MaskReason != MaskBenignSchedule && ev.Detected {
				t.Errorf("seed %d %s: statically proven masked (%s) but exhaustive exploration violated",
					seed, m.Test.Name, jv.MaskReason)
			}
		}
	}
	if checked == 0 {
		t.Error("every mutant's exploration capped out; nothing cross-checked")
	}
	t.Logf("%d mutants cross-checked, %d capped and skipped", checked, skipped)
}
